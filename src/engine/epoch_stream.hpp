// Backend-agnostic epoch streaming: the EpochSource / ActuationSink pair.
//
// Every §V experiment is, at its core, the same loop: pull one epoch's
// telemetry, let a governor decide the next V/f level per cluster, push the
// decision back, repeat until the program retires. This header names the two
// halves of that loop so the loop itself (engine::EpochLoop) can be written
// once and driven by interchangeable backends:
//
//   * SimBackend   — wraps the live cycle-level Gpu (closed loop: decisions
//                    feed back into timing and energy);
//   * ReplayBackend — streams a recorded trace at memory-bandwidth speed
//                    (open loop: decisions are logged and compared against
//                    the recorded policy, never fed back into timing).
//
// Contracts:
//   * An EpochSource is single-run, single-writer, exactly like
//     EpochTraceRecorder: one loop drives one source; parallel sweeps give
//     every job its own source.
//   * nextEpoch() may only be called while !done() — the loop guarantees
//     this; sources may SSM_CHECK it.
//   * stats() is valid once done() (and, for the replay backend, at any
//     time — the recorded run already finished).
#pragma once

#include <span>

#include "gpusim/gpu.hpp"
#include "power/vf_table.hpp"

namespace ssm::engine {

/// Whole-run statistics a source reports once its stream is exhausted.
/// For the simulation backend these come from the live Gpu's accounting;
/// for the replay backend they are the recorded run's final numbers.
struct StreamStats {
  TimeNs exec_time_ns = 0;
  double energy_j = 0.0;
  double edp = 0.0;  ///< joule-seconds
  std::int64_t instructions = 0;
};

/// Produces per-cluster EpochObservations, one GpuEpochReport per epoch.
class EpochSource {
 public:
  virtual ~EpochSource() = default;

  [[nodiscard]] virtual const VfTable& vfTable() const noexcept = 0;
  [[nodiscard]] virtual int numClusters() const noexcept = 0;

  /// True when the stream is exhausted (program retired / trace consumed).
  [[nodiscard]] virtual bool done() const noexcept = 0;

  /// Wall-clock position of the stream, for the loop's max-time cutoff.
  [[nodiscard]] virtual TimeNs nowNs() const noexcept = 0;

  /// Advances one epoch with the given per-cluster levels
  /// (levels.size() == numClusters()) and returns its telemetry. The replay
  /// backend ignores `levels` — that is the open-loop contract.
  [[nodiscard]] virtual GpuEpochReport nextEpoch(
      std::span<const VfLevel> levels) = 0;

  /// Final program-level statistics (see StreamStats).
  [[nodiscard]] virtual StreamStats stats() const = 0;
};

/// Receives the commanded V/f levels, one call per cluster per epoch, after
/// governor clamping and fault arbitration. Returns the level the loop
/// applies to the next epoch: a closed-loop sink returns `commanded`
/// unchanged; the open-loop replay sink logs `commanded` for comparison and
/// returns the recorded level so the loop tracks the trace.
class ActuationSink {
 public:
  virtual ~ActuationSink() = default;

  virtual VfLevel actuate(int cluster_id, VfLevel commanded,
                          VfLevel current) = 0;
};

}  // namespace ssm::engine
