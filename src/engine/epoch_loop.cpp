#include "engine/epoch_loop.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "gpusim/fault_hook.hpp"
#include "gpusim/trace.hpp"
#include "thermal/thermal_throttle.hpp"

namespace ssm::engine {

std::vector<std::unique_ptr<DvfsGovernor>> makeGovernors(
    const GovernorFactory& factory, int count) {
  SSM_CHECK(count > 0, "governor count must be positive");
  std::vector<std::unique_ptr<DvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) governors.push_back(factory.create(i));
  return governors;
}

RunResult EpochLoop::run(EpochSource& source, ActuationSink& sink,
                         const GovernorFactory& factory,
                         std::string mechanism_name) const {
  const int count = cfg_.chip_wide ? 1 : source.numClusters();
  if (cfg_.harden) {
    const HardenedGovernorFactory hardened(factory, source.vfTable(),
                                           cfg_.harden_cfg, cfg_.mode_log);
    const auto governors = makeGovernors(hardened, count);
    return run(source, sink, governors, std::move(mechanism_name));
  }
  const auto governors = makeGovernors(factory, count);
  return run(source, sink, governors, std::move(mechanism_name));
}

RunResult EpochLoop::run(
    EpochSource& source, ActuationSink& sink,
    std::span<const std::unique_ptr<DvfsGovernor>> governors,
    std::string mechanism_name) const {
  if (cfg_.chip_wide) {
    SSM_CHECK(governors.size() == 1,
              "chip-wide mode drives exactly one governor");
    SSM_CHECK(cfg_.faults == nullptr,
              "fault injection is per-cluster; unsupported in chip-wide mode");
    SSM_CHECK(cfg_.throttle == nullptr,
              "thermal throttle is per-cluster; unsupported in chip-wide mode");
    return runChipWide(source, sink, *governors.front(),
                       std::move(mechanism_name));
  }
  SSM_CHECK(static_cast<int>(governors.size()) == source.numClusters(),
            "per-cluster mode needs one governor per cluster");
  return runPerCluster(source, sink, governors, std::move(mechanism_name));
}

RunResult EpochLoop::runPerCluster(
    EpochSource& source, ActuationSink& sink,
    std::span<const std::unique_ptr<DvfsGovernor>> governors,
    std::string mechanism_name) const {
  const int n = source.numClusters();
  const VfTable& vf = source.vfTable();

  std::vector<VfLevel> levels(static_cast<std::size_t>(n), vf.defaultLevel());
  std::vector<double> level_epochs(vf.size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_time_sum = 0.0;
  const std::int64_t throttle_epochs_before =
      cfg_.throttle != nullptr ? cfg_.throttle->throttleEpochs() : 0;

  while (!source.done() && source.nowNs() < cfg_.max_time_ns) {
    GpuEpochReport report = source.nextEpoch(levels);
    // Physical peak temperature, captured before sensor-fault corruption:
    // the die heats regardless of what a broken sensor reports.
    if (report.hasThermal()) {
      result.peak_temp_c = std::max(
          result.peak_temp_c,
          std::max(report.package_temp_c,
                   *std::max_element(report.cluster_temps_c.begin(),
                                     report.cluster_temps_c.end())));
    }
    // Faulted telemetry is what both the governors and the trace observe;
    // the source's internal state and energy accounting stay truthful.
    if (cfg_.faults != nullptr) cfg_.faults->onTelemetry(report);
    if (cfg_.trace != nullptr) cfg_.trace->record(report);
    // The throttle, like the governors, reads sensor (post-fault) values.
    if (cfg_.throttle != nullptr && report.hasThermal())
      cfg_.throttle->observe(report.cluster_temps_c, report.package_temp_c);
    ++result.epochs;
    power_time_sum += report.chip_power_w;
    for (int i = 0; i < n; ++i) {
      const auto& obs = report.clusters[static_cast<std::size_t>(i)];
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      VfLevel requested =
          vf.clamp(governors[static_cast<std::size_t>(i)]->decide(obs));
      // Arbitration order mirrors hardware: the protection firmware caps
      // the governor's request, then the actuator (fault seam) may still
      // fail or stick the transition downstream of it.
      if (cfg_.throttle != nullptr)
        requested = cfg_.throttle->clamp(i, requested);
      const VfLevel commanded =
          cfg_.faults != nullptr
              ? cfg_.faults->onActuate(i, requested, obs.level)
              : requested;
      levels[static_cast<std::size_t>(i)] =
          sink.actuate(i, commanded, obs.level);
    }
    if (report.all_done) break;
  }

  SSM_CHECK(source.done(), std::string(cfg_.timeout_message));

  const StreamStats stats = source.stats();
  result.exec_time_ns = stats.exec_time_ns;
  result.energy_j = stats.energy_j;
  result.edp = stats.edp;
  result.instructions = stats.instructions;
  result.mean_power_w =
      result.epochs > 0 ? power_time_sum / result.epochs : 0.0;
  if (cfg_.throttle != nullptr)
    result.throttle_epochs = static_cast<int>(
        cfg_.throttle->throttleEpochs() - throttle_epochs_before);

  const double total_cluster_epochs =
      static_cast<double>(result.epochs) * static_cast<double>(n);
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] =
        total_cluster_epochs > 0 ? level_epochs[l] / total_cluster_epochs
                                 : 0.0;
  return result;
}

RunResult EpochLoop::runChipWide(EpochSource& source, ActuationSink& sink,
                                 DvfsGovernor& governor,
                                 std::string mechanism_name) const {
  const int n = source.numClusters();
  const VfTable& vf = source.vfTable();

  std::vector<VfLevel> levels(static_cast<std::size_t>(n), vf.defaultLevel());
  std::vector<double> level_epochs(vf.size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_sum = 0.0;

  while (!source.done() && source.nowNs() < cfg_.max_time_ns) {
    const GpuEpochReport report = source.nextEpoch(levels);
    if (report.hasThermal()) {
      result.peak_temp_c = std::max(
          result.peak_temp_c,
          std::max(report.package_temp_c,
                   *std::max_element(report.cluster_temps_c.begin(),
                                     report.cluster_temps_c.end())));
    }
    if (cfg_.trace != nullptr) cfg_.trace->record(report);
    ++result.epochs;
    power_sum += report.chip_power_w;

    // Cluster-averaged observation over live clusters.
    EpochObservation agg;
    agg.epoch_start_ns = report.epoch_start_ns;
    agg.epoch_len_ns = report.epoch_len_ns;
    int live = 0;
    for (const auto& obs : report.clusters) {
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      if (obs.cluster_done) continue;
      ++live;
      agg.instructions += obs.instructions;
      agg.power_w += obs.power_w;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.add(id, obs.counters.get(id));
      }
      agg.level = obs.level;
    }
    if (live > 0) {
      const double inv = 1.0 / static_cast<double>(live);
      agg.instructions =
          static_cast<std::int64_t>(static_cast<double>(agg.instructions) * inv);
      agg.power_w *= inv;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.set(id, agg.counters.get(id) * inv);
      }
    } else {
      agg.cluster_done = true;
    }
    const VfLevel next = vf.clamp(governor.decide(agg));
    for (int i = 0; i < n; ++i)
      levels[static_cast<std::size_t>(i)] = sink.actuate(
          i, next, report.clusters[static_cast<std::size_t>(i)].level);
    if (report.all_done) break;
  }

  SSM_CHECK(source.done(), std::string(cfg_.timeout_message));

  const StreamStats stats = source.stats();
  result.exec_time_ns = stats.exec_time_ns;
  result.energy_j = stats.energy_j;
  result.edp = stats.edp;
  result.instructions = stats.instructions;
  result.mean_power_w = result.epochs > 0 ? power_sum / result.epochs : 0.0;
  const double total = static_cast<double>(result.epochs) * n;
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] = total > 0 ? level_epochs[l] / total : 0.0;
  return result;
}

}  // namespace ssm::engine
