#include "engine/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "gpusim/trace.hpp"

namespace ssm::engine {
namespace {

constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;

/// Append-only native-endian byte writer for the payload.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s.data(), s.size());
  }
  [[nodiscard]] std::string take() { return std::move(bytes_); }

 private:
  void raw(const void* p, std::size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }
  std::string bytes_;
};

/// Bounds-checked reader over the payload; any overrun is a DataError
/// (a well-formed header can still front a mangled payload).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (bytes_.size() - pos_ < n)
      throw DataError("SSMTRACE payload truncated inside a string field");
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  void raw(void* p, std::size_t n) {
    if (bytes_.size() - pos_ < n)
      throw DataError("SSMTRACE payload truncated inside a scalar field");
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void writeRunResult(ByteWriter& w, const RunResult& r, std::uint32_t version) {
  w.str(r.workload);
  w.str(r.mechanism);
  w.i64(r.exec_time_ns);
  w.f64(r.energy_j);
  w.f64(r.edp);
  w.i64(r.instructions);
  w.i32(r.epochs);
  w.f64(r.mean_power_w);
  w.u32(static_cast<std::uint32_t>(r.level_histogram.size()));
  for (double h : r.level_histogram) w.f64(h);
  if (version >= 2) {
    w.f64(r.peak_temp_c);
    w.i32(r.throttle_epochs);
  }
}

RunResult readRunResult(ByteReader& r, std::uint32_t version) {
  RunResult out;
  out.workload = r.str();
  out.mechanism = r.str();
  out.exec_time_ns = r.i64();
  out.energy_j = r.f64();
  out.edp = r.f64();
  out.instructions = r.i64();
  out.epochs = r.i32();
  out.mean_power_w = r.f64();
  const std::uint32_t hist = r.u32();
  out.level_histogram.reserve(hist);
  for (std::uint32_t i = 0; i < hist; ++i)
    out.level_histogram.push_back(r.f64());
  if (version >= 2) {
    out.peak_temp_c = r.f64();
    out.throttle_epochs = r.i32();
  }
  return out;
}

void writeObservation(ByteWriter& w, const EpochObservation& obs) {
  w.i32(obs.level);
  w.f64(obs.power_w);
  w.i64(obs.instructions);
  w.i64(obs.epoch_start_ns);
  w.i64(obs.epoch_len_ns);
  w.i32(obs.cluster_id);
  w.u8(obs.cluster_done ? 1 : 0);
  for (double c : obs.counters.raw()) w.f64(c);
}

EpochObservation readObservation(ByteReader& r) {
  EpochObservation obs;
  obs.level = r.i32();
  obs.power_w = r.f64();
  obs.instructions = r.i64();
  obs.epoch_start_ns = r.i64();
  obs.epoch_len_ns = r.i64();
  obs.cluster_id = r.i32();
  obs.cluster_done = r.u8() != 0;
  for (int c = 0; c < kNumCounters; ++c)
    obs.counters.set(static_cast<CounterId>(c), r.f64());
  return obs;
}

/// The on-disk version a trace needs: v2 only when temperature tracks are
/// present, so every thermal-free trace stays byte-identical to v1 goldens.
std::uint32_t versionFor(const EpochTrace& trace) {
  for (const GpuEpochReport& rep : trace.epochs)
    if (rep.hasThermal()) return kTraceVersion;
  return kTraceVersionV1;
}

std::string buildPayload(const EpochTrace& trace, std::uint32_t version) {
  ByteWriter w;
  w.str(trace.workload);
  w.str(trace.mechanism);
  w.u64(trace.seed);
  w.u32(static_cast<std::uint32_t>(trace.vf.size()));
  for (const VfPoint& p : trace.vf.points()) {
    w.f64(p.voltage_v);
    w.f64(p.freq_mhz);
  }
  writeRunResult(w, trace.recorded, version);
  w.u32(static_cast<std::uint32_t>(trace.epochs.size()));
  w.u32(static_cast<std::uint32_t>(trace.numClusters()));
  for (const GpuEpochReport& rep : trace.epochs) {
    SSM_CHECK(static_cast<int>(rep.clusters.size()) == trace.numClusters(),
              "cluster count changed mid-trace; cannot serialize");
    w.f64(rep.chip_power_w);
    w.f64(rep.dram_util);
    w.i64(rep.epoch_start_ns);
    w.i64(rep.epoch_len_ns);
    w.u8(rep.all_done ? 1 : 0);
    if (version >= 2) {
      SSM_CHECK(rep.hasThermal() &&
                    rep.cluster_temps_c.size() == rep.clusters.size(),
                "every epoch of a thermal trace must carry one temperature "
                "per cluster");
      w.f64(rep.package_temp_c);
      for (double t : rep.cluster_temps_c) w.f64(t);
    }
    for (const EpochObservation& obs : rep.clusters) writeObservation(w, obs);
  }
  return w.take();
}

EpochTrace parsePayload(std::string_view payload, std::uint32_t version) {
  ByteReader r(payload);
  EpochTrace trace;
  trace.workload = r.str();
  trace.mechanism = r.str();
  trace.seed = r.u64();
  const std::uint32_t vf_points = r.u32();
  if (vf_points == 0)
    throw DataError("SSMTRACE payload has an empty V/f table");
  std::vector<VfPoint> points;
  points.reserve(vf_points);
  for (std::uint32_t i = 0; i < vf_points; ++i) {
    VfPoint p;
    p.voltage_v = r.f64();
    p.freq_mhz = r.f64();
    points.push_back(p);
  }
  trace.vf = VfTable(std::move(points));
  trace.recorded = readRunResult(r, version);
  const std::uint32_t num_epochs = r.u32();
  const std::uint32_t num_clusters = r.u32();
  trace.epochs.reserve(num_epochs);
  for (std::uint32_t e = 0; e < num_epochs; ++e) {
    GpuEpochReport rep;
    rep.chip_power_w = r.f64();
    rep.dram_util = r.f64();
    rep.epoch_start_ns = r.i64();
    rep.epoch_len_ns = r.i64();
    rep.all_done = r.u8() != 0;
    if (version >= 2) {
      rep.package_temp_c = r.f64();
      rep.cluster_temps_c.reserve(num_clusters);
      for (std::uint32_t c = 0; c < num_clusters; ++c)
        rep.cluster_temps_c.push_back(r.f64());
    }
    rep.clusters.reserve(num_clusters);
    for (std::uint32_t c = 0; c < num_clusters; ++c)
      rep.clusters.push_back(readObservation(r));
    trace.epochs.push_back(std::move(rep));
  }
  if (!r.exhausted())
    throw DataError("SSMTRACE payload has trailing bytes after the last epoch");
  return trace;
}

struct Header {
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

Header parseHeader(std::string_view bytes) {
  if (bytes.size() < kHeaderSize)
    throw DataError("SSMTRACE file truncated: shorter than the 28-byte header");
  if (bytes.substr(0, kTraceMagic.size()) != kTraceMagic)
    throw DataError("not an SSMTRACE file (bad magic)");
  Header h;
  std::memcpy(&h.version, bytes.data() + 8, sizeof h.version);
  std::memcpy(&h.payload_size, bytes.data() + 12, sizeof h.payload_size);
  std::memcpy(&h.checksum, bytes.data() + 20, sizeof h.checksum);
  if (h.version != kTraceVersionV1 && h.version != kTraceVersion)
    throw DataError("unsupported SSMTRACE version " + std::to_string(h.version) +
                    " (this build reads versions " +
                    std::to_string(kTraceVersionV1) + "-" +
                    std::to_string(kTraceVersion) + ")");
  return h;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

EpochTrace traceFromRecorder(const EpochTraceRecorder& recorder,
                             std::string workload, std::string mechanism,
                             std::uint64_t seed, VfTable vf,
                             RunResult recorded) {
  if (!recorder.replayCaptureEnabled())
    throw DataError(
        "recorder ran without enableReplayCapture(): the full 47-counter "
        "observations were not retained and the trace cannot be built");
  EpochTrace trace;
  trace.workload = std::move(workload);
  trace.mechanism = std::move(mechanism);
  trace.seed = seed;
  trace.vf = std::move(vf);
  trace.recorded = std::move(recorded);
  trace.epochs = recorder.reports();
  return trace;
}

std::string serializeTrace(const EpochTrace& trace) {
  const std::uint32_t version = versionFor(trace);
  const std::string payload = buildPayload(trace, version);
  const auto payload_size = static_cast<std::uint64_t>(payload.size());
  const std::uint64_t checksum = fnv1a64(payload);

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kTraceMagic);
  out.append(reinterpret_cast<const char*>(&version), sizeof version);
  out.append(reinterpret_cast<const char*>(&payload_size), sizeof payload_size);
  out.append(reinterpret_cast<const char*>(&checksum), sizeof checksum);
  out.append(payload);
  return out;
}

EpochTrace deserializeTrace(std::string_view bytes) {
  const Header h = parseHeader(bytes);
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() < h.payload_size)
    throw DataError("SSMTRACE file truncated: header announces " +
                    std::to_string(h.payload_size) + " payload bytes, found " +
                    std::to_string(payload.size()));
  if (payload.size() > h.payload_size)
    throw DataError("SSMTRACE file has trailing bytes after the payload");
  const std::uint64_t actual = fnv1a64(payload);
  if (actual != h.checksum)
    throw DataError("SSMTRACE payload corrupted: checksum mismatch");
  return parsePayload(payload, h.version);
}

void saveTrace(const EpochTrace& trace, const std::string& path) {
  const std::string bytes = serializeTrace(trace);
  std::ofstream os(path, std::ios::binary);
  if (!os) throw DataError("cannot open for writing: " + path);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw DataError("write failed: " + path);
}

EpochTrace loadTrace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw DataError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) throw DataError("read failed: " + path);
  return deserializeTrace(buf.str());
}

TraceFileInfo traceFileInfo(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw DataError("cannot open trace file: " + path);
  std::string header(kHeaderSize, '\0');
  is.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (is.gcount() != static_cast<std::streamsize>(kHeaderSize))
    throw DataError("SSMTRACE file truncated: shorter than the 28-byte header");
  const Header h = parseHeader(header);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  if (file_size != kHeaderSize + h.payload_size)
    throw DataError("SSMTRACE file length does not match header payload_size");
  TraceFileInfo info;
  info.version = h.version;
  info.payload_size = h.payload_size;
  info.checksum = h.checksum;
  return info;
}

}  // namespace ssm::engine
