// SimBackend: the live cycle-level Gpu behind the EpochSource/ActuationSink
// pair — the closed-loop backend.
//
// One object implements both halves: the source steps the simulation, the
// sink passes every commanded level straight through, so the governor's
// decisions feed back into timing and energy exactly as they did when the
// loop was hard-wired to the Gpu. EpochLoop driving a SimBackend is
// byte-identical to the pre-engine runWithGovernor/runWithChipGovernor/
// runSequence loops (tests/test_engine.cpp pins this against a reference
// reimplementation).
#pragma once

#include <utility>

#include "engine/epoch_stream.hpp"

namespace ssm::engine {

class SimBackend final : public EpochSource, public ActuationSink {
 public:
  /// Takes the machine by value: the backend owns its simulation state, so
  /// callers can snapshot a Gpu and hand copies to many backends (the same
  /// value-semantics datagen relies on).
  explicit SimBackend(Gpu gpu) : gpu_(std::move(gpu)) {}

  // --- EpochSource -----------------------------------------------------
  [[nodiscard]] const VfTable& vfTable() const noexcept override {
    return gpu_.vfTable();
  }
  [[nodiscard]] int numClusters() const noexcept override {
    return gpu_.numClusters();
  }
  [[nodiscard]] bool done() const noexcept override { return gpu_.allDone(); }
  [[nodiscard]] TimeNs nowNs() const noexcept override { return gpu_.nowNs(); }
  [[nodiscard]] GpuEpochReport nextEpoch(
      std::span<const VfLevel> levels) override {
    return gpu_.runEpoch(levels);
  }
  [[nodiscard]] StreamStats stats() const override {
    StreamStats st;
    st.exec_time_ns = gpu_.finishTimeNs();
    st.energy_j = gpu_.totalEnergyJ();
    st.edp = gpu_.edp();
    st.instructions = gpu_.totalInstructions();
    return st;
  }

  // --- ActuationSink ---------------------------------------------------
  /// Closed loop: what the governor (post fault arbitration) commands is
  /// what the next epoch runs at.
  VfLevel actuate(int /*cluster_id*/, VfLevel commanded,
                  VfLevel /*current*/) override {
    return commanded;
  }

  [[nodiscard]] const Gpu& gpu() const noexcept { return gpu_; }

 private:
  Gpu gpu_;
};

}  // namespace ssm::engine
