#include "engine/replay_backend.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"
#include "engine/epoch_loop.hpp"

namespace ssm::engine {

ReplayBackend::ReplayBackend(const EpochTrace& trace)
    : trace_(&trace),
      commanded_histogram_(trace.vf.size(), 0) {}

const VfTable& ReplayBackend::vfTable() const noexcept { return trace_->vf; }

int ReplayBackend::numClusters() const noexcept {
  return trace_->numClusters();
}

bool ReplayBackend::done() const noexcept {
  return pos_ >= trace_->epochs.size();
}

TimeNs ReplayBackend::nowNs() const noexcept {
  if (pos_ < trace_->epochs.size()) return trace_->epochs[pos_].epoch_start_ns;
  return trace_->recorded.exec_time_ns;
}

GpuEpochReport ReplayBackend::nextEpoch(std::span<const VfLevel> /*levels*/) {
  SSM_CHECK(!done(), "nextEpoch() called on an exhausted replay stream");
  return trace_->epochs[pos_++];
}

StreamStats ReplayBackend::stats() const {
  StreamStats st;
  st.exec_time_ns = trace_->recorded.exec_time_ns;
  st.energy_j = trace_->recorded.energy_j;
  st.edp = trace_->recorded.edp;
  st.instructions = trace_->recorded.instructions;
  return st;
}

VfLevel ReplayBackend::actuate(int cluster_id, VfLevel commanded,
                               VfLevel current) {
  ++decisions_;
  if (commanded >= 0 &&
      static_cast<std::size_t>(commanded) < commanded_histogram_.size())
    ++commanded_histogram_[static_cast<std::size_t>(commanded)];
  // pos_ already points one past the epoch whose observation produced this
  // decision, i.e. at the epoch where the commanded level would first be
  // observable — exactly what the recorded policy's decision became.
  if (pos_ < trace_->epochs.size()) {
    const VfLevel recorded =
        trace_->epochs[pos_].clusters[static_cast<std::size_t>(cluster_id)]
            .level;
    ++compared_;
    matches_ += commanded == recorded ? 1 : 0;
    return recorded;
  }
  // Decision after the final epoch: no recorded successor to compare with
  // (the recording run made one too, and it was never applied either).
  return current;
}

double ReplayBackend::agreement() const noexcept {
  return compared_ == 0
             ? 1.0
             : static_cast<double>(matches_) / static_cast<double>(compared_);
}

ReplayReport replayTrace(const EpochTrace& trace, const GovernorFactory& factory,
                         std::string mechanism_name, const ReplayOptions& opts) {
  ReplayBackend backend(trace);
  LoopConfig cfg;
  // The recorded run already finished; the cutoff must never truncate it.
  cfg.max_time_ns = std::numeric_limits<TimeNs>::max();
  cfg.trace = opts.recorder;
  cfg.harden = opts.harden;
  cfg.harden_cfg = opts.harden_cfg;
  cfg.mode_log = opts.mode_log;
  cfg.timeout_message = "replay stream did not drain; trace is inconsistent";

  ReplayReport report;
  report.result = EpochLoop(cfg).run(backend, backend, factory,
                                     std::move(mechanism_name));
  report.result.workload = trace.workload;
  report.decisions = backend.decisions();
  report.compared = backend.compared();
  report.matches = backend.matches();
  report.agreement = backend.agreement();
  report.commanded_histogram = backend.commandedHistogram();
  return report;
}

}  // namespace ssm::engine
