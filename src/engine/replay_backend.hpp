// ReplayBackend: a recorded EpochTrace behind the EpochSource/ActuationSink
// pair — the open-loop backend.
//
// Replay streams the recorded GpuEpochReports through any governor at
// memory-bandwidth speed: no cycle-level simulation, no power model, just
// the observations the recording run produced. It is explicitly OPEN LOOP:
// the governor's decisions are logged and compared against the recorded
// policy's, but they never feed back into what the governor observes next —
// the trace is immutable history. Consequences:
//
//   * The replay RunResult's numeric fields equal the recorded run's exactly,
//     for ANY governor: stats() returns the recorded final numbers and the
//     loop recomputes epochs / mean power / level histogram from the same
//     report stream the recording loop saw, in the same order.
//   * A deterministic governor replayed with its recording-time configuration
//     agrees with the trace on every decision (agreement() == 1.0) — the
//     observation stream is identical, so the decisions are too. Any drift
//     below 1.0 measures how a DIFFERENT policy/config diverges from the
//     recorded one, epoch by epoch (the counterfactual-screening use case).
//
// Agreement accounting: epoch e's decision is compared against the level the
// trace shows the cluster running at in epoch e+1 (that is where a commanded
// level becomes observable). Decisions made after the final epoch have no
// recorded successor; they are counted in decisions() but excluded from the
// agreement denominator.
//
// Fault injection is rejected in replay (LoopConfig::faults must stay null):
// onActuate arbitration would need to feed back into the stream, which the
// open-loop contract forbids.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hardened_governor.hpp"
#include "engine/epoch_stream.hpp"
#include "engine/trace_io.hpp"

namespace ssm::engine {

class ReplayBackend final : public EpochSource, public ActuationSink {
 public:
  /// The trace must outlive the backend (it is borrowed, not copied — traces
  /// can be large and sweeps replay one trace under many governors).
  explicit ReplayBackend(const EpochTrace& trace);

  // --- EpochSource -----------------------------------------------------
  [[nodiscard]] const VfTable& vfTable() const noexcept override;
  [[nodiscard]] int numClusters() const noexcept override;
  [[nodiscard]] bool done() const noexcept override;
  [[nodiscard]] TimeNs nowNs() const noexcept override;
  /// Returns the next recorded report. `levels` is ignored: open loop.
  [[nodiscard]] GpuEpochReport nextEpoch(
      std::span<const VfLevel> levels) override;
  /// The recorded run's final numbers, valid at any time.
  [[nodiscard]] StreamStats stats() const override;

  // --- ActuationSink ---------------------------------------------------
  /// Logs `commanded` (histogram + agreement vs the recorded next level) and
  /// returns the recorded level so the loop's state tracks the trace.
  VfLevel actuate(int cluster_id, VfLevel commanded, VfLevel current) override;

  // --- Replay-only accessors -------------------------------------------
  [[nodiscard]] std::int64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::int64_t compared() const noexcept { return compared_; }
  [[nodiscard]] std::int64_t matches() const noexcept { return matches_; }
  /// matches()/compared(); 1.0 for traces too short to compare anything.
  [[nodiscard]] double agreement() const noexcept;
  /// Count of commanded decisions per V/f level (size == vfTable().size()).
  [[nodiscard]] const std::vector<std::int64_t>& commandedHistogram()
      const noexcept {
    return commanded_histogram_;
  }

 private:
  const EpochTrace* trace_;
  std::size_t pos_ = 0;  ///< index of the next epoch to stream
  std::int64_t decisions_ = 0;
  std::int64_t compared_ = 0;
  std::int64_t matches_ = 0;
  std::vector<std::int64_t> commanded_histogram_;
};

/// One-call replay: stream `trace` through governors from `factory` and
/// report the result plus the agreement statistics.
struct ReplayOptions {
  /// Wrap the governors in the HardenedGovernor decorator, as a live run
  /// with --harden would.
  bool harden = false;
  HardenedConfig harden_cfg{};
  GovernorModeLog* mode_log = nullptr;
  /// Re-record the replayed stream (e.g. to render a timeline of a trace).
  EpochTraceRecorder* recorder = nullptr;
};

struct ReplayReport {
  RunResult result;
  std::int64_t decisions = 0;
  std::int64_t compared = 0;
  std::int64_t matches = 0;
  double agreement = 1.0;
  std::vector<std::int64_t> commanded_histogram;
};

[[nodiscard]] ReplayReport replayTrace(const EpochTrace& trace,
                                       const GovernorFactory& factory,
                                       std::string mechanism_name,
                                       const ReplayOptions& opts = {});

}  // namespace ssm::engine
