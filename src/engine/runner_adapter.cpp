// The legacy gpusim/runner.hpp entry points, reimplemented as thin adapters
// over the engine layer: every one is "construct a SimBackend, configure an
// EpochLoop, run". The declarations stay in gpusim/runner.hpp (include
// compatibility for every caller) but the implementation lives here so
// ssm_gpusim does not depend on ssm_engine — the engine links gpusim, not
// the other way around.
//
// Byte-identity: each adapter reproduces the exact LoopConfig its pre-engine
// loop hard-wired (max time, trace/fault hooks, chip-wide flag, timeout
// message), and EpochLoop reproduces that loop's arithmetic exactly, so the
// RunResults are bit-for-bit what the deleted src/gpusim/runner.cpp produced
// (pinned by tests/test_engine.cpp against a reference reimplementation).
#include "gpusim/runner.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"
#include "engine/epoch_loop.hpp"
#include "engine/sim_backend.hpp"

namespace ssm {

RunResult runWithGovernor(Gpu gpu, const GovernorFactory& factory,
                          std::string mechanism_name, TimeNs max_time_ns,
                          EpochTraceRecorder* trace, EpochFaultHook* faults,
                          thermal::ThermalThrottle* throttle) {
  engine::SimBackend backend(std::move(gpu));
  engine::LoopConfig cfg;
  cfg.max_time_ns = max_time_ns;
  cfg.trace = trace;
  cfg.faults = faults;
  cfg.throttle = throttle;
  return engine::EpochLoop(cfg).run(backend, backend, factory,
                                    std::move(mechanism_name));
}

RunResult runWithChipGovernor(Gpu gpu, const GovernorFactory& factory,
                              std::string mechanism_name, TimeNs max_time_ns,
                              EpochTraceRecorder* trace) {
  engine::SimBackend backend(std::move(gpu));
  engine::LoopConfig cfg;
  cfg.max_time_ns = max_time_ns;
  cfg.trace = trace;
  cfg.chip_wide = true;
  return engine::EpochLoop(cfg).run(backend, backend, factory,
                                    std::move(mechanism_name));
}

namespace {
class StaticFactory final : public GovernorFactory {
 public:
  explicit StaticFactory(VfLevel level) : level_(level) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<StaticGovernor>(level_);
  }

 private:
  VfLevel level_;
};
}  // namespace

RunResult runBaseline(Gpu gpu, TimeNs max_time_ns,
                      thermal::ThermalThrottle* throttle) {
  const StaticFactory factory(gpu.vfTable().defaultLevel());
  return runWithGovernor(std::move(gpu), factory, "baseline", max_time_ns,
                         nullptr, nullptr, throttle);
}

std::vector<RunResult> runSequence(const std::vector<KernelProfile>& programs,
                                   const GovernorFactory& factory,
                                   std::string mechanism_name,
                                   const SequenceConfig& cfg) {
  SSM_CHECK(!programs.empty(), "empty program sequence");

  // The same governor instances persist across programs (reset() between:
  // episodic state clears, learned state survives — the F-LEMMA design).
  const auto governors = engine::makeGovernors(factory, cfg.gpu.num_clusters);

  engine::LoopConfig loop_cfg;
  loop_cfg.max_time_ns = cfg.max_time_ns_per_program;
  loop_cfg.timeout_message = "sequence program did not retire in time";
  const engine::EpochLoop loop(loop_cfg);

  std::vector<RunResult> results;
  results.reserve(programs.size());
  for (std::size_t p = 0; p < programs.size(); ++p) {
    Gpu gpu(cfg.gpu, cfg.vf, programs[p], cfg.seed + p,
            ChipPowerModel(cfg.gpu.num_clusters));
    for (const auto& gov : governors) gov->reset();
    engine::SimBackend backend(std::move(gpu));
    RunResult result = loop.run(backend, backend, governors, mechanism_name);
    result.workload = programs[p].name;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace ssm
