// Versioned, checksummed binary epoch-trace format (the .ssmtrace file).
//
// An EpochTrace is everything ReplayBackend needs to re-drive a governor
// without the simulator: the recording run's metadata (workload, mechanism,
// seed, V/f table), its final RunResult, and every GpuEpochReport — all 47
// counters for every cluster-epoch. Doubles are serialized as raw bit
// patterns (memcpy), so a round trip is exact: deserialize(serialize(t))
// compares equal field-for-field, including NaN payloads.
//
// File layout (little-endian on every platform this repo targets; fields
// are memcpy'd native-endian and the format is not meant for cross-endian
// archival):
//
//   offset  size  field
//   0       8     magic "SSMTRACE"
//   8       4     u32 format version (1 or 2)
//   12      8     u64 payload_size — byte length of the payload that follows
//   20      8     u64 checksum — FNV-1a 64 over the payload bytes
//   28      ...   payload (payload_size bytes, nothing after it)
//
// Version history. v1 is the original format. v2 adds the thermal tracks:
// the RunResult block gains peak_temp_c + throttle_epochs and every epoch
// gains a package temperature plus one temperature per cluster. A trace
// with no thermal tracks is ALWAYS written as v1 — byte-identical to what
// a pre-thermal build produced — and both versions are read transparently,
// so committed golden traces and old archives keep working unchanged.
//
// Integrity rules, enforced by deserializeTrace/loadTrace (all failures
// throw DataError, never ContractError — a bad file is an input problem):
//   * magic mismatch            -> "not an SSMTRACE file"
//   * version not in {1, 2}     -> unsupported version
//   * fewer payload bytes than payload_size announces -> truncated
//   * trailing bytes after the payload               -> rejected
//   * checksum mismatch         -> corrupted
//
// Payload encoding: strings are u32 length + bytes; vectors are u32 count +
// elements; bools are one byte (0/1); integers and doubles are fixed-width
// memcpy. The full field order is defined by serializeTrace in trace_io.cpp
// and documented in docs/engine.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/gpu.hpp"
#include "gpusim/runner.hpp"
#include "power/vf_table.hpp"

namespace ssm {
class EpochTraceRecorder;
}  // namespace ssm

namespace ssm::engine {

inline constexpr std::string_view kTraceMagic = "SSMTRACE";
/// Original format, and what every trace WITHOUT thermal tracks is still
/// written as (byte-compatibility with committed goldens).
inline constexpr std::uint32_t kTraceVersionV1 = 1;
/// Current format: v1 plus temperature tracks. Written only when the
/// recorded epochs actually carry them.
inline constexpr std::uint32_t kTraceVersion = 2;

/// A fully recorded run: metadata + final stats + every epoch report.
struct EpochTrace {
  std::string workload;
  std::string mechanism;  ///< governor that produced the recorded decisions
  std::uint64_t seed = 0;
  VfTable vf = VfTable::titanX();
  /// The recording run's final RunResult. Open-loop replay reproduces this
  /// exactly for ANY governor (stats are stream-derived; see replay_backend).
  RunResult recorded;
  std::vector<GpuEpochReport> epochs;

  [[nodiscard]] int numClusters() const noexcept {
    return epochs.empty() ? 0
                          : static_cast<int>(epochs.front().clusters.size());
  }
};

/// FNV-1a 64-bit over arbitrary bytes — the trace checksum function.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Assembles an EpochTrace from a recorder that ran with replay capture
/// enabled (throws DataError when it was not — the column summaries alone
/// cannot reconstruct the 47-counter observations).
[[nodiscard]] EpochTrace traceFromRecorder(const EpochTraceRecorder& recorder,
                                           std::string workload,
                                           std::string mechanism,
                                           std::uint64_t seed, VfTable vf,
                                           RunResult recorded);

/// Full file image (header + payload) as a byte string.
[[nodiscard]] std::string serializeTrace(const EpochTrace& trace);

/// Parses a full file image; throws DataError per the integrity rules above.
[[nodiscard]] EpochTrace deserializeTrace(std::string_view bytes);

void saveTrace(const EpochTrace& trace, const std::string& path);
[[nodiscard]] EpochTrace loadTrace(const std::string& path);

/// Header fields of a trace file, for display without a full parse. Validates
/// magic/version and that the payload length on disk matches the header.
struct TraceFileInfo {
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};
[[nodiscard]] TraceFileInfo traceFileInfo(const std::string& path);

}  // namespace ssm::engine
