// EpochLoop: the one epoch-driving loop behind every full-program run.
//
// Before the engine layer this loop existed three times (runWithGovernor,
// runWithChipGovernor, runSequence) and could only ever drive the live Gpu.
// It now lives here once, backend-agnostic: telemetry comes from an
// EpochSource, commanded levels go through an ActuationSink, and the
// cross-cutting seams — trace recording, fault injection, hardened-governor
// wrapping — are loop concerns configured once instead of being
// re-implemented per entry point.
//
// Numeric contract: driving a SimBackend, the loop's arithmetic (accumulator
// order, histogram bookkeeping, aggregation in chip-wide mode) is exactly
// the pre-engine runner's, so RunResults are byte-identical to the old code
// paths (pinned by tests/test_engine.cpp).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/hardened_governor.hpp"
#include "engine/epoch_stream.hpp"
#include "gpusim/runner.hpp"

namespace ssm {
class EpochTraceRecorder;
class EpochFaultHook;
}  // namespace ssm

namespace ssm::thermal {
class ThermalThrottle;
}  // namespace ssm::thermal

namespace ssm::engine {

/// Per-run loop configuration: the cross-cutting seams.
struct LoopConfig {
  TimeNs max_time_ns = 5 * kNsPerMs;
  /// Streams every epoch report (post fault corruption) when non-null.
  EpochTraceRecorder* trace = nullptr;
  /// Corrupts telemetry / arbitrates actuation when non-null. Zero-cost
  /// when null: one pointer comparison per call site, nothing else.
  EpochFaultHook* faults = nullptr;
  /// Thermal throttle arbitrated between governor decision and actuation
  /// when non-null: it observes the (possibly fault-corrupted) temperature
  /// tracks each epoch and clamps commanded levels to its cap. Requires a
  /// source whose reports carry thermal tracks; per-cluster mode only.
  /// Zero-cost when null, like `faults`.
  thermal::ThermalThrottle* throttle = nullptr;
  /// ONE governor sees the cluster-averaged observation and its decision is
  /// applied chip-wide (the §V.A ablation). Fault injection is per-cluster
  /// and not supported in this mode.
  bool chip_wide = false;
  /// Wrap every governor in the HardenedGovernor decorator (degraded-mode
  /// watchdog); transitions go to `mode_log` when set.
  bool harden = false;
  HardenedConfig harden_cfg{};
  GovernorModeLog* mode_log = nullptr;
  /// Message of the ContractError thrown when the stream is not done by
  /// max_time_ns (kept configurable so the legacy entry points preserve
  /// their exact diagnostics).
  std::string_view timeout_message =
      "program did not retire before max_time_ns; raise the limit";
};

/// One governor instance per cluster (or a single one in chip-wide mode).
[[nodiscard]] std::vector<std::unique_ptr<DvfsGovernor>> makeGovernors(
    const GovernorFactory& factory, int count);

class EpochLoop {
 public:
  explicit EpochLoop(LoopConfig cfg = {}) : cfg_(cfg) {}

  /// Creates governors from `factory` (wrapping them per LoopConfig::harden)
  /// and runs the stream to completion.
  [[nodiscard]] RunResult run(EpochSource& source, ActuationSink& sink,
                              const GovernorFactory& factory,
                              std::string mechanism_name) const;

  /// Runs with externally owned governors — the sequence-execution use case
  /// where policy state persists across programs. `governors.size()` must be
  /// numClusters() (or 1 in chip-wide mode). Hardening does not apply here:
  /// wrap before constructing the governors instead.
  [[nodiscard]] RunResult run(
      EpochSource& source, ActuationSink& sink,
      std::span<const std::unique_ptr<DvfsGovernor>> governors,
      std::string mechanism_name) const;

  [[nodiscard]] const LoopConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] RunResult runPerCluster(
      EpochSource& source, ActuationSink& sink,
      std::span<const std::unique_ptr<DvfsGovernor>> governors,
      std::string mechanism_name) const;
  [[nodiscard]] RunResult runChipWide(EpochSource& source, ActuationSink& sink,
                                      DvfsGovernor& governor,
                                      std::string mechanism_name) const;

  LoopConfig cfg_;
};

}  // namespace ssm::engine
