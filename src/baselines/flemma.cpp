#include "baselines/flemma.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "nn/mlp.hpp"  // softmaxInPlace

namespace ssm {

FlemmaGovernor::FlemmaGovernor(VfTable vf, FlemmaConfig cfg, Rng rng)
    : vf_(std::move(vf)),
      cfg_(cfg),
      rng_(rng),
      num_actions_(static_cast<int>(vf_.size())),
      actor_w_(static_cast<std::size_t>(num_actions_),
               std::vector<double>(kStateDim, 0.0)),
      critic_w_(kStateDim, 0.0),
      epsilon_(cfg.epsilon0) {
  SSM_CHECK(cfg_.update_period >= 1, "update period must be positive");
}

void FlemmaGovernor::reset() {
  // Learned weights survive across programs (the hierarchical design keeps
  // the coarse policy); episodic state does not.
  buffer_.clear();
  last_state_.clear();
  last_action_ = -1;
  has_last_ = false;
  insts_ref_ = 0.0;
  power_ref_ = 0.0;
  epoch_count_ = 0;
  epsilon_ = cfg_.epsilon0;
}

std::vector<double> FlemmaGovernor::makeState(
    const EpochObservation& obs) const {
  // Normalised Table-I-style features; ad-hoc scales keep values O(1)
  // without requiring a training corpus (F-LEMMA learns online).
  const auto& c = obs.counters;
  const double cycles = std::max(1.0, c.get(CounterId::kCyclesElapsed));
  std::vector<double> s(kStateDim, 0.0);
  s[0] = c.get(CounterId::kIpc) / 2.0;
  s[1] = c.get(CounterId::kPowerClusterW) / 8.0;
  s[2] = std::min(1.0, c.get(CounterId::kStallMemFrac));
  s[3] = std::min(1.0, c.get(CounterId::kStallNoReadyCycles) / cycles);
  s[4] = static_cast<double>(obs.level) /
         static_cast<double>(num_actions_ - 1);
  s[5] = 1.0;  // bias
  return s;
}

std::vector<double> FlemmaGovernor::policyProbs(
    const std::vector<double>& s) const {
  std::vector<double> logits(static_cast<std::size_t>(num_actions_), 0.0);
  for (int a = 0; a < num_actions_; ++a) {
    double acc = 0.0;
    for (int i = 0; i < kStateDim; ++i)
      acc += actor_w_[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] *
             s[static_cast<std::size_t>(i)];
    logits[static_cast<std::size_t>(a)] = acc;
  }
  softmaxInPlace(logits);
  return logits;
}

double FlemmaGovernor::valueOf(const std::vector<double>& s) const {
  double acc = 0.0;
  for (int i = 0; i < kStateDim; ++i)
    acc += critic_w_[static_cast<std::size_t>(i)] *
           s[static_cast<std::size_t>(i)];
  return acc;
}

void FlemmaGovernor::coarseUpdate() {
  for (const Transition& t : buffer_) {
    const double target = t.reward + cfg_.discount * valueOf(t.next_state);
    const double delta = target - valueOf(t.state);
    for (int i = 0; i < kStateDim; ++i)
      critic_w_[static_cast<std::size_t>(i)] +=
          cfg_.critic_lr * delta * t.state[static_cast<std::size_t>(i)];
    const auto probs = policyProbs(t.state);
    for (int a = 0; a < num_actions_; ++a) {
      const double indicator = (a == t.action) ? 1.0 : 0.0;
      const double coeff = cfg_.actor_lr * delta *
                           (indicator - probs[static_cast<std::size_t>(a)]);
      for (int i = 0; i < kStateDim; ++i)
        actor_w_[static_cast<std::size_t>(a)][static_cast<std::size_t>(i)] +=
            coeff * t.state[static_cast<std::size_t>(i)];
    }
  }
  buffer_.clear();
  epsilon_ *= cfg_.epsilon_decay;
  ++updates_;
}

VfLevel FlemmaGovernor::decide(const EpochObservation& obs) {
  if (obs.cluster_done) return 0;
  ++epoch_count_;

  const std::vector<double> state = makeState(obs);
  const double insts = static_cast<double>(obs.instructions);

  // Running references for reward normalisation. The throughput reference
  // tracks the fastest rate seen so far (a proxy for default-speed work),
  // reduced by the preset per the §V.B reward modification.
  insts_ref_ = std::max(insts_ref_ * cfg_.ref_decay, insts);
  power_ref_ = std::max(power_ref_, obs.power_w);

  // Reward for the transition that *led to* this observation.
  if (has_last_) {
    const double power_term =
        power_ref_ > 0.0 ? 1.0 - obs.power_w / power_ref_ : 0.0;
    const double target_insts = (1.0 - cfg_.loss_preset) * insts_ref_;
    const double shortfall =
        target_insts > 0.0
            ? std::max(0.0, (target_insts - insts) / target_insts)
            : 0.0;
    const double reward = cfg_.w_power * power_term - cfg_.w_perf * shortfall;
    buffer_.push_back({last_state_, last_action_, reward, state});
  }

  if (epoch_count_ % cfg_.update_period == 0 && !buffer_.empty())
    coarseUpdate();

  // Fine-grained decision: epsilon-greedy over the linear softmax policy.
  int action = 0;
  if (rng_.nextBernoulli(epsilon_)) {
    action = static_cast<int>(
        rng_.nextBelow(static_cast<std::uint64_t>(num_actions_)));
  } else {
    const auto probs = policyProbs(state);
    action = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }

  last_state_ = state;
  last_action_ = action;
  has_last_ = true;
  return action;
}

}  // namespace ssm
