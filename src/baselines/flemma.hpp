// F-LEMMA baseline (Zou et al., MLCAD'20), adapted per §V.B.
//
// Hierarchical learning-based power management: a *fine-grained* linear
// softmax policy (the "linear classifier") picks a V/f level every 10 µs
// epoch, while a *coarse-grained* actor-critic update refits the policy and
// value weights from the transitions collected since the previous update.
// Per §V.B the update cycle is shortened ("faster F-LEMMA") so the method
// can react within short-duration programs, and the instruction-count
// baseline in the reward is reduced by the performance-loss preset so the
// objective matches SSMDVFS's.
//
// The structural weakness the paper demonstrates (§V.C) emerges naturally:
// the policy starts uninformed and must explore the state-action space,
// so on ~300 µs programs most epochs are spent learning.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/governor.hpp"

namespace ssm {

struct FlemmaConfig {
  double loss_preset = 0.10;
  /// Coarse-grained update period in epochs ("faster F-LEMMA"). Even
  /// shortened, the actor-critic refit is slow relative to a ~300 µs
  /// program (§V.C: "hundreds of microseconds to make the first
  /// well-founded decision").
  int update_period = 12;
  double actor_lr = 0.04;
  double critic_lr = 0.05;
  double discount = 0.9;
  /// Reward weights: power saving vs throughput shortfall.
  double w_power = 1.5;
  double w_perf = 2.5;
  /// Per-epoch decay of the throughput reference used to normalise the
  /// reward (§V.B reduces the instruction-count baseline). Because the
  /// reference tracks *recent* throughput, sustained low-frequency phases
  /// drag the target down with them — the self-referential reward that
  /// makes the adapted F-LEMMA race to low frequencies on short programs.
  double ref_decay = 0.99;
  /// Initial exploration rate and per-update decay.
  double epsilon0 = 0.60;
  double epsilon_decay = 0.95;
  std::uint64_t seed = 0xf1e44aULL;
};

class FlemmaGovernor final : public DvfsGovernor {
 public:
  FlemmaGovernor(VfTable vf, FlemmaConfig cfg, Rng rng);

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] int updatesDone() const noexcept { return updates_; }

 private:
  static constexpr int kStateDim = 6;  ///< 5 normalised features + bias

  struct Transition {
    std::vector<double> state;
    int action = 0;
    double reward = 0.0;
    std::vector<double> next_state;
  };

  [[nodiscard]] std::vector<double> makeState(
      const EpochObservation& obs) const;
  [[nodiscard]] std::vector<double> policyProbs(
      const std::vector<double>& s) const;
  [[nodiscard]] double valueOf(const std::vector<double>& s) const;
  void coarseUpdate();

  VfTable vf_;
  FlemmaConfig cfg_;
  Rng rng_;
  int num_actions_;
  std::vector<std::vector<double>> actor_w_;  ///< [action][state dim]
  std::vector<double> critic_w_;
  double epsilon_;
  int updates_ = 0;

  // Episodic state.
  std::vector<Transition> buffer_;
  std::vector<double> last_state_;
  int last_action_ = -1;
  bool has_last_ = false;
  double insts_ref_ = 0.0;   ///< running throughput reference (default-speed proxy)
  double power_ref_ = 0.0;   ///< running power normalisation
  int epoch_count_ = 0;
};

class FlemmaFactory final : public GovernorFactory {
 public:
  FlemmaFactory(VfTable vf, FlemmaConfig cfg)
      : vf_(std::move(vf)), cfg_(cfg) {}
  std::unique_ptr<DvfsGovernor> create(int cluster_id) const override {
    Rng rng(cfg_.seed ^ (0x9e3779b97f4a7c15ULL *
                         static_cast<std::uint64_t>(cluster_id + 1)));
    return std::make_unique<FlemmaGovernor>(vf_, cfg_, rng);
  }

 private:
  VfTable vf_;
  FlemmaConfig cfg_;
};

}  // namespace ssm
