// Ondemand-style utilization governor (Linux cpufreq analog).
//
// Not part of the paper's comparison, but the governor every practitioner
// reaches for first: raise frequency when issue utilisation is high, lower
// it when low. It has no notion of a performance-loss preset and no
// prediction — a useful foil for both SSMDVFS and PCSTALL in the examples
// and the extended comparisons.
#pragma once

#include <memory>

#include "gpusim/governor.hpp"

namespace ssm {

struct OndemandConfig {
  /// Raise the level when issue utilisation exceeds this bound.
  double up_threshold = 0.80;
  /// Lower the level when issue utilisation falls below this bound.
  double down_threshold = 0.45;
  /// Epochs of consistent signal required before moving (hysteresis).
  int hold_epochs = 2;
  /// Jump straight to the top on a high signal (classic ondemand) instead
  /// of stepping one level at a time.
  bool jump_to_max = true;
};

class OndemandGovernor final : public DvfsGovernor {
 public:
  OndemandGovernor(VfTable vf, OndemandConfig cfg = {});

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

 private:
  VfTable vf_;
  OndemandConfig cfg_;
  int up_streak_ = 0;
  int down_streak_ = 0;
};

class OndemandFactory final : public GovernorFactory {
 public:
  explicit OndemandFactory(VfTable vf, OndemandConfig cfg = {})
      : vf_(std::move(vf)), cfg_(cfg) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<OndemandGovernor>(vf_, cfg_);
  }

 private:
  VfTable vf_;
  OndemandConfig cfg_;
};

}  // namespace ssm
