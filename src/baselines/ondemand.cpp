#include "baselines/ondemand.hpp"

#include "common/check.hpp"

namespace ssm {

OndemandGovernor::OndemandGovernor(VfTable vf, OndemandConfig cfg)
    : vf_(std::move(vf)), cfg_(cfg) {
  SSM_CHECK(cfg_.up_threshold > cfg_.down_threshold,
            "thresholds must leave a dead band");
  SSM_CHECK(cfg_.hold_epochs >= 1, "hold_epochs must be >= 1");
}

void OndemandGovernor::reset() {
  up_streak_ = 0;
  down_streak_ = 0;
}

VfLevel OndemandGovernor::decide(const EpochObservation& obs) {
  if (obs.cluster_done) return 0;

  const double util = obs.counters.get(CounterId::kIssueUtil);
  VfLevel level = obs.level;

  if (util >= cfg_.up_threshold) {
    ++up_streak_;
    down_streak_ = 0;
    if (up_streak_ >= cfg_.hold_epochs) {
      level = cfg_.jump_to_max ? vf_.defaultLevel() : vf_.clamp(level + 1);
      up_streak_ = 0;
    }
  } else if (util <= cfg_.down_threshold) {
    ++down_streak_;
    up_streak_ = 0;
    if (down_streak_ >= cfg_.hold_epochs) {
      level = vf_.clamp(level - 1);
      down_streak_ = 0;
    }
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }
  SSM_AUDIT_CHECK(vf_.isValid(level),
                  "governor must emit a level inside the V/f table");
  return level;
}

}  // namespace ssm
