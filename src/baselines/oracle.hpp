// Oracle static-frequency search.
//
// Runs a program once per V/f level and returns the best static choice for
// a given objective. Not realisable online (it needs the whole program),
// but it bounds what any *static* policy can achieve — the gap between the
// oracle and SSMDVFS measures the value of per-epoch adaptation, and the
// gap between the oracle and the baseline measures how much static
// headroom a workload has at all.
#pragma once

#include <string>

#include "gpusim/runner.hpp"

namespace ssm {

enum class OracleObjective { kMinEdp, kMinEnergy, kMinEnergyUnderLatency };

struct OracleResult {
  VfLevel best_level = 0;
  RunResult run;                ///< the winning static run
  std::vector<RunResult> all;  ///< one entry per level, ascending
};

/// Evaluates every static level on a copy of `gpu`.
/// For kMinEnergyUnderLatency, `latency_bound` is the allowed slowdown
/// versus the default level (e.g. 1.10); infeasible levels are skipped and
/// the default level wins if nothing fits.
[[nodiscard]] OracleResult findBestStaticLevel(
    const Gpu& gpu, OracleObjective objective,
    double latency_bound = 1.10, TimeNs max_time_ns = 5 * kNsPerMs);

}  // namespace ssm
