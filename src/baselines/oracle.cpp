#include "baselines/oracle.hpp"

#include "common/check.hpp"

namespace ssm {

OracleResult findBestStaticLevel(const Gpu& gpu, OracleObjective objective,
                                 double latency_bound, TimeNs max_time_ns) {
  SSM_CHECK(latency_bound >= 1.0, "latency bound below 1 is unsatisfiable");
  OracleResult result;
  const int levels = static_cast<int>(gpu.vfTable().size());

  for (VfLevel level = 0; level < levels; ++level) {
    Gpu copy = gpu;
    copy.runUntil(max_time_ns, level);
    SSM_CHECK(copy.allDone(), "oracle run did not retire; raise max_time_ns");
    RunResult r;
    r.mechanism = "static-" + std::to_string(level);
    r.exec_time_ns = copy.finishTimeNs();
    r.energy_j = copy.totalEnergyJ();
    r.edp = copy.edp();
    r.instructions = copy.totalInstructions();
    result.all.push_back(std::move(r));
  }

  const RunResult& base = result.all.back();  // default level reference
  int best = levels - 1;
  const auto better = [&](const RunResult& a, const RunResult& b) {
    switch (objective) {
      case OracleObjective::kMinEdp: return a.edp < b.edp;
      case OracleObjective::kMinEnergy: return a.energy_j < b.energy_j;
      case OracleObjective::kMinEnergyUnderLatency: return a.energy_j < b.energy_j;
    }
    return false;
  };
  for (int level = 0; level < levels; ++level) {
    const RunResult& r = result.all[static_cast<std::size_t>(level)];
    if (objective == OracleObjective::kMinEnergyUnderLatency) {
      const double slowdown = static_cast<double>(r.exec_time_ns) /
                              static_cast<double>(base.exec_time_ns);
      if (slowdown > latency_bound) continue;
    }
    if (better(r, result.all[static_cast<std::size_t>(best)])) best = level;
  }
  result.best_level = best;
  result.run = result.all[static_cast<std::size_t>(best)];
  return result;
}

}  // namespace ssm
