// PCSTALL baseline (Bharadwaj et al., ASPLOS'22 — "Predict, don't react"),
// adapted per §V.B: the frequency-sensitivity prediction model is retained,
// but the objective is changed from EDP minimisation to picking the minimal
// frequency whose predicted performance loss stays under the preset.
//
// The mechanism follows the original's core idea: frequency sensitivity is
// measured, not assumed. Execution time is modelled as
//     T(f) = (1 - m) * T0 * (f0/f) + m * T0,
// and the memory fraction m is *inferred from observed throughput changes
// across epochs that ran at different frequencies* (the linear-additivity
// step), exploiting the iterative behaviour of GPGPU kernels: every
// probe_period epochs without fresh evidence, the governor spends one epoch
// one level lower purely to measure. The estimate starts fully conservative
// (m = 0: everything scales with f) and decays toward conservative as
// evidence goes stale.
//
// This reproduces the behaviour the paper reports for the adapted PCSTALL:
// performance loss stays within the preset, but EDP gains are small (the
// estimator is conservative and slow on ~300 µs programs), and phase
// changes between the measurement and application epochs occasionally
// corrupt the sensitivity estimate — the analytical-model weakness SSMDVFS
// is built to avoid (§I).
#pragma once

#include <memory>

#include "gpusim/governor.hpp"

namespace ssm {

struct PcstallConfig {
  double loss_preset = 0.10;
  /// Epochs without a fresh (delta-f, delta-throughput) measurement before
  /// the governor spends one epoch a level lower to probe.
  /// Characterisation at 10 µs granularity needs heavy smoothing to stay
  /// stable (single-epoch counters are noisy and phase-confounded), which
  /// keeps the adapted PCSTALL conservative on ~300 µs programs — the
  /// paper's observed behaviour (latency safe, EDP near baseline).
  int probe_period = 20;
  /// EWMA weight of a fresh memory-fraction measurement.
  double ewma_alpha = 0.15;
  /// Per-epoch decay of the memory fraction toward 0 (conservative) while
  /// no fresh evidence arrives.
  double stale_decay = 0.99;
  double mem_frac_cap = 0.95;
  /// Guard band on the preset: the controller targets
  /// preset * (1 - guard_band) to absorb time-split-model error (unmodelled
  /// compute/memory overlap). Without it the choice sits exactly on the
  /// preset boundary and phase noise violates the limit — the paper reports
  /// the adapted PCSTALL *keeping* performance loss within the preset.
  double guard_band = 0.20;
};

class PcstallGovernor final : public DvfsGovernor {
 public:
  PcstallGovernor(VfTable vf, PcstallConfig cfg);

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

  /// Current memory-fraction estimate (0 = fully frequency-sensitive).
  [[nodiscard]] double memFraction() const noexcept { return m_hat_; }

 private:
  /// Solves the time-split model for m from the throughput ratio between
  /// two epochs at different frequencies; returns a clamped estimate or a
  /// negative value when the configuration is degenerate.
  [[nodiscard]] double inferMemFraction(double rate_ratio, double f_prev,
                                        double f_cur) const noexcept;

  /// Predicted relative time at frequency f, normalised to the default.
  [[nodiscard]] double relTimeAt(double f_mhz) const noexcept;

  VfTable vf_;
  PcstallConfig cfg_;
  double m_hat_ = 0.0;
  double prev_rate_ = -1.0;   ///< instructions per epoch, previous epoch
  double prev_freq_ = -1.0;
  int epochs_since_measure_ = 0;
  bool probe_pending_ = false;  ///< next epoch is a measurement epoch
};

class PcstallFactory final : public GovernorFactory {
 public:
  PcstallFactory(VfTable vf, PcstallConfig cfg)
      : vf_(std::move(vf)), cfg_(cfg) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<PcstallGovernor>(vf_, cfg_);
  }

 private:
  VfTable vf_;
  PcstallConfig cfg_;
};

}  // namespace ssm
