#include "baselines/pcstall.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

PcstallGovernor::PcstallGovernor(VfTable vf, PcstallConfig cfg)
    : vf_(std::move(vf)), cfg_(cfg) {
  SSM_CHECK(cfg_.loss_preset >= 0.0, "preset must be non-negative");
  SSM_CHECK(cfg_.probe_period >= 2, "probe period must be >= 2 epochs");
  SSM_CHECK(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0,1]");
}

void PcstallGovernor::reset() {
  m_hat_ = 0.0;
  prev_rate_ = -1.0;
  prev_freq_ = -1.0;
  epochs_since_measure_ = 0;
  probe_pending_ = false;
}

double PcstallGovernor::inferMemFraction(double rate_ratio, double f_prev,
                                         double f_cur) const noexcept {
  const double f0 = vf_.at(vf_.defaultLevel()).freq_mhz;
  const double a_p = f0 / f_prev;
  const double a_c = f0 / f_cur;
  const double denom = a_p - 1.0 + rate_ratio * (1.0 - a_c);
  if (std::abs(denom) < 1e-9) return -1.0;
  const double m = (a_p - rate_ratio * a_c) / denom;
  // Phase changes can push the solution outside [0,1]; clamping keeps the
  // (realistically noisy) evidence usable.
  return std::clamp(m, 0.0, cfg_.mem_frac_cap);
}

double PcstallGovernor::relTimeAt(double f_mhz) const noexcept {
  const double f0 = vf_.at(vf_.defaultLevel()).freq_mhz;
  return (1.0 - m_hat_) * (f0 / f_mhz) + m_hat_;
}

VfLevel PcstallGovernor::decide(const EpochObservation& obs) {
  if (obs.cluster_done) return 0;

  const double rate_cur = static_cast<double>(obs.instructions);
  const double f_cur = obs.counters.get(CounterId::kFreqMhz);
  SSM_CHECK(f_cur > 0.0, "observation lacks a frequency counter");

  // --- update the sensitivity estimate from observed deltas ----------------
  if (prev_rate_ > 0.0 && rate_cur > 0.0 &&
      std::abs(f_cur - prev_freq_) > 1.0) {
    const double m = inferMemFraction(rate_cur / prev_rate_, prev_freq_,
                                      f_cur);
    if (m >= 0.0) {
      m_hat_ = cfg_.ewma_alpha * m + (1.0 - cfg_.ewma_alpha) * m_hat_;
      epochs_since_measure_ = 0;
      probe_pending_ = false;
    }
  } else {
    m_hat_ *= cfg_.stale_decay;  // stale evidence: drift conservative
    ++epochs_since_measure_;
  }
  prev_rate_ = rate_cur;
  prev_freq_ = f_cur;

  // --- minimal level whose predicted loss fits the preset -------------------
  VfLevel chosen = vf_.defaultLevel();
  const double effective_preset = cfg_.loss_preset * (1.0 - cfg_.guard_band);
  for (VfLevel level = 0; level < static_cast<VfLevel>(vf_.size()); ++level) {
    const double loss = relTimeAt(vf_.at(level).freq_mhz) - 1.0;
    if (loss <= effective_preset) {
      chosen = level;
      break;  // ascending frequencies: first fit is minimal
    }
  }

  // --- iterative characterisation: probe one level down when evidence is
  // stale and the choice would not change the frequency anyway. ------------
  const double chosen_freq = vf_.at(chosen).freq_mhz;
  if (epochs_since_measure_ >= cfg_.probe_period &&
      std::abs(chosen_freq - f_cur) < 1.0 && !probe_pending_) {
    probe_pending_ = true;
    return vf_.clamp(chosen - 1);
  }
  return chosen;
}

}  // namespace ssm
