// Seeded realisation of a FaultSpec over one simulation run.
//
// Determinism contract (the fleet contract, see docs/fleet.md): every draw
// comes from an Rng forked off (seed, stream, epoch, cluster) coordinates —
// never from call order, thread identity, or how many draws another cell
// made. The same FaultSpec + seed therefore replays byte-identically at any
// --jobs value, and adding a fault class to the spec never perturbs the
// draws of the others.
//
// One injector serves ONE simulation run (single-writer, like
// EpochTraceRecorder); parallel sweeps construct one per job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "faults/fault_spec.hpp"
#include "gpusim/fault_hook.hpp"
#include "gpusim/gpu.hpp"

namespace ssm::faults {

/// How many cluster-epoch events each fault class actually injected
/// (heatsoak counts epochs — it is chip-wide, not per-cluster).
struct FaultCounts {
  std::int64_t noise = 0;
  std::int64_t dropout = 0;
  std::int64_t delay = 0;
  std::int64_t failed = 0;
  std::int64_t stuck = 0;
  std::int64_t jitter = 0;
  std::int64_t heatsoak = 0;
  std::int64_t tsensor = 0;
  std::int64_t tjolt = 0;

  [[nodiscard]] std::int64_t total() const noexcept {
    return noise + dropout + delay + failed + stuck + jitter + heatsoak +
           tsensor + tjolt;
  }
  friend bool operator==(const FaultCounts&, const FaultCounts&) = default;
};

class FaultInjector final : public EpochFaultHook {
 public:
  /// `seed` should itself be coordinate-derived (e.g. forked from the
  /// sweep cell's sim_seed) so fleet replays stay deterministic.
  FaultInjector(FaultSpec spec, std::uint64_t seed);

  void onTelemetry(GpuEpochReport& report) override;
  VfLevel onActuate(int cluster_id, VfLevel requested,
                    VfLevel current) override;

  [[nodiscard]] const FaultCounts& counts() const noexcept { return counts_; }
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// Epochs observed so far (== the epoch index the NEXT onTelemetry gets).
  [[nodiscard]] std::int64_t epochsSeen() const noexcept { return epoch_ + 1; }

 private:
  /// Independent stream per (purpose, epoch, cluster).
  [[nodiscard]] Rng cellRng(std::uint64_t stream, std::int64_t epoch,
                            int cluster) const noexcept;

  void corruptCluster(EpochObservation& obs, int cluster);

  /// Corrupts the temperature tracks (heatsoak, tsensor, tjolt). No-op on
  /// reports without thermal tracks: there is no sensor to corrupt.
  void corruptThermal(GpuEpochReport& report);

  FaultSpec spec_;
  Rng root_;
  FaultCounts counts_;
  std::int64_t epoch_ = -1;  ///< index of the epoch last seen by onTelemetry

  /// Pristine telemetry history per cluster (ring, newest last) feeding the
  /// stale-dropout and delayed-telemetry classes.
  std::vector<std::vector<EpochObservation>> history_;
  std::size_t history_depth_ = 0;
  /// First epoch index at which each cluster's stuck level unfreezes.
  std::vector<std::int64_t> stuck_until_;

  /// Pristine per-cluster temperature history ring (tsensor mode=lag).
  std::vector<std::vector<double>> temp_history_;
  std::size_t temp_history_depth_ = 0;
  /// tsensor mode=stuck latch: held reading and first epoch it releases.
  std::vector<double> sensor_stuck_value_;
  std::vector<std::int64_t> sensor_stuck_until_;
};

}  // namespace ssm::faults
