#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cmath>

namespace ssm::faults {

namespace {

// Each fault class draws from its own stream so enabling one class never
// perturbs another's draws (the header's independence guarantee).
constexpr std::uint64_t kStreamDropout = 0;
constexpr std::uint64_t kStreamDelay = 1;
constexpr std::uint64_t kStreamNoise = 2;
constexpr std::uint64_t kStreamJitter = 3;
constexpr std::uint64_t kStreamStuck = 4;
constexpr std::uint64_t kStreamFail = 5;

/// The telemetry payload a fault may replace: the counters plus the derived
/// per-cluster scalars. Identity fields (level, timing, cluster_id, done)
/// always reflect reality.
void copyPayload(EpochObservation& dst, const EpochObservation& src) {
  dst.counters = src.counters;
  dst.power_w = src.power_w;
  dst.instructions = src.instructions;
}

void zeroPayload(EpochObservation& obs) {
  obs.counters.clear();
  obs.power_w = 0.0;
  obs.instructions = 0;
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), root_(seed) {
  if (spec_.delay.p > 0.0) history_depth_ = static_cast<std::size_t>(spec_.delay.k);
  if (spec_.dropout.p > 0.0 && spec_.dropout.stale)
    history_depth_ = std::max<std::size_t>(history_depth_, 1);
}

Rng FaultInjector::cellRng(std::uint64_t stream, std::int64_t epoch,
                           int cluster) const noexcept {
  return root_.fork(stream)
      .fork(static_cast<std::uint64_t>(epoch))
      .fork(static_cast<std::uint64_t>(cluster));
}

void FaultInjector::onTelemetry(GpuEpochReport& report) {
  ++epoch_;
  const std::size_t n = report.clusters.size();
  const std::size_t cap = history_depth_ + 1;
  if (history_depth_ > 0 && history_.size() < n)
    history_.resize(n, std::vector<EpochObservation>(cap));

  // Record the pristine view first: stale/delayed telemetry must replay what
  // the hardware really did k epochs ago, not an already-faulted block.
  if (history_depth_ > 0) {
    const std::size_t slot = static_cast<std::size_t>(epoch_) % cap;
    for (std::size_t c = 0; c < n; ++c)
      history_[c][slot] = report.clusters[c];
  }

  if (!spec_.window.contains(epoch_)) return;

  for (std::size_t c = 0; c < n; ++c) {
    EpochObservation& obs = report.clusters[c];
    if (obs.cluster_done) continue;
    corruptCluster(obs, static_cast<int>(c));
  }
}

void FaultInjector::corruptCluster(EpochObservation& obs, int cluster) {
  // Replacement faults first (dropout, then delay), perturbations after
  // (noise, then jitter); all triggers are drawn from independent streams.
  if (spec_.dropout.p > 0.0 &&
      cellRng(kStreamDropout, epoch_, cluster).nextBernoulli(spec_.dropout.p)) {
    ++counts_.dropout;
    if (spec_.dropout.stale && epoch_ >= 1) {
      const std::size_t cap = history_depth_ + 1;
      copyPayload(obs, history_[static_cast<std::size_t>(cluster)]
                           [static_cast<std::size_t>(epoch_ - 1) % cap]);
    } else {
      zeroPayload(obs);
    }
  }

  if (spec_.delay.p > 0.0 && epoch_ >= spec_.delay.k &&
      cellRng(kStreamDelay, epoch_, cluster).nextBernoulli(spec_.delay.p)) {
    ++counts_.delay;
    const std::size_t cap = history_depth_ + 1;
    copyPayload(obs, history_[static_cast<std::size_t>(cluster)]
                         [static_cast<std::size_t>(epoch_ - spec_.delay.k) %
                          cap]);
  }

  if (spec_.noise.p > 0.0) {
    Rng rng = cellRng(kStreamNoise, epoch_, cluster);
    if (rng.nextBernoulli(spec_.noise.p)) {
      ++counts_.noise;
      for (int i = 0; i < kNumCounters; ++i) {
        const auto id = static_cast<CounterId>(i);
        const double factor =
            1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
        obs.counters.set(id, std::max(0.0, obs.counters.get(id) * factor));
      }
      const double pf =
          1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
      obs.power_w = std::max(0.0, obs.power_w * pf);
      const double inf =
          1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
      obs.instructions = std::max<std::int64_t>(
          0, static_cast<std::int64_t>(std::llround(
                 static_cast<double>(obs.instructions) * inf)));
    }
  }

  if (spec_.jitter.p > 0.0) {
    Rng rng = cellRng(kStreamJitter, epoch_, cluster);
    if (rng.nextBernoulli(spec_.jitter.p)) {
      ++counts_.jitter;
      const double delta = spec_.jitter.frac * (2.0 * rng.nextDouble() - 1.0);
      for (const CounterId id : {CounterId::kFreqMhz, CounterId::kCyclesElapsed,
                                 CounterId::kActiveCycles}) {
        obs.counters.set(id,
                         std::max(0.0, obs.counters.get(id) * (1.0 + delta)));
      }
    }
  }
}

VfLevel FaultInjector::onActuate(int cluster_id, VfLevel requested,
                                 VfLevel current) {
  const std::int64_t epoch = std::max<std::int64_t>(epoch_, 0);
  if (stuck_until_.size() <= static_cast<std::size_t>(cluster_id))
    stuck_until_.resize(static_cast<std::size_t>(cluster_id) + 1, 0);
  std::int64_t& until = stuck_until_[static_cast<std::size_t>(cluster_id)];

  // A freeze that started inside the window keeps holding past its end —
  // the window gates triggers, not physical consequences.
  if (epoch < until) {
    ++counts_.stuck;
    return current;
  }
  if (requested == current || !spec_.window.contains(epoch)) return requested;

  if (spec_.stuck.p > 0.0 &&
      cellRng(kStreamStuck, epoch, cluster_id).nextBernoulli(spec_.stuck.p)) {
    until = epoch + spec_.stuck.epochs;
    ++counts_.stuck;
    return current;
  }
  if (spec_.fail.p > 0.0 &&
      cellRng(kStreamFail, epoch, cluster_id).nextBernoulli(spec_.fail.p)) {
    ++counts_.failed;
    return current;
  }
  return requested;
}

}  // namespace ssm::faults
