#include "faults/fault_injector.hpp"

#include <algorithm>
#include <cmath>

namespace ssm::faults {

namespace {

// Each fault class draws from its own stream so enabling one class never
// perturbs another's draws (the header's independence guarantee).
constexpr std::uint64_t kStreamDropout = 0;
constexpr std::uint64_t kStreamDelay = 1;
constexpr std::uint64_t kStreamNoise = 2;
constexpr std::uint64_t kStreamJitter = 3;
constexpr std::uint64_t kStreamStuck = 4;
constexpr std::uint64_t kStreamFail = 5;
constexpr std::uint64_t kStreamTsensor = 6;
constexpr std::uint64_t kStreamTjolt = 7;

/// The telemetry payload a fault may replace: the counters plus the derived
/// per-cluster scalars. Identity fields (level, timing, cluster_id, done)
/// always reflect reality.
void copyPayload(EpochObservation& dst, const EpochObservation& src) {
  dst.counters = src.counters;
  dst.power_w = src.power_w;
  dst.instructions = src.instructions;
}

void zeroPayload(EpochObservation& obs) {
  obs.counters.clear();
  obs.power_w = 0.0;
  obs.instructions = 0;
}

}  // namespace

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), root_(seed) {
  if (spec_.delay.p > 0.0) history_depth_ = static_cast<std::size_t>(spec_.delay.k);
  if (spec_.dropout.p > 0.0 && spec_.dropout.stale)
    history_depth_ = std::max<std::size_t>(history_depth_, 1);
  if (spec_.tsensor.p > 0.0 &&
      spec_.tsensor.mode == ThermalSensorFault::Mode::kLag)
    temp_history_depth_ = static_cast<std::size_t>(spec_.tsensor.k);
}

Rng FaultInjector::cellRng(std::uint64_t stream, std::int64_t epoch,
                           int cluster) const noexcept {
  return root_.fork(stream)
      .fork(static_cast<std::uint64_t>(epoch))
      .fork(static_cast<std::uint64_t>(cluster));
}

void FaultInjector::onTelemetry(GpuEpochReport& report) {
  ++epoch_;
  const std::size_t n = report.clusters.size();
  const std::size_t cap = history_depth_ + 1;
  if (history_depth_ > 0 && history_.size() < n)
    history_.resize(n, std::vector<EpochObservation>(cap));

  // Record the pristine view first: stale/delayed telemetry must replay what
  // the hardware really did k epochs ago, not an already-faulted block.
  if (history_depth_ > 0) {
    const std::size_t slot = static_cast<std::size_t>(epoch_) % cap;
    for (std::size_t c = 0; c < n; ++c)
      history_[c][slot] = report.clusters[c];
  }

  // Pristine temperature history for the lagging-sensor class, recorded
  // before any corruption (a lagging sensor replays what the die really
  // read k epochs ago).
  if (temp_history_depth_ > 0 && report.hasThermal()) {
    const std::size_t tcap = temp_history_depth_ + 1;
    if (temp_history_.size() < n)
      temp_history_.resize(n, std::vector<double>(tcap, 0.0));
    const std::size_t slot = static_cast<std::size_t>(epoch_) % tcap;
    for (std::size_t c = 0; c < n; ++c)
      temp_history_[c][slot] = report.cluster_temps_c[c];
  }

  // corruptThermal gates its own triggers on the window: a latched stuck
  // sensor keeps holding past the window's end (triggers are gated,
  // consequences are not), mirroring the stuck-level actuation class.
  corruptThermal(report);

  if (!spec_.window.contains(epoch_)) return;

  for (std::size_t c = 0; c < n; ++c) {
    EpochObservation& obs = report.clusters[c];
    if (obs.cluster_done) continue;
    corruptCluster(obs, static_cast<int>(c));
  }
}

void FaultInjector::corruptThermal(GpuEpochReport& report) {
  if (!report.hasThermal()) return;
  const bool in_window = spec_.window.contains(epoch_);
  const std::size_t n = report.cluster_temps_c.size();

  // Heat-soak: deterministic chip-wide additive episode, linear ramp from
  // the window start. Touches every cluster sensor and the package sensor.
  if (spec_.heatsoak.add_c > 0.0 && in_window) {
    const auto since = static_cast<double>(epoch_ - spec_.window.start + 1);
    const double frac =
        std::min(1.0, since / static_cast<double>(spec_.heatsoak.ramp));
    const double add = spec_.heatsoak.add_c * frac;
    for (double& t : report.cluster_temps_c) t += add;
    report.package_temp_c += add;
    ++counts_.heatsoak;
  }

  if (spec_.tsensor.p > 0.0) {
    if (sensor_stuck_until_.size() < n) {
      sensor_stuck_until_.resize(n, 0);
      sensor_stuck_value_.resize(n, 0.0);
    }
    for (std::size_t c = 0; c < n; ++c) {
      double& t = report.cluster_temps_c[c];
      // An already-latched sensor holds its reading regardless of window.
      if (spec_.tsensor.mode == ThermalSensorFault::Mode::kStuck &&
          epoch_ < sensor_stuck_until_[c]) {
        t = sensor_stuck_value_[c];
        ++counts_.tsensor;
        continue;
      }
      if (!in_window ||
          !cellRng(kStreamTsensor, epoch_, static_cast<int>(c))
               .nextBernoulli(spec_.tsensor.p))
        continue;
      ++counts_.tsensor;
      switch (spec_.tsensor.mode) {
        case ThermalSensorFault::Mode::kLag: {
          if (epoch_ >= spec_.tsensor.k) {
            const std::size_t tcap = temp_history_depth_ + 1;
            t = temp_history_[c][static_cast<std::size_t>(
                                     epoch_ - spec_.tsensor.k) %
                                 tcap];
          }
          break;
        }
        case ThermalSensorFault::Mode::kStuck:
          sensor_stuck_value_[c] = t;
          sensor_stuck_until_[c] = epoch_ + spec_.tsensor.k;
          break;
        case ThermalSensorFault::Mode::kDrop:
          t = 0.0;  // dead sensor: reads nothing, masks real overheating
          break;
      }
    }
  }

  if (spec_.tjolt.p > 0.0 && in_window) {
    for (std::size_t c = 0; c < n; ++c) {
      if (cellRng(kStreamTjolt, epoch_, static_cast<int>(c))
              .nextBernoulli(spec_.tjolt.p)) {
        report.cluster_temps_c[c] += spec_.tjolt.amp_c;
        ++counts_.tjolt;
      }
    }
  }
}

void FaultInjector::corruptCluster(EpochObservation& obs, int cluster) {
  // Replacement faults first (dropout, then delay), perturbations after
  // (noise, then jitter); all triggers are drawn from independent streams.
  if (spec_.dropout.p > 0.0 &&
      cellRng(kStreamDropout, epoch_, cluster).nextBernoulli(spec_.dropout.p)) {
    ++counts_.dropout;
    if (spec_.dropout.stale && epoch_ >= 1) {
      const std::size_t cap = history_depth_ + 1;
      copyPayload(obs, history_[static_cast<std::size_t>(cluster)]
                           [static_cast<std::size_t>(epoch_ - 1) % cap]);
    } else {
      zeroPayload(obs);
    }
  }

  if (spec_.delay.p > 0.0 && epoch_ >= spec_.delay.k &&
      cellRng(kStreamDelay, epoch_, cluster).nextBernoulli(spec_.delay.p)) {
    ++counts_.delay;
    const std::size_t cap = history_depth_ + 1;
    copyPayload(obs, history_[static_cast<std::size_t>(cluster)]
                         [static_cast<std::size_t>(epoch_ - spec_.delay.k) %
                          cap]);
  }

  if (spec_.noise.p > 0.0) {
    Rng rng = cellRng(kStreamNoise, epoch_, cluster);
    if (rng.nextBernoulli(spec_.noise.p)) {
      ++counts_.noise;
      for (int i = 0; i < kNumCounters; ++i) {
        const auto id = static_cast<CounterId>(i);
        const double factor =
            1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
        obs.counters.set(id, std::max(0.0, obs.counters.get(id) * factor));
      }
      const double pf =
          1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
      obs.power_w = std::max(0.0, obs.power_w * pf);
      const double inf =
          1.0 + spec_.noise.bias + spec_.noise.sigma * rng.nextGaussian();
      obs.instructions = std::max<std::int64_t>(
          0, static_cast<std::int64_t>(std::llround(
                 static_cast<double>(obs.instructions) * inf)));
    }
  }

  if (spec_.jitter.p > 0.0) {
    Rng rng = cellRng(kStreamJitter, epoch_, cluster);
    if (rng.nextBernoulli(spec_.jitter.p)) {
      ++counts_.jitter;
      const double delta = spec_.jitter.frac * (2.0 * rng.nextDouble() - 1.0);
      for (const CounterId id : {CounterId::kFreqMhz, CounterId::kCyclesElapsed,
                                 CounterId::kActiveCycles}) {
        obs.counters.set(id,
                         std::max(0.0, obs.counters.get(id) * (1.0 + delta)));
      }
    }
  }
}

VfLevel FaultInjector::onActuate(int cluster_id, VfLevel requested,
                                 VfLevel current) {
  const std::int64_t epoch = std::max<std::int64_t>(epoch_, 0);
  if (stuck_until_.size() <= static_cast<std::size_t>(cluster_id))
    stuck_until_.resize(static_cast<std::size_t>(cluster_id) + 1, 0);
  std::int64_t& until = stuck_until_[static_cast<std::size_t>(cluster_id)];

  // A freeze that started inside the window keeps holding past its end —
  // the window gates triggers, not physical consequences.
  if (epoch < until) {
    ++counts_.stuck;
    return current;
  }
  if (requested == current || !spec_.window.contains(epoch)) return requested;

  if (spec_.stuck.p > 0.0 &&
      cellRng(kStreamStuck, epoch, cluster_id).nextBernoulli(spec_.stuck.p)) {
    until = epoch + spec_.stuck.epochs;
    ++counts_.stuck;
    return current;
  }
  if (spec_.fail.p > 0.0 &&
      cellRng(kStreamFail, epoch, cluster_id).nextBernoulli(spec_.fail.p)) {
    ++counts_.failed;
    return current;
  }
  return requested;
}

}  // namespace ssm::faults
