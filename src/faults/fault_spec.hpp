// Scenario description for deterministic fault injection.
//
// A FaultSpec names WHICH failure classes are active and how intense they
// are; it carries no randomness itself. The textual form is the CLI and
// sweep vocabulary (`--faults`), designed to round-trip exactly:
//
//   noise:p=0.3,sigma=0.25,bias=0.05;dropout:p=0.1,mode=zero;delay:p=0.2,k=3
//
// Clauses are ';'-separated, keys ','-separated. Clauses (all optional):
//   noise   p, sigma, bias   multiplicative Gaussian noise + relative bias
//                            on every counter the governor observes
//   dropout p, mode          counter block lost for an epoch; mode=zero
//                            delivers a zeroed block, mode=stale repeats
//                            the previous epoch's block
//   delay   p, k             telemetry arrives k epochs late (stale view)
//   fail    p                a commanded V/f transition silently fails to
//                            land for one epoch
//   stuck   p, epochs        a commanded transition freezes the clock at
//                            the current level for `epochs` epochs
//   jitter  p, frac          transient clock jitter: the reported clock
//                            counters (freq, cycles) read up to ±frac off
//   heatsoak add, ramp       sensed temperatures climb by up to `add` degC,
//                            ramping linearly over `ramp` epochs from the
//                            window start (hot-aisle / blocked-fan episode)
//   tsensor p, mode, k       thermal sensor pathology: mode=lag reports the
//                            reading from k epochs ago, mode=stuck latches
//                            the current reading for k epochs, mode=drop
//                            reads 0 degC (dead sensor masks overheating)
//   tjolt   p, amp           one-epoch sensed-temperature spike of `amp`
//                            degC that can falsely trip the throttle
//   window  start, end       restricts all clauses to epochs [start, end)
//                            — transient bursts instead of run-long faults
//
// Probabilities are per cluster-epoch (per transition for fail/stuck).
// The thermal clauses corrupt the temperature tracks of the epoch report;
// on runs without thermal modeling they are accepted but inject nothing
// (there is no sensor to corrupt).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ssm::faults {

struct CounterNoiseFault {
  double p = 0.0;      ///< per cluster-epoch trigger probability
  double sigma = 0.0;  ///< relative Gaussian sigma per counter
  double bias = 0.0;   ///< relative additive bias when triggered

  friend bool operator==(const CounterNoiseFault&,
                         const CounterNoiseFault&) = default;
};

struct CounterDropoutFault {
  double p = 0.0;
  bool stale = false;  ///< mode=stale repeats the last block; else zeroed

  friend bool operator==(const CounterDropoutFault&,
                         const CounterDropoutFault&) = default;
};

struct TelemetryDelayFault {
  double p = 0.0;
  int k = 1;  ///< how many epochs late the observation arrives

  friend bool operator==(const TelemetryDelayFault&,
                         const TelemetryDelayFault&) = default;
};

struct FailedTransitionFault {
  double p = 0.0;  ///< per commanded transition

  friend bool operator==(const FailedTransitionFault&,
                         const FailedTransitionFault&) = default;
};

struct StuckLevelFault {
  double p = 0.0;  ///< per commanded transition
  int epochs = 4;  ///< how long the level stays frozen

  friend bool operator==(const StuckLevelFault&,
                         const StuckLevelFault&) = default;
};

struct ClockJitterFault {
  double p = 0.0;
  double frac = 0.0;  ///< relative perturbation of the clock counters

  friend bool operator==(const ClockJitterFault&,
                         const ClockJitterFault&) = default;
};

/// Deterministic (no RNG) environmental episode: sensed temperatures climb
/// by up to `add_c` degC, ramping linearly over `ramp` epochs from the
/// fault window's start.
struct HeatSoakFault {
  double add_c = 0.0;
  int ramp = 64;

  friend bool operator==(const HeatSoakFault&, const HeatSoakFault&) = default;
};

/// Per-cluster thermal sensor pathology.
struct ThermalSensorFault {
  enum class Mode : std::uint8_t { kLag, kStuck, kDrop };

  double p = 0.0;       ///< per cluster-epoch trigger probability
  Mode mode = Mode::kLag;
  int k = 4;            ///< lag depth (kLag) or latch duration (kStuck)

  friend bool operator==(const ThermalSensorFault&,
                         const ThermalSensorFault&) = default;
};

/// Transient one-epoch sensed-temperature spike.
struct ThermalJoltFault {
  double p = 0.0;
  double amp_c = 15.0;

  friend bool operator==(const ThermalJoltFault&,
                         const ThermalJoltFault&) = default;
};

/// Epoch range [start, end) the faults are confined to. The default covers
/// the whole run.
struct FaultWindow {
  std::int64_t start = 0;
  std::int64_t end = kNoEnd;
  static constexpr std::int64_t kNoEnd = -1;  ///< open-ended

  [[nodiscard]] bool contains(std::int64_t epoch) const noexcept {
    return epoch >= start && (end == kNoEnd || epoch < end);
  }
  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

struct FaultSpec {
  CounterNoiseFault noise;
  CounterDropoutFault dropout;
  TelemetryDelayFault delay;
  FailedTransitionFault fail;
  StuckLevelFault stuck;
  ClockJitterFault jitter;
  HeatSoakFault heatsoak;
  ThermalSensorFault tsensor;
  ThermalJoltFault tjolt;
  FaultWindow window;

  /// True when any clause can fire. A spec that is all-defaults (or only a
  /// window) injects nothing and must never cost RNG draws.
  [[nodiscard]] bool active() const noexcept;

  /// Canonical textual form; parse(print()) == *this. Inactive specs print
  /// as the empty string.
  [[nodiscard]] std::string print() const;

  /// Parses the `--faults` grammar above. The empty string and the literal
  /// "none" yield an inactive spec. Throws ssm::DataError on unknown
  /// clauses or keys, out-of-range values, and malformed syntax.
  [[nodiscard]] static FaultSpec parse(std::string_view text);

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

}  // namespace ssm::faults
