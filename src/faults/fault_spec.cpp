#include "faults/fault_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/check.hpp"

namespace ssm::faults {

namespace {

/// Splits `s` on `sep`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t at = s.find(sep, start);
    if (at == std::string_view::npos) at = s.size();
    if (at > start) out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void specError(const std::string& what) {
  throw DataError("bad --faults spec: " + what);
}

double parseDouble(std::string_view clause, std::string_view key,
                   std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(clause) + "." + std::string(key) + "='" + v +
         "' is not a number");
  return d;
}

std::int64_t parseInt(std::string_view clause, std::string_view key,
                      std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const std::int64_t i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(clause) + "." + std::string(key) + "='" + v +
         "' is not an integer");
  return i;
}

double parseProb(std::string_view clause, std::string_view key,
                 std::string_view value) {
  const double p = parseDouble(clause, key, value);
  if (p < 0.0 || p > 1.0)
    specError(std::string(clause) + ".p must be in [0,1], got " +
         std::string(value));
  return p;
}

double parseNonNeg(std::string_view clause, std::string_view key,
                   std::string_view value) {
  const double d = parseDouble(clause, key, value);
  if (d < 0.0)
    specError(std::string(clause) + "." + std::string(key) +
         " must be >= 0, got " + std::string(value));
  return d;
}

/// One parsed "key=value" pair of a clause body.
struct KeyValue {
  std::string_view key;
  std::string_view value;
};

std::vector<KeyValue> parseBody(std::string_view clause,
                                std::string_view body) {
  std::vector<KeyValue> out;
  for (std::string_view kv : split(body, ',')) {
    kv = trim(kv);
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= kv.size())
      specError("clause '" + std::string(clause) + "' expects key=value pairs, " +
           "got '" + std::string(kv) + "'");
    out.push_back({trim(kv.substr(0, eq)), trim(kv.substr(eq + 1))});
  }
  return out;
}

[[noreturn]] void unknownKey(std::string_view clause, std::string_view key) {
  specError("unknown key '" + std::string(key) + "' in clause '" +
       std::string(clause) + "'");
}

/// %.17g: shortest form that survives a strtod round trip for doubles.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool FaultSpec::active() const noexcept {
  return noise.p > 0.0 || dropout.p > 0.0 || delay.p > 0.0 || fail.p > 0.0 ||
         stuck.p > 0.0 || jitter.p > 0.0 || heatsoak.add_c > 0.0 ||
         tsensor.p > 0.0 || tjolt.p > 0.0;
}

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  text = trim(text);
  if (text.empty() || text == "none") return spec;

  bool seen[10] = {};
  for (std::string_view raw : split(text, ';')) {
    const std::string_view clause_text = trim(raw);
    if (clause_text.empty()) continue;
    const std::size_t colon = clause_text.find(':');
    const std::string_view name = trim(clause_text.substr(
        0, colon == std::string_view::npos ? clause_text.size() : colon));
    const std::string_view body =
        colon == std::string_view::npos ? std::string_view{}
                                        : clause_text.substr(colon + 1);
    const auto kvs = parseBody(name, body);

    int which = -1;
    if (name == "noise") {
      which = 0;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.noise.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "sigma")
          spec.noise.sigma = parseNonNeg(name, kv.key, kv.value);
        else if (kv.key == "bias")
          spec.noise.bias = parseDouble(name, kv.key, kv.value);
        else unknownKey(name, kv.key);
      }
    } else if (name == "dropout") {
      which = 1;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.dropout.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "mode") {
          if (kv.value == "zero") spec.dropout.stale = false;
          else if (kv.value == "stale") spec.dropout.stale = true;
          else specError("dropout.mode must be 'zero' or 'stale', got '" +
                    std::string(kv.value) + "'");
        } else unknownKey(name, kv.key);
      }
    } else if (name == "delay") {
      which = 2;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.delay.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "k") {
          const std::int64_t k = parseInt(name, kv.key, kv.value);
          if (k < 1 || k > 64) specError("delay.k must be in [1,64]");
          spec.delay.k = static_cast<int>(k);
        } else unknownKey(name, kv.key);
      }
    } else if (name == "fail") {
      which = 3;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.fail.p = parseProb(name, kv.key, kv.value);
        else unknownKey(name, kv.key);
      }
    } else if (name == "stuck") {
      which = 4;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.stuck.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "epochs") {
          const std::int64_t e = parseInt(name, kv.key, kv.value);
          if (e < 1 || e > 100000) specError("stuck.epochs must be in [1,1e5]");
          spec.stuck.epochs = static_cast<int>(e);
        } else unknownKey(name, kv.key);
      }
    } else if (name == "jitter") {
      which = 5;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.jitter.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "frac")
          spec.jitter.frac = parseNonNeg(name, kv.key, kv.value);
        else unknownKey(name, kv.key);
      }
    } else if (name == "heatsoak") {
      which = 7;
      for (const auto& kv : kvs) {
        if (kv.key == "add")
          spec.heatsoak.add_c = parseNonNeg(name, kv.key, kv.value);
        else if (kv.key == "ramp") {
          const std::int64_t e = parseInt(name, kv.key, kv.value);
          if (e < 1 || e > 100000) specError("heatsoak.ramp must be in [1,1e5]");
          spec.heatsoak.ramp = static_cast<int>(e);
        } else unknownKey(name, kv.key);
      }
    } else if (name == "tsensor") {
      which = 8;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.tsensor.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "mode") {
          if (kv.value == "lag") spec.tsensor.mode = ThermalSensorFault::Mode::kLag;
          else if (kv.value == "stuck")
            spec.tsensor.mode = ThermalSensorFault::Mode::kStuck;
          else if (kv.value == "drop")
            spec.tsensor.mode = ThermalSensorFault::Mode::kDrop;
          else specError("tsensor.mode must be 'lag', 'stuck' or 'drop', got '" +
                    std::string(kv.value) + "'");
        } else if (kv.key == "k") {
          const std::int64_t k = parseInt(name, kv.key, kv.value);
          if (k < 1 || k > 64) specError("tsensor.k must be in [1,64]");
          spec.tsensor.k = static_cast<int>(k);
        } else unknownKey(name, kv.key);
      }
    } else if (name == "tjolt") {
      which = 9;
      for (const auto& kv : kvs) {
        if (kv.key == "p") spec.tjolt.p = parseProb(name, kv.key, kv.value);
        else if (kv.key == "amp")
          spec.tjolt.amp_c = parseNonNeg(name, kv.key, kv.value);
        else unknownKey(name, kv.key);
      }
    } else if (name == "window") {
      which = 6;
      for (const auto& kv : kvs) {
        if (kv.key == "start") {
          spec.window.start = parseInt(name, kv.key, kv.value);
          if (spec.window.start < 0) specError("window.start must be >= 0");
        } else if (kv.key == "end") {
          spec.window.end = parseInt(name, kv.key, kv.value);
          if (spec.window.end < 1) specError("window.end must be >= 1");
        } else unknownKey(name, kv.key);
      }
      if (spec.window.end != FaultWindow::kNoEnd &&
          spec.window.end <= spec.window.start)
        specError("window.end must be > window.start");
    } else {
      specError("unknown clause '" + std::string(name) +
           "' (expected noise|dropout|delay|fail|stuck|jitter|heatsoak|"
           "tsensor|tjolt|window)");
    }
    if (seen[which]) specError("duplicate clause '" + std::string(name) + "'");
    seen[which] = true;
  }
  return spec;
}

std::string FaultSpec::print() const {
  std::string out;
  const auto clause = [&](const std::string& text) {
    if (!out.empty()) out += ';';
    out += text;
  };
  if (noise.p > 0.0)
    clause("noise:p=" + num(noise.p) + ",sigma=" + num(noise.sigma) +
           ",bias=" + num(noise.bias));
  if (dropout.p > 0.0)
    clause("dropout:p=" + num(dropout.p) +
           ",mode=" + (dropout.stale ? "stale" : "zero"));
  if (delay.p > 0.0)
    clause("delay:p=" + num(delay.p) + ",k=" + std::to_string(delay.k));
  if (fail.p > 0.0) clause("fail:p=" + num(fail.p));
  if (stuck.p > 0.0)
    clause("stuck:p=" + num(stuck.p) +
           ",epochs=" + std::to_string(stuck.epochs));
  if (jitter.p > 0.0)
    clause("jitter:p=" + num(jitter.p) + ",frac=" + num(jitter.frac));
  if (heatsoak.add_c > 0.0)
    clause("heatsoak:add=" + num(heatsoak.add_c) +
           ",ramp=" + std::to_string(heatsoak.ramp));
  if (tsensor.p > 0.0) {
    const char* mode = tsensor.mode == ThermalSensorFault::Mode::kLag ? "lag"
                       : tsensor.mode == ThermalSensorFault::Mode::kStuck
                           ? "stuck"
                           : "drop";
    clause("tsensor:p=" + num(tsensor.p) + ",mode=" + mode +
           ",k=" + std::to_string(tsensor.k));
  }
  if (tjolt.p > 0.0)
    clause("tjolt:p=" + num(tjolt.p) + ",amp=" + num(tjolt.amp_c));
  if (active() && window != FaultWindow{}) {
    std::string w = "window:start=" + std::to_string(window.start);
    if (window.end != FaultWindow::kNoEnd)
      w += ",end=" + std::to_string(window.end);
    clause(w);
  }
  return out;
}

}  // namespace ssm::faults
