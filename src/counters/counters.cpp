#include "counters/counters.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

namespace {

struct CounterInfo {
  std::string_view name;
  CounterCategory category;
  std::string_view description;
};

constexpr std::array<CounterInfo, kNumCounters> kInfo = {{
    {"inst_total", CounterCategory::kInstruction,
     "warp instructions issued in the epoch"},
    {"inst_ialu", CounterCategory::kInstruction,
     "integer ALU instructions issued"},
    {"inst_falu", CounterCategory::kInstruction,
     "floating-point ALU instructions issued"},
    {"inst_sfu", CounterCategory::kInstruction,
     "special-function-unit instructions issued"},
    {"inst_load", CounterCategory::kInstruction,
     "global/local load instructions issued"},
    {"inst_store", CounterCategory::kInstruction,
     "store instructions issued"},
    {"inst_shared", CounterCategory::kInstruction,
     "shared-memory instructions issued"},
    {"inst_branch", CounterCategory::kInstruction,
     "branch instructions issued"},
    {"ipc", CounterCategory::kInstruction,
     "instructions per core cycle over the epoch"},
    {"inst_per_warp", CounterCategory::kInstruction,
     "mean instructions issued per resident warp"},
    {"issue_util", CounterCategory::kInstruction,
     "issued slots / (issue width x cycles)"},
    {"frac_compute", CounterCategory::kInstruction,
     "compute (ialu+falu+sfu) share of instructions"},
    {"frac_mem", CounterCategory::kInstruction,
     "memory (load+store+shared) share of instructions"},
    {"frac_branch", CounterCategory::kInstruction,
     "branch share of instructions"},
    {"stall_mem_load_cycles", CounterCategory::kStall,
     "warp-cycles blocked on an outstanding load (MH from loads)"},
    {"stall_mem_other_cycles", CounterCategory::kStall,
     "warp-cycles blocked on stores/shared/fences (MH\\L)"},
    {"stall_mem_total_cycles", CounterCategory::kStall,
     "all memory-hazard warp-cycles (MH)"},
    {"stall_control_cycles", CounterCategory::kStall,
     "warp-cycles lost to divergence/branch resolve"},
    {"stall_exec_dep_cycles", CounterCategory::kStall,
     "warp-cycles waiting on an ALU producer"},
    {"stall_no_ready_cycles", CounterCategory::kStall,
     "cycles with zero issuable warps (exposed stall)"},
    {"l1_read_access", CounterCategory::kStall,
     "L1 data-cache read accesses"},
    {"l1_read_miss", CounterCategory::kStall,
     "L1 data-cache read misses (L1CRM)"},
    {"l1_read_miss_rate", CounterCategory::kStall,
     "L1 read misses / read accesses"},
    {"l1_write_access", CounterCategory::kStall,
     "L1 write accesses"},
    {"l1_write_miss", CounterCategory::kStall,
     "L1 write misses"},
    {"l2_access", CounterCategory::kStall,
     "L2 accesses (= L1 read misses)"},
    {"l2_miss", CounterCategory::kStall,
     "L2 misses (DRAM reads)"},
    {"l2_miss_rate", CounterCategory::kStall,
     "L2 misses / accesses"},
    {"dram_reqs", CounterCategory::kStall,
     "DRAM transactions issued"},
    {"dram_bytes", CounterCategory::kStall,
     "DRAM bytes moved"},
    {"dram_util", CounterCategory::kStall,
     "chip DRAM bandwidth utilisation [0,1]"},
    {"mshr_full_events", CounterCategory::kStall,
     "stalls because every MSHR was occupied"},
    {"store_buf_full_events", CounterCategory::kStall,
     "stalls on store-buffer back-pressure"},
    {"avg_mem_latency_ns", CounterCategory::kStall,
     "mean L2/DRAM latency observed (wall-clock ns)"},
    {"stall_mem_frac", CounterCategory::kStall,
     "memory-hazard warp-cycles / (cycles x warps)"},
    {"stall_control_frac", CounterCategory::kStall,
     "control-hazard warp-cycles / (cycles x warps)"},
    {"stall_exec_frac", CounterCategory::kStall,
     "exec-dependency warp-cycles / (cycles x warps)"},
    {"power_cluster_w", CounterCategory::kPower,
     "cluster power this epoch, watts (PPC)"},
    {"power_dynamic_w", CounterCategory::kPower,
     "dynamic component of cluster power, watts"},
    {"power_leakage_w", CounterCategory::kPower,
     "leakage component of cluster power, watts"},
    {"energy_epoch_mj", CounterCategory::kPower,
     "cluster energy this epoch, millijoules"},
    {"avg_voltage", CounterCategory::kPower,
     "cluster supply voltage, volts"},
    {"freq_mhz", CounterCategory::kClock,
     "cluster clock frequency, MHz"},
    {"cycles_elapsed", CounterCategory::kClock,
     "core cycles in the epoch"},
    {"active_cycles", CounterCategory::kClock,
     "cycles before the cluster retired its last warp"},
    {"occupancy", CounterCategory::kClock,
     "resident warps / warp slots"},
    {"warps_done", CounterCategory::kClock,
     "warps retired so far on this cluster"},
}};

}  // namespace

std::string_view counterName(CounterId id) noexcept {
  return kInfo[static_cast<std::size_t>(id)].name;
}

CounterCategory counterCategory(CounterId id) noexcept {
  return kInfo[static_cast<std::size_t>(id)].category;
}

std::string_view counterDescription(CounterId id) noexcept {
  return kInfo[static_cast<std::size_t>(id)].description;
}

void CounterBlock::finalizeDerived(Cycles cycles_in_epoch, int max_warps,
                                   int issue_width) noexcept {
  const double cycles =
      std::max<double>(1.0, static_cast<double>(cycles_in_epoch));
  const double inst = get(CounterId::kInstTotal);

  set(CounterId::kIpc, inst / cycles);
  set(CounterId::kInstPerWarp, inst / std::max(1, max_warps));
  set(CounterId::kIssueUtil, inst / (cycles * std::max(1, issue_width)));

  const double compute = get(CounterId::kInstIalu) +
                         get(CounterId::kInstFalu) +
                         get(CounterId::kInstSfu);
  const double memish = get(CounterId::kInstLoad) +
                        get(CounterId::kInstStore) +
                        get(CounterId::kInstShared);
  const double denom = std::max(1.0, inst);
  set(CounterId::kFracCompute, compute / denom);
  set(CounterId::kFracMem, memish / denom);
  set(CounterId::kFracBranch, get(CounterId::kInstBranch) / denom);

  set(CounterId::kStallMemTotalCycles,
      get(CounterId::kStallMemLoadCycles) +
          get(CounterId::kStallMemOtherCycles));

  const double l1r = get(CounterId::kL1ReadAccess);
  set(CounterId::kL1ReadMissRate,
      l1r > 0.0 ? get(CounterId::kL1ReadMiss) / l1r : 0.0);
  const double l2 = get(CounterId::kL2Access);
  set(CounterId::kL2MissRate, l2 > 0.0 ? get(CounterId::kL2Miss) / l2 : 0.0);

  const double warp_cycles = cycles * std::max(1, max_warps);
  set(CounterId::kStallMemFrac,
      get(CounterId::kStallMemTotalCycles) / warp_cycles);
  set(CounterId::kStallControlFrac,
      get(CounterId::kStallControlCycles) / warp_cycles);
  set(CounterId::kStallExecFrac,
      get(CounterId::kStallExecDepCycles) / warp_cycles);

  set(CounterId::kCyclesElapsed, cycles);

  // Audit: every derived feature the NN consumes must come out finite, and
  // the rate/fraction counters must stay in [0, 1].
  SSM_AUDIT_CHECK(std::isfinite(get(CounterId::kIpc)) &&
                      std::isfinite(get(CounterId::kInstPerWarp)) &&
                      std::isfinite(get(CounterId::kStallMemFrac)),
                  "derived counters must be finite");
  SSM_AUDIT_CHECK(get(CounterId::kL1ReadMissRate) >= 0.0 &&
                      get(CounterId::kL1ReadMissRate) <= 1.0 &&
                      get(CounterId::kL2MissRate) >= 0.0 &&
                      get(CounterId::kL2MissRate) <= 1.0 &&
                      get(CounterId::kFracCompute) >= 0.0 &&
                      get(CounterId::kFracCompute) <= 1.0,
                  "rate counters must lie in [0, 1]");
}

std::array<double, 5> extractTable1Features(const CounterBlock& c) noexcept {
  std::array<double, 5> out{};
  for (std::size_t i = 0; i < kTable1Features.size(); ++i)
    out[i] = c.get(kTable1Features[i]);
  return out;
}

}  // namespace ssm
