// Per-cluster, per-epoch performance counters.
//
// §III.B of the paper collects 47 performance counters per 10 µs epoch and
// groups them into three categories: instruction metrics, execution-stall
// metrics, and power metrics. This module defines that counter block, the
// exact 47-counter vector used for feature selection (§IV.A), and the
// 5-feature subset of Table I that survives RFE:
//   IPC (instructions per core), PPC (power per core), MH (memory hazard),
//   MH\L (memory hazard from other than load), L1CRM (L1 cache read miss).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/units.hpp"

namespace ssm {

/// Category of a performance counter (§III.B).
enum class CounterCategory { kInstruction, kStall, kPower, kClock };

/// Identifiers for all 47 counters. The order is the feature order used by
/// RFE and by the raw-47 model variant.
enum class CounterId : int {
  // --- instruction metrics -------------------------------------------
  kInstTotal = 0,
  kInstIalu,
  kInstFalu,
  kInstSfu,
  kInstLoad,
  kInstStore,
  kInstShared,
  kInstBranch,
  kIpc,              ///< instructions per cycle over the epoch
  kInstPerWarp,
  kIssueUtil,        ///< issued slots / (issue width * cycles)
  kFracCompute,
  kFracMem,
  kFracBranch,
  // --- execution stall metrics ---------------------------------------
  kStallMemLoadCycles,    ///< warp blocked on an outstanding load
  kStallMemOtherCycles,   ///< blocked on store buffer / fence / atomic (MH\L)
  kStallMemTotalCycles,   ///< MH = load + other memory hazards
  kStallControlCycles,    ///< control hazard (divergence / branch resolve)
  kStallExecDepCycles,    ///< scoreboard dependency on an ALU result
  kStallNoReadyCycles,    ///< cycles with zero ready warps
  kL1ReadAccess,
  kL1ReadMiss,            ///< L1CRM
  kL1ReadMissRate,
  kL1WriteAccess,
  kL1WriteMiss,
  kL2Access,
  kL2Miss,
  kL2MissRate,
  kDramReqs,
  kDramBytes,
  kDramUtil,
  kMshrFullEvents,
  kStoreBufFullEvents,
  kAvgMemLatencyNs,
  kStallMemFrac,
  kStallControlFrac,
  kStallExecFrac,
  // --- power metrics ---------------------------------------------------
  kPowerClusterW,         ///< PPC
  kPowerDynamicW,
  kPowerLeakageW,
  kEnergyEpochMj,         ///< millijoules in this epoch
  kAvgVoltage,
  // --- clock / misc -----------------------------------------------------
  kFreqMhz,
  kCyclesElapsed,
  kActiveCycles,
  kOccupancy,
  kWarpsDone,
  kCount  // = 47
};

inline constexpr int kNumCounters = static_cast<int>(CounterId::kCount);
static_assert(kNumCounters == 47, "the paper collects 47 counters");

/// Human-readable short name, e.g. "ipc", "l1_read_miss".
[[nodiscard]] std::string_view counterName(CounterId id) noexcept;

/// The §III.B category of a counter.
[[nodiscard]] CounterCategory counterCategory(CounterId id) noexcept;

/// One-line description of what the counter measures and its unit.
[[nodiscard]] std::string_view counterDescription(CounterId id) noexcept;

/// Fixed-size counter vector for one cluster-epoch.
class CounterBlock {
 public:
  [[nodiscard]] double get(CounterId id) const noexcept {
    return values_[static_cast<std::size_t>(id)];
  }
  void set(CounterId id, double v) noexcept {
    values_[static_cast<std::size_t>(id)] = v;
  }
  void add(CounterId id, double v) noexcept {
    values_[static_cast<std::size_t>(id)] += v;
  }

  [[nodiscard]] std::span<const double> raw() const noexcept {
    return values_;
  }

  void clear() noexcept { values_.fill(0.0); }

  /// Fills the derived (rate/fraction) counters from the raw event counts.
  /// Must be called once at the end of an epoch.
  void finalizeDerived(Cycles cycles_in_epoch, int max_warps,
                       int issue_width) noexcept;

 private:
  std::array<double, kNumCounters> values_{};
};

/// The Table I feature subset, in the order fed to the models.
inline constexpr std::array<CounterId, 5> kTable1Features = {
    CounterId::kIpc,                  // IPC
    CounterId::kPowerClusterW,        // PPC
    CounterId::kStallMemTotalCycles,  // MH
    CounterId::kStallMemOtherCycles,  // MH\L
    CounterId::kL1ReadMiss,           // L1CRM
};

/// Extracts the Table I 5-feature vector from a counter block.
[[nodiscard]] std::array<double, 5> extractTable1Features(
    const CounterBlock& c) noexcept;

}  // namespace ssm
