#include "gpusim/hysteresis.hpp"

#include "common/check.hpp"

namespace ssm {

HysteresisGovernor::HysteresisGovernor(std::unique_ptr<DvfsGovernor> inner,
                                       HysteresisConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  SSM_CHECK(inner_ != nullptr, "decorator needs an inner governor");
  SSM_CHECK(cfg_.min_dwell_epochs >= 1, "dwell must be at least one epoch");
}

void HysteresisGovernor::reset() {
  inner_->reset();
  committed_ = -1;
  dwell_ = 0;
  pending_ = -1;
}

VfLevel HysteresisGovernor::decide(const EpochObservation& obs) {
  const VfLevel wanted = inner_->decide(obs);
  if (committed_ < 0) {
    committed_ = obs.level;  // adopt the level the cluster actually ran at
    dwell_ = 1;
  }
  ++dwell_;

  if (wanted == committed_) {
    pending_ = -1;
    return committed_;
  }
  if (dwell_ <= cfg_.min_dwell_epochs) return committed_;
  if (cfg_.confirm_switch && wanted != pending_) {
    pending_ = wanted;  // first request: remember, don't act yet
    return committed_;
  }
  committed_ = wanted;
  pending_ = -1;
  dwell_ = 0;
  return committed_;
}

}  // namespace ssm
