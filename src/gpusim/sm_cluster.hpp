// One streaming-multiprocessor cluster with its own clock domain.
//
// The cluster executes the workload's per-warp instruction streams with an
// event-accelerated cycle loop: per cycle it issues up to `issue_width`
// instructions from ready warps; blocked warps sit in a wake heap keyed by
// wall-clock readiness time, and fully-stalled stretches are skipped in one
// step. Core-side latencies are counted in cycles (they scale with the
// cluster frequency); L2/DRAM latencies are wall-clock nanoseconds (they do
// not) — the asymmetry that gives every workload its frequency sensitivity.
//
// The cluster is value-semantic: copying a cluster (as part of a Gpu copy)
// snapshots the full microarchitectural state, which the data-generation
// pipeline uses to replay the same execution at different V/f points.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "counters/counters.hpp"
#include "gpusim/gpu_config.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

/// Shared-memory-system environment for an epoch, computed by the Gpu from
/// the previous epoch's aggregate traffic (bandwidth queueing model).
struct MemEnv {
  double latency_mult = 1.0;      ///< multiplies L2/DRAM latencies
  double store_stall_prob = 0.02; ///< store-buffer backpressure probability
};

/// What one cluster produced in one epoch.
struct ClusterEpochResult {
  CounterBlock counters;          ///< power counters filled in by the Gpu
  std::int64_t instructions = 0;
  std::int64_t dram_reqs = 0;
  Cycles cycles = 0;              ///< usable cycles in the epoch
  double active_frac = 0.0;       ///< fraction of the epoch with live warps
  double issue_act = 0.0;         ///< issue-slot utilisation in [0,1]
  double alu_act = 0.0;
  double mem_act = 0.0;
  bool all_done = false;          ///< cluster retired its last warp
};

class SmCluster {
 public:
  SmCluster(std::shared_ptr<const GpuConfig> cfg,
            std::shared_ptr<const KernelProfile> kernel, Rng rng,
            int cluster_id);

  /// Simulates [start_ns, start_ns + len_ns) at `freq`. If `transitioned`,
  /// the first dvfs_transition_ns are lost to the IVR settling.
  ClusterEpochResult runEpoch(TimeNs start_ns, TimeNs len_ns, FreqMhz freq,
                              bool transitioned, const MemEnv& env);

  [[nodiscard]] bool done() const noexcept {
    return warps_done_ == static_cast<int>(warps_.size());
  }
  /// Wall-clock time the last warp retired; -1 while running.
  [[nodiscard]] TimeNs finishNs() const noexcept { return finish_ns_; }
  [[nodiscard]] std::int64_t totalInstructions() const noexcept {
    return total_insts_;
  }
  [[nodiscard]] int clusterId() const noexcept { return cluster_id_; }
  [[nodiscard]] int warpCount() const noexcept {
    return static_cast<int>(warps_.size());
  }

 private:
  enum class InstClass { kIalu, kFalu, kSfu, kLoad, kStore, kShared, kBranch };

  struct WarpState {
    Rng rng;
    int phase = 0;
    int loops_left = 0;
    std::int64_t insts_left = 0;   ///< remaining in the current phase
    TimeNs miss_done_at = -1;      ///< outstanding L1-miss completion
    int grace_left = 0;            ///< insts issuable past an open miss
    bool done = false;
  };

  struct EpochCtx {
    CounterBlock* counters;
    const MemEnv* env;
    double ns_per_cycle;
    FreqMhz freq;
    std::int64_t issued = 0;
    std::int64_t alu_issued = 0;
    std::int64_t mem_issued = 0;
  };

  /// Issues one instruction from warp `w` at wall-clock `now`; returns the
  /// time at which the warp may issue again.
  TimeNs issueOne(int w, TimeNs now, EpochCtx& ctx);

  InstClass sampleClass(const InstructionMix& mix, double u) const noexcept;
  void advanceWarpProgram(WarpState& warp, TimeNs now);
  void drainExpiredMisses(TimeNs now);

  std::shared_ptr<const GpuConfig> cfg_;
  std::shared_ptr<const KernelProfile> kernel_;
  int cluster_id_;

  std::vector<WarpState> warps_;
  /// (ready_at_ns, warp): min-heap of warps waiting to become issuable.
  std::priority_queue<std::pair<TimeNs, int>,
                      std::vector<std::pair<TimeNs, int>>,
                      std::greater<>>
      wait_;
  /// Completion times of in-flight L1 misses (MSHR occupancy).
  std::priority_queue<TimeNs, std::vector<TimeNs>, std::greater<>> misses_;

  int warps_done_ = 0;
  std::int64_t total_insts_ = 0;
  TimeNs finish_ns_ = -1;
};

}  // namespace ssm
