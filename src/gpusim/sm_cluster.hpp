// One streaming-multiprocessor cluster with its own clock domain.
//
// The cluster executes the workload's per-warp instruction streams with an
// event-accelerated cycle loop: per cycle it issues up to `issue_width`
// instructions from ready warps; blocked warps sit in a packed wake heap
// keyed by wall-clock readiness time, and fully-stalled stretches are
// skipped in one step. Core-side latencies are counted in cycles (they
// scale with the cluster frequency); L2/DRAM latencies are wall-clock
// nanoseconds (they do not) — the asymmetry that gives every workload its
// frequency sensitivity.
//
// The cluster is value-semantic: copying a cluster (as part of a Gpu copy)
// snapshots the full microarchitectural state, which the data-generation
// pipeline uses to replay the same execution at different V/f points.
#pragma once

#include <array>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "counters/counters.hpp"
#include "gpusim/gpu_config.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

/// Shared-memory-system environment for an epoch, computed by the Gpu from
/// the previous epoch's aggregate traffic (bandwidth queueing model).
struct MemEnv {
  double latency_mult = 1.0;      ///< multiplies L2/DRAM latencies
  double store_stall_prob = 0.02; ///< store-buffer backpressure probability
};

/// What one cluster produced in one epoch.
struct ClusterEpochResult {
  CounterBlock counters;          ///< power counters filled in by the Gpu
  std::int64_t instructions = 0;
  std::int64_t dram_reqs = 0;
  Cycles cycles = 0;              ///< usable cycles in the epoch
  double active_frac = 0.0;       ///< fraction of the epoch with live warps
  double issue_act = 0.0;         ///< issue-slot utilisation in [0,1]
  double alu_act = 0.0;
  double mem_act = 0.0;
  bool all_done = false;          ///< cluster retired its last warp
};

class SmCluster {
 public:
  SmCluster(std::shared_ptr<const GpuConfig> cfg,
            std::shared_ptr<const KernelProfile> kernel, Rng rng,
            int cluster_id);

  /// Simulates [start_ns, start_ns + len_ns) at `freq`. If `transitioned`,
  /// the first dvfs_transition_ns are lost to the IVR settling.
  ClusterEpochResult runEpoch(TimeNs start_ns, TimeNs len_ns, FreqMhz freq,
                              bool transitioned, const MemEnv& env);

  [[nodiscard]] bool done() const noexcept {
    return warps_done_ == static_cast<int>(warps_.size());
  }
  /// Wall-clock time the last warp retired; -1 while running.
  [[nodiscard]] TimeNs finishNs() const noexcept { return finish_ns_; }
  [[nodiscard]] std::int64_t totalInstructions() const noexcept {
    return total_insts_;
  }
  [[nodiscard]] int clusterId() const noexcept { return cluster_id_; }
  [[nodiscard]] int warpCount() const noexcept {
    return static_cast<int>(warps_.size());
  }

 private:
  enum class InstClass { kIalu, kFalu, kSfu, kLoad, kStore, kShared, kBranch };

  struct WarpState {
    Rng rng;
    int phase = 0;
    int loops_left = 0;
    std::int64_t insts_left = 0;   ///< remaining in the current phase
    TimeNs miss_done_at = -1;      ///< outstanding L1-miss completion
    int grace_left = 0;            ///< insts issuable past an open miss
    bool done = false;
  };

  /// Per-epoch scratch. The hot counter slots are accumulated in plain
  /// fields (registers in the issue loop) and flushed into the epoch's
  /// CounterBlock once at the end; each field mirrors one counter and sums
  /// the same values in the same order, so the flush is bit-identical to
  /// the per-event `add` calls it replaces.
  struct EpochCtx {
    CounterBlock* counters;
    const MemEnv* env;
    /// Raw phase-table pointer, hoisted so the issue loop does not re-chase
    /// the shared_ptr-owned KernelProfile on every instruction.
    const PhaseProfile* phases;
    double ns_per_cycle;
    TimeNs one_cycle_ns;
    // Fixed core-side latencies converted to wall-clock once per epoch
    // (`cyclesToNs` is a pure function of the latency and ns_per_cycle, so
    // hoisting it out of the issue loop is exact).
    /// Hazard latency (wall-clock) and stall charge (cycles, integer-valued)
    /// per instruction class; only the single-hazard classes (ialu, falu,
    /// sfu, branch) read theirs, letting one table-driven path replace four
    /// switch arms.
    std::array<TimeNs, 7> class_lat_ns{};
    std::array<double, 7> class_stall{};
    TimeNs l1_hit_lat_ns = 0;
    TimeNs store_stall_ns = 0;
    TimeNs shared_conflict_ns = 0;
    TimeNs shared_lat_ns = 0;
    FreqMhz freq;
    std::int64_t issued = 0;
    std::int64_t alu_issued = 0;
    std::int64_t mem_issued = 0;
    /// Per-class issue counts, indexed by InstClass.
    std::array<std::int64_t, 7> inst_count{};
    std::int64_t l1_read_access = 0;
    std::int64_t l1_read_miss = 0;
    std::int64_t l2_access = 0;
    std::int64_t l2_miss = 0;
    std::int64_t dram_reqs = 0;
    std::int64_t l1_write_access = 0;
    std::int64_t l1_write_miss = 0;
    std::int64_t mshr_full_events = 0;
    std::int64_t store_buf_full_events = 0;
    double dram_bytes = 0.0;
    double stall_exec_dep = 0.0;
    double stall_mem_load = 0.0;
    double stall_mem_other = 0.0;
    double stall_control = 0.0;
    double stall_no_ready = 0.0;
    double mem_lat_sum = 0.0;
  };

  /// Issues one instruction from warp `w` at wall-clock `now`; returns the
  /// time at which the warp may issue again.
  TimeNs issueOne(int w, TimeNs now, EpochCtx& ctx);

  InstClass sampleClass(std::size_t phase, std::uint64_t m) const noexcept;
  void advanceWarpProgram(WarpState& warp, TimeNs now);
  void drainExpiredMisses(TimeNs now);

  // Warp wake-up bookkeeping. The hot structure is a per-epoch bucket
  // wheel indexed by wall-clock offset from the epoch's usable start:
  // inserts are O(1) (bucket chains stay sorted by the packed key below,
  // and same-bucket chains are almost always length one), and draining
  // scans a bitmap word per 64 ns. Keys sort lexicographically by
  // (ready_ns, warp) — identical to the priority_queue<pair> the wheel
  // replaced — by packing the warp id into the low bits. A small binary
  // min-heap over the same keys carries entries the wheel cannot hold:
  // wake-ups beyond the current epoch (re-bucketed when the next epoch
  // opens) and, for epochs longer than kWheelCapNs, the far tail.
  static constexpr int kWakeWarpBits = 8;
  static constexpr std::int64_t kWakeWarpMask = (1 << kWakeWarpBits) - 1;
  static constexpr TimeNs kWheelCapNs = TimeNs{1} << 16;

  static constexpr std::int64_t wakeKey(int w, TimeNs ready_ns) noexcept {
    return (static_cast<std::int64_t>(ready_ns) << kWakeWarpBits) | w;
  }

  void heapPush(std::int64_t key) noexcept {
    int i = wake_size_++;
    std::int64_t* h = wake_heap_.data();
    while (i > 0) {
      const int parent = (i - 1) >> 1;
      if (h[parent] <= key) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = key;
  }

  /// Pops the minimal (ready_ns, warp) key; the heap must be non-empty.
  std::int64_t heapPopKey() noexcept {
    std::int64_t* h = wake_heap_.data();
    const std::int64_t top = h[0];
    const std::int64_t last = h[--wake_size_];
    int i = 0;
    for (;;) {
      int child = 2 * i + 1;
      if (child >= wake_size_) break;
      child +=
          static_cast<int>(child + 1 < wake_size_ && h[child + 1] < h[child]);
      if (h[child] >= last) break;
      h[i] = h[child];
      i = child;
    }
    h[i] = last;
    return top;
  }

  [[nodiscard]] TimeNs heapTopNs() const noexcept {
    return static_cast<TimeNs>(wake_heap_[0] >> kWakeWarpBits);
  }

  std::shared_ptr<const GpuConfig> cfg_;
  std::shared_ptr<const KernelProfile> kernel_;
  int cluster_id_;

  std::vector<WarpState> warps_;
  /// Cumulative instruction-mix boundaries per phase, precomputed with the
  /// same left-to-right additions `sampleClass` used to perform per event
  /// and integerized against the raw 53-bit uniform draw (exact; see the
  /// constructor).
  std::vector<std::array<std::uint64_t, 6>> mix_cum_;
  /// Packed wake-heap storage (capacity = warps; each warp appears at most
  /// once across the heap and the wheel).
  std::vector<std::int64_t> wake_heap_;
  int wake_size_ = 0;
  /// Bucket-wheel storage: per-offset chain heads plus an occupancy bitmap
  /// (sized per epoch), and per-warp key/chain-link slots.
  std::vector<std::int32_t> wheel_head_;
  std::vector<std::uint64_t> wheel_bits_;
  std::vector<std::int64_t> wheel_key_;
  std::vector<std::int32_t> wheel_next_;
  /// FIFO ring of issuable warps, reused across epochs (capacity = warps).
  std::vector<int> ready_ring_;
  /// Completion times of in-flight L1 misses (MSHR occupancy).
  std::priority_queue<TimeNs, std::vector<TimeNs>, std::greater<>> misses_;

  int warps_done_ = 0;
  std::int64_t total_insts_ = 0;
  TimeNs finish_ns_ = -1;
};

}  // namespace ssm
