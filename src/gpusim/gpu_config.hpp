// Static configuration of the simulated GPU.
//
// Defaults model an Nvidia GeForce GTX Titan X class device as configured in
// the paper (§V.A): 24 SM clusters, per-cluster DVFS over the six-point V/f
// table, 10 µs DVFS epochs. Latency/bandwidth values follow the usual
// GPGPU-Sim Maxwell-era configs; memory latencies are wall-clock because the
// L2/DRAM domain does not scale with the cluster clock — that invariance is
// the physical mechanism every DVFS policy here exploits.
#pragma once

#include "common/units.hpp"

namespace ssm {

struct GpuConfig {
  int num_clusters = 24;
  int max_warps_per_cluster = 32;
  int issue_width = 2;             ///< warp instructions issued per cycle

  // Execution latencies in core cycles (scale with the cluster clock).
  Cycles ialu_latency = 4;
  Cycles falu_latency = 6;
  Cycles sfu_latency = 16;
  Cycles shared_latency = 24;      ///< shared-memory dependent-use latency
  Cycles branch_resolve_latency = 12;
  Cycles l1_hit_latency = 28;      ///< L1 dependent-use latency

  // Memory-system latencies in wall-clock nanoseconds (do NOT scale with
  // the cluster clock).
  TimeNs l2_hit_latency_ns = 170;
  TimeNs dram_latency_ns = 400;

  int mshr_per_cluster = 24;       ///< outstanding L1 misses per cluster
  double dram_bw_gbps = 336.0;     ///< GTX Titan X aggregate bandwidth
  int bytes_per_miss = 128;        ///< coalesced transaction size

  // DVFS timing.
  TimeNs epoch_ns = 10 * kNsPerUs;         ///< 10 µs decision epoch
  TimeNs dvfs_transition_ns = 500;         ///< IVR settle on a V/f switch

  // Store buffer: probability a store stalls grows with DRAM pressure.
  double store_stall_base = 0.02;
  Cycles store_stall_cycles = 20;
  double shared_conflict_prob = 0.10;
  Cycles shared_conflict_cycles = 4;
};

}  // namespace ssm
