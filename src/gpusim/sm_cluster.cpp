#include "gpusim/sm_cluster.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

SmCluster::SmCluster(std::shared_ptr<const GpuConfig> cfg,
                     std::shared_ptr<const KernelProfile> kernel, Rng rng,
                     int cluster_id)
    : cfg_(std::move(cfg)), kernel_(std::move(kernel)),
      cluster_id_(cluster_id) {
  SSM_CHECK(cfg_ != nullptr && kernel_ != nullptr);
  const int warps =
      std::min(kernel_->warps_per_cluster, cfg_->max_warps_per_cluster);
  SSM_CHECK(warps <= kWakeWarpMask + 1);
  warps_.reserve(static_cast<std::size_t>(warps));
  wake_heap_.assign(static_cast<std::size_t>(warps), 0);
  wheel_key_.assign(static_cast<std::size_t>(warps), 0);
  wheel_next_.assign(static_cast<std::size_t>(warps), -1);
  ready_ring_.assign(static_cast<std::size_t>(warps), 0);
  for (int w = 0; w < warps; ++w) {
    WarpState ws;
    ws.rng = rng.fork(static_cast<std::uint64_t>(w) * 7919u + 13u);
    ws.loops_left = kernel_->phase_loops;
    ws.insts_left = kernel_->phases.front().insts_per_warp;
    warps_.push_back(ws);
    // All warps start ready at time 0; stagger by a cycle-ish amount so the
    // initial issue pattern is not perfectly lockstep.
    heapPush(wakeKey(w, static_cast<TimeNs>(w % 4)));
  }
  // Hoist the per-event cumulative-mix additions out of sampleClass: the
  // boundaries are the same left-to-right partial sums the old code rebuilt
  // for every issued instruction, so lookups stay bit-identical.
  mix_cum_.reserve(kernel_->phases.size());
  for (const PhaseProfile& ph : kernel_->phases) {
    std::array<double, 6> cum{};
    cum[0] = ph.mix.ialu;
    cum[1] = cum[0] + ph.mix.falu;
    cum[2] = cum[1] + ph.mix.sfu;
    cum[3] = cum[2] + ph.mix.load;
    cum[4] = cum[3] + ph.mix.store;
    cum[5] = cum[4] + ph.mix.shared;
    // Integerized boundaries: the sampled u compares as the raw 53-bit
    // draw m (u = m * 2^-53 exactly), and `u >= cum` holds iff
    // `m >= ceil(cum * 2^53)` — the power-of-two scaling is exact, ceil
    // is exact, and an integer m clears a real bound iff it clears the
    // bound's ceiling. Integer compares keep the rank computation off the
    // FP compare ports in the hottest loop of the simulator.
    std::array<std::uint64_t, 6> icum{};
    for (int k = 0; k < 6; ++k) {
      const double scaled = std::ceil(cum[static_cast<std::size_t>(k)] * 0x1p53);
      icum[static_cast<std::size_t>(k)] =
          scaled >= 0x1p63 ? ~0ull : static_cast<std::uint64_t>(scaled);
    }
    mix_cum_.push_back(icum);
  }
}

SmCluster::InstClass SmCluster::sampleClass(std::size_t phase,
                                            std::uint64_t m) const noexcept {
  // Branchless rank over the precomputed boundaries: `m` is the raw
  // 53-bit uniform draw, so a compare chain would mispredict on most
  // draws. The boundaries are non-decreasing, which makes the sum of
  // cleared boundaries exactly the index the old compare chain returned.
  const std::array<std::uint64_t, 6>& cum = mix_cum_[phase];
  const int rank = static_cast<int>(m >= cum[0]) + static_cast<int>(m >= cum[1]) +
                   static_cast<int>(m >= cum[2]) + static_cast<int>(m >= cum[3]) +
                   static_cast<int>(m >= cum[4]) + static_cast<int>(m >= cum[5]);
  return static_cast<InstClass>(rank);
}

void SmCluster::advanceWarpProgram(WarpState& warp, TimeNs now) {
  --warp.insts_left;
  if (warp.insts_left > 0) return;
  // Move to the next phase (or loop / retire).
  ++warp.phase;
  if (warp.phase >= static_cast<int>(kernel_->phases.size())) {
    warp.phase = 0;
    --warp.loops_left;
    if (warp.loops_left <= 0) {
      warp.done = true;
      ++warps_done_;
      finish_ns_ = std::max(finish_ns_, now);
      return;
    }
  }
  warp.insts_left =
      kernel_->phases[static_cast<std::size_t>(warp.phase)].insts_per_warp;
}

void SmCluster::drainExpiredMisses(TimeNs now) {
  while (!misses_.empty() && misses_.top() <= now) misses_.pop();
}

TimeNs SmCluster::issueOne(int w, TimeNs now, EpochCtx& ctx) {
  WarpState& warp = warps_[static_cast<std::size_t>(w)];
  const PhaseProfile& ph = ctx.phases[static_cast<std::size_t>(warp.phase)];
  const auto nsToCycles = [&](TimeNs ns) {
    return static_cast<double>(ns) / ctx.ns_per_cycle;
  };

  // Same single RNG draw nextDouble() performed, compared pre-scaling.
  const InstClass cls = sampleClass(static_cast<std::size_t>(warp.phase),
                                    warp.rng.nextU64() >> 11);

  ++ctx.issued;
  ++total_insts_;
  ++ctx.inst_count[static_cast<std::size_t>(cls)];

  // Default: the warp can issue again next cycle.
  TimeNs ready_at = now + ctx.one_cycle_ns;

  switch (cls) {
    case InstClass::kIalu:
    case InstClass::kFalu:
    case InstClass::kSfu:
    case InstClass::kBranch: {
      // One table-driven arm for every single-hazard class: a fixed
      // execution latency guarded by one Bernoulli draw. The draw order and
      // charged amounts match the per-class arms this replaces; only the
      // unpredictable per-class branching is gone.
      const bool is_branch = cls == InstClass::kBranch;
      ctx.alu_issued += is_branch ? 0 : 1;
      const double p = is_branch ? ph.divergence : ph.dep_prob;
      if (warp.rng.nextBernoulli(p)) {
        // The consumer is adjacent (or the branch diverged): the warp
        // waits out the hazard.
        ready_at = now + ctx.class_lat_ns[static_cast<std::size_t>(cls)];
        (is_branch ? ctx.stall_control : ctx.stall_exec_dep) +=
            ctx.class_stall[static_cast<std::size_t>(cls)];
      }
      break;
    }
    case InstClass::kLoad: {
      ++ctx.mem_issued;
      ++ctx.l1_read_access;
      if (warp.rng.nextBernoulli(ph.l1_hit_rate)) {
        // L1 hit: the dependent-use latency is in core cycles, so this
        // hazard *does* scale with frequency (a key analytical-model trap).
        if (warp.rng.nextBernoulli(ph.dep_prob)) {
          ready_at = now + ctx.l1_hit_lat_ns;
          ctx.stall_mem_load += static_cast<double>(cfg_->l1_hit_latency - 1);
        }
      } else {
        ++ctx.l1_read_miss;
        ++ctx.l2_access;
        TimeNs lat_ns = cfg_->l2_hit_latency_ns;
        if (!warp.rng.nextBernoulli(ph.l2_hit_rate)) {
          ++ctx.l2_miss;
          ++ctx.dram_reqs;
          ctx.dram_bytes += cfg_->bytes_per_miss;
          lat_ns = cfg_->dram_latency_ns;
        }
        lat_ns = static_cast<TimeNs>(static_cast<double>(lat_ns) *
                                     ctx.env->latency_mult);

        drainExpiredMisses(now);
        TimeNs start = now;
        if (static_cast<int>(misses_.size()) >= cfg_->mshr_per_cluster) {
          // MSHRs full: the request waits for the oldest miss to retire.
          const TimeNs free_at = misses_.top();
          ++ctx.mshr_full_events;
          ctx.stall_mem_load += nsToCycles(free_at - now);
          start = free_at;
        }
        const TimeNs done_at = start + lat_ns;
        misses_.push(done_at);
        ctx.mem_lat_sum += static_cast<double>(lat_ns);

        if (warp.miss_done_at > now) {
          // A second overlapping miss: wait for the first, then overlap.
          ctx.stall_mem_load += nsToCycles(warp.miss_done_at - now);
          ready_at = std::max(ready_at, warp.miss_done_at);
        }
        warp.miss_done_at = done_at;
        warp.grace_left = ph.ilp;
      }
      break;
    }
    case InstClass::kStore: {
      ++ctx.mem_issued;
      ++ctx.l1_write_access;
      if (!warp.rng.nextBernoulli(ph.l1_hit_rate)) {
        ++ctx.l1_write_miss;
        ++ctx.dram_reqs;
        ctx.dram_bytes += cfg_->bytes_per_miss;
      }
      if (warp.rng.nextBernoulli(ctx.env->store_stall_prob)) {
        // Store buffer back-pressure: a memory hazard not caused by a load.
        ready_at = now + ctx.store_stall_ns;
        ctx.stall_mem_other +=
            static_cast<double>(cfg_->store_stall_cycles - 1);
        ++ctx.store_buf_full_events;
      }
      break;
    }
    case InstClass::kShared: {
      ++ctx.mem_issued;
      if (warp.rng.nextBernoulli(cfg_->shared_conflict_prob)) {
        ready_at = now + ctx.shared_conflict_ns;
        ctx.stall_mem_other +=
            static_cast<double>(cfg_->shared_conflict_cycles - 1);
      } else if (warp.rng.nextBernoulli(ph.dep_prob)) {
        ready_at = now + ctx.shared_lat_ns;
        ctx.stall_mem_other += static_cast<double>(cfg_->shared_latency - 1);
      }
      break;
    }
  }

  // Memory-level-parallelism bookkeeping: with an open miss the warp may
  // issue `ilp` further instructions, then blocks on the consumer.
  if (warp.miss_done_at > now && cls != InstClass::kLoad) {
    if (warp.grace_left > 0) {
      --warp.grace_left;
    } else if (warp.miss_done_at > ready_at) {
      ctx.stall_mem_load += nsToCycles(warp.miss_done_at - ready_at);
      ready_at = warp.miss_done_at;
    }
  }

  advanceWarpProgram(warp, now);
  return ready_at;
}

ClusterEpochResult SmCluster::runEpoch(TimeNs start_ns, TimeNs len_ns,
                                       FreqMhz freq, bool transitioned,
                                       const MemEnv& env) {
  SSM_CHECK(len_ns > 0 && freq > 0.0);
  // Audit baselines: counters this epoch may only move forward from here.
  [[maybe_unused]] const std::int64_t insts_before = total_insts_;
  [[maybe_unused]] const int done_before = warps_done_;
  ClusterEpochResult res;
  if (done()) {
    res.all_done = true;
    res.cycles = cyclesIn(len_ns, freq);
    return res;
  }

  const TimeNs usable_start =
      start_ns + (transitioned ? cfg_->dvfs_transition_ns : 0);
  const TimeNs end_ns = start_ns + len_ns;
  const double nspc = nsPerCycle(freq);
  const Cycles total_cycles = cyclesIn(end_ns - usable_start, freq);

  const auto latNs = [&](Cycles cyc2) {
    return static_cast<TimeNs>(static_cast<double>(cyc2) * nspc + 0.5);
  };
  const auto stallCycles = [&](Cycles lat) {
    return static_cast<double>(lat - 1);
  };
  EpochCtx ctx{.counters = &res.counters,
               .env = &env,
               .phases = kernel_->phases.data(),
               .ns_per_cycle = nspc,
               .one_cycle_ns = latNs(1),
               .class_lat_ns = {latNs(cfg_->ialu_latency),
                                latNs(cfg_->falu_latency),
                                latNs(cfg_->sfu_latency), 0, 0, 0,
                                latNs(cfg_->branch_resolve_latency)},
               .class_stall = {stallCycles(cfg_->ialu_latency),
                               stallCycles(cfg_->falu_latency),
                               stallCycles(cfg_->sfu_latency), 0.0, 0.0, 0.0,
                               stallCycles(cfg_->branch_resolve_latency)},
               .l1_hit_lat_ns = latNs(cfg_->l1_hit_latency),
               .store_stall_ns = latNs(cfg_->store_stall_cycles),
               .shared_conflict_ns = latNs(cfg_->shared_conflict_cycles),
               .shared_lat_ns = latNs(cfg_->shared_latency),
               .freq = freq};

  // FIFO of issuable warps over the reusable ring (capacity = warp count;
  // each warp is either linked in the wake list or queued here, never both).
  const int ring_cap = static_cast<int>(ready_ring_.size());
  int ring_head = 0;
  int ring_tail = 0;
  int ring_count = 0;
  const auto readyPush = [&](int w) {
    ready_ring_[static_cast<std::size_t>(ring_tail)] = w;
    ring_tail = ring_tail + 1 == ring_cap ? 0 : ring_tail + 1;
    ++ring_count;
  };
  const auto readyPop = [&]() {
    const int w = ready_ring_[static_cast<std::size_t>(ring_head)];
    ring_head = ring_head + 1 == ring_cap ? 0 : ring_head + 1;
    --ring_count;
    return w;
  };

  // --- Bucket-wheel setup. The wheel covers wall-clock offsets
  // [0, wheel_span) from usable_start; anything later lives in the heap
  // and is re-bucketed when a later epoch opens.
  const TimeNs wheel_span =
      std::min<TimeNs>(end_ns - usable_start, kWheelCapNs);
  const bool use_wheel = wheel_span > 0;
  int wheel_count = 0;
  TimeNs drain_floor = -1;  // highest fully-drained wheel offset
  if (use_wheel) {
    const auto span = static_cast<std::size_t>(wheel_span);
    const std::size_t words = (span + 63) / 64;
    if (wheel_head_.size() < span) wheel_head_.resize(span);
    if (wheel_bits_.size() < words) wheel_bits_.resize(words);
    std::fill_n(wheel_head_.begin(), span, -1);
    std::fill_n(wheel_bits_.begin(), words, 0);
  }

  // Inserts clamp to the first undrained bucket: an entry whose true wake
  // time already passed must still surface at the next drain (the heap
  // popped such entries at the following cycle too), and keeping the full
  // key in the chain preserves the (ready_ns, warp) pop order among the
  // bucket's occupants.
  const auto wheelInsert = [&](std::int64_t key) {
    TimeNs off = (key >> kWakeWarpBits) - usable_start;
    if (off <= drain_floor) off = drain_floor + 1;
    if (off >= wheel_span) {
      heapPush(key);
      return;
    }
    const int w = static_cast<int>(key & kWakeWarpMask);
    wheel_key_[static_cast<std::size_t>(w)] = key;
    std::int32_t* slot = &wheel_head_[static_cast<std::size_t>(off)];
    while (*slot != -1 &&
           wheel_key_[static_cast<std::size_t>(*slot)] < key)
      slot = &wheel_next_[static_cast<std::size_t>(*slot)];
    wheel_next_[static_cast<std::size_t>(w)] = *slot;
    *slot = w;
    wheel_bits_[static_cast<std::size_t>(off >> 6)] |= 1ull << (off & 63);
    ++wheel_count;
  };

  // Re-bucket every carried-over wake-up that lands inside this epoch's
  // wheel window. Heap pops come out in ascending key order, so the wheel
  // chains are built sorted.
  if (use_wheel) {
    const TimeNs limit = usable_start + wheel_span;
    while (wake_size_ != 0 && heapTopNs() < limit) wheelInsert(heapPopKey());
  }

  // First occupied wheel offset after drain_floor; -1 when the wheel is
  // empty. One bitmap word covers 64 ns of wall-clock time.
  const auto wheelNextOccupied = [&]() -> TimeNs {
    TimeNs b = drain_floor + 1;
    while (b < wheel_span) {
      const std::uint64_t word =
          wheel_bits_[static_cast<std::size_t>(b >> 6)] & (~0ull << (b & 63));
      if (word != 0) {
        const TimeNs nb = (b & ~TimeNs{63}) + std::countr_zero(word);
        return nb < wheel_span ? nb : -1;
      }
      b = (b & ~TimeNs{63}) + 64;
    }
    return -1;
  };

  const int issue_width = cfg_->issue_width;
  Cycles cyc = 0;
  Cycles last_live_cycle = 0;

  while (cyc < total_cycles) {
    const TimeNs now =
        usable_start + static_cast<TimeNs>(static_cast<double>(cyc) * nspc);

    // Drain every wake-up due by `now`: wheel buckets first (their keys
    // all precede the heap's, which only holds later-than-wheel entries),
    // then any heap entries that fall due (possible only when the epoch
    // outruns kWheelCapNs).
    if (wheel_count != 0) {
      TimeNs lim = now - usable_start;
      if (lim >= wheel_span) lim = wheel_span - 1;
      TimeNs b = drain_floor + 1;
      while (b <= lim) {
        const std::uint64_t word =
            wheel_bits_[static_cast<std::size_t>(b >> 6)] &
            (~0ull << (b & 63));
        if (word == 0) {
          b = (b & ~TimeNs{63}) + 64;
          continue;
        }
        const TimeNs nb = (b & ~TimeNs{63}) + std::countr_zero(word);
        if (nb > lim) break;
        for (int n = wheel_head_[static_cast<std::size_t>(nb)]; n != -1;
             n = wheel_next_[static_cast<std::size_t>(n)]) {
          readyPush(n);
          --wheel_count;
        }
        wheel_head_[static_cast<std::size_t>(nb)] = -1;
        wheel_bits_[static_cast<std::size_t>(nb >> 6)] &=
            ~(1ull << (nb & 63));
        b = nb + 1;
      }
      drain_floor = lim;
    } else if (use_wheel) {
      TimeNs lim = now - usable_start;
      if (lim >= wheel_span) lim = wheel_span - 1;
      drain_floor = lim;
    }
    while (wake_size_ != 0 && heapTopNs() <= now)
      readyPush(static_cast<int>(heapPopKey() & kWakeWarpMask));

    if (ring_count == 0) {
      TimeNs next;
      if (wheel_count != 0) {
        const TimeNs nb = wheelNextOccupied();
        next = static_cast<TimeNs>(
            wheel_key_[static_cast<std::size_t>(
                wheel_head_[static_cast<std::size_t>(nb)])] >>
            kWakeWarpBits);
      } else if (wake_size_ != 0) {
        next = heapTopNs();
      } else {
        break;  // every warp retired
      }
      // Skip ahead to the next wake-up in one step.
      const auto target = static_cast<Cycles>(
          std::ceil(static_cast<double>(next - usable_start) / nspc));
      const Cycles skip = std::max<Cycles>(1, target - cyc);
      ctx.stall_no_ready +=
          static_cast<double>(std::min(skip, total_cycles - cyc));
      cyc += skip;
      last_live_cycle = std::min(cyc, total_cycles);
      continue;
    }

    for (int slot = 0; slot < issue_width && ring_count > 0; ++slot) {
      const int w = readyPop();
      const TimeNs ready_at = issueOne(w, now, ctx);
      if (!warps_[static_cast<std::size_t>(w)].done)
        wheelInsert(wakeKey(w, ready_at));
    }
    ++cyc;
    last_live_cycle = cyc;
  }

  // Hand undrained wheel entries back to the heap (ascending scan keeps
  // the pushes cheap), then park any still-ready warps for the next epoch.
  if (wheel_count != 0) {
    TimeNs b = drain_floor + 1;
    while (b < wheel_span && wheel_count != 0) {
      const std::uint64_t word =
          wheel_bits_[static_cast<std::size_t>(b >> 6)] & (~0ull << (b & 63));
      if (word == 0) {
        b = (b & ~TimeNs{63}) + 64;
        continue;
      }
      const TimeNs nb = (b & ~TimeNs{63}) + std::countr_zero(word);
      for (int n = wheel_head_[static_cast<std::size_t>(nb)]; n != -1;
           n = wheel_next_[static_cast<std::size_t>(n)]) {
        heapPush(wheel_key_[static_cast<std::size_t>(n)]);
        --wheel_count;
      }
      b = nb + 1;
    }
  }
  const TimeNs epoch_close = usable_start + static_cast<TimeNs>(
                                 static_cast<double>(cyc) * nspc);
  while (ring_count > 0)
    heapPush(wakeKey(readyPop(), std::min(epoch_close, end_ns)));

  res.instructions = ctx.issued;
  res.cycles = total_cycles;
  res.all_done = done();
  res.dram_reqs = ctx.dram_reqs;

  const double cyc_d = std::max(1.0, static_cast<double>(total_cycles));
  const double slots = cyc_d * cfg_->issue_width;
  res.issue_act = std::min(1.0, static_cast<double>(ctx.issued) / slots);
  res.alu_act = std::min(1.0, static_cast<double>(ctx.alu_issued) / cyc_d);
  res.mem_act = std::min(1.0, static_cast<double>(ctx.mem_issued) / cyc_d);
  res.active_frac =
      res.all_done ? static_cast<double>(last_live_cycle) / cyc_d : 1.0;

  // Flush the accumulated event counts into the epoch's counter block in
  // one pass (each slot received the same additions in the same order the
  // old per-event path applied, so the values are bit-identical).
  CounterBlock& c = res.counters;
  c.set(CounterId::kInstTotal, static_cast<double>(ctx.issued));
  c.set(CounterId::kInstIalu, static_cast<double>(ctx.inst_count[0]));
  c.set(CounterId::kInstFalu, static_cast<double>(ctx.inst_count[1]));
  c.set(CounterId::kInstSfu, static_cast<double>(ctx.inst_count[2]));
  c.set(CounterId::kInstLoad, static_cast<double>(ctx.inst_count[3]));
  c.set(CounterId::kInstStore, static_cast<double>(ctx.inst_count[4]));
  c.set(CounterId::kInstShared, static_cast<double>(ctx.inst_count[5]));
  c.set(CounterId::kInstBranch, static_cast<double>(ctx.inst_count[6]));
  c.set(CounterId::kL1ReadAccess, static_cast<double>(ctx.l1_read_access));
  c.set(CounterId::kL1ReadMiss, static_cast<double>(ctx.l1_read_miss));
  c.set(CounterId::kL1WriteAccess, static_cast<double>(ctx.l1_write_access));
  c.set(CounterId::kL1WriteMiss, static_cast<double>(ctx.l1_write_miss));
  c.set(CounterId::kL2Access, static_cast<double>(ctx.l2_access));
  c.set(CounterId::kL2Miss, static_cast<double>(ctx.l2_miss));
  c.set(CounterId::kDramReqs, static_cast<double>(ctx.dram_reqs));
  c.set(CounterId::kDramBytes, ctx.dram_bytes);
  c.set(CounterId::kMshrFullEvents,
        static_cast<double>(ctx.mshr_full_events));
  c.set(CounterId::kStoreBufFullEvents,
        static_cast<double>(ctx.store_buf_full_events));
  c.set(CounterId::kStallExecDepCycles, ctx.stall_exec_dep);
  c.set(CounterId::kStallMemLoadCycles, ctx.stall_mem_load);
  c.set(CounterId::kStallMemOtherCycles, ctx.stall_mem_other);
  c.set(CounterId::kStallControlCycles, ctx.stall_control);
  c.set(CounterId::kStallNoReadyCycles, ctx.stall_no_ready);

  // Finalize the mean memory latency (accumulated as a sum above).
  if (ctx.l2_access > 0)
    c.set(CounterId::kAvgMemLatencyNs,
          ctx.mem_lat_sum / static_cast<double>(ctx.l2_access));

  c.set(CounterId::kFreqMhz, freq);
  c.set(CounterId::kActiveCycles,
        res.active_frac * static_cast<double>(total_cycles));
  c.set(CounterId::kOccupancy, static_cast<double>(warps_.size()) /
                                   static_cast<double>(cfg_->max_warps_per_cluster));
  c.set(CounterId::kWarpsDone, static_cast<double>(warps_done_));
  c.finalizeDerived(total_cycles, static_cast<int>(warps_.size()),
                    cfg_->issue_width);

  // Deep invariants at the module seam (audit builds only): the cluster's
  // lifetime counters are monotonic, per-epoch aggregates stay in range,
  // and retirement bookkeeping is consistent.
  SSM_AUDIT_CHECK(total_insts_ >= insts_before &&
                      total_insts_ - insts_before == ctx.issued,
                  "instruction count must advance by exactly what this "
                  "epoch issued");
  SSM_AUDIT_CHECK(warps_done_ >= done_before &&
                      warps_done_ <= static_cast<int>(warps_.size()),
                  "retired-warp count must be monotonic and bounded");
  SSM_AUDIT_CHECK(res.cycles >= 0 && res.instructions >= 0 &&
                      res.dram_reqs >= 0,
                  "epoch aggregates must be non-negative");
  SSM_AUDIT_CHECK(res.issue_act >= 0.0 && res.issue_act <= 1.0 &&
                      res.alu_act >= 0.0 && res.alu_act <= 1.0 &&
                      res.mem_act >= 0.0 && res.mem_act <= 1.0 &&
                      res.active_frac >= 0.0 && res.active_frac <= 1.0,
                  "activity fractions must lie in [0, 1]");
  // finish_ns_ is stamped as each warp retires, so it can be set before the
  // whole cluster is done — but a fully retired cluster must have it.
  SSM_AUDIT_CHECK(!done() || finish_ns_ >= 0,
                  "a retired cluster must carry a finish timestamp");
  return res;
}

}  // namespace ssm
