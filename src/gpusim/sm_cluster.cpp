#include "gpusim/sm_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.hpp"

namespace ssm {

SmCluster::SmCluster(std::shared_ptr<const GpuConfig> cfg,
                     std::shared_ptr<const KernelProfile> kernel, Rng rng,
                     int cluster_id)
    : cfg_(std::move(cfg)), kernel_(std::move(kernel)),
      cluster_id_(cluster_id) {
  SSM_CHECK(cfg_ != nullptr && kernel_ != nullptr);
  const int warps =
      std::min(kernel_->warps_per_cluster, cfg_->max_warps_per_cluster);
  warps_.reserve(static_cast<std::size_t>(warps));
  for (int w = 0; w < warps; ++w) {
    WarpState ws;
    ws.rng = rng.fork(static_cast<std::uint64_t>(w) * 7919u + 13u);
    ws.loops_left = kernel_->phase_loops;
    ws.insts_left = kernel_->phases.front().insts_per_warp;
    warps_.push_back(ws);
    // All warps start ready at time 0; stagger by a cycle-ish amount so the
    // initial issue pattern is not perfectly lockstep.
    wait_.emplace(static_cast<TimeNs>(w % 4), w);
  }
}

SmCluster::InstClass SmCluster::sampleClass(const InstructionMix& mix,
                                            double u) const noexcept {
  double acc = mix.ialu;
  if (u < acc) return InstClass::kIalu;
  acc += mix.falu;
  if (u < acc) return InstClass::kFalu;
  acc += mix.sfu;
  if (u < acc) return InstClass::kSfu;
  acc += mix.load;
  if (u < acc) return InstClass::kLoad;
  acc += mix.store;
  if (u < acc) return InstClass::kStore;
  acc += mix.shared;
  if (u < acc) return InstClass::kShared;
  return InstClass::kBranch;
}

void SmCluster::advanceWarpProgram(WarpState& warp, TimeNs now) {
  --warp.insts_left;
  if (warp.insts_left > 0) return;
  // Move to the next phase (or loop / retire).
  ++warp.phase;
  if (warp.phase >= static_cast<int>(kernel_->phases.size())) {
    warp.phase = 0;
    --warp.loops_left;
    if (warp.loops_left <= 0) {
      warp.done = true;
      ++warps_done_;
      finish_ns_ = std::max(finish_ns_, now);
      return;
    }
  }
  warp.insts_left =
      kernel_->phases[static_cast<std::size_t>(warp.phase)].insts_per_warp;
}

void SmCluster::drainExpiredMisses(TimeNs now) {
  while (!misses_.empty() && misses_.top() <= now) misses_.pop();
}

TimeNs SmCluster::issueOne(int w, TimeNs now, EpochCtx& ctx) {
  WarpState& warp = warps_[static_cast<std::size_t>(w)];
  const PhaseProfile& ph =
      kernel_->phases[static_cast<std::size_t>(warp.phase)];
  CounterBlock& c = *ctx.counters;
  const double nspc = ctx.ns_per_cycle;
  const auto cyclesToNs = [&](Cycles cyc) {
    return static_cast<TimeNs>(static_cast<double>(cyc) * nspc + 0.5);
  };
  const auto nsToCycles = [&](TimeNs ns) {
    return static_cast<double>(ns) / nspc;
  };

  const InstClass cls = sampleClass(ph.mix, warp.rng.nextDouble());

  ++ctx.issued;
  ++total_insts_;
  c.add(CounterId::kInstTotal, 1);

  // Default: the warp can issue again next cycle.
  TimeNs ready_at = now + cyclesToNs(1);

  switch (cls) {
    case InstClass::kIalu:
    case InstClass::kFalu:
    case InstClass::kSfu: {
      ++ctx.alu_issued;
      Cycles lat = cfg_->ialu_latency;
      if (cls == InstClass::kFalu) {
        lat = cfg_->falu_latency;
        c.add(CounterId::kInstFalu, 1);
      } else if (cls == InstClass::kSfu) {
        lat = cfg_->sfu_latency;
        c.add(CounterId::kInstSfu, 1);
      } else {
        c.add(CounterId::kInstIalu, 1);
      }
      if (warp.rng.nextBernoulli(ph.dep_prob)) {
        // The consumer is adjacent: the warp waits for the result.
        ready_at = now + cyclesToNs(lat);
        c.add(CounterId::kStallExecDepCycles, static_cast<double>(lat - 1));
      }
      break;
    }
    case InstClass::kLoad: {
      ++ctx.mem_issued;
      c.add(CounterId::kInstLoad, 1);
      c.add(CounterId::kL1ReadAccess, 1);
      if (warp.rng.nextBernoulli(ph.l1_hit_rate)) {
        // L1 hit: the dependent-use latency is in core cycles, so this
        // hazard *does* scale with frequency (a key analytical-model trap).
        if (warp.rng.nextBernoulli(ph.dep_prob)) {
          ready_at = now + cyclesToNs(cfg_->l1_hit_latency);
          c.add(CounterId::kStallMemLoadCycles,
                static_cast<double>(cfg_->l1_hit_latency - 1));
        }
      } else {
        c.add(CounterId::kL1ReadMiss, 1);
        c.add(CounterId::kL2Access, 1);
        TimeNs lat_ns = cfg_->l2_hit_latency_ns;
        if (!warp.rng.nextBernoulli(ph.l2_hit_rate)) {
          c.add(CounterId::kL2Miss, 1);
          c.add(CounterId::kDramReqs, 1);
          c.add(CounterId::kDramBytes, cfg_->bytes_per_miss);
          lat_ns = cfg_->dram_latency_ns;
        }
        lat_ns = static_cast<TimeNs>(static_cast<double>(lat_ns) *
                                     ctx.env->latency_mult);

        drainExpiredMisses(now);
        TimeNs start = now;
        if (static_cast<int>(misses_.size()) >= cfg_->mshr_per_cluster) {
          // MSHRs full: the request waits for the oldest miss to retire.
          const TimeNs free_at = misses_.top();
          c.add(CounterId::kMshrFullEvents, 1);
          c.add(CounterId::kStallMemLoadCycles, nsToCycles(free_at - now));
          start = free_at;
        }
        const TimeNs done_at = start + lat_ns;
        misses_.push(done_at);
        c.add(CounterId::kAvgMemLatencyNs, static_cast<double>(lat_ns));

        if (warp.miss_done_at > now) {
          // A second overlapping miss: wait for the first, then overlap.
          c.add(CounterId::kStallMemLoadCycles,
                nsToCycles(warp.miss_done_at - now));
          ready_at = std::max(ready_at, warp.miss_done_at);
        }
        warp.miss_done_at = done_at;
        warp.grace_left = ph.ilp;
      }
      break;
    }
    case InstClass::kStore: {
      ++ctx.mem_issued;
      c.add(CounterId::kInstStore, 1);
      c.add(CounterId::kL1WriteAccess, 1);
      if (!warp.rng.nextBernoulli(ph.l1_hit_rate)) {
        c.add(CounterId::kL1WriteMiss, 1);
        c.add(CounterId::kDramReqs, 1);
        c.add(CounterId::kDramBytes, cfg_->bytes_per_miss);
      }
      if (warp.rng.nextBernoulli(ctx.env->store_stall_prob)) {
        // Store buffer back-pressure: a memory hazard not caused by a load.
        ready_at = now + cyclesToNs(cfg_->store_stall_cycles);
        c.add(CounterId::kStallMemOtherCycles,
              static_cast<double>(cfg_->store_stall_cycles - 1));
        c.add(CounterId::kStoreBufFullEvents, 1);
      }
      break;
    }
    case InstClass::kShared: {
      ++ctx.mem_issued;
      c.add(CounterId::kInstShared, 1);
      if (warp.rng.nextBernoulli(cfg_->shared_conflict_prob)) {
        ready_at = now + cyclesToNs(cfg_->shared_conflict_cycles);
        c.add(CounterId::kStallMemOtherCycles,
              static_cast<double>(cfg_->shared_conflict_cycles - 1));
      } else if (warp.rng.nextBernoulli(ph.dep_prob)) {
        ready_at = now + cyclesToNs(cfg_->shared_latency);
        c.add(CounterId::kStallMemOtherCycles,
              static_cast<double>(cfg_->shared_latency - 1));
      }
      break;
    }
    case InstClass::kBranch: {
      c.add(CounterId::kInstBranch, 1);
      if (warp.rng.nextBernoulli(ph.divergence)) {
        ready_at = now + cyclesToNs(cfg_->branch_resolve_latency);
        c.add(CounterId::kStallControlCycles,
              static_cast<double>(cfg_->branch_resolve_latency - 1));
      }
      break;
    }
  }

  // Memory-level-parallelism bookkeeping: with an open miss the warp may
  // issue `ilp` further instructions, then blocks on the consumer.
  if (warp.miss_done_at > now && cls != InstClass::kLoad) {
    if (warp.grace_left > 0) {
      --warp.grace_left;
    } else if (warp.miss_done_at > ready_at) {
      c.add(CounterId::kStallMemLoadCycles,
            nsToCycles(warp.miss_done_at - ready_at));
      ready_at = warp.miss_done_at;
    }
  }

  advanceWarpProgram(warp, now);
  return ready_at;
}

ClusterEpochResult SmCluster::runEpoch(TimeNs start_ns, TimeNs len_ns,
                                       FreqMhz freq, bool transitioned,
                                       const MemEnv& env) {
  SSM_CHECK(len_ns > 0 && freq > 0.0);
  // Audit baselines: counters this epoch may only move forward from here.
  [[maybe_unused]] const std::int64_t insts_before = total_insts_;
  [[maybe_unused]] const int done_before = warps_done_;
  ClusterEpochResult res;
  if (done()) {
    res.all_done = true;
    res.cycles = cyclesIn(len_ns, freq);
    return res;
  }

  const TimeNs usable_start =
      start_ns + (transitioned ? cfg_->dvfs_transition_ns : 0);
  const TimeNs end_ns = start_ns + len_ns;
  const double nspc = nsPerCycle(freq);
  const Cycles total_cycles = cyclesIn(end_ns - usable_start, freq);

  EpochCtx ctx{.counters = &res.counters,
               .env = &env,
               .ns_per_cycle = nspc,
               .freq = freq};

  std::deque<int> ready;
  Cycles cyc = 0;
  Cycles last_live_cycle = 0;

  while (cyc < total_cycles) {
    const TimeNs now =
        usable_start + static_cast<TimeNs>(static_cast<double>(cyc) * nspc);

    while (!wait_.empty() && wait_.top().first <= now) {
      ready.push_back(wait_.top().second);
      wait_.pop();
    }

    if (ready.empty()) {
      if (wait_.empty()) break;  // every warp retired
      // Skip ahead to the next wake-up in one step.
      const TimeNs next = wait_.top().first;
      const auto target = static_cast<Cycles>(
          std::ceil(static_cast<double>(next - usable_start) / nspc));
      const Cycles skip = std::max<Cycles>(1, target - cyc);
      res.counters.add(CounterId::kStallNoReadyCycles,
                       static_cast<double>(std::min(skip, total_cycles - cyc)));
      cyc += skip;
      last_live_cycle = std::min(cyc, total_cycles);
      continue;
    }

    for (int slot = 0; slot < cfg_->issue_width && !ready.empty(); ++slot) {
      const int w = ready.front();
      ready.pop_front();
      const TimeNs ready_at = issueOne(w, now, ctx);
      if (!warps_[static_cast<std::size_t>(w)].done)
        wait_.emplace(ready_at, w);
    }
    ++cyc;
    last_live_cycle = cyc;
  }

  // Park any still-ready warps back in the wake heap for the next epoch.
  const TimeNs epoch_close = usable_start + static_cast<TimeNs>(
                                 static_cast<double>(cyc) * nspc);
  for (int w : ready) wait_.emplace(std::min(epoch_close, end_ns), w);

  res.instructions = ctx.issued;
  res.cycles = total_cycles;
  res.all_done = done();
  res.dram_reqs =
      static_cast<std::int64_t>(res.counters.get(CounterId::kDramReqs));

  const double cyc_d = std::max(1.0, static_cast<double>(total_cycles));
  const double slots = cyc_d * cfg_->issue_width;
  res.issue_act = std::min(1.0, static_cast<double>(ctx.issued) / slots);
  res.alu_act = std::min(1.0, static_cast<double>(ctx.alu_issued) / cyc_d);
  res.mem_act = std::min(1.0, static_cast<double>(ctx.mem_issued) / cyc_d);
  res.active_frac =
      res.all_done ? static_cast<double>(last_live_cycle) / cyc_d : 1.0;

  // Finalize the mean memory latency (accumulated as a sum above).
  const double miss_cnt = res.counters.get(CounterId::kL2Access);
  if (miss_cnt > 0)
    res.counters.set(CounterId::kAvgMemLatencyNs,
                     res.counters.get(CounterId::kAvgMemLatencyNs) / miss_cnt);

  res.counters.set(CounterId::kFreqMhz, freq);
  res.counters.set(CounterId::kActiveCycles,
                   res.active_frac * static_cast<double>(total_cycles));
  res.counters.set(CounterId::kOccupancy,
                   static_cast<double>(warps_.size()) /
                       static_cast<double>(cfg_->max_warps_per_cluster));
  res.counters.set(CounterId::kWarpsDone, static_cast<double>(warps_done_));
  res.counters.finalizeDerived(total_cycles,
                               static_cast<int>(warps_.size()),
                               cfg_->issue_width);

  // Deep invariants at the module seam (audit builds only): the cluster's
  // lifetime counters are monotonic, per-epoch aggregates stay in range,
  // and retirement bookkeeping is consistent.
  SSM_AUDIT_CHECK(total_insts_ >= insts_before &&
                      total_insts_ - insts_before == ctx.issued,
                  "instruction count must advance by exactly what this "
                  "epoch issued");
  SSM_AUDIT_CHECK(warps_done_ >= done_before &&
                      warps_done_ <= static_cast<int>(warps_.size()),
                  "retired-warp count must be monotonic and bounded");
  SSM_AUDIT_CHECK(res.cycles >= 0 && res.instructions >= 0 &&
                      res.dram_reqs >= 0,
                  "epoch aggregates must be non-negative");
  SSM_AUDIT_CHECK(res.issue_act >= 0.0 && res.issue_act <= 1.0 &&
                      res.alu_act >= 0.0 && res.alu_act <= 1.0 &&
                      res.mem_act >= 0.0 && res.mem_act <= 1.0 &&
                      res.active_frac >= 0.0 && res.active_frac <= 1.0,
                  "activity fractions must lie in [0, 1]");
  // finish_ns_ is stamped as each warp retires, so it can be set before the
  // whole cluster is done — but a fully retired cluster must have it.
  SSM_AUDIT_CHECK(!done() || finish_ns_ >= 0,
                  "a retired cluster must carry a finish timestamp");
  return res;
}

}  // namespace ssm
