// Hysteresis decorator: rate-limits any governor's level switches.
//
// V/f transitions cost an IVR settle stall; a policy that flaps between
// adjacent levels pays it every epoch. The decorator wraps any
// DvfsGovernor and (a) enforces a minimum dwell time at a level and
// (b) optionally requires the inner governor to ask for the same change
// twice before it is applied. Purely additive — wrap any factory.
#pragma once

#include <memory>

#include "gpusim/governor.hpp"

namespace ssm {

struct HysteresisConfig {
  /// Minimum epochs to stay at a level before another switch is allowed.
  int min_dwell_epochs = 2;
  /// Require the same new level to be requested on consecutive epochs.
  bool confirm_switch = false;
};

class HysteresisGovernor final : public DvfsGovernor {
 public:
  HysteresisGovernor(std::unique_ptr<DvfsGovernor> inner,
                     HysteresisConfig cfg);

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

 private:
  std::unique_ptr<DvfsGovernor> inner_;
  HysteresisConfig cfg_;
  VfLevel committed_ = -1;   ///< level currently held (-1: none yet)
  int dwell_ = 0;            ///< epochs spent at committed_
  VfLevel pending_ = -1;     ///< candidate awaiting confirmation
};

/// Wraps another factory so every cluster's governor gets the decorator.
class HysteresisFactory final : public GovernorFactory {
 public:
  HysteresisFactory(const GovernorFactory& inner, HysteresisConfig cfg)
      : inner_(inner), cfg_(cfg) {}
  std::unique_ptr<DvfsGovernor> create(int cluster_id) const override {
    return std::make_unique<HysteresisGovernor>(inner_.create(cluster_id),
                                                cfg_);
  }

 private:
  const GovernorFactory& inner_;  ///< must outlive this factory
  HysteresisConfig cfg_;
};

}  // namespace ssm
