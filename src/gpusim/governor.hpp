// The DVFS-governor interface shared by SSMDVFS and every baseline.
//
// The simulator calls the governor once per cluster per 10 µs epoch with the
// epoch's observation (counters + power + V/f level) and applies the
// returned level to the next epoch. Keeping SSMDVFS, PCSTALL, F-LEMMA and
// the static baseline behind one interface makes full-system comparisons
// strictly like-for-like (§V.B).
#pragma once

#include <memory>

#include "counters/counters.hpp"
#include "power/vf_table.hpp"

namespace ssm {

/// Everything a governor may observe about one cluster-epoch.
struct EpochObservation {
  CounterBlock counters;
  VfLevel level = 0;           ///< level the cluster ran at this epoch
  double power_w = 0.0;        ///< cluster power this epoch (= PPC)
  std::int64_t instructions = 0;
  TimeNs epoch_start_ns = 0;
  TimeNs epoch_len_ns = 0;
  int cluster_id = 0;
  bool cluster_done = false;   ///< all warps on this cluster retired
};

/// Per-cluster DVFS policy. Implementations must be deterministic given
/// their construction arguments (any randomness comes from a seeded Rng).
class DvfsGovernor {
 public:
  virtual ~DvfsGovernor() = default;

  /// Returns the V/f level for the next epoch.
  virtual VfLevel decide(const EpochObservation& obs) = 0;

  /// Resets internal state between programs (RL baselines keep learned
  /// weights but clear episodic state; stateless governors ignore this).
  virtual void reset() {}
};

/// Always runs at a fixed level; level = table default reproduces the
/// paper's baseline configuration.
class StaticGovernor final : public DvfsGovernor {
 public:
  explicit StaticGovernor(VfLevel level) : level_(level) {}
  VfLevel decide(const EpochObservation&) override { return level_; }

 private:
  VfLevel level_;
};

/// Factory for one governor instance per cluster (each cluster carries its
/// own policy state, as per-cluster DVFS requires).
class GovernorFactory {
 public:
  virtual ~GovernorFactory() = default;
  [[nodiscard]] virtual std::unique_ptr<DvfsGovernor> create(
      int cluster_id) const = 0;
};

}  // namespace ssm
