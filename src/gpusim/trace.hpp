// Epoch-level telemetry: time series of levels, power and throughput.
//
// The runner can stream every GpuEpochReport into an EpochTraceRecorder;
// the recorder exports CSV for offline analysis and renders a compact
// ASCII timeline (one row per cluster, one column per epoch, digits are
// V/f levels) — the fastest way to *see* what a governor is doing.
//
// Thread-safety contract: a recorder is SINGLE-WRITER. record() mutates the
// row vectors without locking, so exactly one simulation run may feed a given
// recorder at a time; parallel code (FleetRunner, parallel datagen, bench
// sweeps) must give every concurrent job its own recorder and merge/export
// afterwards. Concurrent record() calls on one instance are a contract
// violation — audit builds (SSMDVFS_AUDIT) trip an SSM_AUDIT_CHECK on entry
// instead of silently interleaving rows. The const accessors are safe to
// call from any thread once recording has finished.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "gpusim/gpu.hpp"

namespace ssm {

class EpochTraceRecorder {
 public:
  /// Appends one epoch's observations. Single-writer: must not be called
  /// concurrently on the same instance (see file comment); audit builds
  /// throw ContractError when two threads are caught inside at once.
  void record(const GpuEpochReport& report);

  /// Retain every full GpuEpochReport (all 47 counters per cluster)
  /// alongside the column summaries. Must be enabled before the first
  /// record() call; this is what the engine's binary trace writer
  /// (src/engine/trace_io) serializes for replay.
  void enableReplayCapture() { capture_reports_ = true; }
  [[nodiscard]] bool replayCaptureEnabled() const noexcept {
    return capture_reports_;
  }
  /// The retained reports (empty unless enableReplayCapture() was called).
  [[nodiscard]] const std::vector<GpuEpochReport>& reports() const noexcept {
    return reports_;
  }

  [[nodiscard]] int epochCount() const noexcept {
    return static_cast<int>(chip_power_w_.size());
  }
  [[nodiscard]] int clusterCount() const noexcept {
    return levels_.empty() ? 0 : static_cast<int>(levels_.front().size());
  }

  /// Level of `cluster` during epoch `epoch`.
  [[nodiscard]] VfLevel levelAt(int epoch, int cluster) const;
  [[nodiscard]] double chipPowerAt(int epoch) const;
  [[nodiscard]] std::int64_t instructionsAt(int epoch, int cluster) const;
  [[nodiscard]] double clusterPowerAt(int epoch, int cluster) const;

  /// Mean chip power over the recorded window.
  [[nodiscard]] double meanChipPowerW() const noexcept;

  /// Fraction of cluster-epochs per level (like RunResult's histogram).
  [[nodiscard]] std::vector<double> levelHistogram(int num_levels) const;

  /// Number of level switches summed over clusters.
  [[nodiscard]] int totalTransitions() const noexcept;

  /// CSV: epoch,cluster,level,instructions,cluster_power_w,chip_power_w.
  void saveCsv(const std::string& path) const;

  /// ASCII timeline: one row per cluster, digits are levels. `max_epochs`
  /// columns are shown (subsampled if the trace is longer).
  void renderTimeline(std::ostream& os, int max_epochs = 100) const;

  void clear();

 private:
  std::vector<std::vector<VfLevel>> levels_;          ///< [epoch][cluster]
  std::vector<std::vector<std::int64_t>> insts_;      ///< [epoch][cluster]
  std::vector<std::vector<double>> cluster_power_w_;  ///< [epoch][cluster]
  std::vector<double> chip_power_w_;                  ///< [epoch]
  std::vector<GpuEpochReport> reports_;  ///< full reports (replay capture)
  bool capture_reports_ = false;
  /// Writers currently inside record(); > 1 means the single-writer
  /// contract is broken. Makes the class non-copyable, which is fine: a
  /// recorder is an append-only sink owned by exactly one run.
  std::atomic<int> writers_{0};
};

}  // namespace ssm
