// Full-program simulation driver: one governor per cluster, run to retire.
//
// This is the harness behind every §V experiment: construct a Gpu for a
// workload, attach a governor family, and measure execution time, energy
// and EDP under per-cluster microsecond-scale DVFS.
//
// The declarations live here for include compatibility, but since the
// engine-layer refactor the implementations are thin adapters over
// engine::EpochLoop + engine::SimBackend (src/engine/runner_adapter.cpp,
// linked from ssm_engine). New code should prefer the engine API directly;
// these entry points are kept because they say exactly what §V runs mean.
#pragma once

#include <string>
#include <vector>

#include "gpusim/gpu.hpp"

namespace ssm {

/// Outcome of one full-program run under one DVFS mechanism.
struct RunResult {
  std::string workload;
  std::string mechanism;
  TimeNs exec_time_ns = 0;
  double energy_j = 0.0;
  double edp = 0.0;               ///< joule-seconds
  std::int64_t instructions = 0;
  int epochs = 0;
  double mean_power_w = 0.0;
  /// Fraction of cluster-epochs spent at each V/f level.
  std::vector<double> level_histogram;
  /// Hottest physical node temperature seen over the run (degC, pre-fault
  /// truth); 0 when the run carried no thermal tracks.
  double peak_temp_c = 0.0;
  /// Epochs during which the thermal throttle capped at least one cluster;
  /// 0 when no throttle was arbitrated.
  int throttle_epochs = 0;
};

class EpochTraceRecorder;
class EpochFaultHook;

namespace thermal {
class ThermalThrottle;
}  // namespace thermal

/// Runs `gpu` to completion (or `max_time_ns`) with one governor per
/// cluster created from `factory`. When `trace` is non-null every epoch
/// report is streamed into it. When `faults` is non-null it corrupts the
/// telemetry the governors (and the trace) observe and arbitrates every
/// commanded V/f transition; when null the run is byte-identical to a build
/// without the seam (one pointer comparison per call site, nothing else).
/// When `throttle` is non-null (requires a Gpu with thermal modeling
/// attached) it caps every governor-commanded level per the thermal
/// protection state machine.
[[nodiscard]] RunResult runWithGovernor(
    Gpu gpu, const GovernorFactory& factory, std::string mechanism_name,
    TimeNs max_time_ns = 5 * kNsPerMs, EpochTraceRecorder* trace = nullptr,
    EpochFaultHook* faults = nullptr,
    thermal::ThermalThrottle* throttle = nullptr);

/// Convenience: runs the given workload at the fixed default level — the
/// paper's baseline configuration. The throttle still applies when given:
/// hardware protection is mechanism-independent.
[[nodiscard]] RunResult runBaseline(Gpu gpu, TimeNs max_time_ns = 5 * kNsPerMs,
                                    thermal::ThermalThrottle* throttle =
                                        nullptr);

/// Chip-wide DVFS variant: ONE governor sees the cluster-averaged
/// observation and its decision is applied to every cluster. Quantifies
/// what the paper's per-cluster application (§V.A) buys over a single
/// chip-level domain.
[[nodiscard]] RunResult runWithChipGovernor(Gpu gpu,
                                            const GovernorFactory& factory,
                                            std::string mechanism_name,
                                            TimeNs max_time_ns = 5 * kNsPerMs,
                                            EpochTraceRecorder* trace = nullptr);

/// Runs a sequence of programs back to back on fresh GPUs while KEEPING the
/// same governor instances across programs (reset() is called between
/// programs: episodic state clears, learned state persists — the F-LEMMA
/// hierarchical design). Returns one RunResult per program, in order.
/// `seed` seeds program i with seed + i.
struct SequenceConfig {
  GpuConfig gpu;
  VfTable vf = VfTable::titanX();
  std::uint64_t seed = 777;
  TimeNs max_time_ns_per_program = 5 * kNsPerMs;
};
[[nodiscard]] std::vector<RunResult> runSequence(
    const std::vector<KernelProfile>& programs, const GovernorFactory& factory,
    std::string mechanism_name, const SequenceConfig& cfg = {});

}  // namespace ssm
