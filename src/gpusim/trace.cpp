#include "gpusim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace ssm {

void EpochTraceRecorder::record(const GpuEpochReport& report) {
  // Single-writer tripwire (see header): the RAII scope keeps the counter
  // balanced even when the cluster-count check below throws, so one contract
  // violation does not poison later, well-behaved calls.
  struct WriterScope {
    std::atomic<int>& writers;
    ~WriterScope() { writers.fetch_sub(1, std::memory_order_release); }
  };
  const int already_inside = writers_.fetch_add(1, std::memory_order_acq_rel);
  WriterScope scope{writers_};
  SSM_AUDIT_CHECK(already_inside == 0,
                  "EpochTraceRecorder::record is single-writer: give each "
                  "concurrent job its own recorder");

  std::vector<VfLevel> levels;
  std::vector<std::int64_t> insts;
  std::vector<double> power;
  levels.reserve(report.clusters.size());
  insts.reserve(report.clusters.size());
  power.reserve(report.clusters.size());
  for (const auto& obs : report.clusters) {
    levels.push_back(obs.level);
    insts.push_back(obs.instructions);
    power.push_back(obs.power_w);
  }
  SSM_CHECK(levels_.empty() || levels.size() == levels_.front().size(),
            "cluster count changed mid-trace");
  levels_.push_back(std::move(levels));
  insts_.push_back(std::move(insts));
  cluster_power_w_.push_back(std::move(power));
  chip_power_w_.push_back(report.chip_power_w);
  if (capture_reports_) reports_.push_back(report);
}

VfLevel EpochTraceRecorder::levelAt(int epoch, int cluster) const {
  SSM_CHECK(epoch >= 0 && epoch < epochCount(), "epoch out of range");
  SSM_CHECK(cluster >= 0 && cluster < clusterCount(), "cluster out of range");
  return levels_[static_cast<std::size_t>(epoch)]
                [static_cast<std::size_t>(cluster)];
}

double EpochTraceRecorder::chipPowerAt(int epoch) const {
  SSM_CHECK(epoch >= 0 && epoch < epochCount(), "epoch out of range");
  return chip_power_w_[static_cast<std::size_t>(epoch)];
}

std::int64_t EpochTraceRecorder::instructionsAt(int epoch, int cluster) const {
  SSM_CHECK(epoch >= 0 && epoch < epochCount(), "epoch out of range");
  SSM_CHECK(cluster >= 0 && cluster < clusterCount(), "cluster out of range");
  return insts_[static_cast<std::size_t>(epoch)]
               [static_cast<std::size_t>(cluster)];
}

double EpochTraceRecorder::clusterPowerAt(int epoch, int cluster) const {
  SSM_CHECK(epoch >= 0 && epoch < epochCount(), "epoch out of range");
  SSM_CHECK(cluster >= 0 && cluster < clusterCount(), "cluster out of range");
  return cluster_power_w_[static_cast<std::size_t>(epoch)]
                         [static_cast<std::size_t>(cluster)];
}

double EpochTraceRecorder::meanChipPowerW() const noexcept {
  if (chip_power_w_.empty()) return 0.0;
  double s = 0.0;
  for (double p : chip_power_w_) s += p;
  return s / static_cast<double>(chip_power_w_.size());
}

std::vector<double> EpochTraceRecorder::levelHistogram(int num_levels) const {
  std::vector<double> hist(static_cast<std::size_t>(num_levels), 0.0);
  double total = 0.0;
  for (const auto& epoch : levels_)
    for (VfLevel l : epoch) {
      if (l >= 0 && l < num_levels) hist[static_cast<std::size_t>(l)] += 1.0;
      total += 1.0;
    }
  if (total > 0)
    for (double& h : hist) h /= total;
  return hist;
}

int EpochTraceRecorder::totalTransitions() const noexcept {
  int transitions = 0;
  for (std::size_t e = 1; e < levels_.size(); ++e)
    for (std::size_t c = 0; c < levels_[e].size(); ++c)
      transitions += levels_[e][c] != levels_[e - 1][c];
  return transitions;
}

void EpochTraceRecorder::saveCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw DataError("cannot open for writing: " + path);
  os << "epoch,cluster,level,instructions,cluster_power_w,chip_power_w\n";
  for (int e = 0; e < epochCount(); ++e)
    for (int c = 0; c < clusterCount(); ++c)
      os << e << ',' << c << ',' << levelAt(e, c) << ','
         << instructionsAt(e, c) << ',' << clusterPowerAt(e, c) << ','
         << chipPowerAt(e) << '\n';
  if (!os) throw DataError("write failed: " + path);
}

void EpochTraceRecorder::renderTimeline(std::ostream& os,
                                        int max_epochs) const {
  if (epochCount() == 0) {
    os << "(empty trace)\n";
    return;
  }
  const int stride = std::max(1, (epochCount() + max_epochs - 1) / max_epochs);
  os << "V/f level per cluster (rows) and epoch (cols";
  if (stride > 1) os << ", every " << stride << "th";
  os << "):\n";
  for (int c = 0; c < clusterCount(); ++c) {
    os << "c" << (c < 10 ? "0" : "") << c << " ";
    for (int e = 0; e < epochCount(); e += stride) {
      const VfLevel l = levelAt(e, c);
      os << static_cast<char>(l <= 9 ? '0' + l : 'a' + (l - 10));
    }
    os << '\n';
  }
}

void EpochTraceRecorder::clear() {
  levels_.clear();
  insts_.clear();
  cluster_power_w_.clear();
  chip_power_w_.clear();
  reports_.clear();
}

}  // namespace ssm
