#include "gpusim/gpu.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

Gpu::Gpu(const GpuConfig& cfg, VfTable vf, const KernelProfile& kernel,
         std::uint64_t seed, ChipPowerModel power_model)
    : cfg_(std::make_shared<const GpuConfig>(cfg)),
      vf_(std::move(vf)),
      power_(std::move(power_model)) {
  kernel.validate();
  SSM_CHECK(cfg_->num_clusters > 0);
  SSM_CHECK(power_.numClusters() == cfg_->num_clusters,
            "power model cluster count must match the GPU config");
  auto kernel_ptr = std::make_shared<const KernelProfile>(kernel);
  Rng root(seed);
  clusters_.reserve(static_cast<std::size_t>(cfg_->num_clusters));
  for (int i = 0; i < cfg_->num_clusters; ++i)
    clusters_.emplace_back(cfg_, kernel_ptr,
                           root.fork(static_cast<std::uint64_t>(i)), i);
  prev_levels_.assign(static_cast<std::size_t>(cfg_->num_clusters),
                      vf_.defaultLevel());
  mem_env_.store_stall_prob = cfg_->store_stall_base;
}

void Gpu::attachThermal(const thermal::ThermalParams& params) {
  thermal_.emplace(params, numClusters());
  thermal_power_w_.assign(clusters_.size(), 0.0);
}

GpuEpochReport Gpu::runEpoch(std::span<const VfLevel> levels) {
  SSM_CHECK(static_cast<int>(levels.size()) == numClusters(),
            "one level per cluster required");
  [[maybe_unused]] const TimeNs now_before = now_ns_;
  [[maybe_unused]] const std::int64_t insts_before = totalInstructions();
  [[maybe_unused]] const double energy_before = energy_.energyJ();
  GpuEpochReport report;
  report.epoch_start_ns = now_ns_;
  report.epoch_len_ns = cfg_->epoch_ns;
  report.clusters.reserve(clusters_.size());

  double total_bytes = 0.0;
  double cluster_power_sum = 0.0;
  std::int64_t epoch_insts = 0;

  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    const VfLevel level = vf_.clamp(levels[i]);
    const VfPoint& vfp = vf_.at(level);
    const bool transitioned = level != prev_levels_[i];

    ClusterEpochResult r = clusters_[i].runEpoch(
        now_ns_, cfg_->epoch_ns, vfp.freq_mhz, transitioned, mem_env_);

    const ClusterActivity act{.issue = r.issue_act,
                              .alu = r.alu_act,
                              .mem = r.mem_act,
                              .active = r.active_frac};
    const double p_dyn = power_.cluster().dynamicPowerW(vfp, act);
    // Leakage feedback: with a thermal model attached, evaluate at the
    // cluster's epoch-start temperature; without one, the calibration-point
    // path reproduces the historical voltage-only leakage bit-for-bit.
    const double p_leak =
        thermal_ ? power_.cluster().leakagePowerW(
                       vfp, thermal_->clusterTempC(static_cast<int>(i)))
                 : power_.cluster().leakagePowerW(vfp);
    const double p_total = p_dyn + p_leak;
    cluster_power_sum += p_total;
    if (thermal_) thermal_power_w_[i] = p_total;

    r.counters.set(CounterId::kPowerClusterW, p_total);
    r.counters.set(CounterId::kPowerDynamicW, p_dyn);
    r.counters.set(CounterId::kPowerLeakageW, p_leak);
    r.counters.set(CounterId::kEnergyEpochMj,
                   p_total * secondsOf(cfg_->epoch_ns) * 1e3);
    r.counters.set(CounterId::kAvgVoltage, vfp.voltage_v);

    total_bytes += r.counters.get(CounterId::kDramBytes);
    epoch_insts += r.instructions;

    EpochObservation obs;
    obs.counters = r.counters;
    obs.level = level;
    obs.power_w = p_total;
    obs.instructions = r.instructions;
    obs.epoch_start_ns = now_ns_;
    obs.epoch_len_ns = cfg_->epoch_ns;
    obs.cluster_id = static_cast<int>(i);
    obs.cluster_done = r.all_done;
    report.clusters.push_back(std::move(obs));

    prev_levels_[i] = level;
  }

  // DRAM bandwidth utilisation this epoch (GB/s == bytes/ns).
  const double capacity_bytes =
      cfg_->dram_bw_gbps * static_cast<double>(cfg_->epoch_ns);
  report.dram_util =
      capacity_bytes > 0.0 ? std::min(1.0, total_bytes / capacity_bytes) : 0.0;
  for (auto& obs : report.clusters)
    obs.counters.set(CounterId::kDramUtil, report.dram_util);

  // Queueing model for the next epoch: latencies inflate and the store
  // buffer backs up once utilisation crosses the knee.
  mem_env_.latency_mult =
      std::min(2.5, 1.0 + 1.5 * std::max(0.0, report.dram_util - 0.75));
  mem_env_.store_stall_prob =
      cfg_->store_stall_base + 0.3 * std::max(0.0, report.dram_util - 0.8);

  report.chip_power_w = cluster_power_sum + power_.uncorePowerW(report.dram_util);
  report.all_done = allDone();

  // Advance the RC network with this epoch's heat and expose the post-step
  // temperatures; next epoch's leakage reads them back (explicit coupling).
  if (thermal_) {
    thermal_->step(thermal_power_w_, power_.uncorePowerW(report.dram_util),
                   cfg_->epoch_ns);
    report.cluster_temps_c = thermal_->state().cluster_c;
    report.package_temp_c = thermal_->packageTempC();
  }

  // Energy: integrate up to the retire point in the final epoch, full epoch
  // otherwise.
  TimeNs priced = cfg_->epoch_ns;
  if (report.all_done) {
    const TimeNs finish = finishTimeNs();
    if (finish >= now_ns_ && finish < now_ns_ + cfg_->epoch_ns)
      priced = std::max<TimeNs>(1, finish - now_ns_);
  }
  energy_.add(report.chip_power_w, priced);

  now_ns_ += cfg_->epoch_ns;
  last_epoch_insts_ = epoch_insts;

  // Deep invariants at the epoch boundary (audit builds only): simulated
  // time and the chip-wide counters advance monotonically, and the power
  // pipeline produced physical values.
  SSM_AUDIT_CHECK(now_ns_ == now_before + cfg_->epoch_ns,
                  "simulated time must advance by exactly one epoch");
  SSM_AUDIT_CHECK(totalInstructions() >= insts_before,
                  "chip instruction count must be monotonic");
  SSM_AUDIT_CHECK(energy_.energyJ() >= energy_before,
                  "accumulated energy must be monotonic");
  SSM_AUDIT_CHECK(std::isfinite(report.chip_power_w) &&
                      report.chip_power_w >= 0.0,
                  "chip power must be finite and non-negative");
  SSM_AUDIT_CHECK(report.dram_util >= 0.0 && report.dram_util <= 1.0,
                  "DRAM utilisation must lie in [0, 1]");
  return report;
}

GpuEpochReport Gpu::runEpochUniform(VfLevel level) {
  std::vector<VfLevel> levels(static_cast<std::size_t>(numClusters()), level);
  return runEpoch(levels);
}

int Gpu::runUntil(TimeNs deadline_ns, VfLevel level) {
  int epochs = 0;
  while (!allDone() && now_ns_ < deadline_ns) {
    runEpochUniform(level);
    ++epochs;
  }
  return epochs;
}

bool Gpu::allDone() const noexcept {
  return std::all_of(clusters_.begin(), clusters_.end(),
                     [](const SmCluster& c) { return c.done(); });
}

TimeNs Gpu::finishTimeNs() const noexcept {
  if (!allDone()) return -1;
  TimeNs t = 0;
  for (const auto& c : clusters_) t = std::max(t, c.finishNs());
  return t;
}

double Gpu::edp() const noexcept {
  const TimeNs t = allDone() ? finishTimeNs() : now_ns_;
  return totalEnergyJ() * secondsOf(std::max<TimeNs>(t, 1));
}

std::int64_t Gpu::totalInstructions() const noexcept {
  std::int64_t total = 0;
  for (const auto& c : clusters_) total += c.totalInstructions();
  return total;
}

}  // namespace ssm
