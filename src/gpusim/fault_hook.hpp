// Fault-injection seam for the full-program runners.
//
// The simulation loop is fault-agnostic: it only knows an optional hook
// that may (a) corrupt the telemetry the governors are about to observe and
// (b) decide whether a commanded V/f transition actually lands. The
// concrete implementation (seeded, scenario-driven) lives in src/faults;
// keeping the interface here avoids a gpusim -> faults dependency cycle.
//
// Zero-cost contract: when no hook is installed the runner performs ONE
// pointer comparison per call site and nothing else — no virtual calls, no
// RNG draws, no allocation — so a fault-free run is byte-identical to a
// build that predates this seam. ssm_lint rule `fault-hook-guard` enforces
// the null-check-at-call-site idiom in the hot-path directories.
#pragma once

#include "power/vf_table.hpp"

namespace ssm {

struct GpuEpochReport;

/// Per-run fault hook. Single-run, single-writer: one simulation loop feeds
/// a given hook; parallel sweeps give every job its own instance (exactly
/// like EpochTraceRecorder). Implementations must be deterministic given
/// their construction arguments.
class EpochFaultHook {
 public:
  virtual ~EpochFaultHook() = default;

  /// Called once per epoch, before the governors observe the report. May
  /// mutate the per-cluster observations in place (the governors and the
  /// trace recorder then see the faulted view; the Gpu's internal state and
  /// energy accounting are untouched).
  virtual void onTelemetry(GpuEpochReport& report) = 0;

  /// Called once per cluster per epoch with the level the governor
  /// requested for the next epoch and the level currently applied. Returns
  /// the level that actually lands (== `requested` when actuation works).
  virtual VfLevel onActuate(int cluster_id, VfLevel requested,
                            VfLevel current) = 0;
};

}  // namespace ssm
