#include "gpusim/runner.hpp"

#include <memory>

#include "common/check.hpp"
#include "gpusim/fault_hook.hpp"
#include "gpusim/trace.hpp"

namespace ssm {

RunResult runWithGovernor(Gpu gpu, const GovernorFactory& factory,
                          std::string mechanism_name, TimeNs max_time_ns,
                          EpochTraceRecorder* trace, EpochFaultHook* faults) {
  const int n = gpu.numClusters();
  std::vector<std::unique_ptr<DvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) governors.push_back(factory.create(i));

  std::vector<VfLevel> levels(static_cast<std::size_t>(n),
                              gpu.vfTable().defaultLevel());
  std::vector<double> level_epochs(gpu.vfTable().size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_time_sum = 0.0;

  while (!gpu.allDone() && gpu.nowNs() < max_time_ns) {
    GpuEpochReport report = gpu.runEpoch(levels);
    // Faulted telemetry is what both the governors and the trace observe;
    // the Gpu's internal state and energy accounting stay truthful.
    if (faults != nullptr) faults->onTelemetry(report);
    if (trace != nullptr) trace->record(report);
    ++result.epochs;
    power_time_sum += report.chip_power_w;
    for (int i = 0; i < n; ++i) {
      const auto& obs = report.clusters[static_cast<std::size_t>(i)];
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      const VfLevel requested =
          gpu.vfTable().clamp(governors[static_cast<std::size_t>(i)]->decide(obs));
      levels[static_cast<std::size_t>(i)] =
          faults != nullptr ? faults->onActuate(i, requested, obs.level)
                            : requested;
    }
    if (report.all_done) break;
  }

  SSM_CHECK(gpu.allDone(),
            "program did not retire before max_time_ns; raise the limit");

  result.exec_time_ns = gpu.finishTimeNs();
  result.energy_j = gpu.totalEnergyJ();
  result.edp = gpu.edp();
  result.instructions = gpu.totalInstructions();
  result.mean_power_w =
      result.epochs > 0 ? power_time_sum / result.epochs : 0.0;

  const double total_cluster_epochs =
      static_cast<double>(result.epochs) * static_cast<double>(n);
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] =
        total_cluster_epochs > 0 ? level_epochs[l] / total_cluster_epochs : 0.0;
  return result;
}

RunResult runWithChipGovernor(Gpu gpu, const GovernorFactory& factory,
                              std::string mechanism_name, TimeNs max_time_ns,
                              EpochTraceRecorder* trace) {
  const int n = gpu.numClusters();
  const std::unique_ptr<DvfsGovernor> governor = factory.create(0);

  std::vector<VfLevel> levels(static_cast<std::size_t>(n),
                              gpu.vfTable().defaultLevel());
  std::vector<double> level_epochs(gpu.vfTable().size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_sum = 0.0;

  while (!gpu.allDone() && gpu.nowNs() < max_time_ns) {
    const GpuEpochReport report = gpu.runEpoch(levels);
    if (trace != nullptr) trace->record(report);
    ++result.epochs;
    power_sum += report.chip_power_w;

    // Cluster-averaged observation over live clusters.
    EpochObservation agg;
    agg.epoch_start_ns = report.epoch_start_ns;
    agg.epoch_len_ns = report.epoch_len_ns;
    int live = 0;
    for (const auto& obs : report.clusters) {
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      if (obs.cluster_done) continue;
      ++live;
      agg.instructions += obs.instructions;
      agg.power_w += obs.power_w;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.add(id, obs.counters.get(id));
      }
      agg.level = obs.level;
    }
    if (live > 0) {
      const double inv = 1.0 / static_cast<double>(live);
      agg.instructions =
          static_cast<std::int64_t>(static_cast<double>(agg.instructions) * inv);
      agg.power_w *= inv;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.set(id, agg.counters.get(id) * inv);
      }
    } else {
      agg.cluster_done = true;
    }
    const VfLevel next = gpu.vfTable().clamp(governor->decide(agg));
    levels.assign(static_cast<std::size_t>(n), next);
    if (report.all_done) break;
  }

  SSM_CHECK(gpu.allDone(),
            "program did not retire before max_time_ns; raise the limit");
  result.exec_time_ns = gpu.finishTimeNs();
  result.energy_j = gpu.totalEnergyJ();
  result.edp = gpu.edp();
  result.instructions = gpu.totalInstructions();
  result.mean_power_w = result.epochs > 0 ? power_sum / result.epochs : 0.0;
  const double total = static_cast<double>(result.epochs) * n;
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] = total > 0 ? level_epochs[l] / total : 0.0;
  return result;
}

namespace {
class StaticFactory final : public GovernorFactory {
 public:
  explicit StaticFactory(VfLevel level) : level_(level) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<StaticGovernor>(level_);
  }

 private:
  VfLevel level_;
};
}  // namespace

RunResult runBaseline(Gpu gpu, TimeNs max_time_ns) {
  const StaticFactory factory(gpu.vfTable().defaultLevel());
  return runWithGovernor(std::move(gpu), factory, "baseline", max_time_ns);
}

std::vector<RunResult> runSequence(const std::vector<KernelProfile>& programs,
                                   const GovernorFactory& factory,
                                   std::string mechanism_name,
                                   const SequenceConfig& cfg) {
  SSM_CHECK(!programs.empty(), "empty program sequence");

  std::vector<std::unique_ptr<DvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(cfg.gpu.num_clusters));
  for (int i = 0; i < cfg.gpu.num_clusters; ++i)
    governors.push_back(factory.create(i));

  std::vector<RunResult> results;
  results.reserve(programs.size());
  // Reused across programs; re-assigned (not re-constructed) per iteration
  // so the sequence loop stops churning the heap once the first program
  // sized them.
  std::vector<VfLevel> levels;
  std::vector<double> level_epochs;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    Gpu gpu(cfg.gpu, cfg.vf, programs[p], cfg.seed + p,
            ChipPowerModel(cfg.gpu.num_clusters));
    for (auto& gov : governors) gov->reset();

    levels.assign(static_cast<std::size_t>(cfg.gpu.num_clusters),
                  gpu.vfTable().defaultLevel());
    level_epochs.assign(gpu.vfTable().size(), 0.0);

    RunResult result;
    result.workload = programs[p].name;
    result.mechanism = mechanism_name;
    double power_sum = 0.0;
    while (!gpu.allDone() && gpu.nowNs() < cfg.max_time_ns_per_program) {
      const GpuEpochReport report = gpu.runEpoch(levels);
      ++result.epochs;
      power_sum += report.chip_power_w;
      for (int i = 0; i < cfg.gpu.num_clusters; ++i) {
        const auto& obs = report.clusters[static_cast<std::size_t>(i)];
        level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
        levels[static_cast<std::size_t>(i)] = gpu.vfTable().clamp(
            governors[static_cast<std::size_t>(i)]->decide(obs));
      }
      if (report.all_done) break;
    }
    SSM_CHECK(gpu.allDone(), "sequence program did not retire in time");

    result.exec_time_ns = gpu.finishTimeNs();
    result.energy_j = gpu.totalEnergyJ();
    result.edp = gpu.edp();
    result.instructions = gpu.totalInstructions();
    result.mean_power_w =
        result.epochs > 0 ? power_sum / result.epochs : 0.0;
    const double total =
        static_cast<double>(result.epochs) * cfg.gpu.num_clusters;
    result.level_histogram.resize(level_epochs.size());
    for (std::size_t l = 0; l < level_epochs.size(); ++l)
      result.level_histogram[l] = total > 0 ? level_epochs[l] / total : 0.0;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace ssm
