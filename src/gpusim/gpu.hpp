// Top-level GPU: 24 clusters, shared memory system, per-cluster DVFS.
//
// The Gpu advances in aligned 10 µs epochs. Within an epoch each cluster
// runs in its own clock domain at the V/f level requested for it; at the
// epoch boundary the Gpu aggregates DRAM traffic into a bandwidth-queueing
// term for the next epoch, prices energy through the ChipPowerModel and
// emits one EpochObservation per cluster for the governors.
//
// The whole object is value-semantic: copying a Gpu snapshots the complete
// simulation state. Data generation (§III.A) relies on this to replay the
// same execution window at each of the six operating points.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gpusim/governor.hpp"
#include "gpusim/gpu_config.hpp"
#include "gpusim/sm_cluster.hpp"
#include "power/power_model.hpp"
#include "power/vf_table.hpp"
#include "thermal/thermal_model.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

/// Everything observable about one simulated epoch.
struct GpuEpochReport {
  std::vector<EpochObservation> clusters;
  double chip_power_w = 0.0;
  double dram_util = 0.0;
  TimeNs epoch_start_ns = 0;
  TimeNs epoch_len_ns = 0;
  bool all_done = false;
  /// Post-step node temperatures when thermal modeling is attached; empty
  /// (and package_temp_c == 0) otherwise. One entry per cluster.
  std::vector<double> cluster_temps_c;
  double package_temp_c = 0.0;

  [[nodiscard]] bool hasThermal() const noexcept {
    return !cluster_temps_c.empty();
  }
};

class Gpu {
 public:
  Gpu(const GpuConfig& cfg, VfTable vf, const KernelProfile& kernel,
      std::uint64_t seed, ChipPowerModel power_model = ChipPowerModel(24));

  [[nodiscard]] const VfTable& vfTable() const noexcept { return vf_; }
  [[nodiscard]] const GpuConfig& config() const noexcept { return *cfg_; }
  [[nodiscard]] int numClusters() const noexcept {
    return static_cast<int>(clusters_.size());
  }

  /// Runs one epoch with per-cluster levels (levels.size() == numClusters()).
  GpuEpochReport runEpoch(std::span<const VfLevel> levels);

  /// Runs one epoch with the same level on every cluster.
  GpuEpochReport runEpochUniform(VfLevel level);

  /// Runs whole epochs until the program retires or `deadline_ns` is
  /// reached, at the given uniform level. Returns the number of epochs run.
  int runUntil(TimeNs deadline_ns, VfLevel level);

  [[nodiscard]] bool allDone() const noexcept;
  [[nodiscard]] TimeNs nowNs() const noexcept { return now_ns_; }

  /// Wall-clock time at which the last warp retired (-1 while running).
  [[nodiscard]] TimeNs finishTimeNs() const noexcept;

  [[nodiscard]] double totalEnergyJ() const noexcept {
    return energy_.energyJ();
  }
  /// EDP using the retire time when done, else the current time.
  [[nodiscard]] double edp() const noexcept;

  [[nodiscard]] std::int64_t totalInstructions() const noexcept;

  /// Chip-wide instructions issued in the most recent epoch.
  [[nodiscard]] std::int64_t lastEpochInstructions() const noexcept {
    return last_epoch_insts_;
  }

  /// Attaches the RC thermal model: leakage becomes temperature-dependent
  /// (fed from the node temperatures at the start of each epoch) and every
  /// subsequent report carries post-step temperature tracks. Never attached
  /// by default — without it the simulator is bit-identical to the
  /// pre-thermal code. Copying the Gpu snapshots the thermal state too.
  void attachThermal(const thermal::ThermalParams& params);

  [[nodiscard]] bool hasThermal() const noexcept {
    return thermal_.has_value();
  }
  /// Thermal node snapshot; requires hasThermal().
  [[nodiscard]] const thermal::ThermalState& thermalState() const {
    return thermal_->state();
  }
  /// Overwrites node temperatures (datacenter carry-over between jobs);
  /// requires hasThermal().
  void setThermalState(const thermal::ThermalState& state) {
    thermal_->setState(state);
  }

 private:
  std::shared_ptr<const GpuConfig> cfg_;
  VfTable vf_;
  ChipPowerModel power_;
  std::vector<SmCluster> clusters_;
  std::vector<VfLevel> prev_levels_;
  MemEnv mem_env_;
  EnergyAccountant energy_;
  TimeNs now_ns_ = 0;
  std::int64_t last_epoch_insts_ = 0;
  std::optional<thermal::ThermalModel> thermal_;
  std::vector<double> thermal_power_w_;  ///< per-epoch scratch, preallocated
};

}  // namespace ssm
