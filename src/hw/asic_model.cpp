#include "hw/asic_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

namespace {

struct NetCost {
  std::int64_t macs = 0;
  std::int64_t words = 0;   ///< live weights + live biases
  std::int64_t layers = 0;
};

NetCost costOf(const Mlp& net) {
  NetCost c;
  c.layers = static_cast<std::int64_t>(net.layerCount());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const DenseLayer& layer = net.layer(l);
    const std::int64_t nz = layer.nonzeroWeights();
    c.macs += nz;
    c.words += nz;
    // Live output neurons keep their bias word.
    const Matrix& m = layer.mask();
    for (int o = 0; o < layer.outDim(); ++o) {
      for (int i = 0; i < layer.inDim(); ++i) {
        if (m(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) !=
            0.0) {
          ++c.words;
          break;
        }
      }
    }
  }
  return c;
}

}  // namespace

AsicReport estimateAsic(const Mlp& decision, const Mlp& calibrator,
                        const AsicConfig& cfg) {
  SSM_CHECK(cfg.mac_units >= 1, "need at least one MAC lane");
  SSM_CHECK(cfg.clock_mhz > 0.0, "clock must be positive");

  const NetCost dec = costOf(decision);
  const NetCost cal = costOf(calibrator);

  AsicReport r;
  r.macs = dec.macs + cal.macs;
  r.weight_words = dec.words + cal.words;

  const std::int64_t mac_cycles =
      (r.macs + cfg.mac_units - 1) / cfg.mac_units;
  r.cycles_per_inference =
      mac_cycles + (dec.layers + cal.layers) * cfg.layer_overhead_cycles +
      cfg.io_overhead_cycles;
  r.time_us = static_cast<double>(r.cycles_per_inference) / cfg.clock_mhz;
  r.dvfs_period_fraction = r.time_us / 10.0;

  // Area at 65 nm, then scaled.
  const double sram_bytes =
      static_cast<double>(r.weight_words * cfg.bytes_per_word);
  const double area_um2_65 =
      cfg.mac_units * cfg.mac_area_um2_65 +
      sram_bytes * cfg.sram_area_um2_per_byte_65 + cfg.ctrl_area_um2_65;
  r.area_mm2_28 = area_um2_65 * cfg.area_scale_65_to_28 * 1e-6;

  // Energy per inference at 65 nm, then scaled. Every MAC reads one weight
  // word from the local SRAM.
  const double energy_pj_65 =
      static_cast<double>(r.macs) * cfg.mac_energy_pj_65 +
      static_cast<double>(r.macs * cfg.bytes_per_word) *
          cfg.sram_energy_pj_per_byte_65 +
      static_cast<double>(r.cycles_per_inference) *
          cfg.ctrl_energy_pj_per_cycle_65;
  r.energy_per_inference_nj_28 =
      energy_pj_65 * cfg.energy_scale_65_to_28 * 1e-3;
  r.power_w_28 = r.time_us > 0.0
                     ? r.energy_per_inference_nj_28 * 1e-9 /
                           (r.time_us * 1e-6)
                     : 0.0;
  SSM_AUDIT_CHECK(r.macs >= 0 && r.weight_words >= 0 &&
                      r.cycles_per_inference >= 0,
                  "ASIC cost counts must be non-negative");
  SSM_AUDIT_CHECK(std::isfinite(r.time_us) && r.time_us >= 0.0 &&
                      std::isfinite(r.area_mm2_28) && r.area_mm2_28 >= 0.0 &&
                      std::isfinite(r.energy_per_inference_nj_28) &&
                      r.energy_per_inference_nj_28 >= 0.0,
                  "ASIC estimates must be finite and non-negative");
  return r;
}

}  // namespace ssm
