// Analytic ASIC cost model for the SSMDVFS inference module (§V.D).
//
// The paper synthesises a Verilog FP32 implementation with a 65 nm TSMC
// library and scales the result to 28 nm with DeepScaleTool, reporting:
// 192 cycles/inference (0.16 µs @ 1165 MHz), 0.0080 mm^2 and 0.0025 W.
// We reproduce those four scalars from the compressed network's shape with
// a parameterised MAC-array model: cycles from a serial MAC schedule plus
// per-layer pipeline flush and I/O overheads; area/energy from published
// 65 nm FP32 constants and DeepScale-style 65→28 nm scaling factors.
#pragma once

#include <cstdint>

#include "nn/mlp.hpp"

namespace ssm {

struct AsicConfig {
  int mac_units = 1;             ///< parallel FP32 MAC lanes
  double clock_mhz = 1165.0;     ///< default GPU clock (§V.D)
  int layer_overhead_cycles = 2; ///< pipeline fill/flush per FC layer
  int io_overhead_cycles = 6;    ///< counter ingest + level output

  // 65 nm FP32 reference constants.
  double mac_energy_pj_65 = 9.5;
  double mac_area_um2_65 = 11500.0;    ///< pipelined FP32 MAC + registers
  double sram_area_um2_per_byte_65 = 4.2;
  double sram_energy_pj_per_byte_65 = 0.85;
  double ctrl_area_um2_65 = 24000.0;   ///< FSM, counters, I/O registers
  double ctrl_energy_pj_per_cycle_65 = 0.35;

  // DeepScaleTool-style scaling factors 65 nm -> 28 nm.
  double area_scale_65_to_28 = 0.186;
  double energy_scale_65_to_28 = 0.25;

  int bytes_per_word = 4;  ///< FP32
};

struct AsicReport {
  std::int64_t macs = 0;               ///< live multiply-accumulates
  std::int64_t weight_words = 0;       ///< stored weights + biases
  std::int64_t cycles_per_inference = 0;
  double time_us = 0.0;
  double area_mm2_28 = 0.0;
  double energy_per_inference_nj_28 = 0.0;
  double power_w_28 = 0.0;             ///< energy / inference time
  /// Fraction of one 10 µs DVFS period consumed by an inference.
  double dvfs_period_fraction = 0.0;
};

/// Estimates the inference engine running the full combined model
/// (Decision-maker followed by Calibrator, as one back-to-back inference
/// per DVFS epoch).
[[nodiscard]] AsicReport estimateAsic(const Mlp& decision,
                                      const Mlp& calibrator,
                                      const AsicConfig& cfg = {});

}  // namespace ssm
