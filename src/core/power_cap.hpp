// Closed-loop power capping on top of SSMDVFS.
//
// The performance-loss preset is SSMDVFS's single user-facing knob. In a
// deployment the operator usually has the *dual* problem: hold the chip
// under a power cap (a capacity event, a thermal excursion) while giving
// up as little performance as possible. This module closes that loop: an
// integral controller watches chip power per epoch and schedules the
// preset handed to the per-cluster governors — preset rises while the cap
// is violated (allowing deeper V/f drops) and relaxes back toward zero
// when there is headroom.
//
// This is an extension the paper points at but does not build (its preset
// is fixed per run); it exercises the public governor API exactly the way
// a power-management stack would.
#pragma once

#include <memory>

#include "core/ssm_governor.hpp"
#include "gpusim/gpu.hpp"
#include "gpusim/runner.hpp"

namespace ssm {

struct PowerCapConfig {
  double cap_w = 180.0;          ///< chip power target, watts
  /// Integral gain: preset increment per (watt of violation × epoch).
  double ki = 0.002;
  /// Preset decay per epoch while under the cap (relax toward 0).
  double relax = 0.02;
  /// Bounds on the scheduled preset.
  double preset_min = 0.0;
  double preset_max = 0.60;
  /// Initial preset.
  double preset0 = 0.0;
};

/// The preset schedule controller (pure logic; drive it from any loop).
class PowerCapController {
 public:
  explicit PowerCapController(PowerCapConfig cfg);

  /// Feeds one epoch's chip power; returns the preset for the next epoch.
  double onEpoch(double chip_power_w);

  [[nodiscard]] double preset() const noexcept { return preset_; }
  [[nodiscard]] double cap() const noexcept { return cfg_.cap_w; }
  [[nodiscard]] int violations() const noexcept { return violations_; }
  [[nodiscard]] int epochs() const noexcept { return epochs_; }
  void reset();

  /// Retargets the cap without disturbing the integral state — the
  /// hierarchical coordinator (src/dc) moves per-GPU caps every control
  /// round while each chip's loop keeps its accumulated preset.
  void setCap(double cap_w);

 private:
  PowerCapConfig cfg_;
  double preset_;
  int violations_ = 0;
  int epochs_ = 0;
};

/// Outcome of a capped run.
struct PowerCapRunResult {
  RunResult run;                 ///< aggregate metrics of the governed run
  double mean_power_w = 0.0;
  double max_power_w = 0.0;
  /// Fraction of epochs above the cap (after the controller reacted).
  double violation_frac = 0.0;
  double final_preset = 0.0;
};

/// Runs a program under SSMDVFS with the power-cap controller scheduling
/// the working preset every epoch. The governors' own self-calibration
/// stays active inside each epoch's decision; the controller only moves
/// the preset they aim for.
[[nodiscard]] PowerCapRunResult runWithPowerCap(
    Gpu gpu, std::shared_ptr<const SsmModel> model,
    const PowerCapConfig& cap_cfg, SsmGovernorConfig governor_cfg = {},
    TimeNs max_time_ns = 5 * kNsPerMs);

}  // namespace ssm
