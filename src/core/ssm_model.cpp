#include "core/ssm_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "nn/quantize.hpp"

namespace ssm {

namespace {

std::vector<int> buildDims(int input, const std::vector<int>& hidden,
                           int output) {
  std::vector<int> dims;
  dims.reserve(hidden.size() + 2);
  dims.push_back(input);
  for (int h : hidden) dims.push_back(h);
  dims.push_back(output);
  return dims;
}

}  // namespace

SsmModelConfig SsmModelConfig::compressedArch() {
  SsmModelConfig cfg;
  // §IV.B: "three fully connected layers for Decision-maker and two layers
  // for Calibrator … each with 12 hidden neurons". Counting the output
  // layer as an FC layer, that is two hidden layers + output for the
  // Decision-maker and one hidden layer + output for the Calibrator.
  cfg.decision_hidden = {12, 12};
  cfg.calibrator_hidden = {12};
  return cfg;
}

SsmModel::SsmModel(SsmModelConfig cfg)
    : cfg_(std::move(cfg)),
      decision_(buildDims(static_cast<int>(cfg_.features.size()) + 1,
                          cfg_.decision_hidden, cfg_.num_levels),
                Head::kSoftmaxClassifier, Rng(cfg_.init_seed)),
      calibrator_(buildDims(static_cast<int>(cfg_.features.size()) + 1 +
                                cfg_.num_levels,
                            cfg_.calibrator_hidden, 1),
                  Head::kRegression, Rng(cfg_.init_seed ^ 0x9e3779b9ULL)) {
  SSM_CHECK(!cfg_.features.empty(), "at least one feature is required");
  SSM_CHECK(cfg_.num_levels >= 2, "need at least two V/f levels");
  SSM_CHECK(cfg_.decode_theta > 0.0 && cfg_.decode_theta <= 1.0,
            "decode_theta must be in (0,1]");
  recompilePacked();
}

void SsmModel::recompilePacked() {
  packed_decision_ = PackedMlp(decision_);
  packed_calibrator_ = PackedMlp(calibrator_);
}

PackedInt8Mlp SsmModel::compileInt8Decision(
    const Matrix& calibration_rows) const {
  SSM_CHECK(trained_, "train the model before int8 compilation");
  SSM_CHECK(calibration_rows.rows() > 0,
            "activation calibration needs at least one row");
  const QuantConfig qcfg{.weight_bits = QuantBits::kInt8,
                         .quantize_activations = true};
  return PackedInt8Mlp(QuantizedMlp(decision_, qcfg, calibration_rows));
}

void SsmModel::standardizeDecision(Matrix& m) const {
  for (std::size_t r = 0; r < m.rows(); ++r) standardizer_.apply(m.row(r));
}

void SsmModel::standardizeCalibrator(Matrix& m) const {
  const std::size_t width = standardizer_.mean.size();
  for (std::size_t r = 0; r < m.rows(); ++r)
    standardizer_.apply(m.row(r).subspan(0, width));
}

Matrix SsmModel::calibratorTrainingMatrix(const Dataset& ds) const {
  Matrix cal_in = ds.calibratorInputs(cfg_.features, cfg_.num_levels);
  // Corrupt the loss column (pre-standardization) so the Calibrator stays
  // accurate for preset values outside the realized-loss manifold.
  if (cfg_.calibrator_loss_corrupt_prob > 0.0) {
    Rng corrupt(cfg_.init_seed ^ 0xc022u);
    const std::size_t loss_col = cfg_.features.size();
    for (std::size_t r = 0; r < cal_in.rows(); ++r)
      if (corrupt.nextBernoulli(cfg_.calibrator_loss_corrupt_prob))
        cal_in(r, loss_col) = corrupt.nextDouble() * cfg_.corrupt_loss_max;
  }
  standardizeCalibrator(cal_in);
  return cal_in;
}

SsmTrainSummary SsmModel::train(const Dataset& train_set,
                                const Dataset& holdout) {
  SSM_CHECK(!train_set.empty(), "empty training set");
  Matrix dec_in = train_set.decisionInputs(cfg_.features);
  standardizer_ = Standardizer::fit(dec_in.flat(), dec_in.cols());
  standardizeDecision(dec_in);
  const std::vector<int> labels = train_set.decisionLabels();

  const Matrix cal_in = calibratorTrainingMatrix(train_set);
  const std::vector<double> targets = train_set.calibratorTargets();

  AdamTrainer dec_trainer(cfg_.train);
  dec_trainer.fitClassifier(decision_, dec_in, labels);
  AdamTrainer cal_trainer(cfg_.train);
  cal_trainer.fitRegression(calibrator_, cal_in, targets);
  trained_ = true;
  recompilePacked();

  SsmTrainSummary summary;
  const Dataset& eval = holdout.empty() ? train_set : holdout;
  summary.decision_accuracy = decisionAccuracy(eval);
  summary.calibrator_mape = calibratorMape(eval);
  summary.flops = flops();
  return summary;
}

std::vector<double> SsmModel::decisionRow(const CounterBlock& counters,
                                          double loss) const {
  std::vector<double> row;
  row.reserve(cfg_.features.size() + 1);
  for (CounterId id : cfg_.features) row.push_back(counters.get(id));
  row.push_back(loss);
  if (trained_) standardizer_.apply(row);
  return row;
}

std::vector<double> SsmModel::calibratorRow(const CounterBlock& counters,
                                            double loss, int level) const {
  SSM_CHECK(level >= 0 && level < cfg_.num_levels, "level out of range");
  std::vector<double> row = decisionRow(counters, loss);
  row.resize(cfg_.features.size() + 1 +
                 static_cast<std::size_t>(cfg_.num_levels),
             0.0);
  row[cfg_.features.size() + 1 + static_cast<std::size_t>(level)] = 1.0;
  return row;
}

std::vector<double> SsmModel::decisionDistribution(
    const CounterBlock& counters, double loss_preset) const {
  std::vector<double> probs =
      decision_.forward(decisionRow(counters, loss_preset));
  SSM_AUDIT_CHECK(static_cast<int>(probs.size()) == cfg_.num_levels,
                  "Decision-maker must emit one probability per V/f level");
  return probs;
}

int SsmModel::decideLevel(const CounterBlock& counters,
                          double loss_preset) const {
  const auto probs = decisionDistribution(counters, loss_preset);
  const double max_p = *std::max_element(probs.begin(), probs.end());
  // Minimum-frequency decode: the lowest level whose probability is within
  // decode_theta of the winner. With theta = 1 this is argmax.
  for (std::size_t l = 0; l < probs.size(); ++l)
    if (probs[l] >= cfg_.decode_theta * max_p) return static_cast<int>(l);
  return static_cast<int>(probs.size()) - 1;
}

double SsmModel::predictInstsK(const CounterBlock& counters,
                               double loss_preset, int level) const {
  const double insts_k = calibrator_.predictScalar(
      calibratorRow(counters, loss_preset, level));
  SSM_AUDIT_CHECK(std::isfinite(insts_k),
                  "Calibrator must predict a finite instruction count");
  return insts_k;
}

double SsmModel::decisionAccuracy(const Dataset& ds) const {
  if (ds.empty()) return 0.0;
  Matrix in = ds.decisionInputs(cfg_.features);
  standardizeDecision(in);
  return classifierAccuracy(decision_, in, ds.decisionLabels());
}

double SsmModel::calibratorMape(const Dataset& ds) const {
  if (ds.empty()) return 0.0;
  Matrix in = ds.calibratorInputs(cfg_.features, cfg_.num_levels);
  standardizeCalibrator(in);
  const std::vector<double> targets = ds.calibratorTargets();
  return regressionMape(calibrator_, in, targets);
}

std::int64_t SsmModel::flops() const noexcept {
  return decision_.flops() + calibrator_.flops();
}

std::int64_t SsmModel::denseFlops() const noexcept {
  return decision_.denseFlops() + calibrator_.denseFlops();
}

// -- packed inference -------------------------------------------------------

SsmModel::InferenceScratch SsmModel::makeScratch() const {
  const std::size_t feat = cfg_.features.size();
  const std::size_t levels = static_cast<std::size_t>(cfg_.num_levels);
  InferenceScratch s;
  s.decision = packed_decision_.makeScratch();
  s.calibrator = packed_calibrator_.makeScratch();
  packed_calibrator_.reserveBatchScratch(s.calibrator, levels);
  s.row.resize(feat + 1);
  s.probs.resize(levels);
  s.cal_rows = Matrix(levels, feat + 1 + levels);
  s.cal_out = Matrix(levels, 1);
  return s;
}

void SsmModel::fillDecisionRow(const CounterBlock& counters, double loss,
                               std::span<double> row) const {
  for (std::size_t f = 0; f < cfg_.features.size(); ++f)
    row[f] = counters.get(cfg_.features[f]);
  row[cfg_.features.size()] = loss;
  if (trained_) standardizer_.apply(row.subspan(0, cfg_.features.size() + 1));
}

bool SsmModel::packedMatchesReference(const Mlp& net,
                                      std::span<const double> row,
                                      std::span<const double> got) const {
  const std::vector<double> ref = net.forward(row);
  return std::equal(ref.begin(), ref.end(), got.begin(), got.end());
}

int SsmModel::decideLevel(const CounterBlock& counters, double loss_preset,
                          InferenceScratch& s) const {
  fillDecisionRow(counters, loss_preset, s.row);
  packed_decision_.forward(s.row, s.decision, s.probs);
  SSM_AUDIT_CHECK(packedMatchesReference(decision_, s.row, s.probs),
                  "packed Decision-maker diverged from the reference net "
                  "(stale compile? call recompilePacked())");
  const double max_p = *std::max_element(s.probs.begin(), s.probs.end());
  for (std::size_t l = 0; l < s.probs.size(); ++l)
    if (s.probs[l] >= cfg_.decode_theta * max_p) return static_cast<int>(l);
  return static_cast<int>(s.probs.size()) - 1;
}

double SsmModel::predictInstsK(const CounterBlock& counters,
                               double loss_preset, int level,
                               InferenceScratch& s) const {
  SSM_CHECK(level >= 0 && level < cfg_.num_levels, "level out of range");
  const std::size_t feat = cfg_.features.size();
  const auto row = s.cal_rows.row(0);
  fillDecisionRow(counters, loss_preset, row.subspan(0, feat + 1));
  std::fill(row.begin() + static_cast<std::ptrdiff_t>(feat) + 1, row.end(),
            0.0);
  row[feat + 1 + static_cast<std::size_t>(level)] = 1.0;
  const double insts_k = packed_calibrator_.predictScalar(row, s.calibrator);
  SSM_AUDIT_CHECK(insts_k == calibrator_.predictScalar(row),
                  "packed Calibrator diverged from the reference net "
                  "(stale compile? call recompilePacked())");
  return insts_k;
}

void SsmModel::predictInstsKAllLevels(const CounterBlock& counters,
                                      double loss_preset, InferenceScratch& s,
                                      std::span<double> out) const {
  SSM_CHECK(out.size() == static_cast<std::size_t>(cfg_.num_levels),
            "out must have one slot per level");
  const std::size_t feat = cfg_.features.size();
  const std::size_t levels = static_cast<std::size_t>(cfg_.num_levels);
  const auto first = s.cal_rows.row(0);
  fillDecisionRow(counters, loss_preset, first.subspan(0, feat + 1));
  std::fill(first.begin() + static_cast<std::ptrdiff_t>(feat) + 1,
            first.end(), 0.0);
  for (std::size_t k = 1; k < levels; ++k)
    std::copy(first.begin(), first.end(), s.cal_rows.row(k).begin());
  for (std::size_t k = 0; k < levels; ++k)
    s.cal_rows.row(k)[feat + 1 + k] = 1.0;
  packed_calibrator_.forwardBatch(s.cal_rows, s.calibrator, s.cal_out);
  for (std::size_t k = 0; k < levels; ++k) {
    out[k] = s.cal_out(k, 0);
    SSM_AUDIT_CHECK(out[k] == calibrator_.predictScalar(s.cal_rows.row(k)),
                    "packed batched Calibrator diverged from the reference "
                    "net (stale compile? call recompilePacked())");
  }
}

}  // namespace ssm
