#include "core/power_cap.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm {

PowerCapController::PowerCapController(PowerCapConfig cfg)
    : cfg_(cfg), preset_(cfg.preset0) {
  SSM_CHECK(cfg_.cap_w > 0.0, "cap must be positive");
  SSM_CHECK(cfg_.ki >= 0.0, "integral gain must be non-negative");
  SSM_CHECK(cfg_.preset_min >= 0.0 && cfg_.preset_max >= cfg_.preset_min,
            "preset bounds inverted");
  preset_ = std::clamp(preset_, cfg_.preset_min, cfg_.preset_max);
}

double PowerCapController::onEpoch(double chip_power_w) {
  ++epochs_;
  const double violation = chip_power_w - cfg_.cap_w;
  if (violation > 0.0) {
    ++violations_;
    preset_ += cfg_.ki * violation;  // allow deeper V/f drops
  } else {
    preset_ -= cfg_.relax * preset_;  // reclaim performance headroom
  }
  preset_ = std::clamp(preset_, cfg_.preset_min, cfg_.preset_max);
  return preset_;
}

void PowerCapController::setCap(double cap_w) {
  SSM_CHECK(cap_w > 0.0, "cap must be positive");
  cfg_.cap_w = cap_w;
}

void PowerCapController::reset() {
  preset_ = std::clamp(cfg_.preset0, cfg_.preset_min, cfg_.preset_max);
  violations_ = 0;
  epochs_ = 0;
}

PowerCapRunResult runWithPowerCap(Gpu gpu,
                                  std::shared_ptr<const SsmModel> model,
                                  const PowerCapConfig& cap_cfg,
                                  SsmGovernorConfig governor_cfg,
                                  TimeNs max_time_ns) {
  SSM_CHECK(model != nullptr && model->trained(),
            "power capping needs a trained model");

  PowerCapController controller(cap_cfg);
  governor_cfg.loss_preset = std::max(controller.preset(), 1e-6);

  const int n = gpu.numClusters();
  std::vector<std::unique_ptr<SsmdvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    governors.push_back(
        std::make_unique<SsmdvfsGovernor>(model, governor_cfg));

  std::vector<VfLevel> levels(static_cast<std::size_t>(n),
                              gpu.vfTable().defaultLevel());
  std::vector<double> level_epochs(gpu.vfTable().size(), 0.0);

  PowerCapRunResult out;
  out.run.mechanism = "ssmdvfs+powercap";
  double power_sum = 0.0;
  int over_cap = 0;

  while (!gpu.allDone() && gpu.nowNs() < max_time_ns) {
    const GpuEpochReport report = gpu.runEpoch(levels);
    ++out.run.epochs;
    power_sum += report.chip_power_w;
    out.max_power_w = std::max(out.max_power_w, report.chip_power_w);
    over_cap += report.chip_power_w > cap_cfg.cap_w;

    const double preset =
        std::max(controller.onEpoch(report.chip_power_w), 1e-6);
    for (int i = 0; i < n; ++i) {
      auto& gov = governors[static_cast<std::size_t>(i)];
      gov->setLossPreset(preset);
      const auto& obs = report.clusters[static_cast<std::size_t>(i)];
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      levels[static_cast<std::size_t>(i)] =
          gpu.vfTable().clamp(gov->decide(obs));
    }
    if (report.all_done) break;
  }
  SSM_CHECK(gpu.allDone(), "capped run did not retire; raise max_time_ns");

  out.run.exec_time_ns = gpu.finishTimeNs();
  out.run.energy_j = gpu.totalEnergyJ();
  out.run.edp = gpu.edp();
  out.run.instructions = gpu.totalInstructions();
  out.mean_power_w =
      out.run.epochs > 0 ? power_sum / out.run.epochs : 0.0;
  out.run.mean_power_w = out.mean_power_w;
  out.violation_frac =
      out.run.epochs > 0
          ? static_cast<double>(over_cap) / out.run.epochs
          : 0.0;
  out.final_preset = controller.preset();
  const double total = static_cast<double>(out.run.epochs) * n;
  out.run.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    out.run.level_histogram[l] =
        total > 0 ? level_epochs[l] / total : 0.0;
  return out;
}

}  // namespace ssm
