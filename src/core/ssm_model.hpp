// The combined SSMDVFS network (§III.C–D): Decision-maker + Calibrator.
//
// Decision-maker: classifier mapping (features…, performance-loss input) to
// the V/f level whose scaling-window excursion produced that loss — at
// inference time the loss input is the *preset*, so the network returns the
// level expected to meet it.
//
// Calibrator: regressor mapping (features…, original preset, one-hot level)
// to the instructions (in thousands) the cluster will execute in the next
// epoch at that level; the runtime compares this against the actual count
// to self-calibrate the working preset.
//
// The paper combines both into one lightweight network; we keep the two
// heads as two small MLPs sharing the feature pipeline (including one
// Standardizer fit on the training data), which matches the published
// layer/FLOP accounting (5 FC layers for the Decision-maker head, 4 for the
// Calibrator, Table II).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "counters/counters.hpp"
#include "datagen/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/packed_int8.hpp"
#include "nn/packed_mlp.hpp"
#include "nn/trainer.hpp"

namespace ssm {

struct SsmModelConfig {
  /// Counters used as model features (default: the Table I set).
  std::vector<CounterId> features{kTable1Features.begin(),
                                  kTable1Features.end()};
  std::vector<int> decision_hidden{20, 20, 20, 20, 20};  ///< 5 FC layers
  std::vector<int> calibrator_hidden{20, 20, 20, 20};    ///< 4 FC layers
  int num_levels = 6;
  std::uint64_t init_seed = 0x55111ULL;
  /// Defaults tuned on the generated corpus; small nets need the longer
  /// budget and the step-decayed 3e-3 Adam rate.
  TrainConfig train{.epochs = 800, .learning_rate = 3e-3};

  /// Deployment decode (§II "select the minimum frequency that satisfies
  /// the preset"): among classes with probability >= decode_theta * max
  /// probability, pick the lowest level. decode_theta = 1 is pure argmax.
  double decode_theta = 0.5;

  /// Input-corruption regularization on the Calibrator's loss column: with
  /// this probability a training row's loss input is replaced by a uniform
  /// draw from [0, corrupt_loss_max]. §III.C feeds the *preset* (not the
  /// realized loss) at inference, which lands outside the training manifold
  /// for frequency-insensitive workloads whose realized losses are all ~0;
  /// the corruption teaches the Calibrator to predict from (features,
  /// level) regardless of the loss input's value.
  double calibrator_loss_corrupt_prob = 0.5;
  double corrupt_loss_max = 0.5;

  /// The paper's compressed architecture (§IV.B): 3 FC layers for the
  /// Decision-maker and 2 for the Calibrator, 12 hidden neurons each.
  static SsmModelConfig compressedArch();
};

/// Training-result summary.
struct SsmTrainSummary {
  double decision_accuracy = 0.0;   ///< holdout accuracy, [0,1]
  double calibrator_mape = 0.0;     ///< holdout MAPE, percent
  std::int64_t flops = 0;
};

class SsmModel {
 public:
  explicit SsmModel(SsmModelConfig cfg = {});

  /// Fits the standardizer and both heads on `train_set`; computes holdout
  /// metrics on `holdout` (pass the training set again if no holdout).
  SsmTrainSummary train(const Dataset& train_set, const Dataset& holdout);

  // -- inference ----------------------------------------------------------

  /// The minimum-frequency decode over the Decision-maker's distribution.
  [[nodiscard]] int decideLevel(const CounterBlock& counters,
                                double loss_preset) const;

  /// Full class distribution (for tests/analysis).
  [[nodiscard]] std::vector<double> decisionDistribution(
      const CounterBlock& counters, double loss_preset) const;

  /// Calibrator prediction: next-epoch instructions (thousands) at `level`.
  [[nodiscard]] double predictInstsK(const CounterBlock& counters,
                                     double loss_preset, int level) const;

  // -- packed inference (the 10 µs decision path) --------------------------
  //
  // Same results as the reference entry points above, bit for bit, but
  // evaluated through the compiled PackedMlp engines with caller-owned
  // scratch: zero heap allocations per call (docs/inference.md).

  /// Reusable buffers for the scratch entry points. One per governor
  /// instance; create with makeScratch() after the model is trained.
  struct InferenceScratch {
    PackedMlp::Scratch decision;
    PackedMlp::Scratch calibrator;
    std::vector<double> row;    ///< standardized decision-input row
    std::vector<double> probs;  ///< Decision-maker distribution
    Matrix cal_rows;            ///< num_levels calibrator rows (batched)
    Matrix cal_out;             ///< num_levels x 1 batched output
  };

  /// Allocates scratch sized for every scratch entry point, including the
  /// all-levels batched Calibrator query (cold path).
  [[nodiscard]] InferenceScratch makeScratch() const;

  /// decideLevel through the packed Decision-maker. Allocation-free.
  [[nodiscard]] int decideLevel(const CounterBlock& counters,
                                double loss_preset,
                                InferenceScratch& scratch) const;

  /// predictInstsK through the packed Calibrator. Allocation-free.
  [[nodiscard]] double predictInstsK(const CounterBlock& counters,
                                     double loss_preset, int level,
                                     InferenceScratch& scratch) const;

  /// Batched Calibrator query: `out[k]` = predictInstsK(..., k) for every
  /// level, one traversal of the weight stream. Allocation-free;
  /// `out.size()` must equal config().num_levels.
  void predictInstsKAllLevels(const CounterBlock& counters, double loss_preset,
                              InferenceScratch& scratch,
                              std::span<double> out) const;

  /// Compiles the Decision-maker onto the §V.D int8 ASIC datapath:
  /// quantizes the trained head to int8 weights with activation scales
  /// calibrated over `calibration_rows` (standardized decision-input rows,
  /// width F+1 — e.g. a dataset run through decisionRow) and packs it into
  /// the integer engine. The result's asicCyclesPerInference() prices the
  /// hardware inference latency the paper reports (~192 cycles for the
  /// compressed architecture).
  [[nodiscard]] PackedInt8Mlp compileInt8Decision(
      const Matrix& calibration_rows) const;

  /// Recompiles the packed engines from the current reference weights.
  /// Called automatically by the constructor, train(), deserialization and
  /// pruneAndFinetune; call manually after editing weights or masks.
  void recompilePacked();

  [[nodiscard]] const PackedMlp& packedDecision() const noexcept {
    return packed_decision_;
  }
  [[nodiscard]] const PackedMlp& packedCalibrator() const noexcept {
    return packed_calibrator_;
  }

  // -- evaluation ---------------------------------------------------------

  [[nodiscard]] double decisionAccuracy(const Dataset& ds) const;
  [[nodiscard]] double calibratorMape(const Dataset& ds) const;

  // -- introspection ------------------------------------------------------

  [[nodiscard]] std::int64_t flops() const noexcept;
  /// Dense (mask-blind) FLOPs of both heads — what a naive engine executes.
  [[nodiscard]] std::int64_t denseFlops() const noexcept;
  [[nodiscard]] const SsmModelConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Mlp& decisionNet() noexcept { return decision_; }
  [[nodiscard]] const Mlp& decisionNet() const noexcept { return decision_; }
  [[nodiscard]] Mlp& calibratorNet() noexcept { return calibrator_; }
  [[nodiscard]] const Mlp& calibratorNet() const noexcept {
    return calibrator_;
  }
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Builds the standardized decision-input row for raw counters + loss.
  [[nodiscard]] std::vector<double> decisionRow(const CounterBlock& counters,
                                                double loss) const;
  /// Builds the standardized calibrator-input row.
  [[nodiscard]] std::vector<double> calibratorRow(const CounterBlock& counters,
                                                  double loss,
                                                  int level) const;

  /// Standardizes a decision design matrix in place (first F+1 columns of a
  /// calibrator matrix use the same transform).
  void standardizeDecision(Matrix& m) const;
  void standardizeCalibrator(Matrix& m) const;

  /// Builds the Calibrator's *training* design matrix: one-hot levels,
  /// loss-column corruption, standardization. Used by train() and by the
  /// pruning fine-tune so both see the same input distribution.
  [[nodiscard]] Matrix calibratorTrainingMatrix(const Dataset& ds) const;

 private:
  friend void serializeModel(const SsmModel&, std::ostream&);
  friend SsmModel deserializeModel(std::istream&);

  /// Writes the raw (feature…, loss) decision row into `row` (width F+1)
  /// and standardizes it when the model is trained. Allocation-free.
  void fillDecisionRow(const CounterBlock& counters, double loss,
                       std::span<double> row) const;

  /// Audit-build helper: packed output must equal the reference net's.
  [[nodiscard]] bool packedMatchesReference(const Mlp& net,
                                            std::span<const double> row,
                                            std::span<const double> got) const;

  SsmModelConfig cfg_;
  Mlp decision_;
  Mlp calibrator_;
  PackedMlp packed_decision_;
  PackedMlp packed_calibrator_;
  Standardizer standardizer_;  ///< over features + loss (width F+1)
  bool trained_ = false;
};

void serializeModel(const SsmModel& model, std::ostream& os);
[[nodiscard]] SsmModel deserializeModel(std::istream& is);

}  // namespace ssm
