#include "core/ssm_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ssm {

namespace {

constexpr const char* kMagic = "ssmdvfs-model-v1";

void writeVec(std::ostream& os, std::span<const double> v) {
  os << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> readVec(std::istream& is) {
  std::size_t n = 0;
  if (!(is >> n)) throw DataError("model stream: expected vector length");
  std::vector<double> v(n);
  for (auto& x : v)
    if (!(is >> x)) throw DataError("model stream: truncated vector");
  return v;
}

void writeNet(std::ostream& os, const Mlp& net) {
  os << net.layerCount() << '\n';
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const DenseLayer& layer = net.layer(l);
    os << layer.inDim() << ' ' << layer.outDim() << '\n';
    writeVec(os, layer.weights().flat());
    writeVec(os, layer.bias());
    writeVec(os, layer.mask().flat());
  }
}

void readNetInto(std::istream& is, Mlp& net) {
  std::size_t layers = 0;
  if (!(is >> layers) || layers != net.layerCount())
    throw DataError("model stream: layer count mismatch");
  for (std::size_t l = 0; l < layers; ++l) {
    int in = 0;
    int out = 0;
    if (!(is >> in >> out) || in != net.layer(l).inDim() ||
        out != net.layer(l).outDim())
      throw DataError("model stream: layer shape mismatch");
    const auto w = readVec(is);
    const auto b = readVec(is);
    const auto m = readVec(is);
    DenseLayer& layer = net.layer(l);
    if (w.size() != layer.weights().size() || b.size() != layer.bias().size() ||
        m.size() != layer.mask().size())
      throw DataError("model stream: parameter size mismatch");
    std::copy(w.begin(), w.end(), layer.weights().flat().begin());
    std::copy(b.begin(), b.end(), layer.bias().begin());
    std::copy(m.begin(), m.end(), layer.mask().flat().begin());
  }
  net.applyMasks();
}

}  // namespace

void serializeModel(const SsmModel& model, std::ostream& os) {
  SSM_CHECK(model.trained(), "refusing to serialize an untrained model");
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << '\n';

  const SsmModelConfig& cfg = model.cfg_;
  os << "features " << cfg.features.size();
  for (CounterId id : cfg.features) os << ' ' << static_cast<int>(id);
  os << '\n';
  os << "levels " << cfg.num_levels << '\n';
  os << "decode_theta " << cfg.decode_theta << '\n';
  os << "corrupt " << cfg.calibrator_loss_corrupt_prob << ' '
     << cfg.corrupt_loss_max << '\n';
  os << "init_seed " << cfg.init_seed << '\n';
  os << "train " << cfg.train.epochs << ' ' << cfg.train.learning_rate
     << '\n';
  os << "decision_hidden " << cfg.decision_hidden.size();
  for (int h : cfg.decision_hidden) os << ' ' << h;
  os << '\n';
  os << "calibrator_hidden " << cfg.calibrator_hidden.size();
  for (int h : cfg.calibrator_hidden) os << ' ' << h;
  os << '\n';

  os << "standardizer ";
  writeVec(os, model.standardizer_.mean);
  writeVec(os, model.standardizer_.inv_std);
  os << "decision\n";
  writeNet(os, model.decision_);
  os << "calibrator\n";
  writeNet(os, model.calibrator_);
}

SsmModel deserializeModel(std::istream& is) {
  std::string token;
  if (!(is >> token) || token != kMagic)
    throw DataError("not an ssmdvfs model stream");

  SsmModelConfig cfg;
  const auto expect = [&](const char* name) {
    if (!(is >> token) || token != name)
      throw DataError(std::string("model stream: expected '") + name + "'");
  };

  expect("features");
  std::size_t nf = 0;
  is >> nf;
  cfg.features.clear();
  for (std::size_t i = 0; i < nf; ++i) {
    int id = 0;
    if (!(is >> id) || id < 0 || id >= kNumCounters)
      throw DataError("model stream: bad feature id");
    cfg.features.push_back(static_cast<CounterId>(id));
  }
  expect("levels");
  is >> cfg.num_levels;
  expect("decode_theta");
  is >> cfg.decode_theta;
  expect("corrupt");
  is >> cfg.calibrator_loss_corrupt_prob >> cfg.corrupt_loss_max;
  expect("init_seed");
  is >> cfg.init_seed;
  expect("train");
  is >> cfg.train.epochs >> cfg.train.learning_rate;
  expect("decision_hidden");
  std::size_t nd = 0;
  is >> nd;
  cfg.decision_hidden.assign(nd, 0);
  for (auto& h : cfg.decision_hidden) is >> h;
  expect("calibrator_hidden");
  std::size_t nc = 0;
  is >> nc;
  cfg.calibrator_hidden.assign(nc, 0);
  for (auto& h : cfg.calibrator_hidden) is >> h;
  if (!is) throw DataError("model stream: malformed header");

  SsmModel model(cfg);
  expect("standardizer");
  model.standardizer_.mean = readVec(is);
  model.standardizer_.inv_std = readVec(is);
  if (model.standardizer_.mean.size() != cfg.features.size() + 1)
    throw DataError("model stream: standardizer width mismatch");
  expect("decision");
  readNetInto(is, model.decision_);
  expect("calibrator");
  readNetInto(is, model.calibrator_);
  model.trained_ = true;
  model.recompilePacked();
  return model;
}

void saveModel(const SsmModel& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw DataError("cannot open for writing: " + path);
  serializeModel(model, os);
  if (!os) throw DataError("write failed: " + path);
}

SsmModel loadModel(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw DataError("cannot open for reading: " + path);
  return deserializeModel(is);
}

}  // namespace ssm
