// Text serialization of trained SSMDVFS models.
//
// The experiment harnesses cache trained models in the artifact directory
// so that every bench binary can share one training run. The format is a
// line-oriented, versioned text dump (exact decimal round trip via
// max_digits10 precision).
#pragma once

#include <iosfwd>
#include <string>

#include "core/ssm_model.hpp"

namespace ssm {

void serializeModel(const SsmModel& model, std::ostream& os);
[[nodiscard]] SsmModel deserializeModel(std::istream& is);

void saveModel(const SsmModel& model, const std::string& path);
[[nodiscard]] SsmModel loadModel(const std::string& path);

}  // namespace ssm
