#include "core/hardened_governor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ssm {

std::string_view governorModeName(GovernorMode mode) noexcept {
  return mode == GovernorMode::kMl ? "ml" : "safe";
}

HardenedGovernor::HardenedGovernor(std::unique_ptr<DvfsGovernor> inner,
                                   VfTable vf, HardenedConfig cfg,
                                   int cluster_id, GovernorModeLog* log)
    : inner_(std::move(inner)),
      vf_(std::move(vf)),
      cfg_(cfg),
      cluster_id_(cluster_id),
      log_(log) {}

std::string_view HardenedGovernor::checkPlausibility(
    const EpochObservation& obs) const {
  // A live cluster always burns cycles; a zeroed block means the counter
  // readout was lost this epoch.
  if (obs.counters.get(CounterId::kCyclesElapsed) <= 0.0) return "zero-block";
  const double ipc = obs.counters.get(CounterId::kIpc);
  if (ipc < 0.0 || ipc > cfg_.max_ipc) return "ipc-garbage";
  // The reported clock must match the level the cluster actually ran at;
  // jitter, stale and delayed blocks all show up here.
  const double expected_mhz = vf_.at(obs.level).freq_mhz;
  if (std::abs(obs.counters.get(CounterId::kFreqMhz) - expected_mhz) >
      cfg_.freq_tol_mhz)
    return "freq-mismatch";
  if (obs.power_w < 0.0) return "negative-power";
  return {};
}

void HardenedGovernor::switchMode(GovernorMode to, std::string_view reason) {
  mode_ = to;
  strikes_ = 0;
  blowouts_ = 0;
  clean_streak_ = 0;
  if (to == GovernorMode::kSafe) safe_since_ = epoch_;
  if (log_ != nullptr)
    log_->record({epoch_, cluster_id_, to, std::string(reason)});
}

VfLevel HardenedGovernor::safeDecision(const EpochObservation& obs,
                                       bool plausible) const {
  // Ondemand-style: chase utilisation with single-level steps. Without a
  // trustworthy observation the only safe point is the default (fastest)
  // level — never risk starving the program on garbage data.
  if (!plausible) return vf_.defaultLevel();
  const double util = obs.counters.get(CounterId::kIssueUtil);
  if (util > cfg_.util_hi) return vf_.clamp(obs.level + 1);
  if (util < cfg_.util_lo) return vf_.clamp(obs.level - 1);
  return obs.level;
}

VfLevel HardenedGovernor::decide(const EpochObservation& obs) {
  ++epoch_;
  const std::string_view fault = checkPlausibility(obs);
  const bool plausible = fault.empty();

  // IPC watchdog: repeated large deviations from the smoothed reference
  // mean the telemetry (or the model's world) has gone off the rails.
  bool blowout = false;
  const double ipc = obs.counters.get(CounterId::kIpc);
  if (plausible) {
    if (have_ewma_) {
      const double ref = std::max(ipc_ewma_, 1e-9);
      blowout = std::abs(ipc - ipc_ewma_) / ref > cfg_.blowout_ratio;
      ipc_ewma_ += cfg_.ipm_alpha * (ipc - ipc_ewma_);
    } else {
      ipc_ewma_ = ipc;
      have_ewma_ = true;
    }
  }
  const bool warmed_up = epoch_ > cfg_.warmup_epochs;

  if (mode_ == GovernorMode::kMl) {
    strikes_ = plausible ? 0 : strikes_ + 1;
    blowouts_ = blowout ? blowouts_ + 1 : 0;
    if (warmed_up && strikes_ >= cfg_.strike_trips) {
      switchMode(GovernorMode::kSafe, "telemetry");
    } else if (warmed_up && blowouts_ >= cfg_.blowout_trips) {
      switchMode(GovernorMode::kSafe, "blowout");
    } else {
      // Implausible epochs are withheld from the ML governor so faulted
      // counters cannot poison its self-calibration state; hold the level.
      return plausible ? inner_->decide(obs) : obs.level;
    }
    return safeDecision(obs, plausible);
  }

  // Safe mode: count clean epochs, hand back once the input has settled.
  clean_streak_ = (plausible && !blowout) ? clean_streak_ + 1 : 0;
  if (clean_streak_ >= cfg_.recover_after_clean &&
      epoch_ - safe_since_ >= cfg_.min_hold_epochs) {
    // The ML governor's episodic state was calibrated against faulted
    // inputs; restart it clean rather than resume mid-drift.
    inner_->reset();
    switchMode(GovernorMode::kMl, "recovered");
    return inner_->decide(obs);
  }
  return safeDecision(obs, plausible);
}

void HardenedGovernor::reset() {
  inner_->reset();
  mode_ = GovernorMode::kMl;
  epoch_ = 0;
  ipc_ewma_ = 0.0;
  have_ewma_ = false;
  strikes_ = 0;
  blowouts_ = 0;
  clean_streak_ = 0;
  safe_since_ = 0;
}

}  // namespace ssm
