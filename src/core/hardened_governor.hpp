// Degraded-mode hardening: a decorator that keeps any DvfsGovernor safe
// under faulted telemetry and flaky actuation.
//
// Production deployments cannot assume the paper's clean-input world
// (§II/§V): counters drop out, arrive late, or read garbage. The hardened
// governor screens every observation with plausibility checks, watches for
// prediction blowouts, and on repeated trouble falls back from ML control
// to a conservative ondemand-style utilisation policy; once telemetry has
// been clean again for long enough it hands control back to the ML
// governor. Every mode transition is recorded in a GovernorModeLog so runs,
// sweeps and tests can assert on the fallback/recovery behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/governor.hpp"
#include "power/vf_table.hpp"

namespace ssm {

enum class GovernorMode { kMl, kSafe };

[[nodiscard]] std::string_view governorModeName(GovernorMode mode) noexcept;

/// One mode transition of one cluster's hardened governor.
struct GovernorModeEvent {
  std::int64_t epoch = 0;  ///< decide() calls seen by that cluster so far
  int cluster = 0;
  GovernorMode to = GovernorMode::kSafe;
  std::string reason;  ///< "telemetry", "blowout" or "recovered"

  friend bool operator==(const GovernorModeEvent&,
                         const GovernorModeEvent&) = default;
};

/// Append-only mode-transition log shared by all clusters of ONE run.
/// Single-writer like EpochTraceRecorder: the simulation loop calls the
/// governors sequentially, so no locking; parallel sweeps use one log per
/// job. No file I/O here — callers format/export.
class GovernorModeLog {
 public:
  void record(GovernorModeEvent event) { events_.push_back(std::move(event)); }

  [[nodiscard]] const std::vector<GovernorModeEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] int fallbacks() const noexcept {
    int n = 0;
    for (const auto& e : events_) n += e.to == GovernorMode::kSafe ? 1 : 0;
    return n;
  }
  [[nodiscard]] int recoveries() const noexcept {
    int n = 0;
    for (const auto& e : events_) n += e.to == GovernorMode::kMl ? 1 : 0;
    return n;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<GovernorModeEvent> events_;
};

struct HardenedConfig {
  // --- plausibility / watchdog thresholds ------------------------------
  int strike_trips = 3;        ///< consecutive implausible epochs -> safe
  int blowout_trips = 4;       ///< consecutive IPC blowouts -> safe
  double blowout_ratio = 0.75; ///< |ipc - ewma| / max(ewma, eps) threshold
  double ipm_alpha = 0.2;      ///< EWMA weight for the IPC reference
  int warmup_epochs = 4;       ///< no strikes while the EWMA settles
  double max_ipc = 10.0;       ///< IPC beyond this is counter garbage
  double freq_tol_mhz = 1.0;   ///< reported-vs-table frequency tolerance
  // --- fallback / recovery policy --------------------------------------
  int min_hold_epochs = 8;     ///< minimum stay in safe mode
  int recover_after_clean = 6; ///< consecutive clean epochs to hand back
  double util_hi = 0.80;       ///< ondemand: raise level above this
  double util_lo = 0.45;       ///< ondemand: lower level below this
};

/// Wraps `inner` (typically the SSMDVFS governor) for one cluster.
class HardenedGovernor final : public DvfsGovernor {
 public:
  /// `log` may be null (transitions then go unrecorded); when set it must
  /// outlive the governor and belong to the same run.
  HardenedGovernor(std::unique_ptr<DvfsGovernor> inner, VfTable vf,
                   HardenedConfig cfg, int cluster_id, GovernorModeLog* log);

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

  [[nodiscard]] GovernorMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::int64_t epochsSeen() const noexcept { return epoch_; }

 private:
  /// Empty string = plausible; otherwise the failed check's name.
  [[nodiscard]] std::string_view checkPlausibility(
      const EpochObservation& obs) const;

  void switchMode(GovernorMode to, std::string_view reason);
  [[nodiscard]] VfLevel safeDecision(const EpochObservation& obs,
                                     bool plausible) const;

  std::unique_ptr<DvfsGovernor> inner_;
  VfTable vf_;
  HardenedConfig cfg_;
  int cluster_id_;
  GovernorModeLog* log_;

  GovernorMode mode_ = GovernorMode::kMl;
  std::int64_t epoch_ = 0;       ///< decide() calls so far
  double ipc_ewma_ = 0.0;
  bool have_ewma_ = false;
  int strikes_ = 0;              ///< consecutive implausible epochs
  int blowouts_ = 0;             ///< consecutive IPC blowout epochs
  int clean_streak_ = 0;         ///< consecutive clean epochs in safe mode
  std::int64_t safe_since_ = 0;  ///< epoch of the last fallback
};

/// Wraps every cluster governor `inner` creates. One factory serves one
/// run: all clusters share the same (externally owned) mode log.
class HardenedGovernorFactory final : public GovernorFactory {
 public:
  HardenedGovernorFactory(const GovernorFactory& inner, VfTable vf,
                          HardenedConfig cfg, GovernorModeLog* log)
      : inner_(inner), vf_(std::move(vf)), cfg_(cfg), log_(log) {}

  std::unique_ptr<DvfsGovernor> create(int cluster_id) const override {
    return std::make_unique<HardenedGovernor>(inner_.create(cluster_id), vf_,
                                              cfg_, cluster_id, log_);
  }

 private:
  const GovernorFactory& inner_;
  VfTable vf_;
  HardenedConfig cfg_;
  GovernorModeLog* log_;
};

}  // namespace ssm
