#include "core/ssm_governor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm {

SsmdvfsGovernor::SsmdvfsGovernor(std::shared_ptr<const SsmModel> model,
                                 SsmGovernorConfig cfg)
    : model_(std::move(model)), cfg_(cfg), working_preset_(cfg.loss_preset) {
  SSM_CHECK(model_ != nullptr, "governor needs a model");
  SSM_CHECK(model_->trained(), "governor needs a *trained* model");
  SSM_CHECK(cfg_.loss_preset >= 0.0, "preset must be non-negative");
  SSM_CHECK(cfg_.preset_ceil_frac >= cfg_.preset_floor_frac,
            "preset bounds inverted");
  // Every per-decide buffer is sized here, once: the decide() hot path
  // runs through the packed engines without touching the heap.
  const auto levels = static_cast<std::size_t>(model_->config().num_levels);
  ewma_loss_.assign(levels, -1.0);  // ssm-lint: allow(hot-path-alloc)
  insts_k_.assign(levels, 0.0);    // ssm-lint: allow(hot-path-alloc)
  scratch_ = model_->makeScratch();
}

void SsmdvfsGovernor::setLossPreset(double preset) {
  SSM_CHECK(preset >= 0.0, "preset must be non-negative");
  // Preserve the calibration state proportionally where possible.
  const double old = cfg_.loss_preset;
  if (old > 1e-12) working_preset_ *= preset / old;
  cfg_.loss_preset = preset;
  working_preset_ = std::clamp(working_preset_,
                               cfg_.preset_floor_frac * preset,
                               cfg_.preset_ceil_frac * preset);
}

void SsmdvfsGovernor::reset() {
  working_preset_ = cfg_.loss_preset;
  predicted_insts_k_ = 0.0;
  have_prediction_ = false;
  std::fill(ewma_loss_.begin(), ewma_loss_.end(), -1.0);
}

VfLevel SsmdvfsGovernor::decide(const EpochObservation& obs) {
  if (obs.cluster_done) return 0;  // idle cluster: park at the lowest point

  // --- self-calibration against the previous prediction -------------------
  if (cfg_.calibrate && have_prediction_ && predicted_insts_k_ > 1e-9) {
    const double actual_k = static_cast<double>(obs.instructions) / 1000.0;
    const double shortfall =
        (predicted_insts_k_ - actual_k) / predicted_insts_k_;
    if (shortfall > cfg_.pred_tolerance) {
      // Slower than the model promised: tighten the working preset so the
      // Decision-maker aims for a faster operating point.
      working_preset_ -= cfg_.calib_gain * shortfall * cfg_.loss_preset;
    } else {
      // On track: drift back toward the user's original preset.
      working_preset_ +=
          cfg_.recover_rate * (cfg_.loss_preset - working_preset_);
    }
    working_preset_ = std::clamp(
        working_preset_, cfg_.preset_floor_frac * cfg_.loss_preset,
        cfg_.preset_ceil_frac * cfg_.loss_preset);
  }

  // --- decision for the next epoch ----------------------------------------
  const double preset =
      cfg_.calibrate ? working_preset_ : cfg_.loss_preset;
  int level = model_->decideLevel(obs.counters, preset, scratch_);

  // --- calibrator assessment of the chosen level (§II) ---------------------
  // Estimated next-epoch loss at level k: how much longer the same work
  // takes than at the default point, from the Calibrator's instruction
  // predictions. All levels are queried in one batched pass over the packed
  // Calibrator's weight stream; estimates are EWMA-smoothed across epochs
  // (regression noise is per-query independent) and the level is raised
  // until the smoothed estimate fits the preset.
  const bool veto = cfg_.calibrate && cfg_.calibrator_veto;
  if (veto) {
    const int default_level = model_->config().num_levels - 1;
    model_->predictInstsKAllLevels(obs.counters, cfg_.loss_preset, scratch_,
                                   insts_k_);
    const double i_ref = insts_k_[static_cast<std::size_t>(default_level)];
    for (int k = 0; k < default_level; ++k) {
      const double i_k = insts_k_[static_cast<std::size_t>(k)];
      const double fresh =
          i_k > 1e-6 ? std::max(0.0, i_ref / i_k - 1.0) : 1.0;
      double& slot = ewma_loss_[static_cast<std::size_t>(k)];
      slot = slot < 0.0 ? fresh
                        : cfg_.veto_ewma_alpha * fresh +
                              (1.0 - cfg_.veto_ewma_alpha) * slot;
    }
    ewma_loss_[static_cast<std::size_t>(default_level)] = 0.0;
    const double bound = preset + cfg_.veto_slack_frac * cfg_.loss_preset;
    while (level < default_level &&
           ewma_loss_[static_cast<std::size_t>(level)] > bound)
      ++level;
  }

  // --- calibrator prediction for the next epoch (original preset, §III.C) -
  // The veto pass already evaluated every level at the original preset, so
  // its batch output is reused verbatim for the chosen level.
  predicted_insts_k_ =
      veto ? insts_k_[static_cast<std::size_t>(level)]
           : model_->predictInstsK(obs.counters, cfg_.loss_preset, level,
                                   scratch_);
  have_prediction_ = true;
  return level;
}

SsmGovernorFactory::SsmGovernorFactory(std::shared_ptr<const SsmModel> model,
                                       SsmGovernorConfig cfg)
    : model_(std::move(model)), cfg_(cfg) {
  SSM_CHECK(model_ != nullptr && model_->trained(),
            "factory needs a trained model");
}

std::unique_ptr<DvfsGovernor> SsmGovernorFactory::create(int) const {
  // Cold path: one governor per cluster at run setup, not per epoch.
  // ssm-lint: allow(hot-path-alloc)
  return std::make_unique<SsmdvfsGovernor>(model_, cfg_);
}

}  // namespace ssm
