// The SSMDVFS runtime (§II, Fig. 1): per-cluster, every 10 µs epoch —
//   1. compare the Calibrator's instruction prediction for the epoch that
//      just finished against the actual count; tighten the working preset
//      when the cluster ran slower than predicted, relax it back toward the
//      original preset otherwise (self-calibration);
//   2. feed the fresh counters + working preset to the Decision-maker to
//      pick the next epoch's V/f level;
//   3. ask the Calibrator (with the *original* preset, per §III.C) for the
//      expected instruction count of the next epoch at that level.
#pragma once

#include <memory>

#include "core/ssm_model.hpp"
#include "gpusim/governor.hpp"

namespace ssm {

struct SsmGovernorConfig {
  double loss_preset = 0.10;   ///< the user-facing performance-loss preset
  bool calibrate = true;       ///< enable the §II self-calibration loop
  /// Working-preset decrement per unit of relative under-prediction.
  double calib_gain = 0.5;
  /// Per-epoch recovery of the working preset toward the original.
  double recover_rate = 0.25;
  /// Relative slack on (predicted - actual)/predicted before tightening.
  double pred_tolerance = 0.05;
  /// Working preset bounds as fractions of the original preset.
  double preset_floor_frac = 0.0;
  double preset_ceil_frac = 1.5;
  /// §II: the Calibrator "assesses whether the chosen frequency meets the
  /// performance loss preset". The governor estimates the chosen level's
  /// loss as I_ref/I_k - 1 from two Calibrator queries (I_ref at the
  /// default level) and raises the level until the estimate fits the
  /// working preset. Disabled together with `calibrate` in the ablation.
  bool calibrator_veto = true;
  /// Veto slack as a fraction of the original preset: the estimate carries
  /// two regression errors, so only clear violations are overridden.
  double veto_slack_frac = 0.25;
  /// EWMA weight on fresh per-level loss estimates — single-epoch
  /// regression noise otherwise lets an under-clocked level slip through
  /// every few epochs.
  double veto_ewma_alpha = 0.35;
};

class SsmdvfsGovernor final : public DvfsGovernor {
 public:
  SsmdvfsGovernor(std::shared_ptr<const SsmModel> model,
                  SsmGovernorConfig cfg);

  VfLevel decide(const EpochObservation& obs) override;
  void reset() override;

  [[nodiscard]] double workingPreset() const noexcept {
    return working_preset_;
  }

  /// Re-targets the governor to a new user preset at runtime (used by the
  /// power-cap scheduler). The self-calibrated working preset is clamped
  /// into the new preset's bounds but otherwise preserved.
  void setLossPreset(double preset);

  [[nodiscard]] double lossPreset() const noexcept {
    return cfg_.loss_preset;
  }

 private:
  std::shared_ptr<const SsmModel> model_;
  SsmGovernorConfig cfg_;
  double working_preset_;
  double predicted_insts_k_ = 0.0;
  bool have_prediction_ = false;
  /// Smoothed per-level loss estimates for the calibrator veto; sized at
  /// construction (one slot per level) so decide() never grows it.
  std::vector<double> ewma_loss_;
  /// Per-level Calibrator predictions from the batched veto query.
  std::vector<double> insts_k_;
  /// Packed-engine buffers: decide() performs zero heap allocations.
  SsmModel::InferenceScratch scratch_;
};

/// Creates one SsmdvfsGovernor per cluster, all sharing one trained model.
class SsmGovernorFactory final : public GovernorFactory {
 public:
  SsmGovernorFactory(std::shared_ptr<const SsmModel> model,
                     SsmGovernorConfig cfg);
  std::unique_ptr<DvfsGovernor> create(int cluster_id) const override;

 private:
  std::shared_ptr<const SsmModel> model_;
  SsmGovernorConfig cfg_;
};

}  // namespace ssm
