// Console table / CSV rendering for the experiment harnesses.
//
// Every bench binary prints its paper table or figure series through this
// class so that the output format is uniform and greppable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ssm {

/// A simple column-aligned text table with an optional title. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; must be called before addRow.
  Table& header(std::vector<std::string> names);

  /// Appends a data row; width must match the header.
  Table& addRow(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return header_.size();
  }

  /// Renders as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish quoting of commas/quotes/newlines).
  void printCsv(std::ostream& os) const;

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 2);

  /// Formats a percentage, e.g. pct(0.1109) -> "11.09%".
  static std::string pct(double fraction, int digits = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssm
