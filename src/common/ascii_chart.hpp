// Terminal bar charts for the experiment harnesses.
//
// The paper's figures are bar plots; the bench binaries render the same
// series as ASCII bars next to the numeric tables so the *shape* (who
// wins, where the knee is) is visible without leaving the terminal.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssm {

struct BarChartOptions {
  int width = 48;             ///< bar field width in characters
  double reference = 0.0;     ///< draw a '|' marker at this value (0 = off)
  int value_digits = 3;       ///< numeric annotation precision
  char fill = '#';
};

/// Renders one horizontal bar per (label, value). Values must be
/// non-negative; the scale is max(values, reference).
void renderBarChart(std::ostream& os, const std::string& title,
                    const std::vector<std::string>& labels,
                    const std::vector<double>& values,
                    const BarChartOptions& opts = {});

/// Renders grouped bars: for each label, one bar per series (series names
/// shown in a legend). Useful for per-workload mechanism comparisons.
void renderGroupedBarChart(std::ostream& os, const std::string& title,
                           const std::vector<std::string>& labels,
                           const std::vector<std::string>& series_names,
                           const std::vector<std::vector<double>>& series,
                           const BarChartOptions& opts = {});

}  // namespace ssm
