// Small statistics toolkit shared by the data-generation pipeline, the
// model-evaluation code and the experiment harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ssm {

/// Streaming mean/variance (Welford). Value-semantic and mergeable.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Geometric mean of strictly positive values; non-positive entries are
/// clamped to a tiny epsilon so a single zero does not zero the summary.
[[nodiscard]] double geomean(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> xs, double p) noexcept;

/// Mean absolute percentage error in percent: 100 * mean(|pred-act|/|act|).
/// Entries with |actual| < floor are measured against the floor instead so a
/// zero actual cannot blow up the summary.
[[nodiscard]] double mapePercent(std::span<const double> actual,
                                 std::span<const double> predicted,
                                 double floor = 1e-9);

/// Pearson correlation coefficient; 0 if either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys) noexcept;

/// Per-feature standardisation parameters (z-score), fit on training data
/// and applied to both training and inference inputs.
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> inv_std;  ///< 1/stddev, 1.0 where stddev was ~0

  /// Fits on rows of width `dim` (row-major, rows.size() % dim == 0).
  static Standardizer fit(std::span<const double> rows, std::size_t dim);

  void apply(std::span<double> row) const;
};

}  // namespace ssm
