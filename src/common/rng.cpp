#include "common/rng.hpp"

#include <cmath>

namespace ssm {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng Rng::fork(std::uint64_t salt) const noexcept {
  // Mix the parent state with the salt through SplitMix64 so sibling forks
  // are decorrelated even for adjacent salts.
  SplitMix64 sm(s_[0] ^ rotl(s_[2], 17) ^ (salt * 0x9e3779b97f4a7c15ULL));
  Rng child(sm.next());
  return child;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = nextU64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = nextU64();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextGaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = nextDouble();
  } while (u1 <= 0.0);
  const double u2 = nextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_gauss_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::nextGaussian(double mean, double stddev) noexcept {
  return mean + stddev * nextGaussian();
}

double Rng::nextExponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = nextDouble();
  } while (u <= 0.0);
  return -std::log(u) / (rate > 0.0 ? rate : 1.0);
}

std::size_t Rng::nextCategorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double target = nextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace ssm
