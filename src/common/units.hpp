// Strongly-suggestive unit aliases and conversion helpers.
//
// Convention used across the codebase:
//   * wall-clock time is int64_t nanoseconds (TimeNs)
//   * frequency is double megahertz (FreqMhz)
//   * voltage is double volts, power double watts, energy double joules
// Memory latencies are wall-clock (they do not scale with core frequency);
// core work is counted in cycles and converted through the cluster clock.
#pragma once

#include <cstdint>

namespace ssm {

using TimeNs = std::int64_t;
using Cycles = std::int64_t;
using FreqMhz = double;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;

/// Duration of one cycle at `mhz`, in (fractional) nanoseconds.
constexpr double nsPerCycle(FreqMhz mhz) noexcept { return 1e3 / mhz; }

/// Cycles elapsed in `ns` at `mhz`, rounded down.
constexpr Cycles cyclesIn(TimeNs ns, FreqMhz mhz) noexcept {
  return static_cast<Cycles>(static_cast<double>(ns) * mhz / 1e3);
}

/// Wall-clock nanoseconds spanned by `cycles` at `mhz`, rounded to nearest.
constexpr TimeNs nsOf(Cycles cycles, FreqMhz mhz) noexcept {
  return static_cast<TimeNs>(static_cast<double>(cycles) * 1e3 / mhz + 0.5);
}

/// Converts nanoseconds to seconds.
constexpr double secondsOf(TimeNs ns) noexcept {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace ssm
