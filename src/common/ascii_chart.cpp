#include "common/ascii_chart.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ssm {

namespace {

constexpr const char* kSeriesFills = "#=o*+x";

std::size_t maxLabelWidth(const std::vector<std::string>& labels) {
  std::size_t w = 0;
  for (const auto& l : labels) w = std::max(w, l.size());
  return w;
}

void renderBar(std::ostream& os, const std::string& label,
               std::size_t label_w, double value, double scale, char fill,
               const BarChartOptions& opts) {
  SSM_CHECK(value >= 0.0, "bar values must be non-negative");
  const int len = scale > 0.0
                      ? static_cast<int>(value / scale * opts.width + 0.5)
                      : 0;
  const int ref_col =
      opts.reference > 0.0 && scale > 0.0
          ? static_cast<int>(opts.reference / scale * opts.width + 0.5)
          : -1;
  os << "  " << std::left << std::setw(static_cast<int>(label_w)) << label
     << " ";
  for (int c = 0; c < opts.width + 1; ++c) {
    if (c == ref_col && c >= len)
      os << '|';
    else if (c < len)
      os << fill;
    else
      os << ' ';
  }
  os << ' ' << std::fixed << std::setprecision(opts.value_digits) << value
     << '\n';
}

}  // namespace

void renderBarChart(std::ostream& os, const std::string& title,
                    const std::vector<std::string>& labels,
                    const std::vector<double>& values,
                    const BarChartOptions& opts) {
  SSM_CHECK(labels.size() == values.size(), "labels/values mismatch");
  SSM_CHECK(opts.width > 0, "chart width must be positive");
  double scale = opts.reference;
  for (double v : values) scale = std::max(scale, v);
  if (!title.empty()) os << title << '\n';
  const std::size_t label_w = maxLabelWidth(labels);
  for (std::size_t i = 0; i < labels.size(); ++i)
    renderBar(os, labels[i], label_w, values[i], scale, opts.fill, opts);
  if (opts.reference > 0.0)
    os << "  ('|' marks " << std::fixed
       << std::setprecision(opts.value_digits) << opts.reference << ")\n";
}

void renderGroupedBarChart(std::ostream& os, const std::string& title,
                           const std::vector<std::string>& labels,
                           const std::vector<std::string>& series_names,
                           const std::vector<std::vector<double>>& series,
                           const BarChartOptions& opts) {
  SSM_CHECK(series_names.size() == series.size(),
            "series names/data mismatch");
  SSM_CHECK(!series.empty(), "need at least one series");
  for (const auto& s : series)
    SSM_CHECK(s.size() == labels.size(), "series length mismatch");

  double scale = opts.reference;
  for (const auto& s : series)
    for (double v : s) scale = std::max(scale, v);

  if (!title.empty()) os << title << '\n';
  os << "  legend:";
  for (std::size_t s = 0; s < series_names.size(); ++s)
    os << "  " << kSeriesFills[s % 6] << " = " << series_names[s];
  os << '\n';

  const std::size_t label_w = maxLabelWidth(labels);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t s = 0; s < series.size(); ++s)
      renderBar(os, s == 0 ? labels[i] : std::string(), label_w,
                series[s][i], scale, kSeriesFills[s % 6], opts);
  }
  if (opts.reference > 0.0)
    os << "  ('|' marks " << std::fixed
       << std::setprecision(opts.value_digits) << opts.reference << ")\n";
}

}  // namespace ssm
