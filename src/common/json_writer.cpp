#include "common/json_writer.hpp"

#include <cstdio>
#include <iomanip>
#include <limits>
#include <ostream>

#include "common/check.hpp"

namespace ssm {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {
  os_ << std::setprecision(std::numeric_limits<double>::max_digits10);
}

JsonWriter::~JsonWriter() = default;

bool JsonWriter::complete() const noexcept {
  return root_done_ && stack_.empty();
}

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) os_ << ',';
    has_items_.back() = true;
  }
}

void JsonWriter::quoted(const std::string& s) {
  os_ << '"' << jsonEscape(s) << '"';
}

void JsonWriter::key(const std::string& k) {
  expectInside(Scope::kObject, "keyed entry");
  comma();
  quoted(k);
  os_ << ':';
}

void JsonWriter::expectInside(Scope scope, const char* what) {
  SSM_CHECK(!stack_.empty(), std::string(what) + " requires an open container");
  SSM_CHECK(stack_.back() == scope,
            std::string(what) + " used in the wrong container kind");
}

JsonWriter& JsonWriter::beginObject() {
  SSM_CHECK(!root_done_, "root already closed");
  if (!stack_.empty()) {
    expectInside(Scope::kArray, "unkeyed object");
    comma();
  }
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::beginObject(const std::string& k) {
  key(k);
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  expectInside(Scope::kObject, "endObject");
  os_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  SSM_CHECK(!root_done_, "root already closed");
  if (!stack_.empty()) {
    expectInside(Scope::kArray, "unkeyed array");
    comma();
  }
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::beginArray(const std::string& k) {
  key(k);
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  expectInside(Scope::kArray, "endArray");
  os_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& k, const std::string& v) {
  key(k);
  quoted(v);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& k, const char* v) {
  return value(k, std::string(v));
}

JsonWriter& JsonWriter::value(const std::string& k, double v) {
  key(k);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& k, std::int64_t v) {
  key(k);
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& k, int v) {
  return value(k, static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(const std::string& k, bool v) {
  key(k);
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  expectInside(Scope::kArray, "unkeyed string value");
  comma();
  quoted(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  expectInside(Scope::kArray, "unkeyed number value");
  comma();
  os_ << v;
  return *this;
}

}  // namespace ssm
