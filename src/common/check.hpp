// Lightweight runtime checking utilities used across the SSMDVFS codebase.
//
// The library never aborts: contract violations throw ssm::ContractError so
// that tests can assert on misuse and embedding applications can recover.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ssm {

/// Thrown when a documented precondition or invariant of a public API is
/// violated by the caller (programming error, not data error).
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when input data (a dataset file, a config value, a model blob)
/// is malformed or out of the supported range.
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throwContract(const char* expr, const std::string& msg,
                                const std::source_location& loc);
}  // namespace detail

/// Checks a precondition/invariant; throws ContractError with location info
/// on failure. `msg` may add context beyond the stringified expression.
inline void checkThat(bool ok, const char* expr, const std::string& msg,
                      const std::source_location loc =
                          std::source_location::current()) {
  if (!ok) detail::throwContract(expr, msg, loc);
}

/// Literal-message overload: defers std::string construction to the throw
/// path so checks with messages longer than the SSO buffer stay
/// allocation-free on success (the packed decision path relies on this).
inline void checkThat(bool ok, const char* expr, const char* msg = "",
                      const std::source_location loc =
                          std::source_location::current()) {
  if (!ok) detail::throwContract(expr, msg, loc);
}

}  // namespace ssm

/// Preferred spelling at call sites: SSM_CHECK(x > 0, "x must be positive").
#define SSM_CHECK(expr, ...) \
  ::ssm::checkThat(static_cast<bool>(expr), #expr __VA_OPT__(, ) __VA_ARGS__)

/// Deep invariant audit, compiled in only when the build defines
/// SSMDVFS_AUDIT (cmake -DSSMDVFS_AUDIT=ON; the asan-ubsan preset enables
/// it). Use for O(n) or per-epoch invariants that are too expensive for
/// release builds: monotonic simulator counters, sorted V/f tables, finite
/// power/probabilities. Violations throw ContractError like SSM_CHECK; from
/// a noexcept function that means std::terminate with the contract message,
/// which is the desired loud stop in an audit build.
///
/// When audits are compiled out the expression is parsed but not evaluated
/// (unevaluated sizeof), so audit-only helpers stay name-checked and cannot
/// rot.
#if defined(SSMDVFS_AUDIT)
#define SSM_AUDIT_CHECK(expr, ...) \
  ::ssm::checkThat(static_cast<bool>(expr), #expr __VA_OPT__(, ) __VA_ARGS__)
#else
#define SSM_AUDIT_CHECK(expr, ...) \
  static_cast<void>(sizeof(static_cast<bool>(expr)))
#endif

/// True when SSM_AUDIT_CHECK is live; lets tests assert on audit behavior.
namespace ssm {
#if defined(SSMDVFS_AUDIT)
inline constexpr bool kAuditChecksEnabled = true;
#else
inline constexpr bool kAuditChecksEnabled = false;
#endif
}  // namespace ssm
