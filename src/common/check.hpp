// Lightweight runtime checking utilities used across the SSMDVFS codebase.
//
// The library never aborts: contract violations throw ssm::ContractError so
// that tests can assert on misuse and embedding applications can recover.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ssm {

/// Thrown when a documented precondition or invariant of a public API is
/// violated by the caller (programming error, not data error).
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when input data (a dataset file, a config value, a model blob)
/// is malformed or out of the supported range.
class DataError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void throwContract(const char* expr, const std::string& msg,
                                const std::source_location& loc);
}  // namespace detail

/// Checks a precondition/invariant; throws ContractError with location info
/// on failure. `msg` may add context beyond the stringified expression.
inline void checkThat(bool ok, const char* expr, const std::string& msg = {},
                      const std::source_location loc =
                          std::source_location::current()) {
  if (!ok) detail::throwContract(expr, msg, loc);
}

}  // namespace ssm

/// Preferred spelling at call sites: SSM_CHECK(x > 0, "x must be positive").
#define SSM_CHECK(expr, ...) \
  ::ssm::checkThat(static_cast<bool>(expr), #expr __VA_OPT__(, ) __VA_ARGS__)
