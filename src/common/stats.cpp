#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  constexpr double kEps = 1e-12;
  double logsum = 0.0;
  for (double x : xs) logsum += std::log(std::max(x, kEps));
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mapePercent(std::span<const double> actual,
                   std::span<const double> predicted, double floor) {
  SSM_CHECK(actual.size() == predicted.size(),
            "actual/predicted length mismatch");
  if (actual.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::max(std::abs(actual[i]), floor);
    total += std::abs(predicted[i] - actual[i]) / denom;
  }
  return 100.0 * total / static_cast<double>(actual.size());
}

double pearson(std::span<const double> xs,
               std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Standardizer Standardizer::fit(std::span<const double> rows,
                               std::size_t dim) {
  SSM_CHECK(dim > 0, "feature dimension must be positive");
  SSM_CHECK(rows.size() % dim == 0, "rows not a multiple of dim");
  const std::size_t n = rows.size() / dim;
  std::vector<RunningStat> per(dim);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < dim; ++c) per[c].add(rows[r * dim + c]);

  Standardizer s;
  s.mean.resize(dim);
  s.inv_std.resize(dim);
  for (std::size_t c = 0; c < dim; ++c) {
    s.mean[c] = per[c].mean();
    const double sd = per[c].stddev();
    s.inv_std[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
  return s;
}

void Standardizer::apply(std::span<double> row) const {
  SSM_CHECK(row.size() == mean.size(), "row width != standardizer width");
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - mean[c]) * inv_std[c];
}

}  // namespace ssm
