#include "common/check.hpp"

#include <sstream>

namespace ssm::detail {

void throwContract(const char* expr, const std::string& msg,
                   const std::source_location& loc) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace ssm::detail
