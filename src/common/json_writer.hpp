// Minimal streaming JSON writer (no dependencies).
//
// The experiment harnesses export machine-readable results next to their
// console tables; downstream tooling (plotters, CI dashboards) should not
// have to parse ASCII tables. Writer API is nesting-checked: mismatched
// begin/end calls throw instead of emitting invalid JSON.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssm {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // Containers. Keyed overloads are for use inside objects, unkeyed inside
  // arrays (or as the root).
  JsonWriter& beginObject();
  JsonWriter& beginObject(const std::string& key);
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& beginArray(const std::string& key);
  JsonWriter& endArray();

  // Values.
  JsonWriter& value(const std::string& key, const std::string& v);
  JsonWriter& value(const std::string& key, const char* v);
  JsonWriter& value(const std::string& key, double v);
  JsonWriter& value(const std::string& key, std::int64_t v);
  JsonWriter& value(const std::string& key, int v);
  JsonWriter& value(const std::string& key, bool v);
  JsonWriter& value(const std::string& v);  ///< string element in an array
  JsonWriter& value(double v);              ///< number element in an array

  /// True once the root container has been closed.
  [[nodiscard]] bool complete() const noexcept;

 private:
  enum class Scope { kObject, kArray };

  void comma();
  void key(const std::string& k);
  void raw(const std::string& s);
  void quoted(const std::string& s);
  void expectInside(Scope scope, const char* what);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool root_done_ = false;
};

/// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace ssm
