// Deterministic random number generation for every stochastic component of
// the reproduction (trace synthesis, NN initialisation, RL exploration).
//
// We deliberately avoid std::mt19937 + std::*_distribution because their
// output is not guaranteed identical across standard library versions; all
// experiments here must be bit-reproducible. SplitMix64 seeds Xoshiro256**,
// and all distributions are implemented on top of a fixed u64 stream.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace ssm {

/// SplitMix64: tiny seeding PRNG (Steele, Lea, Flood 2014 public-domain
/// construction). Used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna, public domain): the workhorse
/// generator. Value-semantic so simulator snapshots copy the RNG state too.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept;

  /// Derives an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept;

  // The u64/double/Bernoulli trio is defined inline: the simulator draws
  // from it several times per issued instruction, and an out-of-line call
  // would dominate the draw itself.
  std::uint64_t nextU64() noexcept {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1) with 53 bits of precision.
  double nextDouble() noexcept {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t nextBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi) noexcept;

  /// true with probability p (clamped to [0,1]).
  bool nextBernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return nextDouble() < p;
  }

  /// Standard normal via Box–Muller (deterministic, caches the spare value).
  double nextGaussian() noexcept;

  /// Gaussian with given mean and standard deviation.
  double nextGaussian(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double nextExponential(double rate) noexcept;

  /// Samples an index from unnormalised non-negative weights.
  /// Returns weights.size()-1 if rounding pushes past the end.
  std::size_t nextCategorical(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(nextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  friend bool operator==(const Rng&, const Rng&) = default;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_gauss_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ssm
