#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ssm {

Table& Table::header(std::vector<std::string> names) {
  SSM_CHECK(rows_.empty(), "header must be set before rows");
  SSM_CHECK(!names.empty(), "header must have at least one column");
  header_ = std::move(names);
  return *this;
}

Table& Table::addRow(std::vector<std::string> cells) {
  SSM_CHECK(!header_.empty(), "set header before adding rows");
  SSM_CHECK(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::printCsv(std::ostream& os) const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string Table::pct(double fraction, int digits) {
  return num(fraction * 100.0, digits) + "%";
}

}  // namespace ssm
