// Hierarchical power capping: one rack-level integral loop on top of the
// per-GPU PowerCapController loops.
//
// The rack owns a single power budget (a capacity event, a busbar limit).
// Each control round the coordinator (1) feeds total rack power into a
// rack-level PowerCapController whose preset becomes a fleet-wide bias every
// chip adds to its own scheduled preset — the integral action that catches a
// whole rack drifting over budget even when every chip is individually under
// its slice — and (2) re-splits the budget into per-GPU caps: every GPU
// starts from the equal share, idle GPUs donate the headroom above their
// measured draw (down to a floor), and the donated watts are redistributed
// to loaded GPUs in proportion to their demand. The per-GPU integral loops
// themselves live in GpuNode and keep their accumulated state across
// retargets (PowerCapController::setCap).
//
// The sum of the per-GPU caps never exceeds the rack cap: idle GPUs only
// ever shrink below the equal share, and loaded GPUs split exactly the
// donated amount.
//
// This file is under the hot-path-alloc lint contract: onRound() runs every
// control round of every rack simulation and never allocates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/power_cap.hpp"

namespace ssm::dc {

struct RackPowerConfig {
  /// Total rack budget, watts.
  double rack_cap_w = 2000.0;
  /// Per-GPU controller template; cap_w is retargeted by the coordinator
  /// every round, the gains/bounds apply per chip.
  PowerCapConfig per_gpu;
  /// Rack-level integral loop (gains are per control round, which spans
  /// several epochs — hence stiffer than the per-epoch per-GPU defaults).
  double rack_ki = 0.004;
  double rack_relax = 0.05;
  /// Cap on the fleet-wide preset bias the rack loop may inject.
  double rack_bias_max = 0.40;
  /// No GPU's cap ever drops below this floor (idle draw + wake headroom).
  double idle_floor_w = 60.0;
  /// A loaded GPU's demand is its measured draw times this margin; an idle
  /// GPU keeps min(share, max(floor, draw × margin)) and donates the rest.
  double demand_margin = 1.25;
};

class RackPowerCoordinator {
 public:
  RackPowerCoordinator(const RackPowerConfig& cfg, int gpus);

  /// Feeds one control round: `power_w[i]` is GPU i's mean draw over the
  /// round, `loaded[i]` (0/1) whether it was busy or had queued work.
  /// Recomputes the per-GPU caps and the rack bias for the NEXT round.
  void onRound(std::span<const double> power_w,
               std::span<const std::uint8_t> loaded);

  /// Per-GPU cap for the coming round (equal share before the first round).
  [[nodiscard]] double capFor(int gpu) const { return caps_[gpu]; }
  /// Fleet-wide preset bias from the rack integral loop.
  [[nodiscard]] double rackBias() const noexcept { return rack_.preset(); }
  [[nodiscard]] double rackCap() const noexcept { return cfg_.rack_cap_w; }
  [[nodiscard]] int rounds() const noexcept { return rack_.epochs(); }
  /// Rounds whose mean rack power exceeded the rack cap.
  [[nodiscard]] int violationRounds() const noexcept {
    return rack_.violations();
  }
  void reset();

 private:
  RackPowerConfig cfg_;
  PowerCapController rack_;
  std::vector<double> caps_;
  std::vector<double> weights_;  ///< scratch: loaded GPUs' demand weights
  int gpus_;
};

}  // namespace ssm::dc
