// One GPU of the rack: queue, governors, per-chip power-cap loop, and the
// per-epoch decision loop over a live SimBackend.
//
// Each node is an independent simulation domain — its own Gpu per job, its
// own governor instances, its own PowerCapController, its own (optional)
// FaultInjector — sharing only immutable inputs with its siblings. Nodes
// advance in lockstep control rounds: the rack loop calls advance(R) on
// every node (in parallel, one node per task slot) and recomputes caps in
// between. Every random draw is keyed off (rack seed, job id) coordinates,
// so a job simulates identically no matter which GPU runs it, in which
// round it starts, or how many worker threads the pool has.
//
// The per-GPU cap is enforced two ways each epoch: the chip's integral
// controller schedules a loss preset (soft — SSMDVFS-family governors aim
// for it via setLossPreset), and the effective preset (chip preset + rack
// bias) is decoded into a hard V/f ceiling applied after governor and fault
// arbitration — the rail-level backstop that works for every mechanism and
// that faults cannot push past.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/power_cap.hpp"
#include "core/ssm_governor.hpp"
#include "dc/dispatcher.hpp"
#include "dc/traffic.hpp"
#include "engine/sim_backend.hpp"
#include "faults/fault_injector.hpp"
#include "thermal/thermal_model.hpp"
#include "thermal/thermal_spec.hpp"
#include "thermal/thermal_throttle.hpp"

namespace ssm::dc {

/// Ledger entry for one job's trip through the rack.
struct JobOutcome {
  std::uint32_t id = 0;
  int gpu = -1;
  int priority = 0;
  TimeNs arrival_ns = 0;
  TimeNs deadline_ns = 0;
  TimeNs start_ns = -1;
  TimeNs finish_ns = -1;
  double energy_j = 0.0;
  std::int64_t instructions = 0;
  bool completed = false;
  bool missed = false;  ///< finished late, or never finished
};

/// What one node did during one control round.
struct NodeRoundStats {
  double power_sum_w = 0.0;  ///< Σ per-epoch chip power (idle epochs too)
  int epochs = 0;
  int busy_epochs = 0;
  int cap_violations = 0;  ///< epochs over the node's current cap
};

class GpuNode {
 public:
  struct Init {
    int gpu_id = 0;
    const GpuConfig* gpu = nullptr;
    const VfTable* vf = nullptr;
    const std::vector<KernelProfile>* mix = nullptr;
    /// nullptr runs the static-default baseline on every cluster.
    const GovernorFactory* factory = nullptr;
    PowerCapConfig cap;
    double idle_power_w = 45.0;
    std::uint64_t rack_seed = 0;
    /// Active spec makes this a degraded chip; nullptr/inactive is clean.
    const faults::FaultSpec* fault = nullptr;
    /// Enabled scenario gives the node RC thermal physics: die temperature
    /// carries across jobs, cools during idle epochs, and a persistent
    /// throttle backstops every commanded level. nullptr/disabled is the
    /// pre-thermal node, byte for byte.
    const thermal::ThermalScenario* thermal = nullptr;
    std::size_t max_jobs = 0;  ///< queue capacity (total traffic size)
  };

  explicit GpuNode(const Init& init);

  // --- dispatch interface (serial, between rounds) ----------------------
  void enqueue(const JobSpec& job);
  [[nodiscard]] bool busy() const noexcept { return sim_.has_value(); }
  [[nodiscard]] int queuedJobs() const noexcept {
    return static_cast<int>(queue_count_);
  }
  /// Estimated remaining work: queued service estimates plus what is left
  /// of the active job's estimate (never less than one epoch while busy).
  [[nodiscard]] TimeNs backlogNs() const noexcept;
  [[nodiscard]] bool degraded() const noexcept { return fault_active_; }

  /// Retargets the chip cap and rack bias for the coming round.
  void setRoundCap(double cap_w, double rack_bias);

  // --- simulation (one node per pool task; no shared mutable state) -----
  /// Runs exactly `epochs` epochs (idle epochs burn idle power).
  NodeRoundStats advance(int epochs);

  // --- results (read after the rack loop finishes) -----------------------
  [[nodiscard]] std::span<const JobOutcome> outcomes() const noexcept {
    return completed_;
  }
  [[nodiscard]] int jobsRun() const noexcept {
    return static_cast<int>(completed_.size());
  }
  [[nodiscard]] std::int64_t busyEpochs() const noexcept {
    return busy_epochs_;
  }
  [[nodiscard]] double energyJ() const noexcept {
    return job_energy_j_ + idle_energy_j_;
  }
  [[nodiscard]] double idleEnergyJ() const noexcept { return idle_energy_j_; }
  [[nodiscard]] double capW() const noexcept { return cap_.cap(); }
  [[nodiscard]] const faults::FaultCounts& faultCounts() const noexcept {
    return fault_counts_;
  }
  /// Hottest die temperature the node ever reached (0 without thermal).
  [[nodiscard]] double peakTempC() const noexcept { return peak_temp_c_; }
  /// Epochs the node's throttle spent limiting (0 without thermal).
  [[nodiscard]] std::int64_t throttleEpochs() const noexcept {
    return throttle_ ? throttle_->throttleEpochs() : 0;
  }
  [[nodiscard]] TimeNs nowNs() const noexcept { return now_ns_; }

 private:
  /// Pops the queue's best job (priority-EDF) and boots a fresh Gpu for it.
  void startNextJob();
  void finishJob();
  /// Decodes the effective preset into a hard V/f ceiling (preset 0 → no
  /// clamp, preset_max → slowest level).
  [[nodiscard]] VfLevel ceilingForPreset(double preset) const noexcept;

  int gpu_id_;
  const GpuConfig* gpu_cfg_;
  const VfTable* vf_;
  const std::vector<KernelProfile>* mix_;
  const GovernorFactory* factory_;
  double idle_power_w_;
  std::uint64_t rack_seed_;
  const faults::FaultSpec* fault_;
  bool fault_active_ = false;

  PowerCapController cap_;
  double preset_max_;  ///< cap config bound, decoded into the V/f ceiling
  double rack_bias_ = 0.0;

  // Queue: preallocated slots, swap-remove on pop (the priority-EDF scan
  // picks a unique winner, so removal order never leaks into results).
  std::vector<JobSpec> queue_;
  std::size_t queue_count_ = 0;

  // Active job state (reset per job; governors are reused via reset()).
  std::optional<engine::SimBackend> sim_;
  JobOutcome active_;
  TimeNs active_est_ns_ = 0;  ///< dispatcher's service estimate for it
  std::vector<std::unique_ptr<DvfsGovernor>> governors_;
  std::vector<SsmdvfsGovernor*> presetable_;  ///< soft-preset path (or null)
  std::vector<VfLevel> levels_;
  std::unique_ptr<faults::FaultInjector> injector_;

  // Thermal carry-over (only populated when the scenario is enabled). The
  // idle model owns the node temperatures between jobs: a starting job
  // copies them in (setThermalState), a finishing job copies them back, and
  // idle epochs integrate cooling under the rail floor. The throttle is one
  // persistent state machine per node, observing across job boundaries.
  const thermal::ThermalScenario* thermal_ = nullptr;
  bool thermal_enabled_ = false;
  std::optional<thermal::ThermalModel> idle_thermal_;
  std::optional<thermal::ThermalThrottle> throttle_;
  std::vector<double> zero_power_w_;  ///< idle clusters draw no dynamic power
  double peak_temp_c_ = 0.0;

  // Accumulated over the node's lifetime.
  std::vector<JobOutcome> completed_;
  faults::FaultCounts fault_counts_;
  TimeNs now_ns_ = 0;
  std::int64_t busy_epochs_ = 0;
  double job_energy_j_ = 0.0;
  double idle_energy_j_ = 0.0;
};

}  // namespace ssm::dc
