#include "dc/gpu_node.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ssm::dc {

namespace {

/// Salts separating the per-job streams hanging off the rack seed.
constexpr std::uint64_t kJobSimSalt = 0xDC51;
constexpr std::uint64_t kJobFaultSalt = 0xDCFA;

}  // namespace

GpuNode::GpuNode(const Init& init)
    : gpu_id_(init.gpu_id),
      gpu_cfg_(init.gpu),
      vf_(init.vf),
      mix_(init.mix),
      factory_(init.factory),
      idle_power_w_(init.idle_power_w),
      rack_seed_(init.rack_seed),
      fault_(init.fault),
      cap_(init.cap),
      preset_max_(init.cap.preset_max),
      thermal_(init.thermal) {
  SSM_CHECK(gpu_cfg_ != nullptr && vf_ != nullptr && mix_ != nullptr,
            "GpuNode needs gpu config, vf table and a workload mix");
  SSM_CHECK(!mix_->empty(), "GpuNode mix must be non-empty");
  SSM_CHECK(idle_power_w_ >= 0.0, "idle power must be non-negative");
  fault_active_ = fault_ != nullptr && fault_->active();
  thermal_enabled_ = thermal_ != nullptr && thermal_->enabled;
  if (thermal_enabled_) {
    idle_thermal_.emplace(thermal_->params, init.gpu->num_clusters);
    throttle_.emplace(thermal_->throttle, init.gpu->num_clusters,
                      static_cast<int>(init.vf->defaultLevel()));
    zero_power_w_.assign(static_cast<std::size_t>(init.gpu->num_clusters),
                         0.0);
    peak_temp_c_ = thermal_->params.ambient_c;
  }

  queue_.resize(std::max<std::size_t>(init.max_jobs, 1));
  completed_.reserve(std::max<std::size_t>(init.max_jobs, 1));

  // Governors are built once and reset() between jobs (the RL-style
  // contract of DvfsGovernor::reset). The soft-preset side channel is
  // resolved once here so the per-epoch loop costs a null check, not a
  // dynamic_cast.
  const int n = gpu_cfg_->num_clusters;
  governors_.reserve(static_cast<std::size_t>(n));
  presetable_.reserve(static_cast<std::size_t>(n));
  levels_.assign(static_cast<std::size_t>(n), vf_->defaultLevel());
  for (int i = 0; i < n; ++i) {
    std::unique_ptr<DvfsGovernor> gov =
        factory_ != nullptr
            ? factory_->create(i)
            : std::make_unique<StaticGovernor>(vf_->defaultLevel());
    presetable_.push_back(dynamic_cast<SsmdvfsGovernor*>(gov.get()));
    governors_.push_back(std::move(gov));
  }
}

void GpuNode::enqueue(const JobSpec& job) {
  SSM_CHECK(queue_count_ < queue_.size(), "GpuNode queue overflow");
  queue_[queue_count_++] = job;
}

TimeNs GpuNode::backlogNs() const noexcept {
  TimeNs total = 0;
  for (std::size_t i = 0; i < queue_count_; ++i)
    total += queue_[i].est_service_ns;
  if (sim_.has_value()) {
    const TimeNs elapsed = now_ns_ - active_.start_ns;
    // What's left of the active job's estimate, floored at one epoch (a
    // busy GPU is never "free" for dispatch purposes).
    total += std::max(active_est_ns_ - elapsed, gpu_cfg_->epoch_ns);
  }
  return total;
}

void GpuNode::setRoundCap(double cap_w, double rack_bias) {
  cap_.setCap(cap_w);
  rack_bias_ = rack_bias;
}

VfLevel GpuNode::ceilingForPreset(double preset) const noexcept {
  // preset 0 → no clamp; preset_max → pinned at the slowest level. The
  // rounding splits [0, preset_max] into equal bands per level step.
  const VfLevel max_level = vf_->defaultLevel();
  if (preset_max_ <= 0.0) return max_level;
  const double frac = std::clamp(preset / preset_max_, 0.0, 1.0);
  return max_level -
         static_cast<VfLevel>(std::lround(frac * max_level));
}

void GpuNode::startNextJob() {
  if (queue_count_ == 0) return;
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_count_; ++i)
    if (jobBefore(queue_[i], queue_[best])) best = i;
  const JobSpec job = queue_[best];
  queue_[best] = queue_[--queue_count_];

  active_ = JobOutcome{};
  active_.id = job.id;
  active_.gpu = gpu_id_;
  active_.priority = job.priority;
  active_.arrival_ns = job.arrival_ns;
  active_.deadline_ns = job.deadline_ns;
  active_.start_ns = now_ns_;
  active_est_ns_ = job.est_service_ns;

  // The job's program stream is keyed on (rack seed, job id) only: the same
  // job simulates identically on any GPU, under any policy, at any --jobs.
  const std::uint64_t sim_seed =
      Rng(rack_seed_).fork(kJobSimSalt).fork(job.id).nextU64();
  Gpu machine((*gpu_cfg_), *vf_, (*mix_)[job.workload], sim_seed,
              ChipPowerModel(gpu_cfg_->num_clusters));
  if (thermal_enabled_) {
    // The job inherits the node temperatures the idle model carried —
    // back-to-back jobs start hot, a long-idle chip starts cooled down.
    machine.attachThermal(thermal_->params);
    machine.setThermalState(idle_thermal_->state());
  }
  sim_.emplace(std::move(machine));

  for (auto& gov : governors_) gov->reset();
  std::fill(levels_.begin(), levels_.end(), vf_->defaultLevel());
  if (fault_active_)
    injector_ = std::make_unique<faults::FaultInjector>(
        *fault_, Rng(rack_seed_)
                     .fork(kJobFaultSalt)
                     .fork(static_cast<std::uint64_t>(gpu_id_))
                     .fork(job.id)
                     .nextU64());
}

void GpuNode::finishJob() {
  // Hand the die temperatures back to the idle model so heat soaks across
  // job boundaries instead of resetting to ambient.
  if (thermal_enabled_) idle_thermal_->setState(sim_->gpu().thermalState());
  active_.finish_ns = now_ns_;
  active_.completed = true;
  active_.missed = active_.finish_ns > active_.deadline_ns;
  active_.energy_j = sim_->gpu().totalEnergyJ();
  active_.instructions = sim_->gpu().totalInstructions();
  job_energy_j_ += active_.energy_j;
  completed_.push_back(active_);
  if (injector_ != nullptr) {
    fault_counts_.noise += injector_->counts().noise;
    fault_counts_.dropout += injector_->counts().dropout;
    fault_counts_.delay += injector_->counts().delay;
    fault_counts_.failed += injector_->counts().failed;
    fault_counts_.stuck += injector_->counts().stuck;
    fault_counts_.jitter += injector_->counts().jitter;
    fault_counts_.heatsoak += injector_->counts().heatsoak;
    fault_counts_.tsensor += injector_->counts().tsensor;
    fault_counts_.tjolt += injector_->counts().tjolt;
    injector_.reset();
  }
  sim_.reset();
}

NodeRoundStats GpuNode::advance(int epochs) {
  NodeRoundStats stats;
  const double epoch_s =
      static_cast<double>(gpu_cfg_->epoch_ns) / 1e9;
  for (int e = 0; e < epochs; ++e) {
    if (!sim_.has_value()) startNextJob();
    if (!sim_.has_value()) {
      // Idle epoch: the rail still burns the floor, the chip loop still
      // integrates (so the preset relaxes and the cap ledger stays honest).
      stats.power_sum_w += idle_power_w_;
      idle_energy_j_ += idle_power_w_ * epoch_s;
      stats.cap_violations += idle_power_w_ > cap_.cap();
      static_cast<void>(cap_.onEpoch(idle_power_w_));
      if (thermal_enabled_) {
        // The die cools toward ambient under the rail floor; the throttle
        // keeps observing so it can recover while the chip is quiet.
        idle_thermal_->step(zero_power_w_, idle_power_w_, gpu_cfg_->epoch_ns);
        throttle_->observe(idle_thermal_->state().cluster_c,
                           idle_thermal_->packageTempC());
      }
      ++stats.epochs;
      now_ns_ += gpu_cfg_->epoch_ns;
      continue;
    }

    GpuEpochReport report = sim_->nextEpoch(levels_);
    if (thermal_enabled_) {
      // Physical peak, scanned before fault corruption touches the sensors.
      peak_temp_c_ = std::max(peak_temp_c_, report.package_temp_c);
      for (const double t : report.cluster_temps_c)
        peak_temp_c_ = std::max(peak_temp_c_, t);
    }
    if (injector_ != nullptr) injector_->onTelemetry(report);
    // The throttle reads the (possibly fault-corrupted) sensor view, like
    // real protection hardware behind a flaky sensor bus.
    if (thermal_enabled_)
      throttle_->observe(report.cluster_temps_c, report.package_temp_c);
    stats.power_sum_w += report.chip_power_w;
    stats.cap_violations += report.chip_power_w > cap_.cap();
    ++stats.busy_epochs;
    ++busy_epochs_;

    // Chip integral loop + rack bias → effective preset for the epoch.
    const double chip_preset = cap_.onEpoch(report.chip_power_w);
    const double eff_preset = std::min(chip_preset + rack_bias_, preset_max_);
    const VfLevel ceiling = ceilingForPreset(eff_preset);
    const int n = gpu_cfg_->num_clusters;
    for (int i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (presetable_[u] != nullptr)
        presetable_[u]->setLossPreset(std::max(eff_preset, 1e-6));
      const EpochObservation& obs = report.clusters[u];
      VfLevel requested = vf_->clamp(governors_[u]->decide(obs));
      if (injector_ != nullptr)
        requested = injector_->onActuate(i, requested, obs.level);
      // Rail-level backstop: the cap ceiling binds after governor and
      // fault arbitration, for every mechanism; the thermal throttle
      // composes on top as a second hardware limiter.
      levels_[u] = std::min(requested, ceiling);
      if (thermal_enabled_) levels_[u] = throttle_->clamp(i, levels_[u]);
    }

    ++stats.epochs;
    now_ns_ += gpu_cfg_->epoch_ns;
    if (report.all_done) finishJob();
  }
  return stats;
}

}  // namespace ssm::dc
