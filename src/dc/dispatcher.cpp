#include "dc/dispatcher.hpp"

#include "common/check.hpp"

namespace ssm::dc {

DispatchPolicy parseDispatchPolicy(std::string_view name) {
  if (name == "round-robin") return DispatchPolicy::kRoundRobin;
  if (name == "least-loaded") return DispatchPolicy::kLeastLoaded;
  if (name == "deadline-aware") return DispatchPolicy::kDeadlineAware;
  std::string msg = "unknown dispatch policy '";
  msg += name;
  msg += "' (expected round-robin|least-loaded|deadline-aware)";
  throw DataError(msg);
}

std::string policyName(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kDeadlineAware: return "deadline-aware";
  }
  return "least-loaded";
}

Dispatcher::Dispatcher(DispatchPolicy policy, int gpus)
    : policy_(policy), gpus_(gpus) {
  SSM_CHECK(gpus_ >= 1, "dispatcher needs at least one GPU");
}

int Dispatcher::assign(const JobSpec& job, std::span<const NodeLoad> loads) {
  SSM_CHECK(loads.size() == static_cast<std::size_t>(gpus_),
            "dispatcher load size mismatch");

  if (policy_ == DispatchPolicy::kRoundRobin) {
    const int gpu = rr_cursor_;
    rr_cursor_ = (rr_cursor_ + 1) % gpus_;
    return gpu;
  }

  // least-loaded: argmin estimated backlog, lowest id wins ties.
  int best = 0;
  for (int i = 1; i < gpus_; ++i) {
    if (loads[static_cast<std::size_t>(i)].backlog_ns <
        loads[static_cast<std::size_t>(best)].backlog_ns)
      best = i;
  }
  if (policy_ == DispatchPolicy::kLeastLoaded) return best;

  // deadline-aware: among GPUs whose estimated finish (backlog + service)
  // fits the job's slack budget, take the least loaded; a healthy feasible
  // GPU beats a degraded feasible one. No feasible GPU → least loaded.
  const TimeNs budget_ns = job.deadline_ns - job.arrival_ns;
  int feasible = -1;
  bool feasible_healthy = false;
  for (int i = 0; i < gpus_; ++i) {
    const NodeLoad& load = loads[static_cast<std::size_t>(i)];
    if (load.backlog_ns + job.est_service_ns > budget_ns) continue;
    const bool healthy = !load.degraded;
    const bool better =
        feasible < 0 || (healthy && !feasible_healthy) ||
        (healthy == feasible_healthy &&
         load.backlog_ns <
             loads[static_cast<std::size_t>(feasible)].backlog_ns);
    if (better) {
      feasible = i;
      feasible_healthy = healthy;
    }
  }
  return feasible >= 0 ? feasible : best;
}

}  // namespace ssm::dc
