#include "dc/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ssm::dc {

namespace {

/// Salts separating the per-job draw streams from one another.
constexpr std::uint64_t kArrivalSalt = 0xDC00;
constexpr std::uint64_t kShapeSalt = 0xDC01;

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t at = s.find(sep, start);
    if (at == std::string_view::npos) at = s.size();
    if (at > start) out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void specError(const std::string& what) {
  throw DataError("bad --traffic spec: " + what);
}

double parseDouble(std::string_view key, std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(key) + "='" + v + "' is not a number");
  return d;
}

std::int64_t parseInt(std::string_view key, std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const std::int64_t i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(key) + "='" + v + "' is not an integer");
  return i;
}

/// %.17g: shortest form that survives a strtod round trip for doubles.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* shapeName(TrafficSpec::Shape s) {
  switch (s) {
    case TrafficSpec::Shape::kSteady: return "steady";
    case TrafficSpec::Shape::kBursty: return "bursty";
    case TrafficSpec::Shape::kDiurnal: return "diurnal";
    case TrafficSpec::Shape::kAdversarial: return "adversarial";
  }
  return "steady";
}

/// Instantaneous arrival-rate multiplier at time `t_ms` within the shape's
/// modulation cycle. Steady is flat; bursty is a square wave (hot for
/// `duty` of each period, quiet otherwise); diurnal is a raised sine.
double rateMultiplier(const TrafficSpec& spec, double t_ms) {
  switch (spec.shape) {
    case TrafficSpec::Shape::kSteady:
      return 1.0;
    case TrafficSpec::Shape::kBursty: {
      const double phase = std::fmod(t_ms, spec.period_ms) / spec.period_ms;
      return phase < spec.duty ? spec.burst : 0.1;
    }
    case TrafficSpec::Shape::kDiurnal: {
      const double phase = std::fmod(t_ms, spec.period_ms) / spec.period_ms;
      constexpr double kPi = 3.14159265358979323846;
      return 1.0 + std::sin(2.0 * kPi * phase);
    }
    case TrafficSpec::Shape::kAdversarial:
      return 1.0;  // waves are placed directly, not drawn
  }
  return 1.0;
}

/// Peak of rateMultiplier over a cycle — the thinning envelope.
double rateEnvelope(const TrafficSpec& spec) {
  switch (spec.shape) {
    case TrafficSpec::Shape::kSteady: return 1.0;
    case TrafficSpec::Shape::kBursty: return spec.burst;
    case TrafficSpec::Shape::kDiurnal: return 2.0;
    case TrafficSpec::Shape::kAdversarial: return 1.0;
  }
  return 1.0;
}

}  // namespace

void TrafficSpec::validate() const {
  if (jobs < 1 || jobs > 1'000'000)
    specError("jobs must be in [1, 1e6], got " + std::to_string(jobs));
  if (!(rate_per_ms > 0.0))
    specError("rate must be > 0, got " + num(rate_per_ms));
  if (!(slack >= 1.0))
    specError("slack must be >= 1, got " + num(slack));
  if (!(burst >= 1.0))
    specError("burst must be >= 1, got " + num(burst));
  if (!(duty > 0.0) || !(duty < 1.0))
    specError("duty must be in (0,1), got " + num(duty));
  if (!(period_ms > 0.0))
    specError("period must be > 0, got " + num(period_ms));
  if (priorities < 1 || priorities > 16)
    specError("prio must be in [1,16], got " + std::to_string(priorities));
}

TrafficSpec TrafficSpec::parse(std::string_view text) {
  TrafficSpec spec;
  text = trim(text);
  if (text.empty()) return spec;
  for (std::string_view raw : split(text, ';')) {
    const std::string_view kv = trim(raw);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= kv.size())
      specError("expected key=value pairs, got '" + std::string(kv) + "'");
    const std::string_view key = trim(kv.substr(0, eq));
    const std::string_view value = trim(kv.substr(eq + 1));
    if (key == "shape") {
      if (value == "steady") spec.shape = Shape::kSteady;
      else if (value == "bursty") spec.shape = Shape::kBursty;
      else if (value == "diurnal") spec.shape = Shape::kDiurnal;
      else if (value == "adversarial") spec.shape = Shape::kAdversarial;
      else
        specError("shape must be steady|bursty|diurnal|adversarial, got '" +
                  std::string(value) + "'");
    } else if (key == "jobs") {
      spec.jobs = static_cast<int>(parseInt(key, value));
    } else if (key == "rate") {
      spec.rate_per_ms = parseDouble(key, value);
    } else if (key == "slack") {
      spec.slack = parseDouble(key, value);
    } else if (key == "burst") {
      spec.burst = parseDouble(key, value);
    } else if (key == "duty") {
      spec.duty = parseDouble(key, value);
    } else if (key == "period") {
      spec.period_ms = parseDouble(key, value);
    } else if (key == "prio") {
      spec.priorities = static_cast<int>(parseInt(key, value));
    } else {
      specError("unknown key '" + std::string(key) +
                "' (expected shape|jobs|rate|slack|burst|duty|period|prio)");
    }
  }
  spec.validate();
  return spec;
}

std::string TrafficSpec::print() const {
  std::string out = std::string("shape=") + shapeName(shape);
  out += ";jobs=" + std::to_string(jobs);
  out += ";rate=" + num(rate_per_ms);
  out += ";slack=" + num(slack);
  if (shape == Shape::kBursty || shape == Shape::kAdversarial)
    out += ";burst=" + num(burst);
  if (shape == Shape::kBursty) out += ";duty=" + num(duty);
  if (shape != Shape::kSteady) out += ";period=" + num(period_ms);
  out += ";prio=" + std::to_string(priorities);
  return out;
}

TimeNs estimatedServiceNs(const KernelProfile& kernel, const GpuConfig& gpu,
                          const VfTable& vf) {
  // Issue-bound time for one cluster's resident warps at the default
  // frequency, derated by an empirical stall factor (memory and dependency
  // stalls keep real IPC well under the issue width). All clusters run the
  // same warp set, so chip completion tracks per-cluster completion.
  const double insts = static_cast<double>(kernel.totalInstsPerWarp()) *
                       kernel.warps_per_cluster;
  const double issue_per_s = static_cast<double>(gpu.issue_width) *
                             vf.at(vf.defaultLevel()).freq_mhz * 1e6;
  constexpr double kStallDerate = 0.35;
  const double seconds = insts / (issue_per_s * kStallDerate);
  const auto ns = static_cast<TimeNs>(seconds * 1e9);
  // Never shorter than one epoch: a job occupies at least one decision
  // window, and zero-length estimates would break deadline slack.
  return std::max<TimeNs>(ns, gpu.epoch_ns);
}

std::vector<JobSpec> generateTraffic(const TrafficSpec& spec,
                                     const std::vector<KernelProfile>& mix,
                                     const GpuConfig& gpu, const VfTable& vf,
                                     std::uint64_t seed) {
  spec.validate();
  SSM_CHECK(!mix.empty(), "traffic needs a non-empty workload mix");

  // Service estimates are per-profile, computed once.
  std::vector<TimeNs> service(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i)
    service[i] = estimatedServiceNs(mix[i], gpu, vf);

  std::vector<JobSpec> out(static_cast<std::size_t>(spec.jobs));

  // Arrival instants. The thinning stream is inherently sequential (each
  // gap depends on the previous instant), so it gets one dedicated fork;
  // per-job attribute draws are keyed on the job index below.
  Rng arrivals = Rng(seed).fork(kArrivalSalt);
  if (spec.shape == TrafficSpec::Shape::kAdversarial) {
    // Synchronized waves: `burst` jobs land at every period boundary
    // simultaneously — the thundering-herd worst case for a dispatcher.
    const auto wave = static_cast<int>(spec.burst);
    for (int j = 0; j < spec.jobs; ++j) {
      const int wave_idx = j / std::max(wave, 1);
      out[static_cast<std::size_t>(j)].arrival_ns = static_cast<TimeNs>(
          wave_idx * spec.period_ms * static_cast<double>(kNsPerMs));
    }
  } else {
    // Non-homogeneous Poisson via thinning: candidates at the envelope
    // rate, accepted with probability λ(t)/λmax.
    const double env_rate = spec.rate_per_ms * rateEnvelope(spec);
    double t_ms = 0.0;
    for (int j = 0; j < spec.jobs; ++j) {
      for (;;) {
        t_ms += arrivals.nextExponential(env_rate);
        const double accept =
            rateMultiplier(spec, t_ms) / rateEnvelope(spec);
        if (arrivals.nextDouble() < accept) break;
      }
      out[static_cast<std::size_t>(j)].arrival_ns =
          static_cast<TimeNs>(t_ms * static_cast<double>(kNsPerMs));
    }
  }

  // Per-job attributes: independent stream per job index, so inserting or
  // removing an arrival never perturbs its neighbours' draws.
  const Rng shape_root = Rng(seed).fork(kShapeSalt);
  for (int j = 0; j < spec.jobs; ++j) {
    JobSpec& job = out[static_cast<std::size_t>(j)];
    Rng rng = shape_root.fork(static_cast<std::uint64_t>(j));
    job.id = static_cast<std::uint32_t>(j);
    job.workload =
        static_cast<std::uint32_t>(rng.nextBelow(mix.size()));
    job.est_service_ns = service[job.workload];
    if (spec.shape == TrafficSpec::Shape::kAdversarial) {
      // Whole waves of maximum-priority jobs with the tightest deadlines.
      job.priority = spec.priorities - 1;
      job.deadline_ns =
          job.arrival_ns +
          static_cast<TimeNs>(static_cast<double>(job.est_service_ns) *
                              spec.slack);
    } else {
      job.priority =
          static_cast<int>(rng.nextBelow(
              static_cast<std::uint64_t>(spec.priorities)));
      // Slack jitter in [1, slack + (slack-1)]: keeps every deadline
      // feasible at the estimate while spreading urgency.
      const double jitter = 1.0 + (spec.slack - 1.0) * 2.0 * rng.nextDouble();
      job.deadline_ns =
          job.arrival_ns +
          static_cast<TimeNs>(static_cast<double>(job.est_service_ns) *
                              jitter);
    }
  }
  return out;
}

}  // namespace ssm::dc
