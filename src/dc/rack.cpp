#include "dc/rack.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sched/fleet.hpp"

namespace ssm::dc {

namespace {

/// Salt separating the traffic stream from the job-simulation streams.
constexpr std::uint64_t kTrafficSalt = 0xDC7F;

TimeNs percentileNs(std::vector<TimeNs>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

RackResult runRack(const RackSpec& spec, ThreadPool* pool) {
  SSM_CHECK(spec.gpus >= 1, "rack needs at least one GPU");
  SSM_CHECK(!spec.mix.empty(), "rack needs a non-empty workload mix");
  SSM_CHECK(spec.epochs_per_round >= 1, "epochs_per_round must be >= 1");
  SSM_CHECK(spec.max_rounds >= 1, "max_rounds must be >= 1");
  SSM_CHECK(spec.warmup_rounds >= 0, "warmup_rounds must be >= 0");
  for (int id : spec.degraded)
    SSM_CHECK(id >= 0 && id < spec.gpus,
              "degraded GPU id out of range");

  // Shared immutable inputs; one factory serves every node (create() is
  // called per cluster per node, the instances are per node).
  const std::unique_ptr<GovernorFactory> factory = fleet::makeGovernorFactory(
      spec.mechanism, spec.vf, spec.preset, spec.model);

  const std::vector<JobSpec> traffic = generateTraffic(
      spec.traffic, spec.mix, spec.gpu, spec.vf,
      Rng(spec.seed).fork(kTrafficSalt).nextU64());

  RackPowerCoordinator coordinator(spec.power, spec.gpus);
  Dispatcher dispatcher(spec.policy, spec.gpus);

  std::vector<std::unique_ptr<GpuNode>> nodes;
  nodes.reserve(static_cast<std::size_t>(spec.gpus));
  for (int g = 0; g < spec.gpus; ++g) {
    GpuNode::Init init;
    init.gpu_id = g;
    init.gpu = &spec.gpu;
    init.vf = &spec.vf;
    init.mix = &spec.mix;
    init.factory = factory.get();
    init.cap = spec.power.per_gpu;
    init.cap.cap_w = spec.power.rack_cap_w / spec.gpus;
    init.idle_power_w = spec.idle_power_w;
    init.rack_seed = spec.seed;
    const bool degraded =
        std::find(spec.degraded.begin(), spec.degraded.end(), g) !=
        spec.degraded.end();
    init.fault = degraded ? &spec.fault : nullptr;
    init.thermal = &spec.thermal;
    init.max_jobs = traffic.size();
    nodes.push_back(std::make_unique<GpuNode>(init));
  }

  // Pre-allocated per-round scratch (slot per node: the parallel section
  // writes here and nowhere else).
  std::vector<NodeRoundStats> round_stats(nodes.size());
  std::vector<double> round_power(nodes.size(), 0.0);
  std::vector<std::uint8_t> round_loaded(nodes.size(), 0);
  std::vector<NodeLoad> loads(nodes.size());

  RackResult out;
  out.gpus = spec.gpus;

  const int epochs_per_round = spec.epochs_per_round;
  std::size_t next_arrival = 0;
  int violation_rounds = 0;
  int steady_rounds = 0;
  int steady_violations = 0;
  double power_round_sum = 0.0;

  int round = 0;
  for (; round < spec.max_rounds; ++round) {
    const TimeNs round_start_ns = static_cast<TimeNs>(round) *
                                  epochs_per_round * spec.gpu.epoch_ns;

    // 1. Admission: every arrival due by the round start gets a GPU now.
    //    Loads are refreshed after each assignment so a burst spreads out.
    while (next_arrival < traffic.size() &&
           traffic[next_arrival].arrival_ns <= round_start_ns) {
      for (std::size_t g = 0; g < nodes.size(); ++g) {
        loads[g].backlog_ns = nodes[g]->backlogNs();
        loads[g].queued = nodes[g]->queuedJobs();
        loads[g].degraded = nodes[g]->degraded();
      }
      const int gpu = dispatcher.assign(traffic[next_arrival], loads);
      nodes[static_cast<std::size_t>(gpu)]->enqueue(traffic[next_arrival]);
      ++next_arrival;
    }

    // 2. Cap retarget from the previous round's telemetry.
    for (std::size_t g = 0; g < nodes.size(); ++g)
      nodes[g]->setRoundCap(coordinator.capFor(static_cast<int>(g)),
                            coordinator.rackBias());

    // 3. Advance every node by one round — the only parallel section.
    if (pool != nullptr) {
      pool->parallelFor(nodes.size(), [&](std::size_t g) {
        round_stats[g] = nodes[g]->advance(epochs_per_round);
      });
    } else {
      for (std::size_t g = 0; g < nodes.size(); ++g)
        round_stats[g] = nodes[g]->advance(epochs_per_round);
    }

    // 4. Coordinator update + rack-level power ledger.
    double rack_power = 0.0;
    for (std::size_t g = 0; g < nodes.size(); ++g) {
      round_power[g] = round_stats[g].power_sum_w / epochs_per_round;
      round_loaded[g] =
          nodes[g]->busy() || nodes[g]->queuedJobs() > 0 ? 1 : 0;
      rack_power += round_power[g];
      out.busy_gpu_epochs += round_stats[g].busy_epochs;
      out.total_gpu_epochs += round_stats[g].epochs;
    }
    coordinator.onRound(round_power, round_loaded);
    power_round_sum += rack_power;
    out.max_rack_power_w = std::max(out.max_rack_power_w, rack_power);
    const bool violated = rack_power > spec.power.rack_cap_w;
    violation_rounds += violated;
    if (round >= spec.warmup_rounds) {
      ++steady_rounds;
      steady_violations += violated;
    }

    // 5. Done when the stream is drained and every chip is quiet.
    bool any_active = false;
    for (const auto& node : nodes)
      any_active = any_active || node->busy() || node->queuedJobs() > 0;
    if (next_arrival == traffic.size() && !any_active) {
      ++round;
      break;
    }
  }

  out.rounds = round;
  out.cap_violation_frac =
      round > 0 ? static_cast<double>(violation_rounds) / round : 0.0;
  out.steady_violation_frac =
      steady_rounds > 0
          ? static_cast<double>(steady_violations) / steady_rounds
          : 0.0;
  out.mean_rack_power_w = round > 0 ? power_round_sum / round : 0.0;
  out.final_rack_bias = coordinator.rackBias();

  // Job ledger, indexed by id; anything not completed is a miss.
  out.jobs.resize(traffic.size());
  for (std::size_t j = 0; j < traffic.size(); ++j) {
    JobOutcome& o = out.jobs[j];
    o.id = traffic[j].id;
    o.priority = traffic[j].priority;
    o.arrival_ns = traffic[j].arrival_ns;
    o.deadline_ns = traffic[j].deadline_ns;
    o.missed = true;
  }
  std::vector<TimeNs> latencies;
  latencies.reserve(traffic.size());
  for (const auto& node : nodes) {
    for (const JobOutcome& o : node->outcomes()) {
      out.jobs[o.id] = o;
      ++out.completed;
      out.missed_deadlines += o.missed;
      latencies.push_back(o.finish_ns - o.arrival_ns);
      out.makespan_ns = std::max(out.makespan_ns, o.finish_ns);
    }
    out.total_energy_j += node->energyJ();
    out.idle_energy_j += node->idleEnergyJ();
    out.fault_counts.noise += node->faultCounts().noise;
    out.fault_counts.dropout += node->faultCounts().dropout;
    out.fault_counts.delay += node->faultCounts().delay;
    out.fault_counts.failed += node->faultCounts().failed;
    out.fault_counts.stuck += node->faultCounts().stuck;
    out.fault_counts.jitter += node->faultCounts().jitter;
    out.fault_counts.heatsoak += node->faultCounts().heatsoak;
    out.fault_counts.tsensor += node->faultCounts().tsensor;
    out.fault_counts.tjolt += node->faultCounts().tjolt;
    out.peak_temp_c = std::max(out.peak_temp_c, node->peakTempC());
    out.throttle_epochs += node->throttleEpochs();
    GpuNodeSummary s;
    s.gpu_id = static_cast<int>(out.nodes.size());
    s.jobs_run = node->jobsRun();
    s.busy_epochs = node->busyEpochs();
    s.energy_j = node->energyJ();
    s.final_cap_w = node->capW();
    s.degraded = node->degraded();
    out.nodes.push_back(s);
  }
  out.unfinished = static_cast<int>(traffic.size()) - out.completed;
  out.missed_deadlines += out.unfinished;
  out.deadline_miss_rate =
      traffic.empty() ? 0.0
                      : static_cast<double>(out.missed_deadlines) /
                            static_cast<double>(traffic.size());
  out.energy_per_job_j =
      out.completed > 0 ? out.total_energy_j / out.completed : 0.0;
  std::sort(latencies.begin(), latencies.end());
  out.p50_latency_ns = percentileNs(latencies, 0.50);
  out.p99_latency_ns = percentileNs(latencies, 0.99);
  return out;
}

}  // namespace ssm::dc
