#include "dc/rack_power.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm::dc {

namespace {

PowerCapConfig rackLoopConfig(const RackPowerConfig& cfg) {
  PowerCapConfig c;
  c.cap_w = cfg.rack_cap_w;
  c.ki = cfg.rack_ki;
  c.relax = cfg.rack_relax;
  c.preset_min = 0.0;
  c.preset_max = cfg.rack_bias_max;
  c.preset0 = 0.0;
  return c;
}

}  // namespace

RackPowerCoordinator::RackPowerCoordinator(const RackPowerConfig& cfg,
                                           int gpus)
    : cfg_(cfg),
      rack_(rackLoopConfig(cfg)),
      caps_(static_cast<std::size_t>(gpus), cfg.rack_cap_w / gpus),
      weights_(static_cast<std::size_t>(gpus), 0.0),
      gpus_(gpus) {
  SSM_CHECK(gpus_ >= 1, "rack needs at least one GPU");
  SSM_CHECK(cfg_.rack_cap_w > 0.0, "rack cap must be positive");
  SSM_CHECK(cfg_.idle_floor_w >= 0.0, "idle floor must be non-negative");
  SSM_CHECK(cfg_.demand_margin >= 1.0, "demand margin must be >= 1");
}

void RackPowerCoordinator::onRound(std::span<const double> power_w,
                                   std::span<const std::uint8_t> loaded) {
  SSM_CHECK(power_w.size() == static_cast<std::size_t>(gpus_) &&
                loaded.size() == static_cast<std::size_t>(gpus_),
            "coordinator round size mismatch");

  // Rack integral loop: total draw vs the rack budget → fleet-wide bias.
  double total = 0.0;
  for (double p : power_w) total += p;
  static_cast<void>(rack_.onEpoch(total));

  // Budget split. Idle GPUs keep what they draw (plus margin, above the
  // floor, never above the equal share) and donate the remainder.
  const double share = cfg_.rack_cap_w / gpus_;
  double donated = 0.0;
  double demand_sum = 0.0;
  for (int i = 0; i < gpus_; ++i) {
    const auto u = static_cast<std::size_t>(i);
    if (loaded[u] != 0) {
      weights_[u] = std::max(power_w[u] * cfg_.demand_margin, share);
      demand_sum += weights_[u];
      caps_[u] = share;
    } else {
      weights_[u] = 0.0;
      const double keep = std::min(
          share, std::max(cfg_.idle_floor_w,
                          power_w[u] * cfg_.demand_margin));
      caps_[u] = keep;
      donated += share - keep;
    }
  }
  // Redistribute the donated headroom to loaded GPUs by demand. With no
  // loaded GPU the headroom simply goes unused (sum stays under the cap).
  if (donated > 0.0 && demand_sum > 0.0) {
    for (int i = 0; i < gpus_; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (weights_[u] > 0.0) caps_[u] += donated * (weights_[u] / demand_sum);
    }
  }
}

void RackPowerCoordinator::reset() {
  rack_.reset();
  const double share = cfg_.rack_cap_w / gpus_;
  for (double& c : caps_) c = share;
  for (double& w : weights_) w = 0.0;
}

}  // namespace ssm::dc
