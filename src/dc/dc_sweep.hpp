// Datacenter sweeps: the cartesian product traffic × policy × rack cap ×
// mechanism × seed, each cell a full rack simulation.
//
// Mirrors fleet::FleetRunner's contract (docs/fleet.md): deterministic
// expansion order, coordinate-keyed seeds, pre-allocated result slots, an
// ordered JSONL collector, and byte-identical output at any --jobs count.
// Cells run on the pool AND each cell's nodes fan out on the same pool
// (nested parallelFor — the work-stealing pool supports it), so a single
// large rack and a wide sweep both saturate the machine.
//
// deadline_miss_rate and energy_per_job are first-class columns in both
// JSONL and CSV output — the headline metrics of the ROADMAP's
// "millions of users" scenario.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dc/rack.hpp"
#include "sched/thread_pool.hpp"

namespace ssm::dc {

struct DcSweepSpec {
  /// Per-cell template: gpus, gpu config, vf, mix, power gains, fault
  /// scenario + degraded set, round geometry. The axes below override
  /// traffic, policy, rack cap, mechanism and seed per cell; an EMPTY axis
  /// falls back to the base's value, so a spec with no axes set runs the
  /// base rack exactly once.
  RackSpec base;
  std::vector<TrafficSpec> traffic;        ///< empty → {base.traffic}
  std::vector<DispatchPolicy> policies;    ///< empty → {base.policy}
  std::vector<double> rack_caps_w;         ///< empty → {base.power.rack_cap_w}
  std::vector<std::string> mechanisms;     ///< empty → {base.mechanism}
  std::vector<std::uint64_t> seeds;        ///< empty → {base.seed}
};

/// One cell, in expansion order (traffic-major, then policy, cap,
/// mechanism, seed).
struct DcSweepJob {
  std::size_t index = 0;
  std::size_t traffic = 0;
  std::size_t policy = 0;
  std::size_t cap = 0;
  std::size_t mechanism = 0;
  std::size_t seed = 0;
};

struct DcSweepResult {
  DcSweepJob job;
  RackResult rack;
};

/// Expands the cartesian product in deterministic order. Empty axes
/// count as one cell drawn from the base spec.
[[nodiscard]] std::vector<DcSweepJob> expandDcJobs(const DcSweepSpec& spec);

/// Materializes one cell's RackSpec from the template + coordinates.
[[nodiscard]] RackSpec cellSpec(const DcSweepSpec& spec,
                                const DcSweepJob& job);

class DcSweepRunner {
 public:
  /// `spec` must outlive the runner. Cells and their racks execute on
  /// `pool`.
  DcSweepRunner(const DcSweepSpec& spec, ThreadPool& pool);

  /// Runs every cell; returns results in job-index order.
  [[nodiscard]] std::vector<DcSweepResult> run() const;

  /// Streams one JSON object per cell into `os` in job-index order as soon
  /// as the completed prefix allows. Returns the number of lines written.
  std::size_t runJsonl(std::ostream& os) const;

  [[nodiscard]] const std::vector<DcSweepJob>& jobs() const noexcept {
    return jobs_;
  }

 private:
  const DcSweepSpec& spec_;
  ThreadPool& pool_;
  std::vector<DcSweepJob> jobs_;
};

/// One compact JSON object (single line, no trailing newline) per cell.
[[nodiscard]] std::string toJsonLine(const DcSweepSpec& spec,
                                     const DcSweepResult& r);

/// CSV export: header + one row per cell, in the given order.
void writeCsv(const DcSweepSpec& spec,
              const std::vector<DcSweepResult>& results, std::ostream& os);

}  // namespace ssm::dc
