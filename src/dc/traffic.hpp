// Synthetic datacenter traffic: a deterministic, seed-keyed arrival process
// of kernel jobs with deadlines and priorities.
//
// A TrafficSpec names WHICH load shape is offered and how intense it is; it
// carries no randomness itself (the FaultSpec discipline). The textual form
// is the CLI and sweep vocabulary (`--traffic`), designed to round-trip:
//
//   shape=bursty;jobs=64;rate=2;slack=3;burst=6;duty=0.25;period=4;prio=2
//
// Keys are ';'-separated `key=value` pairs (all optional):
//   shape   steady | bursty | diurnal | adversarial
//   jobs    total arrivals in the trace
//   rate    mean arrival rate, jobs per millisecond
//   slack   deadline = arrival + slack × estimated service time
//   burst   bursty: rate multiplier inside a burst;
//           adversarial: jobs per synchronized wave
//   duty    bursty: fraction of each period spent inside the burst
//   period  modulation period in milliseconds (bursty/diurnal/adversarial)
//   prio    number of priority levels (0 = lowest)
//
// Every stochastic choice (inter-arrival gap, workload pick, priority,
// deadline jitter) is drawn from an Rng forked off the trace seed — the same
// spec + seed yields byte-identical traffic on any machine and --jobs count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "gpusim/gpu_config.hpp"
#include "power/vf_table.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm::dc {

struct TrafficSpec {
  enum class Shape { kSteady, kBursty, kDiurnal, kAdversarial };

  Shape shape = Shape::kSteady;
  int jobs = 64;
  double rate_per_ms = 2.0;
  double slack = 3.0;
  double burst = 6.0;
  double duty = 0.25;
  double period_ms = 4.0;
  int priorities = 2;

  /// Canonical textual form; parse(print()) == *this for values expressible
  /// at the printed precision.
  [[nodiscard]] std::string print() const;

  /// Parses the `--traffic` grammar above. The empty string yields the
  /// default (steady) spec. Throws ssm::DataError on unknown keys,
  /// out-of-range values, and malformed syntax.
  [[nodiscard]] static TrafficSpec parse(std::string_view text);

  /// Validates ranges; throws ssm::DataError on problems.
  void validate() const;

  friend bool operator==(const TrafficSpec&, const TrafficSpec&) = default;
};

/// One deadline-tagged job in the arrival stream.
struct JobSpec {
  std::uint32_t id = 0;       ///< position in the arrival stream
  std::uint32_t workload = 0; ///< index into the traffic mix
  int priority = 0;           ///< higher = more urgent
  TimeNs arrival_ns = 0;
  TimeNs deadline_ns = 0;
  /// Analytic service-time estimate at the default V/f level; feeds the
  /// deadline and the dispatcher's load bookkeeping (NOT the simulator).
  TimeNs est_service_ns = 0;
};

/// Analytic service-time estimate for one kernel on one GPU at the table's
/// default level: issue-bound time derated for the stall behaviour a 10 µs
/// epoch actually observes. Deliberately coarse — deadlines derived from it
/// are tight for memory-bound kernels and loose for compute-bound ones,
/// which is exactly the heterogeneity a deadline-aware dispatcher faces.
[[nodiscard]] TimeNs estimatedServiceNs(const KernelProfile& kernel,
                                        const GpuConfig& gpu,
                                        const VfTable& vf);

/// Expands a TrafficSpec into a concrete arrival stream over `mix`, sorted
/// by (arrival, id). Every draw is keyed off `seed`; the stream is
/// byte-identical for the same (spec, mix, seed) regardless of caller
/// threading. Throws ssm::DataError on an empty mix or invalid spec.
[[nodiscard]] std::vector<JobSpec> generateTraffic(
    const TrafficSpec& spec, const std::vector<KernelProfile>& mix,
    const GpuConfig& gpu, const VfTable& vf, std::uint64_t seed);

}  // namespace ssm::dc
