// Job dispatch: which GPU serves which arrival.
//
// The dispatcher runs serially at the head of every control round (arrival
// order is part of the determinism contract — assignments depend only on
// the arrival stream and the nodes' published load, never on thread
// timing). Three policies:
//
//   round-robin     arrivals rotate across GPUs regardless of load
//   least-loaded    argmin of estimated backlog (ties → lowest GPU id)
//   deadline-aware  least-loaded restricted to GPUs whose estimated finish
//                   meets the job's deadline budget, preferring healthy
//                   over degraded chips; falls back to global least-loaded
//                   when no GPU can make the deadline
//
// Queue discipline at the node is fixed (priority-EDF: highest priority
// first, earliest deadline next, id as the final tiebreak) — policies only
// choose the GPU. dispatcher.cpp is under the hot-path-alloc lint contract:
// assignment runs for every arrival of every rack simulation and never
// allocates.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "dc/traffic.hpp"

namespace ssm::dc {

enum class DispatchPolicy { kRoundRobin, kLeastLoaded, kDeadlineAware };

/// Parses the CLI vocabulary: round-robin | least-loaded | deadline-aware.
/// Throws ssm::DataError on unknown names.
[[nodiscard]] DispatchPolicy parseDispatchPolicy(std::string_view name);
[[nodiscard]] std::string policyName(DispatchPolicy policy);

/// One GPU's published load, refreshed before every assignment.
struct NodeLoad {
  TimeNs backlog_ns = 0;  ///< estimated remaining work incl. the active job
  int queued = 0;
  bool degraded = false;  ///< carries an active fault scenario
};

/// Fixed node queue discipline: does `a` start before `b`?
[[nodiscard]] constexpr bool jobBefore(const JobSpec& a,
                                       const JobSpec& b) noexcept {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns < b.deadline_ns;
  return a.id < b.id;
}

class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, int gpus);

  /// Picks the GPU for `job`. `loads` must hold one entry per GPU and
  /// reflect all previous assignments of the round.
  [[nodiscard]] int assign(const JobSpec& job,
                           std::span<const NodeLoad> loads);

  [[nodiscard]] DispatchPolicy policy() const noexcept { return policy_; }

 private:
  DispatchPolicy policy_;
  int gpus_;
  int rr_cursor_ = 0;
};

}  // namespace ssm::dc
