#include "dc/dc_sweep.hpp"

#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/json_writer.hpp"
#include "sched/fleet.hpp"

namespace ssm::dc {

namespace {

/// The fault columns appear only when the template actually degrades
/// chips — clean sweeps keep the lean schema (the fleet.cpp rule).
bool faultsActive(const DcSweepSpec& spec) {
  return spec.base.fault.active() && !spec.base.degraded.empty();
}

/// Thermal columns appear only when the template enables the scenario.
bool thermalActive(const DcSweepSpec& spec) {
  return spec.base.thermal.enabled;
}

// Every axis falls back to the base's value when left empty, so a spec
// with no axes set runs the base rack exactly once and a forgotten axis
// can never silently replace a configured base field with a default.
std::vector<double> capAxis(const DcSweepSpec& spec) {
  return spec.rack_caps_w.empty()
             ? std::vector<double>{spec.base.power.rack_cap_w}
             : spec.rack_caps_w;
}

std::vector<TrafficSpec> trafficAxis(const DcSweepSpec& spec) {
  return spec.traffic.empty() ? std::vector<TrafficSpec>{spec.base.traffic}
                              : spec.traffic;
}

std::vector<DispatchPolicy> policyAxis(const DcSweepSpec& spec) {
  return spec.policies.empty() ? std::vector<DispatchPolicy>{spec.base.policy}
                               : spec.policies;
}

std::vector<std::string> mechanismAxis(const DcSweepSpec& spec) {
  return spec.mechanisms.empty()
             ? std::vector<std::string>{spec.base.mechanism}
             : spec.mechanisms;
}

std::vector<std::uint64_t> seedAxis(const DcSweepSpec& spec) {
  return spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed}
                            : spec.seeds;
}

}  // namespace

std::vector<DcSweepJob> expandDcJobs(const DcSweepSpec& spec) {
  const std::size_t traffics = trafficAxis(spec).size();
  const std::size_t policies = policyAxis(spec).size();
  const std::size_t caps = capAxis(spec).size();
  const std::size_t mechanisms = mechanismAxis(spec).size();
  const std::size_t seeds = seedAxis(spec).size();

  std::vector<DcSweepJob> jobs;
  jobs.reserve(traffics * policies * caps * mechanisms * seeds);
  for (std::size_t t = 0; t < traffics; ++t)
    for (std::size_t p = 0; p < policies; ++p)
      for (std::size_t c = 0; c < caps; ++c)
        for (std::size_t m = 0; m < mechanisms; ++m)
          for (std::size_t s = 0; s < seeds; ++s) {
            DcSweepJob job;
            job.index = jobs.size();
            job.traffic = t;
            job.policy = p;
            job.cap = c;
            job.mechanism = m;
            job.seed = s;
            jobs.push_back(job);
          }
  return jobs;
}

RackSpec cellSpec(const DcSweepSpec& spec, const DcSweepJob& job) {
  RackSpec cell = spec.base;
  cell.traffic = trafficAxis(spec)[job.traffic];
  cell.policy = policyAxis(spec)[job.policy];
  cell.power.rack_cap_w = capAxis(spec)[job.cap];
  cell.mechanism = mechanismAxis(spec)[job.mechanism];
  cell.seed = seedAxis(spec)[job.seed];
  return cell;
}

DcSweepRunner::DcSweepRunner(const DcSweepSpec& spec, ThreadPool& pool)
    : spec_(spec), pool_(pool), jobs_(expandDcJobs(spec)) {
  // Fail fast on an unsatisfiable spec before any simulation time.
  for (const auto& mech : mechanismAxis(spec_))
    static_cast<void>(fleet::makeGovernorFactory(mech, spec_.base.vf, 0.10,
                                                 spec_.base.model));
}

std::vector<DcSweepResult> DcSweepRunner::run() const {
  std::vector<DcSweepResult> results(jobs_.size());
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    results[i].job = jobs_[i];
    results[i].rack = runRack(cellSpec(spec_, jobs_[i]), &pool_);
  });
  return results;
}

std::size_t DcSweepRunner::runJsonl(std::ostream& os) const {
  // Ordered streaming collector (the fleet.cpp idiom): lines buffer until
  // their prefix is complete; a single writer touches `os`.
  std::mutex mu;
  std::map<std::size_t, std::string> ready;
  std::size_t next = 0;
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    DcSweepResult r;
    r.job = jobs_[i];
    r.rack = runRack(cellSpec(spec_, jobs_[i]), &pool_);
    std::string line = toJsonLine(spec_, r);
    std::lock_guard<std::mutex> lk(mu);
    ready.emplace(i, std::move(line));
    while (!ready.empty() && ready.begin()->first == next) {
      os << ready.begin()->second << '\n';
      ready.erase(ready.begin());
      ++next;
    }
  });
  SSM_CHECK(next == jobs_.size(), "dc JSONL collector lost lines");
  return next;
}

std::string toJsonLine(const DcSweepSpec& spec, const DcSweepResult& r) {
  const RackResult& rack = r.rack;
  std::ostringstream ss;
  JsonWriter w(ss);
  w.beginObject()
      .value("traffic", trafficAxis(spec)[r.job.traffic].print())
      .value("policy", policyName(policyAxis(spec)[r.job.policy]))
      .value("rack_cap_w", capAxis(spec)[r.job.cap])
      .value("mechanism", mechanismAxis(spec)[r.job.mechanism])
      .value("seed",
             static_cast<std::int64_t>(seedAxis(spec)[r.job.seed]))
      .value("gpus", rack.gpus)
      .value("jobs", static_cast<std::int64_t>(rack.jobs.size()))
      .value("completed", rack.completed)
      .value("unfinished", rack.unfinished)
      .value("deadline_miss_rate", rack.deadline_miss_rate)
      .value("energy_per_job_mj", rack.energy_per_job_j * 1e3)
      .value("mean_rack_power_w", rack.mean_rack_power_w)
      .value("max_rack_power_w", rack.max_rack_power_w)
      .value("cap_violation_frac", rack.cap_violation_frac)
      .value("steady_violation_frac", rack.steady_violation_frac)
      .value("p50_latency_us",
             static_cast<double>(rack.p50_latency_ns) / 1e3)
      .value("p99_latency_us",
             static_cast<double>(rack.p99_latency_ns) / 1e3)
      .value("makespan_ms",
             static_cast<double>(rack.makespan_ns) / 1e6)
      .value("rounds", rack.rounds)
      .value("busy_gpu_epochs",
             static_cast<std::int64_t>(rack.busy_gpu_epochs));
  if (faultsActive(spec)) {
    w.value("faults", spec.base.fault.print())
        .value("degraded_gpus",
               static_cast<std::int64_t>(spec.base.degraded.size()))
        .value("injected_faults", rack.fault_counts.total());
  }
  if (thermalActive(spec)) {
    w.value("thermal", spec.base.thermal.print())
        .value("peak_temp_c", rack.peak_temp_c)
        .value("throttle_epochs", rack.throttle_epochs);
  }
  w.endObject();
  return std::move(ss).str();
}

void writeCsv(const DcSweepSpec& spec,
              const std::vector<DcSweepResult>& results, std::ostream& os) {
  const bool with_faults = faultsActive(spec);
  const bool with_thermal = thermalActive(spec);
  os << "traffic,policy,rack_cap_w,mechanism,seed,gpus,jobs,completed,"
        "unfinished,deadline_miss_rate,energy_per_job_mj,mean_rack_power_w,"
        "max_rack_power_w,cap_violation_frac,steady_violation_frac,"
        "p50_latency_us,p99_latency_us,makespan_ms,rounds,busy_gpu_epochs";
  if (with_faults) os << ",faults,degraded_gpus,injected_faults";
  if (with_thermal) os << ",thermal,peak_temp_c,throttle_epochs";
  os << '\n';
  std::ostringstream num;
  num.precision(17);
  for (const auto& r : results) {
    const RackResult& rack = r.rack;
    num.str({});
    num << capAxis(spec)[r.job.cap] << ','
        << mechanismAxis(spec)[r.job.mechanism] << ','
        << seedAxis(spec)[r.job.seed] << ',' << rack.gpus << ','
        << rack.jobs.size() << ',' << rack.completed << ','
        << rack.unfinished << ',' << rack.deadline_miss_rate << ','
        << rack.energy_per_job_j * 1e3 << ',' << rack.mean_rack_power_w
        << ',' << rack.max_rack_power_w << ',' << rack.cap_violation_frac
        << ',' << rack.steady_violation_frac << ','
        << static_cast<double>(rack.p50_latency_ns) / 1e3 << ','
        << static_cast<double>(rack.p99_latency_ns) / 1e3 << ','
        << static_cast<double>(rack.makespan_ns) / 1e6 << ','
        << rack.rounds << ',' << rack.busy_gpu_epochs;
    if (with_faults) {
      // The spec's canonical form contains ','; quote it per CSV rules
      // (print() never emits a quote character).
      num << ",\"" << spec.base.fault.print() << "\","
          << spec.base.degraded.size() << ','
          << rack.fault_counts.total();
    }
    if (with_thermal) {
      // The scenario's canonical form may contain ','; quote like faults.
      num << ",\"" << spec.base.thermal.print() << "\","
          << rack.peak_temp_c << ',' << rack.throttle_epochs;
    }
    // The traffic grammar also contains ';' and '='; quote it too.
    os << '"' << trafficAxis(spec)[r.job.traffic].print() << "\","
       << policyName(policyAxis(spec)[r.job.policy]) << ',' << num.str()
       << '\n';
  }
}

}  // namespace ssm::dc
