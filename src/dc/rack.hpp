// The rack: N GpuNodes + traffic + dispatcher + hierarchical power cap,
// advanced in lockstep control rounds.
//
// Each round: (serial) admit every arrival whose timestamp has passed and
// assign it a GPU; (parallel) advance every node by `epochs_per_round`
// epochs — one node per pool task, writing its round stats into a
// pre-allocated slot; (serial) feed the per-node powers to the
// RackPowerCoordinator, which retargets per-GPU caps and the rack bias for
// the next round. All cross-node state changes hands only at round
// boundaries on the calling thread, so the result is byte-identical for
// any ThreadPool size (the fleet determinism contract, docs/fleet.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ssm_model.hpp"
#include "dc/dispatcher.hpp"
#include "dc/gpu_node.hpp"
#include "dc/rack_power.hpp"
#include "dc/traffic.hpp"
#include "sched/thread_pool.hpp"
#include "thermal/thermal_spec.hpp"

namespace ssm::dc {

struct RackSpec {
  int gpus = 16;
  GpuConfig gpu;
  VfTable vf = VfTable::titanX();
  /// Workload mix the traffic draws from (required, non-empty).
  std::vector<KernelProfile> mix;
  TrafficSpec traffic;
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Governor vocabulary of fleet::makeGovernorFactory (baseline,
  /// static-<L>, ssmdvfs, ssmdvfs-nocal, pcstall, flemma, ondemand).
  std::string mechanism = "ondemand";
  double preset = 0.10;
  /// Required for the ssmdvfs mechanisms.
  std::shared_ptr<const SsmModel> model;
  RackPowerConfig power;
  double idle_power_w = 45.0;
  /// Epochs per control round (cap re-split cadence).
  int epochs_per_round = 5;
  /// Hard stop; jobs still unfinished then count as missed.
  int max_rounds = 20000;
  /// Rounds excluded from the steady-state cap-compliance statistic.
  int warmup_rounds = 10;
  std::uint64_t seed = 777;
  /// Fault scenario carried by the degraded GPUs (inactive → clean rack).
  faults::FaultSpec fault;
  /// GPU ids running under `fault`; empty means every chip is healthy.
  std::vector<int> degraded;
  /// Rack-wide thermal scenario. When enabled every node integrates the RC
  /// network (die temperature carries across jobs and cools during idle
  /// epochs) and runs a persistent thermal throttle; disabled (default)
  /// keeps the rack byte-identical to the pre-thermal build.
  thermal::ThermalScenario thermal;
};

struct GpuNodeSummary {
  int gpu_id = 0;
  int jobs_run = 0;
  std::int64_t busy_epochs = 0;
  double energy_j = 0.0;
  double final_cap_w = 0.0;
  bool degraded = false;
};

struct RackResult {
  /// One entry per traffic job, indexed by job id (unfinished jobs keep
  /// completed=false and missed=true).
  std::vector<JobOutcome> jobs;
  int gpus = 0;
  int rounds = 0;
  std::int64_t busy_gpu_epochs = 0;
  std::int64_t total_gpu_epochs = 0;
  int completed = 0;
  int missed_deadlines = 0;  ///< completed late + unfinished
  int unfinished = 0;
  /// First-class sweep column: (late + unfinished) / total jobs.
  double deadline_miss_rate = 0.0;
  /// First-class sweep column: total rack energy (idle floor included)
  /// over completed jobs.
  double energy_per_job_j = 0.0;
  double total_energy_j = 0.0;
  double idle_energy_j = 0.0;
  double mean_rack_power_w = 0.0;
  double max_rack_power_w = 0.0;
  /// Fraction of rounds whose mean rack power exceeded the rack cap.
  double cap_violation_frac = 0.0;
  /// Same, counting only rounds after `warmup_rounds`.
  double steady_violation_frac = 0.0;
  double final_rack_bias = 0.0;
  TimeNs makespan_ns = 0;
  TimeNs p50_latency_ns = 0;
  TimeNs p99_latency_ns = 0;
  faults::FaultCounts fault_counts;
  /// Hottest die temperature across every node and epoch, and total
  /// node-epochs spent throttle-limited (both 0 on a non-thermal rack).
  double peak_temp_c = 0.0;
  std::int64_t throttle_epochs = 0;
  std::vector<GpuNodeSummary> nodes;
};

/// Runs one rack to completion (all jobs served) or `max_rounds`. `pool`
/// may be null (serial) — results are byte-identical either way.
[[nodiscard]] RackResult runRack(const RackSpec& spec,
                                 ThreadPool* pool = nullptr);

}  // namespace ssm::dc
