#include "sched/fleet.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "baselines/flemma.hpp"
#include "baselines/ondemand.hpp"
#include "baselines/pcstall.hpp"
#include "common/check.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/hardened_governor.hpp"
#include "core/ssm_governor.hpp"
#include "engine/replay_backend.hpp"
#include "thermal/thermal_throttle.hpp"

namespace ssm::fleet {

namespace {

/// Salt separating fault-injection streams from every other consumer of the
/// job's sim_seed.
constexpr std::uint64_t kFaultSeedSalt = 0xFA17;

/// True when the sweep's fault axis carries any active scenario — the
/// trigger for the extra JSONL/CSV fields (kept out of clean sweeps so
/// pre-fault output stays byte-identical).
bool faultAxisActive(const SweepSpec& spec) {
  for (const auto& f : spec.faults)
    if (f.active()) return true;
  return false;
}

bool replayMode(const SweepSpec& spec) { return !spec.replay.empty(); }

/// True when the sweep's thermal axis carries any enabled scenario — the
/// trigger for the thermal JSONL/CSV fields, mirroring faultAxisActive.
bool thermalAxisActive(const SweepSpec& spec) {
  for (const auto& t : spec.thermal)
    if (t.enabled) return true;
  return false;
}

/// The cell's workload name: profile name in live mode, the trace's
/// recorded workload in replay mode.
const std::string& workloadName(const SweepSpec& spec, const SweepJob& job) {
  return replayMode(spec) ? spec.replay[job.workload]->workload
                          : spec.workloads[job.workload].name;
}

}  // namespace

namespace {

class StaticFactory final : public GovernorFactory {
 public:
  explicit StaticFactory(VfLevel level) : level_(level) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<StaticGovernor>(level_);
  }

 private:
  VfLevel level_;
};

}  // namespace

std::unique_ptr<GovernorFactory> makeGovernorFactory(
    const std::string& mechanism, const VfTable& vf, double preset,
    const std::shared_ptr<const SsmModel>& model) {
  if (mechanism == "baseline") return nullptr;
  if (mechanism == "ssmdvfs" || mechanism == "ssmdvfs-nocal") {
    if (!model)
      throw DataError("mechanism '" + mechanism + "' needs a trained model");
    SsmGovernorConfig cfg;
    cfg.loss_preset = preset;
    cfg.calibrate = mechanism == "ssmdvfs";
    return std::make_unique<SsmGovernorFactory>(model, cfg);
  }
  if (mechanism == "pcstall") {
    PcstallConfig cfg;
    cfg.loss_preset = preset;
    return std::make_unique<PcstallFactory>(vf, cfg);
  }
  if (mechanism == "flemma") {
    FlemmaConfig cfg;
    cfg.loss_preset = preset;
    return std::make_unique<FlemmaFactory>(vf, cfg);
  }
  if (mechanism == "ondemand") return std::make_unique<OndemandFactory>(vf);
  if (mechanism.rfind("static-", 0) == 0) {
    const int level = std::atoi(mechanism.c_str() + 7);
    return std::make_unique<StaticFactory>(vf.clamp(level));
  }
  throw DataError("unknown mechanism: " + mechanism);
}

std::vector<SweepJob> expandJobs(const SweepSpec& spec) {
  const bool replay = replayMode(spec);
  SSM_CHECK(!replay || spec.workloads.empty(),
            "a sweep is either live (workloads) or replay (traces), not both");
  SSM_CHECK(replay || !spec.workloads.empty(),
            "sweep needs at least one workload");
  SSM_CHECK(!spec.mechanisms.empty(), "sweep needs at least one mechanism");
  SSM_CHECK(!spec.presets.empty(), "sweep needs at least one preset");
  SSM_CHECK(!spec.seeds.empty(), "sweep needs at least one seed");
  SSM_CHECK(!spec.faults.empty(), "sweep needs at least one fault cell");
  SSM_CHECK(!spec.thermal.empty(), "sweep needs at least one thermal cell");
  if (replay) {
    for (const auto& trace : spec.replay)
      SSM_CHECK(trace != nullptr, "replay sweep has a null trace entry");
    SSM_CHECK(!faultAxisActive(spec),
              "fault injection is closed-loop; unsupported in replay sweeps");
    SSM_CHECK(!thermalAxisActive(spec),
              "thermal physics is closed-loop; unsupported in replay sweeps");
  }

  const std::size_t num_workloads =
      replay ? spec.replay.size() : spec.workloads.size();
  std::vector<SweepJob> jobs;
  jobs.reserve(num_workloads * spec.mechanisms.size() * spec.presets.size() *
               spec.seeds.size() * spec.faults.size() * spec.thermal.size());
  for (std::size_t w = 0; w < num_workloads; ++w) {
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m) {
      for (std::size_t p = 0; p < spec.presets.size(); ++p) {
        for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
          for (std::size_t f = 0; f < spec.faults.size(); ++f) {
            for (std::size_t t = 0; t < spec.thermal.size(); ++t) {
              SweepJob job;
              job.index = jobs.size();
              job.workload = w;
              job.mechanism = m;
              job.preset = p;
              job.seed = s;
              job.fault = f;
              job.thermal = t;
              // Independent stream per (seed, workload); mechanism, preset,
              // fault and thermal deliberately do NOT enter, so a faulted or
              // thermally-limited cell runs the very same program as its
              // clean/baseline siblings.
              job.sim_seed = Rng(spec.seeds[s]).fork(w).nextU64();
              jobs.push_back(job);
            }
          }
        }
      }
    }
  }
  return jobs;
}

FleetRunner::FleetRunner(const SweepSpec& spec, ThreadPool& pool)
    : spec_(spec), pool_(pool), jobs_(expandJobs(spec)) {
  // Fail fast on an unsatisfiable spec (unknown mechanism, missing model)
  // before any simulation time is spent.
  for (const auto& mech : spec_.mechanisms)
    static_cast<void>(makeGovernorFactory(mech, spec_.vf, 0.10, spec_.model));
}

SweepResult FleetRunner::runReplayJob(const SweepJob& job) const {
  const engine::EpochTrace& trace = *spec_.replay[job.workload];
  const std::string& mech = spec_.mechanisms[job.mechanism];
  const double preset = spec_.presets[job.preset];

  SweepResult out;
  out.job = job;
  out.baseline = trace.recorded;

  // "baseline" replays the static-default policy (makeGovernorFactory maps
  // it to no governor, which has no open-loop meaning): its agreement tells
  // how often the recorded policy sat at the default level.
  const auto factory =
      makeGovernorFactory(mech, trace.vf, preset, spec_.model);
  const StaticFactory static_default(trace.vf.defaultLevel());
  const GovernorFactory& chosen =
      factory != nullptr ? *factory
                         : static_cast<const GovernorFactory&>(static_default);

  GovernorModeLog mode_log;
  engine::ReplayOptions opts;
  opts.harden = spec_.harden;
  opts.mode_log = spec_.harden ? &mode_log : nullptr;
  const engine::ReplayReport report =
      engine::replayTrace(trace, chosen, mech, opts);
  out.governed = report.result;
  out.governed.mechanism = mech;
  out.agreement = report.agreement;
  out.decisions = report.decisions;
  out.matches = report.matches;
  out.fallbacks = mode_log.fallbacks();
  out.recoveries = mode_log.recoveries();
  return out;
}

SweepResult FleetRunner::runJob(const SweepJob& job) const {
  if (replayMode(spec_)) return runReplayJob(job);
  const KernelProfile& kernel = spec_.workloads[job.workload];
  const std::string& mech = spec_.mechanisms[job.mechanism];
  const double preset = spec_.presets[job.preset];

  Gpu machine(spec_.gpu, spec_.vf, kernel, job.sim_seed,
              ChipPowerModel(spec_.gpu.num_clusters));

  // An enabled thermal cell attaches physics to the machine BEFORE it is
  // copied into the runs, so baseline and governed both integrate the RC
  // network and leakage feedback. Each run gets its own throttle instance
  // (the state machine is per-run, like the governors).
  const thermal::ThermalScenario& scenario = spec_.thermal[job.thermal];
  if (scenario.enabled) machine.attachThermal(scenario.params);
  const int max_level = static_cast<int>(spec_.vf.defaultLevel());
  std::optional<thermal::ThermalThrottle> baseline_throttle;
  std::optional<thermal::ThermalThrottle> governed_throttle;
  if (scenario.enabled) {
    baseline_throttle.emplace(scenario.throttle, spec_.gpu.num_clusters,
                              max_level);
    governed_throttle.emplace(scenario.throttle, spec_.gpu.num_clusters,
                              max_level);
  }

  SweepResult out;
  out.job = job;
  out.baseline = runBaseline(machine, spec_.max_time_ns,
                             baseline_throttle ? &*baseline_throttle
                                               : nullptr);
  out.baseline.workload = kernel.name;

  // Only the governed run sees faults: the baseline stays the clean
  // reference that overshoot/EDP deltas are measured against. The injector
  // seed is forked off the job's coordinates (never thread identity), so
  // any --jobs value replays the same fault pattern.
  const faults::FaultSpec& fault_spec = spec_.faults[job.fault];
  std::unique_ptr<faults::FaultInjector> injector;
  if (fault_spec.active())
    injector = std::make_unique<faults::FaultInjector>(
        fault_spec,
        Rng(job.sim_seed).fork(kFaultSeedSalt).fork(job.fault).nextU64());

  const auto factory =
      makeGovernorFactory(mech, spec_.vf, preset, spec_.model);
  GovernorModeLog mode_log;
  thermal::ThermalThrottle* throttle =
      governed_throttle ? &*governed_throttle : nullptr;
  if (factory != nullptr && spec_.harden) {
    const HardenedGovernorFactory hardened(*factory, spec_.vf,
                                           HardenedConfig{}, &mode_log);
    out.governed = runWithGovernor(machine, hardened, mech, spec_.max_time_ns,
                                   nullptr, injector.get(), throttle);
  } else {
    out.governed = factory ? runWithGovernor(machine, *factory, mech,
                                             spec_.max_time_ns, nullptr,
                                             injector.get(), throttle)
                           : out.baseline;
  }
  out.governed.workload = kernel.name;
  out.governed.mechanism = mech;
  out.peak_temp_c = out.governed.peak_temp_c;
  out.throttle_epochs = out.governed.throttle_epochs;
  if (injector != nullptr) out.fault_counts = injector->counts();
  out.fallbacks = mode_log.fallbacks();
  out.recoveries = mode_log.recoveries();
  return out;
}

std::vector<SweepResult> FleetRunner::run(const ProgressFn& progress) const {
  std::vector<SweepResult> results(jobs_.size());
  std::mutex mu;
  std::size_t done = 0;
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    SweepResult r = runJob(jobs_[i]);
    std::lock_guard<std::mutex> lk(mu);
    results[i] = std::move(r);
    ++done;
    if (progress) progress(done, jobs_.size());
  });
  return results;
}

std::size_t FleetRunner::runJsonl(std::ostream& os,
                                  const ProgressFn& progress) const {
  // Ordered streaming collector: lines buffer until their prefix is
  // complete, then flush. Single writer (this mutex) touches `os`.
  std::mutex mu;
  std::map<std::size_t, std::string> ready;
  std::size_t next = 0;
  std::size_t done = 0;
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    std::string line = toJsonLine(spec_, runJob(jobs_[i]));
    std::lock_guard<std::mutex> lk(mu);
    ready.emplace(i, std::move(line));
    while (!ready.empty() && ready.begin()->first == next) {
      os << ready.begin()->second << '\n';
      ready.erase(ready.begin());
      ++next;
    }
    ++done;
    if (progress) progress(done, jobs_.size());
  });
  SSM_CHECK(next == jobs_.size(), "JSONL collector lost lines");
  return next;
}

namespace {

void emitRun(JsonWriter& w, const char* name, const RunResult& r) {
  w.beginObject(name)
      .value("exec_time_us", static_cast<double>(r.exec_time_ns) / 1e3)
      .value("energy_mj", r.energy_j * 1e3)
      .value("edp_uj_s", r.edp * 1e6)
      .value("instructions", static_cast<std::int64_t>(r.instructions))
      .value("epochs", r.epochs)
      .value("mean_power_w", r.mean_power_w)
      .beginArray("level_histogram");
  for (double h : r.level_histogram) w.value(h);
  w.endArray().endObject();
}

}  // namespace

std::string toJsonLine(const SweepSpec& spec, const SweepResult& r) {
  std::ostringstream ss;
  JsonWriter w(ss);
  w.beginObject()
      .value("workload", workloadName(spec, r.job))
      .value("mechanism", spec.mechanisms[r.job.mechanism])
      .value("preset", spec.presets[r.job.preset])
      .value("seed", static_cast<std::int64_t>(spec.seeds[r.job.seed]));
  // Replay fields appear only in replay mode; fault/hardening fields only
  // when the sweep opts in. Clean live sweeps keep the exact pre-fault,
  // pre-engine JSONL schema, byte for byte.
  if (replayMode(spec)) {
    w.value("replay_of", spec.replay[r.job.workload]->mechanism)
        .value("agreement", r.agreement)
        .value("decisions", r.decisions)
        .value("matches", r.matches);
  }
  if (faultAxisActive(spec)) {
    const faults::FaultSpec& fs = spec.faults[r.job.fault];
    w.value("faults", fs.print());
    w.beginObject("fault_counts")
        .value("noise", r.fault_counts.noise)
        .value("dropout", r.fault_counts.dropout)
        .value("delay", r.fault_counts.delay)
        .value("failed", r.fault_counts.failed)
        .value("stuck", r.fault_counts.stuck)
        .value("jitter", r.fault_counts.jitter)
        .value("heatsoak", r.fault_counts.heatsoak)
        .value("tsensor", r.fault_counts.tsensor)
        .value("tjolt", r.fault_counts.tjolt)
        .value("total", r.fault_counts.total())
        .endObject();
  }
  if (thermalAxisActive(spec)) {
    w.value("thermal", spec.thermal[r.job.thermal].print())
        .value("peak_temp_c", r.peak_temp_c)
        .value("throttle_epochs", r.throttle_epochs);
  }
  if (spec.harden)
    w.value("fallbacks", r.fallbacks).value("recoveries", r.recoveries);
  w.value("edp_ratio", r.baseline.edp > 0.0
                              ? r.governed.edp / r.baseline.edp
                              : 1.0)
      .value("latency_ratio",
             r.baseline.exec_time_ns > 0
                 ? static_cast<double>(r.governed.exec_time_ns) /
                       static_cast<double>(r.baseline.exec_time_ns)
                 : 1.0);
  emitRun(w, "baseline", r.baseline);
  emitRun(w, "governed", r.governed);
  w.endObject();
  return std::move(ss).str();
}

void writeCsv(const SweepSpec& spec, const std::vector<SweepResult>& results,
              std::ostream& os) {
  // Conditional columns mirror the JSONL rule: clean, unhardened sweeps
  // keep the exact pre-fault schema.
  const bool with_faults = faultAxisActive(spec);
  const bool with_thermal = thermalAxisActive(spec);
  const bool replay = replayMode(spec);
  os << "workload,mechanism,preset,seed,exec_time_us,energy_mj,edp_uj_s,"
        "epochs,edp_ratio,latency_ratio";
  if (replay) os << ",replay_of,agreement,decisions,matches";
  if (with_faults) os << ",faults,injected_faults";
  if (with_thermal) os << ",thermal,peak_temp_c,throttle_epochs";
  if (spec.harden) os << ",fallbacks,recoveries";
  os << '\n';
  std::ostringstream num;
  num.precision(17);
  for (const auto& r : results) {
    num.str({});
    num << spec.presets[r.job.preset] << ','
        << spec.seeds[r.job.seed] << ','
        << static_cast<double>(r.governed.exec_time_ns) / 1e3 << ','
        << r.governed.energy_j * 1e3 << ',' << r.governed.edp * 1e6 << ','
        << r.governed.epochs << ','
        << (r.baseline.edp > 0.0 ? r.governed.edp / r.baseline.edp : 1.0)
        << ','
        << (r.baseline.exec_time_ns > 0
                ? static_cast<double>(r.governed.exec_time_ns) /
                      static_cast<double>(r.baseline.exec_time_ns)
                : 1.0);
    if (replay) {
      num << ',' << spec.replay[r.job.workload]->mechanism << ','
          << r.agreement << ',' << r.decisions << ',' << r.matches;
    }
    if (with_faults) {
      // The spec's canonical form contains ','; quote it per CSV rules
      // (print() never emits a quote character).
      num << ",\"" << spec.faults[r.job.fault].print() << "\","
          << r.fault_counts.total();
    }
    if (with_thermal) {
      // The scenario's canonical form may contain ','; quote like faults.
      num << ",\"" << spec.thermal[r.job.thermal].print() << "\","
          << r.peak_temp_c << ',' << r.throttle_epochs;
    }
    if (spec.harden) num << ',' << r.fallbacks << ',' << r.recoveries;
    os << workloadName(spec, r.job) << ','
       << spec.mechanisms[r.job.mechanism] << ',' << num.str() << '\n';
  }
}

}  // namespace ssm::fleet
