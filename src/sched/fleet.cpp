#include "sched/fleet.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "baselines/flemma.hpp"
#include "baselines/ondemand.hpp"
#include "baselines/pcstall.hpp"
#include "common/check.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "core/ssm_governor.hpp"

namespace ssm::fleet {

namespace {

class StaticFactory final : public GovernorFactory {
 public:
  explicit StaticFactory(VfLevel level) : level_(level) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<StaticGovernor>(level_);
  }

 private:
  VfLevel level_;
};

}  // namespace

std::unique_ptr<GovernorFactory> makeGovernorFactory(
    const std::string& mechanism, const VfTable& vf, double preset,
    const std::shared_ptr<const SsmModel>& model) {
  if (mechanism == "baseline") return nullptr;
  if (mechanism == "ssmdvfs" || mechanism == "ssmdvfs-nocal") {
    if (!model)
      throw DataError("mechanism '" + mechanism + "' needs a trained model");
    SsmGovernorConfig cfg;
    cfg.loss_preset = preset;
    cfg.calibrate = mechanism == "ssmdvfs";
    return std::make_unique<SsmGovernorFactory>(model, cfg);
  }
  if (mechanism == "pcstall") {
    PcstallConfig cfg;
    cfg.loss_preset = preset;
    return std::make_unique<PcstallFactory>(vf, cfg);
  }
  if (mechanism == "flemma") {
    FlemmaConfig cfg;
    cfg.loss_preset = preset;
    return std::make_unique<FlemmaFactory>(vf, cfg);
  }
  if (mechanism == "ondemand") return std::make_unique<OndemandFactory>(vf);
  if (mechanism.rfind("static-", 0) == 0) {
    const int level = std::atoi(mechanism.c_str() + 7);
    return std::make_unique<StaticFactory>(vf.clamp(level));
  }
  throw DataError("unknown mechanism: " + mechanism);
}

std::vector<SweepJob> expandJobs(const SweepSpec& spec) {
  SSM_CHECK(!spec.workloads.empty(), "sweep needs at least one workload");
  SSM_CHECK(!spec.mechanisms.empty(), "sweep needs at least one mechanism");
  SSM_CHECK(!spec.presets.empty(), "sweep needs at least one preset");
  SSM_CHECK(!spec.seeds.empty(), "sweep needs at least one seed");

  std::vector<SweepJob> jobs;
  jobs.reserve(spec.workloads.size() * spec.mechanisms.size() *
               spec.presets.size() * spec.seeds.size());
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t m = 0; m < spec.mechanisms.size(); ++m) {
      for (std::size_t p = 0; p < spec.presets.size(); ++p) {
        for (std::size_t s = 0; s < spec.seeds.size(); ++s) {
          SweepJob job;
          job.index = jobs.size();
          job.workload = w;
          job.mechanism = m;
          job.preset = p;
          job.seed = s;
          // Independent stream per (seed, workload); mechanism and preset
          // deliberately do NOT enter, so their baselines coincide.
          job.sim_seed = Rng(spec.seeds[s]).fork(w).nextU64();
          jobs.push_back(job);
        }
      }
    }
  }
  return jobs;
}

FleetRunner::FleetRunner(const SweepSpec& spec, ThreadPool& pool)
    : spec_(spec), pool_(pool), jobs_(expandJobs(spec)) {
  // Fail fast on an unsatisfiable spec (unknown mechanism, missing model)
  // before any simulation time is spent.
  for (const auto& mech : spec_.mechanisms)
    static_cast<void>(makeGovernorFactory(mech, spec_.vf, 0.10, spec_.model));
}

SweepResult FleetRunner::runJob(const SweepJob& job) const {
  const KernelProfile& kernel = spec_.workloads[job.workload];
  const std::string& mech = spec_.mechanisms[job.mechanism];
  const double preset = spec_.presets[job.preset];

  const Gpu machine(spec_.gpu, spec_.vf, kernel, job.sim_seed,
                    ChipPowerModel(spec_.gpu.num_clusters));

  SweepResult out;
  out.job = job;
  out.baseline = runBaseline(machine, spec_.max_time_ns);
  out.baseline.workload = kernel.name;

  const auto factory =
      makeGovernorFactory(mech, spec_.vf, preset, spec_.model);
  out.governed = factory ? runWithGovernor(machine, *factory, mech,
                                           spec_.max_time_ns)
                         : out.baseline;
  out.governed.workload = kernel.name;
  out.governed.mechanism = mech;
  return out;
}

std::vector<SweepResult> FleetRunner::run(const ProgressFn& progress) const {
  std::vector<SweepResult> results(jobs_.size());
  std::mutex mu;
  std::size_t done = 0;
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    SweepResult r = runJob(jobs_[i]);
    std::lock_guard<std::mutex> lk(mu);
    results[i] = std::move(r);
    ++done;
    if (progress) progress(done, jobs_.size());
  });
  return results;
}

std::size_t FleetRunner::runJsonl(std::ostream& os,
                                  const ProgressFn& progress) const {
  // Ordered streaming collector: lines buffer until their prefix is
  // complete, then flush. Single writer (this mutex) touches `os`.
  std::mutex mu;
  std::map<std::size_t, std::string> ready;
  std::size_t next = 0;
  std::size_t done = 0;
  pool_.parallelFor(jobs_.size(), [&](std::size_t i) {
    std::string line = toJsonLine(spec_, runJob(jobs_[i]));
    std::lock_guard<std::mutex> lk(mu);
    ready.emplace(i, std::move(line));
    while (!ready.empty() && ready.begin()->first == next) {
      os << ready.begin()->second << '\n';
      ready.erase(ready.begin());
      ++next;
    }
    ++done;
    if (progress) progress(done, jobs_.size());
  });
  SSM_CHECK(next == jobs_.size(), "JSONL collector lost lines");
  return next;
}

namespace {

void emitRun(JsonWriter& w, const char* name, const RunResult& r) {
  w.beginObject(name)
      .value("exec_time_us", static_cast<double>(r.exec_time_ns) / 1e3)
      .value("energy_mj", r.energy_j * 1e3)
      .value("edp_uj_s", r.edp * 1e6)
      .value("instructions", static_cast<std::int64_t>(r.instructions))
      .value("epochs", r.epochs)
      .value("mean_power_w", r.mean_power_w)
      .beginArray("level_histogram");
  for (double h : r.level_histogram) w.value(h);
  w.endArray().endObject();
}

}  // namespace

std::string toJsonLine(const SweepSpec& spec, const SweepResult& r) {
  std::ostringstream ss;
  JsonWriter w(ss);
  w.beginObject()
      .value("workload", spec.workloads[r.job.workload].name)
      .value("mechanism", spec.mechanisms[r.job.mechanism])
      .value("preset", spec.presets[r.job.preset])
      .value("seed", static_cast<std::int64_t>(spec.seeds[r.job.seed]))
      .value("edp_ratio", r.baseline.edp > 0.0
                              ? r.governed.edp / r.baseline.edp
                              : 1.0)
      .value("latency_ratio",
             r.baseline.exec_time_ns > 0
                 ? static_cast<double>(r.governed.exec_time_ns) /
                       static_cast<double>(r.baseline.exec_time_ns)
                 : 1.0);
  emitRun(w, "baseline", r.baseline);
  emitRun(w, "governed", r.governed);
  w.endObject();
  return std::move(ss).str();
}

void writeCsv(const SweepSpec& spec, const std::vector<SweepResult>& results,
              std::ostream& os) {
  os << "workload,mechanism,preset,seed,exec_time_us,energy_mj,edp_uj_s,"
        "epochs,edp_ratio,latency_ratio\n";
  std::ostringstream num;
  num.precision(17);
  for (const auto& r : results) {
    num.str({});
    num << spec.presets[r.job.preset] << ','
        << spec.seeds[r.job.seed] << ','
        << static_cast<double>(r.governed.exec_time_ns) / 1e3 << ','
        << r.governed.energy_j * 1e3 << ',' << r.governed.edp * 1e6 << ','
        << r.governed.epochs << ','
        << (r.baseline.edp > 0.0 ? r.governed.edp / r.baseline.edp : 1.0)
        << ','
        << (r.baseline.exec_time_ns > 0
                ? static_cast<double>(r.governed.exec_time_ns) /
                      static_cast<double>(r.baseline.exec_time_ns)
                : 1.0);
    os << spec.workloads[r.job.workload].name << ','
       << spec.mechanisms[r.job.mechanism] << ',' << num.str() << '\n';
  }
}

}  // namespace ssm::fleet
