// Fleet execution: sharded simulation sweeps on the work-stealing pool.
//
// A sweep is the cartesian product workload × mechanism × preset × seed ×
// fault scenario — the shape of every §V experiment and of the ROADMAP's
// production sweeps, plus the robustness matrix of bench_faults.
// Each cell is one self-contained job: it builds its own Gpu, its own
// governor factory and (when tracing) its own recorder, shares only
// immutable inputs (VfTable, GpuConfig, a trained const SsmModel), and
// derives its simulation seed from a deterministic Rng fork keyed on the
// sweep coordinates — never on thread identity or completion order.
// Results are therefore byte-identical for any --jobs value; only the
// wall clock changes.
//
// Output is ordered: the JSONL stream emits line j only after lines
// 0..j-1, no matter which worker finished first.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/ssm_model.hpp"
#include "engine/trace_io.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_spec.hpp"
#include "gpusim/runner.hpp"
#include "sched/thread_pool.hpp"
#include "thermal/thermal_spec.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm::fleet {

/// The cartesian sweep specification. Workloads are resolved profiles so
/// callers control registry vs profile-file lookup.
///
/// A sweep runs in exactly one of two modes:
///   * live   — `workloads` is non-empty: every cell simulates its program
///     on the cycle-level Gpu (the pre-engine behaviour, byte-identical);
///   * replay — `replay` is non-empty (and `workloads` empty): every cell
///     streams one recorded trace through the mechanism's governor open-loop
///     (engine::replayTrace) at memory-bandwidth speed, reporting how often
///     its decisions agree with the recorded policy's. Fault injection is
///     closed-loop and therefore rejected in replay sweeps.
struct SweepSpec {
  std::vector<KernelProfile> workloads;
  /// Recorded traces substituting the workload axis (shared, immutable:
  /// many jobs replay the same trace concurrently). All entries non-null.
  std::vector<std::shared_ptr<const engine::EpochTrace>> replay;
  std::vector<std::string> mechanisms;
  std::vector<double> presets = {0.10};
  std::vector<std::uint64_t> seeds = {777};
  /// Fault axis: one cell per scenario. The default single inactive spec
  /// reproduces the pre-fault sweep byte-for-byte.
  std::vector<faults::FaultSpec> faults = {{}};
  /// Thermal axis: one cell per scenario. The default single disabled
  /// scenario reproduces the pre-thermal sweep byte-for-byte. Thermal
  /// physics is closed-loop (temperature feeds back into leakage power),
  /// so an active axis is rejected in replay sweeps, like faults.
  std::vector<thermal::ThermalScenario> thermal = {{}};
  /// Wrap every governed run in the HardenedGovernor decorator and report
  /// its fallback/recovery counts.
  bool harden = false;
  GpuConfig gpu;
  VfTable vf = VfTable::titanX();
  TimeNs max_time_ns = 5 * kNsPerMs;
  /// Required when any mechanism is ssmdvfs / ssmdvfs-nocal.
  std::shared_ptr<const SsmModel> model;
};

/// One cell of the sweep, in expansion order.
struct SweepJob {
  std::size_t index = 0;  ///< position in the expanded job list
  std::size_t workload = 0;
  std::size_t mechanism = 0;
  std::size_t preset = 0;
  std::size_t seed = 0;
  std::size_t fault = 0;
  std::size_t thermal = 0;
  /// Simulator seed: forked from the sweep seed by workload coordinate,
  /// so one (workload, seed) pair simulates identically under every
  /// mechanism, preset, fault and thermal scenario (baselines line up
  /// across the sweep and a faulted cell is comparable to its clean
  /// sibling).
  std::uint64_t sim_seed = 0;
};

struct SweepResult {
  SweepJob job;
  /// Live mode: the fault-free static-default run. Replay mode: the
  /// recorded run's RunResult (the reference the replay is measured against).
  RunResult baseline;
  RunResult governed;
  /// Injected-fault tally of the governed run (all zero for clean cells).
  faults::FaultCounts fault_counts;
  /// Hardened-governor mode transitions (0 unless SweepSpec::harden).
  int fallbacks = 0;
  int recoveries = 0;
  /// Replay-mode agreement with the recorded policy (1.0 in live mode).
  double agreement = 1.0;
  std::int64_t decisions = 0;
  std::int64_t matches = 0;
  /// Hottest die temperature of the governed run and how many of its
  /// epochs ran throttle-limited (both 0 when the cell's thermal scenario
  /// is disabled).
  double peak_temp_c = 0.0;
  int throttle_epochs = 0;
};

/// Expands the cartesian product in deterministic order: workload-major,
/// then mechanism, preset, seed, fault, thermal. Throws ContractError on an
/// empty axis.
[[nodiscard]] std::vector<SweepJob> expandJobs(const SweepSpec& spec);

/// Builds the governor factory for a mechanism name (the `run`/`sweep`
/// vocabulary: baseline, static-<L>, ssmdvfs, ssmdvfs-nocal, pcstall,
/// flemma, ondemand). Returns nullptr for "baseline" (no governor);
/// throws DataError for unknown names or a missing model.
[[nodiscard]] std::unique_ptr<GovernorFactory> makeGovernorFactory(
    const std::string& mechanism, const VfTable& vf, double preset,
    const std::shared_ptr<const SsmModel>& model);

/// Called under the collector lock as jobs complete, in completion order.
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

class FleetRunner {
 public:
  /// `spec` must outlive the runner. Jobs execute on `pool`.
  FleetRunner(const SweepSpec& spec, ThreadPool& pool);

  /// Runs every job; returns results in job-index order.
  [[nodiscard]] std::vector<SweepResult> run(
      const ProgressFn& progress = {}) const;

  /// Runs every job, streaming one JSON object per line into `os` in
  /// job-index order as soon as the completed prefix allows. Returns the
  /// number of lines written.
  std::size_t runJsonl(std::ostream& os, const ProgressFn& progress = {}) const;

  [[nodiscard]] const std::vector<SweepJob>& jobs() const noexcept {
    return jobs_;
  }

 private:
  [[nodiscard]] SweepResult runJob(const SweepJob& job) const;
  [[nodiscard]] SweepResult runReplayJob(const SweepJob& job) const;

  const SweepSpec& spec_;
  ThreadPool& pool_;
  std::vector<SweepJob> jobs_;
};

/// One compact JSON object (single line, no trailing newline) per result.
[[nodiscard]] std::string toJsonLine(const SweepSpec& spec,
                                     const SweepResult& r);

/// CSV export: header + one row per result, in the given order.
void writeCsv(const SweepSpec& spec, const std::vector<SweepResult>& results,
              std::ostream& os);

}  // namespace ssm::fleet
