#include "sched/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/check.hpp"

namespace ssm {

namespace {

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

/// Which pool (if any) the current thread belongs to, and its lane index.
struct WorkerTls {
  const void* pool = nullptr;
  std::size_t index = kNoWorker;
};
thread_local WorkerTls t_worker;

}  // namespace

ThreadPool::ThreadPool(int jobs) : jobs_(jobs) {
  SSM_CHECK(jobs >= 1, "ThreadPool needs at least one job lane");
  if (jobs_ == 1) return;  // inline mode: no threads, no queues
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  // Lane 0 is the caller (it helps inside waitAll/parallelFor); lanes
  // 1..jobs-1 are dedicated workers.
  for (int i = 1; i < jobs_; ++i)
    threads_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  if (jobs_ == 1) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::defaultJobs() {
  if (const char* env = std::getenv("SSMDVFS_JOBS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

void ThreadPool::recordException() {
  std::lock_guard<std::mutex> lk(err_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::submit(std::function<void()> task) {
  if (jobs_ == 1) {
    try {
      task();
    } catch (...) {
      recordException();
    }
    return;
  }
  // pending_ goes up BEFORE the task becomes stealable: a thief completing
  // the task must never decrement past a not-yet-counted submission.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  const std::size_t self =
      t_worker.pool == this ? t_worker.index : kNoWorker;
  if (self != kNoWorker) {
    // A task spawning subtasks keeps them local: the owner pops the back
    // (depth-first, cache-warm), thieves steal the front.
    std::lock_guard<std::mutex> lk(workers_[self]->mu);
    workers_[self]->deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    injector_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::popTask(std::size_t self, std::function<void()>* out) {
  if (self != kNoWorker) {
    std::lock_guard<std::mutex> lk(workers_[self]->mu);
    if (!workers_[self]->deque.empty()) {
      *out = std::move(workers_[self]->deque.back());
      workers_[self]->deque.pop_back();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!injector_.empty()) {
      *out = std::move(injector_.front());
      injector_.pop_front();
      return true;
    }
  }
  const std::size_t n = workers_.size();
  const std::size_t start = self != kNoWorker ? self + 1 : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    std::lock_guard<std::mutex> lk(workers_[victim]->mu);
    if (!workers_[victim]->deque.empty()) {
      *out = std::move(workers_[victim]->deque.front());
      workers_[victim]->deque.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::tryRunOne(std::size_t self) {
  std::function<void()> task;
  if (!popTask(self, &task)) return false;
  try {
    task();
  } catch (...) {
    recordException();
  }
  bool idle = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    --pending_;
    idle = pending_ == 0;
  }
  if (idle) idle_cv_.notify_all();
  return true;
}

void ThreadPool::workerLoop(std::size_t self) {
  t_worker.pool = this;
  t_worker.index = self;
  for (;;) {
    if (tryRunOne(self)) continue;
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_) return;
    // Queues looked empty just now; sleep until a submit arrives. The
    // timeout re-scans sibling deques, which this cv cannot observe.
    work_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
}

void ThreadPool::waitAll() {
  if (jobs_ > 1) {
    const std::size_t self =
        t_worker.pool == this ? t_worker.index : kNoWorker;
    for (;;) {
      if (tryRunOne(self)) continue;
      std::unique_lock<std::mutex> lk(mu_);
      if (pending_ == 0) break;
      idle_cv_.wait_for(lk, std::chrono::milliseconds(1));
      if (pending_ == 0) break;
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = n;

  for (std::size_t i = 0; i < n; ++i) {
    submit([batch, &body, i] {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(batch->mu);
        if (!batch->error) batch->error = std::current_exception();
      }
      bool done = false;
      {
        std::lock_guard<std::mutex> lk(batch->mu);
        done = --batch->remaining == 0;
      }
      if (done) batch->done_cv.notify_all();
    });
  }

  // Help until this batch drains. tryRunOne may execute tasks from other
  // batches too — they are pool work all the same.
  const std::size_t self =
      t_worker.pool == this ? t_worker.index : kNoWorker;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(batch->mu);
      if (batch->remaining == 0) break;
    }
    if (tryRunOne(self)) continue;
    std::unique_lock<std::mutex> lk(batch->mu);
    if (batch->remaining == 0) break;
    batch->done_cv.wait_for(lk, std::chrono::milliseconds(1));
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace ssm
