// Work-stealing thread pool: the one sanctioned home for threads.
//
// Every parallel path in the repo (sweeps, datagen, bench harnesses) goes
// through this pool; raw std::thread/std::async elsewhere is a lint error
// (rule raw-thread). Concentrating concurrency here keeps the determinism
// contract auditable: tasks receive an explicit index, write to
// pre-allocated slots, and derive any randomness from ssm::Rng streams
// forked per index — never from thread identity or completion order.
//
// Topology: each worker owns a deque (owner pushes/pops the back, thieves
// steal the front) and external submissions land in a global injector
// queue. A worker that runs dry drains the injector, then steals from
// siblings. Blocked joiners (waitAll / parallelFor) help execute pending
// tasks instead of sleeping, so nested parallelFor from inside a task
// cannot deadlock the pool.
//
// jobs == 1 is the degenerate pool: no threads are spawned and every task
// runs inline at the submission point, which makes `--jobs 1` behave
// exactly like the historical serial code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>  // ssm-lint: allow(raw-thread) — the pool IS the sanctioned home
#include <vector>

namespace ssm {

class ThreadPool {
 public:
  /// Spawns `jobs - 1` worker threads (the caller participates as the
  /// remaining lane via waitAll/parallelFor helping). jobs must be >= 1;
  /// jobs == 1 runs everything inline.
  explicit ThreadPool(int jobs);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The configured parallelism (the `jobs` constructor argument).
  [[nodiscard]] int jobCount() const noexcept { return jobs_; }

  /// Enqueues one task. Thread-safe; may be called from inside a task
  /// (it then lands on the calling worker's own deque).
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished, executing
  /// pending tasks on the calling thread while it waits. Rethrows the
  /// first exception any task threw since the last waitAll().
  void waitAll();

  /// Runs body(0..n-1) across the pool and returns when all calls are
  /// done. The calling thread helps, so this may be invoked from inside a
  /// task (nested parallelism). Rethrows the first exception thrown by
  /// any iteration. Iterations must not assume any execution order.
  void parallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  /// Default parallelism for CLI `--jobs`: the SSMDVFS_JOBS environment
  /// variable when set (>= 1), else std::thread::hardware_concurrency().
  [[nodiscard]] static int defaultJobs();

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;
    std::mutex mu;
  };

  void workerLoop(std::size_t self);
  /// Runs one pending task if any is available. Returns false when every
  /// queue was empty at the time of the scan.
  bool tryRunOne(std::size_t self);
  [[nodiscard]] bool popTask(std::size_t self, std::function<void()>* out);
  void recordException();

  int jobs_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;  // ssm-lint: allow(raw-thread)

  std::deque<std::function<void()>> injector_;
  std::mutex mu_;                  ///< guards injector_, stop_, wakeups
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;        ///< queued + running tasks (under mu_)
  bool stop_ = false;

  std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace ssm
