#include "datagen/generator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sched/thread_pool.hpp"

namespace ssm {

DataGenerator::DataGenerator(GpuConfig gpu_cfg, VfTable vf, GenConfig gen_cfg)
    : gpu_cfg_(gpu_cfg), vf_(std::move(vf)), gen_(gen_cfg) {
  SSM_CHECK(gen_.epochs_per_breakpoint >= 1);
  SSM_CHECK(gen_.horizon_epochs >= 2,
            "horizon must cover feature + scaling windows");
  SSM_CHECK(gen_.clusters_sampled >= 1);
  SSM_CHECK(gen_.runs_per_workload >= 1);
}

namespace {

/// Replays the collection horizon from `snapshot` with the scaling window
/// at `level`; returns the time to complete `target_insts` of work (relative
/// to the snapshot) and the per-cluster scaling-window observations.
struct ReplayOutcome {
  double t_f_ns = 0.0;
  bool valid = false;
  GpuEpochReport feature_report;
  GpuEpochReport scaling_report;
};

ReplayOutcome replayHorizon(const Gpu& snapshot, VfLevel feature_level,
                            VfLevel scaling_level, VfLevel default_level,
                            std::int64_t target_insts, int horizon_epochs,
                            int max_extra_epochs) {
  ReplayOutcome out;
  Gpu rep = snapshot;
  const TimeNs t_b = rep.nowNs();
  const TimeNs epoch_ns = rep.config().epoch_ns;

  out.feature_report = rep.runEpochUniform(feature_level);
  out.scaling_report = rep.runEpochUniform(scaling_level);

  std::int64_t insts = rep.totalInstructions();
  TimeNs t_end = rep.nowNs();
  if (insts >= target_insts) {
    // The excursion was at (or effectively at) full speed: the work landed
    // inside the scaling window. Interpolate within it.
    const std::int64_t at_start =
        insts - rep.lastEpochInstructions();
    const double frac =
        rep.lastEpochInstructions() > 0
            ? static_cast<double>(target_insts - at_start) /
                  static_cast<double>(rep.lastEpochInstructions())
            : 1.0;
    out.t_f_ns = static_cast<double>(t_end - epoch_ns - t_b) +
                 frac * static_cast<double>(epoch_ns);
    out.valid = true;
    return out;
  }

  const int budget = horizon_epochs + max_extra_epochs;
  for (int e = 2; e < budget; ++e) {
    const std::int64_t before = insts;
    rep.runEpochUniform(default_level);
    insts = rep.totalInstructions();
    t_end = rep.nowNs();
    if (insts >= target_insts) {
      const std::int64_t gained = insts - before;
      const double frac =
          gained > 0
              ? static_cast<double>(target_insts - before) /
                    static_cast<double>(gained)
              : 1.0;
      out.t_f_ns = static_cast<double>(t_end - epoch_ns - t_b) +
                   frac * static_cast<double>(epoch_ns);
      out.valid = true;
      return out;
    }
    if (rep.allDone()) break;  // retired without reaching the target work
  }
  return out;  // invalid: work could not be matched within the budget
}

}  // namespace

Dataset DataGenerator::generateForWorkload(const KernelProfile& kernel,
                                           std::uint64_t seed,
                                           int feature_phase,
                                           ThreadPool* pool) const {
  Dataset out;
  const VfLevel default_level = vf_.defaultLevel();
  const int num_levels = static_cast<int>(vf_.size());
  const TimeNs epoch_ns = gpu_cfg_.epoch_ns;

  // Feature-window level schedule: alternate ends of the table first
  // (default, min, next-to-default, …) so even a program with two or three
  // breakpoints yields feature rows at the levels the runtime visits most.
  std::vector<VfLevel> level_order;
  level_order.reserve(static_cast<std::size_t>(num_levels));
  for (int i = 0; i < num_levels; ++i)
    level_order.push_back(i % 2 == 0 ? num_levels - 1 - i / 2 : i / 2);

  Gpu cursor(gpu_cfg_, vf_, kernel, seed,
             ChipPowerModel(gpu_cfg_.num_clusters));

  const int stride = std::max(
      1, gpu_cfg_.num_clusters / std::max(1, gen_.clusters_sampled));

  int breakpoint_index = 0;
  while (!cursor.allDone() && cursor.nowNs() < gen_.max_program_ns) {
    // Feature-window level for this breakpoint (default, or cycling through
    // the table so training covers the runtime counter distribution).
    const VfLevel feature_level =
        gen_.vary_feature_level
            ? level_order[static_cast<std::size_t>(
                  (breakpoint_index + feature_phase) % num_levels)]
            : default_level;
    ++breakpoint_index;

    // --- Reference pass: feature window at feature_level, then the rest of
    // the horizon at the default point (scaling window = default). --------
    Gpu ref = cursor;
    ref.runEpochUniform(feature_level);
    for (int e = 1; e < gen_.horizon_epochs; ++e)
      ref.runEpochUniform(default_level);
    if (ref.allDone()) break;  // not enough work left for a clean horizon
    const std::int64_t target_insts = ref.totalInstructions();
    const double t0_ns =
        static_cast<double>(gen_.horizon_epochs) *
        static_cast<double>(epoch_ns);

    // --- One replay per operating point: each is an independent job (the
    // snapshot is copied per replay), run on the pool when one is given.
    // Rows are emitted below in level order either way, so parallel and
    // serial datasets are identical.
    std::vector<ReplayOutcome> replays(static_cast<std::size_t>(num_levels));
    const auto replay_one = [&](std::size_t level) {
      replays[level] =
          replayHorizon(cursor, feature_level, static_cast<VfLevel>(level),
                        default_level, target_insts, gen_.horizon_epochs,
                        gen_.max_extra_epochs);
    };
    if (pool != nullptr) {
      pool->parallelFor(static_cast<std::size_t>(num_levels), replay_one);
    } else {
      for (int level = 0; level < num_levels; ++level)
        replay_one(static_cast<std::size_t>(level));
    }

    for (int level = 0; level < num_levels; ++level) {
      const ReplayOutcome& rep = replays[static_cast<std::size_t>(level)];
      if (!rep.valid) continue;
      // Work-matching interpolation can report a marginally negative loss
      // on frequency-insensitive windows; physically T_f >= T_0, so clamp.
      const double loss = std::max(
          0.0, (rep.t_f_ns - t0_ns) / static_cast<double>(epoch_ns));

      for (int c = 0; c < gpu_cfg_.num_clusters; c += stride) {
        const auto& feat =
            rep.feature_report.clusters[static_cast<std::size_t>(c)];
        const auto& scal =
            rep.scaling_report.clusters[static_cast<std::size_t>(c)];
        if (feat.cluster_done) continue;  // no live work: nothing to learn
        DataPoint p;
        const auto raw = feat.counters.raw();
        std::copy(raw.begin(), raw.end(), p.counters.begin());
        p.perf_loss = loss;
        p.level = level;
        p.insts_k = static_cast<double>(scal.instructions) / 1000.0;
        p.workload = kernel.name;
        out.add(std::move(p));
      }
    }

    // --- Advance the cursor to the next breakpoint. ----------------------
    for (int e = 0; e < gen_.epochs_per_breakpoint && !cursor.allDone(); ++e)
      cursor.runEpochUniform(default_level);
  }
  return out;
}

Dataset DataGenerator::generate(const std::vector<KernelProfile>& workloads,
                                ThreadPool* pool) const {
  // Seeds are drawn serially up front in the exact order the serial loop
  // would draw them; shard results are appended in that same order. The
  // corpus is therefore independent of scheduling.
  struct Shard {
    const KernelProfile* kernel = nullptr;
    std::uint64_t seed = 0;
    int run = 0;
  };
  std::vector<Shard> shards;
  shards.reserve(workloads.size() *
                 static_cast<std::size_t>(gen_.runs_per_workload));
  Rng seeder(gen_.seed);
  for (const auto& kernel : workloads)
    for (int run = 0; run < gen_.runs_per_workload; ++run)
      shards.push_back({&kernel, seeder.nextU64(), run});

  std::vector<Dataset> parts(shards.size());
  const auto run_shard = [&](std::size_t i) {
    // Shard-level parallelism already saturates the pool; the per-level
    // replays inside each shard stay serial (pass no pool down).
    parts[i] = generateForWorkload(*shards[i].kernel, shards[i].seed,
                                   shards[i].run);
  };
  if (pool != nullptr) {
    pool->parallelFor(shards.size(), run_shard);
  } else {
    for (std::size_t i = 0; i < shards.size(); ++i) run_shard(i);
  }

  Dataset all;
  for (const auto& part : parts) all.append(part);
  SSM_CHECK(!all.empty(), "data generation produced no samples");
  return all;
}

}  // namespace ssm
