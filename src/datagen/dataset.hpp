// Supervised dataset produced by the §III.A data-generation protocol.
//
// One DataPoint corresponds to (breakpoint, cluster, V/f level): the 47 raw
// counters a cluster reported in the 10 µs feature-collection window, the
// performance loss measured when the following 10 µs frequency-scaling
// window ran at `level`, and the instructions that cluster executed during
// that scaling window (the Calibrator's regression target).
//
// Performance loss is normalised to the scaling window:
//     loss = (T_f - T_0) / 10 µs
// where T_f / T_0 are times to complete the fixed work of the ~100 µs
// collection horizon with / without the frequency excursion. The paper
// leaves the normalisation implicit; window-relative loss is the scale on
// which a per-epoch preset composes into an end-to-end program slowdown
// (every epoch ≤ p% slower ⇒ program ≤ p% slower), which is how §V.C uses
// the preset. See DESIGN.md.
#pragma once

#include <array>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "counters/counters.hpp"
#include "nn/matrix.hpp"

namespace ssm {

struct DataPoint {
  std::array<double, kNumCounters> counters{};  ///< feature-window counters
  double perf_loss = 0.0;   ///< window-relative loss for `level`
  int level = 0;            ///< V/f level applied in the scaling window
  double insts_k = 0.0;     ///< scaling-window instructions, in thousands
  std::string workload;
};

class Dataset {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<DataPoint>& points() const noexcept {
    return points_;
  }
  /// Appends one point. In audit builds, validates that the row is sane
  /// (finite loss/target, non-negative level) before it can poison training.
  void add(DataPoint p);
  void append(const Dataset& other);

  /// Decision-maker design matrix: selected counters + perf loss.
  /// Row width = feature_ids.size() + 1.
  [[nodiscard]] Matrix decisionInputs(
      std::span<const CounterId> feature_ids) const;

  /// Decision-maker labels: the applied V/f level.
  [[nodiscard]] std::vector<int> decisionLabels() const;

  /// Calibrator design matrix: selected counters + perf loss + one-hot
  /// level. Row width = feature_ids.size() + 1 + num_levels.
  [[nodiscard]] Matrix calibratorInputs(std::span<const CounterId> feature_ids,
                                        int num_levels) const;

  /// Calibrator targets: scaling-window instructions in thousands.
  [[nodiscard]] std::vector<double> calibratorTargets() const;

  /// Deterministic shuffled split into (train, holdout).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_frac,
                                                  std::uint64_t seed) const;

  /// CSV round trip (workload,level,loss,insts_k,c0..c46).
  void saveCsv(const std::string& path) const;
  [[nodiscard]] static Dataset loadCsv(const std::string& path);

 private:
  std::vector<DataPoint> points_;
};

}  // namespace ssm
