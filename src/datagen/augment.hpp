// Dataset manipulation utilities: balancing, filtering, noise injection.
//
// Practical helpers around the §III.A corpus. Balancing matters when
// custom breakpoint schedules skew the label distribution; counter-noise
// injection is the standard robustness check for a model that will consume
// real (noisy) hardware counters; filtering supports leave-one-workload-out
// experiments.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datagen/dataset.hpp"

namespace ssm {

/// Keeps only points whose workload is (or is not) in `names`.
[[nodiscard]] Dataset filterByWorkload(const Dataset& ds,
                                       const std::vector<std::string>& names,
                                       bool keep = true);

/// Splits into (fold != k, fold == k) by workload name hash — a
/// deterministic leave-group-out partition with `num_folds` folds.
[[nodiscard]] std::pair<Dataset, Dataset> leaveWorkloadFoldOut(
    const Dataset& ds, int fold, int num_folds);

/// Downsamples so every level has at most as many points as the rarest
/// level (deterministic given seed). Returns a label-balanced corpus.
[[nodiscard]] Dataset balanceLabels(const Dataset& ds, std::uint64_t seed);

/// Adds multiplicative Gaussian noise (sigma relative) to every counter of
/// every point — emulates real counter jitter. Losses/labels untouched.
[[nodiscard]] Dataset injectCounterNoise(const Dataset& ds, double sigma,
                                         std::uint64_t seed);

/// Per-label counts (size num_levels).
[[nodiscard]] std::vector<int> labelCounts(const Dataset& ds,
                                           int num_levels = 6);

}  // namespace ssm
