#include "datagen/corpus_stats.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace ssm {

bool CorpusStats::laddersMonotonic(double tolerance) const {
  for (const auto& w : per_workload) {
    for (std::size_t l = 0; l + 1 < w.per_level.size(); ++l) {
      const auto& lo = w.per_level[l];
      const auto& hi = w.per_level[l + 1];
      if (lo.count == 0 || hi.count == 0) continue;
      if (lo.mean_loss + tolerance < hi.mean_loss) return false;
    }
  }
  return true;
}

CorpusStats computeCorpusStats(const Dataset& ds, int num_levels) {
  SSM_CHECK(num_levels >= 2, "need at least two levels");
  CorpusStats stats;
  stats.num_levels = num_levels;
  stats.total_samples = static_cast<int>(ds.size());
  stats.label_fractions.assign(static_cast<std::size_t>(num_levels), 0.0);

  std::map<std::string, WorkloadCorpusStats> by_workload;
  for (const auto& p : ds.points()) {
    SSM_CHECK(p.level >= 0 && p.level < num_levels,
              "label outside num_levels");
    auto& w = by_workload[p.workload];
    if (w.per_level.empty()) {
      w.workload = p.workload;
      w.per_level.resize(static_cast<std::size_t>(num_levels));
    }
    auto& lvl = w.per_level[static_cast<std::size_t>(p.level)];
    if (lvl.count == 0) {
      lvl.min_loss = p.perf_loss;
      lvl.max_loss = p.perf_loss;
    } else {
      lvl.min_loss = std::min(lvl.min_loss, p.perf_loss);
      lvl.max_loss = std::max(lvl.max_loss, p.perf_loss);
    }
    ++lvl.count;
    lvl.mean_loss += p.perf_loss;
    lvl.mean_insts_k += p.insts_k;
    ++w.samples;
    stats.label_fractions[static_cast<std::size_t>(p.level)] += 1.0;
    stats.max_loss = std::max(stats.max_loss, p.perf_loss);
  }

  for (auto& [name, w] : by_workload) {
    for (auto& lvl : w.per_level) {
      if (lvl.count == 0) continue;
      lvl.mean_loss /= lvl.count;
      lvl.mean_insts_k /= lvl.count;
    }
    w.sensitivity = w.per_level.front().count > 0
                        ? w.per_level.front().mean_loss
                        : 0.0;
    stats.per_workload.push_back(w);
  }
  std::sort(stats.per_workload.begin(), stats.per_workload.end(),
            [](const auto& a, const auto& b) {
              return a.sensitivity > b.sensitivity;
            });

  if (stats.total_samples > 0)
    for (double& f : stats.label_fractions) f /= stats.total_samples;
  return stats;
}

void printCorpusStats(const CorpusStats& stats, std::ostream& os) {
  os << "corpus: " << stats.total_samples << " samples, "
     << stats.per_workload.size() << " workloads, max loss "
     << Table::pct(stats.max_loss) << "\n";
  os << "label balance:";
  for (std::size_t l = 0; l < stats.label_fractions.size(); ++l)
    os << "  L" << l << ' ' << Table::pct(stats.label_fractions[l], 1);
  os << "\nloss ladders "
     << (stats.laddersMonotonic() ? "monotonic" : "NOT monotonic (check!)")
     << "\n\n";

  Table t("per-workload loss ladder (mean loss per level, L0 = slowest)");
  std::vector<std::string> header = {"workload", "samples"};
  // Built in steps to dodge GCC 12's -Wrestrict false positive (PR105651)
  // on `const char* + std::string&&`.
  for (int l = 0; l < stats.num_levels; ++l) {
    std::string label("L");
    label += std::to_string(l);
    header.push_back(std::move(label));
  }
  t.header(header);
  for (const auto& w : stats.per_workload) {
    std::vector<std::string> row = {w.workload, std::to_string(w.samples)};
    for (const auto& lvl : w.per_level)
      row.push_back(lvl.count > 0 ? Table::pct(lvl.mean_loss, 1) : "-");
    t.addRow(row);
  }
  t.print(os);
}

}  // namespace ssm
