#include "datagen/dataset.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ssm {

namespace {

[[maybe_unused]] bool rowIsSane(const DataPoint& p) noexcept {
  if (!std::isfinite(p.perf_loss) || !std::isfinite(p.insts_k) || p.level < 0)
    return false;
  for (double c : p.counters)
    if (!std::isfinite(c)) return false;
  return true;
}

}  // namespace

void Dataset::add(DataPoint p) {
  SSM_AUDIT_CHECK(rowIsSane(p),
                  "data point must have finite counters/loss/target and a "
                  "non-negative level");
  points_.push_back(std::move(p));
}

void Dataset::append(const Dataset& other) {
  points_.insert(points_.end(), other.points_.begin(), other.points_.end());
}

Matrix Dataset::decisionInputs(std::span<const CounterId> feature_ids) const {
  const std::size_t width = feature_ids.size() + 1;
  Matrix m(points_.size(), width);
  for (std::size_t r = 0; r < points_.size(); ++r) {
    const DataPoint& p = points_[r];
    for (std::size_t c = 0; c < feature_ids.size(); ++c)
      m(r, c) = p.counters[static_cast<std::size_t>(feature_ids[c])];
    m(r, feature_ids.size()) = p.perf_loss;
  }
  SSM_AUDIT_CHECK(m.rows() == points_.size() && m.cols() == width,
                  "decision design matrix width drifted from its contract");
  return m;
}

std::vector<int> Dataset::decisionLabels() const {
  std::vector<int> labels(points_.size());
  for (std::size_t r = 0; r < points_.size(); ++r) labels[r] = points_[r].level;
  return labels;
}

Matrix Dataset::calibratorInputs(std::span<const CounterId> feature_ids,
                                 int num_levels) const {
  SSM_CHECK(num_levels > 0, "num_levels must be positive");
  const std::size_t width =
      feature_ids.size() + 1 + static_cast<std::size_t>(num_levels);
  Matrix m(points_.size(), width);
  for (std::size_t r = 0; r < points_.size(); ++r) {
    const DataPoint& p = points_[r];
    for (std::size_t c = 0; c < feature_ids.size(); ++c)
      m(r, c) = p.counters[static_cast<std::size_t>(feature_ids[c])];
    m(r, feature_ids.size()) = p.perf_loss;
    SSM_CHECK(p.level >= 0 && p.level < num_levels, "level out of range");
    m(r, feature_ids.size() + 1 + static_cast<std::size_t>(p.level)) = 1.0;
  }
  SSM_AUDIT_CHECK(m.rows() == points_.size() && m.cols() == width,
                  "calibrator design matrix width drifted from its contract");
  return m;
}

std::vector<double> Dataset::calibratorTargets() const {
  std::vector<double> t(points_.size());
  for (std::size_t r = 0; r < points_.size(); ++r) t[r] = points_[r].insts_k;
  return t;
}

std::pair<Dataset, Dataset> Dataset::split(double train_frac,
                                           std::uint64_t seed) const {
  SSM_CHECK(train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0,1)");
  std::vector<std::size_t> order(points_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);
  const auto cut =
      static_cast<std::size_t>(train_frac * static_cast<double>(order.size()));
  Dataset train;
  Dataset hold;
  for (std::size_t i = 0; i < order.size(); ++i)
    (i < cut ? train : hold).add(points_[order[i]]);
  return {std::move(train), std::move(hold)};
}

void Dataset::saveCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw DataError("cannot open for writing: " + path);
  os << "workload,level,perf_loss,insts_k";
  for (int c = 0; c < kNumCounters; ++c)
    os << ',' << counterName(static_cast<CounterId>(c));
  os << '\n';
  os.precision(17);
  for (const DataPoint& p : points_) {
    os << p.workload << ',' << p.level << ',' << p.perf_loss << ','
       << p.insts_k;
    for (double v : p.counters) os << ',' << v;
    os << '\n';
  }
  if (!os) throw DataError("write failed: " + path);
}

Dataset Dataset::loadCsv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw DataError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(is, line)) throw DataError("empty dataset file: " + path);

  Dataset ds;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ss(line);
    DataPoint p;
    std::string cell;
    const auto next = [&]() -> std::string {
      if (!std::getline(ss, cell, ','))
        throw DataError(path + ": truncated row at line " +
                        std::to_string(line_no));
      return cell;
    };
    p.workload = next();
    p.level = std::stoi(next());
    p.perf_loss = std::stod(next());
    p.insts_k = std::stod(next());
    for (int c = 0; c < kNumCounters; ++c)
      p.counters[static_cast<std::size_t>(c)] = std::stod(next());
    // Row-width consistency: a row with extra cells is malformed input, not
    // something to silently truncate.
    if (std::getline(ss, cell, ','))
      throw DataError(path + ": too many columns at line " +
                      std::to_string(line_no));
    ds.add(std::move(p));
  }
  return ds;
}

}  // namespace ssm
