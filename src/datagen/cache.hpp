// File-backed dataset cache shared by the experiment harnesses.
//
// Data generation simulates hundreds of replayed execution windows, so the
// bench binaries cache the generated dataset (and benefit from a consistent
// dataset across experiments, as the paper's single generated corpus does).
#pragma once

#include <functional>
#include <string>

#include "datagen/dataset.hpp"

namespace ssm {

/// Returns the dataset stored at `path`, or produces it with `make`, saves
/// it, and returns it. A corrupt/unreadable file is regenerated.
[[nodiscard]] Dataset getOrGenerateDataset(
    const std::string& path, const std::function<Dataset()>& make);

/// Default artifact directory for cached datasets/results ("ssm_artifacts",
/// created on demand in the current working directory).
[[nodiscard]] std::string artifactDir();

}  // namespace ssm
