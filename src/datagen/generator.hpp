// The §III.A data-generation protocol, run on the simulator.
//
// For each benchmark, executed at the default V/f point:
//   * every ~100 µs a breakpoint snapshots the full simulator state;
//   * a 10 µs feature-collection window runs at the default point and
//     yields each cluster's 47 counters;
//   * the following 10 µs frequency-scaling window is replayed once per
//     V/f level (the snapshot makes the replays bit-identical up to the
//     excursion), recording each cluster's instruction count;
//   * execution continues at the default point until the replay has
//     completed the same work as the reference horizon (~100 µs), so
//     delayed effects of the excursion are captured (the paper's reason
//     for the 100 µs collection span);
//   * performance loss = (T_f - T_0) / 10 µs, window-relative.
#pragma once

#include <vector>

#include "datagen/dataset.hpp"
#include "gpusim/gpu.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

class ThreadPool;

struct GenConfig {
  /// Distance between breakpoints, in epochs (10 epochs = 100 µs).
  int epochs_per_breakpoint = 10;
  /// Collection-horizon length in epochs (the paper's 100 µs span).
  int horizon_epochs = 10;
  /// Safety bound on extra epochs when matching the reference work.
  int max_extra_epochs = 24;
  /// Number of clusters contributing feature rows per breakpoint.
  int clusters_sampled = 12;
  /// Independent executions (seeds) per workload.
  int runs_per_workload = 3;
  /// Hard cap on simulated program time.
  TimeNs max_program_ns = 3 * kNsPerMs;
  std::uint64_t seed = 0xda7aULL;
  /// If true, the feature-collection window's V/f level cycles through the
  /// table across breakpoints instead of always using the default point.
  /// The paper collects features at the default point only; at runtime,
  /// however, counters arrive from epochs run at whatever level the
  /// governor chose, so training must cover that distribution. The loss
  /// reference shares the same feature-window level, which keeps the
  /// scaling-window effect isolated. See DESIGN.md.
  bool vary_feature_level = true;
};

class DataGenerator {
 public:
  DataGenerator(GpuConfig gpu_cfg, VfTable vf, GenConfig gen_cfg = {});

  /// Runs the protocol for one workload (one execution at the given seed).
  /// `feature_phase` rotates the feature-window level schedule so repeated
  /// runs of a short program still cover every level (short programs have
  /// few breakpoints). With a pool, each breakpoint's per-V/f replays run
  /// as independent jobs; rows are still emitted in level order, so the
  /// dataset is byte-identical to the serial result.
  [[nodiscard]] Dataset generateForWorkload(const KernelProfile& kernel,
                                            std::uint64_t seed,
                                            int feature_phase = 0,
                                            ThreadPool* pool = nullptr) const;

  /// Runs the protocol over a workload list, runs_per_workload seeds each.
  /// With a pool, each (workload, run) pair is one job; run seeds are
  /// pre-drawn in serial order and shards are appended in job order, so
  /// the corpus matches the serial corpus exactly.
  [[nodiscard]] Dataset generate(const std::vector<KernelProfile>& workloads,
                                 ThreadPool* pool = nullptr) const;

  [[nodiscard]] const VfTable& vfTable() const noexcept { return vf_; }
  [[nodiscard]] const GenConfig& config() const noexcept { return gen_; }

 private:
  GpuConfig gpu_cfg_;
  VfTable vf_;
  GenConfig gen_;
};

}  // namespace ssm
