// Corpus diagnostics: the sanity report a practitioner wants before
// spending training time on a generated dataset.
//
// Summarises the §III.A corpus per workload and per level — sample counts,
// the loss ladder (mean loss per V/f level, which should fall monotonically
// toward the default level for frequency-sensitive programs), label
// balance, and instruction-target ranges. Used by the `ssmdvfs
// corpus-stats` CLI command and by the data-generation tests.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"

namespace ssm {

struct LevelStats {
  int count = 0;
  double mean_loss = 0.0;
  double min_loss = 0.0;
  double max_loss = 0.0;
  double mean_insts_k = 0.0;
};

struct WorkloadCorpusStats {
  std::string workload;
  int samples = 0;
  std::vector<LevelStats> per_level;  ///< indexed by V/f level
  /// Mean loss at the lowest level — the workload's frequency sensitivity.
  double sensitivity = 0.0;
};

struct CorpusStats {
  int total_samples = 0;
  int num_levels = 0;
  std::vector<WorkloadCorpusStats> per_workload;  ///< sorted by name
  /// Label histogram over the whole corpus (should be near-balanced: the
  /// protocol emits one sample per level per breakpoint).
  std::vector<double> label_fractions;
  double max_loss = 0.0;

  /// True when every workload's loss ladder is non-increasing in level
  /// (within `tolerance`) — the physical invariant of the protocol.
  [[nodiscard]] bool laddersMonotonic(double tolerance = 0.03) const;
};

/// Computes the full report. `num_levels` must cover every label present.
[[nodiscard]] CorpusStats computeCorpusStats(const Dataset& ds,
                                             int num_levels = 6);

/// Pretty-prints the report (one block per workload plus global summary).
void printCorpusStats(const CorpusStats& stats, std::ostream& os);

}  // namespace ssm
