#include "datagen/augment.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm {

Dataset filterByWorkload(const Dataset& ds,
                         const std::vector<std::string>& names, bool keep) {
  Dataset out;
  for (const auto& p : ds.points()) {
    const bool in_set =
        std::find(names.begin(), names.end(), p.workload) != names.end();
    if (in_set == keep) out.add(p);
  }
  return out;
}

namespace {
std::uint64_t nameHash(const std::string& s) {
  // FNV-1a: stable across platforms (std::hash is not).
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

std::pair<Dataset, Dataset> leaveWorkloadFoldOut(const Dataset& ds, int fold,
                                                 int num_folds) {
  SSM_CHECK(num_folds >= 2, "need at least two folds");
  SSM_CHECK(fold >= 0 && fold < num_folds, "fold out of range");
  Dataset train;
  Dataset held;
  for (const auto& p : ds.points()) {
    const bool held_out =
        nameHash(p.workload) % static_cast<std::uint64_t>(num_folds) ==
        static_cast<std::uint64_t>(fold);
    (held_out ? held : train).add(p);
  }
  return {std::move(train), std::move(held)};
}

Dataset balanceLabels(const Dataset& ds, std::uint64_t seed) {
  if (ds.empty()) return {};
  int max_level = 0;
  for (const auto& p : ds.points()) max_level = std::max(max_level, p.level);
  const auto counts = labelCounts(ds, max_level + 1);
  int floor_count = -1;
  for (int c : counts)
    if (c > 0 && (floor_count < 0 || c < floor_count)) floor_count = c;
  if (floor_count <= 0) return ds;

  // Deterministic shuffle per label, then take the first floor_count.
  std::vector<std::vector<std::size_t>> by_label(
      static_cast<std::size_t>(max_level + 1));
  for (std::size_t i = 0; i < ds.size(); ++i)
    by_label[static_cast<std::size_t>(ds.points()[i].level)].push_back(i);
  Rng rng(seed);
  std::vector<std::size_t> chosen;
  for (auto& bucket : by_label) {
    rng.shuffle(bucket);
    for (std::size_t i = 0;
         i < std::min<std::size_t>(bucket.size(),
                                   static_cast<std::size_t>(floor_count));
         ++i)
      chosen.push_back(bucket[i]);
  }
  std::sort(chosen.begin(), chosen.end());  // keep original order
  Dataset out;
  for (std::size_t i : chosen) out.add(ds.points()[i]);
  return out;
}

Dataset injectCounterNoise(const Dataset& ds, double sigma,
                           std::uint64_t seed) {
  SSM_CHECK(sigma >= 0.0, "sigma must be non-negative");
  Rng rng(seed);
  Dataset out;
  for (const auto& p : ds.points()) {
    DataPoint q = p;
    for (auto& v : q.counters) v *= 1.0 + rng.nextGaussian(0.0, sigma);
    out.add(std::move(q));
  }
  return out;
}

std::vector<int> labelCounts(const Dataset& ds, int num_levels) {
  SSM_CHECK(num_levels >= 1, "num_levels must be positive");
  std::vector<int> counts(static_cast<std::size_t>(num_levels), 0);
  for (const auto& p : ds.points()) {
    SSM_CHECK(p.level >= 0 && p.level < num_levels, "label out of range");
    ++counts[static_cast<std::size_t>(p.level)];
  }
  return counts;
}

}  // namespace ssm
