#include "datagen/cache.hpp"

#include <exception>
#include <filesystem>

namespace ssm {

std::string artifactDir() {
  const std::filesystem::path dir = "ssm_artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

Dataset getOrGenerateDataset(const std::string& path,
                             const std::function<Dataset()>& make) {
  if (std::filesystem::exists(path)) {
    try {
      Dataset ds = Dataset::loadCsv(path);
      if (!ds.empty()) return ds;
    } catch (const std::exception&) {
      // fall through and regenerate
    }
  }
  Dataset ds = make();
  ds.saveCsv(path);
  return ds;
}

}  // namespace ssm
