#include "thermal/thermal_spec.hpp"

// ssm-lint: allow(hot-path-io) — snprintf for print(); cold config code
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/check.hpp"

namespace ssm::thermal {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

[[noreturn]] void specError(const std::string& what) {
  throw DataError("bad --thermal spec: " + what);
}

double parsePositive(std::string_view key, std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(key) + "='" + v + "' is not a number");
  if (d <= 0.0)
    specError(std::string(key) + " must be > 0, got " + v);
  return d;
}

double parseTemp(std::string_view key, std::string_view value) {
  char* end = nullptr;
  const std::string v(value);
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(key) + "='" + v + "' is not a number");
  if (d < -273.15 || d > 1000.0)
    specError(std::string(key) + " must be a plausible degC value, got " + v);
  return d;
}

int parseSmallInt(std::string_view key, std::string_view value, int lo,
                  int hi) {
  char* end = nullptr;
  const std::string v(value);
  const long long i = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0')
    specError(std::string(key) + "='" + v + "' is not an integer");
  if (i < lo || i > hi)
    specError(std::string(key) + " must be in [" + std::to_string(lo) + "," +
              std::to_string(hi) + "], got " + v);
  return static_cast<int>(i);
}

/// %.17g: shortest form that survives a strtod round trip for doubles.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

ThermalScenario ThermalScenario::parse(std::string_view text) {
  ThermalScenario scenario;
  text = trim(text);
  if (text.empty() || text == "none") return scenario;
  scenario.enabled = true;
  if (text == "on") return scenario;

  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t at = text.find(',', start);
    if (at == std::string_view::npos) at = text.size();
    const std::string_view kv = trim(text.substr(start, at - start));
    start = at + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= kv.size())
      specError("expected key=value pairs, got '" + std::string(kv) + "'");
    const std::string_view key = trim(kv.substr(0, eq));
    const std::string_view value = trim(kv.substr(eq + 1));
    if (key == "amb") scenario.params.ambient_c = parseTemp(key, value);
    else if (key == "rc") scenario.params.r_cluster = parsePositive(key, value);
    else if (key == "cc") scenario.params.c_cluster = parsePositive(key, value);
    else if (key == "rp") scenario.params.r_package = parsePositive(key, value);
    else if (key == "cp") scenario.params.c_package = parsePositive(key, value);
    else if (key == "trip") scenario.throttle.trip_c = parseTemp(key, value);
    else if (key == "ptrip")
      scenario.throttle.package_trip_c = parseTemp(key, value);
    else if (key == "hyst")
      scenario.throttle.hysteresis_c = parsePositive(key, value);
    else if (key == "floor")
      scenario.throttle.floor_level = parseSmallInt(key, value, 0, 63);
    else if (key == "recover")
      scenario.throttle.recover_epochs = parseSmallInt(key, value, 1, 100000);
    else
      specError("unknown key '" + std::string(key) +
                "' (expected amb|rc|cc|rp|cp|trip|ptrip|hyst|floor|recover)");
  }
  return scenario;
}

std::string ThermalScenario::print() const {
  if (!enabled) return "none";
  ThermalScenario defaults;
  defaults.enabled = true;
  std::string out;
  const auto emit = [&](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  };
  if (params.ambient_c != defaults.params.ambient_c)
    emit("amb", num(params.ambient_c));
  if (params.r_cluster != defaults.params.r_cluster)
    emit("rc", num(params.r_cluster));
  if (params.c_cluster != defaults.params.c_cluster)
    emit("cc", num(params.c_cluster));
  if (params.r_package != defaults.params.r_package)
    emit("rp", num(params.r_package));
  if (params.c_package != defaults.params.c_package)
    emit("cp", num(params.c_package));
  if (throttle.trip_c != defaults.throttle.trip_c)
    emit("trip", num(throttle.trip_c));
  if (throttle.package_trip_c != defaults.throttle.package_trip_c)
    emit("ptrip", num(throttle.package_trip_c));
  if (throttle.hysteresis_c != defaults.throttle.hysteresis_c)
    emit("hyst", num(throttle.hysteresis_c));
  if (throttle.floor_level != defaults.throttle.floor_level)
    emit("floor", std::to_string(throttle.floor_level));
  if (throttle.recover_epochs != defaults.throttle.recover_epochs)
    emit("recover", std::to_string(throttle.recover_epochs));
  return out.empty() ? "on" : out;
}

}  // namespace ssm::thermal
