// Lumped RC thermal network for the simulated chip.
//
// Each cluster is one thermal node coupled through a per-cluster spreading
// resistance to a shared package/heatsink node, which in turn couples to an
// ambient sink:
//
//     C_c dT_i/dt = P_i - (T_i - T_pkg) / R_c                (cluster i)
//     C_p dT_p/dt = sum_i (T_i - T_pkg) / R_c + P_uncore
//                   - (T_p - T_amb) / R_p                    (package)
//
// stepped with an explicit Euler update once per simulator epoch (10 us by
// default). The update is synchronous — every heat flow is evaluated at the
// pre-step temperatures — so the result is independent of cluster iteration
// order and bit-identical across thread counts.
//
// The default time constants are deliberately compressed (~0.2 ms cluster,
// ~2 ms package instead of the hundreds of milliseconds of real silicon) so
// that heat-soak dynamics play out within the millisecond-scale runs this
// simulator performs; the resistance ratios follow die/package physics, so
// steady-state temperatures are realistic for the Titan X 250 W class chip
// the power model is calibrated against (~60 degC package, ~80 degC hot
// cluster at full load, 30 degC ambient).
#pragma once

#include <span>
#include <vector>

#include "common/units.hpp"

namespace ssm::thermal {

/// RC network coefficients. Defaults are the compressed-time Titan X
/// calibration described in the header comment.
struct ThermalParams {
  double ambient_c = 30.0;      ///< ambient sink temperature (degC)
  double r_cluster = 2.0;       ///< cluster -> package resistance (degC/W)
  double c_cluster = 1.0e-4;    ///< cluster heat capacity (J/degC)
  double r_package = 0.12;      ///< package -> ambient resistance (degC/W)
  double c_package = 1.0 / 60.0;  ///< package heat capacity (J/degC)

  friend bool operator==(const ThermalParams&, const ThermalParams&) = default;
};

/// Temperature snapshot, exposed for trace recording and for carrying heat
/// across job boundaries in the datacenter loop.
struct ThermalState {
  std::vector<double> cluster_c;  ///< per-cluster node temperatures (degC)
  double package_c = 0.0;         ///< package/heatsink node temperature

  friend bool operator==(const ThermalState&, const ThermalState&) = default;
};

/// Steps the RC network from per-epoch power. Value-semantic: copying a Gpu
/// snapshots its thermal state along with everything else.
class ThermalModel {
 public:
  ThermalModel(ThermalParams params, int num_clusters);

  /// Advances every node by `dt_ns` given this epoch's per-cluster power and
  /// the uncore power (deposited into the package node). `cluster_power_w`
  /// must have exactly `numClusters()` entries. No allocation.
  void step(std::span<const double> cluster_power_w, double uncore_power_w,
            TimeNs dt_ns) noexcept;

  [[nodiscard]] int numClusters() const noexcept {
    return static_cast<int>(state_.cluster_c.size());
  }
  [[nodiscard]] double clusterTempC(int cluster) const noexcept {
    return state_.cluster_c[static_cast<std::size_t>(cluster)];
  }
  [[nodiscard]] double packageTempC() const noexcept {
    return state_.package_c;
  }
  [[nodiscard]] const ThermalState& state() const noexcept { return state_; }
  [[nodiscard]] const ThermalParams& params() const noexcept {
    return params_;
  }

  /// Overwrites node temperatures (datacenter carry-over between jobs).
  /// The state's cluster count must match `numClusters()`.
  void setState(const ThermalState& state);

  /// Resets every node to ambient (cold start).
  void reset() noexcept;

  /// Analytic steady-state package temperature for a constant total chip
  /// power (clusters + uncore): T_amb + P_total * R_p.
  [[nodiscard]] static double steadyPackageC(const ThermalParams& p,
                                             double total_power_w) noexcept {
    return p.ambient_c + total_power_w * p.r_package;
  }
  /// Analytic steady-state cluster temperature given the steady package
  /// temperature and that cluster's constant power: T_pkg + P_i * R_c.
  [[nodiscard]] static double steadyClusterC(const ThermalParams& p,
                                             double package_c,
                                             double cluster_power_w) noexcept {
    return package_c + cluster_power_w * p.r_cluster;
  }

 private:
  ThermalParams params_;
  ThermalState state_;
};

}  // namespace ssm::thermal
