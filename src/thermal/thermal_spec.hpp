// Textual grammar for a thermal scenario, mirroring the FaultSpec grammar:
// one string selects the whole thermal configuration of a run, so sweeps
// can carry a thermal axis the same way they carry a fault axis.
//
//   ""            thermal modeling disabled (the default; byte-identical
//   "none"        to the pre-thermal simulator)
//   "on"          enabled with the default calibration and trip points
//   "key=value,…" enabled with overrides:
//                   amb      ambient temperature (degC)
//                   rc / cc  cluster resistance (degC/W) / capacity (J/degC)
//                   rp / cp  package resistance (degC/W) / capacity (J/degC)
//                   trip     per-cluster throttle trip point (degC)
//                   ptrip    package trip point (degC)
//                   hyst     hysteresis band below trip (degC)
//                   floor    V/f cap level while engaged
//                   recover  epochs per one-level recovery step
//
// parse(print(s)) == s for every scenario; print() emits only keys that
// differ from the defaults, "on" when none do, "none" when disabled.
#pragma once

#include <string>
#include <string_view>

#include "thermal/thermal_model.hpp"
#include "thermal/thermal_throttle.hpp"

namespace ssm::thermal {

/// One cell on a sweep's thermal axis: whether heat is modeled at all plus
/// the RC calibration and throttle trip points to use when it is.
struct ThermalScenario {
  bool enabled = false;
  ThermalParams params;
  ThrottleConfig throttle;

  friend bool operator==(const ThermalScenario&,
                         const ThermalScenario&) = default;

  /// Canonical textual form (round-trips through parse()).
  [[nodiscard]] std::string print() const;

  /// Parses the grammar above; throws ssm::DataError on malformed input.
  [[nodiscard]] static ThermalScenario parse(std::string_view text);
};

}  // namespace ssm::thermal
