#include "thermal/thermal_throttle.hpp"

#include "common/check.hpp"

namespace ssm::thermal {

ThermalThrottle::ThermalThrottle(ThrottleConfig cfg, int num_clusters,
                                 int max_level)
    : cfg_(cfg), max_level_(max_level) {
  SSM_CHECK(num_clusters > 0, "throttle needs at least one cluster");
  SSM_CHECK(max_level >= 0, "max level must be non-negative");
  SSM_CHECK(cfg_.hysteresis_c > 0.0, "hysteresis must be positive");
  SSM_CHECK(cfg_.floor_level >= 0 && cfg_.floor_level <= max_level,
            "floor level must lie within the V/f table");
  SSM_CHECK(cfg_.recover_epochs > 0, "recovery ramp must take >= 1 epoch");
  const auto n = static_cast<std::size_t>(num_clusters);
  // ssm-lint: allow(hot-path-alloc) — one-time construction, not the loop
  state_.assign(n, State::kClear);
  cap_.assign(n, max_level);  // ssm-lint: allow(hot-path-alloc)
  countdown_.assign(n, 0);    // ssm-lint: allow(hot-path-alloc)
}

void ThermalThrottle::observe(std::span<const double> cluster_temps_c,
                              double package_temp_c) noexcept {
  SSM_AUDIT_CHECK(cluster_temps_c.size() == cap_.size(),
                  "throttle needs one temperature per cluster");
  const bool pkg_hot = package_temp_c >= cfg_.package_trip_c;
  const bool pkg_cool =
      package_temp_c <= cfg_.package_trip_c - cfg_.hysteresis_c;
  bool any_limiting = false;
  for (std::size_t i = 0; i < cap_.size(); ++i) {
    const double t = cluster_temps_c[i];
    const bool hot = pkg_hot || t >= cfg_.trip_c;
    const bool cool = pkg_cool && t <= cfg_.trip_c - cfg_.hysteresis_c;
    switch (state_[i]) {
      case State::kClear:
        if (hot) {
          state_[i] = State::kEngaged;
          cap_[i] = cfg_.floor_level;
        }
        break;
      case State::kEngaged:
        if (cool) {
          state_[i] = State::kRecovering;
          countdown_[i] = cfg_.recover_epochs;
        }
        break;
      case State::kRecovering:
        if (hot) {
          state_[i] = State::kEngaged;
          cap_[i] = cfg_.floor_level;
        } else if (--countdown_[i] <= 0) {
          if (cap_[i] < max_level_) ++cap_[i];
          if (cap_[i] >= max_level_) {
            state_[i] = State::kClear;
          } else {
            countdown_[i] = cfg_.recover_epochs;
          }
        }
        break;
    }
    any_limiting = any_limiting || cap_[i] < max_level_;
  }
  if (any_limiting) ++throttle_epochs_;
}

void ThermalThrottle::reset() noexcept {
  for (std::size_t i = 0; i < cap_.size(); ++i) {
    state_[i] = State::kClear;
    cap_[i] = max_level_;
    countdown_[i] = 0;
  }
  throttle_epochs_ = 0;
}

}  // namespace ssm::thermal
