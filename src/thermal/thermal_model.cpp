#include "thermal/thermal_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ssm::thermal {

ThermalModel::ThermalModel(ThermalParams params, int num_clusters)
    : params_(params) {
  SSM_CHECK(num_clusters > 0, "thermal model needs at least one cluster");
  SSM_CHECK(params_.r_cluster > 0.0 && params_.r_package > 0.0,
            "thermal resistances must be positive");
  SSM_CHECK(params_.c_cluster > 0.0 && params_.c_package > 0.0,
            "heat capacities must be positive");
  // ssm-lint: allow(hot-path-alloc) — one-time construction, not the loop
  state_.cluster_c.assign(static_cast<std::size_t>(num_clusters),
                          params_.ambient_c);
  state_.package_c = params_.ambient_c;
}

void ThermalModel::step(std::span<const double> cluster_power_w,
                        double uncore_power_w, TimeNs dt_ns) noexcept {
  SSM_AUDIT_CHECK(cluster_power_w.size() == state_.cluster_c.size(),
                  "thermal step needs one power sample per cluster");
  if (dt_ns <= 0) return;
  const double dt_s = secondsOf(dt_ns);
  const double pkg_old = state_.package_c;
  // Synchronous update: every flow below reads pre-step temperatures, so
  // the result does not depend on cluster iteration order. Each cluster's
  // outbound flow is captured before its node is overwritten.
  double flow_sum_w = 0.0;
  for (std::size_t i = 0; i < state_.cluster_c.size(); ++i) {
    const double t_old = state_.cluster_c[i];
    const double flow_w = (t_old - pkg_old) / params_.r_cluster;
    flow_sum_w += flow_w;
    state_.cluster_c[i] =
        t_old + dt_s * (cluster_power_w[i] - flow_w) / params_.c_cluster;
    SSM_AUDIT_CHECK(std::isfinite(state_.cluster_c[i]),
                    "cluster temperature must stay finite");
  }
  const double sink_w = (pkg_old - params_.ambient_c) / params_.r_package;
  state_.package_c =
      pkg_old + dt_s * (flow_sum_w + uncore_power_w - sink_w) / params_.c_package;
  SSM_AUDIT_CHECK(std::isfinite(state_.package_c),
                  "package temperature must stay finite");
}

void ThermalModel::setState(const ThermalState& state) {
  SSM_CHECK(state.cluster_c.size() == state_.cluster_c.size(),
            "thermal state cluster count mismatch");
  state_ = state;
}

void ThermalModel::reset() noexcept {
  for (double& t : state_.cluster_c) t = params_.ambient_c;
  state_.package_c = params_.ambient_c;
}

}  // namespace ssm::thermal
