// Thermal throttle: a hardware-protection constraint arbitrated between the
// governor and the actuator in the engine's epoch loop.
//
// Per-cluster state machine with hysteresis and a staged recovery ramp:
//
//   Clear ──(T >= trip, or package >= package_trip)──> Engaged
//   Engaged: V/f capped at `floor_level`
//   Engaged ──(T <= trip - hysteresis, package cool)──> Recovering
//   Recovering: cap raised one level every `recover_epochs` epochs;
//               re-trips straight back to Engaged; cap at max ──> Clear
//
// Within the hysteresis band (trip - hysteresis, trip) neither transition
// fires, so the throttle cannot chatter: a temperature oscillating inside
// the band leaves the state unchanged. The throttle reads *sensor*
// temperatures — downstream of any injected sensor fault — mirroring real
// hardware, where a stuck or lagging sensor genuinely blinds the
// protection loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ssm::thermal {

/// Trip-point configuration. Defaults sit above the steady-state
/// temperatures of the default calibration (~80 degC hot cluster), so the
/// throttle only engages in deliberately thermally-limited scenarios.
struct ThrottleConfig {
  double trip_c = 92.0;          ///< per-cluster engage threshold (degC)
  double package_trip_c = 85.0;  ///< package-wide engage threshold (degC)
  double hysteresis_c = 8.0;     ///< release requires trip - hysteresis
  int floor_level = 0;           ///< V/f cap while engaged
  int recover_epochs = 32;       ///< epochs per one-level cap raise

  friend bool operator==(const ThrottleConfig&,
                         const ThrottleConfig&) = default;
};

class ThermalThrottle {
 public:
  /// `max_level` is the highest V/f level the table offers; a cap at
  /// `max_level` is no constraint at all.
  ThermalThrottle(ThrottleConfig cfg, int num_clusters, int max_level);

  /// Advances the state machine once per epoch from the sensed
  /// temperatures. `cluster_temps_c` must have one entry per cluster.
  void observe(std::span<const double> cluster_temps_c,
               double package_temp_c) noexcept;

  /// Clamps a governor-commanded level for `cluster` to the current cap.
  [[nodiscard]] int clamp(int cluster, int requested) const noexcept {
    const int cap = cap_[static_cast<std::size_t>(cluster)];
    return requested < cap ? requested : cap;
  }

  /// True while `cluster` is capped below the table maximum.
  [[nodiscard]] bool limiting(int cluster) const noexcept {
    return cap_[static_cast<std::size_t>(cluster)] < max_level_;
  }

  /// Epochs observed so far in which at least one cluster was capped.
  [[nodiscard]] std::int64_t throttleEpochs() const noexcept {
    return throttle_epochs_;
  }

  [[nodiscard]] const ThrottleConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int numClusters() const noexcept {
    return static_cast<int>(cap_.size());
  }

  /// Returns every cluster to Clear and zeroes the epoch counter.
  void reset() noexcept;

 private:
  enum class State : std::uint8_t { kClear, kEngaged, kRecovering };

  ThrottleConfig cfg_;
  int max_level_;
  std::vector<State> state_;
  std::vector<int> cap_;
  std::vector<int> countdown_;
  std::int64_t throttle_epochs_ = 0;
};

}  // namespace ssm::thermal
