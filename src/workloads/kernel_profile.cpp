#include "workloads/kernel_profile.hpp"

#include <algorithm>
#include <cmath>

namespace ssm {

void KernelProfile::validate() const {
  if (name.empty()) throw DataError("kernel profile needs a name");
  if (phases.empty())
    throw DataError("kernel profile '" + name + "' has no phases");
  if (warps_per_cluster < 1 || warps_per_cluster > 64)
    throw DataError("kernel '" + name + "': warps_per_cluster out of [1,64]");
  if (phase_loops < 1)
    throw DataError("kernel '" + name + "': phase_loops must be >= 1");
  for (const auto& p : phases) {
    if (std::abs(p.mix.sum() - 1.0) > 1e-6)
      throw DataError("kernel '" + name + "': instruction mix must sum to 1");
    if (p.l1_hit_rate < 0.0 || p.l1_hit_rate > 1.0 || p.l2_hit_rate < 0.0 ||
        p.l2_hit_rate > 1.0)
      throw DataError("kernel '" + name + "': hit rate out of [0,1]");
    if (p.ilp < 0 || p.ilp > 64)
      throw DataError("kernel '" + name + "': ilp out of [0,64]");
    if (p.divergence < 0.0 || p.divergence > 1.0)
      throw DataError("kernel '" + name + "': divergence out of [0,1]");
    if (p.dep_prob < 0.0 || p.dep_prob > 1.0)
      throw DataError("kernel '" + name + "': dep_prob out of [0,1]");
    if (p.insts_per_warp <= 0)
      throw DataError("kernel '" + name + "': insts_per_warp must be > 0");
  }
}

namespace {

// Phase archetype constructors. The numeric profiles are hand-tuned to the
// published behaviour of each benchmark (compute- vs memory-bound, cache
// friendliness, divergence) at the granularity a 10 µs window observes.

PhaseProfile computePhase(std::int64_t insts, double fp = 0.55) {
  PhaseProfile p;
  p.mix = {.ialu = 0.86 - fp,
           .falu = fp,
           .sfu = 0.02,
           .load = 0.07,
           .store = 0.02,
           .shared = 0.02,
           .branch = 0.01};
  p.l1_hit_rate = 0.92;
  p.l2_hit_rate = 0.80;
  p.ilp = 6;
  p.divergence = 0.04;
  p.dep_prob = 0.30;
  p.insts_per_warp = insts;
  return p;
}

PhaseProfile memoryPhase(std::int64_t insts, double l1_hit = 0.35,
                         double l2_hit = 0.40, int ilp = 2) {
  PhaseProfile p;
  p.mix = {.ialu = 0.28,
           .falu = 0.12,
           .sfu = 0.00,
           .load = 0.38,
           .store = 0.12,
           .shared = 0.04,
           .branch = 0.06};
  p.l1_hit_rate = l1_hit;
  p.l2_hit_rate = l2_hit;
  p.ilp = ilp;
  p.divergence = 0.08;
  p.dep_prob = 0.20;
  p.insts_per_warp = insts;
  return p;
}

PhaseProfile balancedPhase(std::int64_t insts, double load_frac = 0.20,
                           double l1_hit = 0.70) {
  PhaseProfile p;
  const double rest = 1.0 - load_frac - 0.06 - 0.05 - 0.04;
  p.mix = {.ialu = rest * 0.45,
           .falu = rest * 0.50,
           .sfu = rest * 0.05,
           .load = load_frac,
           .store = 0.06,
           .shared = 0.05,
           .branch = 0.04};
  p.l1_hit_rate = l1_hit;
  p.l2_hit_rate = 0.60;
  p.ilp = 4;
  p.divergence = 0.06;
  p.dep_prob = 0.25;
  p.insts_per_warp = insts;
  return p;
}

PhaseProfile irregularPhase(std::int64_t insts) {
  PhaseProfile p;
  p.mix = {.ialu = 0.40,
           .falu = 0.05,
           .sfu = 0.00,
           .load = 0.30,
           .store = 0.08,
           .shared = 0.02,
           .branch = 0.15};
  p.l1_hit_rate = 0.25;
  p.l2_hit_rate = 0.30;
  p.ilp = 1;
  p.divergence = 0.35;
  p.dep_prob = 0.15;
  p.insts_per_warp = insts;
  return p;
}

PhaseProfile sharedHeavyPhase(std::int64_t insts) {
  PhaseProfile p;
  p.mix = {.ialu = 0.28,
           .falu = 0.30,
           .sfu = 0.02,
           .load = 0.08,
           .store = 0.03,
           .shared = 0.26,
           .branch = 0.03};
  p.l1_hit_rate = 0.85;
  p.l2_hit_rate = 0.70;
  p.ilp = 5;
  p.divergence = 0.05;
  p.dep_prob = 0.28;
  p.insts_per_warp = insts;
  return p;
}

KernelProfile make(std::string name, std::string suite,
                   std::vector<PhaseProfile> phases, int warps, int loops) {
  KernelProfile k;
  k.name = std::move(name);
  k.suite = std::move(suite);
  k.phases = std::move(phases);
  k.warps_per_cluster = warps;
  k.phase_loops = loops;
  k.validate();
  return k;
}

std::vector<KernelProfile> buildRegistry() {
  std::vector<KernelProfile> r;

  // ---- Rodinia ---------------------------------------------------------
  // backprop: feed-forward (compute) alternating with weight updates (mem).
  r.push_back(make("backprop", "rodinia",
                   {computePhase(1500, 0.60), memoryPhase(900, 0.45, 0.50)},
                   24, 5));
  // bfs: frontier expansion, highly irregular and memory bound.
  r.push_back(make("bfs", "rodinia", {irregularPhase(1200)}, 20, 8));
  // hotspot: stencil iterations — shared-memory tiles plus boundary loads.
  r.push_back(make("hotspot", "rodinia",
                   {sharedHeavyPhase(1400), memoryPhase(500, 0.55, 0.60)},
                   28, 7));
  // kmeans: distance computation (compute) then membership update (mem).
  r.push_back(make("kmeans", "rodinia",
                   {computePhase(2000, 0.65), memoryPhase(1100, 0.40, 0.45)},
                   24, 4));
  // lud: dense LU decomposition, compute bound with small mem bursts.
  r.push_back(make("lud", "rodinia",
                   {computePhase(2600, 0.70), balancedPhase(600, 0.25, 0.65)},
                   24, 4));
  // nw: Needleman–Wunsch wavefront, dependency-limited, mixed.
  r.push_back(make("nw", "rodinia",
                   {balancedPhase(1100, 0.28, 0.55), memoryPhase(700, 0.5)},
                   16, 7));
  // srad: image regions — compute phase then reduction/memory phase.
  r.push_back(make("srad", "rodinia",
                   {computePhase(1700, 0.75), memoryPhase(800, 0.5, 0.55),
                    balancedPhase(700)},
                   26, 4));
  // gaussian: elimination steps shrink; mildly compute bound, divergent.
  r.push_back(make("gaussian", "rodinia",
                   {computePhase(1300, 0.55), irregularPhase(500)}, 22, 6));
  // pathfinder: dynamic programming rows, shared-memory friendly.
  r.push_back(make("pathfinder", "rodinia",
                   {sharedHeavyPhase(1600), balancedPhase(500, 0.22)}, 26,
                   6));
  // heartwall: tracking — long compute with SFU (trig) usage.
  {
    auto p = computePhase(2400, 0.58);
    p.mix.sfu = 0.08;
    p.mix.ialu -= 0.06;
    r.push_back(make("heartwall", "rodinia", {p, balancedPhase(700)}, 24, 4));
  }
  // lavaMD: n-body style inner loops, strongly compute bound.
  r.push_back(make("lavamd", "rodinia", {computePhase(3200, 0.78)}, 28, 4));
  // streamcluster: distance evaluations over streamed points, memory heavy.
  r.push_back(make("streamcluster", "rodinia",
                   {memoryPhase(1300, 0.30, 0.35, 3), computePhase(600, 0.6)},
                   22, 6));

  // ---- Parboil ---------------------------------------------------------
  // cutcp: cutoff Coulomb potential — compute dominated, good locality.
  r.push_back(make("cutcp", "parboil", {computePhase(3000, 0.80)}, 28, 4));
  // mri-q: Q computation, SFU-heavy compute.
  {
    auto p = computePhase(2600, 0.62);
    p.mix.sfu = 0.12;
    p.mix.ialu -= 0.10;
    r.push_back(make("mriq", "parboil", {p}, 26, 5));
  }
  // sad: sum of absolute differences, integer compute + streaming loads.
  {
    auto p = balancedPhase(1500, 0.30, 0.60);
    p.mix.falu = 0.05;
    p.mix.ialu = 1.0 - p.mix.falu - p.mix.sfu - p.mix.load - p.mix.store -
                 p.mix.shared - p.mix.branch;
    r.push_back(make("sad", "parboil", {p, memoryPhase(600, 0.5)}, 24, 5));
  }
  // sgemm: blocked matrix multiply — the canonical compute-bound kernel.
  r.push_back(make("sgemm", "parboil",
                   {computePhase(2800, 0.82), sharedHeavyPhase(700)}, 30, 4));
  // spmv: sparse matrix-vector — the canonical memory-bound kernel.
  r.push_back(make("spmv", "parboil", {memoryPhase(1500, 0.28, 0.32, 2)}, 20,
                   7));
  // stencil: 7-point stencil, bandwidth bound with some reuse.
  r.push_back(make("stencil", "parboil",
                   {memoryPhase(1000, 0.55, 0.65, 4), computePhase(600, 0.6)},
                   26, 6));
  // tpacf: angular correlation histogram — compute with divergence.
  {
    auto p = computePhase(1800, 0.55);
    p.divergence = 0.20;
    p.mix.branch = 0.06;
    p.mix.ialu -= 0.05;
    r.push_back(make("tpacf", "parboil", {p, irregularPhase(400)}, 24, 5));
  }
  // histo: histogramming — atomic-like conflicts, store-stall heavy.
  {
    auto p = memoryPhase(1100, 0.45, 0.50, 2);
    p.mix.store = 0.22;
    p.mix.load = 0.28;
    r.push_back(make("histo", "parboil", {p}, 22, 7));
  }

  // ---- PolyBench -------------------------------------------------------
  // 2mm / 3mm / gemm: dense multiplies with different blocking quality.
  r.push_back(make("2mm", "polybench",
                   {computePhase(2200, 0.75), memoryPhase(500, 0.5, 0.6)}, 28,
                   5));
  r.push_back(make("3mm", "polybench",
                   {computePhase(1900, 0.75), memoryPhase(450, 0.5, 0.6),
                    computePhase(1300, 0.70)},
                   28, 4));
  r.push_back(make("gemm", "polybench", {computePhase(3100, 0.80)}, 30, 4));
  // atax / bicg / mvt / gesummv: matrix-vector family, bandwidth bound.
  r.push_back(make("atax", "polybench", {memoryPhase(1300, 0.35, 0.45, 3)},
                   22, 7));
  r.push_back(make("bicg", "polybench",
                   {memoryPhase(1200, 0.32, 0.40, 3), balancedPhase(400)}, 22,
                   7));
  r.push_back(make("mvt", "polybench", {memoryPhase(1400, 0.38, 0.42, 3)}, 24,
                   6));
  r.push_back(make("gesummv", "polybench",
                   {memoryPhase(1000, 0.40, 0.45, 2), computePhase(400, 0.5)},
                   22, 7));
  // correlation: mean/stddev passes (mem) then correlation matrix (compute).
  r.push_back(make("correlation", "polybench",
                   {memoryPhase(800, 0.45, 0.55, 3), computePhase(1900, 0.72)},
                   26, 5));

  // ---- Microbenchmarks -------------------------------------------------
  // Synthetic corner cases for testing and characterisation; deliberately
  // excluded from the training and evaluation splits.
  {
    // Pure compute: the frequency-sensitivity ceiling.
    PhaseProfile p = computePhase(3000, 0.85);
    p.mix.load = 0.02;
    p.mix.store = 0.01;
    p.mix.ialu += 0.06;
    p.l1_hit_rate = 0.99;
    r.push_back(make("micro_compute", "micro", {p}, 28, 4));
  }
  {
    // Pure memory: the frequency-insensitivity floor.
    PhaseProfile p = memoryPhase(1200, 0.15, 0.20, 1);
    r.push_back(make("micro_memory", "micro", {p}, 20, 7));
  }
  // Sawtooth: hard phase alternation at roughly the epoch scale — the
  // worst case for one-epoch-lookbehind predictors.
  r.push_back(make("micro_sawtooth", "micro",
                   {computePhase(600, 0.8), memoryPhase(500, 0.25, 0.3, 2)},
                   24, 12));
  {
    // Divergence-dominated control flow.
    PhaseProfile p = irregularPhase(1400);
    p.divergence = 0.5;
    r.push_back(make("micro_branchy", "micro", {p}, 20, 6));
  }

  return r;
}

const std::vector<std::string>& trainingNames() {
  // 20 benchmarks (§III.A: "over 20 benchmarks"); every registry entry not
  // reserved as an unseen evaluation program.
  static const std::vector<std::string> names = {
      "backprop", "bfs",     "hotspot",     "kmeans", "lud",
      "srad",     "gaussian", "sgemm",      "spmv",   "stencil",
      "2mm",      "atax",    "correlation", "cutcp",  "gemm",
      "3mm",      "bicg",    "mvt",         "gesummv", "histo"};
  return names;
}

const std::vector<std::string>& evaluationNames() {
  // 12 programs; 8 of them (67 %) never appear in the training set,
  // matching §V.A's ">50 % of the selected programs are not included in
  // the training set".
  static const std::vector<std::string> names = {
      "pathfinder", "nw",   "heartwall", "lavamd", "streamcluster", "mriq",
      "sad",        "tpacf", "hotspot",  "sgemm",  "spmv",          "bfs"};
  return names;
}

}  // namespace

const std::vector<KernelProfile>& allWorkloads() {
  static const std::vector<KernelProfile> registry = buildRegistry();
  return registry;
}

const KernelProfile& workloadByName(const std::string& name) {
  for (const auto& k : allWorkloads())
    if (k.name == name) return k;
  throw DataError("unknown workload: " + name);
}

std::vector<KernelProfile> trainingWorkloads() {
  std::vector<KernelProfile> out;
  for (const auto& n : trainingNames()) out.push_back(workloadByName(n));
  return out;
}

std::vector<KernelProfile> evaluationWorkloads() {
  std::vector<KernelProfile> out;
  for (const auto& n : evaluationNames()) out.push_back(workloadByName(n));
  return out;
}

}  // namespace ssm
