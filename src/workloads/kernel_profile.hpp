// Synthetic GPGPU workload profiles.
//
// The paper runs >20 CUDA benchmarks from Rodinia, Parboil and PolyBench on
// GPGPU-Sim. We cannot ship those binaries, so each benchmark is replaced by
// a *kernel profile*: a phase program that drives the trace generator inside
// the simulator. A phase fixes the statistical behaviour a 10 µs DVFS window
// actually observes — instruction mix, cache locality, memory-level
// parallelism, divergence — and the phase sequencing recreates the suites'
// characteristic time-varying compute/memory intensity. See DESIGN.md §2 for
// why this substitution preserves the frequency-sensitivity structure DVFS
// exploits.
#pragma once

#include <string>
#include <vector>

#include "common/check.hpp"

namespace ssm {

/// Fractions of dynamic instructions by class; must sum to ~1.
struct InstructionMix {
  double ialu = 0.0;
  double falu = 0.0;
  double sfu = 0.0;
  double load = 0.0;
  double store = 0.0;
  double shared = 0.0;  ///< shared-memory access (no DRAM traffic)
  double branch = 0.0;

  [[nodiscard]] double sum() const noexcept {
    return ialu + falu + sfu + load + store + shared + branch;
  }
};

/// One statistically-stationary program phase.
struct PhaseProfile {
  InstructionMix mix;
  double l1_hit_rate = 0.8;   ///< P(load hits in L1)
  double l2_hit_rate = 0.5;   ///< P(L1 miss hits in L2)
  /// Independent instructions a warp can still issue after a pending L1
  /// miss before the consumer blocks it (memory-level parallelism proxy).
  int ilp = 4;
  /// Probability that a branch diverges and costs a control-hazard stall.
  double divergence = 0.1;
  /// Probability that a non-memory instruction's consumer is adjacent,
  /// stalling the warp for the producer's execution latency.
  double dep_prob = 0.25;
  /// Dynamic instructions per warp in this phase.
  std::int64_t insts_per_warp = 2000;
};

/// A named benchmark profile.
struct KernelProfile {
  std::string name;
  std::string suite;               ///< "rodinia" | "parboil" | "polybench"
  std::vector<PhaseProfile> phases;
  int warps_per_cluster = 24;      ///< resident warp contexts per cluster
  int phase_loops = 1;             ///< times the phase list repeats

  /// Total dynamic instructions one warp executes.
  [[nodiscard]] std::int64_t totalInstsPerWarp() const noexcept {
    std::int64_t total = 0;
    for (const auto& p : phases) total += p.insts_per_warp;
    return total * phase_loops;
  }

  /// Validates mix sums and parameter ranges; throws DataError on problems.
  void validate() const;
};

/// All profiles in the registry (28 benchmarks across the three suites).
[[nodiscard]] const std::vector<KernelProfile>& allWorkloads();

/// Finds a profile by name; throws DataError if absent.
[[nodiscard]] const KernelProfile& workloadByName(const std::string& name);

/// The training split used for data generation (§III.A).
[[nodiscard]] std::vector<KernelProfile> trainingWorkloads();

/// The evaluation split (§V.A: >50 % of evaluated programs are unseen).
[[nodiscard]] std::vector<KernelProfile> evaluationWorkloads();

}  // namespace ssm
