#include "workloads/profile_io.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

namespace ssm {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw DataError("profile line " + std::to_string(line_no) + ": " + msg);
}

/// Parses "key=value key=value ..." into a map; throws on duplicates.
std::map<std::string, double> parsePairs(const std::string& rest,
                                         std::size_t line_no) {
  std::map<std::string, double> out;
  std::istringstream ss(rest);
  std::string token;
  while (ss >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
      fail(line_no, "expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    char* end = nullptr;
    const double value = std::strtod(token.c_str() + eq + 1, &end);
    if (end == nullptr || *end != '\0')
      fail(line_no, "bad numeric value in '" + token + "'");
    if (!out.emplace(key, value).second)
      fail(line_no, "duplicate key '" + key + "'");
  }
  return out;
}

double require(const std::map<std::string, double>& kv, const char* key,
               std::size_t line_no) {
  const auto it = kv.find(key);
  if (it == kv.end()) fail(line_no, std::string("missing key '") + key + "'");
  return it->second;
}

}  // namespace

std::vector<KernelProfile> parseProfiles(std::istream& is) {
  std::vector<KernelProfile> kernels;
  KernelProfile current;
  bool in_kernel = false;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;

    if (keyword == "kernel") {
      if (in_kernel) fail(line_no, "previous kernel not closed with 'end'");
      current = KernelProfile{};
      if (!(ss >> current.name)) fail(line_no, "kernel needs a name");
      if (!(ss >> current.suite)) current.suite = "custom";
      in_kernel = true;
    } else if (!in_kernel) {
      fail(line_no, "'" + keyword + "' outside a kernel block");
    } else if (keyword == "warps_per_cluster") {
      if (!(ss >> current.warps_per_cluster))
        fail(line_no, "warps_per_cluster needs an integer");
    } else if (keyword == "phase_loops") {
      if (!(ss >> current.phase_loops))
        fail(line_no, "phase_loops needs an integer");
    } else if (keyword == "phase") {
      std::string rest;
      std::getline(ss, rest);
      const auto kv = parsePairs(rest, line_no);
      PhaseProfile p;
      p.mix.ialu = require(kv, "ialu", line_no);
      p.mix.falu = require(kv, "falu", line_no);
      p.mix.sfu = require(kv, "sfu", line_no);
      p.mix.load = require(kv, "load", line_no);
      p.mix.store = require(kv, "store", line_no);
      p.mix.shared = require(kv, "shared", line_no);
      p.mix.branch = require(kv, "branch", line_no);
      p.l1_hit_rate = require(kv, "l1", line_no);
      p.l2_hit_rate = require(kv, "l2", line_no);
      p.ilp = static_cast<int>(require(kv, "ilp", line_no));
      p.divergence = require(kv, "div", line_no);
      p.dep_prob = require(kv, "dep", line_no);
      p.insts_per_warp =
          static_cast<std::int64_t>(require(kv, "insts", line_no));
      current.phases.push_back(p);
    } else if (keyword == "end") {
      current.validate();  // throws DataError with the kernel's name
      kernels.push_back(current);
      in_kernel = false;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (in_kernel) throw DataError("profile ends inside a kernel block");
  return kernels;
}

void writeProfiles(const std::vector<KernelProfile>& kernels,
                   std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const auto& k : kernels) {
    os << "kernel " << k.name << ' ' << k.suite << '\n';
    os << "warps_per_cluster " << k.warps_per_cluster << '\n';
    os << "phase_loops " << k.phase_loops << '\n';
    for (const auto& p : k.phases) {
      os << "phase ialu=" << p.mix.ialu << " falu=" << p.mix.falu
         << " sfu=" << p.mix.sfu << " load=" << p.mix.load
         << " store=" << p.mix.store << " shared=" << p.mix.shared
         << " branch=" << p.mix.branch << " l1=" << p.l1_hit_rate
         << " l2=" << p.l2_hit_rate << " ilp=" << p.ilp
         << " div=" << p.divergence << " dep=" << p.dep_prob
         << " insts=" << p.insts_per_warp << '\n';
    }
    os << "end\n";
  }
}

std::vector<KernelProfile> loadProfilesFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw DataError("cannot open profile file: " + path);
  return parseProfiles(is);
}

void saveProfilesToFile(const std::vector<KernelProfile>& kernels,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) throw DataError("cannot open for writing: " + path);
  writeProfiles(kernels, os);
  if (!os) throw DataError("write failed: " + path);
}

}  // namespace ssm
