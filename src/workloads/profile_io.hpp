// Text format for kernel profiles.
//
// Lets users define custom workloads without recompiling (consumed by the
// ssmdvfs CLI and the library). One file holds any number of kernels:
//
//   # comment
//   kernel my_kernel custom
//   warps_per_cluster 24
//   phase_loops 5
//   phase ialu=0.30 falu=0.30 sfu=0.00 load=0.20 store=0.05 shared=0.10
//         branch=0.05 l1=0.80 l2=0.50 ilp=4 div=0.10 dep=0.25 insts=2000
//   phase ...
//   end
//
// (The `phase` line is a single line; shown wrapped here for readability.)
// Every parsed profile is validated via KernelProfile::validate().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workloads/kernel_profile.hpp"

namespace ssm {

/// Parses all kernels from a stream; throws DataError with a line number
/// on malformed input.
[[nodiscard]] std::vector<KernelProfile> parseProfiles(std::istream& is);

/// Serialises kernels in the same format (round-trips with parse).
void writeProfiles(const std::vector<KernelProfile>& kernels,
                   std::ostream& os);

[[nodiscard]] std::vector<KernelProfile> loadProfilesFromFile(
    const std::string& path);
void saveProfilesToFile(const std::vector<KernelProfile>& kernels,
                        const std::string& path);

}  // namespace ssm
