#include "compress/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace ssm {

void magnitudePruneTo(Mlp& net, double target_sparsity) {
  SSM_CHECK(target_sparsity >= 0.0 && target_sparsity <= 1.0,
            "sparsity must be in [0,1]");
  // Collect live magnitudes and total weight count.
  std::vector<double> magnitudes;
  std::size_t total = 0;
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const auto w = net.layer(l).weights().flat();
    const auto m = net.layer(l).mask().flat();
    total += w.size();
    for (std::size_t i = 0; i < w.size(); ++i)
      if (m[i] != 0.0) magnitudes.push_back(std::abs(w[i]));
  }
  if (total == 0) return;
  const auto target_zeros =
      static_cast<std::size_t>(target_sparsity * static_cast<double>(total));
  const std::size_t current_zeros = total - magnitudes.size();
  if (target_zeros <= current_zeros || magnitudes.empty()) return;
  const std::size_t k = target_zeros - current_zeros;  // live weights to cut

  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(k, magnitudes.size()) - 1),
                   magnitudes.end());
  const double threshold =
      magnitudes[std::min(k, magnitudes.size()) - 1];
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    auto w = net.layer(l).weights().flat();
    auto m = net.layer(l).mask().flat();
    for (std::size_t i = 0; i < w.size(); ++i)
      if (m[i] != 0.0 && std::abs(w[i]) <= threshold) m[i] = 0.0;
  }
  net.applyMasks();
  SSM_AUDIT_CHECK(net.sparsity() >= 0.0 && net.sparsity() <= 1.0,
                  "pruning must leave sparsity in [0, 1]");
  SSM_AUDIT_CHECK(net.sparsity() + 1e-12 >=
                      static_cast<double>(current_zeros) /
                          static_cast<double>(total),
                  "pruning must never resurrect masked weights");
}

int neuronPrune(Mlp& net, double x2) {
  SSM_CHECK(x2 >= 0.0 && x2 <= 1.0, "x2 must be in [0,1]");
  int removed = 0;
  // Hidden neuron j of layer l is removed if >= x2 of its incoming weights
  // are zero: mask incoming row j (layer l) and outgoing column j (l+1).
  for (std::size_t l = 0; l + 1 < net.layerCount(); ++l) {
    DenseLayer& layer = net.layer(l);
    DenseLayer& next = net.layer(l + 1);
    Matrix& mask = layer.mask();
    Matrix& next_mask = next.mask();
    for (int j = 0; j < layer.outDim(); ++j) {
      int zeros = 0;
      for (int i = 0; i < layer.inDim(); ++i)
        zeros += mask(static_cast<std::size_t>(j),
                      static_cast<std::size_t>(i)) == 0.0;
      const double zero_frac =
          static_cast<double>(zeros) / static_cast<double>(layer.inDim());
      if (zero_frac >= x2) {
        ++removed;
        for (int i = 0; i < layer.inDim(); ++i)
          mask(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) = 0.0;
        for (int o = 0; o < next.outDim(); ++o)
          next_mask(static_cast<std::size_t>(o),
                    static_cast<std::size_t>(j)) = 0.0;
      }
    }
  }
  net.applyMasks();
  return removed;
}

PruneOutcome pruneNetwork(Mlp& net, const PruneParams& params) {
  SSM_CHECK(params.x1 >= 0.0 && params.x1 <= 1.0, "x1 must be in [0,1]");
  PruneOutcome out;
  out.flops_before = net.flops();
  magnitudePruneTo(net, params.x1);
  out.neurons_removed = neuronPrune(net, params.x2);
  out.flops_after = net.flops();
  out.weight_sparsity = net.sparsity();
  return out;
}

namespace {

/// Fine-tunes both heads with the masks frozen.
void finetune(SsmModel& model, const Dataset& train, int epochs) {
  if (epochs <= 0) return;
  TrainConfig ft = model.config().train;
  ft.epochs = epochs;

  const auto& feats = model.config().features;
  Matrix dec_in = train.decisionInputs(feats);
  model.standardizeDecision(dec_in);
  AdamTrainer dec_tr(ft);
  dec_tr.fitClassifier(model.decisionNet(), dec_in, train.decisionLabels());

  const Matrix cal_in = model.calibratorTrainingMatrix(train);
  const std::vector<double> targets = train.calibratorTargets();
  AdamTrainer cal_tr(ft);
  cal_tr.fitRegression(model.calibratorNet(), cal_in, targets);
}

}  // namespace

ModelPruneReport pruneAndFinetune(SsmModel& model, const Dataset& train,
                                  const Dataset& holdout,
                                  const PruneParams& params,
                                  int finetune_epochs) {
  SSM_CHECK(model.trained(), "prune after training, not before");
  SSM_CHECK(finetune_epochs >= 0, "finetune_epochs must be >= 0");
  SSM_CHECK(params.steps >= 1, "need at least one pruning step");

  ModelPruneReport report;
  report.decision.flops_before = model.decisionNet().flops();
  report.calibrator.flops_before = model.calibratorNet().flops();

  // Iterative magnitude pruning: ramp the sparsity target and fine-tune
  // between steps so surviving weights absorb the pruned ones' function.
  const int per_step_epochs = finetune_epochs / params.steps;
  for (int step = 1; step <= params.steps; ++step) {
    const double target = params.x1 * static_cast<double>(step) /
                          static_cast<double>(params.steps);
    magnitudePruneTo(model.decisionNet(), target);
    magnitudePruneTo(model.calibratorNet(), target);
    finetune(model, train, per_step_epochs);
  }

  // Neuron-level stage at the final sparsity, then a last fine-tune.
  report.decision.neurons_removed =
      neuronPrune(model.decisionNet(), params.x2);
  report.calibrator.neurons_removed =
      neuronPrune(model.calibratorNet(), params.x2);
  finetune(model, train, per_step_epochs);
  // The packed engines snapshot weights at compile time; refresh them so
  // decisions pick up the pruned (and now much sparser) networks.
  model.recompilePacked();

  report.decision.flops_after = model.decisionNet().flops();
  report.decision.weight_sparsity = model.decisionNet().sparsity();
  report.calibrator.flops_after = model.calibratorNet().flops();
  report.calibrator.weight_sparsity = model.calibratorNet().sparsity();

  report.after_finetune.decision_accuracy = model.decisionAccuracy(holdout);
  report.after_finetune.calibrator_mape = model.calibratorMape(holdout);
  report.after_finetune.flops = model.flops();
  return report;
}

}  // namespace ssm
