#include "compress/rfe.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ssm {

namespace {

/// Shuffles one column of a matrix (deterministically).
void shuffleColumn(Matrix& m, std::size_t col, Rng& rng) {
  for (std::size_t r = m.rows(); r > 1; --r) {
    const auto j = static_cast<std::size_t>(rng.nextBelow(r));
    std::swap(m(r - 1, col), m(j, col));
  }
}

struct HoldoutViews {
  Matrix dec_in;
  std::vector<int> dec_labels;
  Matrix cal_in;
  std::vector<double> cal_targets;
};

HoldoutViews makeViews(const SsmModel& model, const Dataset& holdout) {
  HoldoutViews v;
  const auto& feats = model.config().features;
  v.dec_in = holdout.decisionInputs(feats);
  model.standardizeDecision(v.dec_in);
  v.dec_labels = holdout.decisionLabels();
  v.cal_in = holdout.calibratorInputs(feats, model.config().num_levels);
  model.standardizeCalibrator(v.cal_in);
  v.cal_targets = holdout.calibratorTargets();
  return v;
}

}  // namespace

SsmTrainSummary evaluateFeatureSet(const Dataset& train,
                                   const Dataset& holdout,
                                   const std::vector<CounterId>& features,
                                   const SsmModelConfig& base_cfg) {
  SsmModelConfig cfg = base_cfg;
  cfg.features = features;
  SsmModel model(cfg);
  return model.train(train, holdout);
}

RfeResult runRfe(const Dataset& train, const Dataset& holdout,
                 const RfeConfig& cfg) {
  SSM_CHECK(cfg.target_features >= 1, "must keep at least one feature");
  SSM_CHECK(!train.empty() && !holdout.empty(), "need train and holdout");

  // Start from all 47 counters.
  std::vector<CounterId> current;
  current.reserve(kNumCounters);
  for (int i = 0; i < kNumCounters; ++i)
    current.push_back(static_cast<CounterId>(i));

  const auto isProtected = [&](CounterId id) {
    return std::find(cfg.always_keep.begin(), cfg.always_keep.end(), id) !=
           cfg.always_keep.end();
  };

  RfeResult result;
  Rng rng(cfg.seed);

  SsmModelConfig model_cfg = cfg.model;
  model_cfg.train = cfg.train;
  model_cfg.features = current;
  SsmModel model(model_cfg);
  SsmTrainSummary summary = model.train(train, holdout);
  result.full_accuracy = summary.decision_accuracy;
  result.full_mape = summary.calibrator_mape;

  // Elimination proceeds checkpoint to checkpoint: rank by permutation
  // importance against the current model, drop down to the next checkpoint
  // size, retrain, repeat. The final checkpoint is the target size.
  std::vector<int> checkpoints = cfg.retrain_checkpoints;
  checkpoints.push_back(cfg.target_features);
  std::sort(checkpoints.begin(), checkpoints.end(), std::greater<>());
  std::erase_if(checkpoints, [&](int c) {
    return c >= kNumCounters || c < cfg.target_features;
  });
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());

  for (int checkpoint : checkpoints) {
    if (static_cast<int>(current.size()) <= checkpoint) continue;
    // Permutation importance for every (unprotected) feature, against the
    // current model.
    const HoldoutViews base = makeViews(model, holdout);
    const double base_acc =
        classifierAccuracy(model.decisionNet(), base.dec_in, base.dec_labels);
    const double base_mape = regressionMape(model.calibratorNet(), base.cal_in,
                                            base.cal_targets);

    std::vector<std::pair<CounterId, double>> scores;
    scores.reserve(current.size());
    for (std::size_t f = 0; f < current.size(); ++f) {
      Matrix dec_perm = base.dec_in;
      shuffleColumn(dec_perm, f, rng);
      const double acc = classifierAccuracy(model.decisionNet(), dec_perm,
                                            base.dec_labels);
      Matrix cal_perm = base.cal_in;
      shuffleColumn(cal_perm, f, rng);
      const double mape = regressionMape(model.calibratorNet(), cal_perm,
                                         base.cal_targets);
      const double importance =
          (base_acc - acc) + cfg.mape_weight * (mape - base_mape);
      scores.emplace_back(current[f], importance);
    }
    result.importance = scores;

    // Drop the least-important unprotected features down to the checkpoint.
    std::vector<std::size_t> order(scores.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return scores[a].second < scores[b].second;
    });

    const int drop_count = static_cast<int>(current.size()) - checkpoint;
    std::vector<CounterId> to_drop;
    for (std::size_t i : order) {
      if (static_cast<int>(to_drop.size()) >= drop_count) break;
      if (!isProtected(scores[i].first)) to_drop.push_back(scores[i].first);
    }
    SSM_CHECK(!to_drop.empty(),
              "all remaining features are protected; lower always_keep");
    std::erase_if(current, [&](CounterId id) {
      return std::find(to_drop.begin(), to_drop.end(), id) != to_drop.end();
    });

    model_cfg.features = current;
    model = SsmModel(model_cfg);
    summary = model.train(train, holdout);
  }

  result.selected = current;
  result.selected_accuracy = summary.decision_accuracy;
  result.selected_mape = summary.calibrator_mape;
  return result;
}

}  // namespace ssm
