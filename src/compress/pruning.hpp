// Two-stage pruning (§IV.C):
//   stage 1 — fine-grained pruning: zero the fraction x1 of smallest-
//             magnitude weights (per network);
//   stage 2 — neuron-level pruning: a hidden neuron whose incoming weight
//             vector is >= x2 zeros after stage 1 is removed entirely
//             (incoming row and outgoing column masked).
// The masks are persistent: fine-tuning afterwards never resurrects a
// pruned weight. The paper's chosen point is (x1, x2) = (0.6, 0.9).
#pragma once

#include <vector>

#include "core/ssm_model.hpp"
#include "nn/mlp.hpp"

namespace ssm {

struct PruneParams {
  double x1 = 0.6;  ///< fraction of smallest weights zeroed, in [0,1]
  double x2 = 0.9;  ///< zero-fraction above which a neuron is removed
  /// Magnitude pruning is applied gradually over this many steps with
  /// fine-tuning in between (iterative pruning); 1 = single-shot.
  int steps = 4;
};

struct PruneOutcome {
  std::int64_t flops_before = 0;
  std::int64_t flops_after = 0;
  int neurons_removed = 0;
  double weight_sparsity = 0.0;  ///< fraction of masked weights after both stages
};

/// Applies both pruning stages to one network in place (single shot:
/// magnitude-prunes so the network reaches `x1` total weight sparsity,
/// then removes neurons at the `x2` threshold).
PruneOutcome pruneNetwork(Mlp& net, const PruneParams& params);

/// Stage 1 only: magnitude-prunes until the network's total weight
/// sparsity reaches `target_sparsity` (no-op if already sparser).
void magnitudePruneTo(Mlp& net, double target_sparsity);

/// Stage 2 only: removes hidden neurons whose incoming weight vectors are
/// >= x2 zeros. Returns the number of neurons removed.
int neuronPrune(Mlp& net, double x2);

/// Prunes both heads of an SsmModel, then fine-tunes with the masks frozen
/// and returns the post-fine-tune holdout metrics.
struct ModelPruneReport {
  PruneOutcome decision;
  PruneOutcome calibrator;
  SsmTrainSummary after_finetune;
};
ModelPruneReport pruneAndFinetune(SsmModel& model, const Dataset& train,
                                  const Dataset& holdout,
                                  const PruneParams& params,
                                  int finetune_epochs = 2400);

}  // namespace ssm
