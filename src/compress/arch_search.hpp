// Layer-wise compression (§IV.B): sweep layer counts and hidden widths,
// recording FLOPs vs Decision-maker accuracy and Calibrator MAPE (the
// layer-wise curve of Fig. 3).
#pragma once

#include <vector>

#include "core/ssm_model.hpp"
#include "datagen/dataset.hpp"

namespace ssm {

/// One candidate architecture: hidden-layer widths for the two heads.
struct ArchCandidate {
  std::vector<int> decision_hidden;
  std::vector<int> calibrator_hidden;
};

struct ArchPoint {
  ArchCandidate arch;
  std::int64_t flops = 0;
  double accuracy = 0.0;  ///< holdout, [0,1]
  double mape = 0.0;      ///< holdout, percent
};

/// The sweep used in the paper's Fig. 3: from the original 9x20 network
/// down to architectures well past the accuracy knee.
[[nodiscard]] std::vector<ArchCandidate> defaultLayerwiseSweep();

/// Trains every candidate and reports its (FLOPs, accuracy, MAPE) point.
[[nodiscard]] std::vector<ArchPoint> layerwiseSweep(
    const Dataset& train, const Dataset& holdout,
    const std::vector<ArchCandidate>& candidates,
    const SsmModelConfig& base_cfg);

/// Picks the candidate with the fewest FLOPs whose accuracy is within
/// `max_acc_drop` (absolute) of the best observed accuracy — the paper's
/// "fewest layers that did not massively sacrifice accuracy" rule.
[[nodiscard]] const ArchPoint& pickCompressedArch(
    const std::vector<ArchPoint>& points, double max_acc_drop = 0.03);

}  // namespace ssm
