// Recursive Feature Elimination (§IV.A) over the 47 performance counters.
//
// Importance is measured by permutation: shuffle one feature column of the
// holdout set and record the drop in Decision-maker accuracy (plus a small
// weight on the Calibrator MAPE increase) — the paper's stated criterion.
// Elimination proceeds in rounds; the model is retrained at configurable
// feature-count checkpoints so rankings stay honest as the set shrinks.
// Power (PPC) is a *direct* feature (§III.B) and is always retained.
#pragma once

#include <utility>
#include <vector>

#include "core/ssm_model.hpp"
#include "counters/counters.hpp"
#include "datagen/dataset.hpp"

namespace ssm {

struct RfeConfig {
  int target_features = 5;
  /// Feature counts at which the model is retrained from scratch.
  std::vector<int> retrain_checkpoints{24, 12, 8, 5};
  /// Features never eliminated (the paper's direct feature: PPC).
  std::vector<CounterId> always_keep{CounterId::kPowerClusterW};
  /// Relative weight of the MAPE increase in the importance score.
  double mape_weight = 0.002;
  std::uint64_t seed = 0xfe1ec7ULL;
  TrainConfig train;
  SsmModelConfig model;  ///< architecture used during selection
};

struct RfeResult {
  std::vector<CounterId> selected;
  /// Metrics of the all-47-feature reference model.
  double full_accuracy = 0.0;
  double full_mape = 0.0;
  /// Metrics of the final model on the selected subset.
  double selected_accuracy = 0.0;
  double selected_mape = 0.0;
  /// Final-round permutation importance of the surviving features.
  std::vector<std::pair<CounterId, double>> importance;
};

[[nodiscard]] RfeResult runRfe(const Dataset& train, const Dataset& holdout,
                               const RfeConfig& cfg);

/// Trains a model on the given feature subset and reports holdout metrics
/// (helper shared by RFE and the Table I bench).
[[nodiscard]] SsmTrainSummary evaluateFeatureSet(
    const Dataset& train, const Dataset& holdout,
    const std::vector<CounterId>& features, const SsmModelConfig& base_cfg);

}  // namespace ssm
