#include "compress/arch_search.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm {

std::vector<ArchCandidate> defaultLayerwiseSweep() {
  return {
      // The original §III.D architecture: 5 + 4 hidden layers of 20.
      {{20, 20, 20, 20, 20}, {20, 20, 20, 20}},
      {{20, 20, 20}, {20, 20}},
      {{12, 12, 12}, {12, 12}},
      // The paper's compressed pick: 3 FC layers (2 hidden) + 2 FC layers
      // (1 hidden), 12 neurons each.
      {{12, 12}, {12}},
      {{8, 8}, {8}},
      {{6, 6}, {6}},
      {{4, 4}, {4}},
      {{4}, {4}},
      {{2}, {2}},
  };
}

std::vector<ArchPoint> layerwiseSweep(const Dataset& train,
                                      const Dataset& holdout,
                                      const std::vector<ArchCandidate>& candidates,
                                      const SsmModelConfig& base_cfg) {
  SSM_CHECK(!candidates.empty(), "no candidates to sweep");
  std::vector<ArchPoint> points;
  points.reserve(candidates.size());
  for (const auto& cand : candidates) {
    SsmModelConfig cfg = base_cfg;
    cfg.decision_hidden = cand.decision_hidden;
    cfg.calibrator_hidden = cand.calibrator_hidden;
    SsmModel model(cfg);
    const SsmTrainSummary s = model.train(train, holdout);
    points.push_back({cand, s.flops, s.decision_accuracy, s.calibrator_mape});
  }
  return points;
}

const ArchPoint& pickCompressedArch(const std::vector<ArchPoint>& points,
                                    double max_acc_drop) {
  SSM_CHECK(!points.empty(), "empty sweep");
  double best_acc = 0.0;
  for (const auto& p : points) best_acc = std::max(best_acc, p.accuracy);
  const ArchPoint* pick = nullptr;
  for (const auto& p : points) {
    if (p.accuracy + max_acc_drop < best_acc) continue;
    if (pick == nullptr || p.flops < pick->flops) pick = &p;
  }
  SSM_CHECK(pick != nullptr, "no candidate within the accuracy budget");
  return *pick;
}

}  // namespace ssm
