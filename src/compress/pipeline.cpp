#include "compress/pipeline.hpp"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "core/ssm_io.hpp"
#include "datagen/cache.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

PipelineConfig defaultPipelineConfig() {
  PipelineConfig cfg;
  cfg.gen.epochs_per_breakpoint = 6;  // denser breakpoints on short programs
  cfg.dataset_cache_path = artifactDir() + "/train_dataset.csv";
  cfg.model_cache_dir = artifactDir();
  return cfg;
}

namespace {

/// Counts hidden neurons whose incoming weights are fully masked (the
/// outcome of §IV.C neuron-level pruning), for reconstructing a prune
/// report from a cached model.
int deadHiddenNeurons(const Mlp& net) {
  int dead = 0;
  for (std::size_t l = 0; l + 1 < net.layerCount(); ++l) {
    const DenseLayer& layer = net.layer(l);
    for (int j = 0; j < layer.outDim(); ++j) {
      bool any = false;
      for (int i = 0; i < layer.inDim() && !any; ++i)
        any = layer.mask()(static_cast<std::size_t>(j),
                           static_cast<std::size_t>(i)) != 0.0;
      dead += !any;
    }
  }
  return dead;
}

/// A cheap corpus fingerprint: invalidates cached models whenever the
/// dataset they were trained on changes.
std::string corpusFingerprint(const Dataset& ds) {
  double loss_sum = 0.0;
  double insts_sum = 0.0;
  for (const auto& p : ds.points()) {
    loss_sum += p.perf_loss;
    insts_sum += p.insts_k;
  }
  std::ostringstream os;
  os.precision(12);
  os << ds.size() << ' ' << loss_sum << ' ' << insts_sum;
  return os.str();
}

}  // namespace

FullSystem buildFullSystem(const PipelineConfig& cfg) {
  FullSystem sys;

  const DataGenerator gen(cfg.gpu, VfTable::titanX(), cfg.gen);
  const auto make = [&] {
    return gen.generate(cfg.workloads.empty() ? trainingWorkloads()
                                              : cfg.workloads);
  };
  Dataset all = cfg.dataset_cache_path.empty()
                    ? make()
                    : getOrGenerateDataset(cfg.dataset_cache_path, make);
  SSM_CHECK(all.size() > 100, "training corpus is implausibly small");

  auto [train, holdout] = all.split(1.0 - cfg.holdout_frac, cfg.split_seed);
  sys.train = std::move(train);
  sys.holdout = std::move(holdout);

  // --- model cache fast path ------------------------------------------------
  const std::string unc_path =
      cfg.model_cache_dir.empty() ? ""
                                  : cfg.model_cache_dir +
                                        "/model_uncompressed.txt";
  const std::string cmp_path =
      cfg.model_cache_dir.empty() ? ""
                                  : cfg.model_cache_dir +
                                        "/model_compressed.txt";
  const std::string fp_path =
      cfg.model_cache_dir.empty() ? ""
                                  : cfg.model_cache_dir +
                                        "/model_corpus_fingerprint.txt";
  const std::string fingerprint = corpusFingerprint(all);
  const auto fingerprint_matches = [&] {
    std::ifstream is(fp_path);
    std::string stored;
    return is && std::getline(is, stored) && stored == fingerprint;
  };

  if (!unc_path.empty() && std::filesystem::exists(unc_path) &&
      std::filesystem::exists(cmp_path) && fingerprint_matches()) {
    try {
      sys.uncompressed = std::make_shared<SsmModel>(loadModel(unc_path));
      sys.compressed = std::make_shared<SsmModel>(loadModel(cmp_path));
      sys.uncompressed_summary.decision_accuracy =
          sys.uncompressed->decisionAccuracy(sys.holdout);
      sys.uncompressed_summary.calibrator_mape =
          sys.uncompressed->calibratorMape(sys.holdout);
      sys.uncompressed_summary.flops = sys.uncompressed->flops();
      sys.prune_report.after_finetune.decision_accuracy =
          sys.compressed->decisionAccuracy(sys.holdout);
      sys.prune_report.after_finetune.calibrator_mape =
          sys.compressed->calibratorMape(sys.holdout);
      sys.prune_report.after_finetune.flops = sys.compressed->flops();
      sys.prune_report.decision.flops_after =
          sys.compressed->decisionNet().flops();
      sys.prune_report.decision.weight_sparsity =
          sys.compressed->decisionNet().sparsity();
      sys.prune_report.decision.neurons_removed =
          deadHiddenNeurons(sys.compressed->decisionNet());
      sys.prune_report.calibrator.flops_after =
          sys.compressed->calibratorNet().flops();
      sys.prune_report.calibrator.weight_sparsity =
          sys.compressed->calibratorNet().sparsity();
      sys.prune_report.calibrator.neurons_removed =
          deadHiddenNeurons(sys.compressed->calibratorNet());
      return sys;
    } catch (const std::exception&) {
      // Corrupt cache: fall through and retrain.
    }
  }

  // --- train from scratch ---------------------------------------------------
  // Uncompressed §III.D model.
  sys.uncompressed = std::make_shared<SsmModel>(cfg.model);
  sys.uncompressed_summary = sys.uncompressed->train(sys.train, sys.holdout);

  // Layer-wise-compressed architecture (§IV.B) + pruning (§IV.C).
  SsmModelConfig ccfg = cfg.model;
  const SsmModelConfig arch = SsmModelConfig::compressedArch();
  ccfg.decision_hidden = arch.decision_hidden;
  ccfg.calibrator_hidden = arch.calibrator_hidden;
  sys.compressed = std::make_shared<SsmModel>(ccfg);
  sys.compressed->train(sys.train, sys.holdout);
  sys.prune_report =
      pruneAndFinetune(*sys.compressed, sys.train, sys.holdout, cfg.prune);

  if (!unc_path.empty()) {
    saveModel(*sys.uncompressed, unc_path);
    saveModel(*sys.compressed, cmp_path);
    std::ofstream os(fp_path);
    os << fingerprint << '\n';
  }
  return sys;
}

}  // namespace ssm
