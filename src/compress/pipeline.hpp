// End-to-end SSMDVFS build-up (Fig. 2): data generation → training →
// layer-wise compression → pruning. Shared by the experiment harnesses and
// the examples so every artifact derives from the same corpus.
#pragma once

#include <memory>
#include <string>

#include "compress/pruning.hpp"
#include "core/ssm_model.hpp"
#include "datagen/generator.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {

struct PipelineConfig {
  GpuConfig gpu;
  GenConfig gen;
  SsmModelConfig model;            ///< uncompressed (§III.D) architecture
  PruneParams prune;               ///< the paper's (0.6, 0.9)
  /// Corpus workloads; empty = trainingWorkloads() (the §V.A training set).
  std::vector<KernelProfile> workloads;
  double holdout_frac = 0.25;
  std::uint64_t split_seed = 0x5117ULL;
  /// When non-empty, the generated dataset is cached at this CSV path.
  std::string dataset_cache_path;
  /// When non-empty, trained models are cached in this directory
  /// (model_uncompressed.txt / model_compressed.txt) so that every bench
  /// binary shares one training run.
  std::string model_cache_dir;
};

struct FullSystem {
  Dataset train;
  Dataset holdout;
  std::shared_ptr<SsmModel> uncompressed;
  SsmTrainSummary uncompressed_summary;
  std::shared_ptr<SsmModel> compressed;  ///< 5x12 arch + (0.6,0.9) pruning
  ModelPruneReport prune_report;
};

/// Builds the complete system from the training workloads (or a caller-
/// supplied corpus). Deterministic for a fixed config.
[[nodiscard]] FullSystem buildFullSystem(const PipelineConfig& cfg);

/// Default pipeline configuration used by all §V experiments.
[[nodiscard]] PipelineConfig defaultPipelineConfig();

}  // namespace ssm
