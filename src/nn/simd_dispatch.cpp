// Tier selection for the SIMD inference kernels. Detection runs once per
// process: the SSMDVFS_FORCE_SCALAR compile definition / environment
// variable pins the scalar tier (keeping goldens byte-identical to the
// historical engine), otherwise x86-64 hosts that report AVX2 get the
// AVX2 table and aarch64 hosts get NEON.
#include "nn/simd.hpp"

#include <cstdlib>

#include "nn/simd_kernels.hpp"

namespace ssm {

namespace {

const SimdKernels kScalarKernels{
    &simd_detail::denseLayer<simd_detail::ScalarPolicy>,
    &simd_detail::sellLayer<simd_detail::ScalarPolicy>};

SimdTier detectTier() noexcept {
#if defined(SSMDVFS_FORCE_SCALAR)
  return SimdTier::kScalar;
#else
  // Opt-out escape hatch: any non-empty value other than "0" forces the
  // scalar engine (used by CI to prove golden byte-identity).
  const char* env = std::getenv("SSMDVFS_FORCE_SCALAR");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0'))
    return SimdTier::kScalar;
#if defined(__x86_64__)
  return __builtin_cpu_supports("avx2") ? SimdTier::kAvx2 : SimdTier::kScalar;
#elif defined(__aarch64__)
  return SimdTier::kNeon;
#else
  return SimdTier::kScalar;
#endif
#endif
}

bool g_override_set = false;
SimdTier g_override_tier = SimdTier::kScalar;

}  // namespace

SimdTier activeSimdTier() noexcept {
  if (g_override_set) return g_override_tier;
  static const SimdTier detected = detectTier();
  return detected;
}

const SimdKernels* kernelsForTier(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return &kScalarKernels;
    case SimdTier::kAvx2:
      return simd_detail::avx2Kernels();
    case SimdTier::kNeon:
      return simd_detail::neonKernels();
  }
  return nullptr;
}

const SimdKernels* activeKernels() noexcept {
  const SimdTier tier = activeSimdTier();
  if (tier == SimdTier::kScalar) return nullptr;
  return kernelsForTier(tier);
}

const char* simdTierName(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
  }
  return "scalar";
}

void overrideSimdTierForTest(SimdTier tier) noexcept {
  g_override_tier = tier;
  g_override_set = true;
}

void clearSimdTierOverrideForTest() noexcept { g_override_set = false; }

}  // namespace ssm
