#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/stats.hpp"
#include "nn/packed_mlp.hpp"

namespace ssm {

AdamTrainer::AdamTrainer(TrainConfig cfg)
    : cfg_(cfg), current_lr_(cfg.learning_rate) {
  SSM_CHECK(cfg_.epochs > 0 && cfg_.batch_size > 0,
            "epochs and batch size must be positive");
  SSM_CHECK(cfg_.learning_rate > 0.0, "learning rate must be positive");
}

double AdamTrainer::lrForEpoch(int epoch) const noexcept {
  const double frac =
      static_cast<double>(epoch) / static_cast<double>(cfg_.epochs);
  double lr = cfg_.learning_rate;
  if (frac >= cfg_.lr_step1_frac) lr *= cfg_.lr_decay;
  if (frac >= cfg_.lr_step2_frac) lr *= cfg_.lr_decay;
  return lr;
}

void AdamTrainer::zeroGrads(const Mlp& net) {
  grad_w_.resize(net.layerCount());
  grad_b_.resize(net.layerCount());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    grad_w_[l].assign(net.layer(l).weights().size(), 0.0);
    grad_b_[l].assign(net.layer(l).bias().size(), 0.0);
  }
  batch_count_ = 0;
}

void AdamTrainer::backwardAccumulate(
    Mlp& net, const std::vector<std::vector<double>>& acts,
    std::span<const double> grad_out) {
  // acts[l] is the activation entering layer l (acts[0] = input);
  // acts[L] is the network output before the head transform.
  std::vector<double> grad(grad_out.begin(), grad_out.end());
  for (std::size_t li = net.layerCount(); li-- > 0;) {
    DenseLayer& layer = net.layer(li);
    const std::vector<double>& in = acts[li];
    std::vector<double> grad_in(in.size(), 0.0);
    const Matrix& w = layer.weights();
    const Matrix& m = layer.mask();
    auto& gw = grad_w_[li];
    auto& gb = grad_b_[li];
    const std::size_t in_dim = in.size();
    for (std::size_t o = 0; o < grad.size(); ++o) {
      const double g = grad[o];
      gb[o] += g;
      const std::size_t base = o * in_dim;
      for (std::size_t i = 0; i < in_dim; ++i) {
        gw[base + i] += g * in[i];
        grad_in[i] += g * w(o, i) * m(o, i);
      }
    }
    if (li > 0) {
      // Backprop through the ReLU that produced acts[li].
      for (std::size_t i = 0; i < grad_in.size(); ++i)
        if (acts[li][i] <= 0.0) grad_in[i] = 0.0;
    }
    grad.swap(grad_in);
  }
}

void AdamTrainer::adamStep(Mlp& net, int t) {
  if (batch_count_ == 0) return;
  const double inv_batch = 1.0 / static_cast<double>(batch_count_);
  const double bc1 = 1.0 - std::pow(cfg_.beta1, t);
  const double bc2 = 1.0 - std::pow(cfg_.beta2, t);

  adam_.resize(net.layerCount());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    DenseLayer& layer = net.layer(l);
    AdamState& st = adam_[l];
    if (st.m_w.size() != layer.weights().size()) {
      st.m_w.assign(layer.weights().size(), 0.0);
      st.v_w.assign(layer.weights().size(), 0.0);
      st.m_b.assign(layer.bias().size(), 0.0);
      st.v_b.assign(layer.bias().size(), 0.0);
    }
    const auto w = layer.weights().flat();
    const auto mask = layer.mask().flat();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (mask[i] == 0.0) continue;  // pruned weights are frozen at zero
      const double g = grad_w_[l][i] * inv_batch + cfg_.l2 * w[i];
      st.m_w[i] = cfg_.beta1 * st.m_w[i] + (1.0 - cfg_.beta1) * g;
      st.v_w[i] = cfg_.beta2 * st.v_w[i] + (1.0 - cfg_.beta2) * g * g;
      const double mhat = st.m_w[i] / bc1;
      const double vhat = st.v_w[i] / bc2;
      w[i] -= current_lr_ * mhat / (std::sqrt(vhat) + cfg_.adam_eps);
    }
    auto& b = layer.bias();
    for (std::size_t i = 0; i < b.size(); ++i) {
      const double g = grad_b_[l][i] * inv_batch;
      st.m_b[i] = cfg_.beta1 * st.m_b[i] + (1.0 - cfg_.beta1) * g;
      st.v_b[i] = cfg_.beta2 * st.v_b[i] + (1.0 - cfg_.beta2) * g * g;
      const double mhat = st.m_b[i] / bc1;
      const double vhat = st.v_b[i] / bc2;
      b[i] -= current_lr_ * mhat / (std::sqrt(vhat) + cfg_.adam_eps);
    }
  }
  net.applyMasks();
}

namespace {

/// Forward pass that records every layer's input activation plus the raw
/// output (before softmax). Mirrors Mlp::forward.
std::vector<std::vector<double>> forwardTrace(const Mlp& net,
                                              std::span<const double> input) {
  std::vector<std::vector<double>> acts;
  acts.reserve(net.layerCount() + 1);
  acts.emplace_back(input.begin(), input.end());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const DenseLayer& layer = net.layer(l);
    std::vector<double> out(static_cast<std::size_t>(layer.outDim()), 0.0);
    const Matrix& w = layer.weights();
    const auto& in = acts.back();
    for (std::size_t o = 0; o < out.size(); ++o) {
      double acc = layer.bias()[o];
      for (std::size_t i = 0; i < in.size(); ++i) acc += w(o, i) * in[i];
      out[o] = acc;
    }
    if (l + 1 < net.layerCount())
      for (double& v : out) v = std::max(0.0, v);
    acts.push_back(std::move(out));
  }
  return acts;
}

}  // namespace

std::vector<TrainLogEntry> AdamTrainer::fitClassifier(
    Mlp& net, const Matrix& inputs, std::span<const int> labels) {
  SSM_CHECK(net.head() == Head::kSoftmaxClassifier,
            "fitClassifier needs a classifier net");
  SSM_CHECK(inputs.rows() == labels.size(), "inputs/labels size mismatch");
  SSM_CHECK(static_cast<int>(inputs.cols()) == net.inputDim(),
            "input width mismatch");
  for (int y : labels)
    SSM_CHECK(y >= 0 && y < net.outputDim(), "label out of range");

  Rng rng(cfg_.shuffle_seed);
  std::vector<std::size_t> order(inputs.rows());
  std::iota(order.begin(), order.end(), 0u);

  std::vector<TrainLogEntry> log;
  adam_.clear();
  int t = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    current_lr_ = lrForEpoch(epoch);
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t idx = 0;
    while (idx < order.size()) {
      zeroGrads(net);
      const std::size_t stop =
          std::min(order.size(), idx + static_cast<std::size_t>(cfg_.batch_size));
      for (; idx < stop; ++idx) {
        const std::size_t r = order[idx];
        auto acts = forwardTrace(net, inputs.row(r));
        std::vector<double> probs = acts.back();
        softmaxInPlace(probs);
        const int y = labels[r];
        loss_sum += -std::log(std::max(probs[static_cast<std::size_t>(y)],
                                       1e-12));
        probs[static_cast<std::size_t>(y)] -= 1.0;  // dCE/dlogits
        ++batch_count_;
        backwardAccumulate(net, acts, probs);
      }
      adamStep(net, ++t);
    }
    log.push_back({epoch, loss_sum / static_cast<double>(inputs.rows())});
  }
  return log;
}

std::vector<TrainLogEntry> AdamTrainer::fitRegression(
    Mlp& net, const Matrix& inputs, std::span<const double> targets) {
  SSM_CHECK(net.head() == Head::kRegression,
            "fitRegression needs a regression net");
  SSM_CHECK(inputs.rows() == targets.size(), "inputs/targets size mismatch");
  SSM_CHECK(net.outputDim() == 1, "scalar regression expected");

  Rng rng(cfg_.shuffle_seed + 1);
  std::vector<std::size_t> order(inputs.rows());
  std::iota(order.begin(), order.end(), 0u);

  std::vector<TrainLogEntry> log;
  adam_.clear();
  int t = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    current_lr_ = lrForEpoch(epoch);
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t idx = 0;
    while (idx < order.size()) {
      zeroGrads(net);
      const std::size_t stop =
          std::min(order.size(), idx + static_cast<std::size_t>(cfg_.batch_size));
      for (; idx < stop; ++idx) {
        const std::size_t r = order[idx];
        auto acts = forwardTrace(net, inputs.row(r));
        const double pred = acts.back()[0];
        const double err = pred - targets[r];
        loss_sum += err * err;
        const std::vector<double> grad{2.0 * err};
        ++batch_count_;
        backwardAccumulate(net, acts, grad);
      }
      adamStep(net, ++t);
    }
    log.push_back({epoch, loss_sum / static_cast<double>(inputs.rows())});
  }
  return log;
}

double classifierAccuracy(const Mlp& net, const Matrix& inputs,
                          std::span<const int> labels) {
  SSM_CHECK(inputs.rows() == labels.size(), "inputs/labels size mismatch");
  if (inputs.rows() == 0) return 0.0;
  // Evaluation sweeps the whole holdout every call: compile once and run
  // the batched packed engine (bit-identical to per-row Mlp::forward).
  const PackedMlp packed(net);
  auto scratch = packed.makeScratch();
  Matrix out(inputs.rows(), static_cast<std::size_t>(net.outputDim()));
  packed.forwardBatch(inputs, scratch, out);
  std::size_t hits = 0;
  for (std::size_t r = 0; r < inputs.rows(); ++r) {
    const auto probs = out.row(r);
    const int pred = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    hits += pred == labels[r];
  }
  return static_cast<double>(hits) / static_cast<double>(inputs.rows());
}

double regressionMape(const Mlp& net, const Matrix& inputs,
                      std::span<const double> targets) {
  SSM_CHECK(inputs.rows() == targets.size(), "inputs/targets size mismatch");
  const PackedMlp packed(net);
  auto scratch = packed.makeScratch();
  Matrix out(inputs.rows(), static_cast<std::size_t>(net.outputDim()));
  packed.forwardBatch(inputs, scratch, out);
  std::vector<double> preds(inputs.rows());
  for (std::size_t r = 0; r < inputs.rows(); ++r) preds[r] = out(r, 0);
  return mapePercent(targets, preds, /*floor=*/1e-3);
}

}  // namespace ssm
