// Packed inference engine: the §IV.B–C payoff, cashed in.
//
// `Mlp::forward` heap-allocates two std::vector<double> per call and
// multiplies densely through weights the pruning mask already zeroed, so a
// (0.6, 0.9) two-stage-pruned model still pays for 6960 dense FLOPs. A
// PackedMlp is a compiled snapshot of a trained network optimised for the
// 10 µs decision path:
//
//   * all layer weights live in one contiguous, layer-fused buffer (dense
//     rows or CSR triples), biases in another — one cache stream per pass;
//   * the caller owns the ping-pong activation scratch, so a forward pass
//     performs zero heap allocations (enforced by the `hot-path-alloc`
//     ssm_lint rule on this header and asserted by tests/test_packed.cpp);
//   * a layer whose live-weight density falls below the configured
//     threshold is lowered to a CSR sparse matvec, so the pruned model
//     executes ~366 useful FLOPs instead of the dense 6960;
//   * a batched entry point evaluates many feature rows in one call with
//     one traversal of the weight stream per layer (Decision-maker over
//     all clusters, Calibrator over all V/f levels, evaluation loops).
//
// Numerical contract: for finite inputs the packed pass reproduces
// `Mlp::forward` exactly — the CSR path only skips terms whose stored
// weight is exactly zero, and the surviving terms keep the dense loop's
// accumulation order — so governors, sweeps and datagen switch engines
// without changing a single decision (goldens stay byte-identical).
//
// Staleness contract: a PackedMlp is a snapshot. After mutating the source
// network's weights or masks (pruning, fine-tuning), recompile; SsmModel
// owns that trigger via recompilePacked(), and audit builds cross-check
// packed output against the reference net on every decision.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "nn/mlp.hpp"
#include "nn/simd.hpp"

namespace ssm {

class QuantizedMlp;

struct PackedMlpConfig {
  /// A layer whose live-weight density is strictly below this compiles to
  /// CSR; denser layers keep the fused dense layout. 0 forces all-dense,
  /// anything above 1 forces all-CSR. The default is tuned on the deployed
  /// (0.6, 0.9)-pruned Decision-maker: its first layer lands at ~0.56
  /// density, where the shorter CSR accumulation chains still beat the
  /// dense row walk on the decision-latency benchmark.
  double sparse_density_threshold = 0.6;
};

class PackedMlp {
 public:
  /// Caller-owned activation buffers. Create with makeScratch() (sized for
  /// one row) and grow with reserveBatchScratch() before batched calls; a
  /// correctly sized scratch makes every forward entry allocation-free.
  struct Scratch {
    std::vector<double> ping;
    std::vector<double> pong;
    std::vector<double> head;  ///< output row for predictClass/predictScalar
  };

  PackedMlp() = default;

  /// Compiles a float network. The source net is not referenced afterwards.
  explicit PackedMlp(const Mlp& net, const PackedMlpConfig& cfg = {});

  /// Compiles a quantized network: weights are pre-dequantized
  /// (w_q * weight_scale) and the inter-layer activation requantization is
  /// replayed as a per-layer post-op, reproducing QuantizedMlp::forward
  /// exactly.
  explicit PackedMlp(const QuantizedMlp& net, const PackedMlpConfig& cfg = {});

  [[nodiscard]] bool compiled() const noexcept { return !layers_.empty(); }
  [[nodiscard]] int inputDim() const noexcept { return input_dim_; }
  [[nodiscard]] int outputDim() const noexcept { return output_dim_; }
  [[nodiscard]] Head head() const noexcept { return head_; }
  [[nodiscard]] std::size_t layerCount() const noexcept {
    return layers_.size();
  }
  /// Number of layers lowered to the CSR sparse matvec.
  [[nodiscard]] std::size_t sparseLayerCount() const noexcept;
  /// FLOPs one forward pass actually executes: 2 per stored (non-zero)
  /// weight + one bias add per output neuron + one ReLU per hidden neuron.
  [[nodiscard]] std::int64_t flopsExecuted() const noexcept;

  /// Allocates scratch sized for single-row inference (cold path).
  [[nodiscard]] Scratch makeScratch() const;

  /// Grows `s` so forwardBatch can process up to `rows` rows without
  /// allocating (cold path; no-op when already large enough).
  void reserveBatchScratch(Scratch& s, std::size_t rows) const;

  /// Single-row forward. `out.size()` must equal outputDim(); for the
  /// classifier head `out` receives the softmax probabilities. Performs no
  /// heap allocation.
  void forward(std::span<const double> input, Scratch& s,
               std::span<double> out) const {
    checkSingle(input, s);
    SSM_CHECK(static_cast<int>(out.size()) == output_dim_,
              "output width mismatch");
    forwardRaw(input.data(), s, out.data());
    finishHead(out.data());
  }

  /// Classifier convenience: argmax class. Allocation-free.
  [[nodiscard]] int predictClass(std::span<const double> input,
                                 Scratch& s) const {
    SSM_CHECK(head_ == Head::kSoftmaxClassifier,
              "predictClass requires a classifier head");
    checkSingle(input, s);
    forwardRaw(input.data(), s, s.head.data());
    // No softmax needed: argmax over logits == argmax over probabilities.
    const double* h = s.head.data();
    return static_cast<int>(std::max_element(h, h + output_dim_) - h);
  }

  /// Regression convenience: first output. Allocation-free.
  [[nodiscard]] double predictScalar(std::span<const double> input,
                                     Scratch& s) const {
    SSM_CHECK(head_ == Head::kRegression,
              "predictScalar requires a regression head");
    checkSingle(input, s);
    forwardRaw(input.data(), s, s.head.data());
    return s.head[0];
  }

  /// Batched forward: `rows` is R x inputDim, `out` must be R x outputDim.
  /// Each layer's weight stream is traversed once for the whole batch;
  /// per-row results are identical to R single-row forward calls. Grows the
  /// scratch on first use for a given R (amortised allocation-free).
  void forwardBatch(const Matrix& rows, Scratch& s, Matrix& out) const;

 private:
  /// One compiled layer; offsets index the fused pools below.
  struct Layer {
    int in = 0;
    int out = 0;
    bool sparse = false;   ///< CSR matvec instead of dense rows
    bool vec_dense = true; ///< vector path: dense panel instead of SELL
    bool relu = false;     ///< hidden layer: clamp activations at zero
    bool requant = false;  ///< quantized-activation emulation post-op
    double act_scale = 1.0;
    double act_qmax = 0.0;
    std::size_t w_off = 0;       ///< dense_w_: out*in doubles (dense only)
    std::size_t val_off = 0;     ///< csr_vals_/csr_cols_ (sparse only)
    std::size_t rowptr_off = 0;  ///< csr_rowptr_: out+1 entries
    std::size_t bias_off = 0;    ///< bias_: out doubles
    // SIMD layouts (see src/nn/simd.hpp): blocked-interleaved dense panel,
    // padded bias, and the SELL-4 streams for sparse layers.
    std::size_t blk_off = 0;     ///< blk_w_: ceil(out/4)*4*in doubles
    std::size_t bbias_off = 0;   ///< blk_bias_: ceil(out/4)*4 doubles
    std::size_t sell_off = 0;    ///< sell_vals_/sell_cols_ (sparse only)
    std::size_t grp_off = 0;     ///< sell_grpoff_: ngroups+1 entries
    std::size_t nnz_off = 0;     ///< sell_nnz_: ceil(out/4)*4 entries
  };

  /// Shared compile tail: lowers `layer` from a dense row-major weight
  /// view and appends it to the pools.
  void packLayer(std::span<const double> weights, std::span<const double> bias,
                 int in_dim, int out_dim, double density_threshold);

  void checkSingle(std::span<const double> input, const Scratch& s) const {
    SSM_CHECK(compiled(), "PackedMlp not compiled");
    SSM_CHECK(static_cast<int>(input.size()) == input_dim_,
              "input width mismatch");
    SSM_CHECK(s.ping.size() >= static_cast<std::size_t>(padded_width_) &&
                  s.pong.size() >= static_cast<std::size_t>(padded_width_) &&
                  s.head.size() >= static_cast<std::size_t>(output_dim_),
              "scratch too small; create it with makeScratch()");
  }

  /// ReLU / requant post-ops on one accumulated neuron. Fused into the
  /// matvec row loop so each activation is produced in a single pass; the
  /// operations themselves are identical to Mlp::forward's separate sweeps.
  [[nodiscard]] static double finishNeuron(const Layer& l,
                                           double acc) noexcept {
    if (l.relu) acc = std::max(0.0, acc);
    if (l.requant)
      acc = std::clamp(std::nearbyint(acc / l.act_scale), -l.act_qmax,
                       l.act_qmax) *
            l.act_scale;
    return acc;
  }

  /// y = mask(W) x + b for one compiled layer, then the ReLU / requant
  /// post-ops. Accumulation order matches Mlp::forward bit-for-bit. When
  /// the dispatcher selected a vector tier at compile time, the layer runs
  /// through the SIMD kernels (one output neuron per lane, same per-lane
  /// accumulation order — bit-identical results for finite inputs; see
  /// src/nn/simd.hpp); otherwise the historical scalar loops below run,
  /// which is also the SSMDVFS_FORCE_SCALAR golden path.
  ///
  /// Sparse-classified layers whose packed cost model found SELL
  /// unprofitable (!l.vec_dense is SELL) run the dense vector kernel
  /// instead: same term order as Mlp::forward, so exactness is preserved —
  /// the dense walk adds the pruned weights' exact-zero products, which is
  /// what the reference network itself does.
  void layerForward(const Layer& l, const double* in,
                    double* out) const noexcept {
    if (kernels_ != nullptr) {
      const SimdPostOp post{l.relu, l.requant, l.act_scale, l.act_qmax};
      if (l.sparse && !l.vec_dense)
        kernels_->sell(sell_vals_.data() + l.sell_off,
                       sell_cols_.data() + l.sell_off,
                       sell_grpoff_.data() + l.grp_off,
                       sell_nnz_.data() + l.nnz_off,
                       blk_bias_.data() + l.bbias_off, in, l.out, post, out);
      else
        kernels_->dense(blk_w_.data() + l.blk_off,
                        blk_bias_.data() + l.bbias_off, in, l.in, l.out,
                        post, out);
      return;
    }
    const double* bias = bias_.data() + l.bias_off;
    if (l.sparse) {
      const double* vals = csr_vals_.data() + l.val_off;
      const std::int32_t* cols = csr_cols_.data() + l.val_off;
      const std::int32_t* rowptr = csr_rowptr_.data() + l.rowptr_off;
      for (int o = 0; o < l.out; ++o) {
        double acc = bias[o];
        const std::int32_t end = rowptr[o + 1];
        for (std::int32_t k = rowptr[o]; k < end; ++k)
          acc += vals[k] * in[cols[k]];
        out[o] = finishNeuron(l, acc);
      }
    } else {
      const double* w = dense_w_.data() + l.w_off;
      for (int o = 0; o < l.out; ++o) {
        const double* wr = w + static_cast<std::size_t>(o) *
                                   static_cast<std::size_t>(l.in);
        double acc = bias[o];
        for (int i = 0; i < l.in; ++i) acc += wr[i] * in[i];
        out[o] = finishNeuron(l, acc);
      }
    }
  }

  /// Runs every layer ping-pong and writes the raw head row (pre-softmax)
  /// into `out` (>= outputDim doubles). The first layer reads the caller's
  /// input in place, so nothing is copied into the scratch up front.
  void forwardRaw(const double* input, Scratch& s,
                  double* out) const noexcept {
    const double* in = input;
    double* cur = s.ping.data();
    double* nxt = s.pong.data();
    for (const Layer& l : layers_) {
      layerForward(l, in, cur);
      in = cur;
      std::swap(cur, nxt);
    }
    for (int o = 0; o < output_dim_; ++o) out[o] = in[o];
  }

  /// Head post-op on a raw output row (softmax for classifiers).
  void finishHead(double* out) const noexcept {
    if (head_ == Head::kSoftmaxClassifier)
      softmaxInPlace({out, static_cast<std::size_t>(output_dim_)});
  }

  Head head_ = Head::kRegression;
  int input_dim_ = 0;
  int output_dim_ = 0;
  int max_width_ = 0;  ///< widest activation row across all layers
  /// Scratch row width: max_width_ with every layer's output rounded up
  /// to a multiple of 4, so the SIMD kernels' full-width vector stores
  /// land inside the row regardless of ragged tails. Padding lanes hold
  /// junk that no layer reads.
  int padded_width_ = 0;
  /// Kernel table the dispatcher selected when this model was compiled;
  /// nullptr runs the scalar loops.
  const SimdKernels* kernels_ = nullptr;
  std::vector<Layer> layers_;
  std::vector<double> dense_w_;        ///< fused dense rows
  std::vector<double> csr_vals_;       ///< fused CSR values
  std::vector<std::int32_t> csr_cols_; ///< fused CSR column indices
  std::vector<std::int32_t> csr_rowptr_;
  std::vector<double> bias_;           ///< fused biases
  std::vector<double> blk_w_;          ///< blocked-interleaved dense panels
  std::vector<double> blk_bias_;       ///< biases padded to 4-row blocks
  std::vector<double> sell_vals_;      ///< SELL-4 values (slot-major)
  std::vector<std::int32_t> sell_cols_;
  std::vector<std::size_t> sell_grpoff_;
  std::vector<std::int64_t> sell_nnz_; ///< per padded row true nnz
};

}  // namespace ssm
