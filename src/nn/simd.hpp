// Runtime-dispatched SIMD inference kernels for the packed engine.
//
// The decision path runs one PackedMlp forward per 10 µs epoch, and the
// batched entry points (Calibrator, datagen, evaluation sweeps) run
// thousands; both bottom out in the dense / CSR matvec loops. This seam
// lets those loops execute 4 output neurons per instruction where the
// host supports it, without giving up the repo's exactness contract:
//
//   * the kernels vectorize ACROSS output rows — each SIMD lane owns one
//     output neuron and performs the same multiply-then-add chain, in the
//     same input order, as the scalar loop (no FMA contraction, no
//     reassociation), so lane results are bit-identical to the scalar
//     engine for finite inputs;
//   * post-ops (ReLU, activation requantization) use vector instructions
//     whose IEEE semantics match the scalar std::max / std::nearbyint /
//     std::clamp sequence exactly (see simd_kernels.hpp for the operand
//     order arguments);
//   * tier selection happens once at startup: AVX2 on x86-64 hosts that
//     report it, NEON on aarch64, otherwise scalar. `activeKernels()`
//     returns nullptr for the scalar tier, which makes PackedMlp fall back
//     to its historical (and separately validated) scalar loops — so a
//     scalar host, the SSMDVFS_FORCE_SCALAR=1 environment override, and
//     the -DSSMDVFS_FORCE_SCALAR=ON CMake option all reproduce today's
//     goldens byte-for-byte by construction.
//
// tests/test_simd.cpp property-checks SIMD-vs-scalar equivalence across
// layer shapes, densities and ragged tails; bench_micro_perf records the
// dispatched tier in BENCH_inference.json so bench_check can skip
// SIMD-specific floors on scalar hosts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssm {

/// Vector instruction tier the dispatcher selected.
enum class SimdTier { kScalar, kAvx2, kNeon };

/// Post-op parameters for one layer, mirroring PackedMlp's Layer fields.
struct SimdPostOp {
  bool relu = false;
  bool requant = false;
  double act_scale = 1.0;
  double act_qmax = 0.0;
};

/// Whole-layer dense matvec over the blocked-interleaved weight layout:
/// for each 4-row output block, `wblk` stores in_dim groups of 4 lane
/// weights (rows past out_dim zero-padded); `bias` and `out` are padded to
/// a multiple of 4 entries.
using DenseLayerFn = void (*)(const double* wblk, const double* bias,
                              const double* in, int in_dim, int out_dim,
                              const SimdPostOp& post, double* out);

/// Whole-layer sparse matvec over the SELL-4 layout: rows are grouped in
/// fours, `grpoff` holds ngroups+1 offsets into the interleaved
/// `vals`/`cols` streams (group width = (grpoff[g+1]-grpoff[g])/4), and
/// `nnz` gives each row's true nonzero count for the slot-liveness mask.
using SellLayerFn = void (*)(const double* vals, const std::int32_t* cols,
                             const std::size_t* grpoff,
                             const std::int64_t* nnz, const double* bias,
                             const double* in, int out_dim,
                             const SimdPostOp& post, double* out);

struct SimdKernels {
  DenseLayerFn dense = nullptr;
  SellLayerFn sell = nullptr;
};

/// The tier selected for this process: runtime CPU detection, overridden
/// to kScalar by the SSMDVFS_FORCE_SCALAR environment variable / compile
/// definition, or by overrideSimdTierForTest(). Detection runs once and
/// is cached.
[[nodiscard]] SimdTier activeSimdTier() noexcept;

/// Kernel table for the active tier, or nullptr when it is kScalar (the
/// caller's own scalar loops are the fallback path).
[[nodiscard]] const SimdKernels* activeKernels() noexcept;

/// Kernel table for an explicit tier (test hook). kScalar returns the
/// template-compiled scalar kernels — the same kernel templates as the
/// vector tiers lowered to lane-wise arithmetic — which is what the
/// equivalence property tests compare against. Returns nullptr for a tier
/// this binary was not compiled with; calling into a table the host CPU
/// cannot execute is the caller's responsibility to avoid.
[[nodiscard]] const SimdKernels* kernelsForTier(SimdTier tier) noexcept;

/// Stable lower-case tier name ("scalar", "avx2", "neon") for reports.
[[nodiscard]] const char* simdTierName(SimdTier tier) noexcept;

/// Forces activeSimdTier() to report `tier` for subsequent calls (affects
/// PackedMlp instances compiled afterwards). Test-only.
void overrideSimdTierForTest(SimdTier tier) noexcept;

/// Removes the test override, restoring cached runtime detection.
void clearSimdTierOverrideForTest() noexcept;

}  // namespace ssm
