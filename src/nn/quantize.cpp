#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "nn/packed_mlp.hpp"

namespace ssm {

namespace {

double quantClamp(double q, double qmax) {
  return std::clamp(std::nearbyint(q), -qmax, qmax);
}

}  // namespace

QuantizedMlp::QuantizedMlp(const Mlp& net, const QuantConfig& cfg,
                           const Matrix& calibration_inputs)
    : cfg_(cfg), head_(net.head()), input_dim_(net.inputDim()) {
  const double qmax =
      cfg_.weight_bits == QuantBits::kInt8 ? 127.0 : 32767.0;

  // Per-layer symmetric weight quantization on the live weights.
  layers_.reserve(net.layerCount());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const DenseLayer& src = net.layer(l);
    QuantLayer q;
    q.in_dim = src.inDim();
    q.out_dim = src.outDim();
    q.bias = src.bias();
    double maxabs = 0.0;
    for (double w : src.weights().flat()) maxabs = std::max(maxabs, std::abs(w));
    q.weight_scale = maxabs > 0.0 ? maxabs / qmax : 1.0;
    q.weights.reserve(src.weights().size());
    for (double w : src.weights().flat())
      q.weights.push_back(static_cast<std::int32_t>(
          quantClamp(w / q.weight_scale, qmax)));
    layers_.push_back(std::move(q));
  }

  // Activation scale calibration: run the float network over the sample and
  // record each layer's max |activation|.
  activations_quantized_ =
      cfg_.quantize_activations && calibration_inputs.rows() > 0;
  if (activations_quantized_) {
    SSM_CHECK(static_cast<int>(calibration_inputs.cols()) == input_dim_,
              "calibration width mismatch");
    // Input grid for the integer datapath (forwardInt8): symmetric over
    // the calibration set's value range.
    double maxin = 1e-12;
    for (std::size_t r = 0; r < calibration_inputs.rows(); ++r)
      for (double v : calibration_inputs.row(r))
        maxin = std::max(maxin, std::abs(v));
    input_scale_ = maxin / qmax;
    std::vector<double> maxact(net.layerCount(), 1e-12);
    for (std::size_t r = 0; r < calibration_inputs.rows(); ++r) {
      std::vector<double> act(calibration_inputs.row(r).begin(),
                              calibration_inputs.row(r).end());
      for (std::size_t l = 0; l < net.layerCount(); ++l) {
        const DenseLayer& layer = net.layer(l);
        std::vector<double> out(static_cast<std::size_t>(layer.outDim()));
        for (int o = 0; o < layer.outDim(); ++o) {
          double acc = layer.bias()[static_cast<std::size_t>(o)];
          for (int i = 0; i < layer.inDim(); ++i)
            acc += layer.weights()(static_cast<std::size_t>(o),
                                   static_cast<std::size_t>(i)) *
                   act[static_cast<std::size_t>(i)];
          out[static_cast<std::size_t>(o)] = acc;
        }
        if (l + 1 < net.layerCount())
          for (double& v : out) v = std::max(0.0, v);
        for (double v : out) maxact[l] = std::max(maxact[l], std::abs(v));
        act.swap(out);
      }
    }
    const double act_qmax =
        cfg_.weight_bits == QuantBits::kInt8 ? 127.0 : 32767.0;
    for (std::size_t l = 0; l < layers_.size(); ++l)
      layers_[l].act_scale = maxact[l] / act_qmax;
  }
}

std::vector<double> QuantizedMlp::forward(
    std::span<const double> input) const {
  SSM_CHECK(static_cast<int>(input.size()) == input_dim_,
            "input width mismatch");
  const double act_qmax =
      cfg_.weight_bits == QuantBits::kInt8 ? 127.0 : 32767.0;
  std::vector<double> act(input.begin(), input.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantLayer& layer = layers_[l];
    std::vector<double> out(static_cast<std::size_t>(layer.out_dim));
    for (int o = 0; o < layer.out_dim; ++o) {
      double acc = layer.bias[static_cast<std::size_t>(o)];
      const std::size_t base =
          static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.in_dim);
      for (int i = 0; i < layer.in_dim; ++i)
        acc += static_cast<double>(layer.weights[base +
                                                 static_cast<std::size_t>(i)]) *
               layer.weight_scale * act[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(o)] = acc;
    }
    if (l + 1 < layers_.size())
      for (double& v : out) v = std::max(0.0, v);
    if (activations_quantized_) {
      // Emulate the fixed-point requantization between layers.
      for (double& v : out)
        v = quantClamp(v / layer.act_scale, act_qmax) * layer.act_scale;
    }
    act.swap(out);
  }
  if (head_ == Head::kSoftmaxClassifier) softmaxInPlace(act);
  return act;
}

std::vector<double> QuantizedMlp::forwardInt8(
    std::span<const double> input) const {
  SSM_CHECK(static_cast<int>(input.size()) == input_dim_,
            "input width mismatch");
  SSM_CHECK(cfg_.weight_bits == QuantBits::kInt8 && activations_quantized_,
            "forwardInt8 requires int8 weights and calibrated activations");
  const double qmax = 127.0;
  // Quantize the input onto its int8 grid.
  std::vector<std::int32_t> qact(input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    qact[i] = static_cast<std::int32_t>(
        quantClamp(input[i] / input_scale_, qmax));

  std::vector<std::int32_t> qnext;
  std::vector<double> real;
  double in_scale = input_scale_;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantLayer& layer = layers_[l];
    const double k = layer.weight_scale * in_scale;
    real.assign(static_cast<std::size_t>(layer.out_dim), 0.0);
    qnext.assign(static_cast<std::size_t>(layer.out_dim), 0);
    for (int o = 0; o < layer.out_dim; ++o) {
      // Integer MAC chain — int32 in the ASIC datapath, exact here.
      std::int64_t acc = 0;
      const std::size_t base =
          static_cast<std::size_t>(o) * static_cast<std::size_t>(layer.in_dim);
      for (int i = 0; i < layer.in_dim; ++i)
        acc += static_cast<std::int64_t>(
                   layer.weights[base + static_cast<std::size_t>(i)]) *
               qact[static_cast<std::size_t>(i)];
      double v = static_cast<double>(acc) * k +
                 layer.bias[static_cast<std::size_t>(o)];
      if (l + 1 < layers_.size()) v = std::max(0.0, v);
      qnext[static_cast<std::size_t>(o)] =
          static_cast<std::int32_t>(quantClamp(v / layer.act_scale, qmax));
      real[static_cast<std::size_t>(o)] =
          static_cast<double>(qnext[static_cast<std::size_t>(o)]) *
          layer.act_scale;
    }
    qact.swap(qnext);
    in_scale = layer.act_scale;
  }
  if (head_ == Head::kSoftmaxClassifier) softmaxInPlace(real);
  return real;
}

int QuantizedMlp::predictClass(std::span<const double> input) const {
  SSM_CHECK(head_ == Head::kSoftmaxClassifier,
            "predictClass requires a classifier head");
  const auto probs = forward(input);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

double QuantizedMlp::predictScalar(std::span<const double> input) const {
  SSM_CHECK(head_ == Head::kRegression,
            "predictScalar requires a regression head");
  return forward(input)[0];
}

std::int64_t QuantizedMlp::modelBytes() const noexcept {
  const std::int64_t wbytes =
      cfg_.weight_bits == QuantBits::kInt8 ? 1 : 2;
  std::int64_t total = 0;
  for (const auto& layer : layers_) {
    std::int64_t nz = 0;
    for (std::int32_t w : layer.weights) nz += (w != 0);
    total += nz * wbytes;
    total += static_cast<std::int64_t>(layer.bias.size()) * 4;  // FP32 bias
  }
  return total;
}

double quantizationDrift(const Mlp& net, const QuantizedMlp& q,
                         const Matrix& probe_inputs) {
  SSM_CHECK(probe_inputs.rows() > 0, "need probe inputs");
  SSM_CHECK(net.head() == q.head(), "head mismatch");
  // Both engines lower to packed form and sweep the probe set in one
  // batched pass each (bit-identical to the per-row reference forwards).
  const PackedMlp ref_packed(net);
  const PackedMlp q_packed(q);
  auto scratch = ref_packed.makeScratch();
  const std::size_t n = probe_inputs.rows();
  const auto width = static_cast<std::size_t>(net.outputDim());
  Matrix ref_out(n, width);
  Matrix q_out(n, width);
  ref_packed.forwardBatch(probe_inputs, scratch, ref_out);
  q_packed.forwardBatch(probe_inputs, scratch, q_out);
  if (net.head() == Head::kSoftmaxClassifier) {
    std::size_t changed = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto a = ref_out.row(r);
      const auto b = q_out.row(r);
      changed += (std::max_element(a.begin(), a.end()) - a.begin()) !=
                 (std::max_element(b.begin(), b.end()) - b.begin());
    }
    return static_cast<double>(changed) / static_cast<double>(n);
  }
  std::vector<double> ref(n);
  std::vector<double> quant(n);
  for (std::size_t r = 0; r < n; ++r) {
    ref[r] = ref_out(r, 0);
    quant[r] = q_out(r, 0);
  }
  return mapePercent(ref, quant, /*floor=*/1e-3) / 100.0;
}

}  // namespace ssm
