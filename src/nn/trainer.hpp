// Mini-batch Adam trainer for the Mlp, plus evaluation helpers.
//
// Training is fully deterministic: shuffling uses a seeded Rng and there is
// no parallelism. Pruned weights (mask == 0) receive no updates, so the
// §IV.C pruning masks survive fine-tuning.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

namespace ssm {

struct TrainConfig {
  int epochs = 60;
  int batch_size = 32;
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double adam_eps = 1e-8;
  double l2 = 1e-5;              ///< weight decay (helps pruning later)
  /// Step decay: the learning rate is multiplied by lr_decay at these
  /// fractions of the epoch budget (small nets need the annealing).
  double lr_decay = 0.3;
  double lr_step1_frac = 0.6;
  double lr_step2_frac = 0.85;
  std::uint64_t shuffle_seed = 0x7121aULL;
};

/// Per-epoch progress record.
struct TrainLogEntry {
  int epoch = 0;
  double loss = 0.0;
};

class AdamTrainer {
 public:
  explicit AdamTrainer(TrainConfig cfg = {});

  /// Trains a classifier head on (inputs, class labels in [0, out_dim)).
  /// Returns the per-epoch mean loss trace.
  std::vector<TrainLogEntry> fitClassifier(Mlp& net, const Matrix& inputs,
                                           std::span<const int> labels);

  /// Trains a regression head on (inputs, scalar targets).
  std::vector<TrainLogEntry> fitRegression(Mlp& net, const Matrix& inputs,
                                           std::span<const double> targets);

 private:
  struct AdamState {
    std::vector<double> m_w, v_w, m_b, v_b;
  };

  /// Runs one backward pass for a single sample and accumulates gradients.
  /// `grad_out` is dLoss/d(pre-head output).
  void backwardAccumulate(Mlp& net,
                          const std::vector<std::vector<double>>& acts,
                          std::span<const double> grad_out);

  void adamStep(Mlp& net, int t);
  void zeroGrads(const Mlp& net);

  /// Learning rate for the given epoch under the step-decay schedule.
  [[nodiscard]] double lrForEpoch(int epoch) const noexcept;

  TrainConfig cfg_;
  double current_lr_ = 0.0;
  // Gradient accumulators, one per layer (flattened like the weights).
  std::vector<std::vector<double>> grad_w_;
  std::vector<std::vector<double>> grad_b_;
  std::vector<AdamState> adam_;
  int batch_count_ = 0;
};

/// Fraction of samples whose argmax class matches the label.
[[nodiscard]] double classifierAccuracy(const Mlp& net, const Matrix& inputs,
                                        std::span<const int> labels);

/// MAPE (%) of the regression head against targets.
[[nodiscard]] double regressionMape(const Mlp& net, const Matrix& inputs,
                                    std::span<const double> targets);

}  // namespace ssm
