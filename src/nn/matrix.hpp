// Minimal dense row-major matrix used by the MLP implementation.
//
// The networks here are tiny (tens of neurons), so clarity beats BLAS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace ssm {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    SSM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    SSM_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked fast path for inner loops.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    SSM_CHECK(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    SSM_CHECK(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  void fill(double v) noexcept {
    for (auto& x : data_) x = v;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ssm
