// NEON vector policy: 4 lanes carried by a pair of float64x2_t. aarch64
// guarantees Advanced SIMD, so no extra compile flags are needed; the
// whole file is inert on other architectures.
//
// NaN caveat: FMAX/FMIN return the non-NaN operand where MAXPD/MINPD
// return the second operand, so the requant clamp of a NaN accumulator
// differs from x86/scalar on this tier. NaN activations only arise from
// non-finite inputs, which the exactness contract already excludes.
#include "nn/simd_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace ssm::simd_detail {

namespace {

struct NeonPolicy {
  struct Vec {
    float64x2_t lo;
    float64x2_t hi;
  };
  struct IVec {
    int64x2_t lo;
    int64x2_t hi;
  };
  struct Mask {
    uint64x2_t lo;
    uint64x2_t hi;
  };

  static Vec load(const double* p) noexcept {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  static void store(double* p, Vec v) noexcept {
    vst1q_f64(p, v.lo);
    vst1q_f64(p + 2, v.hi);
  }
  static Vec broadcast(double x) noexcept {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static Vec add(Vec a, Vec b) noexcept {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static Vec mul(Vec a, Vec b) noexcept {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static Vec div(Vec a, Vec b) noexcept {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  static Vec max(Vec a, Vec b) noexcept {
    return {vmaxq_f64(a.lo, b.lo), vmaxq_f64(a.hi, b.hi)};
  }
  static Vec min(Vec a, Vec b) noexcept {
    return {vminq_f64(a.lo, b.lo), vminq_f64(a.hi, b.hi)};
  }
  static Vec nearbyint(Vec a) noexcept {
    return {vrndiq_f64(a.lo), vrndiq_f64(a.hi)};
  }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    Vec r;
    r.lo = vsetq_lane_f64(base[idx[1]],
                          vdupq_n_f64(base[idx[0]]), 1);
    r.hi = vsetq_lane_f64(base[idx[3]],
                          vdupq_n_f64(base[idx[2]]), 1);
    return r;
  }
  static IVec loadCounts(const std::int64_t* p) noexcept {
    return {vld1q_s64(p), vld1q_s64(p + 2)};
  }
  static Mask slotLive(IVec counts, int slot) noexcept {
    const int64x2_t s = vdupq_n_s64(slot);
    return {vcgtq_s64(counts.lo, s), vcgtq_s64(counts.hi, s)};
  }
  static Vec maskAdd(Vec acc, Vec prod, Mask m) noexcept {
    return {vbslq_f64(m.lo, vaddq_f64(acc.lo, prod.lo), acc.lo),
            vbslq_f64(m.hi, vaddq_f64(acc.hi, prod.hi), acc.hi)};
  }
};

constexpr SimdKernels kNeonKernels{&denseLayer<NeonPolicy>,
                                   &sellLayer<NeonPolicy>};

}  // namespace

const SimdKernels* neonKernels() noexcept { return &kNeonKernels; }

}  // namespace ssm::simd_detail

#else  // not aarch64

namespace ssm::simd_detail {

const SimdKernels* neonKernels() noexcept { return nullptr; }

}  // namespace ssm::simd_detail

#endif
