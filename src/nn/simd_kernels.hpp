// Kernel templates shared by every SIMD tier.
//
// Each tier supplies a 4-lane vector policy; the templates below lower to
// that policy, so the scalar, AVX2 and NEON kernels are the same code and
// differ only in which instructions carry each lane. Exactness rests on
// two operand-order conventions the policies must honour:
//
//   * max(a, b) means "(a > b) ? a : b" with NaN and equal-valued
//     operands resolving to b — the semantics of x86 MAXPD. ReLU is
//     max(acc, 0): positive accs pass, NaN and -0.0 become +0.0, exactly
//     like std::max(0.0, acc). min(a, b) mirrors MINPD ("(a < b) ? a : b",
//     NaN/equal -> b).
//   * the requant clamp is min(hi, max(lo, v)): both steps propagate a
//     NaN v to the result, matching std::clamp's comparison behaviour.
//
// Multiplies and adds are issued separately (never fused), divisions and
// nearbyint are single IEEE operations, so every lane reproduces the
// scalar engine's arithmetic bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "nn/simd.hpp"

namespace ssm::simd_detail {

template <class V>
inline typename V::Vec applyPostOps(typename V::Vec acc,
                                    const SimdPostOp& post) noexcept {
  if (post.relu) acc = V::max(acc, V::broadcast(0.0));
  if (post.requant) {
    const typename V::Vec scale = V::broadcast(post.act_scale);
    typename V::Vec q = V::nearbyint(V::div(acc, scale));
    q = V::max(V::broadcast(-post.act_qmax), q);
    q = V::min(V::broadcast(post.act_qmax), q);
    acc = V::mul(q, scale);
  }
  return acc;
}

/// Dense matvec over the blocked-interleaved layout: output block `ob`
/// reads its 4xin_dim weight panel at wblk + ob*in_dim (panels are stored
/// back to back, so the offset collapses to ob*in_dim doubles).
template <class V>
void denseLayer(const double* wblk, const double* bias, const double* in,
                int in_dim, int out_dim, const SimdPostOp& post,
                double* out) noexcept {
  for (int ob = 0; ob < out_dim; ob += 4) {
    const double* w =
        wblk + static_cast<std::size_t>(ob) * static_cast<std::size_t>(in_dim);
    typename V::Vec acc = V::load(bias + ob);
    for (int i = 0; i < in_dim; ++i)
      acc = V::add(acc, V::mul(V::load(w + 4 * static_cast<std::size_t>(i)),
                               V::broadcast(in[i])));
    V::store(out + ob, applyPostOps<V>(acc, post));
  }
}

/// SELL-4 sparse matvec. Dead slots (row shorter than the group width, or
/// padding rows past out_dim) carry val 0 / col 0 but are excluded by the
/// liveness mask rather than added: adding even an exact zero could flip a
/// -0.0 accumulator to +0.0, which the requant post-op would expose.
///
/// Slots below every lane's nnz count are all-live, and a full-mask
/// maskAdd is exactly a plain add — so the leading min(nnz) slots of each
/// group run a blend-free inner loop and only the ragged tail pays for the
/// liveness test. Bit-exact either way.
template <class V>
void sellLayer(const double* vals, const std::int32_t* cols,
               const std::size_t* grpoff, const std::int64_t* nnz,
               const double* bias, const double* in, int out_dim,
               const SimdPostOp& post, double* out) noexcept {
  const int ngroups = (out_dim + 3) / 4;
  for (int g = 0; g < ngroups; ++g) {
    const std::size_t base = grpoff[g];
    const auto width = static_cast<int>((grpoff[g + 1] - base) / 4);
    typename V::Vec acc = V::load(bias + 4 * g);
    const std::int64_t* cnt = nnz + 4 * g;
    const std::int64_t shortest =
        std::min(std::min(cnt[0], cnt[1]), std::min(cnt[2], cnt[3]));
    const int full = static_cast<int>(
        std::min<std::int64_t>(shortest, static_cast<std::int64_t>(width)));
    int s = 0;
    for (; s < full; ++s) {
      const double* v4 = vals + base + 4 * static_cast<std::size_t>(s);
      const std::int32_t* c4 = cols + base + 4 * static_cast<std::size_t>(s);
      acc = V::add(acc, V::mul(V::load(v4), V::gather(in, c4)));
    }
    if (s < width) {
      const typename V::IVec live = V::loadCounts(cnt);
      for (; s < width; ++s) {
        const double* v4 = vals + base + 4 * static_cast<std::size_t>(s);
        const std::int32_t* c4 = cols + base + 4 * static_cast<std::size_t>(s);
        const typename V::Vec prod = V::mul(V::load(v4), V::gather(in, c4));
        acc = V::maskAdd(acc, prod, V::slotLive(live, s));
      }
    }
    V::store(out + 4 * g, applyPostOps<V>(acc, post));
  }
}

/// Reference 4-lane policy in plain scalar arithmetic. Every operation is
/// the lane-wise IEEE equivalent of the vector instruction the other
/// policies issue, so kernels instantiated with this policy are the
/// bit-exact oracle the property tests compare the vector tiers against.
struct ScalarPolicy {
  struct Vec {
    double lane[4];
  };
  struct IVec {
    std::int64_t lane[4];
  };
  struct Mask {
    bool lane[4];
  };

  static Vec load(const double* p) noexcept {
    return {{p[0], p[1], p[2], p[3]}};
  }
  static void store(double* p, Vec v) noexcept {
    p[0] = v.lane[0];
    p[1] = v.lane[1];
    p[2] = v.lane[2];
    p[3] = v.lane[3];
  }
  static Vec broadcast(double x) noexcept { return {{x, x, x, x}}; }
  static Vec add(Vec a, Vec b) noexcept {
    return {{a.lane[0] + b.lane[0], a.lane[1] + b.lane[1],
             a.lane[2] + b.lane[2], a.lane[3] + b.lane[3]}};
  }
  static Vec mul(Vec a, Vec b) noexcept {
    return {{a.lane[0] * b.lane[0], a.lane[1] * b.lane[1],
             a.lane[2] * b.lane[2], a.lane[3] * b.lane[3]}};
  }
  static Vec div(Vec a, Vec b) noexcept {
    return {{a.lane[0] / b.lane[0], a.lane[1] / b.lane[1],
             a.lane[2] / b.lane[2], a.lane[3] / b.lane[3]}};
  }
  // MAXPD/MINPD operand semantics: NaN or equal operands resolve to b.
  static Vec max(Vec a, Vec b) noexcept {
    Vec r;
    for (int l = 0; l < 4; ++l)
      r.lane[l] = a.lane[l] > b.lane[l] ? a.lane[l] : b.lane[l];
    return r;
  }
  static Vec min(Vec a, Vec b) noexcept {
    Vec r;
    for (int l = 0; l < 4; ++l)
      r.lane[l] = a.lane[l] < b.lane[l] ? a.lane[l] : b.lane[l];
    return r;
  }
  static Vec nearbyint(Vec a) noexcept {
    return {{std::nearbyint(a.lane[0]), std::nearbyint(a.lane[1]),
             std::nearbyint(a.lane[2]), std::nearbyint(a.lane[3])}};
  }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    return {{base[idx[0]], base[idx[1]], base[idx[2]], base[idx[3]]}};
  }
  static IVec loadCounts(const std::int64_t* p) noexcept {
    return {{p[0], p[1], p[2], p[3]}};
  }
  static Mask slotLive(IVec counts, int slot) noexcept {
    return {{counts.lane[0] > slot, counts.lane[1] > slot,
             counts.lane[2] > slot, counts.lane[3] > slot}};
  }
  static Vec maskAdd(Vec acc, Vec prod, Mask m) noexcept {
    Vec r;
    for (int l = 0; l < 4; ++l)
      r.lane[l] = m.lane[l] ? acc.lane[l] + prod.lane[l] : acc.lane[l];
    return r;
  }
};

/// Tier tables provided by the per-tier translation units; nullptr when
/// the tier is not compiled into this binary.
[[nodiscard]] const SimdKernels* avx2Kernels() noexcept;
[[nodiscard]] const SimdKernels* neonKernels() noexcept;

}  // namespace ssm::simd_detail
