#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>

namespace ssm {

namespace {

/// Audit-mode helpers: cheap enough per inference, but O(n) per call and
/// therefore compiled out of release builds.
[[maybe_unused]] bool allFinite(std::span<const double> v) noexcept {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

[[maybe_unused]] bool isProbabilityVector(std::span<const double> v) noexcept {
  double sum = 0.0;
  for (double x : v) {
    if (!(x >= 0.0 && x <= 1.0)) return false;
    sum += x;
  }
  // softmaxInPlace leaves the vector untouched when the exp-sum underflows
  // to zero, so an all-(near-)zero vector is also acceptable.
  return std::abs(sum - 1.0) <= 1e-9 || sum <= 1e-12;
}

}  // namespace

DenseLayer::DenseLayer(int in_dim, int out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(static_cast<std::size_t>(out_dim), static_cast<std::size_t>(in_dim)),
      mask_(static_cast<std::size_t>(out_dim), static_cast<std::size_t>(in_dim),
            1.0),
      b_(static_cast<std::size_t>(out_dim), 0.0) {
  SSM_CHECK(in_dim > 0 && out_dim > 0, "layer dims must be positive");
  // He initialisation, appropriate for ReLU networks.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (double& w : w_.flat()) w = rng.nextGaussian(0.0, scale);
}

std::int64_t DenseLayer::nonzeroWeights() const noexcept {
  std::int64_t n = 0;
  for (double m : mask_.flat()) n += (m != 0.0);
  return n;
}

void DenseLayer::applyMask() noexcept {
  const auto w = w_.flat();
  const auto m = mask_.flat();
  for (std::size_t i = 0; i < w.size(); ++i)
    if (m[i] == 0.0) w[i] = 0.0;
}

void softmaxInPlace(std::span<double> logits) noexcept {
  double mx = logits.empty() ? 0.0 : logits[0];
  for (double v : logits) mx = std::max(mx, v);
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  if (sum <= 0.0) return;
  for (double& v : logits) v /= sum;
}

Mlp::Mlp(std::vector<int> dims, Head head, Rng rng)
    : dims_(std::move(dims)), head_(head) {
  SSM_CHECK(dims_.size() >= 2, "MLP needs at least input and output dims");
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i)
    layers_.emplace_back(dims_[i], dims_[i + 1], rng);
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  SSM_CHECK(static_cast<int>(input.size()) == inputDim(),
            "input width mismatch");
  std::vector<double> act(input.begin(), input.end());
  std::vector<double> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    next.assign(static_cast<std::size_t>(layer.outDim()), 0.0);
    const Matrix& w = layer.weights();
    for (std::size_t o = 0; o < next.size(); ++o) {
      double acc = layer.bias()[o];
      for (std::size_t i = 0; i < act.size(); ++i) acc += w(o, i) * act[i];
      next[o] = acc;
    }
    if (l + 1 < layers_.size())
      for (double& v : next) v = std::max(0.0, v);
    act.swap(next);
  }
  if (head_ == Head::kSoftmaxClassifier) {
    softmaxInPlace(act);
    SSM_AUDIT_CHECK(isProbabilityVector(act),
                    "softmax head must emit probabilities in [0,1] summing "
                    "to 1");
  } else {
    SSM_AUDIT_CHECK(allFinite(act),
                    "forward pass produced a non-finite activation "
                    "(non-finite weight or input?)");
  }
  return act;
}

int Mlp::predictClass(std::span<const double> input) const {
  SSM_CHECK(head_ == Head::kSoftmaxClassifier,
            "predictClass requires a classifier head");
  const auto probs = forward(input);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

double Mlp::predictScalar(std::span<const double> input) const {
  SSM_CHECK(head_ == Head::kRegression,
            "predictScalar requires a regression head");
  return forward(input)[0];
}

std::int64_t Mlp::flops() const noexcept {
  std::int64_t total = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    const std::int64_t macs = layer.nonzeroWeights();
    total += 2 * macs;
    // Live output neurons: at least one incoming live weight.
    const Matrix& m = layer.mask();
    std::int64_t live = 0;
    for (int o = 0; o < layer.outDim(); ++o) {
      bool any = false;
      for (int i = 0; i < layer.inDim() && !any; ++i)
        any = m(static_cast<std::size_t>(o), static_cast<std::size_t>(i)) != 0.0;
      live += any;
    }
    total += live;                              // bias adds
    if (l + 1 < layers_.size()) total += live;  // ReLU on hidden neurons
  }
  return total;
}

std::int64_t Mlp::denseFlops() const noexcept {
  std::int64_t total = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const DenseLayer& layer = layers_[l];
    total += 2 * static_cast<std::int64_t>(layer.inDim()) * layer.outDim();
    total += layer.outDim();                              // bias adds
    if (l + 1 < layers_.size()) total += layer.outDim();  // hidden ReLUs
  }
  return total;
}

std::int64_t Mlp::parameterCount() const noexcept {
  std::int64_t total = 0;
  for (const auto& layer : layers_)
    total += static_cast<std::int64_t>(layer.weights().size()) +
             static_cast<std::int64_t>(layer.bias().size());
  return total;
}

double Mlp::sparsity() const noexcept {
  std::int64_t total = 0;
  std::int64_t zero = 0;
  for (const auto& layer : layers_) {
    total += static_cast<std::int64_t>(layer.mask().size());
    zero += static_cast<std::int64_t>(layer.mask().size()) -
            layer.nonzeroWeights();
  }
  return total > 0 ? static_cast<double>(zero) / static_cast<double>(total)
                   : 0.0;
}

void Mlp::applyMasks() noexcept {
  for (auto& layer : layers_) layer.applyMask();
}

}  // namespace ssm
