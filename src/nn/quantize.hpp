// Post-training quantization analysis for the inference engine.
//
// §V.D implements the SSMDVFS module in FP32. A natural hardware extension
// is fixed-point inference: this module quantizes a trained Mlp's weights
// (and optionally activations) to symmetric int8/int16 with per-layer
// scales, producing (a) a quantized *simulation* model whose accuracy can
// be compared against FP32, and (b) the bit-width parameters the ASIC cost
// model needs to price the cheaper MACs. The original network is not
// modified.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/mlp.hpp"

namespace ssm {

enum class QuantBits { kInt8 = 8, kInt16 = 16 };

struct QuantConfig {
  QuantBits weight_bits = QuantBits::kInt8;
  /// Also quantize activations between layers (symmetric, per layer, with
  /// scales calibrated on a sample of inputs).
  bool quantize_activations = true;
};

/// A quantized snapshot of one dense layer.
struct QuantLayer {
  std::vector<std::int32_t> weights;  ///< quantized, row-major like Mlp
  std::vector<double> bias;           ///< kept in float (negligible cost)
  double weight_scale = 1.0;          ///< w_fp ~= w_q * weight_scale
  double act_scale = 1.0;             ///< output activation scale
  int in_dim = 0;
  int out_dim = 0;
};

/// Quantized inference model (forward pass emulates fixed-point rounding).
class QuantizedMlp {
 public:
  /// Quantizes `net`. Activation scales are calibrated over
  /// `calibration_inputs` (row-major, width = net.inputDim()); pass an
  /// empty matrix to skip activation quantization regardless of config.
  QuantizedMlp(const Mlp& net, const QuantConfig& cfg,
               const Matrix& calibration_inputs);

  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;
  [[nodiscard]] int predictClass(std::span<const double> input) const;
  [[nodiscard]] double predictScalar(std::span<const double> input) const;

  /// Reference integer-datapath forward (the paper's §V.D ASIC engine):
  /// activations are quantized to the int8 grid at every layer boundary
  /// and the matvec accumulates integer products (int32 in hardware),
  /// with one dequantize-requantize per layer:
  ///
  ///   q_in   = clamp(nearbyint(x / input_scale), ±qmax)
  ///   acc    = sum_i w_q[o,i] * q_act[i]                 (integer)
  ///   real   = double(acc) * (weight_scale * in_scale) + bias[o]
  ///   hidden : real = max(0, real)
  ///   q_next = clamp(nearbyint(real / act_scale), ±qmax)
  ///
  /// The final layer's dequantized activations feed the head. This is the
  /// bit-exact oracle PackedInt8Mlp reproduces; it differs from forward()
  /// (the float emulation) by per-term rounding, which quantizationDrift-
  /// style decision-agreement tests bound. Requires int8 weights and
  /// calibrated activations.
  [[nodiscard]] std::vector<double> forwardInt8(
      std::span<const double> input) const;

  /// Input quantization scale (max |x| over the calibration set / qmax);
  /// 1.0 when activations were not calibrated.
  [[nodiscard]] double inputScale() const noexcept { return input_scale_; }

  [[nodiscard]] Head head() const noexcept { return head_; }
  [[nodiscard]] int inputDim() const noexcept { return input_dim_; }
  [[nodiscard]] const std::vector<QuantLayer>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] QuantBits weightBits() const noexcept {
    return cfg_.weight_bits;
  }
  /// Whether the forward pass replays inter-layer activation
  /// requantization (i.e. scales were calibrated at construction).
  [[nodiscard]] bool activationsQuantized() const noexcept {
    return activations_quantized_;
  }

  /// Storage for quantized weights + float biases, in bytes.
  [[nodiscard]] std::int64_t modelBytes() const noexcept;

 private:
  QuantConfig cfg_;
  Head head_;
  int input_dim_ = 0;
  bool activations_quantized_ = false;
  double input_scale_ = 1.0;
  std::vector<QuantLayer> layers_;
};

/// Worst-case relative error of the quantized forward pass against the
/// float network over the given probe inputs (classifier: fraction of
/// changed argmax decisions; regression: MAPE between the two outputs).
[[nodiscard]] double quantizationDrift(const Mlp& net, const QuantizedMlp& q,
                                       const Matrix& probe_inputs);

}  // namespace ssm
