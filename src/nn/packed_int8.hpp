// Packed int8 inference engine: the §V.D ASIC datapath, compiled.
//
// QuantizedMlp::forwardInt8 is the semantic oracle for the paper's
// hardware engine — int8 weights and activations, integer MAC
// accumulation, one dequantize-requantize per layer boundary. That
// reference allocates per call and walks std::vector<int32_t> weight
// rows; this class is its deployable counterpart:
//
//   * weights are narrowed to a fused std::int8_t pool (the storage the
//     ASIC actually holds), biases and per-layer scale constants live in
//     parallel pools — one stream per pass;
//   * the caller owns the quantized ping-pong scratch, so a forward pass
//     performs zero heap allocations (this header is a designated
//     `hot-path-alloc` file, same contract as packed_mlp.hpp);
//   * the per-layer dequantize constant k = weight_scale * in_scale is
//     precomputed at compile time, exactly as forwardInt8 forms it, so
//     the double arithmetic is reproduced operation-for-operation.
//
// Numerical contract: forward() is bit-exact with forwardInt8 on the
// same inputs. The integer accumulation is order-insensitive (exact in
// int64), and every double operation (k * acc + bias, ReLU, nearbyint
// requant, final act_scale dequant, softmax) is performed in the same
// order with the same precomputed constants.
//
// Cost model: asicCyclesPerInference() prices one forward pass on the
// paper's engine — `mac_lanes` int8 MACs retire per cycle per layer walk
// plus a fixed per-layer pipeline overhead (operand fetch, requantize,
// handoff). With the compressed Decision-maker (6->12->12->6, 288 MACs)
// and the defaults (2 lanes, 16 overhead cycles/layer) it reproduces the
// paper's reported 192 cycles/inference exactly, giving SsmModel a
// hardware-faithful latency input.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "nn/mlp.hpp"

namespace ssm {

class QuantizedMlp;

/// Parameters of the modeled ASIC MAC engine (§V.D).
struct AsicEngineConfig {
  /// int8 multiply-accumulate units working one layer in parallel.
  int mac_lanes = 2;
  /// Fixed per-layer cycles: operand fetch, requant, handoff.
  int pipeline_depth = 16;
};

class PackedInt8Mlp {
 public:
  /// Caller-owned activation buffers. qping/qpong hold the int8-grid
  /// activation codes (widened to int32, the accumulator feed width);
  /// head holds the final dequantized output row.
  struct Scratch {
    std::vector<std::int32_t> qping;
    std::vector<std::int32_t> qpong;
    std::vector<double> head;
  };

  PackedInt8Mlp() = default;

  /// Compiles a quantized network. Requires int8 weights and calibrated
  /// activation scales (forwardInt8's own preconditions); the source net
  /// is not referenced afterwards.
  explicit PackedInt8Mlp(const QuantizedMlp& net);

  [[nodiscard]] bool compiled() const noexcept { return !layers_.empty(); }
  [[nodiscard]] int inputDim() const noexcept { return input_dim_; }
  [[nodiscard]] int outputDim() const noexcept { return output_dim_; }
  [[nodiscard]] Head head() const noexcept { return head_; }
  [[nodiscard]] std::size_t layerCount() const noexcept {
    return layers_.size();
  }

  /// Allocates scratch sized for single-row inference (cold path).
  [[nodiscard]] Scratch makeScratch() const;

  /// Single-row forward, bit-exact with QuantizedMlp::forwardInt8.
  /// `out.size()` must equal outputDim(); the classifier head receives
  /// softmax probabilities. Performs no heap allocation.
  void forward(std::span<const double> input, Scratch& s,
               std::span<double> out) const {
    checkSingle(input, s);
    SSM_CHECK(static_cast<int>(out.size()) == output_dim_,
              "output width mismatch");
    forwardRaw(input.data(), s, out.data());
    if (head_ == Head::kSoftmaxClassifier)
      softmaxInPlace({out.data(), static_cast<std::size_t>(output_dim_)});
  }

  /// Classifier convenience: argmax class. Allocation-free.
  [[nodiscard]] int predictClass(std::span<const double> input,
                                 Scratch& s) const {
    SSM_CHECK(head_ == Head::kSoftmaxClassifier,
              "predictClass requires a classifier head");
    checkSingle(input, s);
    forwardRaw(input.data(), s, s.head.data());
    const double* h = s.head.data();
    return static_cast<int>(std::max_element(h, h + output_dim_) - h);
  }

  /// Cycles one inference spends on the modeled MAC engine: every layer
  /// retires ceil(in*out / mac_lanes) MAC cycles (the dense weight walk —
  /// the ASIC stores the full panel) plus pipeline_depth overhead cycles.
  [[nodiscard]] std::int64_t asicCyclesPerInference(
      const AsicEngineConfig& cfg = {}) const noexcept;

  /// On-chip storage: 1 byte per stored weight + FP32 bias words.
  [[nodiscard]] std::int64_t modelBytes() const noexcept;

 private:
  struct Layer {
    int in = 0;
    int out = 0;
    bool relu = false;      ///< hidden layer: clamp pre-requant at zero
    double k = 1.0;         ///< weight_scale * in_scale (precomputed)
    double act_scale = 1.0;
    std::size_t w_off = 0;     ///< w8_: out*in int8 codes, row-major
    std::size_t bias_off = 0;  ///< bias_: out doubles
  };

  void checkSingle(std::span<const double> input, const Scratch& s) const {
    SSM_CHECK(compiled(), "PackedInt8Mlp not compiled");
    SSM_CHECK(static_cast<int>(input.size()) == input_dim_,
              "input width mismatch");
    SSM_CHECK(s.qping.size() >= static_cast<std::size_t>(max_width_) &&
                  s.qpong.size() >= static_cast<std::size_t>(max_width_) &&
                  s.head.size() >= static_cast<std::size_t>(output_dim_),
              "scratch too small; create it with makeScratch()");
  }

  /// Quantize one real value onto the symmetric int8 grid `scale`.
  [[nodiscard]] static std::int32_t quantize(double v,
                                             double scale) noexcept {
    return static_cast<std::int32_t>(
        std::clamp(std::nearbyint(v / scale), -127.0, 127.0));
  }

  /// Runs every layer ping-pong and writes the final dequantized row
  /// (pre-softmax) into `out` (>= outputDim doubles).
  void forwardRaw(const double* input, Scratch& s,
                  double* out) const noexcept {
    std::int32_t* cur = s.qping.data();
    std::int32_t* nxt = s.qpong.data();
    for (int i = 0; i < input_dim_; ++i)
      cur[i] = quantize(input[i], input_scale_);
    const std::size_t last = layers_.size() - 1;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const Layer& ly = layers_[l];
      const std::int8_t* w = w8_.data() + ly.w_off;
      const double* bias = bias_.data() + ly.bias_off;
      for (int o = 0; o < ly.out; ++o) {
        // Integer MAC chain: int32 in the ASIC datapath, exact here.
        std::int64_t acc = 0;
        const std::int8_t* wr = w + static_cast<std::size_t>(o) *
                                        static_cast<std::size_t>(ly.in);
        for (int i = 0; i < ly.in; ++i)
          acc += static_cast<std::int64_t>(wr[i]) * cur[i];
        double v = static_cast<double>(acc) * ly.k + bias[o];
        if (ly.relu) v = std::max(0.0, v);
        const std::int32_t q = quantize(v, ly.act_scale);
        nxt[o] = q;
        if (l == last) out[o] = static_cast<double>(q) * ly.act_scale;
      }
      std::swap(cur, nxt);
    }
  }

  Head head_ = Head::kRegression;
  int input_dim_ = 0;
  int output_dim_ = 0;
  int max_width_ = 0;          ///< widest activation row across all layers
  double input_scale_ = 1.0;   ///< input int8 grid (from calibration)
  std::vector<Layer> layers_;
  std::vector<std::int8_t> w8_;  ///< fused row-major int8 weight codes
  std::vector<double> bias_;     ///< fused biases (float in hardware)
};

}  // namespace ssm
