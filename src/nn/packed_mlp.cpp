// Compile side of the packed inference engine. Everything that allocates
// lives here: the hot forward loops are inline in packed_mlp.hpp, which is
// a designated `hot-path-alloc` file for ssm_lint.
#include "nn/packed_mlp.hpp"

#include "nn/quantize.hpp"

namespace ssm {

void PackedMlp::packLayer(std::span<const double> weights,
                          std::span<const double> bias, int in_dim,
                          int out_dim, double density_threshold) {
  SSM_CHECK(in_dim > 0 && out_dim > 0, "layer dims must be positive");
  SSM_CHECK(weights.size() == static_cast<std::size_t>(in_dim) *
                                  static_cast<std::size_t>(out_dim),
            "weight count mismatch");
  SSM_CHECK(bias.size() == static_cast<std::size_t>(out_dim),
            "bias count mismatch");

  // Density over *stored* values: applyMask() forces pruned weights to
  // exactly 0.0, so exact zeros are precisely the terms a dense matvec
  // would add as no-ops and CSR may skip without changing the result.
  std::size_t nnz = 0;
  for (double w : weights) nnz += (w != 0.0);
  const double density = static_cast<double>(nnz) /
                         static_cast<double>(weights.size());

  Layer l;
  l.in = in_dim;
  l.out = out_dim;
  l.sparse = density < density_threshold;
  l.bias_off = bias_.size();
  bias_.insert(bias_.end(), bias.begin(), bias.end());

  if (l.sparse) {
    l.val_off = csr_vals_.size();
    l.rowptr_off = csr_rowptr_.size();
    csr_vals_.reserve(csr_vals_.size() + nnz);
    csr_cols_.reserve(csr_cols_.size() + nnz);
    csr_rowptr_.reserve(csr_rowptr_.size() +
                        static_cast<std::size_t>(out_dim) + 1);
    std::int32_t count = 0;
    csr_rowptr_.push_back(0);
    for (int o = 0; o < out_dim; ++o) {
      const double* row = weights.data() + static_cast<std::size_t>(o) *
                                               static_cast<std::size_t>(in_dim);
      for (int i = 0; i < in_dim; ++i) {
        if (row[i] != 0.0) {
          csr_vals_.push_back(row[i]);
          csr_cols_.push_back(i);
          ++count;
        }
      }
      csr_rowptr_.push_back(count);
    }
  } else {
    l.w_off = dense_w_.size();
    dense_w_.insert(dense_w_.end(), weights.begin(), weights.end());
  }

  // SIMD layouts. Built unconditionally (a few KB for deployed models) so
  // a tier override can take effect without repacking and the layouts stay
  // covered on every platform.
  const int ngroups = (out_dim + 3) / 4;
  l.bbias_off = blk_bias_.size();
  for (int o = 0; o < 4 * ngroups; ++o)
    blk_bias_.push_back(o < out_dim ? bias[static_cast<std::size_t>(o)] : 0.0);

  const auto rowAt = [&](int o) {
    return weights.data() +
           static_cast<std::size_t>(o) * static_cast<std::size_t>(in_dim);
  };
  // Blocked-interleaved dense panels: for each 4-row output block, the
  // panel stores in_dim groups of 4 lane weights (tail rows zero-padded)
  // so the kernel streams one contiguous buffer per block. Built for every
  // layer: sparse-classified layers fall back to it when the SELL cost
  // model below says gathers would not pay.
  l.blk_off = blk_w_.size();
  blk_w_.reserve(blk_w_.size() + static_cast<std::size_t>(4 * ngroups) *
                                     static_cast<std::size_t>(in_dim));
  for (int g = 0; g < ngroups; ++g)
    for (int i = 0; i < in_dim; ++i)
      for (int lane = 0; lane < 4; ++lane) {
        const int o = 4 * g + lane;
        blk_w_.push_back(o < out_dim ? rowAt(o)[i] : 0.0);
      }

  if (l.sparse) {
    // SELL-4: rows grouped in fours, slot-major interleave, group width =
    // the longest row in the group. Dead slots store val 0 / col 0 but are
    // masked out by the true per-row nnz counts, never added.
    l.sell_off = sell_vals_.size();
    l.grp_off = sell_grpoff_.size();
    l.nnz_off = sell_nnz_.size();
    std::vector<std::int32_t> row_nnz(static_cast<std::size_t>(4 * ngroups), 0);
    for (int o = 0; o < out_dim; ++o) {
      const double* row = rowAt(o);
      std::int32_t count = 0;
      for (int i = 0; i < in_dim; ++i) count += (row[i] != 0.0);
      row_nnz[static_cast<std::size_t>(o)] = count;
    }
    for (std::int32_t count : row_nnz) sell_nnz_.push_back(count);
    std::size_t rel = 0;
    sell_grpoff_.push_back(rel);
    std::vector<std::int32_t> lane_cols(4);
    for (int g = 0; g < ngroups; ++g) {
      std::int32_t width = 0;
      for (int lane = 0; lane < 4; ++lane)
        width = std::max(width, row_nnz[static_cast<std::size_t>(4 * g + lane)]);
      std::fill(lane_cols.begin(), lane_cols.end(), 0);
      for (std::int32_t s = 0; s < width; ++s) {
        for (int lane = 0; lane < 4; ++lane) {
          const int o = 4 * g + lane;
          double val = 0.0;
          std::int32_t col = 0;
          if (o < out_dim && s < row_nnz[static_cast<std::size_t>(o)]) {
            // Advance this lane's cursor to its s-th stored weight.
            const double* row = rowAt(o);
            std::int32_t c = lane_cols[static_cast<std::size_t>(lane)];
            while (row[c] == 0.0) ++c;
            val = row[c];
            col = c;
            lane_cols[static_cast<std::size_t>(lane)] = c + 1;
          }
          sell_vals_.push_back(val);
          sell_cols_.push_back(col);
        }
      }
      rel += static_cast<std::size_t>(4 * width);
      sell_grpoff_.push_back(rel);
    }
    // Vector-path kernel choice. A SELL slot (4-lane gather + liveness
    // blend) costs roughly 2.5x a dense-panel slot (contiguous load +
    // broadcast), so SELL must cut the slot count below ~40% of the dense
    // walk to win: true for large sparse layers, false for the tiny
    // pruned Decision-maker layers where gather overhead dominates. The
    // scalar fallback path is untouched by this choice — it always walks
    // CSR for sparse-classified layers.
    const std::size_t sell_slots = rel / 4;
    const std::size_t dense_slots = static_cast<std::size_t>(ngroups) *
                                    static_cast<std::size_t>(in_dim);
    l.vec_dense = 5 * sell_slots >= 2 * dense_slots;
  }

  max_width_ = std::max(max_width_, std::max(in_dim, out_dim));
  padded_width_ = std::max(padded_width_, std::max(in_dim, 4 * ngroups));
  layers_.push_back(l);
}

PackedMlp::PackedMlp(const Mlp& net, const PackedMlpConfig& cfg)
    : head_(net.head()),
      input_dim_(net.inputDim()),
      output_dim_(net.outputDim()) {
  SSM_CHECK(net.layerCount() > 0, "cannot pack an empty network");
  layers_.reserve(net.layerCount());
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const DenseLayer& src = net.layer(l);
    packLayer(src.weights().flat(), src.bias(), src.inDim(), src.outDim(),
              cfg.sparse_density_threshold);
    layers_.back().relu = l + 1 < net.layerCount();
  }
  kernels_ = activeKernels();
}

PackedMlp::PackedMlp(const QuantizedMlp& net, const PackedMlpConfig& cfg)
    : head_(net.head()), input_dim_(net.inputDim()) {
  SSM_CHECK(!net.layers().empty(), "cannot pack an empty network");
  const double act_qmax =
      net.weightBits() == QuantBits::kInt8 ? 127.0 : 32767.0;
  output_dim_ = net.layers().back().out_dim;
  layers_.reserve(net.layers().size());
  std::vector<double> dequant;
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const QuantLayer& src = net.layers()[l];
    // Pre-dequantize: QuantizedMlp::forward evaluates
    //   acc += (double(w_q) * weight_scale) * act[i]
    // left to right, so hoisting (w_q * weight_scale) out of the inner
    // loop reproduces it exactly.
    dequant.resize(src.weights.size());
    for (std::size_t i = 0; i < src.weights.size(); ++i)
      dequant[i] = static_cast<double>(src.weights[i]) * src.weight_scale;
    packLayer(dequant, src.bias, src.in_dim, src.out_dim,
              cfg.sparse_density_threshold);
    Layer& packed = layers_.back();
    packed.relu = l + 1 < net.layers().size();
    packed.requant = net.activationsQuantized();
    packed.act_scale = src.act_scale;
    packed.act_qmax = act_qmax;
  }
  kernels_ = activeKernels();
}

std::size_t PackedMlp::sparseLayerCount() const noexcept {
  std::size_t n = 0;
  for (const Layer& l : layers_) n += l.sparse;
  return n;
}

std::int64_t PackedMlp::flopsExecuted() const noexcept {
  std::int64_t total = 0;
  for (const Layer& l : layers_) {
    std::int64_t macs;
    if (l.sparse) {
      macs = csr_rowptr_[l.rowptr_off + static_cast<std::size_t>(l.out)] -
             csr_rowptr_[l.rowptr_off];
    } else {
      macs = static_cast<std::int64_t>(l.in) * l.out;
    }
    total += 2 * macs;
    total += l.out;               // bias adds
    if (l.relu) total += l.out;   // hidden ReLUs
  }
  return total;
}

PackedMlp::Scratch PackedMlp::makeScratch() const {
  SSM_CHECK(compiled(), "PackedMlp not compiled");
  Scratch s;
  s.ping.resize(static_cast<std::size_t>(padded_width_));
  s.pong.resize(static_cast<std::size_t>(padded_width_));
  s.head.resize(static_cast<std::size_t>(output_dim_));
  return s;
}

void PackedMlp::reserveBatchScratch(Scratch& s, std::size_t rows) const {
  SSM_CHECK(compiled(), "PackedMlp not compiled");
  const std::size_t need =
      std::max<std::size_t>(rows, 1) * static_cast<std::size_t>(padded_width_);
  if (s.ping.size() < need) s.ping.resize(need);
  if (s.pong.size() < need) s.pong.resize(need);
  if (s.head.size() < static_cast<std::size_t>(output_dim_))
    s.head.resize(static_cast<std::size_t>(output_dim_));
}

void PackedMlp::forwardBatch(const Matrix& rows, Scratch& s,
                             Matrix& out) const {
  SSM_CHECK(compiled(), "PackedMlp not compiled");
  SSM_CHECK(static_cast<int>(rows.cols()) == input_dim_,
            "input width mismatch");
  SSM_CHECK(out.rows() == rows.rows() &&
                static_cast<int>(out.cols()) == output_dim_,
            "output matrix shape mismatch");
  const std::size_t n = rows.rows();
  if (n == 0) return;
  reserveBatchScratch(s, n);

  const std::size_t stride = static_cast<std::size_t>(padded_width_);
  double* a = s.ping.data();
  double* b = s.pong.data();
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = rows.row(r);
    double* dst = a + r * stride;
    for (int i = 0; i < input_dim_; ++i)
      dst[i] = src[static_cast<std::size_t>(i)];
  }
  // Layer-outer / row-inner: one traversal of each layer's weight stream
  // serves the whole batch. Per row this runs the exact same layerForward
  // as the single-row path, so results match row-by-row bit-for-bit.
  for (const Layer& l : layers_) {
    for (std::size_t r = 0; r < n; ++r)
      layerForward(l, a + r * stride, b + r * stride);
    std::swap(a, b);
  }
  for (std::size_t r = 0; r < n; ++r) {
    const double* src = a + r * stride;
    const auto dst = out.row(r);
    for (int o = 0; o < output_dim_; ++o)
      dst[static_cast<std::size_t>(o)] = src[o];
    finishHead(dst.data());
  }
}

}  // namespace ssm
