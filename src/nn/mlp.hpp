// Multi-layer perceptron with ReLU activations, per-weight pruning masks
// and heads for classification (softmax cross-entropy) or regression (MSE).
//
// This is the network family of §III.D / §IV: a handful of fully-connected
// layers with ~10–20 neurons each. The implementation keeps an explicit
// binary mask per weight so the two-stage pruning of §IV.C (fine-grained
// magnitude pruning + neuron removal) composes with ordinary training, and
// exposes the FLOPs accounting used in Fig. 3 / Table II.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace ssm {

/// One fully-connected layer: y = mask(W) x + b.
class DenseLayer {
 public:
  DenseLayer(int in_dim, int out_dim, Rng& rng);

  [[nodiscard]] int inDim() const noexcept { return in_dim_; }
  [[nodiscard]] int outDim() const noexcept { return out_dim_; }

  [[nodiscard]] Matrix& weights() noexcept { return w_; }
  [[nodiscard]] const Matrix& weights() const noexcept { return w_; }
  [[nodiscard]] std::vector<double>& bias() noexcept { return b_; }
  [[nodiscard]] const std::vector<double>& bias() const noexcept { return b_; }
  [[nodiscard]] Matrix& mask() noexcept { return mask_; }
  [[nodiscard]] const Matrix& mask() const noexcept { return mask_; }

  /// Number of weights with a non-zero mask.
  [[nodiscard]] std::int64_t nonzeroWeights() const noexcept;

  /// Forces masked weights to exactly zero (call after optimiser steps).
  void applyMask() noexcept;

 private:
  int in_dim_;
  int out_dim_;
  Matrix w_;      ///< out_dim x in_dim
  Matrix mask_;   ///< same shape; 1 keeps the weight, 0 prunes it
  std::vector<double> b_;
};

/// Output head of the network.
enum class Head { kSoftmaxClassifier, kRegression };

/// A feed-forward MLP. ReLU after every layer except the last.
class Mlp {
 public:
  /// `dims` = {input, hidden..., output}; needs at least one layer.
  Mlp(std::vector<int> dims, Head head, Rng rng);

  [[nodiscard]] int inputDim() const noexcept { return dims_.front(); }
  [[nodiscard]] int outputDim() const noexcept { return dims_.back(); }
  [[nodiscard]] const std::vector<int>& dims() const noexcept { return dims_; }
  [[nodiscard]] Head head() const noexcept { return head_; }

  [[nodiscard]] std::size_t layerCount() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] DenseLayer& layer(std::size_t i) { return layers_.at(i); }
  [[nodiscard]] const DenseLayer& layer(std::size_t i) const {
    return layers_.at(i);
  }

  /// Forward pass for one input row. For kSoftmaxClassifier the output is
  /// the probability vector; for kRegression the raw outputs.
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;

  /// Classifier convenience: argmax of forward().
  [[nodiscard]] int predictClass(std::span<const double> input) const;

  /// Regression convenience: first output of forward().
  [[nodiscard]] double predictScalar(std::span<const double> input) const;

  /// FLOPs per inference under the convention used in the paper's tables:
  /// 2 FLOPs per non-zero weight (MAC) + 1 per live bias + 1 per hidden
  /// ReLU on a neuron with at least one live incoming weight.
  [[nodiscard]] std::int64_t flops() const noexcept;

  /// FLOPs a dense (mask-blind) forward pass executes: 2 per weight slot +
  /// 1 per bias + 1 per hidden ReLU, pruned or not. flops() / denseFlops()
  /// is the compute fraction the packed engine's CSR lowering can recover.
  [[nodiscard]] std::int64_t denseFlops() const noexcept;

  /// Total (unmasked) parameter count.
  [[nodiscard]] std::int64_t parameterCount() const noexcept;

  /// Fraction of weights whose mask is zero.
  [[nodiscard]] double sparsity() const noexcept;

  /// Re-applies every layer's mask (used after external weight edits).
  void applyMasks() noexcept;

 private:
  friend class AdamTrainer;

  std::vector<int> dims_;
  Head head_;
  std::vector<DenseLayer> layers_;
};

/// Numerically-stable softmax in place.
void softmaxInPlace(std::span<double> logits) noexcept;

}  // namespace ssm
