// Compile side of the packed int8 engine (allocating; the hot forward
// loops are inline in packed_int8.hpp).
#include "nn/packed_int8.hpp"

#include "nn/quantize.hpp"

namespace ssm {

PackedInt8Mlp::PackedInt8Mlp(const QuantizedMlp& net)
    : head_(net.head()),
      input_dim_(net.inputDim()),
      input_scale_(net.inputScale()) {
  SSM_CHECK(!net.layers().empty(), "cannot pack an empty network");
  SSM_CHECK(net.weightBits() == QuantBits::kInt8,
            "PackedInt8Mlp requires int8 weights");
  SSM_CHECK(net.activationsQuantized(),
            "PackedInt8Mlp requires calibrated activation scales");
  output_dim_ = net.layers().back().out_dim;
  max_width_ = input_dim_;
  layers_.reserve(net.layers().size());
  double in_scale = input_scale_;
  for (std::size_t l = 0; l < net.layers().size(); ++l) {
    const QuantLayer& src = net.layers()[l];
    Layer ly;
    ly.in = src.in_dim;
    ly.out = src.out_dim;
    ly.relu = l + 1 < net.layers().size();
    ly.k = src.weight_scale * in_scale;
    ly.act_scale = src.act_scale;
    ly.w_off = w8_.size();
    ly.bias_off = bias_.size();
    w8_.reserve(w8_.size() + src.weights.size());
    for (std::int32_t w : src.weights) {
      SSM_CHECK(w >= -127 && w <= 127, "weight code out of int8 range");
      w8_.push_back(static_cast<std::int8_t>(w));
    }
    bias_.insert(bias_.end(), src.bias.begin(), src.bias.end());
    max_width_ = std::max(max_width_, ly.out);
    layers_.push_back(ly);
    in_scale = src.act_scale;
  }
}

PackedInt8Mlp::Scratch PackedInt8Mlp::makeScratch() const {
  SSM_CHECK(compiled(), "PackedInt8Mlp not compiled");
  Scratch s;
  s.qping.resize(static_cast<std::size_t>(max_width_));
  s.qpong.resize(static_cast<std::size_t>(max_width_));
  s.head.resize(static_cast<std::size_t>(output_dim_));
  return s;
}

std::int64_t PackedInt8Mlp::asicCyclesPerInference(
    const AsicEngineConfig& cfg) const noexcept {
  const std::int64_t lanes = std::max(1, cfg.mac_lanes);
  std::int64_t cycles = 0;
  for (const Layer& ly : layers_) {
    const std::int64_t macs =
        static_cast<std::int64_t>(ly.in) * static_cast<std::int64_t>(ly.out);
    cycles += (macs + lanes - 1) / lanes;
    cycles += cfg.pipeline_depth;
  }
  return cycles;
}

std::int64_t PackedInt8Mlp::modelBytes() const noexcept {
  std::int64_t total = static_cast<std::int64_t>(w8_.size());
  total += static_cast<std::int64_t>(bias_.size()) * 4;  // FP32 bias
  return total;
}

}  // namespace ssm
