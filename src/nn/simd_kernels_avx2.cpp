// AVX2 vector policy: 4 doubles per __m256d, one output neuron per lane.
// This translation unit is the only x86 code compiled with -mavx2 (set in
// src/nn/CMakeLists.txt); nothing here runs unless the runtime dispatcher
// verified AVX2 support, so the rest of the library keeps the portable
// baseline ISA.
#include "nn/simd_kernels.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace ssm::simd_detail {

namespace {

struct Avx2Policy {
  using Vec = __m256d;
  using IVec = __m256i;
  using Mask = __m256d;

  static Vec load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, Vec v) noexcept { _mm256_storeu_pd(p, v); }
  static Vec broadcast(double x) noexcept { return _mm256_set1_pd(x); }
  static Vec add(Vec a, Vec b) noexcept { return _mm256_add_pd(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm256_mul_pd(a, b); }
  static Vec div(Vec a, Vec b) noexcept { return _mm256_div_pd(a, b); }
  static Vec max(Vec a, Vec b) noexcept { return _mm256_max_pd(a, b); }
  static Vec min(Vec a, Vec b) noexcept { return _mm256_min_pd(a, b); }
  static Vec nearbyint(Vec a) noexcept {
    return _mm256_round_pd(a, _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
  }
  static Vec gather(const double* base, const std::int32_t* idx) noexcept {
    return _mm256_set_pd(base[idx[3]], base[idx[2]], base[idx[1]],
                         base[idx[0]]);
  }
  static IVec loadCounts(const std::int64_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static Mask slotLive(IVec counts, int slot) noexcept {
    return _mm256_castsi256_pd(
        _mm256_cmpgt_epi64(counts, _mm256_set1_epi64x(slot)));
  }
  static Vec maskAdd(Vec acc, Vec prod, Mask m) noexcept {
    return _mm256_blendv_pd(acc, _mm256_add_pd(acc, prod), m);
  }
};

constexpr SimdKernels kAvx2Kernels{&denseLayer<Avx2Policy>,
                                   &sellLayer<Avx2Policy>};

}  // namespace

const SimdKernels* avx2Kernels() noexcept { return &kAvx2Kernels; }

}  // namespace ssm::simd_detail

#else  // non-x86 build or AVX2 not enabled for this TU

namespace ssm::simd_detail {

const SimdKernels* avx2Kernels() noexcept { return nullptr; }

}  // namespace ssm::simd_detail

#endif
