#include "power/vf_table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ssm {

VfTable::VfTable(std::vector<VfPoint> points) : points_(std::move(points)) {
  SSM_CHECK(points_.size() >= 2, "a V/f table needs at least two points");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    SSM_CHECK(points_[i].voltage_v > 0.0 && points_[i].freq_mhz > 0.0,
              "operating point must have positive voltage and frequency");
    if (i > 0) {
      SSM_CHECK(points_[i].freq_mhz > points_[i - 1].freq_mhz,
                "frequencies must be strictly ascending");
      SSM_CHECK(points_[i].voltage_v >= points_[i - 1].voltage_v,
                "voltage must be non-decreasing with frequency");
    }
  }
}

VfTable VfTable::titanX() {
  return VfTable({{1.000, 683.0},
                  {1.000, 780.0},
                  {1.000, 878.0},
                  {1.000, 975.0},
                  {1.100, 1100.0},
                  {1.155, 1165.0}});
}

VfTable VfTable::titanXSparse() {
  return VfTable({{1.000, 683.0}, {1.000, 878.0}, {1.155, 1165.0}});
}

bool VfTable::pointsSortedAndPositive() const noexcept {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].voltage_v <= 0.0 || points_[i].freq_mhz <= 0.0)
      return false;
    if (i > 0 && (points_[i].freq_mhz <= points_[i - 1].freq_mhz ||
                  points_[i].voltage_v < points_[i - 1].voltage_v))
      return false;
  }
  return points_.size() >= 2;
}

const VfPoint& VfTable::at(VfLevel level) const {
  SSM_CHECK(isValid(level), "V/f level out of range");
  SSM_AUDIT_CHECK(pointsSortedAndPositive(),
                  "V/f table lost its sorted-and-positive invariant");
  return points_[static_cast<std::size_t>(level)];
}

VfLevel VfTable::clamp(VfLevel level) const noexcept {
  return std::clamp(level, 0, static_cast<VfLevel>(points_.size()) - 1);
}

VfLevel VfTable::levelForMinFreq(FreqMhz freq_mhz) const noexcept {
  SSM_AUDIT_CHECK(pointsSortedAndPositive(),
                  "V/f table lost its sorted-and-positive invariant");
  for (std::size_t i = 0; i < points_.size(); ++i)
    if (points_[i].freq_mhz >= freq_mhz) return static_cast<VfLevel>(i);
  return defaultLevel();
}

}  // namespace ssm
