#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ssm {

ClusterPowerModel::ClusterPowerModel(ClusterPowerParams params)
    : params_(params) {
  SSM_CHECK(params_.c_eff > 0.0, "c_eff must be positive");
  SSM_CHECK(params_.act_base >= 0.0 && params_.act_base <= 1.0,
            "act_base must be in [0,1]");
}

double ClusterPowerModel::dynamicPowerW(
    const VfPoint& vf, const ClusterActivity& a) const noexcept {
  const double raw = params_.act_base + params_.w_issue * a.issue +
                     params_.w_alu * a.alu + params_.w_mem * a.mem;
  const double activity = std::clamp(raw, params_.act_base, 1.0);
  // Idle (gated) fraction of the epoch contributes only base toggling.
  const double act_scaled =
      a.active * activity + (1.0 - a.active) * params_.act_base * 0.5;
  const double p = params_.c_eff * vf.voltage_v * vf.voltage_v * vf.freq_mhz *
                   act_scaled;
  SSM_AUDIT_CHECK(std::isfinite(p) && p >= 0.0,
                  "dynamic power must be finite and non-negative");
  return p;
}

double ClusterPowerModel::leakagePowerW(const VfPoint& vf) const noexcept {
  return leakagePowerW(vf, params_.leak_cal_temp_c);
}

double ClusterPowerModel::leakagePowerW(const VfPoint& vf,
                                        double temp_c) const noexcept {
  const double v = vf.voltage_v;
  const double base = params_.leak_lin * v + params_.leak_cub * v * v * v;
  // exp(0) == 1.0 exactly in IEEE-754, so the calibration-temperature path
  // (and every caller that does not model heat) stays bit-identical to the
  // historical voltage-only polynomial.
  const double scale =
      std::exp(params_.leak_temp_alpha * (temp_c - params_.leak_cal_temp_c));
  const double p = base * scale;
  SSM_AUDIT_CHECK(std::isfinite(p) && p >= 0.0,
                  "leakage power must be finite and non-negative");
  return p;
}

double ClusterPowerModel::totalPowerW(const VfPoint& vf,
                                      const ClusterActivity& a) const noexcept {
  return dynamicPowerW(vf, a) + leakagePowerW(vf);
}

ChipPowerModel::ChipPowerModel(int num_clusters,
                               ClusterPowerParams cluster_params,
                               UncorePowerParams uncore_params)
    : num_clusters_(num_clusters),
      cluster_model_(cluster_params),
      uncore_(uncore_params) {
  SSM_CHECK(num_clusters_ > 0, "chip needs at least one cluster");
}

double ChipPowerModel::uncorePowerW(double dram_util) const noexcept {
  SSM_AUDIT_CHECK(std::isfinite(dram_util),
                  "DRAM utilisation must be finite");
  const double util = std::clamp(dram_util, 0.0, 1.0);
  return uncore_.base_w + uncore_.dram_max_w * util;
}

double ChipPowerModel::uniformChipPowerW(const VfPoint& vf,
                                         const ClusterActivity& a,
                                         double dram_util) const noexcept {
  return static_cast<double>(num_clusters_) *
             cluster_model_.totalPowerW(vf, a) +
         uncorePowerW(dram_util);
}

void EnergyAccountant::add(double power_w, TimeNs duration_ns) noexcept {
  if (duration_ns <= 0) return;
  SSM_AUDIT_CHECK(std::isfinite(power_w) && power_w >= 0.0,
                  "accounted power must be finite and non-negative");
  energy_j_ += power_w * secondsOf(duration_ns);
  elapsed_ns_ += duration_ns;
  SSM_AUDIT_CHECK(std::isfinite(energy_j_) && energy_j_ >= 0.0,
                  "accumulated energy must stay finite and non-negative");
}

}  // namespace ssm
