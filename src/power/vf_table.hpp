// Voltage/frequency operating-point table.
//
// The paper's setup (§V.A) uses six per-cluster operating points for the
// Nvidia GeForce GTX Titan X, taken from Guerreiro et al., HPCA'18:
//   (1.0 V, 683 MHz) ... (1.155 V, 1165 MHz)
// Level 0 is the slowest point, the highest level is the default.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace ssm {

/// One voltage/frequency operating point.
struct VfPoint {
  double voltage_v = 0.0;
  FreqMhz freq_mhz = 0.0;

  friend bool operator==(const VfPoint&, const VfPoint&) = default;
};

/// Index into a VfTable; 0 = slowest operating point.
using VfLevel = int;

/// Ordered set of operating points (ascending frequency). Immutable after
/// construction; validates monotonicity of both voltage and frequency.
class VfTable {
 public:
  explicit VfTable(std::vector<VfPoint> points);

  /// The six-point GTX Titan X table used throughout the paper.
  static VfTable titanX();

  /// A sparse 3-point variant (endpoints + midpoint) for the A2 ablation.
  static VfTable titanXSparse();

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const VfPoint& at(VfLevel level) const;
  [[nodiscard]] std::span<const VfPoint> points() const noexcept {
    return points_;
  }

  /// The default operating point: the highest level (max frequency).
  [[nodiscard]] VfLevel defaultLevel() const noexcept {
    return static_cast<VfLevel>(points_.size()) - 1;
  }

  [[nodiscard]] bool isValid(VfLevel level) const noexcept {
    return level >= 0 && static_cast<std::size_t>(level) < points_.size();
  }

  /// Clamps an arbitrary integer to a valid level.
  [[nodiscard]] VfLevel clamp(VfLevel level) const noexcept;

  /// Lowest level whose frequency is >= freq_mhz (default level if none).
  [[nodiscard]] VfLevel levelForMinFreq(FreqMhz freq_mhz) const noexcept;

 private:
  /// Audit-mode helper: the constructor's invariant, re-checkable later to
  /// catch memory corruption of an (otherwise immutable) table.
  [[nodiscard]] bool pointsSortedAndPositive() const noexcept;

  std::vector<VfPoint> points_;
};

}  // namespace ssm
