// Analytic GPU power model (McPAT substitute).
//
// The paper uses McPAT to turn simulator activity into power. McPAT's core
// output for a DVFS study reduces to the classic decomposition
//     P_cluster = C_eff * V^2 * f * activity + P_leak(V)
// plus an uncore component (L2, NoC, memory controllers, DRAM I/O) that does
// not scale with the cluster clock. Coefficients are calibrated so that a
// fully-active 24-cluster chip at the default operating point lands in the
// GTX Titan X's 250 W TDP class.
#pragma once

#include "power/vf_table.hpp"

namespace ssm {

/// Per-epoch activity factors for one cluster, each in [0, 1].
struct ClusterActivity {
  double issue = 0.0;      ///< fraction of issue slots used (IPC / peak IPC)
  double alu = 0.0;        ///< fraction of cycles an ALU/FPU fired
  double mem = 0.0;        ///< fraction of cycles with L1/LSU activity
  double active = 1.0;     ///< fraction of the epoch the cluster had work
};

/// Coefficients of the cluster power model. Defaults are the Titan X
/// calibration; tests construct variants to probe sensitivity.
struct ClusterPowerParams {
  /// Effective switched capacitance in W / (V^2 * MHz) at full activity.
  double c_eff = 0.00500;
  /// Activity mapping: P_dyn scales with (base + w_issue*issue + w_alu*alu
  /// + w_mem*mem), clamped to [base, 1]. base models clock-tree/idle toggle.
  double act_base = 0.22;
  double w_issue = 0.42;
  double w_alu = 0.22;
  double w_mem = 0.14;
  /// Leakage P = (leak_lin * V + leak_cub * V^3) * exp(alpha * (T - T_cal))
  /// (watts; V in volts, T in degrees Celsius). The voltage polynomial is
  /// calibrated at `leak_cal_temp_c` so that a fully-active 24-cluster chip
  /// at the default operating point lands in the Titan X 250 W TDP class;
  /// callers that do not model temperature evaluate at the calibration
  /// point, where the exponential is exactly 1.0 and the legacy
  /// voltage-only behaviour is reproduced bit-for-bit.
  double leak_lin = 0.40;
  double leak_cub = 0.45;
  /// Exponential leakage-temperature sensitivity in 1/degC. 0.028 doubles
  /// leakage roughly every 25 degC, in line with published GPU leakage
  /// fits (Mei et al., arXiv:1610.01784 survey, sec. on thermal effects).
  double leak_temp_alpha = 0.028;
  /// Temperature at which leak_lin/leak_cub were calibrated (degC): a
  /// steady-state die temperature typical of an open-bench Titan X under
  /// sustained load.
  double leak_cal_temp_c = 60.0;
};

/// Uncore (frequency-domain-independent) power coefficients for the chip.
struct UncorePowerParams {
  double base_w = 22.0;        ///< L2/NoC/MC idle + board overhead share
  double dram_max_w = 30.0;    ///< DRAM+PHY at full bandwidth utilisation
};

/// Computes per-cluster power from operating point and activity.
class ClusterPowerModel {
 public:
  explicit ClusterPowerModel(ClusterPowerParams params = {});

  [[nodiscard]] double dynamicPowerW(const VfPoint& vf,
                                     const ClusterActivity& a) const noexcept;
  /// Leakage at the calibration temperature (voltage-only legacy path).
  [[nodiscard]] double leakagePowerW(const VfPoint& vf) const noexcept;
  /// Temperature-aware leakage. At `temp_c == params().leak_cal_temp_c`
  /// this is bit-identical to the single-argument overload.
  [[nodiscard]] double leakagePowerW(const VfPoint& vf,
                                     double temp_c) const noexcept;
  [[nodiscard]] double totalPowerW(const VfPoint& vf,
                                   const ClusterActivity& a) const noexcept;

  [[nodiscard]] const ClusterPowerParams& params() const noexcept {
    return params_;
  }

 private:
  ClusterPowerParams params_;
};

/// Chip-level aggregation: clusters + uncore.
class ChipPowerModel {
 public:
  ChipPowerModel(int num_clusters, ClusterPowerParams cluster_params = {},
                 UncorePowerParams uncore_params = {});

  [[nodiscard]] const ClusterPowerModel& cluster() const noexcept {
    return cluster_model_;
  }
  [[nodiscard]] int numClusters() const noexcept { return num_clusters_; }

  /// Uncore power given DRAM bandwidth utilisation in [0,1].
  [[nodiscard]] double uncorePowerW(double dram_util) const noexcept;

  /// Whole-chip power with every cluster at the same point and activity
  /// (convenience for calibration and tests).
  [[nodiscard]] double uniformChipPowerW(const VfPoint& vf,
                                         const ClusterActivity& a,
                                         double dram_util) const noexcept;

 private:
  int num_clusters_;
  ClusterPowerModel cluster_model_;
  UncorePowerParams uncore_;
};

/// Accumulates energy over simulated epochs and derives EDP.
class EnergyAccountant {
 public:
  /// Adds `power_w` sustained for `duration_ns`.
  void add(double power_w, TimeNs duration_ns) noexcept;

  [[nodiscard]] double energyJ() const noexcept { return energy_j_; }
  [[nodiscard]] TimeNs elapsedNs() const noexcept { return elapsed_ns_; }

  /// Energy-delay product in joule-seconds.
  [[nodiscard]] double edp() const noexcept {
    return energy_j_ * secondsOf(elapsed_ns_);
  }

  void reset() noexcept {
    energy_j_ = 0.0;
    elapsed_ns_ = 0;
  }

 private:
  double energy_j_ = 0.0;
  TimeNs elapsed_ns_ = 0;
};

}  // namespace ssm
