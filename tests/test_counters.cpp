// Unit tests for src/counters: the 47-counter block, derived metrics and
// the Table I feature extraction.
#include <gtest/gtest.h>

#include <set>

#include "counters/counters.hpp"

namespace ssm {
namespace {

TEST(Counters, ExactlyFortySeven) {
  EXPECT_EQ(kNumCounters, 47);
}

TEST(Counters, NamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumCounters; ++i) {
    const auto name = counterName(static_cast<CounterId>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name;
  }
}

TEST(Counters, CategoriesCoverAllThreePaperGroups) {
  int inst = 0;
  int stall = 0;
  int power = 0;
  for (int i = 0; i < kNumCounters; ++i) {
    switch (counterCategory(static_cast<CounterId>(i))) {
      case CounterCategory::kInstruction: ++inst; break;
      case CounterCategory::kStall: ++stall; break;
      case CounterCategory::kPower: ++power; break;
      case CounterCategory::kClock: break;
    }
  }
  EXPECT_GT(inst, 5);
  EXPECT_GT(stall, 10);
  EXPECT_GE(power, 3);
}

TEST(CounterBlock, StartsZeroedAndSetsGet) {
  CounterBlock c;
  for (int i = 0; i < kNumCounters; ++i)
    EXPECT_DOUBLE_EQ(c.get(static_cast<CounterId>(i)), 0.0);
  c.set(CounterId::kInstTotal, 5.0);
  c.add(CounterId::kInstTotal, 2.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kInstTotal), 7.0);
  c.clear();
  EXPECT_DOUBLE_EQ(c.get(CounterId::kInstTotal), 0.0);
}

TEST(CounterBlock, FinalizeDerivedComputesRates) {
  CounterBlock c;
  c.set(CounterId::kInstTotal, 2000.0);
  c.set(CounterId::kInstIalu, 600.0);
  c.set(CounterId::kInstFalu, 700.0);
  c.set(CounterId::kInstSfu, 100.0);
  c.set(CounterId::kInstLoad, 300.0);
  c.set(CounterId::kInstStore, 100.0);
  c.set(CounterId::kInstShared, 100.0);
  c.set(CounterId::kInstBranch, 100.0);
  c.set(CounterId::kL1ReadAccess, 300.0);
  c.set(CounterId::kL1ReadMiss, 60.0);
  c.set(CounterId::kL2Access, 60.0);
  c.set(CounterId::kL2Miss, 30.0);
  c.set(CounterId::kStallMemLoadCycles, 400.0);
  c.set(CounterId::kStallMemOtherCycles, 100.0);

  c.finalizeDerived(/*cycles=*/1000, /*max_warps=*/20, /*issue_width=*/2);

  EXPECT_DOUBLE_EQ(c.get(CounterId::kIpc), 2.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kInstPerWarp), 100.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kIssueUtil), 1.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kFracCompute), 0.7);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kFracMem), 0.25);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kFracBranch), 0.05);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kStallMemTotalCycles), 500.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kL1ReadMissRate), 0.2);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kL2MissRate), 0.5);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kStallMemFrac), 500.0 / 20000.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kCyclesElapsed), 1000.0);
}

TEST(CounterBlock, FinalizeDerivedSafeOnZeroes) {
  CounterBlock c;
  c.finalizeDerived(0, 0, 0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kIpc), 0.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kL1ReadMissRate), 0.0);
  EXPECT_DOUBLE_EQ(c.get(CounterId::kL2MissRate), 0.0);
}

TEST(Counters, Table1FeatureSubsetMatchesPaper) {
  // Table I: IPC, PPC, MH, MH\L, L1CRM.
  ASSERT_EQ(kTable1Features.size(), 5u);
  EXPECT_EQ(counterName(kTable1Features[0]), "ipc");
  EXPECT_EQ(counterName(kTable1Features[1]), "power_cluster_w");
  EXPECT_EQ(counterName(kTable1Features[2]), "stall_mem_total_cycles");
  EXPECT_EQ(counterName(kTable1Features[3]), "stall_mem_other_cycles");
  EXPECT_EQ(counterName(kTable1Features[4]), "l1_read_miss");
}

TEST(Counters, ExtractTable1Features) {
  CounterBlock c;
  c.set(CounterId::kIpc, 1.5);
  c.set(CounterId::kPowerClusterW, 6.2);
  c.set(CounterId::kStallMemTotalCycles, 1234.0);
  c.set(CounterId::kStallMemOtherCycles, 56.0);
  c.set(CounterId::kL1ReadMiss, 78.0);
  const auto f = extractTable1Features(c);
  EXPECT_DOUBLE_EQ(f[0], 1.5);
  EXPECT_DOUBLE_EQ(f[1], 6.2);
  EXPECT_DOUBLE_EQ(f[2], 1234.0);
  EXPECT_DOUBLE_EQ(f[3], 56.0);
  EXPECT_DOUBLE_EQ(f[4], 78.0);
}

TEST(Counters, EveryCounterHasADescription) {
  for (int i = 0; i < kNumCounters; ++i) {
    const auto id = static_cast<CounterId>(i);
    EXPECT_FALSE(counterDescription(id).empty()) << counterName(id);
    // Descriptions are one-liners, not essays.
    EXPECT_LT(counterDescription(id).size(), 90u) << counterName(id);
  }
}

TEST(Counters, RawSpanIsWholeBlock) {
  CounterBlock c;
  c.set(CounterId::kInstTotal, 3.0);
  const auto raw = c.raw();
  ASSERT_EQ(raw.size(), static_cast<std::size_t>(kNumCounters));
  EXPECT_DOUBLE_EQ(raw[0], 3.0);
}

}  // namespace
}  // namespace ssm
