// Thermal subsystem tests: RC network properties (monotonicity, analytic
// steady state), temperature-dependent leakage (default path bit-exact),
// throttle hysteresis/no-chatter, the scenario grammar, the v2 trace
// tracks, and sweep-level determinism of the thermal axis.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/pcstall.hpp"
#include "common/check.hpp"
#include "engine/trace_io.hpp"
#include "faults/fault_spec.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "sched/fleet.hpp"
#include "sched/thread_pool.hpp"
#include "thermal/thermal_model.hpp"
#include "thermal/thermal_spec.hpp"
#include "thermal/thermal_throttle.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

using thermal::ThermalModel;
using thermal::ThermalParams;
using thermal::ThermalScenario;
using thermal::ThermalThrottle;
using thermal::ThrottleConfig;

constexpr TimeNs kDt = 10 * kNsPerUs;  // the simulator's default epoch

// --- RC network ---------------------------------------------------------

TEST(ThermalModel, ColdStartsAtAmbientEverywhere) {
  const ThermalParams p;
  const ThermalModel model(p, 4);
  EXPECT_EQ(model.packageTempC(), p.ambient_c);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(model.clusterTempC(i), p.ambient_c);
}

TEST(ThermalModel, ConvergesToAnalyticSteadyState) {
  const ThermalParams p;
  const int n = 4;
  ThermalModel model(p, n);
  const std::vector<double> power(static_cast<std::size_t>(n), 8.0);
  const double uncore = 50.0;
  // ~50 package time constants: far past settling for the compressed
  // calibration (tau_pkg ~ 2 ms, dt = 10 us -> 10000 epochs = 100 ms).
  for (int e = 0; e < 10000; ++e) model.step(power, uncore, kDt);

  const double total = 8.0 * n + uncore;
  const double pkg = ThermalModel::steadyPackageC(p, total);
  EXPECT_NEAR(model.packageTempC(), pkg, 1e-6);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(model.clusterTempC(i),
                ThermalModel::steadyClusterC(p, pkg, 8.0), 1e-6);
}

TEST(ThermalModel, StepIsMonotoneInPower) {
  // More power never yields a lower temperature at any node, epoch by
  // epoch, from identical starting states.
  const ThermalParams p;
  const int n = 3;
  ThermalModel cool(p, n);
  ThermalModel hot(p, n);
  const std::vector<double> low{2.0, 4.0, 6.0};
  const std::vector<double> high{3.0, 4.0, 9.0};  // >= low elementwise
  for (int e = 0; e < 2000; ++e) {
    cool.step(low, 30.0, kDt);
    hot.step(high, 40.0, kDt);
    EXPECT_GE(hot.packageTempC(), cool.packageTempC());
    for (int i = 0; i < n; ++i)
      EXPECT_GE(hot.clusterTempC(i), cool.clusterTempC(i));
  }
}

TEST(ThermalModel, ZeroPowerCoolsBackToAmbient) {
  const ThermalParams p;
  ThermalModel model(p, 2);
  const std::vector<double> power{20.0, 20.0};
  for (int e = 0; e < 3000; ++e) model.step(power, 60.0, kDt);
  EXPECT_GT(model.packageTempC(), p.ambient_c + 5.0);

  const std::vector<double> off{0.0, 0.0};
  for (int e = 0; e < 20000; ++e) model.step(off, 0.0, kDt);
  EXPECT_NEAR(model.packageTempC(), p.ambient_c, 1e-6);
  EXPECT_NEAR(model.clusterTempC(0), p.ambient_c, 1e-6);
}

TEST(ThermalModel, SetStateRoundTripsAndResetReturnsToAmbient) {
  const ThermalParams p;
  ThermalModel a(p, 2);
  const std::vector<double> power{15.0, 5.0};
  for (int e = 0; e < 500; ++e) a.step(power, 30.0, kDt);

  ThermalModel b(p, 2);
  b.setState(a.state());
  EXPECT_EQ(a.state(), b.state());

  b.reset();
  EXPECT_EQ(b.packageTempC(), p.ambient_c);
  EXPECT_EQ(b.clusterTempC(1), p.ambient_c);
}

// --- leakage feedback ---------------------------------------------------

TEST(ThermalLeakage, DefaultTemperaturePathIsBitExact) {
  // The voltage-only overload and the two-argument overload at the
  // calibration temperature must both equal the legacy polynomial to the
  // last bit — this is what keeps every pre-thermal golden output valid.
  const ClusterPowerModel model;
  const ClusterPowerParams& prm = model.params();
  const VfTable vf = VfTable::titanX();
  for (VfLevel l = 0; l < static_cast<VfLevel>(vf.size()); ++l) {
    const VfPoint& pt = vf.at(l);
    const double legacy =
        prm.leak_lin * pt.voltage_v +
        prm.leak_cub * pt.voltage_v * pt.voltage_v * pt.voltage_v;
    EXPECT_EQ(model.leakagePowerW(pt), legacy);
    EXPECT_EQ(model.leakagePowerW(pt, prm.leak_cal_temp_c),
              model.leakagePowerW(pt));
  }
}

TEST(ThermalLeakage, MonotoneAndExponentialInTemperature) {
  const ClusterPowerModel model;
  const VfTable vf = VfTable::titanX();
  const VfPoint& pt = vf.at(vf.defaultLevel());
  double prev = 0.0;
  for (double t = 20.0; t <= 100.0; t += 10.0) {
    const double leak = model.leakagePowerW(pt, t);
    EXPECT_GT(leak, prev);
    prev = leak;
  }
  // alpha = 0.028 -> leakage roughly doubles every ~25 degC.
  const double ratio =
      model.leakagePowerW(pt, 85.0) / model.leakagePowerW(pt, 60.0);
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

// --- throttle state machine --------------------------------------------

TEST(ThermalThrottleTest, EngagesAtTripAndCapsAtFloor) {
  ThrottleConfig cfg;
  cfg.trip_c = 80.0;
  cfg.floor_level = 1;
  ThermalThrottle throttle(cfg, 2, 5);
  const std::vector<double> cool{50.0, 50.0};
  throttle.observe(cool, 40.0);
  EXPECT_EQ(throttle.clamp(0, 5), 5);
  EXPECT_EQ(throttle.throttleEpochs(), 0);

  const std::vector<double> hot{85.0, 50.0};
  throttle.observe(hot, 40.0);
  EXPECT_EQ(throttle.clamp(0, 5), 1);  // engaged cluster capped at floor
  EXPECT_EQ(throttle.clamp(1, 5), 5);  // sibling untouched
  EXPECT_TRUE(throttle.limiting(0));
  EXPECT_FALSE(throttle.limiting(1));
  EXPECT_EQ(throttle.throttleEpochs(), 1);
}

TEST(ThermalThrottleTest, HysteresisBandNeverChatters) {
  // A temperature oscillating anywhere inside (trip - hyst, trip) must
  // leave the state machine exactly where it was — from Clear AND from
  // Engaged — no matter how many epochs it bounces around.
  ThrottleConfig cfg;
  cfg.trip_c = 80.0;
  cfg.hysteresis_c = 8.0;
  cfg.floor_level = 0;
  ThermalThrottle throttle(cfg, 1, 5);

  // From Clear: band temps never engage.
  for (int e = 0; e < 200; ++e) {
    const double t = 72.5 + 7.0 * ((e % 10) / 10.0);  // within (72, 80)
    throttle.observe(std::vector<double>{t}, 40.0);
    EXPECT_EQ(throttle.clamp(0, 5), 5) << "engaged inside the band";
  }
  EXPECT_EQ(throttle.throttleEpochs(), 0);

  // Engage, then oscillate in the band: stays engaged, never releases.
  throttle.observe(std::vector<double>{81.0}, 40.0);
  ASSERT_TRUE(throttle.limiting(0));
  for (int e = 0; e < 200; ++e) {
    const double t = 72.5 + 7.0 * ((e % 10) / 10.0);
    throttle.observe(std::vector<double>{t}, 40.0);
    EXPECT_EQ(throttle.clamp(0, 5), 0) << "released inside the band";
  }
}

TEST(ThermalThrottleTest, RecoveryRampRaisesOneLevelPerPeriod) {
  ThrottleConfig cfg;
  cfg.trip_c = 80.0;
  cfg.hysteresis_c = 8.0;
  cfg.floor_level = 0;
  cfg.recover_epochs = 4;
  ThermalThrottle throttle(cfg, 1, 3);

  throttle.observe(std::vector<double>{85.0}, 40.0);
  ASSERT_EQ(throttle.clamp(0, 3), 0);

  // Cool below trip - hyst: the cap ramps 0 -> 1 -> 2 -> 3, one step per
  // recover_epochs observations, then the cluster clears.
  const std::vector<double> cold{50.0};
  int last_cap = 0;
  for (int e = 0; e < 3 * cfg.recover_epochs + 2; ++e) {
    throttle.observe(cold, 40.0);
    const int cap = throttle.clamp(0, 3);
    EXPECT_GE(cap, last_cap) << "recovery must never lower the cap";
    EXPECT_LE(cap - last_cap, 1) << "recovery must raise one level at a time";
    last_cap = cap;
  }
  EXPECT_EQ(last_cap, 3);
  EXPECT_FALSE(throttle.limiting(0));

  // Re-tripping mid-recovery drops straight back to the floor. One cold
  // observation enters Recovering; `recover_epochs` more earn the first
  // cap raise.
  throttle.observe(std::vector<double>{85.0}, 40.0);
  for (int e = 0; e < cfg.recover_epochs + 1; ++e) throttle.observe(cold, 40.0);
  ASSERT_GT(throttle.clamp(0, 3), 0);
  throttle.observe(std::vector<double>{85.0}, 40.0);
  EXPECT_EQ(throttle.clamp(0, 3), 0);
}

TEST(ThermalThrottleTest, PackageTripEngagesEveryCluster) {
  ThrottleConfig cfg;
  cfg.trip_c = 90.0;
  cfg.package_trip_c = 70.0;
  cfg.floor_level = 0;
  ThermalThrottle throttle(cfg, 3, 5);
  throttle.observe(std::vector<double>{50.0, 50.0, 50.0}, 75.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(throttle.limiting(i));
}

// --- scenario grammar ---------------------------------------------------

TEST(ThermalSpec, ParsePrintRoundTrips) {
  // Textual round trip: print() emits %.17g, so exercise values whose
  // shortest decimal form survives it (dyadic fractions and integers).
  for (const char* text :
       {"none", "on", "amb=45", "amb=45,trip=70",
        "amb=45,rc=1.5,cc=0.25,rp=0.125,cp=0.0625,trip=70,ptrip=65,hyst=5,"
        "floor=1,recover=16"}) {
    const ThermalScenario s = ThermalScenario::parse(text);
    EXPECT_EQ(s.print(), text);
    EXPECT_EQ(ThermalScenario::parse(s.print()), s);
  }
  // Scenario round trip holds for ANY parsed value (%.17g is exact
  // through strtod even when the text form grows digits).
  const ThermalScenario awkward =
      ThermalScenario::parse("amb=45.3,rc=0.2,cc=0.0002,hyst=2.7");
  EXPECT_EQ(ThermalScenario::parse(awkward.print()), awkward);
  EXPECT_FALSE(ThermalScenario::parse("").enabled);
  EXPECT_FALSE(ThermalScenario::parse("none").enabled);
  EXPECT_TRUE(ThermalScenario::parse("on").enabled);
  EXPECT_EQ(ThermalScenario::parse("on").params, ThermalParams{});
  EXPECT_EQ(ThermalScenario::parse("trip=70").throttle.trip_c, 70.0);
}

TEST(ThermalSpec, MalformedSpecsThrowDataError) {
  for (const char* bad : {"bogus", "amb", "amb=cold", "trip=70,wat=1",
                          "rc=-1", "floor=99", "recover=0"}) {
    EXPECT_THROW(static_cast<void>(ThermalScenario::parse(bad)), DataError)
        << bad;
  }
}

TEST(ThermalFaults, ThermalClausesParseAndRoundTrip) {
  const faults::FaultSpec spec = faults::FaultSpec::parse(
      "heatsoak:add=10,ramp=32;tsensor:p=0.5,mode=stuck,k=8;"
      "tjolt:p=0.2,amp=20");
  EXPECT_TRUE(spec.active());
  EXPECT_EQ(spec.heatsoak.add_c, 10.0);
  EXPECT_EQ(spec.tsensor.mode, faults::ThermalSensorFault::Mode::kStuck);
  EXPECT_EQ(spec.tjolt.amp_c, 20.0);
  EXPECT_EQ(faults::FaultSpec::parse(spec.print()).print(), spec.print());
}

// --- integration: runs, traces, sweeps ----------------------------------

/// A deliberately thermally-limited scenario: hot intake and trip points
/// just above ambient, so a millisecond-scale run engages the throttle.
ThermalScenario tightScenario() {
  return ThermalScenario::parse("amb=45,trip=50,ptrip=48,hyst=2");
}

TEST(ThermalRun, ThrottleEngagesAndClampsPeakTemperature) {
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  const ThermalScenario scenario = tightScenario();
  Gpu machine(cfg, vf, workloadByName("spmv"), 777,
              ChipPowerModel(cfg.num_clusters));
  machine.attachThermal(scenario.params);
  ThermalThrottle throttle(scenario.throttle, cfg.num_clusters,
                           static_cast<int>(vf.defaultLevel()));

  const PcstallFactory factory(vf, PcstallConfig{});
  const RunResult run = runWithGovernor(machine, factory, "pcstall",
                                        5 * kNsPerMs, nullptr, nullptr,
                                        &throttle);
  EXPECT_GT(run.throttle_epochs, 0);
  EXPECT_GE(run.peak_temp_c, scenario.throttle.trip_c);
  // The throttle caps the overshoot: the die may cross the trip point (it
  // reacts one epoch late, at floor V/f heat still flows) but must hold it
  // within a few degrees, far below the unthrottled trajectory.
  EXPECT_LT(run.peak_temp_c, scenario.throttle.trip_c + 5.0);
}

TEST(ThermalRun, WithoutThermalNoTracksAndZeroPeak) {
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  const Gpu machine(cfg, vf, workloadByName("spmv"), 777,
                    ChipPowerModel(cfg.num_clusters));
  const RunResult run = runBaseline(machine);
  EXPECT_EQ(run.peak_temp_c, 0.0);
  EXPECT_EQ(run.throttle_epochs, 0);
}

std::uint32_t headerVersion(const std::string& bytes) {
  std::uint32_t v = 0;
  std::memcpy(&v, bytes.data() + 8, sizeof v);
  return v;
}

TEST(ThermalTrace, V2RoundTripPreservesTemperatureTracks) {
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  Gpu machine(cfg, vf, workloadByName("spmv"), 777,
              ChipPowerModel(cfg.num_clusters));
  machine.attachThermal(ThermalParams{});

  EpochTraceRecorder recorder;
  recorder.enableReplayCapture();
  const PcstallFactory factory(vf, PcstallConfig{});
  RunResult run = runWithGovernor(machine, factory, "pcstall", 5 * kNsPerMs,
                                  &recorder);
  const engine::EpochTrace trace = engine::traceFromRecorder(
      recorder, "spmv", "pcstall", 777, vf, std::move(run));

  const std::string bytes = engine::serializeTrace(trace);
  EXPECT_EQ(headerVersion(bytes), engine::kTraceVersion);

  const engine::EpochTrace back = engine::deserializeTrace(bytes);
  ASSERT_EQ(back.epochs.size(), trace.epochs.size());
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    EXPECT_EQ(back.epochs[e].package_temp_c, trace.epochs[e].package_temp_c);
    ASSERT_EQ(back.epochs[e].cluster_temps_c,
              trace.epochs[e].cluster_temps_c);
  }
  EXPECT_EQ(back.recorded.peak_temp_c, trace.recorded.peak_temp_c);
  EXPECT_EQ(back.recorded.throttle_epochs, trace.recorded.throttle_epochs);
  EXPECT_GT(back.recorded.peak_temp_c, ThermalParams{}.ambient_c);
}

TEST(ThermalTrace, ThermalFreeTraceStaysVersion1) {
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  const Gpu machine(cfg, vf, workloadByName("spmv"), 777,
                    ChipPowerModel(cfg.num_clusters));
  EpochTraceRecorder recorder;
  recorder.enableReplayCapture();
  const PcstallFactory factory(vf, PcstallConfig{});
  RunResult run = runWithGovernor(machine, factory, "pcstall", 5 * kNsPerMs,
                                  &recorder);
  const engine::EpochTrace trace = engine::traceFromRecorder(
      recorder, "spmv", "pcstall", 777, vf, std::move(run));
  EXPECT_EQ(headerVersion(engine::serializeTrace(trace)),
            engine::kTraceVersionV1);
}

fleet::SweepSpec thermalSweepSpec() {
  fleet::SweepSpec spec;
  spec.workloads = {workloadByName("spmv"), workloadByName("bfs")};
  spec.mechanisms = {"baseline", "pcstall"};
  spec.seeds = {777};
  spec.thermal = {ThermalScenario{}, tightScenario()};
  spec.max_time_ns = kNsPerMs;
  return spec;
}

TEST(ThermalSweep, JsonlByteIdenticalAcrossJobCounts) {
  const fleet::SweepSpec spec = thermalSweepSpec();
  std::string serial;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    const fleet::FleetRunner runner(spec, pool);
    ASSERT_EQ(runner.runJsonl(os), runner.jobs().size());
    serial = std::move(os).str();
  }
  std::string parallel;
  {
    ThreadPool pool(8);
    std::ostringstream os;
    const fleet::FleetRunner runner(spec, pool);
    ASSERT_EQ(runner.runJsonl(os), runner.jobs().size());
    parallel = std::move(os).str();
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"peak_temp_c\""), std::string::npos);
  EXPECT_NE(serial.find("\"throttle_epochs\""), std::string::npos);
}

TEST(ThermalSweep, ThermallyLimitedCellThrottlesAndCleanCellDoesNot) {
  const fleet::SweepSpec spec = thermalSweepSpec();
  ThreadPool pool(2);
  const fleet::FleetRunner runner(spec, pool);
  const auto results = runner.run();
  bool saw_throttled = false;
  for (const auto& r : results) {
    if (!spec.thermal[r.job.thermal].enabled) {
      EXPECT_EQ(r.peak_temp_c, 0.0);
      EXPECT_EQ(r.throttle_epochs, 0);
    } else {
      EXPECT_GT(r.peak_temp_c, 0.0);
      saw_throttled = saw_throttled || r.throttle_epochs > 0;
    }
  }
  EXPECT_TRUE(saw_throttled);
}

TEST(ThermalSweep, CleanSweepKeepsPreThermalSchema) {
  fleet::SweepSpec spec = thermalSweepSpec();
  spec.thermal = {ThermalScenario{}};  // single disabled cell (the default)
  ThreadPool pool(1);
  const fleet::FleetRunner runner(spec, pool);
  std::ostringstream os;
  ASSERT_GT(runner.runJsonl(os), 0u);
  const std::string out = std::move(os).str();
  EXPECT_EQ(out.find("thermal"), std::string::npos);
  EXPECT_EQ(out.find("peak_temp_c"), std::string::npos);
}

TEST(ThermalSweep, ReplaySweepsRejectAnActiveThermalAxis) {
  fleet::SweepSpec spec;
  spec.replay = {std::make_shared<const engine::EpochTrace>()};
  spec.mechanisms = {"pcstall"};
  spec.thermal = {tightScenario()};
  EXPECT_THROW(static_cast<void>(fleet::expandJobs(spec)), ContractError);
}

}  // namespace
}  // namespace ssm
