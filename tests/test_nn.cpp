// Tests for the NN library: matrix, layers, forward/backward correctness,
// training convergence, masks and FLOPs accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace ssm {
namespace {

TEST(MatrixT, BasicAccessAndBounds) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_THROW(static_cast<void>(m.at(2, 0)), ContractError);
  EXPECT_THROW(static_cast<void>(m.at(0, 3)), ContractError);
  EXPECT_THROW(static_cast<void>(m.row(2)), ContractError);
}

TEST(MatrixT, RowSpanWritesThrough) {
  Matrix m(2, 2);
  auto r = m.row(1);
  r[0] = 3.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixT, FillAndEquality) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  EXPECT_EQ(a, b);
  a.fill(0.0);
  EXPECT_NE(a, b);
}

TEST(Softmax, NormalizesAndIsStable) {
  std::vector<double> v{1000.0, 1001.0, 999.0};
  softmaxInPlace(v);
  double sum = 0.0;
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(v[1], v[0]);
  EXPECT_GT(v[0], v[2]);
}

TEST(DenseLayer, HeInitStatistics) {
  Rng rng(1);
  DenseLayer layer(100, 50, rng);
  double sum = 0.0;
  double sq = 0.0;
  for (double w : layer.weights().flat()) {
    sum += w;
    sq += w * w;
  }
  const auto n = static_cast<double>(layer.weights().size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 2.0 / 100.0, 0.005);  // He variance = 2/fan_in
  for (double b : layer.bias()) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(DenseLayer, MaskZeroesWeights) {
  Rng rng(2);
  DenseLayer layer(4, 3, rng);
  layer.mask().fill(0.0);
  layer.applyMask();
  for (double w : layer.weights().flat()) EXPECT_DOUBLE_EQ(w, 0.0);
  EXPECT_EQ(layer.nonzeroWeights(), 0);
}

TEST(Mlp, RejectsDegenerateDims) {
  EXPECT_THROW(Mlp({5}, Head::kRegression, Rng(1)), ContractError);
}

TEST(Mlp, ForwardShapeAndDeterminism) {
  Mlp net({4, 8, 3}, Head::kSoftmaxClassifier, Rng(3));
  const std::vector<double> x{0.1, -0.2, 0.3, 0.4};
  const auto y1 = net.forward(x);
  const auto y2 = net.forward(x);
  ASSERT_EQ(y1.size(), 3u);
  EXPECT_EQ(y1, y2);
  double sum = 0.0;
  for (double p : y1) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Mlp, ForwardRejectsWrongWidth) {
  Mlp net({4, 8, 3}, Head::kSoftmaxClassifier, Rng(3));
  EXPECT_THROW(net.forward(std::vector<double>{1.0, 2.0}), ContractError);
}

TEST(Mlp, HeadGuards) {
  Mlp cls({2, 4, 3}, Head::kSoftmaxClassifier, Rng(1));
  Mlp reg({2, 4, 1}, Head::kRegression, Rng(1));
  const std::vector<double> x{0.5, -0.5};
  EXPECT_NO_THROW(static_cast<void>(cls.predictClass(x)));
  EXPECT_THROW(static_cast<void>(cls.predictScalar(x)), ContractError);
  EXPECT_NO_THROW(static_cast<void>(reg.predictScalar(x)));
  EXPECT_THROW(static_cast<void>(reg.predictClass(x)), ContractError);
}

TEST(Mlp, FlopsMatchesPaperConventionForPaperArch) {
  // Decision-maker: 6 -> 20x5 -> 6; Calibrator: 12 -> 20x4 -> 1.
  Mlp dec({6, 20, 20, 20, 20, 20, 6}, Head::kSoftmaxClassifier, Rng(1));
  Mlp cal({12, 20, 20, 20, 20, 1}, Head::kRegression, Rng(2));
  // 2*MACs + live biases + hidden ReLUs:
  // dec MACs = 6*20 + 4*400 + 20*6 = 1840 -> 3680 + 106 + 100 = 3886
  // cal MACs = 12*20 + 3*400 + 20  = 1460 -> 2920 + 81 + 80  = 3081
  EXPECT_EQ(dec.flops(), 3886);
  EXPECT_EQ(cal.flops(), 3081);
  // Combined ~6967, matching the paper's reported ~6960 FLOPs.
  EXPECT_NEAR(static_cast<double>(dec.flops() + cal.flops()), 6960.0, 20.0);
}

TEST(Mlp, FlopsDropWithMasks) {
  Mlp net({4, 8, 2}, Head::kRegression, Rng(5));
  const auto before = net.flops();
  net.layer(0).mask().fill(0.0);
  net.applyMasks();
  const auto after = net.flops();
  EXPECT_LT(after, before);
  // Layer 0 fully dead: only layer 1 MACs + its bias remain.
  EXPECT_EQ(after, 2 * 8 * 2 + 2);
}

TEST(Mlp, SparsityAccounting) {
  Mlp net({4, 4, 1}, Head::kRegression, Rng(6));
  EXPECT_DOUBLE_EQ(net.sparsity(), 0.0);
  net.layer(0).mask().fill(0.0);  // 16 of 20 weights masked
  EXPECT_NEAR(net.sparsity(), 16.0 / 20.0, 1e-12);
}

TEST(Trainer, RejectsBadConfigAndData) {
  TrainConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(AdamTrainer{bad}, ContractError);

  Mlp net({2, 4, 2}, Head::kSoftmaxClassifier, Rng(1));
  AdamTrainer tr;
  Matrix x(3, 2);
  const std::vector<int> short_labels{0, 1};
  EXPECT_THROW(tr.fitClassifier(net, x, short_labels), ContractError);
  const std::vector<int> bad_labels{0, 1, 5};
  EXPECT_THROW(tr.fitClassifier(net, x, bad_labels), ContractError);
}

TEST(Trainer, LearnsLinearlySeparableClassification) {
  // Two Gaussian blobs.
  Rng rng(7);
  const int n = 300;
  Matrix x(n, 2);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    x(i, 0) = rng.nextGaussian(cls ? 2.0 : -2.0, 0.7);
    x(i, 1) = rng.nextGaussian(cls ? -1.0 : 1.0, 0.7);
    y[i] = cls;
  }
  Mlp net({2, 8, 2}, Head::kSoftmaxClassifier, Rng(8));
  TrainConfig cfg;
  cfg.epochs = 40;
  AdamTrainer tr(cfg);
  const auto log = tr.fitClassifier(net, x, y);
  EXPECT_GT(classifierAccuracy(net, x, y), 0.97);
  EXPECT_LT(log.back().loss, log.front().loss);
}

TEST(Trainer, LearnsSmoothRegression) {
  Rng rng(9);
  const int n = 400;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    x(i, 0) = rng.nextDouble() * 2.0 - 1.0;
    x(i, 1) = rng.nextDouble() * 2.0 - 1.0;
    // Keep targets bounded away from zero so MAPE is well conditioned.
    y[i] = 6.0 + x(i, 0) * 1.5 - x(i, 1) * 0.5 + x(i, 0) * x(i, 1);
  }
  Mlp net({2, 12, 12, 1}, Head::kRegression, Rng(10));
  TrainConfig cfg;
  cfg.epochs = 250;
  cfg.learning_rate = 3e-3;
  AdamTrainer tr(cfg);
  tr.fitRegression(net, x, y);
  EXPECT_LT(regressionMape(net, x, y), 5.0);
}

TEST(Trainer, TrainingIsDeterministic) {
  const auto train_once = [] {
    Rng rng(11);
    const int n = 100;
    Matrix x(n, 2);
    std::vector<int> y(n);
    for (int i = 0; i < n; ++i) {
      x(i, 0) = rng.nextGaussian();
      x(i, 1) = rng.nextGaussian();
      y[i] = x(i, 0) > 0 ? 1 : 0;
    }
    Mlp net({2, 6, 2}, Head::kSoftmaxClassifier, Rng(12));
    TrainConfig cfg;
    cfg.epochs = 10;
    AdamTrainer tr(cfg);
    tr.fitClassifier(net, x, y);
    return net.forward(std::vector<double>{0.3, -0.7});
  };
  EXPECT_EQ(train_once(), train_once());
}

TEST(Trainer, MaskedWeightsStayZeroThroughTraining) {
  Rng rng(13);
  const int n = 200;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) x(i, static_cast<std::size_t>(c)) = rng.nextGaussian();
    y[i] = x(i, 0) + x(i, 1);
  }
  Mlp net({3, 6, 1}, Head::kRegression, Rng(14));
  // Mask half of layer-0 weights.
  auto mask = net.layer(0).mask().flat();
  for (std::size_t i = 0; i < mask.size(); i += 2) mask[i] = 0.0;
  net.applyMasks();
  TrainConfig cfg;
  cfg.epochs = 30;
  AdamTrainer tr(cfg);
  tr.fitRegression(net, x, y);
  const auto w = net.layer(0).weights().flat();
  for (std::size_t i = 0; i < w.size(); i += 2) EXPECT_DOUBLE_EQ(w[i], 0.0);
}

TEST(Trainer, NumericalGradientCheck) {
  // Verify the analytic gradient of the classifier loss against finite
  // differences on a tiny network and batch.
  Rng data_rng(15);
  const int n = 8;
  Matrix x(n, 3);
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c)
      x(i, static_cast<std::size_t>(c)) = data_rng.nextGaussian();
    y[i] = i % 2;
  }

  const auto loss_of = [&](Mlp& net) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const auto p = net.forward(x.row(static_cast<std::size_t>(i)));
      total += -std::log(std::max(p[static_cast<std::size_t>(y[static_cast<std::size_t>(i)])], 1e-12));
    }
    return total / n;
  };

  // One full-batch SGD-like probe: estimate the gradient impact of a single
  // weight perturbation and compare against the training step direction.
  Mlp net({3, 4, 2}, Head::kSoftmaxClassifier, Rng(16));
  const double eps = 1e-5;
  // Pick a few weights across layers.
  for (const auto& [layer_idx, w_idx] : std::vector<std::pair<int, int>>{
           {0, 0}, {0, 5}, {1, 3}}) {
    Mlp plus = net;
    plus.layer(static_cast<std::size_t>(layer_idx)).weights().flat()[static_cast<std::size_t>(w_idx)] += eps;
    Mlp minus = net;
    minus.layer(static_cast<std::size_t>(layer_idx)).weights().flat()[static_cast<std::size_t>(w_idx)] -= eps;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2 * eps);
    // Analytic: run one epoch with huge batch so the accumulated gradient
    // equals the batch mean; recover it from the Adam update direction sign
    // is too indirect — instead recompute via backward on a clone with a
    // fresh trainer and inspect the weight delta direction for a tiny lr.
    Mlp stepped = net;
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.batch_size = n;
    cfg.learning_rate = 1e-7;
    cfg.l2 = 0.0;
    cfg.lr_step1_frac = 2.0;  // no decay
    cfg.lr_step2_frac = 2.0;
    AdamTrainer tr(cfg);
    tr.fitClassifier(stepped, x, y);
    const double delta =
        stepped.layer(static_cast<std::size_t>(layer_idx)).weights().flat()[static_cast<std::size_t>(w_idx)] -
        net.layer(static_cast<std::size_t>(layer_idx)).weights().flat()[static_cast<std::size_t>(w_idx)];
    if (std::abs(numeric) > 1e-6) {
      // Adam moves against the gradient.
      EXPECT_LT(delta * numeric, 0.0)
          << "layer " << layer_idx << " weight " << w_idx;
    }
  }
}

}  // namespace
}  // namespace ssm
