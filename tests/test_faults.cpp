// Fault-injection subsystem tests: FaultSpec grammar round-trips, the
// injector's per-class semantics and coordinate-keyed determinism, the
// fleet fault axis (byte-identical JSONL at any --jobs), and the hardened
// governor's fallback/recovery watchdog asserted through the mode log and
// the epoch trace.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/hardened_governor.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_spec.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "sched/fleet.hpp"
#include "sched/thread_pool.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

using faults::FaultInjector;
using faults::FaultSpec;
using faults::FaultWindow;

// --- FaultSpec grammar ------------------------------------------------------

TEST(FaultSpecText, EmptyAndNoneAreInactive) {
  EXPECT_FALSE(FaultSpec::parse("").active());
  EXPECT_FALSE(FaultSpec::parse("none").active());
  EXPECT_FALSE(FaultSpec{}.active());
  EXPECT_EQ(FaultSpec{}.print(), "");
  EXPECT_EQ(FaultSpec::parse("  none  "), FaultSpec{});
}

TEST(FaultSpecText, ParsePrintRoundTrip) {
  for (const char* text : {
           "noise:p=0.3,sigma=0.25,bias=0.05",
           "dropout:p=0.1,mode=zero",
           "dropout:p=0.5,mode=stale",
           "delay:p=0.2,k=3",
           "fail:p=0.15",
           "stuck:p=0.02,epochs=7",
           "jitter:p=0.4,frac=0.1",
           "noise:p=0.3,sigma=0.25,bias=0.05;dropout:p=0.1,mode=zero;"
           "delay:p=0.2,k=3;fail:p=0.15;stuck:p=0.02,epochs=7;"
           "jitter:p=0.4,frac=0.1;window:start=10,end=40",
           "dropout:p=1,mode=zero;window:start=12,end=20",
       }) {
    const FaultSpec spec = FaultSpec::parse(text);
    EXPECT_TRUE(spec.active()) << text;
    EXPECT_EQ(FaultSpec::parse(spec.print()), spec) << text;
  }
}

TEST(FaultSpecText, ParsedValuesLandInTheRightFields) {
  const FaultSpec s = FaultSpec::parse(
      "noise:p=0.3,sigma=0.25,bias=-0.05;delay:p=0.2,k=3;"
      "dropout:p=0.1,mode=stale;window:start=5,end=9");
  EXPECT_DOUBLE_EQ(s.noise.p, 0.3);
  EXPECT_DOUBLE_EQ(s.noise.sigma, 0.25);
  EXPECT_DOUBLE_EQ(s.noise.bias, -0.05);
  EXPECT_DOUBLE_EQ(s.delay.p, 0.2);
  EXPECT_EQ(s.delay.k, 3);
  EXPECT_TRUE(s.dropout.stale);
  EXPECT_EQ(s.window.start, 5);
  EXPECT_EQ(s.window.end, 9);
  EXPECT_TRUE(s.window.contains(5));
  EXPECT_TRUE(s.window.contains(8));
  EXPECT_FALSE(s.window.contains(9));
  EXPECT_FALSE(s.window.contains(4));
}

TEST(FaultSpecText, MalformedSpecsThrowDataError) {
  for (const char* bad : {
           "warp:p=0.5",                  // unknown clause
           "noise:q=0.5",                 // unknown key
           "noise:p=1.5",                 // probability out of range
           "noise:p=abc",                 // not a number
           "noise:p",                     // not key=value
           "delay:p=0.1,k=0",             // k out of range
           "delay:p=0.1,k=100",           // k out of range
           "stuck:p=0.1,epochs=0",        // epochs out of range
           "dropout:p=0.1,mode=purple",   // bad mode
           "window:start=9,end=3",        // empty window
           "fail:p=0.1;fail:p=0.2",       // duplicate clause
       }) {
    EXPECT_THROW(static_cast<void>(FaultSpec::parse(bad)), DataError) << bad;
  }
}

// --- FaultInjector semantics ------------------------------------------------

/// A plausible two-cluster report with distinctive per-cluster values.
GpuEpochReport syntheticReport(int epoch) {
  GpuEpochReport report;
  report.epoch_start_ns = epoch * 10'000;
  report.epoch_len_ns = 10'000;
  for (int c = 0; c < 2; ++c) {
    EpochObservation obs;
    obs.cluster_id = c;
    obs.level = 2;
    obs.power_w = 10.0 + c + 0.01 * epoch;
    obs.instructions = 1000 * (c + 1) + epoch;
    obs.counters.set(CounterId::kCyclesElapsed, 10000.0);
    obs.counters.set(CounterId::kIpc, 1.5);
    obs.counters.set(CounterId::kFreqMhz, 911.0);
    obs.counters.set(CounterId::kInstTotal,
                     static_cast<double>(obs.instructions));
    report.clusters.push_back(obs);
  }
  return report;
}

TEST(FaultInjectorTest, ZeroDropoutZeroesTheTelemetryPayload) {
  FaultInjector inj(FaultSpec::parse("dropout:p=1,mode=zero"), 42);
  GpuEpochReport r = syntheticReport(0);
  inj.onTelemetry(r);
  for (const auto& obs : r.clusters) {
    EXPECT_EQ(obs.counters.get(CounterId::kCyclesElapsed), 0.0);
    EXPECT_EQ(obs.instructions, 0);
    EXPECT_EQ(obs.power_w, 0.0);
    // Identity fields survive: the cluster really ran at this level.
    EXPECT_EQ(obs.level, 2);
  }
  EXPECT_EQ(inj.counts().dropout, 2);
  EXPECT_EQ(inj.counts().total(), 2);
}

TEST(FaultInjectorTest, StaleDropoutRepeatsThePristinePreviousEpoch) {
  FaultInjector inj(FaultSpec::parse("dropout:p=1,mode=stale"), 42);
  GpuEpochReport r0 = syntheticReport(0);
  const GpuEpochReport pristine0 = r0;
  inj.onTelemetry(r0);  // no history yet: falls back to a zeroed block
  EXPECT_EQ(r0.clusters[0].instructions, 0);

  GpuEpochReport r1 = syntheticReport(1);
  inj.onTelemetry(r1);
  // Epoch 1 sees epoch 0's PRISTINE payload, not the zeroed one.
  EXPECT_EQ(r1.clusters[0].instructions, pristine0.clusters[0].instructions);
  EXPECT_EQ(r1.clusters[1].power_w, pristine0.clusters[1].power_w);
}

TEST(FaultInjectorTest, DelayDeliversTheEpochKBack) {
  FaultInjector inj(FaultSpec::parse("delay:p=1,k=2"), 7);
  std::vector<GpuEpochReport> pristine;
  for (int e = 0; e < 4; ++e) {
    GpuEpochReport r = syntheticReport(e);
    pristine.push_back(r);
    inj.onTelemetry(r);
    if (e < 2) {
      // Not enough history: telemetry passes through untouched.
      EXPECT_EQ(r.clusters[0].instructions,
                pristine[static_cast<std::size_t>(e)].clusters[0].instructions);
    } else {
      EXPECT_EQ(r.clusters[0].instructions,
                pristine[static_cast<std::size_t>(e - 2)]
                    .clusters[0]
                    .instructions)
          << e;
    }
  }
  EXPECT_EQ(inj.counts().delay, 2 * 2);  // 2 clusters x epochs {2,3}
}

TEST(FaultInjectorTest, WindowGatesInjection) {
  FaultInjector inj(
      FaultSpec::parse("dropout:p=1,mode=zero;window:start=2,end=3"), 1);
  for (int e = 0; e < 4; ++e) {
    GpuEpochReport r = syntheticReport(e);
    inj.onTelemetry(r);
    const bool in_window = e == 2;
    EXPECT_EQ(r.clusters[0].instructions == 0, in_window) << e;
  }
  EXPECT_EQ(inj.counts().dropout, 2);  // 2 clusters, epoch 2 only
}

TEST(FaultInjectorTest, DoneClustersAreLeftAlone) {
  FaultInjector inj(FaultSpec::parse("dropout:p=1,mode=zero"), 3);
  GpuEpochReport r = syntheticReport(0);
  r.clusters[1].cluster_done = true;
  const auto insts = r.clusters[1].instructions;
  inj.onTelemetry(r);
  EXPECT_EQ(r.clusters[0].instructions, 0);
  EXPECT_EQ(r.clusters[1].instructions, insts);
  EXPECT_EQ(inj.counts().dropout, 1);
}

TEST(FaultInjectorTest, NoiseIsDeterministicPerSeed) {
  const FaultSpec spec = FaultSpec::parse("noise:p=0.5,sigma=0.2,bias=0.01");
  FaultInjector a(spec, 99), b(spec, 99), c(spec, 100);
  bool seed_changed_something = false;
  for (int e = 0; e < 20; ++e) {
    GpuEpochReport ra = syntheticReport(e), rb = syntheticReport(e),
                   rc = syntheticReport(e);
    a.onTelemetry(ra);
    b.onTelemetry(rb);
    c.onTelemetry(rc);
    for (std::size_t k = 0; k < ra.clusters.size(); ++k) {
      EXPECT_EQ(ra.clusters[k].counters.raw()[8],
                rb.clusters[k].counters.raw()[8]);  // bitwise equal draws
      if (ra.clusters[k].counters.get(CounterId::kIpc) !=
          rc.clusters[k].counters.get(CounterId::kIpc))
        seed_changed_something = true;
    }
  }
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_TRUE(seed_changed_something);
}

TEST(FaultInjectorTest, ActuationFailAndStuck) {
  FaultInjector fail_inj(FaultSpec::parse("fail:p=1"), 5);
  GpuEpochReport r = syntheticReport(0);
  fail_inj.onTelemetry(r);
  // No transition commanded: nothing to fail.
  EXPECT_EQ(fail_inj.onActuate(0, 2, 2), 2);
  EXPECT_EQ(fail_inj.counts().failed, 0);
  // A commanded transition silently does not land.
  EXPECT_EQ(fail_inj.onActuate(0, 4, 2), 2);
  EXPECT_EQ(fail_inj.counts().failed, 1);

  FaultInjector stuck_inj(FaultSpec::parse("stuck:p=1,epochs=3"), 5);
  GpuEpochReport s0 = syntheticReport(0);
  stuck_inj.onTelemetry(s0);
  EXPECT_EQ(stuck_inj.onActuate(0, 4, 2), 2);  // freeze triggered at epoch 0
  for (int e = 1; e < 3; ++e) {
    GpuEpochReport se = syntheticReport(e);
    stuck_inj.onTelemetry(se);
    EXPECT_EQ(stuck_inj.onActuate(0, 4, 2), 2) << "frozen at epoch " << e;
  }
  GpuEpochReport s3 = syntheticReport(3);
  stuck_inj.onTelemetry(s3);
  // Epoch 3 is past the freeze; p=1 immediately re-triggers a new freeze,
  // which still counts and still holds the current level.
  EXPECT_EQ(stuck_inj.onActuate(0, 4, 2), 2);
  EXPECT_GE(stuck_inj.counts().stuck, 4);
}

// --- fleet fault axis -------------------------------------------------------

/// Cheap sweep with an active fault axis and hardening, model-free.
fleet::SweepSpec faultedSpec() {
  fleet::SweepSpec spec;
  spec.workloads = {workloadByName("spmv"), workloadByName("bfs")};
  spec.mechanisms = {"static-2", "ondemand"};
  spec.presets = {0.10};
  spec.seeds = {777};
  spec.faults = {FaultSpec::parse("none"),
                 FaultSpec::parse("noise:p=0.4,sigma=0.3;dropout:p=0.1,"
                                  "mode=stale;fail:p=0.2"),
                 FaultSpec::parse("delay:p=0.5,k=2;jitter:p=0.3,frac=0.2")};
  spec.harden = true;
  spec.max_time_ns = kNsPerMs;
  return spec;
}

TEST(FleetFaults, JsonlByteIdenticalAcrossJobCounts) {
  const auto spec = faultedSpec();
  std::string serial, parallel;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 2u * 2u * 3u);
    serial = os.str();
  }
  {
    ThreadPool pool(8);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 2u * 2u * 3u);
    parallel = os.str();
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"fault_counts\""), std::string::npos);
  EXPECT_NE(serial.find("\"fallbacks\""), std::string::npos);
}

TEST(FleetFaults, CleanSweepKeepsThePreFaultSchema) {
  fleet::SweepSpec spec;
  spec.workloads = {workloadByName("spmv")};
  spec.mechanisms = {"static-2"};
  spec.max_time_ns = kNsPerMs;

  // An explicitly parsed "none" is the same sweep as the default axis —
  // and neither emits any fault/hardening fields.
  auto explicit_none = spec;
  explicit_none.faults = {FaultSpec::parse("none")};
  ThreadPool pool(2);
  std::ostringstream a, b;
  static_cast<void>(fleet::FleetRunner(spec, pool).runJsonl(a));
  static_cast<void>(fleet::FleetRunner(explicit_none, pool).runJsonl(b));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str().find("\"faults\""), std::string::npos);
  EXPECT_EQ(a.str().find("\"fallbacks\""), std::string::npos);

  std::ostringstream csv;
  fleet::writeCsv(spec, fleet::FleetRunner(spec, pool).run(), csv);
  EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
            "workload,mechanism,preset,seed,exec_time_us,energy_mj,edp_uj_s,"
            "epochs,edp_ratio,latency_ratio");
}

TEST(FleetFaults, FaultCellsShareTheCleanCellsSimulation) {
  const auto spec = faultedSpec();
  const auto jobs = fleet::expandJobs(spec);
  ASSERT_EQ(jobs.size(), 12u);
  for (const auto& a : jobs) {
    for (const auto& b : jobs) {
      if (a.workload == b.workload && a.seed == b.seed) {
        EXPECT_EQ(a.sim_seed, b.sim_seed);
      }
    }
  }
  // Fault axis is the innermost coordinate.
  EXPECT_EQ(jobs[0].fault, 0u);
  EXPECT_EQ(jobs[1].fault, 1u);
  EXPECT_EQ(jobs[2].fault, 2u);
  EXPECT_EQ(jobs[3].mechanism, 1u);
}

TEST(FleetFaults, FaultedCsvCarriesScenarioColumns) {
  const auto spec = faultedSpec();
  ThreadPool pool(4);
  const auto results = fleet::FleetRunner(spec, pool).run();
  std::ostringstream os;
  fleet::writeCsv(spec, results, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find(",faults,injected_faults,fallbacks,recoveries"),
            std::string::npos);
  // The active scenario string is quoted (it contains commas).
  EXPECT_NE(csv.find("\"noise:p="), std::string::npos);
  // Clean cells carry an empty scenario and zero injected faults.
  EXPECT_NE(csv.find(",\"\",0"), std::string::npos);
}

// --- hardened governor ------------------------------------------------------

/// A plausible observation for a cluster running at `level`.
EpochObservation plausibleObs(const VfTable& vf, VfLevel level) {
  EpochObservation obs;
  obs.level = level;
  obs.power_w = 12.0;
  obs.instructions = 5000;
  obs.counters.set(CounterId::kCyclesElapsed, 8000.0);
  obs.counters.set(CounterId::kIpc, 1.2);
  obs.counters.set(CounterId::kIssueUtil, 0.6);
  obs.counters.set(CounterId::kFreqMhz, vf.at(level).freq_mhz);
  return obs;
}

TEST(HardenedGovernorTest, FallsBackOnZeroBlocksAndRecovers) {
  const VfTable vf = VfTable::titanX();
  GovernorModeLog log;
  HardenedConfig cfg;  // defaults: 3 strikes, hold 8, recover after 6 clean
  HardenedGovernor gov(std::make_unique<StaticGovernor>(1), vf, cfg, 0, &log);

  // Clean warm-up: ML mode, inner static policy decides.
  for (int e = 0; e < 10; ++e)
    EXPECT_EQ(gov.decide(plausibleObs(vf, 1)), 1);
  EXPECT_EQ(gov.mode(), GovernorMode::kMl);

  // Telemetry loss: strikes 1 and 2 hold the current level, the third trips
  // the watchdog into safe mode at the default (fastest) level.
  EpochObservation dead;  // all-zero counters
  dead.level = 1;
  EXPECT_EQ(gov.decide(dead), 1);
  EXPECT_EQ(gov.decide(dead), 1);
  EXPECT_EQ(gov.decide(dead), vf.defaultLevel());
  EXPECT_EQ(gov.mode(), GovernorMode::kSafe);
  ASSERT_EQ(log.fallbacks(), 1);
  EXPECT_EQ(log.events()[0].reason, "telemetry");
  EXPECT_EQ(log.events()[0].cluster, 0);

  // Clean input again: safe mode rides ondemand until the hold expires and
  // the clean streak is long enough, then hands back to ML control.
  int safe_epochs = 0;
  while (gov.mode() == GovernorMode::kSafe && safe_epochs < 50) {
    static_cast<void>(gov.decide(plausibleObs(vf, 2)));
    ++safe_epochs;
  }
  EXPECT_EQ(gov.mode(), GovernorMode::kMl);
  EXPECT_GE(safe_epochs, cfg.recover_after_clean);
  ASSERT_EQ(log.recoveries(), 1);
  EXPECT_EQ(log.events()[1].reason, "recovered");
  // Back under ML control.
  EXPECT_EQ(gov.decide(plausibleObs(vf, 1)), 1);
}

TEST(HardenedGovernorTest, SafePolicyChasesUtilisation) {
  const VfTable vf = VfTable::titanX();
  HardenedConfig cfg;
  cfg.strike_trips = 1;
  cfg.warmup_epochs = 0;
  HardenedGovernor gov(std::make_unique<StaticGovernor>(1), vf, cfg, 3,
                       nullptr);
  EpochObservation dead;
  dead.level = 2;
  static_cast<void>(gov.decide(dead));  // trip straight into safe mode
  ASSERT_EQ(gov.mode(), GovernorMode::kSafe);

  auto busy = plausibleObs(vf, 2);
  busy.counters.set(CounterId::kIssueUtil, 0.95);
  EXPECT_EQ(gov.decide(busy), 3);  // high utilisation -> step up

  auto idle = plausibleObs(vf, 2);
  idle.counters.set(CounterId::kIssueUtil, 0.10);
  EXPECT_EQ(gov.decide(idle), 1);  // low utilisation -> step down
}

TEST(HardenedGovernorTest, IpcBlowoutsTripTheWatchdog) {
  const VfTable vf = VfTable::titanX();
  GovernorModeLog log;
  HardenedConfig cfg;
  HardenedGovernor gov(std::make_unique<StaticGovernor>(1), vf, cfg, 0, &log);
  for (int e = 0; e < 8; ++e)
    static_cast<void>(gov.decide(plausibleObs(vf, 1)));
  // Plausible but wildly off-reference IPC (e.g. multiplicative counter
  // noise): blows past blowout_ratio for blowout_trips epochs in a row.
  for (int e = 0; e < cfg.blowout_trips; ++e) {
    auto noisy = plausibleObs(vf, 1);
    noisy.counters.set(CounterId::kIpc, 9.0);
    static_cast<void>(gov.decide(noisy));
  }
  EXPECT_EQ(gov.mode(), GovernorMode::kSafe);
  ASSERT_EQ(log.fallbacks(), 1);
  EXPECT_EQ(log.events()[0].reason, "blowout");
}

// Full-stack: a transient dropout burst makes every cluster's hardened
// governor fall back mid-run and recover after the burst — visible both in
// the mode log and in the epoch trace (safe mode pins the default level).
TEST(HardenedGovernorTest, FallbackAndRecoveryVisibleInEpochTrace) {
  const GpuConfig gpu_cfg;
  const VfTable vf = VfTable::titanX();
  Gpu machine(gpu_cfg, vf, workloadByName("spmv"), 777,
              ChipPowerModel(gpu_cfg.num_clusters));

  const auto inner = fleet::makeGovernorFactory("static-1", vf, 0.10, nullptr);
  GovernorModeLog log;
  HardenedConfig cfg;
  // Isolate the telemetry watchdog: the level excursions this test forces
  // shift the IPC enough that the blowout watchdog would add its own
  // (legitimate) fallbacks and blur the epoch assertions below.
  cfg.blowout_trips = 1 << 20;
  const HardenedGovernorFactory factory(*inner, vf, cfg, &log);

  FaultInjector injector(
      FaultSpec::parse("dropout:p=1,mode=zero;window:start=12,end=20"),
      Rng(777).fork(0xFA17).nextU64());
  EpochTraceRecorder trace;
  const RunResult run = runWithGovernor(machine, factory, "hardened-static",
                                        5 * kNsPerMs, &trace, &injector);

  ASSERT_GT(trace.epochCount(), 35);
  EXPECT_GT(injector.counts().dropout, 0);
  EXPECT_GT(log.fallbacks(), 0);
  EXPECT_GT(log.recoveries(), 0);

  // Every fallback lands inside/just after the burst; recoveries follow it
  // (min_hold_epochs + recover_after_clean both reach past the window end).
  for (const auto& e : log.events()) {
    if (e.to == GovernorMode::kSafe) {
      EXPECT_EQ(e.reason, "telemetry");
      EXPECT_GE(e.epoch, 12);
      EXPECT_LE(e.epoch, 21);
    } else {
      EXPECT_EQ(e.reason, "recovered");
      EXPECT_GT(e.epoch, 20);
    }
  }

  // The trace shows the degraded mode: during the burst the safe policy
  // pins the default (fastest) level, and from the recovery epoch on the
  // inner static policy is back in charge at level 1.
  EXPECT_EQ(trace.levelAt(18, 0), vf.defaultLevel());
  EXPECT_NE(trace.levelAt(18, 0), 1);
  EXPECT_EQ(trace.levelAt(trace.epochCount() - 1, 0), 1);
  static_cast<void>(run);
}

}  // namespace
}  // namespace ssm
