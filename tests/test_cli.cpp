// Integration tests for the ssmdvfs CLI (spawned as a subprocess).
//
// The binary path is injected by CMake as SSM_CLI_PATH. Tests exercise the
// cheap subcommands end-to-end: listing, single-workload data generation,
// training on a small corpus, evaluation, hardware costing and a governed
// run, chained through temporary files exactly as a user would chain them.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace ssm {
namespace {

#ifndef SSM_CLI_PATH
#error "SSM_CLI_PATH must be defined by the build system"
#endif

/// Runs the CLI with `args`, captures stdout(+stderr), returns exit code.
int runCli(const std::string& args, std::string* output) {
  const std::string cmd = std::string(SSM_CLI_PATH) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  std::array<char, 4096> buf{};
  output->clear();
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr)
    *output += buf.data();
  return pclose(pipe);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest -j runs CliTest cases concurrently, and a
    // shared dir would let one test's SetUp delete another's files mid-run.
    dir_ = std::string("ssm_test_cli_") +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CliTest, NoArgsPrintsUsageAndFails) {
  std::string out;
  EXPECT_NE(runCli("", &out), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_NE(runCli("frobnicate", &out), 0);
}

TEST_F(CliTest, ListWorkloadsShowsRegistry) {
  std::string out;
  ASSERT_EQ(runCli("list-workloads", &out), 0);
  EXPECT_NE(out.find("sgemm"), std::string::npos);
  EXPECT_NE(out.find("polybench"), std::string::npos);
}

TEST_F(CliTest, MissingRequiredArgFails) {
  std::string out;
  EXPECT_NE(runCli("datagen", &out), 0);
  EXPECT_NE(out.find("--out"), std::string::npos);
}

TEST_F(CliTest, FullPipelineChain) {
  std::string out;
  const std::string corpus = dir_ + "/c.csv";
  const std::string model = dir_ + "/m.txt";

  // datagen for one workload.
  ASSERT_EQ(runCli("datagen --out " + corpus + " --workload spmv --seed 3",
                   &out),
            0)
      << out;
  EXPECT_TRUE(std::filesystem::exists(corpus));

  // train a compressed model quickly.
  ASSERT_EQ(runCli("train --data " + corpus + " --out " + model +
                       " --compressed --epochs 120",
                   &out),
            0)
      << out;
  EXPECT_TRUE(std::filesystem::exists(model));
  EXPECT_NE(out.find("accuracy"), std::string::npos);

  // eval round trip.
  ASSERT_EQ(runCli("eval --model " + model + " --data " + corpus, &out), 0)
      << out;
  EXPECT_NE(out.find("MAPE"), std::string::npos);

  // hardware costing.
  ASSERT_EQ(runCli("hw-cost --model " + model, &out), 0) << out;
  EXPECT_NE(out.find("cycles/inference"), std::string::npos);

  // a governed run with a trace.
  const std::string trace = dir_ + "/t.csv";
  ASSERT_EQ(runCli("run --workload spmv --mechanism ssmdvfs --model " +
                       model + " --preset 0.10 --trace " + trace,
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("EDP"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(trace));
}

TEST_F(CliTest, RunBaselineAndStatic) {
  std::string out;
  ASSERT_EQ(runCli("run --workload bfs --mechanism baseline", &out), 0)
      << out;
  ASSERT_EQ(runCli("run --workload bfs --mechanism static-2", &out), 0)
      << out;
  EXPECT_NE(out.find("static-2"), std::string::npos);
  EXPECT_NE(runCli("run --workload bfs --mechanism warp-drive", &out), 0);
}

TEST_F(CliTest, QuantizeReportsDrift) {
  std::string out;
  const std::string corpus = dir_ + "/c.csv";
  const std::string model = dir_ + "/m.txt";
  ASSERT_EQ(runCli("datagen --out " + corpus + " --workload bfs --seed 9",
                   &out),
            0)
      << out;
  ASSERT_EQ(runCli("train --data " + corpus + " --out " + model +
                       " --compressed --epochs 100",
                   &out),
            0)
      << out;
  ASSERT_EQ(runCli("quantize --model " + model + " --data " + corpus, &out),
            0)
      << out;
  EXPECT_NE(out.find("int8"), std::string::npos);
  EXPECT_NE(out.find("int16"), std::string::npos);
  EXPECT_NE(out.find("drift"), std::string::npos);
}

TEST_F(CliTest, ProfileFileWorkloadRuns) {
  std::string out;
  const std::string prof = dir_ + "/custom.prof";
  {
    std::FILE* f = std::fopen(prof.c_str(), "w");
    std::fputs(
        "kernel mykernel demo\n"
        "warps_per_cluster 12\n"
        "phase_loops 2\n"
        "phase ialu=0.3 falu=0.3 sfu=0.0 load=0.2 store=0.05 shared=0.1 "
        "branch=0.05 l1=0.8 l2=0.5 ilp=4 div=0.1 dep=0.25 insts=2000\n"
        "end\n",
        f);
    std::fclose(f);
  }
  ASSERT_EQ(runCli("run --workload mykernel --profile-file " + prof +
                       " --mechanism pcstall --preset 0.10",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("pcstall"), std::string::npos);
  // Unknown name inside the file must fail cleanly.
  EXPECT_NE(runCli("run --workload nope --profile-file " + prof +
                       " --mechanism baseline",
                   &out),
            0);
}

TEST_F(CliTest, ExplainShowsDecisionBreakdown) {
  std::string out;
  const std::string corpus = dir_ + "/c2.csv";
  const std::string model = dir_ + "/m2.txt";
  ASSERT_EQ(runCli("datagen --out " + corpus + " --workload hotspot --seed 4",
                   &out),
            0)
      << out;
  ASSERT_EQ(runCli("train --data " + corpus + " --out " + model +
                       " --compressed --epochs 80",
                   &out),
            0)
      << out;
  ASSERT_EQ(runCli("explain --model " + model + " --data " + corpus +
                       " --row 3 --preset 0.15",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("min-frequency decode"), std::string::npos);
  EXPECT_NE(out.find("P(level)"), std::string::npos);
  EXPECT_NE(out.find("est. loss"), std::string::npos);
  // Out-of-range row fails cleanly.
  EXPECT_NE(runCli("explain --model " + model + " --data " + corpus +
                       " --row 999999",
                   &out),
            0);
}

TEST_F(CliTest, RunJsonExport) {
  std::string out;
  const std::string json = dir_ + "/r.json";
  ASSERT_EQ(runCli("run --workload bfs --mechanism pcstall --json " + json,
                   &out),
            0)
      << out;
  ASSERT_TRUE(std::filesystem::exists(json));
  std::ifstream is(json);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"mechanism\":\"pcstall\""), std::string::npos);
  EXPECT_NE(content.find("\"baseline\""), std::string::npos);
  EXPECT_NE(content.find("\"level_histogram\""), std::string::npos);
}

TEST_F(CliTest, OracleEnumeratesLevels) {
  std::string out;
  ASSERT_EQ(runCli("oracle --workload spmv", &out), 0) << out;
  EXPECT_NE(out.find("best EDP"), std::string::npos);
}

/// Reads a whole file; empty string when the file is missing.
std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

TEST_F(CliTest, SweepJsonlIsByteIdenticalAcrossJobCounts) {
  std::string out;
  const std::string serial = dir_ + "/serial.jsonl";
  const std::string parallel = dir_ + "/parallel.jsonl";
  const std::string common =
      "sweep --workloads spmv,bfs --mechanisms baseline,static-2,ondemand "
      "--seeds 777,1234 --max-ms 1 --quiet --out ";
  ASSERT_EQ(runCli(common + serial + " --jobs 1", &out), 0) << out;
  ASSERT_EQ(runCli(common + parallel + " --jobs 8", &out), 0) << out;
  const std::string a = slurp(serial);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(parallel));
  // 2 workloads × 3 mechanisms × 2 seeds = 12 JSONL lines.
  EXPECT_EQ(static_cast<int>(std::count(a.begin(), a.end(), '\n')), 12);
  EXPECT_NE(a.find("\"edp_ratio\""), std::string::npos);
}

TEST_F(CliTest, SweepCsvExportAndBadInputsFail) {
  std::string out;
  const std::string jsonl = dir_ + "/s.jsonl";
  const std::string csv = dir_ + "/s.csv";
  ASSERT_EQ(runCli("sweep --workloads spmv --mechanisms baseline,pcstall "
                   "--max-ms 1 --quiet --out " +
                       jsonl + " --csv " + csv,
                   &out),
            0)
      << out;
  const std::string body = slurp(csv);
  EXPECT_EQ(body.substr(0, body.find(',')), "workload");
  EXPECT_NE(body.find("pcstall"), std::string::npos);
  // Unknown mechanism and unknown workload must fail fast.
  EXPECT_NE(runCli("sweep --workloads spmv --mechanisms warp-drive --out " +
                       jsonl,
                   &out),
            0);
  EXPECT_NE(runCli("sweep --workloads no-such --mechanisms baseline --out " +
                       jsonl,
                   &out),
            0);
  // --out is required.
  EXPECT_NE(runCli("sweep --workloads spmv --mechanisms baseline", &out), 0);
}

TEST_F(CliTest, DcSweepByteIdenticalAndSingleRunReportsHeadlines) {
  std::string out;
  const std::string serial = dir_ + "/dc1.jsonl";
  const std::string parallel = dir_ + "/dc8.jsonl";
  const std::string common =
      "dc --gpus 4 --mix spmv,bfs --traffic \"shape=steady;jobs=4;rate=4\" "
      "--policies least-loaded,deadline-aware --out ";
  ASSERT_EQ(runCli(common + serial + " --jobs 1", &out), 0) << out;
  ASSERT_EQ(runCli(common + parallel + " --jobs 8", &out), 0) << out;
  const std::string a = slurp(serial);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(parallel));
  // 1 traffic × 2 policies × 1 cap × 1 mechanism × 1 seed = 2 JSONL lines.
  EXPECT_EQ(static_cast<int>(std::count(a.begin(), a.end(), '\n')), 2);
  EXPECT_NE(a.find("\"deadline_miss_rate\""), std::string::npos);
  EXPECT_NE(a.find("\"energy_per_job_mj\""), std::string::npos);
  EXPECT_NE(a.find("\"steady_violation_frac\""), std::string::npos);

  // Single-run mode prints the headline metrics for the operator.
  ASSERT_EQ(runCli("dc --gpus 4 --mix spmv "
                   "--traffic \"shape=steady;jobs=4;rate=4\"",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("deadline_miss_rate"), std::string::npos) << out;
  EXPECT_NE(out.find("energy_per_job"), std::string::npos) << out;
  EXPECT_NE(out.find("rack power"), std::string::npos) << out;

  // Bad inputs fail fast with a diagnostic.
  EXPECT_NE(runCli("dc --mix spmv --policy fastest", &out), 0);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(runCli("dc --mix spmv --traffic \"shape=lumpy\"", &out), 0);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  // Multiple cells without --out must refuse (JSONL mode is explicit).
  EXPECT_NE(runCli("dc --mix spmv --policies least-loaded,round-robin", &out),
            0);
}

// Failure paths must exit non-zero with a diagnostic on stderr (runCli
// merges the streams) — never crash, never silently succeed.
TEST_F(CliTest, BadInputsFailWithDiagnostics) {
  std::string out;
  // Unknown mechanism.
  EXPECT_NE(runCli("run --workload bfs --mechanism warp-drive", &out), 0);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("warp-drive"), std::string::npos) << out;

  // Empty preset list: the axis parses to zero cells and the sweep must
  // refuse, not run nothing.
  EXPECT_NE(runCli("sweep --workloads spmv --mechanisms baseline "
                   "--presets \"\" --out " +
                       dir_ + "/x.jsonl",
                   &out),
            0);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("preset"), std::string::npos) << out;

  // Nonsense --faults specs: unknown clause, out-of-range probability,
  // missing key=value shape.
  for (const std::string bad : {"gremlins:p=1", "noise:p=2", "noise:p"}) {
    EXPECT_NE(runCli("run --workload bfs --mechanism static-2 --faults \"" +
                         bad + "\"",
                     &out),
              0)
        << bad;
    EXPECT_NE(out.find("error"), std::string::npos) << out;
    EXPECT_NE(out.find("bad --faults spec"), std::string::npos) << out;
  }
}

// A valid scenario reaches the simulator: the run reports injection counts
// and, with --harden, the governor's fallback/recovery tally.
TEST_F(CliTest, RunWithFaultsReportsCounts) {
  std::string out;
  ASSERT_EQ(
      runCli("run --workload bfs --mechanism static-2 --harden --faults "
             "\"dropout:p=1,mode=zero;window:start=12,end=20\"",
             &out),
      0)
      << out;
  EXPECT_NE(out.find("injected"), std::string::npos) << out;
  EXPECT_NE(out.find("fallbacks"), std::string::npos) << out;
}

TEST_F(CliTest, DatagenJobsMatchesSerialCorpus) {
  std::string out;
  const std::string serial = dir_ + "/serial.csv";
  const std::string parallel = dir_ + "/parallel.csv";
  ASSERT_EQ(runCli("datagen --out " + serial + " --workload spmv --seed 3",
                   &out),
            0)
      << out;
  ASSERT_EQ(runCli("datagen --out " + parallel +
                       " --workload spmv --seed 3 --jobs 4",
                   &out),
            0)
      << out;
  const std::string a = slurp(serial);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(parallel));
}

TEST_F(CliTest, HelpIsGlobalAndPerSubcommand) {
  std::string out;
  // `--help` and `help` print the global usage and succeed.
  ASSERT_EQ(runCli("--help", &out), 0);
  EXPECT_NE(out.find("usage"), std::string::npos);
  ASSERT_EQ(runCli("help", &out), 0);
  EXPECT_NE(out.find("record"), std::string::npos);
  EXPECT_NE(out.find("replay"), std::string::npos);
  // Every subcommand answers --help with its own options.
  for (const std::string cmd :
       {"run", "sweep", "record", "replay", "datagen", "train", "eval"}) {
    ASSERT_EQ(runCli(cmd + " --help", &out), 0) << cmd;
    EXPECT_NE(out.find("ssmdvfs " + cmd), std::string::npos) << cmd << out;
  }
  EXPECT_NE(runCli("frobnicate --help", &out), 0);
}

TEST_F(CliTest, RecordReplayChain) {
  std::string out;
  const std::string trace = dir_ + "/run.ssmtrace";
  ASSERT_EQ(runCli("record --workload spmv --mechanism pcstall --max-ms 1 "
                   "--clusters 6 --out " +
                       trace,
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("trace format v1"), std::string::npos) << out;
  ASSERT_TRUE(std::filesystem::exists(trace));

  // Same policy, same config: open-loop agreement is exactly 100%.
  const std::string json = dir_ + "/rep.json";
  ASSERT_EQ(runCli("replay --trace " + trace + " --json " + json, &out), 0)
      << out;
  EXPECT_NE(out.find("agreement 100.00%"), std::string::npos) << out;
  const std::string body = slurp(json);
  EXPECT_NE(body.find("\"recorded_mechanism\":\"pcstall\""),
            std::string::npos);
  EXPECT_NE(body.find("\"agreement\":1"), std::string::npos);

  // A different policy diverges but still reports cleanly.
  ASSERT_EQ(runCli("replay --trace " + trace + " --mechanism ondemand", &out),
            0)
      << out;
  EXPECT_NE(out.find("replayed ondemand"), std::string::npos) << out;

  // A corrupted file is rejected with a diagnostic, not a crash.
  std::string bytes = slurp(trace);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  const std::string bad = dir_ + "/bad.ssmtrace";
  std::ofstream(bad, std::ios::binary) << bytes;
  EXPECT_NE(runCli("replay --trace " + bad, &out), 0);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST_F(CliTest, SweepReplayIsByteIdenticalAcrossJobCounts) {
  std::string out;
  // Record two traces into a directory; `sweep --replay DIR` picks up both.
  for (const std::string w : {"spmv", "bfs"})
    ASSERT_EQ(runCli("record --workload " + w +
                         " --mechanism pcstall --max-ms 1 --clusters 6 "
                         "--out " +
                         dir_ + "/" + w + ".ssmtrace",
                     &out),
              0)
        << out;

  const std::string serial = dir_ + "/serial.jsonl";
  const std::string parallel = dir_ + "/parallel.jsonl";
  const std::string common = "sweep --replay " + dir_ +
                             " --mechanisms baseline,pcstall,ondemand "
                             "--quiet --out ";
  ASSERT_EQ(runCli(common + serial + " --jobs 1", &out), 0) << out;
  ASSERT_EQ(runCli(common + parallel + " --jobs 8", &out), 0) << out;
  const std::string a = slurp(serial);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(parallel));
  // 2 traces × 3 mechanisms = 6 lines, all carrying replay columns.
  EXPECT_EQ(static_cast<int>(std::count(a.begin(), a.end(), '\n')), 6);
  EXPECT_NE(a.find("\"replay_of\":\"pcstall\""), std::string::npos);
  EXPECT_NE(a.find("\"agreement\""), std::string::npos);

  // Replay and live workloads are mutually exclusive; faults are rejected.
  EXPECT_NE(runCli("sweep --replay " + dir_ +
                       " --workloads spmv --mechanisms baseline --out " +
                       dir_ + "/x.jsonl",
                   &out),
            0);
  EXPECT_NE(runCli("sweep --replay " + dir_ +
                       " --mechanisms baseline --faults \"noise:p=1\" "
                       "--out " +
                       dir_ + "/x.jsonl",
                   &out),
            0);
}

}  // namespace
}  // namespace ssm
