// Tests for the SSMDVFS core: model construction, training, inference
// semantics, and the self-calibrating governor.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>

#include "core/ssm_governor.hpp"
#include "core/ssm_io.hpp"
#include "core/ssm_model.hpp"
#include "datagen/generator.hpp"
#include "gpusim/runner.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

/// Shared small corpus + trained model, built once per test binary.
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GpuConfig gpu;
    gpu.num_clusters = 4;
    GenConfig gen;
    gen.runs_per_workload = 1;
    gen.clusters_sampled = 4;
    gen.epochs_per_breakpoint = 6;
    const DataGenerator dg(gpu, VfTable::titanX(), gen);
    auto all = std::make_unique<Dataset>();
    int phase = 0;
    for (const char* wl : {"sgemm", "spmv", "hotspot", "kmeans"}) {
      all->append(dg.generateForWorkload(workloadByName(wl), 11, phase));
      all->append(
          dg.generateForWorkload(workloadByName(wl), 12, phase + 1));
      ++phase;
    }
    auto [tr, ho] = all->split(0.8, 5);
    train_ = new Dataset(std::move(tr));
    holdout_ = new Dataset(std::move(ho));

    SsmModelConfig cfg;
    cfg.train.epochs = 250;  // keep the fixture quick
    model_ = new std::shared_ptr<SsmModel>(std::make_shared<SsmModel>(cfg));
    summary_ = (*model_)->train(*train_, *holdout_);
  }

  static void TearDownTestSuite() {
    delete train_;
    delete holdout_;
    delete model_;
    train_ = nullptr;
    holdout_ = nullptr;
    model_ = nullptr;
  }

  static Dataset* train_;
  static Dataset* holdout_;
  static std::shared_ptr<SsmModel>* model_;
  static SsmTrainSummary summary_;
};

Dataset* CoreFixture::train_ = nullptr;
Dataset* CoreFixture::holdout_ = nullptr;
std::shared_ptr<SsmModel>* CoreFixture::model_ = nullptr;
SsmTrainSummary CoreFixture::summary_;

TEST_F(CoreFixture, TrainingProducesUsableMetrics) {
  // Six-way classification with inherent ambiguity: well above chance.
  EXPECT_GT(summary_.decision_accuracy, 0.35);
  EXPECT_LT(summary_.calibrator_mape, 20.0);
  EXPECT_EQ(summary_.flops, (*model_)->flops());
}

TEST_F(CoreFixture, PaperArchitectureFlops) {
  // 5-feature + preset input, 5x20 + 4x20 heads: ~6960 FLOPs (§IV.B).
  EXPECT_NEAR(static_cast<double>((*model_)->flops()), 6960.0, 30.0);
}

TEST_F(CoreFixture, DecideLevelWithinRange) {
  for (const auto& p : holdout_->points()) {
    CounterBlock cb;
    for (int c = 0; c < kNumCounters; ++c)
      cb.set(static_cast<CounterId>(c),
             p.counters[static_cast<std::size_t>(c)]);
    const int lvl = (*model_)->decideLevel(cb, 0.10);
    EXPECT_GE(lvl, 0);
    EXPECT_LT(lvl, 6);
  }
}

TEST_F(CoreFixture, Int8DecisionCompilationAgreesWithFloatEngine) {
  // §V.D ASIC datapath: quantize the trained Decision-maker to int8 and
  // check the integer engine against the float decisions on the holdout.
  Matrix rows = holdout_->decisionInputs((*model_)->config().features);
  (*model_)->standardizeDecision(rows);
  const PackedInt8Mlp int8 = (*model_)->compileInt8Decision(rows);
  EXPECT_EQ(int8.inputDim(), (*model_)->decisionNet().inputDim());
  EXPECT_EQ(int8.outputDim(), 6);
  EXPECT_GT(int8.asicCyclesPerInference(), 0);
  auto scratch = int8.makeScratch();
  int agree = 0;
  int total = 0;
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const auto row = rows.row(r);
    const int f = (*model_)->decisionNet().predictClass(row);
    agree += (int8.predictClass(row, scratch) == f);
    ++total;
  }
  // Int8 quantization of a trained head flips only a small decision
  // fraction (the drift the paper tolerates for the hardware engine).
  EXPECT_GE(agree * 10, total * 7) << agree << " of " << total;
  // An untrained model refuses int8 compilation.
  const SsmModel fresh;
  EXPECT_THROW(static_cast<void>(fresh.compileInt8Decision(rows)),
               ContractError);
}

TEST_F(CoreFixture, DistributionSumsToOne) {
  const auto& p = holdout_->points().front();
  CounterBlock cb;
  for (int c = 0; c < kNumCounters; ++c)
    cb.set(static_cast<CounterId>(c), p.counters[static_cast<std::size_t>(c)]);
  const auto dist = (*model_)->decisionDistribution(cb, 0.10);
  ASSERT_EQ(dist.size(), 6u);
  double sum = 0.0;
  for (double d : dist) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(CoreFixture, MinFreqDecodePicksLowestNearTie) {
  // With decode_theta = 1.0 the decode is argmax; with a small theta it
  // must never pick a *higher* level than argmax does.
  SsmModelConfig argmax_cfg;
  argmax_cfg.decode_theta = 1.0;
  for (const auto& p : holdout_->points()) {
    CounterBlock cb;
    for (int c = 0; c < kNumCounters; ++c)
      cb.set(static_cast<CounterId>(c),
             p.counters[static_cast<std::size_t>(c)]);
    const auto dist = (*model_)->decisionDistribution(cb, 0.15);
    int argmax = 0;
    for (int i = 1; i < 6; ++i)
      if (dist[static_cast<std::size_t>(i)] >
          dist[static_cast<std::size_t>(argmax)])
        argmax = i;
    EXPECT_LE((*model_)->decideLevel(cb, 0.15), argmax);
  }
}

TEST_F(CoreFixture, CalibratorPredictsPositiveInstructions) {
  int positive = 0;
  int total = 0;
  for (const auto& p : holdout_->points()) {
    CounterBlock cb;
    for (int c = 0; c < kNumCounters; ++c)
      cb.set(static_cast<CounterId>(c),
             p.counters[static_cast<std::size_t>(c)]);
    for (int lvl = 0; lvl < 6; ++lvl) {
      positive += (*model_)->predictInstsK(cb, 0.10, lvl) > 0.0;
      ++total;
    }
    if (total > 200) break;
  }
  EXPECT_GT(static_cast<double>(positive) / total, 0.95);
}

TEST(SsmModel, ConfigValidation) {
  SsmModelConfig cfg;
  cfg.features.clear();
  EXPECT_THROW(SsmModel{cfg}, ContractError);
  cfg = SsmModelConfig{};
  cfg.num_levels = 1;
  EXPECT_THROW(SsmModel{cfg}, ContractError);
  cfg = SsmModelConfig{};
  cfg.decode_theta = 0.0;
  EXPECT_THROW(SsmModel{cfg}, ContractError);
}

TEST(SsmModel, CompressedArchMatchesPaper) {
  const auto arch = SsmModelConfig::compressedArch();
  // 3 FC layers for Decision-maker (2 hidden), 2 for Calibrator (1 hidden),
  // 12 neurons each (§IV.B).
  EXPECT_EQ(arch.decision_hidden, (std::vector<int>{12, 12}));
  EXPECT_EQ(arch.calibrator_hidden, (std::vector<int>{12}));
  SsmModelConfig cfg;
  cfg.decision_hidden = arch.decision_hidden;
  cfg.calibrator_hidden = arch.calibrator_hidden;
  const SsmModel model(cfg);
  // Pre-pruning layer-wise-compressed FLOPs, ~912 in the paper.
  EXPECT_NEAR(static_cast<double>(model.flops()), 912.0, 80.0);
}

TEST(SsmModel, TrainOnEmptyThrows) {
  SsmModel model;
  const Dataset empty;
  EXPECT_THROW(model.train(empty, empty), ContractError);
}

TEST(SsmModel, LevelOutOfRangeThrows) {
  const SsmModel model;
  CounterBlock cb;
  EXPECT_THROW(static_cast<void>(model.predictInstsK(cb, 0.1, 6)),
               ContractError);
  EXPECT_THROW(static_cast<void>(model.predictInstsK(cb, 0.1, -1)),
               ContractError);
}

// ---- Governor ------------------------------------------------------------

TEST_F(CoreFixture, GovernorRequiresTrainedModel) {
  auto untrained = std::make_shared<SsmModel>();
  EXPECT_THROW(SsmdvfsGovernor(untrained, SsmGovernorConfig{}),
               ContractError);
  EXPECT_THROW(SsmdvfsGovernor(nullptr, SsmGovernorConfig{}), ContractError);
}

EpochObservation obsFromPoint(const DataPoint& p, int level = 5) {
  EpochObservation obs;
  for (int c = 0; c < kNumCounters; ++c)
    obs.counters.set(static_cast<CounterId>(c),
                     p.counters[static_cast<std::size_t>(c)]);
  obs.level = level;
  obs.instructions = static_cast<std::int64_t>(p.insts_k * 1000.0);
  obs.power_w = p.counters[static_cast<std::size_t>(CounterId::kPowerClusterW)];
  return obs;
}

TEST_F(CoreFixture, GovernorReturnsValidLevels) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(*model_, cfg);
  for (const auto& p : holdout_->points()) {
    const int lvl = gov.decide(obsFromPoint(p));
    EXPECT_GE(lvl, 0);
    EXPECT_LT(lvl, 6);
  }
}

TEST_F(CoreFixture, GovernorParksDoneClustersAtMinLevel) {
  SsmdvfsGovernor gov(*model_, SsmGovernorConfig{});
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  obs.cluster_done = true;
  EXPECT_EQ(gov.decide(obs), 0);
}

TEST_F(CoreFixture, CalibrationTightensOnShortfall) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(*model_, cfg);
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  gov.decide(obs);  // primes the prediction
  const double preset_before = gov.workingPreset();
  // Report an epoch that executed almost nothing: a massive shortfall.
  EpochObservation starved = obs;
  starved.instructions = 1;
  gov.decide(starved);
  EXPECT_LT(gov.workingPreset(), preset_before);
}

TEST_F(CoreFixture, WorkingPresetStaysWithinBounds) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(*model_, cfg);
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  gov.decide(obs);
  for (int i = 0; i < 50; ++i) {
    EpochObservation starved = obs;
    starved.instructions = 1;
    gov.decide(starved);
    EXPECT_GE(gov.workingPreset(),
              cfg.preset_floor_frac * cfg.loss_preset - 1e-12);
    EXPECT_LE(gov.workingPreset(),
              cfg.preset_ceil_frac * cfg.loss_preset + 1e-12);
  }
}

TEST_F(CoreFixture, PresetRecoversWhenOnTrack) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(*model_, cfg);
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  gov.decide(obs);
  EpochObservation starved = obs;
  starved.instructions = 1;
  for (int i = 0; i < 5; ++i) gov.decide(starved);
  const double tightened = gov.workingPreset();
  // Now deliver epochs that beat the prediction: preset must drift back up.
  EpochObservation rich = obs;
  rich.instructions = 1'000'000;
  for (int i = 0; i < 20; ++i) gov.decide(rich);
  EXPECT_GT(gov.workingPreset(), tightened);
  EXPECT_LE(gov.workingPreset(), cfg.loss_preset + 1e-9);
}

TEST_F(CoreFixture, ResetClearsEpisodicState) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(*model_, cfg);
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  gov.decide(obs);
  EpochObservation starved = obs;
  starved.instructions = 1;
  gov.decide(starved);
  ASSERT_LT(gov.workingPreset(), cfg.loss_preset);
  gov.reset();
  EXPECT_DOUBLE_EQ(gov.workingPreset(), cfg.loss_preset);
}

TEST_F(CoreFixture, CalibrationOffKeepsPresetFixed) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.calibrate = false;
  SsmdvfsGovernor gov(*model_, cfg);
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  gov.decide(obs);
  EpochObservation starved = obs;
  starved.instructions = 1;
  for (int i = 0; i < 5; ++i) gov.decide(starved);
  EXPECT_DOUBLE_EQ(gov.workingPreset(), cfg.loss_preset);
}

TEST_F(CoreFixture, FactoryCreatesIndependentGovernors) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  const SsmGovernorFactory factory(*model_, cfg);
  auto g0 = factory.create(0);
  auto g1 = factory.create(1);
  ASSERT_NE(g0, nullptr);
  ASSERT_NE(g1, nullptr);
  // Tighten g0 only; g1 must be unaffected.
  EpochObservation obs = obsFromPoint(holdout_->points().front());
  g0->decide(obs);
  EpochObservation starved = obs;
  starved.instructions = 1;
  g0->decide(starved);
  const int lvl1 = g1->decide(obs);
  EXPECT_GE(lvl1, 0);
}

// ---- serialization ---------------------------------------------------------

TEST_F(CoreFixture, SerializationRoundTripsExactly) {
  std::stringstream ss;
  serializeModel(**model_, ss);
  const SsmModel back = deserializeModel(ss);
  ASSERT_TRUE(back.trained());
  EXPECT_EQ(back.flops(), (*model_)->flops());
  // Inference must agree bit-for-bit on holdout rows.
  for (const auto& p : holdout_->points()) {
    CounterBlock cb;
    for (int c = 0; c < kNumCounters; ++c)
      cb.set(static_cast<CounterId>(c),
             p.counters[static_cast<std::size_t>(c)]);
    EXPECT_EQ(back.decideLevel(cb, 0.10), (*model_)->decideLevel(cb, 0.10));
    EXPECT_DOUBLE_EQ(back.predictInstsK(cb, 0.10, 2),
                     (*model_)->predictInstsK(cb, 0.10, 2));
  }
}

TEST_F(CoreFixture, SaveLoadFileRoundTrip) {
  const std::string path = "ssm_test_model.txt";
  saveModel(**model_, path);
  const SsmModel back = loadModel(path);
  std::filesystem::remove(path);
  EXPECT_EQ(back.flops(), (*model_)->flops());
  EXPECT_EQ(back.config().features.size(),
            (*model_)->config().features.size());
}

TEST(SsmIo, RejectsGarbageAndUntrained) {
  std::stringstream ss("not a model at all");
  EXPECT_THROW(static_cast<void>(deserializeModel(ss)), DataError);
  const SsmModel untrained;
  std::stringstream out;
  EXPECT_THROW(serializeModel(untrained, out), ContractError);
  EXPECT_THROW(static_cast<void>(loadModel("no/such/model.txt")), DataError);
}

TEST_F(CoreFixture, SerializationPreservesMasks) {
  SsmModel copy = **model_;
  copy.decisionNet().layer(0).mask().fill(0.0);
  copy.decisionNet().applyMasks();
  std::stringstream ss;
  serializeModel(copy, ss);
  const SsmModel back = deserializeModel(ss);
  EXPECT_EQ(back.decisionNet().layer(0).nonzeroWeights(), 0);
  EXPECT_EQ(back.flops(), copy.flops());
}

TEST_F(CoreFixture, FullRunKeepsLatencyReasonable) {
  // End-to-end smoke: on a small GPU, the governed run must retire and not
  // blow past twice the preset on latency for a memory-bound workload.
  GpuConfig gpu;
  gpu.num_clusters = 4;
  Gpu g(gpu, VfTable::titanX(), workloadByName("spmv"), 3,
        ChipPowerModel(4));
  const RunResult base = runBaseline(g);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  const SsmGovernorFactory factory(*model_, cfg);
  const RunResult run = runWithGovernor(g, factory, "ssmdvfs");
  const double latency =
      static_cast<double>(run.exec_time_ns) / base.exec_time_ns;
  EXPECT_LT(latency, 1.25);
  EXPECT_GT(run.energy_j, 0.0);
}

}  // namespace
}  // namespace ssm
