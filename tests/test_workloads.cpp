// Unit tests for src/workloads: registry integrity, profile validation and
// the train/eval split properties claimed in §V.A.
#include <gtest/gtest.h>

#include <set>

#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

TEST(Workloads, RegistryHasAtLeastTwentyBenchmarks) {
  // §III.A: "over 20 benchmarks from Rodinia, Parboil and PolyBench".
  EXPECT_GE(allWorkloads().size(), 20u);
}

TEST(Workloads, AllThreeSuitesPresent) {
  std::set<std::string> suites;
  for (const auto& k : allWorkloads()) suites.insert(k.suite);
  EXPECT_TRUE(suites.count("rodinia"));
  EXPECT_TRUE(suites.count("parboil"));
  EXPECT_TRUE(suites.count("polybench"));
}

TEST(Workloads, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& k : allWorkloads()) {
    EXPECT_TRUE(names.insert(k.name).second) << "duplicate: " << k.name;
  }
}

TEST(Workloads, AllProfilesValidate) {
  for (const auto& k : allWorkloads()) EXPECT_NO_THROW(k.validate());
}

TEST(Workloads, MixesSumToOne) {
  for (const auto& k : allWorkloads())
    for (const auto& p : k.phases)
      EXPECT_NEAR(p.mix.sum(), 1.0, 1e-6) << k.name;
}

TEST(Workloads, LookupByName) {
  const auto& k = workloadByName("sgemm");
  EXPECT_EQ(k.name, "sgemm");
  EXPECT_EQ(k.suite, "parboil");
  EXPECT_THROW(static_cast<void>(workloadByName("no-such-kernel")),
               DataError);
}

TEST(Workloads, TotalInstsPerWarpAccountsForLoops) {
  KernelProfile k = workloadByName("sgemm");
  std::int64_t per_loop = 0;
  for (const auto& p : k.phases) per_loop += p.insts_per_warp;
  EXPECT_EQ(k.totalInstsPerWarp(), per_loop * k.phase_loops);
}

TEST(Workloads, EvalSplitIsMajorityUnseen) {
  // §V.A: more than 50 % of evaluated programs are not in the training set.
  const auto train = trainingWorkloads();
  const auto eval = evaluationWorkloads();
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(eval.empty());
  std::set<std::string> train_names;
  for (const auto& k : train) train_names.insert(k.name);
  int unseen = 0;
  for (const auto& k : eval) unseen += !train_names.count(k.name);
  EXPECT_GT(unseen * 2, static_cast<int>(eval.size()));
}

TEST(Workloads, SplitsDrawFromRegistry) {
  for (const auto& k : trainingWorkloads())
    EXPECT_NO_THROW(static_cast<void>(workloadByName(k.name)));
  for (const auto& k : evaluationWorkloads())
    EXPECT_NO_THROW(static_cast<void>(workloadByName(k.name)));
}

TEST(Workloads, DiverseMemoryIntensity) {
  // The registry must span memory-bound and compute-bound behaviour, or
  // DVFS has nothing to exploit. Use the first phase's load fraction and
  // L1 hit rate as a proxy.
  bool has_memory_bound = false;
  bool has_compute_bound = false;
  for (const auto& k : allWorkloads()) {
    const auto& p = k.phases.front();
    const double mem_frac = p.mix.load + p.mix.store;
    if (mem_frac > 0.35 && p.l1_hit_rate < 0.5) has_memory_bound = true;
    if (mem_frac < 0.15 && p.l1_hit_rate > 0.85) has_compute_bound = true;
  }
  EXPECT_TRUE(has_memory_bound);
  EXPECT_TRUE(has_compute_bound);
}

TEST(Workloads, MicrobenchFamilyPresentButExcludedFromSplits) {
  // The synthetic corner cases exist in the registry...
  for (const char* name : {"micro_compute", "micro_memory", "micro_sawtooth",
                           "micro_branchy"}) {
    EXPECT_EQ(workloadByName(name).suite, "micro");
  }
  // ...but never leak into the paper's training or evaluation splits.
  for (const auto& k : trainingWorkloads()) EXPECT_NE(k.suite, "micro");
  for (const auto& k : evaluationWorkloads()) EXPECT_NE(k.suite, "micro");
}

TEST(KernelProfileValidate, RejectsBadProfiles) {
  KernelProfile k = workloadByName("sgemm");  // copy a valid one
  KernelProfile bad = k;
  bad.name.clear();
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phases.clear();
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.warps_per_cluster = 0;
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phase_loops = 0;
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phases[0].mix.ialu += 0.5;  // mix no longer sums to 1
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phases[0].l1_hit_rate = 1.5;
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phases[0].ilp = -1;
  EXPECT_THROW(bad.validate(), DataError);

  bad = k;
  bad.phases[0].insts_per_warp = 0;
  EXPECT_THROW(bad.validate(), DataError);
}

}  // namespace
}  // namespace ssm
