// Exact behavioural tests of the SSMDVFS governor decision chain.
//
// Instead of a trained model (whose outputs are only statistically
// predictable), these tests deserialize a HAND-CRAFTED model: one feature
// (IPC), an identity standardizer, a bias-only Decision-maker (known class
// distribution) and a one-hot-driven Calibrator (predicted instructions =
// c_level exactly). Every step of decide() — min-frequency decode,
// EWMA-smoothed calibrator veto, shortfall tightening and recovery — can
// then be checked against hand-computed numbers.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/ssm_governor.hpp"
#include "core/ssm_io.hpp"

namespace ssm {
namespace {

/// Builds the model text. `dec_bias[k]` are the Decision-maker's logits
/// (inputs are multiplied by zero weights); `cal_onehot[k]` is the
/// Calibrator's prediction (in thousands of instructions) at level k.
std::string modelText(const std::array<double, 6>& dec_bias,
                      const std::array<double, 6>& cal_onehot,
                      double decode_theta = 0.5) {
  std::ostringstream os;
  os << "ssmdvfs-model-v1\n";
  os << "features 1 8\n";  // counter index 8 = ipc
  os << "levels 6\n";
  os << "decode_theta " << decode_theta << "\n";
  os << "corrupt 0.5 0.5\n";
  os << "init_seed 1\n";
  os << "train 10 0.001\n";
  os << "decision_hidden 0\n";
  os << "calibrator_hidden 0\n";
  os << "standardizer 2 0 0\n";  // identity standardizer (mean 0)
  os << "2 1 1\n";               // inv_std 1
  os << "decision\n1\n2 6\n";
  os << "12";
  for (int i = 0; i < 12; ++i) os << " 0";  // all weights zero
  os << "\n6";
  for (double b : dec_bias) os << ' ' << b;
  os << "\n12";
  for (int i = 0; i < 12; ++i) os << " 1";  // mask: all live
  os << "\ncalibrator\n1\n8 1\n";
  os << "8 0 0";  // feature and loss weights zero
  for (double c : cal_onehot) os << ' ' << c;
  os << "\n1 0\n";  // bias zero
  os << "8";
  for (int i = 0; i < 8; ++i) os << " 1";
  os << "\n";
  return os.str();
}

std::shared_ptr<SsmModel> makeModel(const std::array<double, 6>& dec_bias,
                                    const std::array<double, 6>& cal_onehot,
                                    double decode_theta = 0.5) {
  std::istringstream is(modelText(dec_bias, cal_onehot, decode_theta));
  return std::make_shared<SsmModel>(deserializeModel(is));
}

EpochObservation obsWith(std::int64_t insts, int level = 5) {
  EpochObservation obs;
  obs.counters.set(CounterId::kIpc, 1.0);
  obs.level = level;
  obs.instructions = insts;
  return obs;
}

// Calibrator says: level k executes c_k thousand instructions. With
// c = {6,7,8,9,10,10}, est. loss vs default = 10/c_k - 1 =
// {66.7%, 42.9%, 25%, 11.1%, 0%, 0%}.
constexpr std::array<double, 6> kRamp = {6, 7, 8, 9, 10, 10};

TEST(GovernorMath, HandModelPredictsExactly) {
  auto model = makeModel({0, 0, 0, 0, 0, 0}, kRamp);
  EXPECT_TRUE(model->trained());
  const auto obs = obsWith(10000);
  for (int k = 0; k < 6; ++k)
    EXPECT_DOUBLE_EQ(model->predictInstsK(obs.counters, 0.1, k), kRamp[k]);
  // Uniform logits -> uniform distribution.
  const auto dist = model->decisionDistribution(obs.counters, 0.1);
  for (double p : dist) EXPECT_NEAR(p, 1.0 / 6.0, 1e-12);
}

TEST(GovernorMath, MinFreqDecodePicksLowestWithinTheta) {
  // Biases {0,0,1,0,0,0}: class 2 is argmax; theta=0.5 admits any class
  // with prob >= 0.5 * p2. exp(0)/exp(1) = 0.368 < 0.5 -> only class 2
  // qualifies -> decode = 2.
  auto model = makeModel({0, 0, 1, 0, 0, 0}, kRamp);
  EXPECT_EQ(model->decideLevel(obsWith(10000).counters, 0.1), 2);
  // theta = 0.3: classes 0..5 all have ratio 0.368 >= 0.3 -> decode = 0.
  auto loose = makeModel({0, 0, 1, 0, 0, 0}, kRamp, /*theta=*/0.3);
  EXPECT_EQ(loose->decideLevel(obsWith(10000).counters, 0.1), 0);
}

TEST(GovernorMath, VetoRaisesLevelToMeetPreset) {
  // Decision-maker always proposes level 0 (bias 1 on class 0, theta high
  // enough that only class 0 qualifies). With preset 0.10 and slack 0.25,
  // the bound is 0.125; est. losses are 66.7/42.9/25/11.1/0/0 % -> the
  // veto must raise the decision to level 3 (11.1% <= 12.5%).
  auto model = makeModel({1, 0, 0, 0, 0, 0}, kRamp, /*theta=*/0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(model, cfg);
  EXPECT_EQ(gov.decide(obsWith(10000)), 3);
}

TEST(GovernorMath, VetoDisabledKeepsRawDecision) {
  auto model = makeModel({1, 0, 0, 0, 0, 0}, kRamp, 0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.calibrator_veto = false;
  SsmdvfsGovernor gov(model, cfg);
  EXPECT_EQ(gov.decide(obsWith(10000)), 0);
}

TEST(GovernorMath, LoosePresetLetsDecisionStand) {
  auto model = makeModel({1, 0, 0, 0, 0, 0}, kRamp, 0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.60;  // bound 0.75 > 66.7%... just above level-0 loss
  SsmdvfsGovernor gov(model, cfg);
  EXPECT_EQ(gov.decide(obsWith(10000)), 0);
}

TEST(GovernorMath, ShortfallTighteningArithmetic) {
  // Flat calibrator c_k = 10 for every k: predicted insts = 10k always.
  auto model = makeModel({0, 0, 0, 0, 0, 1},
                         {10, 10, 10, 10, 10, 10}, 0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.calib_gain = 0.5;
  cfg.pred_tolerance = 0.05;
  SsmdvfsGovernor gov(model, cfg);

  gov.decide(obsWith(10000));  // primes prediction = 10.0 (thousands)
  EXPECT_DOUBLE_EQ(gov.workingPreset(), 0.10);

  // Actual = 8000 -> shortfall = (10-8)/10 = 0.2 > tolerance.
  // preset -= gain * shortfall * preset0 = 0.5 * 0.2 * 0.1 = 0.01.
  gov.decide(obsWith(8000));
  EXPECT_NEAR(gov.workingPreset(), 0.09, 1e-12);

  // On-track epoch (actual = predicted): recovery toward 0.10 by
  // recover_rate (default 0.25): 0.09 + 0.25*(0.10-0.09) = 0.0925.
  gov.decide(obsWith(10000));
  EXPECT_NEAR(gov.workingPreset(), 0.0925, 1e-12);
}

TEST(GovernorMath, SetLossPresetRescalesWorkingPreset) {
  auto model = makeModel({0, 0, 0, 0, 0, 1},
                         {10, 10, 10, 10, 10, 10}, 0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  SsmdvfsGovernor gov(model, cfg);
  gov.decide(obsWith(10000));
  gov.decide(obsWith(8000));  // working preset now 0.09
  gov.setLossPreset(0.20);
  EXPECT_DOUBLE_EQ(gov.lossPreset(), 0.20);
  EXPECT_NEAR(gov.workingPreset(), 0.18, 1e-12);  // scaled proportionally
  EXPECT_THROW(gov.setLossPreset(-0.1), ContractError);
}

TEST(GovernorMath, VetoEwmaSmoothsFlippingEstimates) {
  // The calibrator here is constant, so the EWMA equals the fresh
  // estimate; this test pins the EWMA seeding path (first estimate used
  // directly, no bias toward zero).
  auto model = makeModel({1, 0, 0, 0, 0, 0}, kRamp, 0.9);
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.veto_ewma_alpha = 0.1;  // heavy smoothing
  SsmdvfsGovernor gov(model, cfg);
  // Even with alpha = 0.1 the first decision must already veto to 3.
  EXPECT_EQ(gov.decide(obsWith(10000)), 3);
}

}  // namespace
}  // namespace ssm
