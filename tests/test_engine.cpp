// Engine-layer tests: EpochLoop numeric equivalence, the versioned trace
// format, and open-loop replay.
//
// The equivalence tests pin the engine's headline contract: EpochLoop
// driving a SimBackend produces RunResults EXACTLY equal — every double
// bitwise — to the pre-engine epoch loops. The three reference functions
// below are verbatim transcriptions of the original
// src/gpusim/runner.cpp (runWithGovernor / runWithChipGovernor /
// runSequence) as they existed before the refactor; any divergence in
// accumulator order or histogram math in the engine shows up here as a
// failed exact comparison.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/ondemand.hpp"
#include "baselines/pcstall.hpp"
#include "common/check.hpp"
#include "engine/epoch_loop.hpp"
#include "engine/replay_backend.hpp"
#include "engine/sim_backend.hpp"
#include "engine/trace_io.hpp"
#include "faults/fault_injector.hpp"
#include "gpusim/fault_hook.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

// --- reference loops: the pre-engine runner.cpp, transcribed verbatim ----

RunResult refRunWithGovernor(Gpu gpu, const GovernorFactory& factory,
                             std::string mechanism_name, TimeNs max_time_ns,
                             EpochTraceRecorder* trace,
                             EpochFaultHook* faults) {
  const int n = gpu.numClusters();
  std::vector<std::unique_ptr<DvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) governors.push_back(factory.create(i));

  std::vector<VfLevel> levels(static_cast<std::size_t>(n),
                              gpu.vfTable().defaultLevel());
  std::vector<double> level_epochs(gpu.vfTable().size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_time_sum = 0.0;

  while (!gpu.allDone() && gpu.nowNs() < max_time_ns) {
    GpuEpochReport report = gpu.runEpoch(levels);
    if (faults != nullptr) faults->onTelemetry(report);
    if (trace != nullptr) trace->record(report);
    ++result.epochs;
    power_time_sum += report.chip_power_w;
    for (int i = 0; i < n; ++i) {
      const auto& obs = report.clusters[static_cast<std::size_t>(i)];
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      const VfLevel requested = gpu.vfTable().clamp(
          governors[static_cast<std::size_t>(i)]->decide(obs));
      levels[static_cast<std::size_t>(i)] =
          faults != nullptr ? faults->onActuate(i, requested, obs.level)
                            : requested;
    }
    if (report.all_done) break;
  }

  SSM_CHECK(gpu.allDone(),
            "program did not retire before max_time_ns; raise the limit");

  result.exec_time_ns = gpu.finishTimeNs();
  result.energy_j = gpu.totalEnergyJ();
  result.edp = gpu.edp();
  result.instructions = gpu.totalInstructions();
  result.mean_power_w =
      result.epochs > 0 ? power_time_sum / result.epochs : 0.0;

  const double total_cluster_epochs =
      static_cast<double>(result.epochs) * static_cast<double>(n);
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] = total_cluster_epochs > 0
                                    ? level_epochs[l] / total_cluster_epochs
                                    : 0.0;
  return result;
}

RunResult refRunWithChipGovernor(Gpu gpu, const GovernorFactory& factory,
                                 std::string mechanism_name,
                                 TimeNs max_time_ns,
                                 EpochTraceRecorder* trace) {
  const int n = gpu.numClusters();
  const std::unique_ptr<DvfsGovernor> governor = factory.create(0);

  std::vector<VfLevel> levels(static_cast<std::size_t>(n),
                              gpu.vfTable().defaultLevel());
  std::vector<double> level_epochs(gpu.vfTable().size(), 0.0);

  RunResult result;
  result.mechanism = std::move(mechanism_name);
  double power_sum = 0.0;

  while (!gpu.allDone() && gpu.nowNs() < max_time_ns) {
    const GpuEpochReport report = gpu.runEpoch(levels);
    if (trace != nullptr) trace->record(report);
    ++result.epochs;
    power_sum += report.chip_power_w;

    EpochObservation agg;
    agg.epoch_start_ns = report.epoch_start_ns;
    agg.epoch_len_ns = report.epoch_len_ns;
    int live = 0;
    for (const auto& obs : report.clusters) {
      level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
      if (obs.cluster_done) continue;
      ++live;
      agg.instructions += obs.instructions;
      agg.power_w += obs.power_w;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.add(id, obs.counters.get(id));
      }
      agg.level = obs.level;
    }
    if (live > 0) {
      const double inv = 1.0 / static_cast<double>(live);
      agg.instructions = static_cast<std::int64_t>(
          static_cast<double>(agg.instructions) * inv);
      agg.power_w *= inv;
      for (int c = 0; c < kNumCounters; ++c) {
        const auto id = static_cast<CounterId>(c);
        agg.counters.set(id, agg.counters.get(id) * inv);
      }
    } else {
      agg.cluster_done = true;
    }
    const VfLevel next = gpu.vfTable().clamp(governor->decide(agg));
    levels.assign(static_cast<std::size_t>(n), next);
    if (report.all_done) break;
  }

  SSM_CHECK(gpu.allDone(),
            "program did not retire before max_time_ns; raise the limit");
  result.exec_time_ns = gpu.finishTimeNs();
  result.energy_j = gpu.totalEnergyJ();
  result.edp = gpu.edp();
  result.instructions = gpu.totalInstructions();
  result.mean_power_w = result.epochs > 0 ? power_sum / result.epochs : 0.0;
  const double total = static_cast<double>(result.epochs) * n;
  result.level_histogram.resize(level_epochs.size());
  for (std::size_t l = 0; l < level_epochs.size(); ++l)
    result.level_histogram[l] = total > 0 ? level_epochs[l] / total : 0.0;
  return result;
}

std::vector<RunResult> refRunSequence(
    const std::vector<KernelProfile>& programs, const GovernorFactory& factory,
    std::string mechanism_name, const SequenceConfig& cfg) {
  SSM_CHECK(!programs.empty(), "empty program sequence");

  std::vector<std::unique_ptr<DvfsGovernor>> governors;
  governors.reserve(static_cast<std::size_t>(cfg.gpu.num_clusters));
  for (int i = 0; i < cfg.gpu.num_clusters; ++i)
    governors.push_back(factory.create(i));

  std::vector<RunResult> results;
  results.reserve(programs.size());
  std::vector<VfLevel> levels;
  std::vector<double> level_epochs;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    Gpu gpu(cfg.gpu, cfg.vf, programs[p], cfg.seed + p,
            ChipPowerModel(cfg.gpu.num_clusters));
    for (auto& gov : governors) gov->reset();

    levels.assign(static_cast<std::size_t>(cfg.gpu.num_clusters),
                  gpu.vfTable().defaultLevel());
    level_epochs.assign(gpu.vfTable().size(), 0.0);

    RunResult result;
    result.workload = programs[p].name;
    result.mechanism = mechanism_name;
    double power_sum = 0.0;
    while (!gpu.allDone() && gpu.nowNs() < cfg.max_time_ns_per_program) {
      const GpuEpochReport report = gpu.runEpoch(levels);
      ++result.epochs;
      power_sum += report.chip_power_w;
      for (int i = 0; i < cfg.gpu.num_clusters; ++i) {
        const auto& obs = report.clusters[static_cast<std::size_t>(i)];
        level_epochs[static_cast<std::size_t>(obs.level)] += 1.0;
        levels[static_cast<std::size_t>(i)] = gpu.vfTable().clamp(
            governors[static_cast<std::size_t>(i)]->decide(obs));
      }
      if (report.all_done) break;
    }
    SSM_CHECK(gpu.allDone(), "sequence program did not retire in time");

    result.exec_time_ns = gpu.finishTimeNs();
    result.energy_j = gpu.totalEnergyJ();
    result.edp = gpu.edp();
    result.instructions = gpu.totalInstructions();
    result.mean_power_w =
        result.epochs > 0 ? power_sum / result.epochs : 0.0;
    const double total =
        static_cast<double>(result.epochs) * cfg.gpu.num_clusters;
    result.level_histogram.resize(level_epochs.size());
    for (std::size_t l = 0; l < level_epochs.size(); ++l)
      result.level_histogram[l] = total > 0 ? level_epochs[l] / total : 0.0;
    results.push_back(std::move(result));
  }
  return results;
}

// --- exact-equality helpers ----------------------------------------------

/// Every field, doubles compared exactly: the contract is byte identity,
/// not tolerance.
void expectExactlyEqual(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.mechanism, b.mechanism);
  EXPECT_EQ(a.exec_time_ns, b.exec_time_ns);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.edp, b.edp);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  ASSERT_EQ(a.level_histogram.size(), b.level_histogram.size());
  for (std::size_t l = 0; l < a.level_histogram.size(); ++l)
    EXPECT_EQ(a.level_histogram[l], b.level_histogram[l]) << "level " << l;
  EXPECT_EQ(a.peak_temp_c, b.peak_temp_c);
  EXPECT_EQ(a.throttle_epochs, b.throttle_epochs);
}

void expectExactlyEqual(const EpochObservation& a, const EpochObservation& b) {
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.power_w, b.power_w);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.epoch_start_ns, b.epoch_start_ns);
  EXPECT_EQ(a.epoch_len_ns, b.epoch_len_ns);
  EXPECT_EQ(a.cluster_id, b.cluster_id);
  EXPECT_EQ(a.cluster_done, b.cluster_done);
  for (int c = 0; c < kNumCounters; ++c) {
    const auto id = static_cast<CounterId>(c);
    EXPECT_EQ(a.counters.get(id), b.counters.get(id)) << "counter " << c;
  }
}

void expectExactlyEqual(const engine::EpochTrace& a,
                        const engine::EpochTrace& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.mechanism, b.mechanism);
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.vf.size(), b.vf.size());
  for (VfLevel l = 0; static_cast<std::size_t>(l) < a.vf.size(); ++l)
    EXPECT_EQ(a.vf.at(l), b.vf.at(l));
  expectExactlyEqual(a.recorded, b.recorded);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    const GpuEpochReport& ra = a.epochs[e];
    const GpuEpochReport& rb = b.epochs[e];
    EXPECT_EQ(ra.chip_power_w, rb.chip_power_w);
    EXPECT_EQ(ra.dram_util, rb.dram_util);
    EXPECT_EQ(ra.epoch_start_ns, rb.epoch_start_ns);
    EXPECT_EQ(ra.epoch_len_ns, rb.epoch_len_ns);
    EXPECT_EQ(ra.all_done, rb.all_done);
    EXPECT_EQ(ra.package_temp_c, rb.package_temp_c);
    ASSERT_EQ(ra.cluster_temps_c.size(), rb.cluster_temps_c.size());
    for (std::size_t i = 0; i < ra.cluster_temps_c.size(); ++i)
      EXPECT_EQ(ra.cluster_temps_c[i], rb.cluster_temps_c[i]);
    ASSERT_EQ(ra.clusters.size(), rb.clusters.size());
    for (std::size_t i = 0; i < ra.clusters.size(); ++i)
      expectExactlyEqual(ra.clusters[i], rb.clusters[i]);
  }
}

Gpu makeGpu(const std::string& workload, std::uint64_t seed = 777) {
  const GpuConfig cfg;
  return Gpu(cfg, VfTable::titanX(), workloadByName(workload), seed,
             ChipPowerModel(cfg.num_clusters));
}

/// Records `workload` under pcstall with full replay capture: the shared
/// trace fixture for the round-trip and replay tests.
engine::EpochTrace recordTrace(const std::string& workload,
                               std::uint64_t seed = 777) {
  const VfTable vf = VfTable::titanX();
  const PcstallFactory factory(vf, PcstallConfig{});
  EpochTraceRecorder rec;
  rec.enableReplayCapture();
  const RunResult recorded = runWithGovernor(makeGpu(workload, seed), factory,
                                             "pcstall", kNsPerMs, &rec);
  return engine::traceFromRecorder(rec, workload, "pcstall", seed, vf,
                                   recorded);
}

// --- EpochLoop vs the pre-engine reference loops -------------------------

TEST(EngineLoop, PerClusterMatchesPreEngineReference) {
  const PcstallFactory factory(VfTable::titanX(), PcstallConfig{});
  const RunResult ref = refRunWithGovernor(makeGpu("spmv"), factory, "pcstall",
                                           kNsPerMs, nullptr, nullptr);
  const RunResult now =
      runWithGovernor(makeGpu("spmv"), factory, "pcstall", kNsPerMs);
  expectExactlyEqual(ref, now);
  EXPECT_GT(now.epochs, 0);
}

TEST(EngineLoop, PerClusterWithTraceAndFaultsMatchesReference) {
  const OndemandFactory factory(VfTable::titanX());
  const auto spec = faults::FaultSpec::parse("dropout:p=0.3,mode=zero");

  faults::FaultInjector ref_inj(spec, 42);
  EpochTraceRecorder ref_rec;
  const RunResult ref = refRunWithGovernor(makeGpu("bfs"), factory, "ondemand",
                                           kNsPerMs, &ref_rec, &ref_inj);

  faults::FaultInjector inj(spec, 42);  // identical injector stream
  EpochTraceRecorder rec;
  const RunResult now = runWithGovernor(makeGpu("bfs"), factory, "ondemand",
                                        kNsPerMs, &rec, &inj);

  expectExactlyEqual(ref, now);
  EXPECT_EQ(ref_inj.counts().dropout, inj.counts().dropout);
  EXPECT_EQ(ref_rec.epochCount(), rec.epochCount());
}

TEST(EngineLoop, ChipWideMatchesPreEngineReference) {
  const OndemandFactory factory(VfTable::titanX());
  const RunResult ref = refRunWithChipGovernor(makeGpu("bfs"), factory,
                                               "ondemand", kNsPerMs, nullptr);
  const RunResult now =
      runWithChipGovernor(makeGpu("bfs"), factory, "ondemand", kNsPerMs);
  expectExactlyEqual(ref, now);
}

TEST(EngineLoop, SequenceMatchesPreEngineReference) {
  const PcstallFactory factory(VfTable::titanX(), PcstallConfig{});
  const std::vector<KernelProfile> programs = {workloadByName("spmv"),
                                               workloadByName("bfs")};
  SequenceConfig cfg;
  cfg.max_time_ns_per_program = kNsPerMs;
  const auto ref = refRunSequence(programs, factory, "pcstall", cfg);
  const auto now = runSequence(programs, factory, "pcstall", cfg);
  ASSERT_EQ(ref.size(), now.size());
  for (std::size_t p = 0; p < ref.size(); ++p)
    expectExactlyEqual(ref[p], now[p]);
}

TEST(EngineLoop, SimBackendDrivesTheSameNumbersAsTheAdapter) {
  const PcstallFactory factory(VfTable::titanX(), PcstallConfig{});
  engine::SimBackend backend(makeGpu("spmv"));
  engine::LoopConfig cfg;
  cfg.max_time_ns = kNsPerMs;
  const RunResult direct =
      engine::EpochLoop(cfg).run(backend, backend, factory, "pcstall");
  const RunResult adapter =
      runWithGovernor(makeGpu("spmv"), factory, "pcstall", kNsPerMs);
  expectExactlyEqual(direct, adapter);
}

TEST(EngineLoop, MakeGovernorsHonorsCount) {
  const OndemandFactory factory(VfTable::titanX());
  EXPECT_EQ(engine::makeGovernors(factory, 5).size(), 5u);
  EXPECT_THROW(static_cast<void>(engine::makeGovernors(factory, 0)),
               ContractError);
}

// --- trace format ---------------------------------------------------------

TEST(TraceIo, RoundTripIsExact) {
  const engine::EpochTrace trace = recordTrace("spmv");
  ASSERT_GT(trace.epochs.size(), 0u);
  const engine::EpochTrace back =
      engine::deserializeTrace(engine::serializeTrace(trace));
  expectExactlyEqual(trace, back);
  EXPECT_EQ(back.numClusters(), trace.numClusters());
}

TEST(TraceIo, FileRoundTripAndHeaderInfo) {
  const engine::EpochTrace trace = recordTrace("bfs");
  const std::string path = testing::TempDir() + "test_engine_bfs.ssmtrace";
  engine::saveTrace(trace, path);

  const engine::TraceFileInfo info = engine::traceFileInfo(path);
  // No thermal tracks were recorded, so the writer must choose v1: the
  // committed golden traces depend on thermal-free traces staying v1 bytes.
  EXPECT_EQ(info.version, engine::kTraceVersionV1);
  const std::string bytes = engine::serializeTrace(trace);
  EXPECT_EQ(info.payload_size, bytes.size() - 28);  // header is 28 bytes
  EXPECT_EQ(info.checksum, engine::fnv1a64(std::string_view(bytes).substr(28)));

  expectExactlyEqual(trace, engine::loadTrace(path));
}

TEST(TraceIo, RejectsTamperedAndMalformedImages) {
  const engine::EpochTrace trace = recordTrace("spmv");
  const std::string good = engine::serializeTrace(trace);

  // A single flipped payload byte is caught by the checksum.
  std::string corrupted = good;
  corrupted[40] = static_cast<char>(corrupted[40] ^ 0x01);
  EXPECT_THROW(static_cast<void>(engine::deserializeTrace(corrupted)),
               DataError);

  // Truncation, trailing bytes, wrong magic, unsupported version.
  EXPECT_THROW(static_cast<void>(engine::deserializeTrace(
                   std::string_view(good).substr(0, good.size() - 3))),
               DataError);
  EXPECT_THROW(
      static_cast<void>(engine::deserializeTrace(good + std::string("xx"))),
      DataError);
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(static_cast<void>(engine::deserializeTrace(bad_magic)),
               DataError);
  std::string bad_version = good;
  bad_version[8] = static_cast<char>(bad_version[8] + 1);
  EXPECT_THROW(static_cast<void>(engine::deserializeTrace(bad_version)),
               DataError);
  EXPECT_THROW(static_cast<void>(engine::deserializeTrace(std::string_view{})),
               DataError);
}

TEST(TraceIo, RecorderWithoutReplayCaptureIsADataError) {
  const PcstallFactory factory(VfTable::titanX(), PcstallConfig{});
  EpochTraceRecorder rec;  // capture NOT enabled: summaries only
  const RunResult recorded = runWithGovernor(makeGpu("spmv"), factory,
                                             "pcstall", kNsPerMs, &rec);
  EXPECT_THROW(
      static_cast<void>(engine::traceFromRecorder(
          rec, "spmv", "pcstall", 777, VfTable::titanX(), recorded)),
      DataError);
}

// --- open-loop replay -----------------------------------------------------

TEST(Replay, SameConfigurationAgreesOnEveryDecision) {
  const engine::EpochTrace trace = recordTrace("spmv");
  const PcstallFactory factory(VfTable::titanX(), PcstallConfig{});
  const engine::ReplayReport rep =
      engine::replayTrace(trace, factory, "pcstall");

  // Identical deterministic governor, identical observation stream: every
  // compared decision matches.
  EXPECT_GT(rep.compared, 0);
  EXPECT_EQ(rep.matches, rep.compared);
  EXPECT_EQ(rep.agreement, 1.0);
  // Decisions are one per cluster per epoch; the final epoch's have no
  // recorded successor and are excluded from the comparison denominator.
  const auto n = static_cast<std::int64_t>(trace.numClusters());
  EXPECT_EQ(rep.decisions, static_cast<std::int64_t>(trace.epochs.size()) * n);
  EXPECT_EQ(rep.decisions - rep.compared, n);
  RunResult expected = trace.recorded;
  expected.workload = trace.workload;  // replay stamps the trace's workload
  expectExactlyEqual(rep.result, expected);
}

TEST(Replay, ReproducesRecordedNumbersForAnyGovernor) {
  const engine::EpochTrace trace = recordTrace("spmv");
  const OndemandFactory other(VfTable::titanX());
  const engine::ReplayReport rep =
      engine::replayTrace(trace, other, "ondemand");

  // Open loop: a different policy cannot move the recorded numbers, only
  // the agreement statistics.
  RunResult expected = trace.recorded;
  expected.workload = trace.workload;
  expected.mechanism = "ondemand";
  expectExactlyEqual(rep.result, expected);
  EXPECT_LT(rep.agreement, 1.0);
  EXPECT_GT(rep.decisions, 0);

  // The commanded histogram tallies every decision the replayed governor
  // made, one bucket per V/f level.
  ASSERT_EQ(rep.commanded_histogram.size(), trace.vf.size());
  std::int64_t tallied = 0;
  for (const std::int64_t c : rep.commanded_histogram) tallied += c;
  EXPECT_EQ(tallied, rep.decisions);
}

TEST(Replay, HardenedReplayKeepsRecordedNumbers) {
  const engine::EpochTrace trace = recordTrace("bfs");
  const OndemandFactory other(VfTable::titanX());
  GovernorModeLog log;
  engine::ReplayOptions opts;
  opts.harden = true;
  opts.mode_log = &log;
  const engine::ReplayReport rep =
      engine::replayTrace(trace, other, "ondemand", opts);
  RunResult expected = trace.recorded;
  expected.workload = trace.workload;
  expected.mechanism = "ondemand";
  expectExactlyEqual(rep.result, expected);
}

TEST(Replay, BackendStreamsTheTraceVerbatim) {
  const engine::EpochTrace trace = recordTrace("spmv");
  engine::ReplayBackend backend(trace);
  EXPECT_EQ(backend.numClusters(), trace.numClusters());
  EXPECT_FALSE(backend.done());

  const std::vector<VfLevel> ignored(
      static_cast<std::size_t>(backend.numClusters()),
      trace.vf.defaultLevel());
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    const GpuEpochReport report = backend.nextEpoch(ignored);
    EXPECT_EQ(report.epoch_start_ns, trace.epochs[e].epoch_start_ns);
    EXPECT_EQ(report.chip_power_w, trace.epochs[e].chip_power_w);
  }
  EXPECT_TRUE(backend.done());
  EXPECT_EQ(backend.nowNs(), trace.recorded.exec_time_ns);
  // Exhausting the stream again is a contract violation.
  EXPECT_THROW(static_cast<void>(backend.nextEpoch(ignored)), ContractError);

  const engine::StreamStats st = backend.stats();
  EXPECT_EQ(st.exec_time_ns, trace.recorded.exec_time_ns);
  EXPECT_EQ(st.energy_j, trace.recorded.energy_j);
  EXPECT_EQ(st.edp, trace.recorded.edp);
  EXPECT_EQ(st.instructions, trace.recorded.instructions);
}

}  // namespace
}  // namespace ssm
