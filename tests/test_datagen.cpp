// Tests for the data-generation pipeline (§III.A): dataset container, CSV
// round trip, and the generator's protocol invariants on a small GPU.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <set>

#include <sstream>

#include "datagen/cache.hpp"
#include "datagen/corpus_stats.hpp"
#include "datagen/generator.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

DataPoint makePoint(const std::string& wl, int level, double loss,
                    double insts_k) {
  DataPoint p;
  for (int c = 0; c < kNumCounters; ++c)
    p.counters[static_cast<std::size_t>(c)] = 0.1 * c + loss;
  p.level = level;
  p.perf_loss = loss;
  p.insts_k = insts_k;
  p.workload = wl;
  return p;
}

TEST(Dataset, DecisionMatrixLayout) {
  Dataset ds;
  ds.add(makePoint("a", 2, 0.05, 10.0));
  ds.add(makePoint("b", 4, 0.15, 20.0));
  const std::vector<CounterId> feats{CounterId::kIpc,
                                     CounterId::kPowerClusterW};
  const Matrix m = ds.decisionInputs(feats);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);  // 2 features + loss
  EXPECT_DOUBLE_EQ(m(0, 2), 0.05);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.15);
  const auto labels = ds.decisionLabels();
  EXPECT_EQ(labels, (std::vector<int>{2, 4}));
}

TEST(Dataset, CalibratorMatrixOneHot) {
  Dataset ds;
  ds.add(makePoint("a", 3, 0.05, 10.0));
  const std::vector<CounterId> feats{CounterId::kIpc};
  const Matrix m = ds.calibratorInputs(feats, 6);
  ASSERT_EQ(m.cols(), 1u + 1u + 6u);
  for (int l = 0; l < 6; ++l)
    EXPECT_DOUBLE_EQ(m(0, 2 + static_cast<std::size_t>(l)),
                     l == 3 ? 1.0 : 0.0);
  EXPECT_EQ(ds.calibratorTargets(), (std::vector<double>{10.0}));
}

TEST(Dataset, CalibratorRejectsLevelOutOfRange) {
  Dataset ds;
  ds.add(makePoint("a", 7, 0.05, 10.0));
  const std::vector<CounterId> feats{CounterId::kIpc};
  EXPECT_THROW(static_cast<void>(ds.calibratorInputs(feats, 6)),
               ContractError);
}

TEST(Dataset, SplitPartitionsDeterministically) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) ds.add(makePoint("w", i % 6, 0.01 * i, i));
  const auto [a1, b1] = ds.split(0.8, 42);
  const auto [a2, b2] = ds.split(0.8, 42);
  EXPECT_EQ(a1.size(), 80u);
  EXPECT_EQ(b1.size(), 20u);
  EXPECT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i)
    EXPECT_EQ(a1.points()[i].insts_k, a2.points()[i].insts_k);
  EXPECT_THROW(static_cast<void>(ds.split(0.0, 1)), ContractError);
  EXPECT_THROW(static_cast<void>(ds.split(1.0, 1)), ContractError);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset ds;
  ds.add(makePoint("kernel-x", 5, 0.123456789, 17.25));
  ds.add(makePoint("kernel-y", 0, 0.0, 3.5));
  const std::string path = "ssm_test_roundtrip.csv";
  ds.saveCsv(path);
  const Dataset back = Dataset::loadCsv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.points()[0].workload, "kernel-x");
  EXPECT_EQ(back.points()[0].level, 5);
  EXPECT_DOUBLE_EQ(back.points()[0].perf_loss, 0.123456789);
  EXPECT_DOUBLE_EQ(back.points()[1].insts_k, 3.5);
  for (int c = 0; c < kNumCounters; ++c)
    EXPECT_DOUBLE_EQ(back.points()[0].counters[static_cast<std::size_t>(c)],
                     ds.points()[0].counters[static_cast<std::size_t>(c)]);
}

TEST(Dataset, LoadRejectsMissingAndTruncated) {
  EXPECT_THROW(static_cast<void>(Dataset::loadCsv("no/such/file.csv")),
               DataError);
  const std::string path = "ssm_test_trunc.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("header\nworkload,3,0.1\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(static_cast<void>(Dataset::loadCsv(path)), DataError);
  std::filesystem::remove(path);
}

TEST(Cache, GeneratesOnceThenLoads) {
  const std::string path = "ssm_test_cache.csv";
  std::filesystem::remove(path);
  int calls = 0;
  const auto make = [&] {
    ++calls;
    Dataset ds;
    ds.add(makePoint("w", 1, 0.1, 5.0));
    return ds;
  };
  const Dataset first = getOrGenerateDataset(path, make);
  const Dataset second = getOrGenerateDataset(path, make);
  std::filesystem::remove(path);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(first.size(), second.size());
}

// ---- Generator protocol tests (small GPU for speed). ---------------------

GpuConfig tinyGpu() {
  GpuConfig cfg;
  cfg.num_clusters = 4;
  return cfg;
}

GenConfig tinyGen() {
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 4;
  gen.epochs_per_breakpoint = 6;
  return gen;
}

TEST(Generator, ValidatesConfig) {
  GenConfig bad = tinyGen();
  bad.horizon_epochs = 1;
  EXPECT_THROW(DataGenerator(tinyGpu(), VfTable::titanX(), bad),
               ContractError);
  bad = tinyGen();
  bad.epochs_per_breakpoint = 0;
  EXPECT_THROW(DataGenerator(tinyGpu(), VfTable::titanX(), bad),
               ContractError);
}

TEST(Generator, ProducesOnePointPerClusterAndLevel) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset ds = dg.generateForWorkload(workloadByName("spmv"), 1);
  ASSERT_FALSE(ds.empty());
  // Points per breakpoint = clusters * levels; total must be a multiple.
  EXPECT_EQ(ds.size() % (4 * 6), 0u);
  // All six levels present.
  std::array<int, 6> level_counts{};
  for (const auto& p : ds.points())
    ++level_counts[static_cast<std::size_t>(p.level)];
  for (int l = 0; l < 6; ++l) EXPECT_GT(level_counts[static_cast<std::size_t>(l)], 0);
}

TEST(Generator, DefaultLevelHasZeroLoss) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset ds = dg.generateForWorkload(workloadByName("sgemm"), 2);
  for (const auto& p : ds.points())
    if (p.level == 5) {
      EXPECT_NEAR(p.perf_loss, 0.0, 1e-9);
    }
}

TEST(Generator, LossesAreNonNegativeAndBounded) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  for (const char* wl : {"sgemm", "spmv"}) {
    const Dataset ds = dg.generateForWorkload(workloadByName(wl), 3);
    for (const auto& p : ds.points()) {
      EXPECT_GE(p.perf_loss, 0.0);
      EXPECT_LE(p.perf_loss, 1.2);  // even min freq cannot double the window
    }
  }
}

TEST(Generator, ComputeBoundLossesScaleWithFrequencyDrop) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset ds = dg.generateForWorkload(workloadByName("sgemm"), 4);
  // Mean loss per level must decrease with level (higher f -> lower loss).
  std::array<double, 6> sum{};
  std::array<int, 6> cnt{};
  for (const auto& p : ds.points()) {
    sum[static_cast<std::size_t>(p.level)] += p.perf_loss;
    ++cnt[static_cast<std::size_t>(p.level)];
  }
  for (int l = 0; l + 1 < 6; ++l) {
    ASSERT_GT(cnt[static_cast<std::size_t>(l)], 0);
    const double lo = sum[static_cast<std::size_t>(l)] / cnt[static_cast<std::size_t>(l)];
    const double hi = sum[static_cast<std::size_t>(l + 1)] / cnt[static_cast<std::size_t>(l + 1)];
    EXPECT_GE(lo, hi - 0.02) << "level " << l;
  }
  // And the min-frequency loss is substantial for a compute-bound kernel.
  EXPECT_GT(sum[0] / cnt[0], 0.25);
}

TEST(Generator, MemoryBoundLossesAreSmall) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset ds = dg.generateForWorkload(workloadByName("spmv"), 5);
  double total = 0.0;
  int n = 0;
  for (const auto& p : ds.points())
    if (p.level == 0) {
      total += p.perf_loss;
      ++n;
    }
  ASSERT_GT(n, 0);
  EXPECT_LT(total / n, 0.10);
}

TEST(Generator, InstructionTargetsPositiveAndLevelOrdered) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset ds = dg.generateForWorkload(workloadByName("sgemm"), 6);
  double lo_sum = 0.0;
  double hi_sum = 0.0;
  int lo_n = 0;
  int hi_n = 0;
  for (const auto& p : ds.points()) {
    EXPECT_GT(p.insts_k, 0.0);
    if (p.level == 0) {
      lo_sum += p.insts_k;
      ++lo_n;
    } else if (p.level == 5) {
      hi_sum += p.insts_k;
      ++hi_n;
    }
  }
  ASSERT_GT(lo_n, 0);
  ASSERT_GT(hi_n, 0);
  // Compute-bound: instructions in the scaling window scale with frequency.
  EXPECT_LT(lo_sum / lo_n, hi_sum / hi_n);
}

TEST(Generator, DeterministicForFixedSeed) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  const Dataset a = dg.generateForWorkload(workloadByName("hotspot"), 7);
  const Dataset b = dg.generateForWorkload(workloadByName("hotspot"), 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].perf_loss, b.points()[i].perf_loss);
    EXPECT_DOUBLE_EQ(a.points()[i].insts_k, b.points()[i].insts_k);
  }
}

TEST(CorpusStats, SummarisesPerWorkloadAndLevel) {
  Dataset ds;
  // Two workloads: one sensitive, one flat.
  for (int bp = 0; bp < 3; ++bp) {
    for (int level = 0; level < 6; ++level) {
      ds.add(makePoint("hot", level, 0.1 * (5 - level), 10.0 + level));
      ds.add(makePoint("cold", level, 0.01, 8.0));
    }
  }
  const CorpusStats stats = computeCorpusStats(ds);
  EXPECT_EQ(stats.total_samples, 36);
  ASSERT_EQ(stats.per_workload.size(), 2u);
  // Sorted by sensitivity: 'hot' first.
  EXPECT_EQ(stats.per_workload[0].workload, "hot");
  EXPECT_NEAR(stats.per_workload[0].sensitivity, 0.5, 1e-12);
  EXPECT_NEAR(stats.per_workload[1].sensitivity, 0.01, 1e-12);
  // Balanced labels: 1/6 each.
  for (double f : stats.label_fractions) EXPECT_NEAR(f, 1.0 / 6.0, 1e-12);
  EXPECT_TRUE(stats.laddersMonotonic());
  // Per-level detail.
  const auto& hot = stats.per_workload[0];
  EXPECT_EQ(hot.per_level[0].count, 3);
  EXPECT_NEAR(hot.per_level[0].mean_loss, 0.5, 1e-12);
  EXPECT_NEAR(hot.per_level[5].mean_loss, 0.0, 1e-12);
  EXPECT_NEAR(hot.per_level[2].mean_insts_k, 12.0, 1e-12);
}

TEST(CorpusStats, DetectsNonMonotonicLadder) {
  Dataset ds;
  ds.add(makePoint("w", 0, 0.05, 1.0));  // L0 cheaper than L1: broken
  ds.add(makePoint("w", 1, 0.30, 1.0));
  ds.add(makePoint("w", 5, 0.00, 1.0));
  const CorpusStats stats = computeCorpusStats(ds);
  EXPECT_FALSE(stats.laddersMonotonic());
}

TEST(CorpusStats, RealCorpusLaddersAreMonotonic) {
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  Dataset ds = dg.generateForWorkload(workloadByName("sgemm"), 8);
  ds.append(dg.generateForWorkload(workloadByName("spmv"), 8));
  const CorpusStats stats = computeCorpusStats(ds);
  EXPECT_TRUE(stats.laddersMonotonic(0.05));
  std::ostringstream os;
  printCorpusStats(stats, os);
  EXPECT_NE(os.str().find("sgemm"), std::string::npos);
  EXPECT_NE(os.str().find("loss ladder"), std::string::npos);
}

TEST(CorpusStats, RejectsOutOfRangeLabels) {
  Dataset ds;
  ds.add(makePoint("w", 7, 0.1, 1.0));
  EXPECT_THROW(static_cast<void>(computeCorpusStats(ds, 6)), ContractError);
}

TEST(Generator, FeatureLevelScheduleCoversTable) {
  // With vary_feature_level, the recorded feature-window frequencies must
  // span multiple operating points (the fix for runtime distribution
  // coverage — see DESIGN.md).
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), tinyGen());
  Dataset all;
  for (int run = 0; run < 3; ++run)
    all.append(dg.generateForWorkload(workloadByName("spmv"),
                                      100 + static_cast<std::uint64_t>(run),
                                      run));
  std::set<double> freqs;
  for (const auto& p : all.points())
    freqs.insert(p.counters[static_cast<std::size_t>(CounterId::kFreqMhz)]);
  EXPECT_GE(freqs.size(), 4u);
  // The default point must be among them (it leads the schedule).
  EXPECT_TRUE(freqs.count(1165.0));
}

}  // namespace
}  // namespace ssm
