// Tests for §IV machinery: RFE feature selection, layer-wise architecture
// sweep, and two-stage pruning.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "compress/arch_search.hpp"
#include "compress/pruning.hpp"
#include "compress/rfe.hpp"
#include "datagen/generator.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

class CompressFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GpuConfig gpu;
    gpu.num_clusters = 4;
    GenConfig gen;
    gen.runs_per_workload = 1;
    gen.clusters_sampled = 4;
    gen.epochs_per_breakpoint = 6;
    const DataGenerator dg(gpu, VfTable::titanX(), gen);
    Dataset all;
    int phase = 0;
    for (const char* wl : {"sgemm", "spmv", "hotspot", "kmeans"}) {
      all.append(dg.generateForWorkload(workloadByName(wl), 21, phase++));
    }
    auto [tr, ho] = all.split(0.8, 6);
    train_ = new Dataset(std::move(tr));
    holdout_ = new Dataset(std::move(ho));
  }

  static void TearDownTestSuite() {
    delete train_;
    delete holdout_;
    train_ = nullptr;
    holdout_ = nullptr;
  }

  static SsmModelConfig quickCfg() {
    SsmModelConfig cfg;
    cfg.train.epochs = 120;
    return cfg;
  }

  static Dataset* train_;
  static Dataset* holdout_;
};

Dataset* CompressFixture::train_ = nullptr;
Dataset* CompressFixture::holdout_ = nullptr;

// ---- Pruning (network-level, no corpus needed) ----------------------------

TEST(Pruning, MagnitudePruneHitsSparsityTarget) {
  Mlp net({6, 12, 12, 6}, Head::kSoftmaxClassifier, Rng(1));
  magnitudePruneTo(net, 0.6);
  EXPECT_NEAR(net.sparsity(), 0.6, 0.02);
  // Idempotent at the same target.
  magnitudePruneTo(net, 0.6);
  EXPECT_NEAR(net.sparsity(), 0.6, 0.02);
  // No-op below the current sparsity.
  magnitudePruneTo(net, 0.3);
  EXPECT_NEAR(net.sparsity(), 0.6, 0.02);
}

TEST(Pruning, MagnitudePruneRemovesSmallestWeights) {
  Mlp net({4, 6, 2}, Head::kRegression, Rng(2));
  // Record magnitude order, prune 50%, verify all survivors dominate all
  // pruned weights.
  std::vector<double> before(net.layer(0).weights().flat().begin(),
                             net.layer(0).weights().flat().end());
  magnitudePruneTo(net, 0.5);
  double max_pruned = 0.0;
  double min_kept = 1e9;
  for (std::size_t l = 0; l < net.layerCount(); ++l) {
    const auto w = net.layer(l).weights().flat();
    const auto m = net.layer(l).mask().flat();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (m[i] == 0.0) continue;
      min_kept = std::min(min_kept, std::abs(w[i]));
    }
  }
  (void)before;
  // All masked weights were zeroed; the smallest survivor must be at least
  // as large as the pruning threshold (which all pruned weights were <=).
  EXPECT_GE(min_kept, max_pruned);
}

TEST(Pruning, NeuronPruneRemovesStarvedNeurons) {
  Mlp net({4, 6, 2}, Head::kRegression, Rng(3));
  // Manually starve hidden neuron 2: zero all its incoming weights.
  for (int i = 0; i < 4; ++i) net.layer(0).mask()(2, static_cast<std::size_t>(i)) = 0.0;
  const int removed = neuronPrune(net, 0.9);
  EXPECT_EQ(removed, 1);
  // Its outgoing column in layer 1 must be masked too.
  for (int o = 0; o < 2; ++o)
    EXPECT_DOUBLE_EQ(net.layer(1).mask()(static_cast<std::size_t>(o), 2), 0.0);
}

TEST(Pruning, NeuronPruneThresholdRespected) {
  Mlp net({4, 6, 2}, Head::kRegression, Rng(4));
  // 2 of 4 incoming weights zeroed: 50% < 90% threshold -> kept.
  net.layer(0).mask()(1, 0) = 0.0;
  net.layer(0).mask()(1, 1) = 0.0;
  EXPECT_EQ(neuronPrune(net, 0.9), 0);
  // At a 0.5 threshold it is removed.
  EXPECT_EQ(neuronPrune(net, 0.5), 1);
}

TEST(Pruning, PruneNetworkReportsFlopsDrop) {
  Mlp net({6, 12, 12, 6}, Head::kSoftmaxClassifier, Rng(5));
  const PruneParams params{.x1 = 0.6, .x2 = 0.9};
  const PruneOutcome out = pruneNetwork(net, params);
  EXPECT_GT(out.flops_before, out.flops_after);
  EXPECT_NEAR(out.weight_sparsity, 0.6, 0.1);
  EXPECT_EQ(net.flops(), out.flops_after);
}

TEST(Pruning, RejectsBadParams) {
  Mlp net({2, 4, 2}, Head::kRegression, Rng(6));
  EXPECT_THROW(magnitudePruneTo(net, 1.5), ContractError);
  EXPECT_THROW(neuronPrune(net, -0.1), ContractError);
}

// ---- Arch search ----------------------------------------------------------

TEST(ArchSearch, DefaultSweepSpansPaperEndpoints) {
  const auto sweep = defaultLayerwiseSweep();
  ASSERT_GE(sweep.size(), 8u);
  // First candidate is the §III.D original; the paper's compressed pick
  // must be present.
  EXPECT_EQ(sweep.front().decision_hidden,
            (std::vector<int>{20, 20, 20, 20, 20}));
  const bool has_paper_pick =
      std::any_of(sweep.begin(), sweep.end(), [](const ArchCandidate& c) {
        return c.decision_hidden == std::vector<int>{12, 12} &&
               c.calibrator_hidden == std::vector<int>{12};
      });
  EXPECT_TRUE(has_paper_pick);
}

TEST(ArchSearch, PickCompressedArchPrefersFewestFlopsWithinBudget) {
  std::vector<ArchPoint> points;
  points.push_back({{{20}, {20}}, 5000, 0.70, 3.0});
  points.push_back({{{12}, {12}}, 900, 0.69, 4.0});
  points.push_back({{{4}, {4}}, 300, 0.50, 9.0});  // past the knee
  const ArchPoint& pick = pickCompressedArch(points, 0.03);
  EXPECT_EQ(pick.flops, 900);
  EXPECT_THROW(static_cast<void>(pickCompressedArch({}, 0.03)),
               ContractError);
}

TEST_F(CompressFixture, LayerwiseSweepAccuracyDegradesGracefully) {
  const std::vector<ArchCandidate> candidates = {
      {{20, 20, 20}, {20, 20}},
      {{12, 12}, {12}},
      {{2}, {2}},
  };
  const auto points =
      layerwiseSweep(*train_, *holdout_, candidates, quickCfg());
  ASSERT_EQ(points.size(), 3u);
  // FLOPs strictly decreasing across this candidate list.
  EXPECT_GT(points[0].flops, points[1].flops);
  EXPECT_GT(points[1].flops, points[2].flops);
  // The tiny 2-neuron net must be clearly worse than the big one (the
  // "sharp drop below a threshold" behaviour of Fig. 3).
  EXPECT_GT(points[0].accuracy, points[2].accuracy);
}

// ---- RFE -------------------------------------------------------------------

TEST_F(CompressFixture, RfeSelectsTargetCountAndKeepsProtected) {
  RfeConfig cfg;
  cfg.target_features = 5;
  cfg.retrain_checkpoints = {12};
  cfg.train.epochs = 80;
  cfg.model.train.epochs = 80;
  const RfeResult res = runRfe(*train_, *holdout_, cfg);
  EXPECT_EQ(res.selected.size(), 5u);
  // PPC is a protected direct feature (§III.B).
  EXPECT_NE(std::find(res.selected.begin(), res.selected.end(),
                      CounterId::kPowerClusterW),
            res.selected.end());
  EXPECT_GT(res.full_accuracy, 0.2);
  EXPECT_GT(res.selected_accuracy, 0.2);
  EXPECT_FALSE(res.importance.empty());
}

TEST_F(CompressFixture, EvaluateFeatureSetMatchesTable1Features) {
  const std::vector<CounterId> table1{kTable1Features.begin(),
                                      kTable1Features.end()};
  const SsmTrainSummary s =
      evaluateFeatureSet(*train_, *holdout_, table1, quickCfg());
  EXPECT_GT(s.decision_accuracy, 0.3);
  EXPECT_LT(s.calibrator_mape, 25.0);
}

TEST(Rfe, RejectsBadConfig) {
  RfeConfig cfg;
  cfg.target_features = 0;
  const Dataset empty;
  EXPECT_THROW(static_cast<void>(runRfe(empty, empty, cfg)), ContractError);
}

// ---- Prune + finetune on the real model -----------------------------------

TEST_F(CompressFixture, PruneAndFinetuneKeepsMetricsUsable) {
  SsmModelConfig cfg;
  const auto arch = SsmModelConfig::compressedArch();
  cfg.decision_hidden = arch.decision_hidden;
  cfg.calibrator_hidden = arch.calibrator_hidden;
  cfg.train.epochs = 300;
  SsmModel model(cfg);
  const auto before = model.train(*train_, *holdout_);
  const auto report = pruneAndFinetune(model, *train_, *holdout_,
                                       PruneParams{}, /*finetune=*/400);
  // ~60% of weights pruned.
  EXPECT_GT(report.decision.weight_sparsity, 0.5);
  EXPECT_GT(report.calibrator.weight_sparsity, 0.5);
  // FLOPs shrink accordingly.
  EXPECT_LT(report.after_finetune.flops, before.flops / 2);
  // Metrics degrade but stay usable (paper: -2.4% accuracy).
  EXPECT_GT(report.after_finetune.decision_accuracy,
            before.decision_accuracy - 0.25);
}

TEST(PruneAndFinetune, RequiresTrainedModel) {
  SsmModel model;
  const Dataset empty;
  EXPECT_THROW(static_cast<void>(pruneAndFinetune(model, empty, empty,
                                                  PruneParams{}, 10)),
               ContractError);
}

}  // namespace
}  // namespace ssm
