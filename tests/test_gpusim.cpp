// Tests for the GPU simulator: determinism, frequency sensitivity,
// snapshot/replay, counter plausibility and the governor runner.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gpusim/gpu.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "power/vf_table.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

GpuConfig smallConfig() {
  GpuConfig cfg;
  cfg.num_clusters = 4;  // keep unit tests fast
  return cfg;
}

Gpu makeGpu(const std::string& workload, std::uint64_t seed = 1,
            GpuConfig cfg = smallConfig()) {
  return Gpu(cfg, VfTable::titanX(), workloadByName(workload), seed,
             ChipPowerModel(cfg.num_clusters));
}

TEST(Gpu, ConstructionChecksClusterCount) {
  GpuConfig cfg = smallConfig();
  EXPECT_THROW(Gpu(cfg, VfTable::titanX(), workloadByName("sgemm"), 1,
                   ChipPowerModel(8)),
               ContractError);
  cfg.num_clusters = 0;
  EXPECT_THROW(Gpu(cfg, VfTable::titanX(), workloadByName("sgemm"), 1,
                   ChipPowerModel(1)),
               ContractError);
}

TEST(Gpu, EpochAdvancesTimeAndProducesObservations) {
  Gpu gpu = makeGpu("sgemm");
  const auto report = gpu.runEpochUniform(gpu.vfTable().defaultLevel());
  EXPECT_EQ(report.clusters.size(), 4u);
  EXPECT_EQ(report.epoch_len_ns, 10'000);
  EXPECT_EQ(gpu.nowNs(), 10'000);
  for (const auto& obs : report.clusters) {
    EXPECT_GT(obs.instructions, 0);
    EXPECT_GT(obs.power_w, 0.0);
    EXPECT_EQ(obs.level, 5);
    EXPECT_GT(obs.counters.get(CounterId::kIpc), 0.0);
  }
  EXPECT_GT(report.chip_power_w, 0.0);
}

TEST(Gpu, DeterministicAcrossIdenticalRuns) {
  Gpu a = makeGpu("hotspot", 7);
  Gpu b = makeGpu("hotspot", 7);
  for (int e = 0; e < 5; ++e) {
    const auto ra = a.runEpochUniform(3);
    const auto rb = b.runEpochUniform(3);
    for (std::size_t i = 0; i < ra.clusters.size(); ++i) {
      EXPECT_EQ(ra.clusters[i].instructions, rb.clusters[i].instructions);
      EXPECT_DOUBLE_EQ(ra.clusters[i].power_w, rb.clusters[i].power_w);
    }
  }
}

TEST(Gpu, DifferentSeedsProduceDifferentExecutions) {
  Gpu a = makeGpu("hotspot", 7);
  Gpu b = makeGpu("hotspot", 8);
  const auto ra = a.runEpochUniform(5);
  const auto rb = b.runEpochUniform(5);
  // Total issue counts can saturate identically at full throughput, but the
  // sampled instruction mixes must differ between seeds.
  bool any_diff = false;
  for (std::size_t i = 0; i < ra.clusters.size(); ++i) {
    any_diff |= ra.clusters[i].counters.get(CounterId::kInstFalu) !=
                rb.clusters[i].counters.get(CounterId::kInstFalu);
    any_diff |= ra.clusters[i].counters.get(CounterId::kStallMemLoadCycles) !=
                rb.clusters[i].counters.get(CounterId::kStallMemLoadCycles);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Gpu, SnapshotReplayIsBitIdentical) {
  Gpu gpu = makeGpu("kmeans", 3);
  gpu.runEpochUniform(5);
  gpu.runEpochUniform(5);

  Gpu snap = gpu;  // snapshot mid-execution
  const auto r1 = gpu.runEpochUniform(2);
  const auto r2 = snap.runEpochUniform(2);
  for (std::size_t i = 0; i < r1.clusters.size(); ++i) {
    EXPECT_EQ(r1.clusters[i].instructions, r2.clusters[i].instructions);
    for (int c = 0; c < kNumCounters; ++c) {
      const auto id = static_cast<CounterId>(c);
      EXPECT_DOUBLE_EQ(r1.clusters[i].counters.get(id),
                       r2.clusters[i].counters.get(id))
          << counterName(id);
    }
  }
}

TEST(Gpu, LowerFrequencyIssuesFewerInstructionsPerEpoch) {
  Gpu hi = makeGpu("sgemm", 5);
  Gpu lo = makeGpu("sgemm", 5);
  std::int64_t hi_insts = 0;
  std::int64_t lo_insts = 0;
  for (int e = 0; e < 5; ++e) {
    hi.runEpochUniform(5);
    lo.runEpochUniform(0);
    hi_insts += hi.lastEpochInstructions();
    lo_insts += lo.lastEpochInstructions();
  }
  EXPECT_GT(hi_insts, lo_insts);
  // Compute-bound work scales nearly linearly with frequency: the ratio
  // should be close to 683/1165 ~ 0.586.
  const double ratio = static_cast<double>(lo_insts) / hi_insts;
  EXPECT_GT(ratio, 0.50);
  EXPECT_LT(ratio, 0.75);
}

TEST(Gpu, MemoryBoundWorkloadIsFrequencyInsensitive) {
  // Compare per-epoch instruction throughput ratios at min/max frequency
  // for a memory-bound vs a compute-bound kernel.
  const auto ratio_for = [](const std::string& name) {
    Gpu hi = makeGpu(name, 11);
    Gpu lo = makeGpu(name, 11);
    std::int64_t hi_i = 0;
    std::int64_t lo_i = 0;
    for (int e = 0; e < 8; ++e) {
      hi.runEpochUniform(5);
      lo.runEpochUniform(0);
      hi_i += hi.lastEpochInstructions();
      lo_i += lo.lastEpochInstructions();
    }
    return static_cast<double>(lo_i) / static_cast<double>(hi_i);
  };
  const double spmv_ratio = ratio_for("spmv");    // memory bound
  const double sgemm_ratio = ratio_for("sgemm");  // compute bound
  EXPECT_GT(spmv_ratio, sgemm_ratio + 0.05);
}

TEST(Gpu, RunsToCompletionAndReportsFinishTime) {
  Gpu gpu = makeGpu("bfs", 2);
  gpu.runUntil(5 * kNsPerMs, gpu.vfTable().defaultLevel());
  ASSERT_TRUE(gpu.allDone());
  EXPECT_GT(gpu.finishTimeNs(), 0);
  EXPECT_LE(gpu.finishTimeNs(), gpu.nowNs());
  EXPECT_GT(gpu.totalEnergyJ(), 0.0);
  EXPECT_GT(gpu.edp(), 0.0);
  EXPECT_GT(gpu.totalInstructions(), 0);
}

TEST(Gpu, FinishTimeIsMinusOneWhileRunning) {
  Gpu gpu = makeGpu("sgemm", 2);
  gpu.runEpochUniform(5);
  EXPECT_FALSE(gpu.allDone());
  EXPECT_EQ(gpu.finishTimeNs(), -1);
}

TEST(Gpu, LowFrequencyStretchesExecutionTime) {
  Gpu hi = makeGpu("sgemm", 4);
  Gpu lo = makeGpu("sgemm", 4);
  hi.runUntil(10 * kNsPerMs, 5);
  lo.runUntil(10 * kNsPerMs, 0);
  ASSERT_TRUE(hi.allDone());
  ASSERT_TRUE(lo.allDone());
  EXPECT_GT(lo.finishTimeNs(), hi.finishTimeNs());
  // Compute-bound: slowdown should approach the frequency ratio 1.71.
  const double slowdown = static_cast<double>(lo.finishTimeNs()) /
                          static_cast<double>(hi.finishTimeNs());
  EXPECT_GT(slowdown, 1.3);
  EXPECT_LT(slowdown, 1.9);
}

TEST(Gpu, LowFrequencyReducesPower) {
  Gpu hi = makeGpu("sgemm", 4);
  Gpu lo = makeGpu("sgemm", 4);
  const auto rh = hi.runEpochUniform(5);
  const auto rl = lo.runEpochUniform(0);
  EXPECT_LT(rl.chip_power_w, rh.chip_power_w);
}

TEST(Gpu, ProgramDurationInPaperRange) {
  // §V.A limits program execution to ~0.0003 s so short tasks benefit from
  // microsecond-scale DVFS. Our profiles should retire within 60–1200 µs
  // at the default operating point (full 24-cluster configuration).
  for (const auto& k : {"sgemm", "spmv", "hotspot", "bfs"}) {
    GpuConfig cfg;  // full 24 clusters
    Gpu gpu(cfg, VfTable::titanX(), workloadByName(k), 1,
            ChipPowerModel(cfg.num_clusters));
    gpu.runUntil(5 * kNsPerMs, gpu.vfTable().defaultLevel());
    ASSERT_TRUE(gpu.allDone()) << k;
    EXPECT_GT(gpu.finishTimeNs(), 60 * kNsPerUs) << k;
    EXPECT_LT(gpu.finishTimeNs(), 1200 * kNsPerUs) << k;
  }
}

TEST(Gpu, CountersAreInternallyConsistent) {
  Gpu gpu = makeGpu("stencil", 6);
  const auto report = gpu.runEpochUniform(5);
  for (const auto& obs : report.clusters) {
    const auto& c = obs.counters;
    const double total = c.get(CounterId::kInstTotal);
    const double by_class =
        c.get(CounterId::kInstIalu) + c.get(CounterId::kInstFalu) +
        c.get(CounterId::kInstSfu) + c.get(CounterId::kInstLoad) +
        c.get(CounterId::kInstStore) + c.get(CounterId::kInstShared) +
        c.get(CounterId::kInstBranch);
    EXPECT_DOUBLE_EQ(total, by_class);
    EXPECT_LE(c.get(CounterId::kL1ReadMiss), c.get(CounterId::kL1ReadAccess));
    EXPECT_LE(c.get(CounterId::kL2Miss), c.get(CounterId::kL2Access));
    EXPECT_DOUBLE_EQ(c.get(CounterId::kL2Access),
                     c.get(CounterId::kL1ReadMiss));
    EXPECT_EQ(static_cast<std::int64_t>(total), obs.instructions);
    EXPECT_GE(c.get(CounterId::kStallMemTotalCycles),
              c.get(CounterId::kStallMemLoadCycles));
    EXPECT_DOUBLE_EQ(c.get(CounterId::kFreqMhz), 1165.0);
  }
}

TEST(Gpu, TransitionStallCostsThroughput) {
  // Switching levels every epoch pays the IVR transition penalty; holding
  // a level does not. Same total work, so the switcher retires later.
  GpuConfig cfg = smallConfig();
  cfg.dvfs_transition_ns = 2000;  // exaggerate for test sensitivity
  Gpu steady(cfg, VfTable::titanX(), workloadByName("sgemm"), 9,
             ChipPowerModel(cfg.num_clusters));
  Gpu toggling(cfg, VfTable::titanX(), workloadByName("sgemm"), 9,
               ChipPowerModel(cfg.num_clusters));
  bool flip = false;
  while (!steady.allDone()) steady.runEpochUniform(5);
  while (!toggling.allDone()) {
    toggling.runEpochUniform(flip ? 4 : 5);
    flip = !flip;
  }
  EXPECT_GT(toggling.finishTimeNs(), steady.finishTimeNs());
}

TEST(Runner, BaselineRunsAtDefaultLevelOnly) {
  const RunResult r = runBaseline(makeGpu("hotspot", 1));
  EXPECT_EQ(r.mechanism, "baseline");
  EXPECT_GT(r.exec_time_ns, 0);
  EXPECT_GT(r.energy_j, 0.0);
  ASSERT_EQ(r.level_histogram.size(), 6u);
  EXPECT_NEAR(r.level_histogram[5], 1.0, 1e-12);
  for (int l = 0; l < 5; ++l) EXPECT_DOUBLE_EQ(r.level_histogram[l], 0.0);
}

class FixedLevelFactory final : public GovernorFactory {
 public:
  explicit FixedLevelFactory(VfLevel level) : level_(level) {}
  std::unique_ptr<DvfsGovernor> create(int) const override {
    return std::make_unique<StaticGovernor>(level_);
  }

 private:
  VfLevel level_;
};

TEST(Runner, GovernorLevelsAreApplied) {
  const FixedLevelFactory factory(0);
  const RunResult r =
      runWithGovernor(makeGpu("hotspot", 1), factory, "fixed-0");
  ASSERT_EQ(r.level_histogram.size(), 6u);
  // The first epoch runs at the default level before the governor acts.
  EXPECT_GT(r.level_histogram[0], 0.8);
  EXPECT_GT(r.level_histogram[5], 0.0);
}

TEST(Runner, MinLevelSavesEnergyOnMemoryBoundWorkload) {
  // Needs the full 24-cluster configuration: with few clusters the fixed
  // uncore power dominates and stretching execution wastes energy. On a
  // memory-bound kernel at scale, dropping V/f is a clear energy win.
  GpuConfig cfg;  // full chip
  Gpu mk(cfg, VfTable::titanX(), workloadByName("spmv"), 2,
         ChipPowerModel(cfg.num_clusters));
  const RunResult base = runBaseline(mk);
  const FixedLevelFactory factory(0);
  const RunResult slow = runWithGovernor(mk, factory, "fixed-0");
  EXPECT_LT(slow.energy_j, base.energy_j);
  EXPECT_GT(slow.exec_time_ns, base.exec_time_ns);
}

TEST(Trace, RecordsEpochsAndHistogram) {
  Gpu gpu = makeGpu("hotspot", 1);
  EpochTraceRecorder trace;
  for (int e = 0; e < 4; ++e) trace.record(gpu.runEpochUniform(e % 2 ? 2 : 5));
  EXPECT_EQ(trace.epochCount(), 4);
  EXPECT_EQ(trace.clusterCount(), 4);
  EXPECT_EQ(trace.levelAt(0, 0), 5);
  EXPECT_EQ(trace.levelAt(1, 0), 2);
  EXPECT_GT(trace.chipPowerAt(0), trace.chipPowerAt(1));  // 1165 vs 878 MHz
  const auto hist = trace.levelHistogram(6);
  EXPECT_DOUBLE_EQ(hist[5], 0.5);
  EXPECT_DOUBLE_EQ(hist[2], 0.5);
  // Every cluster switches at epochs 1, 2 and 3.
  EXPECT_EQ(trace.totalTransitions(), 3 * 4);
  EXPECT_GT(trace.meanChipPowerW(), 0.0);
}

TEST(Trace, BoundsAreChecked) {
  EpochTraceRecorder trace;
  EXPECT_THROW(static_cast<void>(trace.levelAt(0, 0)), ContractError);
  Gpu gpu = makeGpu("hotspot", 1);
  trace.record(gpu.runEpochUniform(5));
  EXPECT_THROW(static_cast<void>(trace.levelAt(1, 0)), ContractError);
  EXPECT_THROW(static_cast<void>(trace.levelAt(0, 9)), ContractError);
}

TEST(Trace, CsvAndTimelineRender) {
  Gpu gpu = makeGpu("hotspot", 1);
  EpochTraceRecorder trace;
  trace.record(gpu.runEpochUniform(5));
  trace.record(gpu.runEpochUniform(0));
  const std::string path = "ssm_test_trace.csv";
  trace.saveCsv(path);
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header,
            "epoch,cluster,level,instructions,cluster_power_w,chip_power_w");
  int lines = 0;
  for (std::string l; std::getline(is, l);) ++lines;
  EXPECT_EQ(lines, 2 * 4);
  is.close();
  std::filesystem::remove(path);

  std::ostringstream os;
  trace.renderTimeline(os);
  EXPECT_NE(os.str().find("c00 50"), std::string::npos);
}

TEST(Trace, RunnerStreamsIntoRecorder) {
  EpochTraceRecorder trace;
  const FixedLevelFactory factory(1);
  const RunResult r = runWithGovernor(makeGpu("hotspot", 1), factory,
                                      "fixed-1", 5 * kNsPerMs, &trace);
  EXPECT_EQ(trace.epochCount(), r.epochs);
  const auto hist = trace.levelHistogram(6);
  for (int l = 0; l < 6; ++l)
    EXPECT_NEAR(hist[static_cast<std::size_t>(l)],
                r.level_histogram[static_cast<std::size_t>(l)], 1e-12);
}

TEST(Runner, SequenceKeepsGovernorsAcrossPrograms) {
  // A counting factory proves governors are created once for the whole
  // sequence, and results come back one per program in order.
  class CountingFactory final : public GovernorFactory {
   public:
    std::unique_ptr<DvfsGovernor> create(int) const override {
      ++creations;
      return std::make_unique<StaticGovernor>(3);
    }
    mutable int creations = 0;
  };
  const CountingFactory factory;
  SequenceConfig cfg;
  cfg.gpu.num_clusters = 2;
  const std::vector<KernelProfile> programs = {workloadByName("spmv"),
                                               workloadByName("bfs"),
                                               workloadByName("spmv")};
  const auto results = runSequence(programs, factory, "fixed-3", cfg);
  EXPECT_EQ(factory.creations, 2);  // one per cluster, NOT per program
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].workload, "spmv");
  EXPECT_EQ(results[1].workload, "bfs");
  for (const auto& r : results) {
    EXPECT_GT(r.exec_time_ns, 0);
    EXPECT_GT(r.energy_j, 0.0);
    EXPECT_EQ(r.mechanism, "fixed-3");
  }
  EXPECT_THROW(static_cast<void>(runSequence({}, factory, "x", cfg)),
               ContractError);
}

TEST(Runner, ChipGovernorAppliesOneLevelEverywhere) {
  GpuConfig cfg = smallConfig();
  Gpu g(cfg, VfTable::titanX(), workloadByName("hotspot"), 3,
        ChipPowerModel(cfg.num_clusters));
  const FixedLevelFactory factory(2);
  EpochTraceRecorder trace;
  const RunResult r =
      runWithChipGovernor(g, factory, "chip-fixed-2", 5 * kNsPerMs, &trace);
  EXPECT_GT(r.epochs, 1);
  // From epoch 1 on, every cluster holds level 2 simultaneously.
  for (int e = 1; e < trace.epochCount(); ++e)
    for (int c = 0; c < trace.clusterCount(); ++c)
      EXPECT_EQ(trace.levelAt(e, c), 2) << "epoch " << e;
}

TEST(Runner, ThrowsIfDeadlineTooShort) {
  EXPECT_THROW(runBaseline(makeGpu("sgemm", 2), /*max_time_ns=*/20'000),
               ContractError);
}

}  // namespace
}  // namespace ssm
