// Determinism tests for the fleet-execution subsystem (src/sched/fleet) and
// the parallel datagen path: results and serialized output must be
// byte-identical for any --jobs value, and job expansion must follow the
// documented workload-major order with coordinate-keyed seeds.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/pcstall.hpp"
#include "common/check.hpp"
#include "compress/pruning.hpp"
#include "datagen/generator.hpp"
#include "engine/trace_io.hpp"
#include "gpusim/trace.hpp"
#include "sched/fleet.hpp"
#include "sched/thread_pool.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

/// A cheap sweep: two real workloads, three mechanisms, short horizon.
fleet::SweepSpec smallSpec() {
  fleet::SweepSpec spec;
  spec.workloads = {workloadByName("spmv"), workloadByName("bfs")};
  spec.mechanisms = {"baseline", "static-2", "ondemand"};
  spec.presets = {0.10};
  spec.seeds = {777, 1234};
  spec.max_time_ns = kNsPerMs;  // 100 epochs per job
  return spec;
}

TEST(FleetExpand, WorkloadMajorOrderAndCoordinateKeyedSeeds) {
  const auto spec = smallSpec();
  const auto jobs = fleet::expandJobs(spec);
  ASSERT_EQ(jobs.size(), 2u * 3u * 1u * 2u);
  // Expansion is workload-major, then mechanism, preset, seed.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(jobs[j].index, j);
    const std::size_t expect_w = j / 6;  // 3 mech × 1 preset × 2 seeds
    EXPECT_EQ(jobs[j].workload, expect_w);
  }
  // sim_seed depends only on (workload, sweep seed): every mechanism and
  // preset sees the identical simulation, so baselines line up.
  for (const auto& a : jobs) {
    for (const auto& b : jobs) {
      if (a.workload == b.workload && a.seed == b.seed) {
        EXPECT_EQ(a.sim_seed, b.sim_seed);
      }
    }
  }
  // ...and distinct coordinates get distinct streams.
  EXPECT_NE(jobs[0].sim_seed, jobs[6].sim_seed);   // other workload
  EXPECT_NE(jobs[0].sim_seed, jobs[1].sim_seed);   // other sweep seed
}

TEST(FleetExpand, EmptyAxisIsAContractViolation) {
  auto spec = smallSpec();
  spec.mechanisms.clear();
  EXPECT_THROW(static_cast<void>(fleet::expandJobs(spec)), ContractError);
}

TEST(FleetFactory, MechanismVocabulary) {
  const VfTable vf = VfTable::titanX();
  EXPECT_EQ(fleet::makeGovernorFactory("baseline", vf, 0.1, nullptr), nullptr);
  EXPECT_NE(fleet::makeGovernorFactory("static-2", vf, 0.1, nullptr), nullptr);
  EXPECT_NE(fleet::makeGovernorFactory("pcstall", vf, 0.1, nullptr), nullptr);
  EXPECT_NE(fleet::makeGovernorFactory("flemma", vf, 0.1, nullptr), nullptr);
  EXPECT_NE(fleet::makeGovernorFactory("ondemand", vf, 0.1, nullptr), nullptr);
  EXPECT_THROW(static_cast<void>(
                   fleet::makeGovernorFactory("warp-drive", vf, 0.1, nullptr)),
               DataError);
  // The ML mechanisms need a model.
  EXPECT_THROW(static_cast<void>(
                   fleet::makeGovernorFactory("ssmdvfs", vf, 0.1, nullptr)),
               DataError);
}

TEST(FleetRunner, JsonlByteIdenticalAcrossJobCounts) {
  const auto spec = smallSpec();
  std::string serial, parallel;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 12u);
    serial = os.str();
  }
  {
    ThreadPool pool(8);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 12u);
    parallel = os.str();
  }
  EXPECT_EQ(serial, parallel);
  // Sanity: the stream really is one JSON object per job line.
  EXPECT_NE(serial.find("\"mechanism\":\"ondemand\""), std::string::npos);
}

TEST(FleetRunner, PackedSweepByteIdenticalAcrossJobCounts) {
  // The ML mechanisms decide through the compiled PackedMlp engines
  // (src/nn/packed_mlp.hpp). Train a quick compressed model, prune it so
  // the Decision-maker lowers to CSR, and sweep ssmdvfs + ssmdvfs-nocal
  // with 1 and 8 workers: the JSONL streams must be byte-identical,
  // proving every per-cluster packed decision is reproducible regardless
  // of scheduling.
  GpuConfig gpu;
  gpu.num_clusters = 4;
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 4;
  gen.epochs_per_breakpoint = 6;
  const DataGenerator dg(gpu, VfTable::titanX(), gen);
  Dataset corpus = dg.generateForWorkload(workloadByName("sgemm"), 31, 0);
  corpus.append(dg.generateForWorkload(workloadByName("spmv"), 32, 1));

  SsmModelConfig cfg = SsmModelConfig::compressedArch();
  cfg.train.epochs = 120;
  const auto model = std::make_shared<SsmModel>(cfg);
  static_cast<void>(model->train(corpus, corpus));
  magnitudePruneTo(model->decisionNet(), 0.6);
  model->recompilePacked();
  ASSERT_TRUE(model->packedDecision().compiled());
  ASSERT_GT(model->packedDecision().sparseLayerCount(), 0u);

  fleet::SweepSpec spec;
  spec.workloads = {workloadByName("spmv"), workloadByName("bfs")};
  spec.mechanisms = {"ssmdvfs", "ssmdvfs-nocal"};
  spec.presets = {0.10};
  spec.seeds = {777};
  spec.max_time_ns = kNsPerMs;
  spec.gpu = gpu;
  spec.model = model;

  std::string serial, parallel;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 4u);
    serial = os.str();
  }
  {
    ThreadPool pool(8);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 4u);
    parallel = os.str();
  }
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"mechanism\":\"ssmdvfs\""), std::string::npos);
}

TEST(FleetRunner, RunMatchesJsonlAndReportsProgress) {
  const auto spec = smallSpec();
  ThreadPool pool(4);
  const fleet::FleetRunner runner(spec, pool);
  std::size_t calls = 0, last_done = 0;
  const auto results = runner.run([&](std::size_t done, std::size_t total) {
    ++calls;
    EXPECT_EQ(total, 12u);
    EXPECT_GT(done, last_done);  // done is monotonic under the collector lock
    last_done = done;
  });
  ASSERT_EQ(results.size(), 12u);
  EXPECT_EQ(calls, 12u);
  for (std::size_t j = 0; j < results.size(); ++j)
    EXPECT_EQ(results[j].job.index, j);  // returned in job-index order
  // run() and runJsonl() serialize identically.
  std::ostringstream direct;
  for (const auto& r : results) direct << fleet::toJsonLine(spec, r) << '\n';
  std::ostringstream streamed;
  static_cast<void>(runner.runJsonl(streamed));
  EXPECT_EQ(direct.str(), streamed.str());
}

TEST(FleetRunner, UnknownMechanismFailsFastAtConstruction) {
  auto spec = smallSpec();
  spec.mechanisms = {"baseline", "warp-drive"};
  ThreadPool pool(2);
  EXPECT_THROW(fleet::FleetRunner(spec, pool), DataError);
}

TEST(FleetCsv, HeaderAndRowCount) {
  const auto spec = smallSpec();
  ThreadPool pool(4);
  const auto results = fleet::FleetRunner(spec, pool).run();
  std::ostringstream os;
  fleet::writeCsv(spec, results, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "workload,mechanism,preset,seed,exec_time_us,energy_mj,edp_uj_s,"
            "epochs,edp_ratio,latency_ratio");
  std::size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1u + results.size());
}

/// Records one workload under pcstall, full capture, for the replay sweeps.
std::shared_ptr<const engine::EpochTrace> recordReplayTrace(
    const std::string& workload) {
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  const PcstallFactory factory(vf, PcstallConfig{});
  EpochTraceRecorder rec;
  rec.enableReplayCapture();
  Gpu gpu(cfg, vf, workloadByName(workload), 777,
          ChipPowerModel(cfg.num_clusters));
  const RunResult recorded =
      runWithGovernor(std::move(gpu), factory, "pcstall", kNsPerMs, &rec);
  return std::make_shared<const engine::EpochTrace>(engine::traceFromRecorder(
      rec, workload, "pcstall", 777, vf, recorded));
}

TEST(FleetReplay, JsonlByteIdenticalAcrossJobCounts) {
  fleet::SweepSpec spec;
  spec.replay = {recordReplayTrace("spmv"), recordReplayTrace("bfs")};
  spec.mechanisms = {"baseline", "pcstall", "ondemand"};
  spec.seeds = {777};

  std::string serial, parallel;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 6u);
    serial = os.str();
  }
  {
    ThreadPool pool(8);
    std::ostringstream os;
    const std::size_t n = fleet::FleetRunner(spec, pool).runJsonl(os);
    EXPECT_EQ(n, 6u);
    parallel = os.str();
  }
  EXPECT_EQ(serial, parallel);
  // Replay rows carry the provenance and agreement columns; the same-policy
  // cell agrees with its own recording on every decision.
  EXPECT_NE(serial.find("\"replay_of\":\"pcstall\""), std::string::npos);
  EXPECT_NE(serial.find("\"agreement\":1"), std::string::npos);
}

TEST(FleetReplay, WorkloadAndFaultAxesAreRejected) {
  fleet::SweepSpec spec;
  spec.replay = {recordReplayTrace("spmv")};
  spec.mechanisms = {"ondemand"};
  // Both stream sources at once is a contract violation...
  spec.workloads = {workloadByName("bfs")};
  EXPECT_THROW(static_cast<void>(fleet::expandJobs(spec)), ContractError);
  spec.workloads.clear();
  // ...and fault injection is closed-loop, so replay refuses it.
  spec.faults = {faults::FaultSpec::parse("dropout:p=0.5,mode=zero")};
  EXPECT_THROW(static_cast<void>(fleet::expandJobs(spec)), ContractError);
}

/// The §III.A corpus must not depend on how many lanes generated it.
TEST(DatagenParallel, CorpusMatchesSerialExactly) {
  GenConfig cfg;
  cfg.runs_per_workload = 2;
  cfg.max_program_ns = kNsPerMs;  // keep the protocol short
  const DataGenerator gen(GpuConfig{}, VfTable::titanX(), cfg);
  const std::vector<KernelProfile> workloads = {workloadByName("spmv"),
                                                workloadByName("bfs")};

  const Dataset serial = gen.generate(workloads, nullptr);
  ThreadPool pool(8);
  const Dataset parallel = gen.generate(workloads, &pool);

  ASSERT_GT(serial.size(), 0u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const DataPoint& a = serial.points()[i];
    const DataPoint& b = parallel.points()[i];
    EXPECT_EQ(a.workload, b.workload) << i;
    EXPECT_EQ(a.level, b.level) << i;
    EXPECT_EQ(a.perf_loss, b.perf_loss) << i;    // bitwise, not approximate
    EXPECT_EQ(a.insts_k, b.insts_k) << i;
    EXPECT_EQ(a.counters, b.counters) << i;
  }
}

/// Single-workload path: per-breakpoint replay parallelism is also exact.
TEST(DatagenParallel, SingleWorkloadReplaysMatchSerial) {
  GenConfig cfg;
  cfg.max_program_ns = kNsPerMs;
  const DataGenerator gen(GpuConfig{}, VfTable::titanX(), cfg);
  const KernelProfile& kernel = workloadByName("hotspot");

  const Dataset serial = gen.generateForWorkload(kernel, 42, 0, nullptr);
  ThreadPool pool(8);
  const Dataset parallel = gen.generateForWorkload(kernel, 42, 0, &pool);

  ASSERT_GT(serial.size(), 0u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const DataPoint& a = serial.points()[i];
    const DataPoint& b = parallel.points()[i];
    EXPECT_EQ(a.level, b.level) << i;
    EXPECT_EQ(a.perf_loss, b.perf_loss) << i;
    EXPECT_EQ(a.insts_k, b.insts_k) << i;
    EXPECT_EQ(a.counters, b.counters) << i;
  }
}

}  // namespace
}  // namespace ssm
