// Tests for the runtime-dispatched SIMD inference kernels and the packed
// int8 engine: bitwise SIMD-vs-scalar equivalence property tests across
// layer shapes, densities and ragged tails (kernel level and PackedMlp
// level), dispatcher consistency, PackedInt8Mlp bit-exactness against
// QuantizedMlp::forwardInt8, the ASIC cycle model, and zero-allocation
// guarantees for the new hot paths (counting global allocator).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/mlp.hpp"
#include "nn/packed_int8.hpp"
#include "nn/packed_mlp.hpp"
#include "nn/quantize.hpp"
#include "nn/simd.hpp"

// ---------------------------------------------------------------------------
// Counting allocator (same pattern as tests/test_packed.cpp): operator-new
// bumps the counter while the gate is open; hot-path tests assert zero.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long>& allocCount() {
  static std::atomic<long> count{0};
  return count;
}
std::atomic<bool>& allocGate() {
  static std::atomic<bool> gate{false};
  return gate;
}

class AllocationGuard {
 public:
  AllocationGuard() : before_(allocCount().load()) {
    allocGate().store(true);
  }
  ~AllocationGuard() { allocGate().store(false); }
  [[nodiscard]] long count() const {
    return allocCount().load() - before_;
  }

 private:
  long before_;
};
}  // namespace

void* operator new(std::size_t size) {
  if (allocGate().load(std::memory_order_relaxed)) ++allocCount();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ssm {
namespace {

/// Restores runtime tier detection when a test overrides it.
struct TierOverrideGuard {
  ~TierOverrideGuard() { clearSimdTierOverrideForTest(); }
};

/// The host's real tier, independent of any active override.
SimdTier hostTier() {
  clearSimdTierOverrideForTest();
  return activeSimdTier();
}

void expectExactlyEqual(std::span<const double> ref,
                        std::span<const double> got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(ref[i], got[i]) << "component " << i;
}

// -- kernel-level layout builders (clean-room from the simd.hpp contract) ---

struct KernelInputs {
  int in_dim = 0;
  int out_dim = 0;
  std::vector<double> w;  ///< row-major out_dim x in_dim, zeros = pruned
  std::vector<double> bias_padded;
  std::vector<double> panel;           ///< blocked-interleaved dense
  std::vector<double> sell_vals;       ///< SELL-4 slot-major values
  std::vector<std::int32_t> sell_cols;
  std::vector<std::size_t> grpoff;
  std::vector<std::int64_t> nnz;
};

KernelInputs buildLayouts(Rng& rng, int in_dim, int out_dim,
                          double zero_fraction) {
  KernelInputs k;
  k.in_dim = in_dim;
  k.out_dim = out_dim;
  k.w.resize(static_cast<std::size_t>(in_dim) *
             static_cast<std::size_t>(out_dim));
  for (double& v : k.w)
    v = rng.nextBernoulli(zero_fraction) ? 0.0 : rng.nextGaussian(0.0, 1.5);
  const int ngroups = (out_dim + 3) / 4;
  for (int o = 0; o < 4 * ngroups; ++o)
    k.bias_padded.push_back(o < out_dim ? rng.nextGaussian(0.0, 0.5) : 0.0);
  const auto at = [&](int o, int i) {
    return k.w[static_cast<std::size_t>(o) * static_cast<std::size_t>(in_dim) +
               static_cast<std::size_t>(i)];
  };
  // Dense panels: per block, in_dim groups of 4 lane weights.
  for (int g = 0; g < ngroups; ++g)
    for (int i = 0; i < in_dim; ++i)
      for (int lane = 0; lane < 4; ++lane) {
        const int o = 4 * g + lane;
        k.panel.push_back(o < out_dim ? at(o, i) : 0.0);
      }
  // SELL-4 streams with per-row true nnz.
  for (int o = 0; o < 4 * ngroups; ++o) {
    std::int64_t count = 0;
    if (o < out_dim)
      for (int i = 0; i < in_dim; ++i) count += (at(o, i) != 0.0);
    k.nnz.push_back(count);
  }
  std::size_t rel = 0;
  k.grpoff.push_back(rel);
  for (int g = 0; g < ngroups; ++g) {
    std::int64_t width = 0;
    for (int lane = 0; lane < 4; ++lane)
      width = std::max(width, k.nnz[static_cast<std::size_t>(4 * g + lane)]);
    for (std::int64_t s = 0; s < width; ++s)
      for (int lane = 0; lane < 4; ++lane) {
        const int o = 4 * g + lane;
        double val = 0.0;
        std::int32_t col = 0;
        if (o < out_dim && s < k.nnz[static_cast<std::size_t>(o)]) {
          std::int64_t seen = -1;
          for (int i = 0; i < in_dim; ++i) {
            if (at(o, i) != 0.0 && ++seen == s) {
              val = at(o, i);
              col = i;
              break;
            }
          }
        }
        k.sell_vals.push_back(val);
        k.sell_cols.push_back(col);
      }
    rel += static_cast<std::size_t>(4 * width);
    k.grpoff.push_back(rel);
  }
  return k;
}

/// Naive reference for one layer + post-ops. `skip_zeros` mirrors the CSR
/// contract (only exact-zero stored weights are skipped, column order kept).
std::vector<double> naiveLayer(const KernelInputs& k,
                               std::span<const double> in,
                               const SimdPostOp& post, bool skip_zeros) {
  std::vector<double> out(static_cast<std::size_t>(k.out_dim));
  for (int o = 0; o < k.out_dim; ++o) {
    double acc = k.bias_padded[static_cast<std::size_t>(o)];
    for (int i = 0; i < k.in_dim; ++i) {
      const double w = k.w[static_cast<std::size_t>(o) *
                               static_cast<std::size_t>(k.in_dim) +
                           static_cast<std::size_t>(i)];
      if (skip_zeros && w == 0.0) continue;
      acc += w * in[static_cast<std::size_t>(i)];
    }
    if (post.relu) acc = std::max(0.0, acc);
    if (post.requant)
      acc = std::clamp(std::nearbyint(acc / post.act_scale), -post.act_qmax,
                       post.act_qmax) *
            post.act_scale;
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

/// Every kernel table this binary can execute on the current host.
std::vector<const SimdKernels*> executableTables() {
  std::vector<const SimdKernels*> tables;
  tables.push_back(kernelsForTier(SimdTier::kScalar));
  if (hostTier() != SimdTier::kScalar)
    tables.push_back(kernelsForTier(hostTier()));
  return tables;
}

TEST(SimdDispatch, TierAndTablesAreConsistent) {
  TierOverrideGuard guard;
  const SimdTier tier = hostTier();
  if (tier == SimdTier::kScalar) {
    EXPECT_EQ(activeKernels(), nullptr);
  } else {
    EXPECT_EQ(activeKernels(), kernelsForTier(tier));
    ASSERT_NE(activeKernels(), nullptr);
    EXPECT_NE(activeKernels()->dense, nullptr);
    EXPECT_NE(activeKernels()->sell, nullptr);
  }
  // The template-scalar table always exists (it is the equivalence oracle).
  const SimdKernels* scalar = kernelsForTier(SimdTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_NE(scalar->dense, nullptr);
  EXPECT_NE(scalar->sell, nullptr);
  EXPECT_STREQ(simdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(simdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(simdTierName(SimdTier::kNeon), "neon");
  // Overrides take effect and clear.
  overrideSimdTierForTest(SimdTier::kScalar);
  EXPECT_EQ(activeSimdTier(), SimdTier::kScalar);
  EXPECT_EQ(activeKernels(), nullptr);
  clearSimdTierOverrideForTest();
  EXPECT_EQ(activeSimdTier(), tier);
}

TEST(SimdKernelsT, DenseAndSellMatchNaiveAcrossShapesAndDensities) {
  Rng rng(0x51d0UL);
  const auto tables = executableTables();
  // Ragged tails (out % 4 != 0), single-row groups, wide/narrow layers.
  const std::vector<std::pair<int, int>> shapes = {
      {1, 1}, {3, 2}, {4, 4}, {7, 5}, {12, 6},
      {6, 12}, {13, 9}, {20, 21}, {5, 16}};
  const std::vector<double> zero_fractions = {0.0, 0.3, 0.7, 0.95, 1.0};
  const std::vector<SimdPostOp> posts = {
      {},
      {.relu = true},
      {.relu = true, .requant = true, .act_scale = 0.37, .act_qmax = 127.0},
      {.requant = true, .act_scale = 0.02, .act_qmax = 32767.0}};
  for (const auto& [in_dim, out_dim] : shapes) {
    for (double zf : zero_fractions) {
      const KernelInputs k = buildLayouts(rng, in_dim, out_dim, zf);
      std::vector<double> in(static_cast<std::size_t>(in_dim));
      for (double& v : in) v = rng.nextGaussian(0.0, 2.0);
      const int ngroups = (out_dim + 3) / 4;
      std::vector<double> out(static_cast<std::size_t>(4 * ngroups));
      for (const SimdPostOp& post : posts) {
        const auto dense_ref = naiveLayer(k, in, post, /*skip_zeros=*/false);
        const auto sparse_ref = naiveLayer(k, in, post, /*skip_zeros=*/true);
        for (const SimdKernels* t : tables) {
          t->dense(k.panel.data(), k.bias_padded.data(), in.data(), in_dim,
                   out_dim, post, out.data());
          expectExactlyEqual(dense_ref, {out.data(), dense_ref.size()});
          t->sell(k.sell_vals.data(), k.sell_cols.data(), k.grpoff.data(),
                  k.nnz.data(), k.bias_padded.data(), in.data(), out_dim,
                  post, out.data());
          expectExactlyEqual(sparse_ref, {out.data(), sparse_ref.size()});
        }
      }
    }
  }
}

TEST(SimdKernelsT, MaskedSellSlotsPreserveNegativeZeroAccumulators) {
  // A padded slot must be excluded by mask, not added: bias -0.0 with no
  // live terms in one lane of a group whose other lane has terms would
  // otherwise flip to +0.0 (-0.0 + 0.0 == +0.0).
  KernelInputs k;
  k.in_dim = 2;
  k.out_dim = 2;  // one group of 4, two padded rows
  k.w = {0.0, 0.0,   // row 0: fully pruned -> zero live slots
         1.0, 2.0};  // row 1: two live slots -> group width 2
  k.bias_padded = {-0.0, 1.0, 0.0, 0.0};
  k.nnz = {0, 2, 0, 0};
  k.grpoff = {0, 8};
  k.sell_vals = {0.0, 1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0};
  k.sell_cols = {0, 0, 0, 0, 0, 1, 0, 0};
  const std::vector<double> in = {3.0, 4.0};
  std::vector<double> out(4);
  for (const SimdKernels* t : executableTables()) {
    t->sell(k.sell_vals.data(), k.sell_cols.data(), k.grpoff.data(),
            k.nnz.data(), k.bias_padded.data(), in.data(), k.out_dim,
            SimdPostOp{}, out.data());
    EXPECT_TRUE(std::signbit(out[0])) << "dead row lost its -0.0 bias";
    EXPECT_EQ(out[1], 1.0 + 3.0 + 8.0);
  }
}

TEST(SimdPackedT, TierOverrideMatchesScalarEngineBitForBit) {
  Rng rng(0xd15eUL);
  const SimdTier host = hostTier();
  TierOverrideGuard guard;
  const std::vector<std::vector<int>> shapes = {
      {3, 4}, {6, 12, 12, 6}, {5, 21, 7, 3}, {1, 7, 1}};
  for (const auto& dims : shapes) {
    for (Head head : {Head::kSoftmaxClassifier, Head::kRegression}) {
      for (double zf : {0.0, 0.5, 0.9}) {
        Mlp net(dims, head, rng.fork(3));
        if (zf > 0.0) {
          for (std::size_t l = 0; l < net.layerCount(); ++l) {
            auto mask = net.layer(l).mask().flat();
            for (double& m : mask) m = rng.nextBernoulli(zf) ? 0.0 : 1.0;
          }
          net.applyMasks();
        }
        // Scalar-pinned engine: the historical loops, i.e. the golden path.
        overrideSimdTierForTest(SimdTier::kScalar);
        PackedMlp scalar_packed(net, {.sparse_density_threshold = 0.6});
        // Host-tier engine (no-op comparison on scalar-only hosts).
        overrideSimdTierForTest(host);
        PackedMlp vec_packed(net, {.sparse_density_threshold = 0.6});
        auto s1 = scalar_packed.makeScratch();
        auto s2 = vec_packed.makeScratch();
        std::vector<double> out1(static_cast<std::size_t>(net.outputDim()));
        std::vector<double> out2(out1.size());
        for (int trial = 0; trial < 8; ++trial) {
          std::vector<double> x(static_cast<std::size_t>(net.inputDim()));
          for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
          scalar_packed.forward(x, s1, out1);
          vec_packed.forward(x, s2, out2);
          expectExactlyEqual(out1, out2);
          expectExactlyEqual(net.forward(x), out2);
        }
        // Batched path through the dispatched kernels.
        const std::size_t n = 9;
        Matrix rows(n, static_cast<std::size_t>(net.inputDim()));
        for (double& v : rows.flat()) v = rng.nextGaussian(0.0, 2.0);
        Matrix b1(n, static_cast<std::size_t>(net.outputDim()));
        Matrix b2(n, static_cast<std::size_t>(net.outputDim()));
        scalar_packed.forwardBatch(rows, s1, b1);
        vec_packed.forwardBatch(rows, s2, b2);
        for (std::size_t r = 0; r < n; ++r)
          expectExactlyEqual(b1.row(r), b2.row(r));
      }
    }
  }
}

TEST(SimdPackedT, QuantizedRequantPostOpMatchesAcrossTiers) {
  Rng rng(0x0aceUL);
  const SimdTier host = hostTier();
  TierOverrideGuard guard;
  Mlp net({6, 12, 12, 6}, Head::kSoftmaxClassifier, rng.fork(4));
  Matrix calib(24, 6);
  for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 2.0);
  const QuantizedMlp qnet(
      net, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
      calib);
  overrideSimdTierForTest(SimdTier::kScalar);
  PackedMlp scalar_packed(qnet);
  overrideSimdTierForTest(host);
  PackedMlp vec_packed(qnet);
  auto s1 = scalar_packed.makeScratch();
  auto s2 = vec_packed.makeScratch();
  std::vector<double> out1(6);
  std::vector<double> out2(6);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
    scalar_packed.forward(x, s1, out1);
    vec_packed.forward(x, s2, out2);
    expectExactlyEqual(out1, out2);
    expectExactlyEqual(qnet.forward(x), out2);
  }
}

// -- packed int8 engine -----------------------------------------------------

TEST(PackedInt8T, MatchesForwardInt8BitForBit) {
  Rng rng(0x1888UL);
  for (Head head : {Head::kSoftmaxClassifier, Head::kRegression}) {
    for (const auto& dims : {std::vector<int>{6, 12, 12, 6},
                             std::vector<int>{4, 9, 3},
                             std::vector<int>{5, 7, 7, 7, 2}}) {
      Mlp net(dims, head, rng.fork(5));
      Matrix calib(32, static_cast<std::size_t>(net.inputDim()));
      for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 2.0);
      const QuantizedMlp qnet(
          net, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
          calib);
      const PackedInt8Mlp packed(qnet);
      EXPECT_EQ(packed.inputDim(), net.inputDim());
      EXPECT_EQ(packed.outputDim(), net.outputDim());
      EXPECT_EQ(packed.layerCount(), net.layerCount());
      auto scratch = packed.makeScratch();
      std::vector<double> out(static_cast<std::size_t>(net.outputDim()));
      for (int trial = 0; trial < 16; ++trial) {
        std::vector<double> x(static_cast<std::size_t>(net.inputDim()));
        for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
        const auto ref = qnet.forwardInt8(x);
        packed.forward(x, scratch, out);
        expectExactlyEqual(ref, out);
        if (head == Head::kSoftmaxClassifier) {
          const int want = static_cast<int>(
              std::max_element(ref.begin(), ref.end()) - ref.begin());
          EXPECT_EQ(packed.predictClass(x, scratch), want);
        }
      }
    }
  }
}

TEST(PackedInt8T, DecisionAgreementWithFloatEngineIsBounded) {
  // Untrained random nets are the worst case for argmax stability; int8
  // weights + activations must still agree on a clear majority of inputs.
  Rng rng(0xfee1UL);
  Mlp net({6, 12, 12, 6}, Head::kSoftmaxClassifier, rng.fork(6));
  Matrix calib(64, 6);
  for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 2.0);
  const QuantizedMlp qnet(
      net, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
      calib);
  const PackedInt8Mlp packed(qnet);
  auto scratch = packed.makeScratch();
  int agree = 0;
  const int probes = 200;
  for (int t = 0; t < probes; ++t) {
    std::vector<double> x(6);
    for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
    agree += (packed.predictClass(x, scratch) == net.predictClass(x));
  }
  EXPECT_GE(agree, probes / 2);
}

TEST(PackedInt8T, AsicCycleModelMatchesPaper) {
  Rng rng(0xc1caUL);
  // The compressed Decision-maker (§IV.B): 6 -> 12 -> 12 -> 6, 288 MACs.
  // At 2 MACs/cycle + 16 overhead cycles per layer the engine model lands
  // exactly on the paper's 192 cycles/inference (§V.D).
  Mlp compressed({6, 12, 12, 6}, Head::kSoftmaxClassifier, rng.fork(7));
  Matrix calib(8, 6);
  for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 1.0);
  const QuantizedMlp qnet(
      compressed,
      {.weight_bits = QuantBits::kInt8, .quantize_activations = true}, calib);
  const PackedInt8Mlp packed(qnet);
  EXPECT_EQ(packed.asicCyclesPerInference(), 192);
  // Explicit config: {6,12,6} = 72 + 72 MACs -> 36 + 36 cycles + 2*4.
  Mlp tiny({6, 12, 6}, Head::kRegression, rng.fork(8));
  Matrix calib2(8, 6);
  for (double& v : calib2.flat()) v = rng.nextGaussian(0.0, 1.0);
  const QuantizedMlp qtiny(
      tiny, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
      calib2);
  const PackedInt8Mlp ptiny(qtiny);
  EXPECT_EQ(ptiny.asicCyclesPerInference({.mac_lanes = 2, .pipeline_depth = 4}),
            80);
  // Storage: one byte per weight + 4 bytes per bias.
  EXPECT_EQ(ptiny.modelBytes(), (6 * 12 + 12 * 6) + (12 + 6) * 4);
}

TEST(PackedInt8T, ForwardPerformsZeroHeapAllocations) {
  Rng rng(0xa110cUL);
  Mlp net({6, 12, 12, 6}, Head::kSoftmaxClassifier, rng.fork(9));
  Matrix calib(16, 6);
  for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 2.0);
  const QuantizedMlp qnet(
      net, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
      calib);
  const PackedInt8Mlp packed(qnet);
  auto scratch = packed.makeScratch();
  std::vector<double> out(6);
  std::vector<double> x(6);
  for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
  packed.forward(x, scratch, out);  // warm call outside the guard
  {
    AllocationGuard guard;
    for (int i = 0; i < 100; ++i) {
      packed.forward(x, scratch, out);
      (void)packed.predictClass(x, scratch);
    }
    EXPECT_EQ(guard.count(), 0);
  }
}

TEST(PackedInt8T, ContractsAreEnforced) {
  Rng rng(0xbadUL);
  Mlp net({4, 8, 3}, Head::kRegression, rng.fork(10));
  Matrix calib(8, 4);
  for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 1.0);
  // No calibrated activations -> not packable and forwardInt8 refuses.
  const QuantizedMlp no_acts(
      net, {.weight_bits = QuantBits::kInt8, .quantize_activations = false},
      calib);
  EXPECT_THROW(static_cast<void>(PackedInt8Mlp{no_acts}), ContractError);
  const std::vector<double> probe = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(static_cast<void>(no_acts.forwardInt8(probe)), ContractError);
  // Int16 weights are outside the int8 datapath.
  const QuantizedMlp wide(
      net, {.weight_bits = QuantBits::kInt16, .quantize_activations = true},
      calib);
  EXPECT_THROW(static_cast<void>(PackedInt8Mlp{wide}), ContractError);
  // Scratch and compiledness contracts.
  const QuantizedMlp ok(
      net, {.weight_bits = QuantBits::kInt8, .quantize_activations = true},
      calib);
  const PackedInt8Mlp packed(ok);
  PackedInt8Mlp::Scratch tiny;
  std::vector<double> out(3);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_THROW(packed.forward(x, tiny, out), ContractError);
  const PackedInt8Mlp empty;
  EXPECT_THROW(static_cast<void>(empty.makeScratch()), ContractError);
}

}  // namespace
}  // namespace ssm
