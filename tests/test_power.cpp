// Unit tests for src/power: the V/f table and the analytic power model —
// plus the PowerCapController's saturation / reset / retarget edges (the
// integrator every chip in a src/dc rack runs for millions of epochs).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "core/power_cap.hpp"
#include "power/power_model.hpp"
#include "power/vf_table.hpp"

namespace ssm {
namespace {

TEST(VfTable, TitanXMatchesPaperOperatingPoints) {
  const VfTable t = VfTable::titanX();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t.at(0).voltage_v, 1.0);
  EXPECT_DOUBLE_EQ(t.at(0).freq_mhz, 683.0);
  EXPECT_DOUBLE_EQ(t.at(5).voltage_v, 1.155);
  EXPECT_DOUBLE_EQ(t.at(5).freq_mhz, 1165.0);
  EXPECT_EQ(t.defaultLevel(), 5);
}

TEST(VfTable, SparseVariantKeepsEndpoints) {
  const VfTable t = VfTable::titanXSparse();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0).freq_mhz, 683.0);
  EXPECT_DOUBLE_EQ(t.at(2).freq_mhz, 1165.0);
}

TEST(VfTable, RejectsNonMonotonic) {
  EXPECT_THROW(VfTable({{1.0, 1000.0}, {1.0, 900.0}}), ContractError);
  EXPECT_THROW(VfTable({{1.1, 900.0}, {1.0, 1000.0}}), ContractError);
  EXPECT_THROW(VfTable({{1.0, 900.0}}), ContractError);
  EXPECT_THROW(VfTable({{0.0, 900.0}, {1.0, 1000.0}}), ContractError);
}

TEST(VfTable, ClampAndValidity) {
  const VfTable t = VfTable::titanX();
  EXPECT_TRUE(t.isValid(0));
  EXPECT_TRUE(t.isValid(5));
  EXPECT_FALSE(t.isValid(-1));
  EXPECT_FALSE(t.isValid(6));
  EXPECT_EQ(t.clamp(-3), 0);
  EXPECT_EQ(t.clamp(99), 5);
  EXPECT_EQ(t.clamp(2), 2);
}

TEST(VfTable, AtOutOfRangeThrows) {
  const VfTable t = VfTable::titanX();
  EXPECT_THROW(static_cast<void>(t.at(-1)), ContractError);
  EXPECT_THROW(static_cast<void>(t.at(6)), ContractError);
}

TEST(VfTable, LevelForMinFreq) {
  const VfTable t = VfTable::titanX();
  EXPECT_EQ(t.levelForMinFreq(0.0), 0);
  EXPECT_EQ(t.levelForMinFreq(700.0), 1);
  EXPECT_EQ(t.levelForMinFreq(878.0), 2);
  EXPECT_EQ(t.levelForMinFreq(2000.0), 5);  // falls back to default
}

TEST(ClusterPower, DynamicPowerScalesWithV2F) {
  const ClusterPowerModel m;
  const ClusterActivity full{.issue = 1.0, .alu = 1.0, .mem = 1.0,
                             .active = 1.0};
  const VfPoint lo{1.0, 683.0};
  const VfPoint hi{1.155, 1165.0};
  const double p_lo = m.dynamicPowerW(lo, full);
  const double p_hi = m.dynamicPowerW(hi, full);
  const double expected_ratio =
      (1.155 * 1.155 * 1165.0) / (1.0 * 1.0 * 683.0);
  EXPECT_NEAR(p_hi / p_lo, expected_ratio, 1e-9);
}

TEST(ClusterPower, ActivityIncreasesPower) {
  const ClusterPowerModel m;
  const VfPoint vf{1.155, 1165.0};
  const ClusterActivity idle{.issue = 0.0, .alu = 0.0, .mem = 0.0,
                             .active = 1.0};
  const ClusterActivity busy{.issue = 1.0, .alu = 0.8, .mem = 0.5,
                             .active = 1.0};
  EXPECT_GT(m.dynamicPowerW(vf, busy), m.dynamicPowerW(vf, idle));
}

TEST(ClusterPower, ActivityIsClampedToOne) {
  ClusterPowerParams p;
  p.w_issue = 2.0;  // force saturation
  const ClusterPowerModel m(p);
  const VfPoint vf{1.0, 1000.0};
  const ClusterActivity a{.issue = 1.0, .alu = 1.0, .mem = 1.0, .active = 1.0};
  EXPECT_NEAR(m.dynamicPowerW(vf, a), p.c_eff * 1.0 * 1000.0, 1e-9);
}

TEST(ClusterPower, LeakageGrowsSuperlinearlyWithVoltage) {
  const ClusterPowerModel m;
  const double l10 = m.leakagePowerW({1.0, 683.0});
  const double l1155 = m.leakagePowerW({1.155, 1165.0});
  EXPECT_GT(l1155 / l10, 1.155);  // more than linear in V
}

TEST(ClusterPower, InvalidParamsThrow) {
  ClusterPowerParams p;
  p.c_eff = 0.0;
  EXPECT_THROW(ClusterPowerModel{p}, ContractError);
  ClusterPowerParams q;
  q.act_base = 1.5;
  EXPECT_THROW(ClusterPowerModel{q}, ContractError);
}

TEST(ChipPower, TitanXCalibrationNearTdpClass) {
  // A fully-active 24-cluster chip at the default operating point should
  // land in the 250 W TDP class of the GTX Titan X (within ~20 %).
  const ChipPowerModel chip(24);
  const ClusterActivity full{.issue = 1.0, .alu = 0.9, .mem = 0.6,
                             .active = 1.0};
  const double p = chip.uniformChipPowerW({1.155, 1165.0}, full, 0.9);
  EXPECT_GT(p, 200.0);
  EXPECT_LT(p, 300.0);
}

TEST(ChipPower, MinOperatingPointSavesSubstantialPower) {
  const ChipPowerModel chip(24);
  const ClusterActivity full{.issue = 1.0, .alu = 0.9, .mem = 0.6,
                             .active = 1.0};
  const double p_hi = chip.uniformChipPowerW({1.155, 1165.0}, full, 0.9);
  const double p_lo = chip.uniformChipPowerW({1.0, 683.0}, full, 0.9);
  // (V^2 f) ratio is ~0.44 on the core; whole chip should save >25 %.
  EXPECT_LT(p_lo / p_hi, 0.75);
}

TEST(ChipPower, UncoreUtilisationClamped) {
  const ChipPowerModel chip(24);
  EXPECT_DOUBLE_EQ(chip.uncorePowerW(-1.0), chip.uncorePowerW(0.0));
  EXPECT_DOUBLE_EQ(chip.uncorePowerW(2.0), chip.uncorePowerW(1.0));
  EXPECT_GT(chip.uncorePowerW(1.0), chip.uncorePowerW(0.0));
}

TEST(ChipPower, RejectsNonPositiveClusterCount) {
  EXPECT_THROW(ChipPowerModel(0), ContractError);
}

TEST(EnergyAccountant, IntegratesAndDerivesEdp) {
  EnergyAccountant acc;
  acc.add(100.0, 1'000'000);  // 100 W for 1 ms = 0.1 J
  EXPECT_NEAR(acc.energyJ(), 0.1, 1e-12);
  EXPECT_EQ(acc.elapsedNs(), 1'000'000);
  EXPECT_NEAR(acc.edp(), 0.1 * 1e-3, 1e-15);
  acc.add(50.0, 1'000'000);
  EXPECT_NEAR(acc.energyJ(), 0.15, 1e-12);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.energyJ(), 0.0);
  EXPECT_EQ(acc.elapsedNs(), 0);
}

TEST(EnergyAccountant, IgnoresNonPositiveDuration) {
  EnergyAccountant acc;
  acc.add(100.0, 0);
  acc.add(100.0, -5);
  EXPECT_DOUBLE_EQ(acc.energyJ(), 0.0);
}

TEST(PowerCapController, PermanentViolationPinsAtPresetMaxWithoutOverflow) {
  // Anti-windup: a cap that can never be met (power stuck far above it)
  // must saturate the integrator at preset_max, not accumulate without
  // bound — otherwise recovery after the violation clears would take as
  // long as the violation lasted.
  PowerCapConfig cfg;
  cfg.cap_w = 100.0;
  cfg.ki = 0.01;
  PowerCapController ctl(cfg);
  for (int i = 0; i < 100000; ++i) {
    const double p = ctl.onEpoch(5000.0);
    ASSERT_TRUE(std::isfinite(p));
    ASSERT_LE(p, cfg.preset_max);
    ASSERT_GE(p, cfg.preset_min);
  }
  EXPECT_DOUBLE_EQ(ctl.preset(), cfg.preset_max);
  EXPECT_EQ(ctl.violations(), 100000);
  EXPECT_EQ(ctl.epochs(), 100000);
  // One epoch of headroom starts relaxing immediately — no hidden residue
  // above the clamp to burn off first.
  const double relaxed = ctl.onEpoch(0.0);
  EXPECT_LT(relaxed, cfg.preset_max);
  EXPECT_NEAR(relaxed, cfg.preset_max * (1.0 - cfg.relax), 1e-12);
}

TEST(PowerCapController, ResetRestoresPreset0AndCounters) {
  PowerCapConfig cfg;
  cfg.cap_w = 50.0;
  cfg.preset0 = 0.25;
  PowerCapController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.25);
  for (int i = 0; i < 10; ++i) static_cast<void>(ctl.onEpoch(500.0));
  EXPECT_GT(ctl.preset(), 0.25);
  EXPECT_EQ(ctl.violations(), 10);
  ctl.reset();
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.25);
  EXPECT_EQ(ctl.violations(), 0);
  EXPECT_EQ(ctl.epochs(), 0);
}

TEST(PowerCapController, ZeroEpochSequenceIsInert) {
  // A controller that never sees an epoch (an idle chip between jobs)
  // reports zero activity and the construction-time preset; reset() on the
  // fresh state is a no-op.
  PowerCapConfig cfg;
  cfg.preset0 = 0.1;
  PowerCapController ctl(cfg);
  EXPECT_EQ(ctl.epochs(), 0);
  EXPECT_EQ(ctl.violations(), 0);
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.1);
  ctl.reset();
  EXPECT_EQ(ctl.epochs(), 0);
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.1);
}

TEST(PowerCapController, Preset0IsClampedToBoundsAtConstruction) {
  PowerCapConfig cfg;
  cfg.preset0 = 5.0;  // far above preset_max
  PowerCapController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.preset(), cfg.preset_max);
  cfg.preset0 = 0.4;
  cfg.preset_min = 0.5;
  cfg.preset_max = 0.6;
  PowerCapController lifted(cfg);
  EXPECT_DOUBLE_EQ(lifted.preset(), 0.5);
}

TEST(PowerCapController, SetCapRetargetsWithoutDisturbingIntegralState) {
  // The dc coordinator moves per-chip caps every control round; the chip
  // loop must keep its accumulated preset across the retarget and only
  // respond to the new target on the next epoch.
  PowerCapConfig cfg;
  cfg.cap_w = 100.0;
  cfg.ki = 0.001;
  PowerCapController ctl(cfg);
  for (int i = 0; i < 50; ++i) static_cast<void>(ctl.onEpoch(200.0));
  const double held = ctl.preset();
  EXPECT_GT(held, 0.0);
  ctl.setCap(300.0);
  EXPECT_DOUBLE_EQ(ctl.cap(), 300.0);
  EXPECT_DOUBLE_EQ(ctl.preset(), held);
  EXPECT_EQ(ctl.epochs(), 50);
  // Same power is now headroom: the preset relaxes instead of growing.
  EXPECT_LT(ctl.onEpoch(200.0), held);
  EXPECT_THROW(ctl.setCap(0.0), ContractError);
  EXPECT_THROW(ctl.setCap(-10.0), ContractError);
}

}  // namespace
}  // namespace ssm
