// Tests for the packed inference engine: exact agreement with the
// reference Mlp / QuantizedMlp forward passes across randomized shapes,
// masks and prune levels (dense, CSR and quantized lowerings; single-row
// and batched), plus the zero-allocation guarantee of the hot entry
// points, asserted with a counting global allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "compress/pruning.hpp"
#include "nn/mlp.hpp"
#include "nn/packed_mlp.hpp"
#include "nn/quantize.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: every operator-new in this binary bumps the counter
// while the gate is open. The hot-path tests open the gate around a call
// that must not allocate and assert the counter did not move.
//
// GCC pairs the replaced operator new with the library's delete when it
// inlines across this TU and warns about malloc/free mixing; the pairing
// here is internally consistent (new -> malloc, delete -> free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<long>& allocCount() {
  static std::atomic<long> count{0};
  return count;
}
std::atomic<bool>& allocGate() {
  static std::atomic<bool> gate{false};
  return gate;
}

class AllocationGuard {
 public:
  AllocationGuard() : before_(allocCount().load()) {
    allocGate().store(true);
  }
  ~AllocationGuard() { allocGate().store(false); }
  [[nodiscard]] long count() const {
    return allocCount().load() - before_;
  }

 private:
  long before_;
};
}  // namespace

void* operator new(std::size_t size) {
  if (allocGate().load(std::memory_order_relaxed)) ++allocCount();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ssm {
namespace {

// Random network with a random per-weight mask at the given zero-fraction.
Mlp makeMaskedNet(Rng& rng, const std::vector<int>& dims, Head head,
                  double zero_fraction) {
  Mlp net(dims, head, rng.fork(1));
  if (zero_fraction > 0.0) {
    for (std::size_t l = 0; l < net.layerCount(); ++l) {
      auto mask = net.layer(l).mask().flat();
      for (double& m : mask) m = rng.nextBernoulli(zero_fraction) ? 0.0 : 1.0;
    }
    net.applyMasks();
  }
  return net;
}

std::vector<double> randomInput(Rng& rng, int dim) {
  std::vector<double> x(static_cast<std::size_t>(dim));
  for (double& v : x) v = rng.nextGaussian(0.0, 2.0);
  return x;
}

void expectExactlyEqual(std::span<const double> ref,
                        std::span<const double> got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(ref[i], got[i]) << "component " << i;
}

TEST(PackedT, MatchesReferenceAcrossShapesMasksAndThresholds) {
  Rng rng(0xfadedUL);
  const std::vector<std::vector<int>> shapes = {
      {3, 4}, {6, 12, 12, 6}, {6, 20, 20, 20, 20, 20, 6}, {1, 7, 1}, {5, 3, 2}};
  const std::vector<double> zero_fractions = {0.0, 0.3, 0.6, 0.95};
  // 0.0 forces every layer dense, 1.1 forces every layer CSR, 0.5 is the
  // density-driven default that mixes both in one network.
  const std::vector<double> thresholds = {0.0, 0.5, 1.1};
  for (const auto& dims : shapes) {
    for (Head head : {Head::kSoftmaxClassifier, Head::kRegression}) {
      for (double zf : zero_fractions) {
        Mlp net = makeMaskedNet(rng, dims, head, zf);
        for (double threshold : thresholds) {
          PackedMlp packed(net, {.sparse_density_threshold = threshold});
          EXPECT_EQ(packed.inputDim(), net.inputDim());
          EXPECT_EQ(packed.outputDim(), net.outputDim());
          if (threshold == 0.0) {
            EXPECT_EQ(packed.sparseLayerCount(), 0u);
          }
          if (threshold > 1.0) {
            EXPECT_EQ(packed.sparseLayerCount(), packed.layerCount());
          }
          auto scratch = packed.makeScratch();
          std::vector<double> out(static_cast<std::size_t>(net.outputDim()));
          for (int trial = 0; trial < 8; ++trial) {
            const auto x = randomInput(rng, net.inputDim());
            const auto ref = net.forward(x);
            packed.forward(x, scratch, out);
            expectExactlyEqual(ref, out);
            if (head == Head::kSoftmaxClassifier)
              EXPECT_EQ(packed.predictClass(x, scratch), net.predictClass(x));
            else
              EXPECT_EQ(packed.predictScalar(x, scratch),
                        net.predictScalar(x));
          }
        }
      }
    }
  }
}

TEST(PackedT, MatchesReferenceAfterTwoStagePruning) {
  Rng rng(0x9e1dUL);
  Mlp net({6, 20, 20, 20, 20, 20, 6}, Head::kSoftmaxClassifier, rng.fork(2));
  magnitudePruneTo(net, 0.6);
  neuronPrune(net, 0.9);
  PackedMlp packed(net);
  EXPECT_GT(packed.sparseLayerCount(), 0u);
  // Executed work sits between the paper's mask-aware accounting (live
  // neurons only) and the dense pass the reference engine runs.
  EXPECT_GE(packed.flopsExecuted(), net.flops());
  EXPECT_LT(packed.flopsExecuted(), net.denseFlops());
  // Forced all-CSR, the only executed overhead over the mask-aware count
  // is the bias add + ReLU kept on pruned-dead neurons.
  PackedMlp all_csr(net, {.sparse_density_threshold = 1.1});
  std::int64_t neurons = 0;
  for (std::size_t l = 0; l < net.layerCount(); ++l)
    neurons += net.layer(l).outDim();
  EXPECT_LE(all_csr.flopsExecuted(), net.flops() + 2 * neurons);
  // An unpruned network packs all-dense and executes exactly denseFlops().
  Mlp dense_net({6, 12, 6}, Head::kRegression, Rng(11));
  EXPECT_EQ(PackedMlp(dense_net).flopsExecuted(), dense_net.denseFlops());
  auto scratch = packed.makeScratch();
  std::vector<double> out(static_cast<std::size_t>(net.outputDim()));
  for (int trial = 0; trial < 16; ++trial) {
    const auto x = randomInput(rng, net.inputDim());
    packed.forward(x, scratch, out);
    expectExactlyEqual(net.forward(x), out);
  }
}

TEST(PackedT, BatchedMatchesSingleRowBitForBit) {
  Rng rng(0xba7cUL);
  for (double zf : {0.0, 0.7}) {
    Mlp net = makeMaskedNet(rng, {6, 12, 12, 6}, Head::kSoftmaxClassifier, zf);
    PackedMlp packed(net);
    auto scratch = packed.makeScratch();
    const std::size_t n = 17;
    Matrix rows(n, static_cast<std::size_t>(net.inputDim()));
    for (std::size_t r = 0; r < n; ++r) {
      const auto x = randomInput(rng, net.inputDim());
      std::copy(x.begin(), x.end(), rows.row(r).begin());
    }
    Matrix out(n, static_cast<std::size_t>(net.outputDim()));
    packed.forwardBatch(rows, scratch, out);
    std::vector<double> single(static_cast<std::size_t>(net.outputDim()));
    for (std::size_t r = 0; r < n; ++r) {
      packed.forward(rows.row(r), scratch, single);
      expectExactlyEqual(single, out.row(r));
      expectExactlyEqual(net.forward(rows.row(r)), out.row(r));
    }
  }
}

TEST(PackedT, QuantizedLoweringMatchesQuantizedReference) {
  Rng rng(0x0123UL);
  for (bool quantize_acts : {false, true}) {
    for (QuantBits bits : {QuantBits::kInt8, QuantBits::kInt16}) {
      Mlp net = makeMaskedNet(rng, {6, 12, 12, 6}, Head::kRegression, 0.5);
      Matrix calib(32, static_cast<std::size_t>(net.inputDim()));
      for (double& v : calib.flat()) v = rng.nextGaussian(0.0, 2.0);
      QuantizedMlp qnet(
          net, {.weight_bits = bits, .quantize_activations = quantize_acts},
          calib);
      PackedMlp packed(qnet);
      EXPECT_EQ(packed.inputDim(), net.inputDim());
      EXPECT_EQ(packed.outputDim(), net.outputDim());
      auto scratch = packed.makeScratch();
      std::vector<double> out(static_cast<std::size_t>(net.outputDim()));
      for (int trial = 0; trial < 8; ++trial) {
        const auto x = randomInput(rng, net.inputDim());
        packed.forward(x, scratch, out);
        expectExactlyEqual(qnet.forward(x), out);
        EXPECT_EQ(packed.predictScalar(x, scratch), qnet.predictScalar(x));
      }
    }
  }
}

TEST(PackedT, ForwardPerformsZeroHeapAllocations) {
  Rng rng(0x2a110cUL);
  Mlp net = makeMaskedNet(rng, {6, 20, 20, 20, 20, 20, 6},
                          Head::kSoftmaxClassifier, 0.8);
  PackedMlp packed(net);
  auto scratch = packed.makeScratch();
  std::vector<double> out(static_cast<std::size_t>(net.outputDim()));
  const auto x = randomInput(rng, net.inputDim());
  // Warm call outside the guard (first-touch, lazy anything).
  packed.forward(x, scratch, out);
  {
    AllocationGuard guard;
    for (int i = 0; i < 100; ++i) {
      packed.forward(x, scratch, out);
      (void)packed.predictClass(x, scratch);
    }
    EXPECT_EQ(guard.count(), 0);
  }
  // Batched path: allocation-free once the scratch is reserved.
  const std::size_t n = 8;
  Matrix rows(n, static_cast<std::size_t>(net.inputDim()));
  for (double& v : rows.flat()) v = rng.nextGaussian(0.0, 1.0);
  Matrix batch_out(n, static_cast<std::size_t>(net.outputDim()));
  packed.reserveBatchScratch(scratch, n);
  {
    AllocationGuard guard;
    for (int i = 0; i < 50; ++i) packed.forwardBatch(rows, scratch, batch_out);
    EXPECT_EQ(guard.count(), 0);
  }
}

TEST(PackedT, ScratchContractIsEnforced) {
  Rng rng(0x77UL);
  Mlp net = makeMaskedNet(rng, {4, 8, 3}, Head::kRegression, 0.0);
  PackedMlp packed(net);
  PackedMlp::Scratch tiny;  // deliberately unsized
  std::vector<double> out(3);
  const auto x = randomInput(rng, 4);
  EXPECT_THROW(packed.forward(x, tiny, out), ContractError);
  PackedMlp empty;
  auto scratch = packed.makeScratch();
  EXPECT_THROW(empty.forward(x, scratch, out), ContractError);
  EXPECT_THROW(static_cast<void>(PackedMlp::Scratch{empty.makeScratch()}),
               ContractError);
}

}  // namespace
}  // namespace ssm
