// Unit tests for the work-stealing ThreadPool (src/sched): slot-indexed
// parallelFor correctness, nested submission, inline (jobs == 1) mode,
// exception propagation through waitAll/parallelFor, and defaultJobs().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "sched/thread_pool.hpp"

namespace ssm {
namespace {

TEST(ThreadPool, RejectsZeroJobs) {
  EXPECT_THROW(ThreadPool(0), ContractError);
  EXPECT_THROW(ThreadPool(-3), ContractError);
}

TEST(ThreadPool, ParallelForFillsEverySlotExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;  // deliberately not a multiple of jobs
  std::vector<int> hits(kN, 0);
  std::vector<std::size_t> value(kN, 0);
  pool.parallelFor(kN, [&](std::size_t i) {
    ++hits[i];
    value[i] = i * i;
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << i;
    EXPECT_EQ(value[i], i * i) << i;
  }
}

TEST(ThreadPool, InlineModeRunsBodyOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobCount(), 1);
  std::vector<std::size_t> order;
  pool.parallelFor(5, [&](std::size_t i) { order.push_back(i); });
  // jobs == 1 is the serial path: in-order, on this thread, no queues.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallelFor(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::size_t> sums(kOuter, 0);
  pool.parallelFor(kOuter, [&](std::size_t o) {
    std::vector<std::size_t> inner(kInner, 0);
    // Workers joining an inner batch help execute pending tasks, so the
    // nested call cannot starve even with every lane busy in the outer loop.
    pool.parallelFor(kInner, [&](std::size_t i) { inner[i] = i; });
    sums[o] = std::accumulate(inner.begin(), inner.end(), std::size_t{0});
  });
  for (std::size_t o = 0; o < kOuter; ++o)
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2);
}

TEST(ThreadPool, SubmitWaitAllRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.waitAll();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.parallelFor(32,
                                [&](std::size_t i) {
                                  if (i == 7)
                                    throw std::runtime_error("boom");
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> after{0};
  pool.parallelFor(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, WaitAllRethrowsFirstSubmittedException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("submitted failure"); });
  EXPECT_THROW(pool.waitAll(), std::runtime_error);
  // The error is consumed: a second waitAll is clean.
  pool.waitAll();
}

TEST(ThreadPool, InlineModeStillPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallelFor(3,
                                [](std::size_t i) {
                                  if (i == 1)
                                    throw std::runtime_error("inline boom");
                                }),
               std::runtime_error);
  pool.submit([] { throw std::runtime_error("inline submit"); });
  EXPECT_THROW(pool.waitAll(), std::runtime_error);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride) {
  ::setenv("SSMDVFS_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultJobs(), 3);
  ::setenv("SSMDVFS_JOBS", "0", 1);  // invalid → fall back to hardware
  EXPECT_GE(ThreadPool::defaultJobs(), 1);
  ::unsetenv("SSMDVFS_JOBS");
  EXPECT_GE(ThreadPool::defaultJobs(), 1);
}

}  // namespace
}  // namespace ssm
