// Unit tests for the ssm_lint engine (tools/ssm_lint): one positive and one
// negative case per rule, suppression-comment handling, and allowlist
// parsing/matching.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ssm_lint/lint.hpp"

namespace ssm::lint {
namespace {

bool hasRule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

TEST(LintCatalog, AllTenRulesRegistered) {
  const auto rules = ruleCatalog();
  ASSERT_EQ(rules.size(), 10u);
  for (const char* id :
       {"pragma-once", "using-namespace-header", "raw-assert",
        "nondeterminism", "hot-path-io", "c-style-float-cast",
        "raw-thread", "fault-hook-guard", "hot-path-alloc",
        "gpu-stepping"}) {
    EXPECT_TRUE(isKnownRule(id)) << id;
  }
  EXPECT_TRUE(isKnownRule("*"));
  EXPECT_FALSE(isKnownRule("no-such-rule"));
}

// --- gpu-stepping ----------------------------------------------------------

TEST(LintGpuStepping, FlagsDirectSteppingOutsideTheEngineLayer) {
  for (const char* call : {"runEpoch(levels)", "runEpochUniform(5)",
                           "runUntil(t)"}) {
    EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp",
                                   std::string("auto r = gpu.") + call + ";\n"),
                        "gpu-stepping"))
        << call;
  }
  EXPECT_TRUE(hasRule(
      lintSource("src/sched/x.cpp", "auto r = gpu->runEpoch(levels);\n"),
      "gpu-stepping"));
}

TEST(LintGpuStepping, AllowsTheEngineLayerTestsAndUnrelatedNames) {
  // The engine and simulator own the loop; tests/tools/bench are exempt.
  for (const char* path : {"src/engine/epoch_loop.cpp", "src/gpusim/gpu.cpp",
                           "tests/t.cpp", "bench/b.cpp", "tools/t.cpp"}) {
    EXPECT_FALSE(hasRule(
        lintSource(path, "auto r = gpu.runEpoch(levels);\n"), "gpu-stepping"))
        << path;
  }
  // A free function or an unrelated member does not trip the rule.
  EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp", "runEpoch(gpu);\n"),
                       "gpu-stepping"));
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "auto r = gpu.runEpochs(levels);\n"),
      "gpu-stepping"));
  // The checked-in allowlist sanctions the datagen replay windows.
  EXPECT_FALSE(hasRule(lintSource("src/datagen/generator.cpp",
                                  "auto r = gpu.runEpochUniform(l);\n",
                                  parseAllowlist("gpu-stepping src/datagen/\n")),
                       "gpu-stepping"));
  // An inline suppression works like for every other rule.
  EXPECT_FALSE(
      hasRule(lintSource(
                  "src/core/x.cpp",
                  "auto r = gpu.runEpoch(l);  // ssm-lint: allow(gpu-stepping)\n"),
              "gpu-stepping"));
}

// --- hot-path-alloc --------------------------------------------------------

TEST(LintHotPathAlloc, FlagsAllocatingConstructsInDesignatedFiles) {
  for (const char* path :
       {"src/nn/packed_mlp.hpp", "src/core/ssm_governor.cpp"}) {
    EXPECT_TRUE(hasRule(lintSource(path, "auto* p = new double[8];\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(
        lintSource(path, "auto g = std::make_unique<Governor>(m);\n"),
        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "void* p = malloc(64);\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(
        hasRule(lintSource(path, "buf_.resize(n);\n"), "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "s->push_back(1.0);\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "ewma_loss_.assign(n, -1.0);\n"),
                        "hot-path-alloc"))
        << path;
  }
}

TEST(LintHotPathAlloc, IgnoresNonDesignatedFilesAndNonAllocatingTokens) {
  // The same constructs are fine anywhere else — including the compile-side
  // packed_mlp.cpp, which is deliberately not designated.
  for (const char* path :
       {"src/nn/packed_mlp.cpp", "src/core/ssm_model.cpp", "src/nn/mlp.cpp"}) {
    EXPECT_FALSE(hasRule(
        lintSource(path, "buf_.resize(n);\nauto* p = new double[8];\n"),
        "hot-path-alloc"))
        << path;
  }
  // Free functions named like growth calls, declarations, and non-growth
  // members are not allocation sites.
  EXPECT_FALSE(hasRule(
      lintSource("src/nn/packed_mlp.hpp",
                 "void reserveBatchScratch(Scratch& s, std::size_t n) "
                 "const;\nstd::vector<double> ping;\nresize(x);\n"
                 "s.size();\n"),
      "hot-path-alloc"));
}

TEST(LintHotPathAlloc, SuppressionAndAllowlistEscapeHatchesWork) {
  EXPECT_FALSE(hasRule(
      lintSource("src/core/ssm_governor.cpp",
                 "ewma_loss_.assign(n, -1.0);  // ssm-lint: "
                 "allow(hot-path-alloc)\n"),
      "hot-path-alloc"));
  const std::vector<AllowEntry> allow = {
      {"hot-path-alloc", "src/core/ssm_governor.cpp"}};
  EXPECT_FALSE(hasRule(lintSource("src/core/ssm_governor.cpp",
                                  "buf_.resize(n);\n", allow),
                       "hot-path-alloc"));
}

// --- raw-thread ------------------------------------------------------------

TEST(LintRawThread, FlagsStdThreadJthreadAsyncAndThreadHeader) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "std::thread t([]{});\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("bench/b.cpp", "auto f = std::async(g);\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("tests/t.cpp", "std :: jthread t;\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("tools/t.cpp", "#include <thread>\n"), "raw-thread"));
}

TEST(LintRawThread, AllowsPoolInternalsViaAllowlistAndSimilarNames) {
  const std::vector<AllowEntry> allow = {{"raw-thread", "src/sched/"}};
  EXPECT_FALSE(hasRule(
      lintSource("src/sched/thread_pool.cpp",
                 "#include <thread>\nstd::thread t([]{});\n", allow),
      "raw-thread"));
  // Unqualified or differently-qualified identifiers are not the rule's
  // target; neither is this_thread (full identifier differs).
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "my::thread t; int async = 0;\n"),
      "raw-thread"));
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "std::this_thread_tag y;\n"),
      "raw-thread"));
}

// --- pragma-once -----------------------------------------------------------

TEST(LintPragmaOnce, FlagsHeaderWithoutGuard) {
  const auto fs = lintSource("src/foo/bar.hpp", "int f();\n");
  EXPECT_TRUE(hasRule(fs, "pragma-once"));
}

TEST(LintPragmaOnce, AcceptsGuardedHeaderAndIgnoresCppFiles) {
  EXPECT_FALSE(hasRule(
      lintSource("src/foo/bar.hpp", "// doc\n#pragma once\nint f();\n"),
      "pragma-once"));
  EXPECT_FALSE(hasRule(lintSource("src/foo/bar.cpp", "int f() { return 1; }\n"),
                       "pragma-once"));
}

// --- using-namespace-header ------------------------------------------------

TEST(LintUsingNamespace, FlagsUsingNamespaceInHeader) {
  const auto fs = lintSource("src/foo/bar.hpp",
                             "#pragma once\nusing namespace std;\n");
  ASSERT_TRUE(hasRule(fs, "using-namespace-header"));
  EXPECT_EQ(fs.front().line, 2u);
}

TEST(LintUsingNamespace, AllowsUsingNamespaceInCppFiles) {
  EXPECT_FALSE(hasRule(lintSource("bench/b.cpp", "using namespace ssm;\n"),
                       "using-namespace-header"));
}

// --- raw-assert ------------------------------------------------------------

TEST(LintRawAssert, FlagsAssertAndAbortInSrc) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "void f(int v) { assert(v > 0); }\n"),
      "raw-assert"));
  EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp", "void g() { abort(); }\n"),
                      "raw-assert"));
}

TEST(LintRawAssert, AllowsAssertOutsideSrcAndSimilarNames) {
  EXPECT_FALSE(hasRule(
      lintSource("tests/t.cpp", "void f(int v) { assert(v > 0); }\n"),
      "raw-assert"));
  // static_assert and my_assert are different identifiers.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "static_assert(sizeof(int) == 4);\n"),
      "raw-assert"));
}

// --- nondeterminism --------------------------------------------------------

TEST(LintNondeterminism, FlagsEachEntropySource) {
  for (const char* bad :
       {"int x = rand();", "srand(42);", "auto t = time(nullptr);",
        "std::random_device rd;",
        "auto n = std::chrono::steady_clock::now();"}) {
    const auto fs =
        lintSource("src/core/x.cpp", std::string(bad) + "\n");
    EXPECT_TRUE(hasRule(fs, "nondeterminism")) << bad;
  }
}

TEST(LintNondeterminism, AllowsSanctionedRngViaAllowlist) {
  const auto allow = parseAllowlist("nondeterminism src/common/rng.\n");
  EXPECT_FALSE(hasRule(
      lintSource("src/common/rng.cpp", "std::random_device rd;\n", allow),
      "nondeterminism"));
  // Same content elsewhere still flags.
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "std::random_device rd;\n", allow),
      "nondeterminism"));
}

// --- hot-path-io -----------------------------------------------------------

TEST(LintHotPathIo, FlagsIostreamInHotPathDirs) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "#include <iostream>\n"), "hot-path-io"));
  EXPECT_TRUE(hasRule(
      lintSource("src/gpusim/y.cpp", "void f() { printf(\"hi\"); }\n"),
      "hot-path-io"));
}

TEST(LintHotPathIo, AllowsIoOffTheHotPath) {
  EXPECT_FALSE(hasRule(
      lintSource("src/datagen/x.cpp", "#include <iostream>\n"),
      "hot-path-io"));
}

// --- fault-hook-guard ------------------------------------------------------

TEST(LintFaultHookGuard, FlagsUnguardedHookDerefInHotPath) {
  EXPECT_TRUE(hasRule(
      lintSource("src/gpusim/x.cpp", "void f() { faults->onTelemetry(r); }\n"),
      "fault-hook-guard"));
  // Case-insensitive over the identifier, and a guard two lines up is too
  // far away to audit at a glance.
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp",
                 "if (myFaultHook != nullptr) {\n"
                 "  prepare();\n"
                 "  myFaultHook->onActuate(c, req, cur);\n"
                 "}\n"),
      "fault-hook-guard"));
}

TEST(LintFaultHookGuard, AcceptsGuardedIdiomsAndColdPaths) {
  EXPECT_FALSE(hasRule(
      lintSource("src/gpusim/x.cpp",
                 "if (faults != nullptr) faults->onTelemetry(r);\n"),
      "fault-hook-guard"));
  EXPECT_FALSE(hasRule(
      lintSource("src/gpusim/x.cpp",
                 "l = faults != nullptr ? faults->onActuate(i, q, c)\n"
                 "                      : q;\n"),
      "fault-hook-guard"));
  // Preceding-line guard.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "if (fault_hook != nullptr)\n"
                 "  fault_hook->onTelemetry(r);\n"),
      "fault-hook-guard"));
  // Outside the hot-path dirs the injector may be dereferenced freely.
  EXPECT_FALSE(hasRule(
      lintSource("src/sched/fleet.cpp", "injector_faults->onTelemetry(r);\n"),
      "fault-hook-guard"));
  // Member access on a value (no '->') is not a hook dereference.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "if (fault.empty()) return;\n"),
      "fault-hook-guard"));
}

// --- c-style-float-cast ----------------------------------------------------

TEST(LintFloatCast, FlagsCStyleCasts) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "float f(int v) { return (float)v; }\n"),
      "c-style-float-cast"));
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "double g(long n) { return (double)n; }\n"),
      "c-style-float-cast"));
}

TEST(LintFloatCast, AllowsDeclarationsAndStaticCast) {
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "double g(long n) { return static_cast<double>(n); }\n"),
      "c-style-float-cast"));
  // `(double)` followed by nothing castable — e.g. a parameter list — is
  // not a cast.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "void h(double);\n"), "c-style-float-cast"));
}

// --- suppression comments --------------------------------------------------

TEST(LintSuppression, SameLineCommentSuppresses) {
  const auto fs = lintSource(
      "src/core/x.cpp",
      "void f() { abort(); }  // ssm-lint: allow(raw-assert)\n");
  EXPECT_FALSE(hasRule(fs, "raw-assert"));
}

TEST(LintSuppression, PrecedingLineCommentSuppresses) {
  const auto fs = lintSource("src/core/x.cpp",
                             "// ssm-lint: allow(raw-assert)\n"
                             "void f() { abort(); }\n");
  EXPECT_FALSE(hasRule(fs, "raw-assert"));
}

TEST(LintSuppression, SuppressionIsRuleSpecific) {
  // Allowing one rule must not hide a different rule on the same line.
  const auto fs = lintSource(
      "src/core/x.cpp",
      "void f() { abort(); }  // ssm-lint: allow(nondeterminism)\n");
  EXPECT_TRUE(hasRule(fs, "raw-assert"));
}

// --- allowlist parsing -----------------------------------------------------

TEST(LintAllowlist, ParsesEntriesAndSkipsComments) {
  const auto allow = parseAllowlist(
      "# comment\n"
      "\n"
      "hot-path-io src/core/ssm_io.\n"
      "* tools/vendored/\n");
  ASSERT_EQ(allow.size(), 2u);
  EXPECT_EQ(allow[0].rule, "hot-path-io");
  EXPECT_EQ(allow[0].path_prefix, "src/core/ssm_io.");
  EXPECT_EQ(allow[1].rule, "*");
}

TEST(LintAllowlist, RejectsUnknownRulesAndMalformedLines) {
  EXPECT_THROW(static_cast<void>(parseAllowlist("no-such-rule src/\n")),
               AllowlistError);
  EXPECT_THROW(static_cast<void>(parseAllowlist("just-one-token\n")),
               AllowlistError);
}

TEST(LintAllowlist, WildcardRuleWaivesEverythingUnderPrefix) {
  const auto allow = parseAllowlist("* src/vendored/\n");
  const auto fs = lintSource("src/vendored/x.cpp",
                             "void f() { abort(); rand(); }\n", allow);
  EXPECT_TRUE(fs.empty());
}

// --- output format ---------------------------------------------------------

TEST(LintFormat, GccStyleDiagnostic) {
  const Finding f{"src/core/x.cpp", 12, "raw-assert", "use SSM_CHECK"};
  const auto s = formatFinding(f);
  EXPECT_EQ(s.substr(0, std::string("src/core/x.cpp:12: warning:").size()),
            "src/core/x.cpp:12: warning:");
  EXPECT_NE(s.find("[raw-assert]"), std::string::npos);
}

TEST(LintEngine, LineNumbersSurviveCommentsAndStrings) {
  // The stripper must keep offsets: the violation sits on line 4, after a
  // block comment containing decoys and a string containing "rand()".
  const auto fs = lintSource("src/core/x.cpp",
                             "/* rand()\n"
                             "   abort() */\n"
                             "const char* s = \"time(nullptr)\";\n"
                             "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "nondeterminism");
  EXPECT_EQ(fs[0].line, 4u);
}

}  // namespace
}  // namespace ssm::lint
