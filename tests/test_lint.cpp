// Unit tests for the ssm_lint engine (tools/ssm_lint): one positive and one
// negative case per rule, suppression-comment handling, allowlist
// parsing/matching, the repo-level graph and hygiene passes, the stale-entry
// fixers, and the SARIF serializer.
//
// Rule registration is catalog-driven: kRuleFixtures maps every rule id to a
// minimal repo snapshot that triggers it, and LintCatalog.EveryRuleHasAFixture
// walks ruleCatalog() against that table — so a rule added to the engine
// without a fixture here (or vice versa) fails loudly instead of silently
// going untested.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "ssm_lint/include_graph.hpp"
#include "ssm_lint/lint.hpp"
#include "ssm_lint/sarif.hpp"

namespace ssm::lint {
namespace {

bool hasRule(const std::vector<Finding>& fs, std::string_view rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

/// A flat one-layer map: every scan dir in one layer, so graph passes run
/// but impose no ordering. Fixtures that test layering supply their own.
constexpr std::string_view kFlatLayers =
    "layer all\nsrc/\ntools/\nbench/\ntests/\nexamples/\n";

/// Minimal repo snapshot that triggers exactly the named rule.
struct RuleFixture {
  RuleFixture(std::vector<SourceFile> f, std::string_view l = kFlatLayers,
              std::string_view a = {})
      : files(std::move(f)), layers(l), allowlist(a) {}
  std::vector<SourceFile> files;
  std::string_view layers;
  std::string_view allowlist;
};

const std::map<std::string_view, RuleFixture>& ruleFixtures() {
  static const std::map<std::string_view, RuleFixture> fixtures = {
      {"pragma-once", {{{"src/a.hpp", "int f();\n"}}}},
      {"using-namespace-header",
       {{{"src/a.hpp", "#pragma once\nusing namespace std;\n"}}}},
      {"raw-assert", {{{"src/a.cpp", "void f() { abort(); }\n"}}}},
      {"nondeterminism", {{{"src/a.cpp", "int x = rand();\n"}}}},
      {"hot-path-io", {{{"src/core/a.cpp", "#include <iostream>\n"}}}},
      {"c-style-float-cast",
       {{{"src/a.cpp", "double g(long n) { return (double)n; }\n"}}}},
      {"raw-thread", {{{"src/a.cpp", "std::thread t;\n"}}}},
      {"fault-hook-guard",
       {{{"src/gpusim/a.cpp", "void f() { faults->onTelemetry(r); }\n"}}}},
      {"hot-path-alloc",
       {{{"src/core/ssm_governor.cpp", "void f() { buf_.resize(n); }\n"}}}},
      {"gpu-stepping",
       {{{"src/core/a.cpp", "auto r = gpu.runEpoch(l);\n"}}}},
      {"layer-order",
       {{{"src/common/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n"},
         {"src/core/b.hpp", "#pragma once\n"}},
        "layer foundation\nsrc/common/\nlayer control\nsrc/core/\n"}},
      {"include-cycle",
       {{{"src/common/a.hpp", "#pragma once\n#include \"common/b.hpp\"\n"},
         {"src/common/b.hpp", "#pragma once\n#include \"common/a.hpp\"\n"}}}},
      {"unordered-iteration",
       {{{"src/a.cpp",
          "#include <unordered_map>\n"
          "void f(std::ostream& os) {\n"
          "  std::unordered_map<int, double> acc;\n"
          "  for (const auto& kv : acc) os << kv.second;\n"
          "}\n"}}}},
      {"float-equality",
       {{{"src/a.cpp", "bool b(double x) { return x == 0.25; }\n"}}}},
      {"simd-intrinsics",
       {{{"src/a.cpp", "__m256d v = _mm256_setzero_pd();\n"}}}},
      {"stale-allowlist",
       {{{"src/a.cpp", "int x = 0;\n"}},
        kFlatLayers,
        "gpu-stepping src/nothing/\n"}},
      {"stale-waiver",
       {{{"src/a.cpp", "int x = 0;  // ssm-lint: allow(raw-assert)\n"}}}},
  };
  return fixtures;
}

RepoLintResult lintFixture(const RuleFixture& fx) {
  RepoLintOptions opts;
  opts.allowlist_text = std::string(fx.allowlist);
  opts.layers_text = std::string(fx.layers);
  return lintRepo(fx.files, opts);
}

TEST(LintCatalog, EveryRuleHasAFixtureAndEveryFixtureARule) {
  const auto rules = ruleCatalog();
  EXPECT_EQ(rules.size(), ruleFixtures().size());
  for (const auto& r : rules) {
    EXPECT_TRUE(isKnownRule(r.id)) << r.id;
    EXPECT_FALSE(r.summary.empty()) << r.id;
    const auto it = ruleFixtures().find(r.id);
    ASSERT_NE(it, ruleFixtures().end())
        << "rule '" << r.id << "' has no fixture in kRuleFixtures";
    EXPECT_TRUE(hasRule(lintFixture(it->second).findings, r.id))
        << "fixture for '" << r.id << "' does not trigger it";
  }
  for (const auto& [id, fx] : ruleFixtures())
    EXPECT_TRUE(isKnownRule(id)) << "fixture for unregistered rule " << id;
  EXPECT_TRUE(isKnownRule("*"));
  EXPECT_FALSE(isKnownRule("no-such-rule"));
}

// --- gpu-stepping ----------------------------------------------------------

TEST(LintGpuStepping, FlagsDirectSteppingOutsideTheEngineLayer) {
  for (const char* call : {"runEpoch(levels)", "runEpochUniform(5)",
                           "runUntil(t)"}) {
    EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp",
                                   std::string("auto r = gpu.") + call + ";\n"),
                        "gpu-stepping"))
        << call;
  }
  EXPECT_TRUE(hasRule(
      lintSource("src/sched/x.cpp", "auto r = gpu->runEpoch(levels);\n"),
      "gpu-stepping"));
}

TEST(LintGpuStepping, AllowsTheEngineLayerTestsAndUnrelatedNames) {
  // The engine and simulator own the loop; tests/tools/bench are exempt.
  for (const char* path : {"src/engine/epoch_loop.cpp", "src/gpusim/gpu.cpp",
                           "tests/t.cpp", "bench/b.cpp", "tools/t.cpp"}) {
    EXPECT_FALSE(hasRule(
        lintSource(path, "auto r = gpu.runEpoch(levels);\n"), "gpu-stepping"))
        << path;
  }
  // A free function or an unrelated member does not trip the rule.
  EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp", "runEpoch(gpu);\n"),
                       "gpu-stepping"));
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "auto r = gpu.runEpochs(levels);\n"),
      "gpu-stepping"));
  // The checked-in allowlist sanctions the datagen replay windows.
  EXPECT_FALSE(hasRule(lintSource("src/datagen/generator.cpp",
                                  "auto r = gpu.runEpochUniform(l);\n",
                                  parseAllowlist("gpu-stepping src/datagen/\n")),
                       "gpu-stepping"));
  // An inline suppression works like for every other rule.
  EXPECT_FALSE(
      hasRule(lintSource(
                  "src/core/x.cpp",
                  "auto r = gpu.runEpoch(l);  // ssm-lint: allow(gpu-stepping)\n"),
              "gpu-stepping"));
}

// --- hot-path-alloc --------------------------------------------------------

TEST(LintHotPathAlloc, FlagsAllocatingConstructsInDesignatedFiles) {
  for (const char* path :
       {"src/nn/packed_mlp.hpp", "src/core/ssm_governor.cpp"}) {
    EXPECT_TRUE(hasRule(lintSource(path, "auto* p = new double[8];\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(
        lintSource(path, "auto g = std::make_unique<Governor>(m);\n"),
        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "void* p = malloc(64);\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(
        hasRule(lintSource(path, "buf_.resize(n);\n"), "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "s->push_back(1.0);\n"),
                        "hot-path-alloc"))
        << path;
    EXPECT_TRUE(hasRule(lintSource(path, "ewma_loss_.assign(n, -1.0);\n"),
                        "hot-path-alloc"))
        << path;
  }
}

TEST(LintHotPathAlloc, IgnoresNonDesignatedFilesAndNonAllocatingTokens) {
  // The same constructs are fine anywhere else — including the compile-side
  // packed_mlp.cpp, which is deliberately not designated.
  for (const char* path :
       {"src/nn/packed_mlp.cpp", "src/core/ssm_model.cpp", "src/nn/mlp.cpp"}) {
    EXPECT_FALSE(hasRule(
        lintSource(path, "buf_.resize(n);\nauto* p = new double[8];\n"),
        "hot-path-alloc"))
        << path;
  }
  // Free functions named like growth calls, declarations, and non-growth
  // members are not allocation sites.
  EXPECT_FALSE(hasRule(
      lintSource("src/nn/packed_mlp.hpp",
                 "void reserveBatchScratch(Scratch& s, std::size_t n) "
                 "const;\nstd::vector<double> ping;\nresize(x);\n"
                 "s.size();\n"),
      "hot-path-alloc"));
}

TEST(LintHotPathAlloc, SuppressionAndAllowlistEscapeHatchesWork) {
  EXPECT_FALSE(hasRule(
      lintSource("src/core/ssm_governor.cpp",
                 "ewma_loss_.assign(n, -1.0);  // ssm-lint: "
                 "allow(hot-path-alloc)\n"),
      "hot-path-alloc"));
  const std::vector<AllowEntry> allow = {
      {"hot-path-alloc", "src/core/ssm_governor.cpp"}};
  EXPECT_FALSE(hasRule(lintSource("src/core/ssm_governor.cpp",
                                  "buf_.resize(n);\n", allow),
                       "hot-path-alloc"));
}

// --- simd-intrinsics -------------------------------------------------------

TEST(LintSimdIntrinsics, FlagsIntrinsicHeadersOpsAndVectorTypes) {
  EXPECT_TRUE(hasRule(lintSource("src/core/a.cpp", "#include <immintrin.h>\n"),
                      "simd-intrinsics"));
  EXPECT_TRUE(hasRule(lintSource("bench/b.cpp", "#include <arm_neon.h>\n"),
                      "simd-intrinsics"));
  for (const char* line :
       {"auto v = _mm256_loadu_pd(p);\n", "__m512d acc;\n",
        "auto m = _mm_max_pd(a, b);\n", "auto n = vmaxq_f64(a, b);\n",
        "float64x2_t lanes;\n", "auto g = vld1q_f32(p);\n"}) {
    EXPECT_TRUE(hasRule(lintSource("src/gpusim/a.cpp", line),
                        "simd-intrinsics"))
        << line;
  }
}

TEST(LintSimdIntrinsics, AllowsSeamFilesSimilarNamesAndOutOfScopePaths) {
  // The dispatch-seam kernel TUs are exempted by the checked-in allowlist.
  const std::vector<AllowEntry> allow =
      parseAllowlist("simd-intrinsics src/nn/simd_kernels_avx2.\n");
  EXPECT_FALSE(hasRule(lintSource("src/nn/simd_kernels_avx2.cpp",
                                  "auto v = _mm256_setzero_pd();\n", allow),
                       "simd-intrinsics"));
  // Lookalike identifiers that are not intrinsics.
  for (const char* line :
       {"int _max = 0;\n", "double volt_freq_u32 = 0.0;\n",
        "auto x = vector_freq_mix();\n", "int matrix2_t = 0;\n",
        "auto m = mm256_helper();\n"}) {
    EXPECT_FALSE(hasRule(lintSource("src/core/a.cpp", line),
                         "simd-intrinsics"))
        << line;
  }
  // Outside src/, tools/ and bench/ the rule does not apply.
  EXPECT_FALSE(hasRule(lintSource("examples/vec.cpp",
                                  "auto v = _mm256_setzero_pd();\n"),
                       "simd-intrinsics"));
}

// --- raw-thread ------------------------------------------------------------

TEST(LintRawThread, FlagsStdThreadJthreadAsyncAndThreadHeader) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "std::thread t([]{});\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("bench/b.cpp", "auto f = std::async(g);\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("tests/t.cpp", "std :: jthread t;\n"), "raw-thread"));
  EXPECT_TRUE(hasRule(
      lintSource("tools/t.cpp", "#include <thread>\n"), "raw-thread"));
}

TEST(LintRawThread, AllowsPoolInternalsViaAllowlistAndSimilarNames) {
  const std::vector<AllowEntry> allow = {{"raw-thread", "src/sched/"}};
  EXPECT_FALSE(hasRule(
      lintSource("src/sched/thread_pool.cpp",
                 "#include <thread>\nstd::thread t([]{});\n", allow),
      "raw-thread"));
  // Unqualified or differently-qualified identifiers are not the rule's
  // target; neither is this_thread (full identifier differs).
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "my::thread t; int async = 0;\n"),
      "raw-thread"));
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "std::this_thread_tag y;\n"),
      "raw-thread"));
}

// --- pragma-once -----------------------------------------------------------

TEST(LintPragmaOnce, FlagsHeaderWithoutGuard) {
  const auto fs = lintSource("src/foo/bar.hpp", "int f();\n");
  EXPECT_TRUE(hasRule(fs, "pragma-once"));
}

TEST(LintPragmaOnce, AcceptsGuardedHeaderAndIgnoresCppFiles) {
  EXPECT_FALSE(hasRule(
      lintSource("src/foo/bar.hpp", "// doc\n#pragma once\nint f();\n"),
      "pragma-once"));
  EXPECT_FALSE(hasRule(lintSource("src/foo/bar.cpp", "int f() { return 1; }\n"),
                       "pragma-once"));
}

// --- using-namespace-header ------------------------------------------------

TEST(LintUsingNamespace, FlagsUsingNamespaceInHeader) {
  const auto fs = lintSource("src/foo/bar.hpp",
                             "#pragma once\nusing namespace std;\n");
  ASSERT_TRUE(hasRule(fs, "using-namespace-header"));
  EXPECT_EQ(fs.front().line, 2u);
}

TEST(LintUsingNamespace, AllowsUsingNamespaceInCppFiles) {
  EXPECT_FALSE(hasRule(lintSource("bench/b.cpp", "using namespace ssm;\n"),
                       "using-namespace-header"));
}

// --- raw-assert ------------------------------------------------------------

TEST(LintRawAssert, FlagsAssertAndAbortInSrc) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "void f(int v) { assert(v > 0); }\n"),
      "raw-assert"));
  EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp", "void g() { abort(); }\n"),
                      "raw-assert"));
}

TEST(LintRawAssert, AllowsAssertOutsideSrcAndSimilarNames) {
  EXPECT_FALSE(hasRule(
      lintSource("tests/t.cpp", "void f(int v) { assert(v > 0); }\n"),
      "raw-assert"));
  // static_assert and my_assert are different identifiers.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "static_assert(sizeof(int) == 4);\n"),
      "raw-assert"));
}

// --- nondeterminism --------------------------------------------------------

TEST(LintNondeterminism, FlagsEachEntropySource) {
  for (const char* bad :
       {"int x = rand();", "srand(42);", "auto t = time(nullptr);",
        "std::random_device rd;",
        "auto n = std::chrono::steady_clock::now();"}) {
    const auto fs =
        lintSource("src/core/x.cpp", std::string(bad) + "\n");
    EXPECT_TRUE(hasRule(fs, "nondeterminism")) << bad;
  }
}

TEST(LintNondeterminism, AllowsSanctionedRngViaAllowlist) {
  const auto allow = parseAllowlist("nondeterminism src/common/rng.\n");
  EXPECT_FALSE(hasRule(
      lintSource("src/common/rng.cpp", "std::random_device rd;\n", allow),
      "nondeterminism"));
  // Same content elsewhere still flags.
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "std::random_device rd;\n", allow),
      "nondeterminism"));
}

// --- hot-path-io -----------------------------------------------------------

TEST(LintHotPathIo, FlagsIostreamInHotPathDirs) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "#include <iostream>\n"), "hot-path-io"));
  EXPECT_TRUE(hasRule(
      lintSource("src/gpusim/y.cpp", "void f() { printf(\"hi\"); }\n"),
      "hot-path-io"));
}

TEST(LintHotPathIo, AllowsIoOffTheHotPath) {
  EXPECT_FALSE(hasRule(
      lintSource("src/datagen/x.cpp", "#include <iostream>\n"),
      "hot-path-io"));
}

// --- fault-hook-guard ------------------------------------------------------

TEST(LintFaultHookGuard, FlagsUnguardedHookDerefInHotPath) {
  EXPECT_TRUE(hasRule(
      lintSource("src/gpusim/x.cpp", "void f() { faults->onTelemetry(r); }\n"),
      "fault-hook-guard"));
  // Case-insensitive over the identifier, and a guard two lines up is too
  // far away to audit at a glance.
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp",
                 "if (myFaultHook != nullptr) {\n"
                 "  prepare();\n"
                 "  myFaultHook->onActuate(c, req, cur);\n"
                 "}\n"),
      "fault-hook-guard"));
}

TEST(LintFaultHookGuard, AcceptsGuardedIdiomsAndColdPaths) {
  EXPECT_FALSE(hasRule(
      lintSource("src/gpusim/x.cpp",
                 "if (faults != nullptr) faults->onTelemetry(r);\n"),
      "fault-hook-guard"));
  EXPECT_FALSE(hasRule(
      lintSource("src/gpusim/x.cpp",
                 "l = faults != nullptr ? faults->onActuate(i, q, c)\n"
                 "                      : q;\n"),
      "fault-hook-guard"));
  // Preceding-line guard.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "if (fault_hook != nullptr)\n"
                 "  fault_hook->onTelemetry(r);\n"),
      "fault-hook-guard"));
  // Outside the hot-path dirs the injector may be dereferenced freely.
  EXPECT_FALSE(hasRule(
      lintSource("src/sched/fleet.cpp", "injector_faults->onTelemetry(r);\n"),
      "fault-hook-guard"));
  // Member access on a value (no '->') is not a hook dereference.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "if (fault.empty()) return;\n"),
      "fault-hook-guard"));
}

// --- c-style-float-cast ----------------------------------------------------

TEST(LintFloatCast, FlagsCStyleCasts) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "float f(int v) { return (float)v; }\n"),
      "c-style-float-cast"));
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "double g(long n) { return (double)n; }\n"),
      "c-style-float-cast"));
}

TEST(LintFloatCast, AllowsDeclarationsAndStaticCast) {
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "double g(long n) { return static_cast<double>(n); }\n"),
      "c-style-float-cast"));
  // `(double)` followed by nothing castable — e.g. a parameter list — is
  // not a cast.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp", "void h(double);\n"), "c-style-float-cast"));
}

// --- suppression comments --------------------------------------------------

TEST(LintSuppression, SameLineCommentSuppresses) {
  const auto fs = lintSource(
      "src/core/x.cpp",
      "void f() { abort(); }  // ssm-lint: allow(raw-assert)\n");
  EXPECT_FALSE(hasRule(fs, "raw-assert"));
}

TEST(LintSuppression, PrecedingLineCommentSuppresses) {
  const auto fs = lintSource("src/core/x.cpp",
                             "// ssm-lint: allow(raw-assert)\n"
                             "void f() { abort(); }\n");
  EXPECT_FALSE(hasRule(fs, "raw-assert"));
}

TEST(LintSuppression, SuppressionIsRuleSpecific) {
  // Allowing one rule must not hide a different rule on the same line.
  const auto fs = lintSource(
      "src/core/x.cpp",
      "void f() { abort(); }  // ssm-lint: allow(nondeterminism)\n");
  EXPECT_TRUE(hasRule(fs, "raw-assert"));
}

// --- allowlist parsing -----------------------------------------------------

TEST(LintAllowlist, ParsesEntriesAndSkipsComments) {
  const auto allow = parseAllowlist(
      "# comment\n"
      "\n"
      "hot-path-io src/core/ssm_io.\n"
      "* tools/vendored/\n");
  ASSERT_EQ(allow.size(), 2u);
  EXPECT_EQ(allow[0].rule, "hot-path-io");
  EXPECT_EQ(allow[0].path_prefix, "src/core/ssm_io.");
  EXPECT_EQ(allow[1].rule, "*");
}

TEST(LintAllowlist, RejectsUnknownRulesAndMalformedLines) {
  EXPECT_THROW(static_cast<void>(parseAllowlist("no-such-rule src/\n")),
               AllowlistError);
  EXPECT_THROW(static_cast<void>(parseAllowlist("just-one-token\n")),
               AllowlistError);
}

TEST(LintAllowlist, WildcardRuleWaivesEverythingUnderPrefix) {
  const auto allow = parseAllowlist("* src/vendored/\n");
  const auto fs = lintSource("src/vendored/x.cpp",
                             "void f() { abort(); rand(); }\n", allow);
  EXPECT_TRUE(fs.empty());
}

// --- output format ---------------------------------------------------------

TEST(LintFormat, GccStyleDiagnostic) {
  const Finding f{"src/core/x.cpp", 12, "raw-assert", "use SSM_CHECK"};
  const auto s = formatFinding(f);
  EXPECT_EQ(s.substr(0, std::string("src/core/x.cpp:12: warning:").size()),
            "src/core/x.cpp:12: warning:");
  EXPECT_NE(s.find("[raw-assert]"), std::string::npos);
}

TEST(LintEngine, LineNumbersSurviveCommentsAndStrings) {
  // The lexer must keep line numbers: the violation sits on line 4, after a
  // block comment containing decoys and a string containing "rand()".
  const auto fs = lintSource("src/core/x.cpp",
                             "/* rand()\n"
                             "   abort() */\n"
                             "const char* s = \"time(nullptr)\";\n"
                             "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "nondeterminism");
  EXPECT_EQ(fs[0].line, 4u);
}

TEST(LintEngine, RawStringsAndWaiverTagsInStringsAreInert) {
  // A raw string spanning lines must not swallow following code, and the
  // waiver tag inside a string literal must not register as a waiver (it
  // would otherwise surface as stale).
  const auto fs = lintSource("src/core/x.cpp",
                             "const char* r = R\"(rand()\n"
                             "abort())\";\n"
                             "const char* t = \"// ssm-lint: allow(raw-assert)\";\n"
                             "int x = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "nondeterminism");
  EXPECT_EQ(fs[0].line, 4u);
}

// --- hot-path-alloc: token-accurate extensions -----------------------------

TEST(LintHotPathAlloc, FlagsMultiLineAllocationCalls) {
  // The token stream does not care where the line breaks fall.
  EXPECT_TRUE(hasRule(lintSource("src/core/ssm_governor.cpp",
                                 "auto g = std::make_unique<\n"
                                 "    Governor>(\n"
                                 "    model, cfg);\n"),
                      "hot-path-alloc"));
  EXPECT_TRUE(hasRule(lintSource("src/nn/packed_mlp.hpp",
                                 "auto* p =\n    new double[8];\n"),
                      "hot-path-alloc"));
}

TEST(LintHotPathAlloc, FlagsByValueContainerParamsAndStdFunction) {
  EXPECT_TRUE(hasRule(
      lintSource("src/nn/packed_mlp.hpp",
                 "void setWeights(std::vector<double> w);\n"),
      "hot-path-alloc"));
  EXPECT_TRUE(hasRule(
      lintSource("src/core/ssm_governor.cpp",
                 "void onDecision(std::function<void(int)> cb);\n"),
      "hot-path-alloc"));
  // Temporaries inside a call allocate too.
  EXPECT_TRUE(hasRule(
      lintSource("src/core/ssm_governor.cpp", "emit(std::string(name));\n"),
      "hot-path-alloc"));
}

TEST(LintHotPathAlloc, AllowsReferencePointerAndNestedTypeUses) {
  EXPECT_FALSE(hasRule(
      lintSource("src/nn/packed_mlp.hpp",
                 "void setWeights(const std::vector<double>& w);\n"
                 "void take(std::vector<double>&& w);\n"
                 "void scan(const std::vector<std::vector<int>>& m);\n"
                 "std::size_t at(std::vector<double>::size_type i);\n"
                 "void fill(std::vector<double>* out);\n"),
      "hot-path-alloc"));
  // Member declarations at class scope (paren depth 0) are preallocation,
  // not per-decision allocation.
  EXPECT_FALSE(hasRule(
      lintSource("src/nn/packed_mlp.hpp", "std::vector<double> scratch_;\n"),
      "hot-path-alloc"));
}

// --- unordered-iteration ---------------------------------------------------

TEST(LintUnorderedIteration, FlagsRangeForFeedingASink) {
  const char* body =
      "#include <unordered_map>\n"
      "void dump(std::ostream& os) {\n"
      "  std::unordered_map<int, double> counts;\n"
      "  for (const auto& [k, v] : counts) os << k << v;\n"
      "}\n";
  EXPECT_TRUE(hasRule(lintSource("src/core/x.cpp", body),
                      "unordered-iteration"));
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp",
                 "std::unordered_set<int> seen_;\n"
                 "void f(std::vector<int>& out) {\n"
                 "  for (int v : seen_) out.push_back(v);\n"
                 "}\n"),
      "unordered-iteration"));
}

TEST(LintUnorderedIteration, AllowsOrderedContainersSinkFreeBodiesAndTests) {
  // Ordered containers iterate deterministically.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "std::map<int, double> counts;\n"
                 "void dump(std::ostream& os) {\n"
                 "  for (const auto& [k, v] : counts) os << k;\n"
                 "}\n"),
      "unordered-iteration"));
  // Reading without emitting (e.g. a max-reduce) is order-insensitive.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "std::unordered_map<int, double> counts;\n"
                 "double maxOf() {\n"
                 "  double m = 0.0;\n"
                 "  for (const auto& [k, v] : counts) m = std::max(m, v);\n"
                 "  return m;\n"
                 "}\n"),
      "unordered-iteration"));
  // Tests may iterate however they like.
  EXPECT_FALSE(hasRule(
      lintSource("tests/t.cpp",
                 "std::unordered_map<int, int> m;\n"
                 "void f(std::ostream& os) {\n"
                 "  for (auto& kv : m) os << kv.first;\n"
                 "}\n"),
      "unordered-iteration"));
}

// --- float-equality --------------------------------------------------------

TEST(LintFloatEquality, FlagsComparisonAgainstNonZeroLiteral) {
  EXPECT_TRUE(hasRule(
      lintSource("src/core/x.cpp", "bool b = loss == 0.25;\n"),
      "float-equality"));
  EXPECT_TRUE(hasRule(
      lintSource("tools/t.cpp", "if (1.5f != scale) { fix(); }\n"),
      "float-equality"));
}

TEST(LintFloatEquality, AllowsZeroLiteralsIntegersAndTests) {
  // Comparison against exact zero is the sanctioned mask/sentinel idiom.
  EXPECT_FALSE(hasRule(
      lintSource("src/core/x.cpp",
                 "bool a = mask == 0.0;\nbool b = w != 0.0f;\n"),
      "float-equality"));
  // Integer literals are exact.
  EXPECT_FALSE(hasRule(lintSource("src/core/x.cpp", "bool c = n == 4;\n"),
                       "float-equality"));
  // Pinned-golden tests compare replayed doubles exactly by design.
  EXPECT_FALSE(hasRule(
      lintSource("tests/t.cpp", "EXPECT_TRUE(x == 0.25);\n"),
      "float-equality"));
}

// --- layer-order / include-cycle (repo-level) ------------------------------

constexpr std::string_view kTwoLayers =
    "layer foundation\nsrc/common/\nlayer control\nsrc/core/\n";

TEST(LintLayering, RejectsUpwardIncludeAndAcceptsDownward) {
  // Downward (control -> foundation) is the designed direction.
  RepoLintOptions opts;
  opts.layers_text = std::string(kTwoLayers);
  const auto ok = lintRepo(
      {{"src/common/a.hpp", "#pragma once\n"},
       {"src/core/b.hpp", "#pragma once\n#include \"common/a.hpp\"\n"}},
      opts);
  EXPECT_FALSE(hasRule(ok.findings, "layer-order"));

  // Upward (foundation -> control) is rejected, naming both layers.
  const auto bad = lintRepo(
      {{"src/common/a.hpp", "#pragma once\n#include \"core/b.hpp\"\n"},
       {"src/core/b.hpp", "#pragma once\n"}},
      opts);
  ASSERT_TRUE(hasRule(bad.findings, "layer-order"));
  const auto it = std::find_if(
      bad.findings.begin(), bad.findings.end(),
      [](const Finding& f) { return f.rule == "layer-order"; });
  EXPECT_EQ(it->path, "src/common/a.hpp");
  EXPECT_EQ(it->line, 2u);
  EXPECT_NE(it->message.find("foundation"), std::string::npos);
  EXPECT_NE(it->message.find("control"), std::string::npos);
}

TEST(LintLayering, FlagsUncoveredFilesAndUnresolvedIncludes) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kTwoLayers);
  const auto uncovered =
      lintRepo({{"src/orphan/x.hpp", "#pragma once\n"}}, opts);
  EXPECT_TRUE(hasRule(uncovered.findings, "layer-order"));

  const auto unresolved = lintRepo(
      {{"src/core/b.hpp", "#pragma once\n#include \"common/gone.hpp\"\n"}},
      opts);
  EXPECT_TRUE(hasRule(unresolved.findings, "layer-order"));
}

TEST(LintLayering, DetectsIncludeCycles) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  const auto r = lintRepo(
      {{"src/common/a.hpp", "#pragma once\n#include \"common/b.hpp\"\n"},
       {"src/common/b.hpp", "#pragma once\n#include \"common/c.hpp\"\n"},
       {"src/common/c.hpp", "#pragma once\n#include \"common/a.hpp\"\n"}},
      opts);
  ASSERT_TRUE(hasRule(r.findings, "include-cycle"));
  const auto it = std::find_if(
      r.findings.begin(), r.findings.end(),
      [](const Finding& f) { return f.rule == "include-cycle"; });
  // The report spells out the whole chain.
  EXPECT_NE(it->message.find("src/common/a.hpp"), std::string::npos);
  EXPECT_NE(it->message.find("src/common/b.hpp"), std::string::npos);
  EXPECT_NE(it->message.find("src/common/c.hpp"), std::string::npos);
}

TEST(LintLayering, MalformedLayerMapThrows) {
  RepoLintOptions opts;
  opts.layers_text = "src/common/\n";  // prefix before any layer line
  EXPECT_THROW(static_cast<void>(lintRepo({}, opts)), LayerMapError);
  opts.layers_text = "layer a\nsrc/\nlayer a\n";
  EXPECT_THROW(static_cast<void>(lintRepo({}, opts)), LayerMapError);
}

// --- allowlist/waiver hygiene (repo-level) ---------------------------------

TEST(LintHygiene, StaleAllowlistEntryIsAHardError) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  opts.allowlist_text = "# comment\ngpu-stepping src/nothing/\n";
  const auto r = lintRepo({{"src/a.cpp", "int x = 0;\n"}}, opts);
  ASSERT_TRUE(hasRule(r.findings, "stale-allowlist"));
  ASSERT_EQ(r.stale_allowlist_lines.size(), 1u);
  EXPECT_EQ(r.stale_allowlist_lines[0], 2u);  // 1-based, after the comment
  // The finding points at the allowlist file itself.
  const auto it = std::find_if(
      r.findings.begin(), r.findings.end(),
      [](const Finding& f) { return f.rule == "stale-allowlist"; });
  EXPECT_EQ(it->path, opts.allowlist_path);
  EXPECT_EQ(it->line, 2u);
}

TEST(LintHygiene, UsedAllowlistEntryIsNotStale) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  opts.allowlist_text = "nondeterminism src/a.cpp\n";
  const auto r = lintRepo({{"src/a.cpp", "int x = rand();\n"}}, opts);
  EXPECT_FALSE(hasRule(r.findings, "stale-allowlist"));
  EXPECT_FALSE(hasRule(r.findings, "nondeterminism"));
}

TEST(LintHygiene, StaleInlineWaiverIsAHardError) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  const auto r = lintRepo(
      {{"src/a.cpp", "int x = 0;  // ssm-lint: allow(raw-assert)\n"}}, opts);
  ASSERT_TRUE(hasRule(r.findings, "stale-waiver"));
  ASSERT_EQ(r.stale_waivers.size(), 1u);
  EXPECT_EQ(r.stale_waivers[0].path, "src/a.cpp");
  EXPECT_EQ(r.stale_waivers[0].line, 1u);
  ASSERT_EQ(r.stale_waivers[0].rules.size(), 1u);
  EXPECT_EQ(r.stale_waivers[0].rules[0], "raw-assert");
}

TEST(LintHygiene, UsedWaiverIsNotStaleAndShadowsTheAllowlist) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  // The inline waiver suppresses the finding, so the allowlist entry for the
  // same rule+file never fires — and is therefore reported stale.
  opts.allowlist_text = "nondeterminism src/a.cpp\n";
  const auto r = lintRepo(
      {{"src/a.cpp", "int x = rand();  // ssm-lint: allow(nondeterminism)\n"}},
      opts);
  EXPECT_FALSE(hasRule(r.findings, "nondeterminism"));
  EXPECT_FALSE(hasRule(r.findings, "stale-waiver"));
  EXPECT_TRUE(hasRule(r.findings, "stale-allowlist"));
}

TEST(LintHygiene, SingleFileModeExemptsRepoLevelWaiversOnly) {
  // lintSource cannot run the graph passes, so a waiver naming a repo-level
  // rule is not reported stale there...
  EXPECT_FALSE(hasRule(
      lintSource("src/a.cpp", "int x = 0;  // ssm-lint: allow(layer-order)\n"),
      "stale-waiver"));
  // ...but a per-file-rule waiver that suppresses nothing still is.
  EXPECT_TRUE(hasRule(
      lintSource("src/a.cpp", "int x = 0;  // ssm-lint: allow(raw-assert)\n"),
      "stale-waiver"));
}

// --- fixers ----------------------------------------------------------------

TEST(LintFixers, RemoveAllowlistLinesDropsExactlyTheGivenLines) {
  const std::string text = "# keep\nrule-a src/\nrule-b src/\n";
  EXPECT_EQ(removeAllowlistLines(text, {2}), "# keep\nrule-b src/\n");
  EXPECT_EQ(removeAllowlistLines(text, {2, 3}), "# keep\n");
  EXPECT_EQ(removeAllowlistLines(text, {}), text);
}

TEST(LintFixers, RemoveStaleWaiverDropsWholeCommentOrRewritesArgList) {
  // Whole-line comment: the line disappears entirely.
  const StaleWaiver all{"src/a.cpp", 1, {"raw-assert"}};
  const auto r1 =
      removeStaleWaiver("// ssm-lint: allow(raw-assert)\nint x = 0;\n", all);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, "int x = 0;\n");

  // Trailing comment: only the comment goes, code stays.
  const auto r2 = removeStaleWaiver(
      "int x = 0;  // ssm-lint: allow(raw-assert)\n", all);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, "int x = 0;\n");

  // Partial staleness: the arg list is rewritten with the survivors.
  const StaleWaiver partial{"src/a.cpp", 1, {"raw-assert"}};
  const auto r3 = removeStaleWaiver(
      "int x = rand();  // ssm-lint: allow(raw-assert, nondeterminism)\n",
      partial);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(*r3, "int x = rand();  // ssm-lint: allow(nondeterminism)\n");

  // Block-comment waivers cannot be rewritten mechanically.
  const auto r4 = removeStaleWaiver(
      "int x = 0;  /* ssm-lint: allow(raw-assert) */\n", all);
  EXPECT_FALSE(r4.has_value());
}

// --- deterministic ordering ------------------------------------------------

TEST(LintOrdering, RepoFindingsAreSortedByPathLineRule) {
  RepoLintOptions opts;
  opts.layers_text = std::string(kFlatLayers);
  // Files handed over in reverse order; findings must come back sorted.
  const auto r = lintRepo(
      {{"src/z.cpp", "int a = rand();\nint b = rand();\n"},
       {"src/a.cpp", "void f() { abort(); }\n"}},
      opts);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].path, "src/a.cpp");
  EXPECT_EQ(r.findings[1].path, "src/z.cpp");
  EXPECT_EQ(r.findings[1].line, 1u);
  EXPECT_EQ(r.findings[2].path, "src/z.cpp");
  EXPECT_EQ(r.findings[2].line, 2u);
}

// --- SARIF -----------------------------------------------------------------

TEST(LintSarif, EmitsRuleCatalogAndPhysicalLocations) {
  const std::vector<Finding> fs = {
      {"src/a.cpp", 7, "raw-assert", "message with \"quotes\" and \\slash"}};
  const std::string j = toSarif(fs);
  EXPECT_NE(j.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"ssm_lint\""), std::string::npos);
  EXPECT_NE(j.find("\"ruleId\": \"raw-assert\""), std::string::npos);
  EXPECT_NE(j.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(j.find("\"startLine\": 7"), std::string::npos);
  // Escaping round-trips quotes and backslashes.
  EXPECT_NE(j.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(j.find("\\\\slash"), std::string::npos);
  // Every registered rule is described in tool.driver.rules.
  for (const auto& r : ruleCatalog())
    EXPECT_NE(j.find("\"id\": \"" + std::string(r.id) + "\""),
              std::string::npos)
        << r.id;
}

TEST(LintSarif, EmptyFindingsStillProduceAValidRun) {
  const std::string j = toSarif({});
  EXPECT_NE(j.find("\"results\": [\n      ]"), std::string::npos);
}

}  // namespace
}  // namespace ssm::lint
