// Error-path tests for the contract layer (src/common/check.hpp) and for
// DataError propagation through the two stream parsers (profile_io, ssm_io).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/check.hpp"
#include "core/ssm_io.hpp"
#include "workloads/profile_io.hpp"

namespace ssm {
namespace {

TEST(ContractError, MessageCarriesFileLineAndExpression) {
  try {
    SSM_CHECK(1 + 1 == 3, "arithmetic is broken");
    FAIL() << "SSM_CHECK did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
    // A line number follows the file name as ":<digits>".
    const auto pos = what.find("test_check.cpp:");
    ASSERT_NE(pos, std::string::npos) << what;
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(
        what[pos + std::string("test_check.cpp:").size()])))
        << what;
  }
}

TEST(ContractError, MessageWithoutContextStillNamesExpression) {
  try {
    SSM_CHECK(false);
    FAIL() << "SSM_CHECK did not throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

TEST(ContractError, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(SSM_CHECK(2 > 1, "never fires"));
}

TEST(ContractError, IsALogicErrorAndDataErrorIsARuntimeError) {
  // Callers catch std::logic_error for misuse and std::runtime_error for
  // bad input; the hierarchy is part of the API.
  EXPECT_THROW(SSM_CHECK(false), std::logic_error);
  EXPECT_THROW(throw DataError("bad input"), std::runtime_error);
}

TEST(AuditCheck, CompiledFormMatchesBuildFlag) {
#if defined(SSMDVFS_AUDIT)
  EXPECT_TRUE(kAuditChecksEnabled);
  EXPECT_THROW(SSM_AUDIT_CHECK(false, "live audit"), ContractError);
#else
  EXPECT_FALSE(kAuditChecksEnabled);
  // Compiled out: expression must not be evaluated.
  bool evaluated = false;
  SSM_AUDIT_CHECK((evaluated = true));
  EXPECT_FALSE(evaluated);
#endif
}

TEST(DataErrorPropagation, ProfileParserRejectsMalformedKernelHeader) {
  std::istringstream is("kernel\n");
  EXPECT_THROW(static_cast<void>(parseProfiles(is)), DataError);
}

TEST(DataErrorPropagation, ProfileParserRejectsGarbageDirective) {
  std::istringstream is(
      "kernel k custom\n"
      "warps_per_cluster 8\n"
      "no_such_directive 1\n"
      "end\n");
  try {
    static_cast<void>(parseProfiles(is));
    FAIL() << "parseProfiles accepted an unknown directive";
  } catch (const DataError& e) {
    // The parser reports a line number so users can fix their file.
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
        << e.what();
  }
}

TEST(DataErrorPropagation, ModelDeserializeRejectsBadMagic) {
  std::istringstream is("definitely-not-a-model\n");
  EXPECT_THROW(static_cast<void>(deserializeModel(is)), DataError);
}

TEST(DataErrorPropagation, ModelDeserializeRejectsTruncatedStream) {
  // A valid magic line with nothing after it must fail cleanly, not crash.
  std::istringstream is("ssmdvfs-model-v1\n");
  EXPECT_THROW(static_cast<void>(deserializeModel(is)), DataError);
}

TEST(DataErrorPropagation, ProfileRoundTripSurvivesWrite) {
  // Sanity: the happy path still works after all the error-path hardening.
  std::istringstream is(
      "kernel k custom\n"
      "warps_per_cluster 8\n"
      "phase_loops 2\n"
      "phase ialu=0.40 falu=0.20 sfu=0.00 load=0.20 store=0.05 shared=0.05 "
      "branch=0.10 l1=0.80 l2=0.50 ilp=4 div=0.10 dep=0.25 insts=1000\n"
      "end\n");
  const auto kernels = parseProfiles(is);
  ASSERT_EQ(kernels.size(), 1u);
  std::ostringstream os;
  writeProfiles(kernels, os);
  std::istringstream back(os.str());
  const auto again = parseProfiles(back);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].name, kernels[0].name);
}

}  // namespace
}  // namespace ssm
