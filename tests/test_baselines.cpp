// Tests for the adapted baselines: PCSTALL (analytical) and F-LEMMA (RL).
#include <gtest/gtest.h>

#include "baselines/flemma.hpp"
#include "baselines/ondemand.hpp"
#include "baselines/oracle.hpp"
#include "baselines/pcstall.hpp"
#include "gpusim/runner.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

EpochObservation makeObs(double freq_mhz, double stall_mem_frac,
                         double noready_frac, std::int64_t insts = 20000,
                         int level = 5) {
  EpochObservation obs;
  const double cycles = 10000.0 * freq_mhz / 1000.0;
  obs.counters.set(CounterId::kFreqMhz, freq_mhz);
  obs.counters.set(CounterId::kCyclesElapsed, cycles);
  obs.counters.set(CounterId::kStallMemFrac, stall_mem_frac);
  obs.counters.set(CounterId::kStallNoReadyCycles, noready_frac * cycles);
  obs.counters.set(CounterId::kIpc, 1.5);
  obs.counters.set(CounterId::kPowerClusterW, 6.0);
  obs.instructions = insts;
  obs.level = level;
  obs.power_w = 6.0;
  return obs;
}

// ---- PCSTALL ---------------------------------------------------------------

/// Drives the governor against a synthetic "environment": throughput as a
/// function of frequency with memory fraction `m_true`. Returns the level
/// sequence the governor produced.
std::vector<int> drivePcstall(PcstallGovernor& gov, double m_true,
                              int epochs) {
  const VfTable vf = VfTable::titanX();
  const double f0 = vf.at(5).freq_mhz;
  std::vector<int> levels;
  int level = 5;  // programs start at the default point
  for (int e = 0; e < epochs; ++e) {
    const double f = vf.at(level).freq_mhz;
    const double rel_time = (1.0 - m_true) * (f0 / f) + m_true;
    const auto insts = static_cast<std::int64_t>(20000.0 / rel_time);
    auto obs = makeObs(f, 0.0, 0.0, insts, level);
    level = gov.decide(obs);
    levels.push_back(level);
  }
  return levels;
}

TEST(Pcstall, ValidatesConfig) {
  PcstallConfig bad;
  bad.probe_period = 1;
  EXPECT_THROW(PcstallGovernor(VfTable::titanX(), bad), ContractError);
  bad = PcstallConfig{};
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(PcstallGovernor(VfTable::titanX(), bad), ContractError);
}

TEST(Pcstall, StartsFullyConservative) {
  // With m = 0 (everything scales with f), loss(level) = f0/f_l - 1:
  // 70.6%, 49.4%, 32.7%, 19.5%, 5.9%, 0%. The controller targets
  // preset * (1 - guard_band) with a 20% guard band: a 5% preset (eff. 4%)
  // admits only the default; a 25% preset (eff. 20%) admits level 3.
  PcstallConfig tight;
  tight.loss_preset = 0.05;
  PcstallGovernor g1(VfTable::titanX(), tight);
  EXPECT_EQ(g1.decide(makeObs(1165.0, 0.0, 0.0)), 5);
  PcstallConfig loose;
  loose.loss_preset = 0.25;
  PcstallGovernor g2(VfTable::titanX(), loose);
  EXPECT_EQ(g2.decide(makeObs(1165.0, 0.0, 0.0)), 3);
}

TEST(Pcstall, LearnsMemoryBoundnessFromObservedDeltas) {
  PcstallConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.probe_period = 3;  // characterise faster than the (slow) default
  PcstallGovernor gov(VfTable::titanX(), cfg);
  // Deliberately long horizon: the heavily-smoothed estimator is slow by
  // design (that is what keeps the baseline conservative on ~300 µs
  // programs), but given enough evidence it must descend.
  const auto levels = drivePcstall(gov, /*m_true=*/0.95, /*epochs=*/150);
  double tail_mean = 0.0;
  for (std::size_t e = levels.size() - 30; e < levels.size(); ++e)
    tail_mean += levels[e];
  tail_mean /= 30.0;
  EXPECT_LT(tail_mean, 3.0);
  EXPECT_GT(gov.memFraction(), 0.5);
}

TEST(Pcstall, ComputeBoundStaysHighDespiteProbes) {
  PcstallConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.probe_period = 4;
  PcstallGovernor gov(VfTable::titanX(), cfg);
  const auto levels = drivePcstall(gov, /*m_true=*/0.0, /*epochs=*/40);
  // Probes dip one level for a single epoch; the estimate must keep the
  // governor at level 4+ (5.9% loss fits a 10% preset at m = 0).
  for (std::size_t e = 0; e < levels.size(); ++e)
    EXPECT_GE(levels[e], 3) << "epoch " << e;
  int high = 0;
  for (int l : levels) high += l >= 4;
  EXPECT_GE(high, static_cast<int>(levels.size()) - 12);
  EXPECT_LT(gov.memFraction(), 0.3);
}

TEST(Pcstall, ProbesExactlyWhenEvidenceIsStale) {
  PcstallConfig cfg;
  cfg.loss_preset = 0.01;  // pins the choice at the default level
  cfg.probe_period = 5;
  PcstallGovernor gov(VfTable::titanX(), cfg);
  std::vector<int> levels;
  for (int e = 0; e < 7; ++e)
    levels.push_back(gov.decide(makeObs(1165.0, 0.0, 0.0, 20000, 5)));
  // Stale after 5 constant-frequency epochs: one probe at level 4.
  int probes = 0;
  for (int l : levels) probes += l == 4;
  EXPECT_EQ(probes, 1);
  EXPECT_EQ(levels.back(), 5);  // not stuck on the probe
}

TEST(Pcstall, ResetRestoresConservatism) {
  PcstallConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.probe_period = 4;
  PcstallGovernor gov(VfTable::titanX(), cfg);
  drivePcstall(gov, 0.95, 30);
  ASSERT_GT(gov.memFraction(), 0.5);
  gov.reset();
  EXPECT_DOUBLE_EQ(gov.memFraction(), 0.0);
}

TEST(Pcstall, DoneClusterParksAtMin) {
  PcstallGovernor gov(VfTable::titanX(), PcstallConfig{});
  EpochObservation obs = makeObs(1165.0, 0.0, 0.0);
  obs.cluster_done = true;
  EXPECT_EQ(gov.decide(obs), 0);
}

TEST(Pcstall, FullRunKeepsLatencyNearPreset) {
  GpuConfig gpu;  // full 24-cluster chip: uncore share stays realistic
  Gpu g(gpu, VfTable::titanX(), workloadByName("spmv"), 5,
        ChipPowerModel(gpu.num_clusters));
  const RunResult base = runBaseline(g);
  PcstallConfig cfg;
  cfg.loss_preset = 0.10;
  const PcstallFactory factory(VfTable::titanX(), cfg);
  const RunResult run = runWithGovernor(g, factory, "pcstall");
  const double latency =
      static_cast<double>(run.exec_time_ns) / base.exec_time_ns;
  EXPECT_LT(latency, 1.12);  // conservative: well inside the preset
  EXPECT_LE(run.energy_j, base.energy_j * 1.01);
}

// ---- F-LEMMA ---------------------------------------------------------------

TEST(Flemma, ActionsAreValidAndEventuallyGreedy) {
  FlemmaConfig cfg;
  cfg.update_period = 4;
  FlemmaGovernor gov(VfTable::titanX(), cfg, Rng(1));
  for (int e = 0; e < 100; ++e) {
    const int a = gov.decide(makeObs(1165.0, 0.4, 0.2));
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 6);
  }
  EXPECT_GT(gov.updatesDone(), 10);
  EXPECT_LT(gov.epsilon(), cfg.epsilon0);
}

TEST(Flemma, ExplorationDecaysOnlyOnUpdates) {
  FlemmaConfig cfg;
  cfg.update_period = 1000;  // never updates in this test
  FlemmaGovernor gov(VfTable::titanX(), cfg, Rng(2));
  for (int e = 0; e < 50; ++e) gov.decide(makeObs(1165.0, 0.4, 0.2));
  EXPECT_DOUBLE_EQ(gov.epsilon(), cfg.epsilon0);
  EXPECT_EQ(gov.updatesDone(), 0);
}

TEST(Flemma, ResetKeepsLearnedWeightsButClearsEpisode) {
  FlemmaConfig cfg;
  cfg.update_period = 2;
  FlemmaGovernor gov(VfTable::titanX(), cfg, Rng(3));
  for (int e = 0; e < 20; ++e) gov.decide(makeObs(1165.0, 0.4, 0.2));
  const int updates = gov.updatesDone();
  EXPECT_GT(updates, 0);
  gov.reset();
  EXPECT_EQ(gov.updatesDone(), updates);       // knowledge survives
  EXPECT_DOUBLE_EQ(gov.epsilon(), cfg.epsilon0);  // exploration restarts
}

TEST(Flemma, DeterministicGivenSeed) {
  FlemmaConfig cfg;
  FlemmaGovernor a(VfTable::titanX(), cfg, Rng(7));
  FlemmaGovernor b(VfTable::titanX(), cfg, Rng(7));
  for (int e = 0; e < 50; ++e) {
    const auto obs = makeObs(1165.0, 0.3, 0.1, 15000 + e);
    EXPECT_EQ(a.decide(obs), b.decide(obs));
  }
}

TEST(Flemma, DoneClusterParksAtMin) {
  FlemmaGovernor gov(VfTable::titanX(), FlemmaConfig{}, Rng(4));
  EpochObservation obs = makeObs(1165.0, 0.0, 0.0);
  obs.cluster_done = true;
  EXPECT_EQ(gov.decide(obs), 0);
}

TEST(Flemma, ShortProgramSuffersExplorationOverhead) {
  // The paper's §V.C observation: on short programs, F-LEMMA's warm-up
  // exploration costs latency well beyond the preset.
  GpuConfig gpu;
  gpu.num_clusters = 4;
  Gpu g(gpu, VfTable::titanX(), workloadByName("sgemm"), 8,
        ChipPowerModel(4));
  const RunResult base = runBaseline(g);
  FlemmaConfig cfg;
  cfg.loss_preset = 0.10;
  const FlemmaFactory factory(VfTable::titanX(), cfg);
  const RunResult run = runWithGovernor(g, factory, "flemma");
  const double latency =
      static_cast<double>(run.exec_time_ns) / base.exec_time_ns;
  EXPECT_GT(latency, 1.10);  // clearly beyond the 10% preset
}

// ---- Ondemand ---------------------------------------------------------------

EpochObservation utilObs(double issue_util, int level) {
  EpochObservation obs;
  obs.counters.set(CounterId::kIssueUtil, issue_util);
  obs.level = level;
  obs.instructions = 10000;
  return obs;
}

TEST(Ondemand, RejectsInvertedThresholds) {
  OndemandConfig bad;
  bad.up_threshold = 0.3;
  bad.down_threshold = 0.5;
  EXPECT_THROW(OndemandGovernor(VfTable::titanX(), bad), ContractError);
}

TEST(Ondemand, JumpsToMaxOnSustainedHighUtil) {
  OndemandConfig cfg;
  cfg.hold_epochs = 2;
  OndemandGovernor gov(VfTable::titanX(), cfg);
  EXPECT_EQ(gov.decide(utilObs(0.95, 2)), 2);  // first high epoch: hold
  EXPECT_EQ(gov.decide(utilObs(0.95, 2)), 5);  // second: jump to max
}

TEST(Ondemand, StepsDownOnSustainedLowUtil) {
  OndemandConfig cfg;
  cfg.hold_epochs = 2;
  OndemandGovernor gov(VfTable::titanX(), cfg);
  EXPECT_EQ(gov.decide(utilObs(0.10, 5)), 5);
  EXPECT_EQ(gov.decide(utilObs(0.10, 5)), 4);  // one step, not a jump
  EXPECT_EQ(gov.decide(utilObs(0.10, 0)), 0);  // clamped at the bottom
}

TEST(Ondemand, DeadBandHolds) {
  OndemandGovernor gov(VfTable::titanX(), OndemandConfig{});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(gov.decide(utilObs(0.6, 3)), 3);
}

TEST(Ondemand, MixedSignalResetsStreaks) {
  OndemandConfig cfg;
  cfg.hold_epochs = 2;
  OndemandGovernor gov(VfTable::titanX(), cfg);
  gov.decide(utilObs(0.95, 3));  // up streak 1
  gov.decide(utilObs(0.60, 3));  // dead band: reset
  EXPECT_EQ(gov.decide(utilObs(0.95, 3)), 3);  // streak restarted
}

// ---- Oracle static ----------------------------------------------------------

TEST(Oracle, EvaluatesEveryLevelAndPicksBestEdp) {
  GpuConfig gpu;
  gpu.num_clusters = 2;
  Gpu g(gpu, VfTable::titanX(), workloadByName("spmv"), 3,
        ChipPowerModel(2));
  const OracleResult res = findBestStaticLevel(g, OracleObjective::kMinEdp);
  ASSERT_EQ(res.all.size(), 6u);
  for (const auto& r : res.all) EXPECT_GT(r.exec_time_ns, 0);
  for (const auto& r : res.all)
    EXPECT_GE(r.edp, res.run.edp);  // the winner is minimal
  // Memory-bound: a low level must beat the default on EDP.
  EXPECT_LT(res.best_level, 5);
}

TEST(Oracle, LatencyConstrainedFallsBackToDefault) {
  GpuConfig gpu;
  gpu.num_clusters = 2;
  Gpu g(gpu, VfTable::titanX(), workloadByName("gemm"), 3,
        ChipPowerModel(2));
  // A compute-bound kernel with a 1.0 latency bound: only the default fits.
  const OracleResult res = findBestStaticLevel(
      g, OracleObjective::kMinEnergyUnderLatency, /*latency_bound=*/1.0001);
  EXPECT_EQ(res.best_level, 5);
}

TEST(Oracle, RejectsImpossibleBound) {
  GpuConfig gpu;
  gpu.num_clusters = 2;
  Gpu g(gpu, VfTable::titanX(), workloadByName("gemm"), 3,
        ChipPowerModel(2));
  EXPECT_THROW(static_cast<void>(findBestStaticLevel(
                   g, OracleObjective::kMinEnergyUnderLatency, 0.5)),
               ContractError);
}

TEST(Flemma, RewardLearningMovesPolicyOverLongHorizon) {
  // Over many epochs of a stationary memory-bound state, the learned
  // policy (greedy part) should come to prefer lower levels than default.
  FlemmaConfig cfg;
  cfg.update_period = 4;
  cfg.epsilon0 = 0.3;
  FlemmaGovernor gov(VfTable::titanX(), cfg, Rng(9));
  // Memory-bound: instructions independent of level; power lower at lower
  // levels. Simulate the environment loop.
  int level = 5;
  int low_actions_late = 0;
  for (int e = 0; e < 400; ++e) {
    const double power = 2.0 + 0.9 * level;
    auto obs = makeObs(VfTable::titanX().at(level).freq_mhz, 0.8, 0.7,
                       18000, level);
    obs.power_w = power;
    obs.counters.set(CounterId::kPowerClusterW, power);
    level = gov.decide(obs);
    if (e >= 300) low_actions_late += (level <= 2);
  }
  EXPECT_GT(low_actions_late, 50);  // mostly low levels once learned
}

}  // namespace
}  // namespace ssm
