// Tests for the second wave of extensions: the power-cap preset scheduler,
// dataset augmentation utilities, and the JSON writer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/json_writer.hpp"
#include "core/power_cap.hpp"
#include "datagen/augment.hpp"
#include "datagen/generator.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

// ---- JSON writer -----------------------------------------------------------

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(jsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(Json, WritesNestedDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginObject()
      .value("name", "ssmdvfs")
      .value("edp", 0.9125)
      .value("epochs", 42)
      .value("ok", true)
      .beginArray("levels");
  w.value(1.0).value(2.0);
  w.endArray().beginObject("nested").value("k", "v").endObject().endObject();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\"name\":\"ssmdvfs\",\"edp\":0.91249999999999998,"
            "\"epochs\":42,\"ok\":true,\"levels\":[1,2],"
            "\"nested\":{\"k\":\"v\"}}");
}

TEST(Json, ArrayOfObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.beginArray();
  w.beginObject().value("a", 1).endObject();
  w.beginObject().value("a", 2).endObject();
  w.endArray();
  EXPECT_EQ(os.str(), "[{\"a\":1},{\"a\":2}]");
  EXPECT_TRUE(w.complete());
}

TEST(Json, NestingViolationsThrow) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_THROW(w.endObject(), ContractError);          // nothing open
  w.beginObject();
  EXPECT_THROW(w.endArray(), ContractError);           // wrong kind
  EXPECT_THROW(w.value(std::string("x")), ContractError);  // unkeyed in object
  EXPECT_THROW(w.beginArray(), ContractError);         // unkeyed in object
  w.endObject();
  EXPECT_THROW(w.beginObject(), ContractError);        // root already closed
}

// ---- dataset augmentation ----------------------------------------------------

DataPoint mkPoint(const std::string& wl, int level, double loss = 0.1) {
  DataPoint p;
  for (int c = 0; c < kNumCounters; ++c)
    p.counters[static_cast<std::size_t>(c)] = 1.0 + c;
  p.level = level;
  p.perf_loss = loss;
  p.insts_k = 10.0;
  p.workload = wl;
  return p;
}

TEST(Augment, FilterByWorkload) {
  Dataset ds;
  ds.add(mkPoint("a", 0));
  ds.add(mkPoint("b", 1));
  ds.add(mkPoint("a", 2));
  const Dataset kept = filterByWorkload(ds, {"a"}, /*keep=*/true);
  EXPECT_EQ(kept.size(), 2u);
  const Dataset dropped = filterByWorkload(ds, {"a"}, /*keep=*/false);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped.points()[0].workload, "b");
}

TEST(Augment, LeaveWorkloadFoldOutPartitions) {
  Dataset ds;
  for (const char* wl : {"a", "b", "c", "d", "e", "f"})
    for (int i = 0; i < 4; ++i) ds.add(mkPoint(wl, i % 6));
  std::size_t total_held = 0;
  for (int fold = 0; fold < 3; ++fold) {
    const auto [train, held] = leaveWorkloadFoldOut(ds, fold, 3);
    EXPECT_EQ(train.size() + held.size(), ds.size());
    total_held += held.size();
    // A workload is entirely in one side.
    for (const auto& p : held.points())
      for (const auto& q : train.points()) EXPECT_NE(p.workload, q.workload);
  }
  EXPECT_EQ(total_held, ds.size());  // folds cover everything exactly once
  EXPECT_THROW(static_cast<void>(leaveWorkloadFoldOut(ds, 3, 3)),
               ContractError);
}

TEST(Augment, BalanceLabelsEqualizesCounts) {
  Dataset ds;
  for (int i = 0; i < 30; ++i) ds.add(mkPoint("w", 0));
  for (int i = 0; i < 10; ++i) ds.add(mkPoint("w", 1));
  for (int i = 0; i < 20; ++i) ds.add(mkPoint("w", 5));
  const Dataset balanced = balanceLabels(ds, 7);
  const auto counts = labelCounts(balanced, 6);
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[5], 10);
  // Deterministic.
  const Dataset again = balanceLabels(ds, 7);
  ASSERT_EQ(again.size(), balanced.size());
}

TEST(Augment, NoiseChangesCountersNotLabels) {
  Dataset ds;
  ds.add(mkPoint("w", 3, 0.25));
  const Dataset noisy = injectCounterNoise(ds, 0.05, 11);
  ASSERT_EQ(noisy.size(), 1u);
  EXPECT_EQ(noisy.points()[0].level, 3);
  EXPECT_DOUBLE_EQ(noisy.points()[0].perf_loss, 0.25);
  bool any_changed = false;
  for (int c = 0; c < kNumCounters; ++c)
    any_changed |= noisy.points()[0].counters[static_cast<std::size_t>(c)] !=
                   ds.points()[0].counters[static_cast<std::size_t>(c)];
  EXPECT_TRUE(any_changed);
  // Zero sigma is the identity.
  const Dataset same = injectCounterNoise(ds, 0.0, 11);
  for (int c = 0; c < kNumCounters; ++c)
    EXPECT_DOUBLE_EQ(same.points()[0].counters[static_cast<std::size_t>(c)],
                     ds.points()[0].counters[static_cast<std::size_t>(c)]);
}

TEST(Augment, LabelCountsValidates) {
  Dataset ds;
  ds.add(mkPoint("w", 7));
  EXPECT_THROW(static_cast<void>(labelCounts(ds, 6)), ContractError);
}

// ---- power-cap controller ----------------------------------------------------

TEST(PowerCap, ValidatesConfig) {
  PowerCapConfig bad;
  bad.cap_w = 0.0;
  EXPECT_THROW(PowerCapController{bad}, ContractError);
  bad = PowerCapConfig{};
  bad.preset_min = 0.5;
  bad.preset_max = 0.1;
  EXPECT_THROW(PowerCapController{bad}, ContractError);
}

TEST(PowerCap, RaisesPresetUnderViolationRelaxesUnderCap) {
  PowerCapConfig cfg;
  cfg.cap_w = 100.0;
  PowerCapController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.0);
  const double p1 = ctl.onEpoch(150.0);  // 50 W over
  EXPECT_GT(p1, 0.0);
  const double p2 = ctl.onEpoch(150.0);
  EXPECT_GT(p2, p1);
  const double p3 = ctl.onEpoch(50.0);  // under the cap: relax
  EXPECT_LT(p3, p2);
  EXPECT_EQ(ctl.violations(), 2);
  EXPECT_EQ(ctl.epochs(), 3);
  ctl.reset();
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.0);
  EXPECT_EQ(ctl.violations(), 0);
}

TEST(PowerCap, PresetStaysWithinBounds) {
  PowerCapConfig cfg;
  cfg.cap_w = 100.0;
  cfg.preset_max = 0.30;
  PowerCapController ctl(cfg);
  for (int i = 0; i < 1000; ++i) ctl.onEpoch(500.0);
  EXPECT_DOUBLE_EQ(ctl.preset(), 0.30);
  for (int i = 0; i < 10000; ++i) ctl.onEpoch(10.0);
  EXPECT_GE(ctl.preset(), 0.0);
}

/// End-to-end: capping a compute-heavy program must reduce mean power
/// toward the cap at some latency cost. Uses a quickly-trained model.
TEST(PowerCap, CappedRunReducesMeanPower) {
  GpuConfig gpu;
  gpu.num_clusters = 8;
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 8;
  gen.epochs_per_breakpoint = 6;
  const DataGenerator dg(gpu, VfTable::titanX(), gen);
  Dataset corpus = dg.generateForWorkload(workloadByName("sgemm"), 5, 0);
  corpus.append(dg.generateForWorkload(workloadByName("spmv"), 5, 1));
  auto [train, hold] = corpus.split(0.8, 3);
  SsmModelConfig mcfg;
  mcfg.train.epochs = 200;
  auto model = std::make_shared<SsmModel>(mcfg);
  model->train(train, hold);

  Gpu machine(gpu, VfTable::titanX(), workloadByName("sgemm"), 21,
              ChipPowerModel(gpu.num_clusters));
  const RunResult base = runBaseline(machine);
  const double base_power =
      base.energy_j / secondsOf(base.exec_time_ns);

  PowerCapConfig cap;
  cap.cap_w = base_power * 0.85;  // force a meaningful cap
  cap.ki = 0.004;
  const PowerCapRunResult capped =
      runWithPowerCap(machine, model, cap);

  EXPECT_LT(capped.mean_power_w, base_power);
  EXPECT_GT(capped.final_preset, 0.0);
  EXPECT_GT(capped.run.exec_time_ns, base.exec_time_ns);  // paid in latency
}

TEST(PowerCap, RequiresTrainedModel) {
  GpuConfig gpu;
  gpu.num_clusters = 2;
  Gpu machine(gpu, VfTable::titanX(), workloadByName("spmv"), 1,
              ChipPowerModel(2));
  EXPECT_THROW(static_cast<void>(runWithPowerCap(
                   machine, std::make_shared<SsmModel>(), PowerCapConfig{})),
               ContractError);
}

}  // namespace
}  // namespace ssm
