// Integration tests for the end-to-end build-up pipeline (Fig. 2):
// data generation -> training -> compression -> pruning, plus the artifact
// caches (dataset CSV + model fingerprinting).
#include <gtest/gtest.h>

#include <filesystem>

#include "compress/pipeline.hpp"
#include "core/ssm_governor.hpp"
#include "gpusim/runner.hpp"

namespace ssm {
namespace {

PipelineConfig tinyPipeline(const std::string& cache_dir) {
  PipelineConfig cfg;
  cfg.gpu.num_clusters = 4;
  cfg.gen.runs_per_workload = 1;
  cfg.gen.clusters_sampled = 4;
  cfg.gen.epochs_per_breakpoint = 6;
  cfg.workloads = {workloadByName("sgemm"), workloadByName("spmv"),
                   workloadByName("hotspot"), workloadByName("kmeans")};
  cfg.model.train.epochs = 150;
  cfg.dataset_cache_path = cache_dir + "/corpus.csv";
  cfg.model_cache_dir = cache_dir;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "ssm_test_pipeline_cache";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(PipelineTest, BuildsTrainsCompressesAndCaches) {
  const PipelineConfig cfg = tinyPipeline(dir_);
  const FullSystem sys = buildFullSystem(cfg);

  ASSERT_NE(sys.uncompressed, nullptr);
  ASSERT_NE(sys.compressed, nullptr);
  EXPECT_TRUE(sys.uncompressed->trained());
  EXPECT_TRUE(sys.compressed->trained());
  EXPECT_FALSE(sys.train.empty());
  EXPECT_FALSE(sys.holdout.empty());

  // Architecture + compression invariants.
  EXPECT_NEAR(static_cast<double>(sys.uncompressed_summary.flops), 6960.0,
              30.0);
  EXPECT_LT(sys.prune_report.after_finetune.flops, 550);
  EXPECT_GT(sys.prune_report.decision.weight_sparsity, 0.5);

  // Artifacts exist.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/corpus.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/model_uncompressed.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/model_compressed.txt"));
  EXPECT_TRUE(
      std::filesystem::exists(dir_ + "/model_corpus_fingerprint.txt"));

  // Second build must hit the caches and reproduce identical models.
  const FullSystem again = buildFullSystem(cfg);
  EXPECT_EQ(again.uncompressed->flops(), sys.uncompressed->flops());
  EXPECT_NEAR(again.uncompressed_summary.decision_accuracy,
              sys.uncompressed_summary.decision_accuracy, 1e-12);
  EXPECT_NEAR(again.prune_report.after_finetune.calibrator_mape,
              sys.prune_report.after_finetune.calibrator_mape, 1e-12);

  // The cached system must drive a governor end to end.
  Gpu gpu(cfg.gpu, VfTable::titanX(), workloadByName("stencil"), 5,
          ChipPowerModel(cfg.gpu.num_clusters));
  SsmGovernorConfig gcfg;
  gcfg.loss_preset = 0.10;
  const SsmGovernorFactory factory(again.compressed, gcfg);
  const RunResult run = runWithGovernor(gpu, factory, "ssmdvfs-comp");
  EXPECT_GT(run.instructions, 0);
}

TEST_F(PipelineTest, FingerprintInvalidatesStaleModels) {
  PipelineConfig cfg = tinyPipeline(dir_);
  const FullSystem first = buildFullSystem(cfg);
  const auto first_acc = first.uncompressed_summary.decision_accuracy;

  // Change the corpus (different workload mix) but keep the model cache:
  // the fingerprint must force a retrain rather than load stale weights.
  std::filesystem::remove(dir_ + "/corpus.csv");
  cfg.workloads = {workloadByName("bfs"), workloadByName("gemm"),
                   workloadByName("stencil"), workloadByName("mvt")};
  const FullSystem second = buildFullSystem(cfg);
  EXPECT_TRUE(second.uncompressed->trained());
  // Different corpus, so holdout metrics almost surely differ.
  EXPECT_NE(first_acc, second.uncompressed_summary.decision_accuracy);
}

}  // namespace
}  // namespace ssm
