// Tests for the §V.D ASIC cost model.
#include <gtest/gtest.h>

#include "compress/pruning.hpp"
#include "hw/asic_model.hpp"
#include "nn/mlp.hpp"

namespace ssm {
namespace {

Mlp paperCompressedDecision() {
  return Mlp({6, 12, 12, 6}, Head::kSoftmaxClassifier, Rng(1));
}
Mlp paperCompressedCalibrator() {
  return Mlp({12, 12, 1}, Head::kRegression, Rng(2));
}

TEST(Asic, ValidatesConfig) {
  AsicConfig bad;
  bad.mac_units = 0;
  EXPECT_THROW(static_cast<void>(estimateAsic(paperCompressedDecision(),
                                              paperCompressedCalibrator(),
                                              bad)),
               ContractError);
  bad = AsicConfig{};
  bad.clock_mhz = 0.0;
  EXPECT_THROW(static_cast<void>(estimateAsic(paperCompressedDecision(),
                                              paperCompressedCalibrator(),
                                              bad)),
               ContractError);
}

TEST(Asic, CycleCountScalesWithMacLanes) {
  const Mlp dec = paperCompressedDecision();
  const Mlp cal = paperCompressedCalibrator();
  AsicConfig one;
  one.mac_units = 1;
  AsicConfig four;
  four.mac_units = 4;
  const auto r1 = estimateAsic(dec, cal, one);
  const auto r4 = estimateAsic(dec, cal, four);
  EXPECT_GT(r1.cycles_per_inference, r4.cycles_per_inference);
  EXPECT_EQ(r1.macs, r4.macs);
}

TEST(Asic, PruningReducesEveryCost) {
  Mlp dec = paperCompressedDecision();
  Mlp cal = paperCompressedCalibrator();
  const auto before = estimateAsic(dec, cal);
  magnitudePruneTo(dec, 0.6);
  magnitudePruneTo(cal, 0.6);
  const auto after = estimateAsic(dec, cal);
  EXPECT_LT(after.macs, before.macs);
  EXPECT_LT(after.cycles_per_inference, before.cycles_per_inference);
  EXPECT_LT(after.area_mm2_28, before.area_mm2_28);
  EXPECT_LT(after.energy_per_inference_nj_28,
            before.energy_per_inference_nj_28);
}

TEST(Asic, PrunedModelLandsNearPaperScalars) {
  // §V.D: 192 cycles (0.16 µs @ 1165 MHz), 0.0080 mm^2, 0.0025 W at 28 nm.
  // Our cost model should land in the same decade on the compressed+pruned
  // architecture (exactness depends on the pruned MAC count).
  Mlp dec = paperCompressedDecision();
  Mlp cal = paperCompressedCalibrator();
  magnitudePruneTo(dec, 0.6);
  magnitudePruneTo(cal, 0.6);
  neuronPrune(dec, 0.9);
  neuronPrune(cal, 0.9);
  const auto r = estimateAsic(dec, cal);
  EXPECT_GT(r.cycles_per_inference, 100);
  EXPECT_LT(r.cycles_per_inference, 320);
  EXPECT_GT(r.time_us, 0.08);
  EXPECT_LT(r.time_us, 0.30);
  EXPECT_GT(r.area_mm2_28, 0.003);
  EXPECT_LT(r.area_mm2_28, 0.02);
  EXPECT_GT(r.power_w_28, 0.0005);
  EXPECT_LT(r.power_w_28, 0.01);
  // The inference must consume only a small share of a 10 µs epoch.
  EXPECT_LT(r.dvfs_period_fraction, 0.05);
}

TEST(Asic, TimeMatchesCyclesAndClock) {
  const auto r = estimateAsic(paperCompressedDecision(),
                              paperCompressedCalibrator());
  EXPECT_NEAR(r.time_us,
              static_cast<double>(r.cycles_per_inference) / 1165.0, 1e-12);
  EXPECT_NEAR(r.dvfs_period_fraction, r.time_us / 10.0, 1e-12);
}

TEST(Asic, PowerIsEnergyOverTime) {
  const auto r = estimateAsic(paperCompressedDecision(),
                              paperCompressedCalibrator());
  EXPECT_NEAR(r.power_w_28,
              r.energy_per_inference_nj_28 * 1e-9 / (r.time_us * 1e-6),
              1e-12);
}

TEST(Asic, DeadNeuronsStoreNoBias) {
  Mlp dec({4, 4, 2}, Head::kSoftmaxClassifier, Rng(3));
  Mlp cal({4, 4, 1}, Head::kRegression, Rng(4));
  const auto before = estimateAsic(dec, cal);
  // Kill one hidden neuron of dec entirely.
  for (int i = 0; i < 4; ++i) dec.layer(0).mask()(0, static_cast<std::size_t>(i)) = 0.0;
  for (int o = 0; o < 2; ++o) dec.layer(1).mask()(static_cast<std::size_t>(o), 0) = 0.0;
  dec.applyMasks();
  const auto after = estimateAsic(dec, cal);
  // 4 incoming + 2 outgoing MACs gone, plus the neuron's weight words and
  // its bias word.
  EXPECT_EQ(before.macs - after.macs, 6);
  EXPECT_EQ(before.weight_words - after.weight_words, 7);
}

}  // namespace
}  // namespace ssm
