// Property-based suites (parameterized gtest): invariants that must hold
// for EVERY workload profile and every operating point, not just the few
// hand-picked cases in the unit suites.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/ssm_governor.hpp"
#include "core/ssm_io.hpp"
#include "datagen/generator.hpp"
#include "gpusim/gpu.hpp"
#include "gpusim/runner.hpp"
#include "power/power_model.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

GpuConfig tinyGpu() {
  GpuConfig cfg;
  cfg.num_clusters = 2;  // keep the sweep over 28 workloads affordable
  return cfg;
}

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> names;
  for (const auto& k : allWorkloads()) names.push_back(k.name);
  return names;
}

// ---- per-workload simulator invariants -------------------------------------

class WorkloadProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProperty, EpochCountersAreConsistent) {
  Gpu gpu(tinyGpu(), VfTable::titanX(), workloadByName(GetParam()), 17,
          ChipPowerModel(2));
  for (int e = 0; e < 3 && !gpu.allDone(); ++e) {
    const auto rep = gpu.runEpochUniform(e % 2 == 0 ? 5 : 1);
    for (const auto& obs : rep.clusters) {
      const auto& c = obs.counters;
      const double total = c.get(CounterId::kInstTotal);
      const double by_class =
          c.get(CounterId::kInstIalu) + c.get(CounterId::kInstFalu) +
          c.get(CounterId::kInstSfu) + c.get(CounterId::kInstLoad) +
          c.get(CounterId::kInstStore) + c.get(CounterId::kInstShared) +
          c.get(CounterId::kInstBranch);
      EXPECT_DOUBLE_EQ(total, by_class);
      EXPECT_LE(c.get(CounterId::kL1ReadMiss),
                c.get(CounterId::kL1ReadAccess));
      EXPECT_LE(c.get(CounterId::kL2Miss), c.get(CounterId::kL2Access));
      EXPECT_GE(c.get(CounterId::kIpc), 0.0);
      EXPECT_LE(c.get(CounterId::kIpc),
                static_cast<double>(tinyGpu().issue_width));
      EXPECT_GE(obs.power_w, 0.0);
      EXPECT_GE(c.get(CounterId::kL1ReadAccess), c.get(CounterId::kL2Access));
      EXPECT_GE(c.get(CounterId::kStallMemTotalCycles),
                c.get(CounterId::kStallMemOtherCycles));
    }
  }
}

TEST_P(WorkloadProperty, RetiresAndIsDeterministic) {
  Gpu a(tinyGpu(), VfTable::titanX(), workloadByName(GetParam()), 23,
        ChipPowerModel(2));
  Gpu b = a;
  a.runUntil(20 * kNsPerMs, 4);
  b.runUntil(20 * kNsPerMs, 4);
  ASSERT_TRUE(a.allDone()) << GetParam();
  EXPECT_EQ(a.finishTimeNs(), b.finishTimeNs());
  EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
  EXPECT_DOUBLE_EQ(a.totalEnergyJ(), b.totalEnergyJ());
  EXPECT_GT(a.totalInstructions(), 0);
}

TEST_P(WorkloadProperty, LowerFrequencyNeverFinishesEarlier) {
  Gpu hi(tinyGpu(), VfTable::titanX(), workloadByName(GetParam()), 29,
         ChipPowerModel(2));
  Gpu lo = hi;
  hi.runUntil(20 * kNsPerMs, 5);
  lo.runUntil(20 * kNsPerMs, 0);
  ASSERT_TRUE(hi.allDone());
  ASSERT_TRUE(lo.allDone());
  // Identical instruction streams, slower clock: retire time must not
  // shrink, and the slowdown is bounded by the frequency ratio plus noise.
  EXPECT_GE(lo.finishTimeNs(), hi.finishTimeNs());
  const double slowdown = static_cast<double>(lo.finishTimeNs()) /
                          static_cast<double>(hi.finishTimeNs());
  EXPECT_LE(slowdown, 1165.0 / 683.0 + 0.12) << GetParam();
  EXPECT_EQ(lo.totalInstructions(), hi.totalInstructions());
}

TEST_P(WorkloadProperty, ChipPowerWithinPhysicalEnvelope) {
  Gpu gpu(GpuConfig{}, VfTable::titanX(), workloadByName(GetParam()), 31,
          ChipPowerModel(24));
  const auto rep = gpu.runEpochUniform(5);
  // Full 24-cluster chip at the default point: between deep idle and TDP+.
  EXPECT_GT(rep.chip_power_w, 40.0) << GetParam();
  EXPECT_LT(rep.chip_power_w, 300.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto& info) { return info.param; });

// ---- per-level properties ---------------------------------------------------

class LevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(LevelProperty, UniformRunRespectsClockScaling) {
  const int level = GetParam();
  const VfTable vf = VfTable::titanX();
  Gpu gpu(tinyGpu(), vf, workloadByName("sgemm"), 41, ChipPowerModel(2));
  // First epoch at the level pays the IVR transition stall; measure the
  // steady-state second epoch.
  gpu.runEpochUniform(level);
  const auto rep = gpu.runEpochUniform(level);
  for (const auto& obs : rep.clusters) {
    EXPECT_EQ(obs.level, level);
    EXPECT_DOUBLE_EQ(obs.counters.get(CounterId::kFreqMhz),
                     vf.at(level).freq_mhz);
    EXPECT_DOUBLE_EQ(obs.counters.get(CounterId::kAvgVoltage),
                     vf.at(level).voltage_v);
    // Cycles in a 10 µs epoch follow the clock.
    EXPECT_NEAR(obs.counters.get(CounterId::kCyclesElapsed),
                vf.at(level).freq_mhz * 10.0, 2.0);
  }
}

TEST_P(LevelProperty, EpochInstructionsMonotoneInFrequencyForCompute) {
  const int level = GetParam();
  if (level == 0) GTEST_SKIP() << "needs a lower neighbour";
  Gpu lo(tinyGpu(), VfTable::titanX(), workloadByName("gemm"), 43,
         ChipPowerModel(2));
  Gpu hi = lo;
  std::int64_t lo_insts = 0;
  std::int64_t hi_insts = 0;
  for (int e = 0; e < 4; ++e) {
    lo.runEpochUniform(level - 1);
    hi.runEpochUniform(level);
    lo_insts += lo.lastEpochInstructions();
    hi_insts += hi.lastEpochInstructions();
  }
  EXPECT_GE(hi_insts, lo_insts);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, LevelProperty, ::testing::Range(0, 6));

// ---- datagen invariants over a workload sample ------------------------------

class DatagenProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(DatagenProperty, ProtocolInvariants) {
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 2;
  gen.epochs_per_breakpoint = 8;
  const DataGenerator dg(tinyGpu(), VfTable::titanX(), gen);
  const Dataset ds = dg.generateForWorkload(workloadByName(GetParam()), 51);
  for (const auto& p : ds.points()) {
    EXPECT_GE(p.level, 0);
    EXPECT_LT(p.level, 6);
    EXPECT_GE(p.perf_loss, 0.0);
    EXPECT_LE(p.perf_loss, 1.2);
    EXPECT_GT(p.insts_k, 0.0);
    EXPECT_EQ(p.workload, GetParam());
    if (p.level == 5) {
      EXPECT_NEAR(p.perf_loss, 0.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SampleWorkloads, DatagenProperty,
                         ::testing::Values("sgemm", "spmv", "hotspot",
                                           "lavamd", "bfs", "histo",
                                           "correlation", "nw"),
                         [](const auto& info) { return info.param; });

// ---- self-calibration working-preset bounds --------------------------------

/// A hand-crafted model (same scheme as test_governor_math): bias-only
/// Decision-maker, one-hot Calibrator predicting c_k thousand instructions
/// at level k, identity standardizer on one feature (IPC, counter 8).
std::shared_ptr<SsmModel> handModel() {
  std::ostringstream os;
  os << "ssmdvfs-model-v1\n";
  os << "features 1 8\n";
  os << "levels 6\n";
  os << "decode_theta 0.5\n";
  os << "corrupt 0.5 0.5\n";
  os << "init_seed 1\n";
  os << "train 10 0.001\n";
  os << "decision_hidden 0\n";
  os << "calibrator_hidden 0\n";
  os << "standardizer 2 0 0\n";
  os << "2 1 1\n";
  os << "decision\n1\n2 6\n";
  os << "12";
  for (int i = 0; i < 12; ++i) os << " 0";
  os << "\n6 0 0 0 0 0 0\n12";
  for (int i = 0; i < 12; ++i) os << " 1";
  os << "\ncalibrator\n1\n8 1\n";
  os << "8 0 0 6 7 8 9 10 10\n";
  os << "1 0\n";
  os << "8 1 1 1 1 1 1 1 1\n";
  std::istringstream is(os.str());
  return std::make_shared<SsmModel>(deserializeModel(is));
}

// No matter what the counter stream looks like — garbage IPC, instruction
// counts that wildly under- or over-shoot the Calibrator's prediction,
// random level churn — the self-calibrated working preset must stay inside
// the configured [floor_frac, ceil_frac] x loss_preset band, and must track
// a runtime re-target of the preset into the NEW band.
class PresetBoundsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PresetBoundsProperty, WorkingPresetStaysInsideTheConfiguredBand) {
  SsmGovernorConfig cfg;
  cfg.loss_preset = 0.10;
  cfg.preset_floor_frac = 0.20;
  cfg.preset_ceil_frac = 1.50;
  SsmdvfsGovernor gov(handModel(), cfg);

  Rng rng(GetParam());
  double preset = cfg.loss_preset;
  for (int e = 0; e < 400; ++e) {
    if (e == 200) {
      preset = 0.25;  // runtime re-target (power-cap scheduler path)
      gov.setLossPreset(preset);
    }
    EpochObservation obs;
    obs.level = static_cast<int>(rng.nextU64() % 6);
    obs.cluster_id = 0;
    // Instruction counts that randomly under- and over-shoot every
    // Calibrator prediction (6k..10k), plus occasional zero epochs.
    obs.instructions =
        rng.nextBernoulli(0.05)
            ? 0
            : static_cast<std::int64_t>(rng.nextU64() % 30'000);
    obs.counters.set(CounterId::kIpc, 8.0 * rng.nextDouble());
    obs.counters.set(CounterId::kCyclesElapsed, 1.0 + 1e4 * rng.nextDouble());
    static_cast<void>(gov.decide(obs));
    const double wp = gov.workingPreset();
    EXPECT_GE(wp, cfg.preset_floor_frac * preset - 1e-12) << "epoch " << e;
    EXPECT_LE(wp, cfg.preset_ceil_frac * preset + 1e-12) << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresetBoundsProperty,
                         ::testing::Values(1u, 17u, 99u, 1234u, 424242u));

}  // namespace
}  // namespace ssm
