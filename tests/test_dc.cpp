// Tests for src/dc: traffic generation, the hierarchical power coordinator,
// dispatch policies, the rack simulation (the ISSUE acceptance scenario:
// >= 16 GPUs under a rack cap serving deadline-tagged traffic), and the dc
// sweep's byte-identical-at-any---jobs contract.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "dc/dc_sweep.hpp"
#include "dc/dispatcher.hpp"
#include "dc/rack.hpp"
#include "dc/rack_power.hpp"
#include "dc/traffic.hpp"
#include "faults/fault_spec.hpp"
#include "sched/thread_pool.hpp"

namespace ssm {
namespace {

using dc::DispatchPolicy;
using dc::TrafficSpec;

/// A synthetic kernel small enough that a whole rack simulation stays in
/// test time: ~8.8k instructions per warp, 8 resident warps per cluster.
KernelProfile tinyKernel(const char* name, std::int64_t insts_per_warp,
                         double load_frac) {
  KernelProfile k;
  k.name = name;
  k.suite = "synthetic";
  PhaseProfile p;
  p.mix.ialu = 0.95 - load_frac;
  p.mix.load = load_frac;
  p.mix.branch = 0.05;
  p.insts_per_warp = insts_per_warp;
  k.phases = {p};
  k.warps_per_cluster = 8;
  k.validate();
  return k;
}

/// Small rack template shared by the DcRack / DcSweep tests: 4-cluster
/// GPUs, two tiny kernels, a low idle floor so the cap math is about the
/// busy chips.
dc::RackSpec smallRackSpec(int gpus) {
  dc::RackSpec spec;
  spec.gpus = gpus;
  spec.gpu.num_clusters = 4;
  spec.mix = {tinyKernel("tiny-compute", 8800, 0.05),
              tinyKernel("tiny-memory", 6600, 0.30)};
  spec.traffic = TrafficSpec::parse("shape=bursty;jobs=20;rate=4;burst=6");
  spec.idle_power_w = 5.0;
  spec.power.idle_floor_w = 6.0;
  spec.max_rounds = 4000;
  return spec;
}

// ---------------------------------------------------------------- traffic

TEST(DcTraffic, ParsePrintRoundTrip) {
  const char* specs[] = {
      "shape=steady;jobs=10;rate=1.5;slack=2;prio=3",
      "shape=bursty;jobs=64;rate=2;slack=3;burst=6;duty=0.25;period=4;prio=2",
      "shape=diurnal;jobs=32;rate=4;period=8",
      "shape=adversarial;jobs=12;burst=4;period=2",
  };
  for (const char* text : specs) {
    const TrafficSpec spec = TrafficSpec::parse(text);
    EXPECT_EQ(TrafficSpec::parse(spec.print()), spec) << text;
  }
  // The empty string is the default (steady) spec.
  EXPECT_EQ(TrafficSpec::parse(""), TrafficSpec{});
  // Steady print omits the modulation keys.
  EXPECT_EQ(TrafficSpec{}.print().find("burst"), std::string::npos);
  EXPECT_EQ(TrafficSpec{}.print().find("period"), std::string::npos);
}

TEST(DcTraffic, ParseRejectsBadSpecs) {
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("shape=lumpy")),
               DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("cadence=5")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("jobs=0")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("rate=-1")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("duty=1.5")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("prio=0")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("jobs")), DataError);
  EXPECT_THROW(static_cast<void>(TrafficSpec::parse("rate=abc")), DataError);
}

TEST(DcTraffic, GenerationIsDeterministicPerSeed) {
  const GpuConfig gpu;
  const VfTable vf = VfTable::titanX();
  const std::vector<KernelProfile> mix = {tinyKernel("a", 8000, 0.1),
                                          tinyKernel("b", 4000, 0.3)};
  const TrafficSpec spec =
      TrafficSpec::parse("shape=bursty;jobs=40;rate=2;burst=4");
  const auto one = generateTraffic(spec, mix, gpu, vf, 99);
  const auto two = generateTraffic(spec, mix, gpu, vf, 99);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t j = 0; j < one.size(); ++j) {
    EXPECT_EQ(one[j].arrival_ns, two[j].arrival_ns);
    EXPECT_EQ(one[j].deadline_ns, two[j].deadline_ns);
    EXPECT_EQ(one[j].workload, two[j].workload);
    EXPECT_EQ(one[j].priority, two[j].priority);
  }
  // A different seed moves the arrivals.
  const auto other = generateTraffic(spec, mix, gpu, vf, 100);
  bool any_diff = false;
  for (std::size_t j = 0; j < one.size(); ++j)
    any_diff = any_diff || one[j].arrival_ns != other[j].arrival_ns;
  EXPECT_TRUE(any_diff);
}

TEST(DcTraffic, StreamIsSortedAndFeasible) {
  const GpuConfig gpu;
  const VfTable vf = VfTable::titanX();
  const std::vector<KernelProfile> mix = {tinyKernel("a", 8000, 0.1)};
  const TrafficSpec spec =
      TrafficSpec::parse("shape=diurnal;jobs=50;rate=3;prio=4");
  const auto jobs = generateTraffic(spec, mix, gpu, vf, 7);
  ASSERT_EQ(jobs.size(), 50u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(jobs[j].id, static_cast<std::uint32_t>(j));
    if (j > 0) {
      EXPECT_GE(jobs[j].arrival_ns, jobs[j - 1].arrival_ns);
    }
    EXPECT_GE(jobs[j].est_service_ns, gpu.epoch_ns);
    // Deadlines leave at least the estimated service time.
    EXPECT_GE(jobs[j].deadline_ns, jobs[j].arrival_ns + jobs[j].est_service_ns);
    EXPECT_GE(jobs[j].priority, 0);
    EXPECT_LT(jobs[j].priority, 4);
    EXPECT_EQ(jobs[j].workload, 0u);
  }
}

TEST(DcTraffic, AdversarialWavesLandTogetherAtMaxPriority) {
  const GpuConfig gpu;
  const VfTable vf = VfTable::titanX();
  const std::vector<KernelProfile> mix = {tinyKernel("a", 8000, 0.1)};
  const TrafficSpec spec =
      TrafficSpec::parse("shape=adversarial;jobs=12;burst=4;period=2;prio=3");
  const auto jobs = generateTraffic(spec, mix, gpu, vf, 7);
  ASSERT_EQ(jobs.size(), 12u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto wave = static_cast<TimeNs>(j / 4);
    EXPECT_EQ(jobs[j].arrival_ns, wave * 2 * kNsPerMs);
    EXPECT_EQ(jobs[j].priority, 2);
  }
}

TEST(DcTraffic, ServiceEstimateScalesWithWorkAndFloorsAtEpoch) {
  const GpuConfig gpu;
  const VfTable vf = VfTable::titanX();
  const TimeNs small =
      dc::estimatedServiceNs(tinyKernel("s", 10, 0.1), gpu, vf);
  const TimeNs mid = dc::estimatedServiceNs(tinyKernel("m", 8000, 0.1), gpu, vf);
  const TimeNs big =
      dc::estimatedServiceNs(tinyKernel("b", 80000, 0.1), gpu, vf);
  EXPECT_EQ(small, gpu.epoch_ns);  // floored
  EXPECT_GT(big, mid);
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(mid), 10.0, 0.5);
}

// ------------------------------------------------------------ coordinator

TEST(DcCoordinator, CapSumNeverExceedsRackCap) {
  dc::RackPowerConfig cfg;
  cfg.rack_cap_w = 400.0;
  cfg.idle_floor_w = 20.0;
  dc::RackPowerCoordinator coord(cfg, 4);

  const std::vector<std::vector<double>> rounds = {
      {10.0, 10.0, 10.0, 10.0},     // all idle
      {120.0, 130.0, 15.0, 10.0},   // two loaded, two idle
      {150.0, 140.0, 130.0, 120.0}, // all loaded, over budget
      {0.0, 0.0, 0.0, 200.0},       // one hog
  };
  const std::vector<std::vector<std::uint8_t>> loaded = {
      {0, 0, 0, 0}, {1, 1, 0, 0}, {1, 1, 1, 1}, {0, 0, 0, 1}};
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    coord.onRound(rounds[r], loaded[r]);
    double sum = 0.0;
    for (int g = 0; g < 4; ++g) {
      EXPECT_GT(coord.capFor(g), 0.0);
      sum += coord.capFor(g);
    }
    EXPECT_LE(sum, cfg.rack_cap_w + 1e-9) << "round " << r;
  }
  EXPECT_EQ(coord.rounds(), 4);
}

TEST(DcCoordinator, IdleHeadroomFlowsToLoadedGpus) {
  dc::RackPowerConfig cfg;
  cfg.rack_cap_w = 400.0;  // equal share 100 W
  cfg.idle_floor_w = 20.0;
  dc::RackPowerCoordinator coord(cfg, 4);

  const std::vector<double> power = {150.0, 140.0, 8.0, 8.0};
  const std::vector<std::uint8_t> loaded = {1, 1, 0, 0};
  coord.onRound(power, loaded);

  const double share = cfg.rack_cap_w / 4;
  // Idle chips keep the floor (draw x margin = 10 W < floor 20 W).
  EXPECT_DOUBLE_EQ(coord.capFor(2), cfg.idle_floor_w);
  EXPECT_DOUBLE_EQ(coord.capFor(3), cfg.idle_floor_w);
  // Loaded chips get more than the equal share, the heavier one more.
  EXPECT_GT(coord.capFor(0), share);
  EXPECT_GT(coord.capFor(1), share);
  EXPECT_GT(coord.capFor(0), coord.capFor(1));
  const double sum =
      coord.capFor(0) + coord.capFor(1) + coord.capFor(2) + coord.capFor(3);
  EXPECT_NEAR(sum, cfg.rack_cap_w, 1e-9);
}

TEST(DcCoordinator, RackBiasIntegratesOverdrawAndDecays) {
  dc::RackPowerConfig cfg;
  cfg.rack_cap_w = 100.0;
  dc::RackPowerCoordinator coord(cfg, 2);
  const std::vector<double> over = {90.0, 90.0};  // 180 W vs 100 W cap
  const std::vector<std::uint8_t> loaded = {1, 1};
  EXPECT_DOUBLE_EQ(coord.rackBias(), 0.0);
  for (int r = 0; r < 50; ++r) coord.onRound(over, loaded);
  const double risen = coord.rackBias();
  EXPECT_GT(risen, 0.0);
  EXPECT_LE(risen, cfg.rack_bias_max);
  EXPECT_EQ(coord.violationRounds(), 50);

  const std::vector<double> under = {10.0, 10.0};
  for (int r = 0; r < 50; ++r) coord.onRound(under, loaded);
  EXPECT_LT(coord.rackBias(), risen);
  EXPECT_EQ(coord.violationRounds(), 50);
}

TEST(DcCoordinator, ResetRestoresEqualShares) {
  dc::RackPowerConfig cfg;
  cfg.rack_cap_w = 300.0;
  dc::RackPowerCoordinator coord(cfg, 3);
  const std::vector<double> power = {200.0, 5.0, 5.0};
  const std::vector<std::uint8_t> loaded = {1, 0, 0};
  coord.onRound(power, loaded);
  EXPECT_NE(coord.capFor(0), coord.capFor(1));
  coord.reset();
  for (int g = 0; g < 3; ++g) EXPECT_DOUBLE_EQ(coord.capFor(g), 100.0);
  EXPECT_EQ(coord.rounds(), 0);
  EXPECT_DOUBLE_EQ(coord.rackBias(), 0.0);
}

TEST(DcCoordinator, RejectsMismatchedRoundSizes) {
  dc::RackPowerCoordinator coord(dc::RackPowerConfig{}, 3);
  const std::vector<double> two = {1.0, 2.0};
  const std::vector<std::uint8_t> three = {0, 0, 0};
  EXPECT_THROW(coord.onRound(two, three), ContractError);
}

// --------------------------------------------------------------- dispatch

dc::JobSpec jobWith(std::uint32_t id, TimeNs arrival, TimeNs deadline,
                    TimeNs est, int priority = 0) {
  dc::JobSpec j;
  j.id = id;
  j.arrival_ns = arrival;
  j.deadline_ns = deadline;
  j.est_service_ns = est;
  j.priority = priority;
  return j;
}

TEST(DcDispatch, PolicyNamesRoundTrip) {
  for (const auto p :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
        DispatchPolicy::kDeadlineAware})
    EXPECT_EQ(dc::parseDispatchPolicy(dc::policyName(p)), p);
  EXPECT_THROW(static_cast<void>(dc::parseDispatchPolicy("fastest")),
               DataError);
}

TEST(DcDispatch, JobBeforeOrdersPriorityThenDeadlineThenId) {
  const auto low = jobWith(0, 0, 500, 100, 0);
  const auto high = jobWith(1, 0, 900, 100, 2);
  const auto high_tight = jobWith(2, 0, 400, 100, 2);
  const auto high_tight_later = jobWith(3, 0, 400, 100, 2);
  EXPECT_TRUE(dc::jobBefore(high, low));           // priority wins
  EXPECT_TRUE(dc::jobBefore(high_tight, high));    // then deadline
  EXPECT_TRUE(dc::jobBefore(high_tight, high_tight_later));  // then id
  EXPECT_FALSE(dc::jobBefore(high_tight_later, high_tight));
}

TEST(DcDispatch, RoundRobinCyclesRegardlessOfLoad) {
  dc::Dispatcher d(DispatchPolicy::kRoundRobin, 3);
  std::vector<dc::NodeLoad> loads(3);
  loads[0].backlog_ns = 1'000'000;  // heavy load is ignored
  const auto job = jobWith(0, 0, 1000, 100);
  EXPECT_EQ(d.assign(job, loads), 0);
  EXPECT_EQ(d.assign(job, loads), 1);
  EXPECT_EQ(d.assign(job, loads), 2);
  EXPECT_EQ(d.assign(job, loads), 0);
}

TEST(DcDispatch, LeastLoadedPicksArgminWithLowestIdTies) {
  dc::Dispatcher d(DispatchPolicy::kLeastLoaded, 4);
  std::vector<dc::NodeLoad> loads(4);
  loads[0].backlog_ns = 300;
  loads[1].backlog_ns = 100;
  loads[2].backlog_ns = 100;
  loads[3].backlog_ns = 200;
  EXPECT_EQ(d.assign(jobWith(0, 0, 1000, 100), loads), 1);
}

TEST(DcDispatch, DeadlineAwarePrefersFeasibleHealthyGpus) {
  dc::Dispatcher d(DispatchPolicy::kDeadlineAware, 3);
  std::vector<dc::NodeLoad> loads(3);
  // Budget: deadline - arrival = 500; est = 100 → backlog must be <= 400.
  loads[0].backlog_ns = 900;                        // infeasible
  loads[1].backlog_ns = 100;
  loads[1].degraded = true;                         // feasible but degraded
  loads[2].backlog_ns = 300;                        // feasible, healthy
  EXPECT_EQ(d.assign(jobWith(0, 1000, 1500, 100), loads), 2);
  // With every GPU infeasible it degenerates to global least-loaded.
  loads[1].backlog_ns = 600;
  loads[2].backlog_ns = 700;
  EXPECT_EQ(d.assign(jobWith(1, 1000, 1100, 100), loads), 1);
}

// -------------------------------------------------------------------- rack

TEST(DcRack, SixteenGpuRackUnderCapMeetsAcceptance) {
  // The ISSUE acceptance scenario: a 16-GPU rack under a binding rack cap
  // serving deadline-tagged bursty traffic. Headline metrics must be
  // reported and the rack cap respected in steady state (violation rounds
  // bounded).
  dc::RackSpec spec = smallRackSpec(16);
  spec.power.rack_cap_w = 16 * 25.0;  // binding: a busy 4-cluster chip
                                      // draws well above 25 W
  const dc::RackResult r = dc::runRack(spec);

  EXPECT_EQ(r.gpus, 16);
  ASSERT_EQ(r.jobs.size(), 20u);
  EXPECT_EQ(r.completed + r.unfinished, 20);
  EXPECT_GT(r.completed, 0);
  EXPECT_GT(r.rounds, 0);
  EXPECT_GT(r.busy_gpu_epochs, 0);
  EXPECT_GT(r.total_gpu_epochs, r.busy_gpu_epochs);

  // Headline metrics: present, in range, and internally consistent.
  EXPECT_GE(r.deadline_miss_rate, 0.0);
  EXPECT_LE(r.deadline_miss_rate, 1.0);
  EXPECT_NEAR(r.deadline_miss_rate, r.missed_deadlines / 20.0, 1e-12);
  EXPECT_GT(r.energy_per_job_j, 0.0);
  EXPECT_GT(r.total_energy_j, 0.0);
  EXPECT_GE(r.max_rack_power_w, r.mean_rack_power_w);

  // Cap compliance: transient burst overshoot is allowed, steady state is
  // controlled. The controller must keep most post-warmup rounds legal.
  EXPECT_LE(r.steady_violation_frac, 0.5);
  EXPECT_GE(r.steady_violation_frac, 0.0);

  // Ledger consistency per job.
  int completed = 0;
  for (std::size_t j = 0; j < r.jobs.size(); ++j) {
    const dc::JobOutcome& o = r.jobs[j];
    EXPECT_EQ(o.id, static_cast<std::uint32_t>(j));
    if (!o.completed) {
      EXPECT_TRUE(o.missed);
      continue;
    }
    ++completed;
    EXPECT_GE(o.gpu, 0);
    EXPECT_LT(o.gpu, 16);
    EXPECT_GE(o.start_ns, o.arrival_ns);
    EXPECT_GT(o.finish_ns, o.start_ns);
    EXPECT_EQ(o.missed, o.finish_ns > o.deadline_ns);
    EXPECT_GT(o.energy_j, 0.0);
    EXPECT_GT(o.instructions, 0);
  }
  EXPECT_EQ(completed, r.completed);
  ASSERT_EQ(r.nodes.size(), 16u);
  int jobs_run = 0;
  for (const auto& n : r.nodes) {
    jobs_run += n.jobs_run;
    EXPECT_FALSE(n.degraded);
  }
  EXPECT_EQ(jobs_run, r.completed);
  EXPECT_EQ(r.fault_counts.total(), 0);
}

TEST(DcRack, CapActuallyThrottlesTheChips) {
  // Same rack, binding vs generous budget: the capped rack must draw less
  // peak power. (Energy and latency shift too, but peak power is the
  // direct, monotone consequence of the V/f ceiling.)
  dc::RackSpec spec = smallRackSpec(8);
  spec.traffic = TrafficSpec::parse("shape=adversarial;jobs=12;burst=6");
  spec.power.rack_cap_w = 8 * 100.0;  // never binds on 4-cluster chips
  const dc::RackResult loose = dc::runRack(spec);
  spec.power.rack_cap_w = 8 * 15.0;
  const dc::RackResult tight = dc::runRack(spec);
  EXPECT_LT(tight.max_rack_power_w, loose.max_rack_power_w);
  EXPECT_GT(tight.final_rack_bias + 0.0, 0.0);
}

TEST(DcRack, SerialAndPooledRunsAgreeExactly) {
  const dc::RackSpec spec = smallRackSpec(8);
  const dc::RackResult serial = dc::runRack(spec, nullptr);
  ThreadPool pool(4);
  const dc::RackResult pooled = dc::runRack(spec, &pool);

  EXPECT_EQ(serial.rounds, pooled.rounds);
  EXPECT_EQ(serial.completed, pooled.completed);
  EXPECT_EQ(serial.busy_gpu_epochs, pooled.busy_gpu_epochs);
  EXPECT_DOUBLE_EQ(serial.total_energy_j, pooled.total_energy_j);
  EXPECT_DOUBLE_EQ(serial.mean_rack_power_w, pooled.mean_rack_power_w);
  EXPECT_DOUBLE_EQ(serial.max_rack_power_w, pooled.max_rack_power_w);
  ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
  for (std::size_t j = 0; j < serial.jobs.size(); ++j) {
    EXPECT_EQ(serial.jobs[j].gpu, pooled.jobs[j].gpu);
    EXPECT_EQ(serial.jobs[j].start_ns, pooled.jobs[j].start_ns);
    EXPECT_EQ(serial.jobs[j].finish_ns, pooled.jobs[j].finish_ns);
    EXPECT_DOUBLE_EQ(serial.jobs[j].energy_j, pooled.jobs[j].energy_j);
  }
}

TEST(DcRack, DegradedSubsetCarriesTheFaultsAloneAndIsReported) {
  dc::RackSpec spec = smallRackSpec(4);
  spec.fault = faults::FaultSpec::parse("noise:p=0.8,sigma=0.5");
  spec.degraded = {1, 3};
  const dc::RackResult r = dc::runRack(spec);
  ASSERT_EQ(r.nodes.size(), 4u);
  EXPECT_FALSE(r.nodes[0].degraded);
  EXPECT_TRUE(r.nodes[1].degraded);
  EXPECT_FALSE(r.nodes[2].degraded);
  EXPECT_TRUE(r.nodes[3].degraded);
  EXPECT_GT(r.fault_counts.total(), 0);
  EXPECT_EQ(r.completed + r.unfinished, 20);

  // A clean rack of the same shape reports zero injected faults.
  const dc::RackResult clean = dc::runRack(smallRackSpec(4));
  EXPECT_EQ(clean.fault_counts.total(), 0);

  // Out-of-range degraded ids are rejected up front.
  spec.degraded = {7};
  EXPECT_THROW(static_cast<void>(dc::runRack(spec)), ContractError);
}

// ------------------------------------------------------------------- sweep

TEST(DcSweep, ExpansionOrderIsTrafficMajorAndDeterministic) {
  dc::DcSweepSpec spec;
  spec.base = smallRackSpec(2);
  spec.traffic = {TrafficSpec::parse("shape=steady;jobs=4"),
                  TrafficSpec::parse("shape=bursty;jobs=4")};
  spec.policies = {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded};
  spec.rack_caps_w = {100.0};
  spec.seeds = {1, 2};
  const auto jobs = dc::expandDcJobs(spec);
  ASSERT_EQ(jobs.size(), 8u);
  EXPECT_EQ(jobs[0].traffic, 0u);
  EXPECT_EQ(jobs[0].policy, 0u);
  EXPECT_EQ(jobs[0].seed, 0u);
  EXPECT_EQ(jobs[1].seed, 1u);  // seed is the innermost axis
  EXPECT_EQ(jobs[2].policy, 1u);
  EXPECT_EQ(jobs[4].traffic, 1u);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].index, i);

  const dc::RackSpec cell = dc::cellSpec(spec, jobs[5]);
  EXPECT_EQ(cell.traffic, spec.traffic[1]);
  EXPECT_EQ(cell.policy, DispatchPolicy::kRoundRobin);
  EXPECT_EQ(cell.seed, 2u);
}

TEST(DcSweep, EmptyAxesFallBackToTheBaseSpec) {
  // A spec with no axes set is one cell, and that cell IS the base —
  // configuring base.traffic (or policy/mechanism/seed) must never be
  // silently overridden by an axis default.
  dc::DcSweepSpec spec;
  spec.base = smallRackSpec(2);
  spec.base.traffic = TrafficSpec::parse("shape=adversarial;jobs=6;burst=3");
  spec.base.policy = DispatchPolicy::kDeadlineAware;
  spec.base.mechanism = "static-3";
  spec.base.seed = 42;
  spec.base.power.rack_cap_w = 123.0;

  const auto jobs = dc::expandDcJobs(spec);
  ASSERT_EQ(jobs.size(), 1u);
  const dc::RackSpec cell = dc::cellSpec(spec, jobs[0]);
  EXPECT_EQ(cell.traffic, spec.base.traffic);
  EXPECT_EQ(cell.policy, DispatchPolicy::kDeadlineAware);
  EXPECT_EQ(cell.mechanism, "static-3");
  EXPECT_EQ(cell.seed, 42u);
  EXPECT_DOUBLE_EQ(cell.power.rack_cap_w, 123.0);
}

TEST(DcSweep, JsonlByteIdenticalAcrossJobCounts) {
  dc::DcSweepSpec spec;
  spec.base = smallRackSpec(4);
  spec.base.traffic = TrafficSpec::parse("shape=steady;jobs=8;rate=4");
  spec.traffic = {spec.base.traffic};
  spec.policies = {DispatchPolicy::kLeastLoaded,
                   DispatchPolicy::kDeadlineAware};
  spec.seeds = {777, 778};

  std::string one;
  {
    ThreadPool pool(1);
    std::ostringstream os;
    EXPECT_EQ(dc::DcSweepRunner(spec, pool).runJsonl(os), 4u);
    one = os.str();
  }
  std::string eight;
  {
    ThreadPool pool(8);
    std::ostringstream os;
    EXPECT_EQ(dc::DcSweepRunner(spec, pool).runJsonl(os), 4u);
    eight = os.str();
  }
  EXPECT_EQ(one, eight);
  // The headline metrics are first-class columns.
  EXPECT_NE(one.find("\"deadline_miss_rate\":"), std::string::npos);
  EXPECT_NE(one.find("\"energy_per_job_mj\":"), std::string::npos);
  EXPECT_NE(one.find("\"steady_violation_frac\":"), std::string::npos);

  // CSV mirrors the JSONL rows.
  ThreadPool pool(2);
  const auto results = dc::DcSweepRunner(spec, pool).run();
  std::ostringstream csv;
  dc::writeCsv(spec, results, csv);
  const std::string text = csv.str();
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 5);
  EXPECT_NE(text.find("deadline_miss_rate"), std::string::npos);
}

}  // namespace
}  // namespace ssm
