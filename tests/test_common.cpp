// Unit tests for src/common: RNG determinism and distributions, statistics,
// table rendering, contract checking.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/ascii_chart.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace ssm {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.nextU64() == b.nextU64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, CopyPreservesStream) {
  Rng a(7);
  a.nextU64();
  Rng b = a;  // snapshot
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, ForkIsDecorrelated) {
  Rng root(9);
  Rng c0 = root.fork(0);
  Rng c1 = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 200; ++i)
    if (c0.nextU64() == c1.nextU64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.nextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(4);
  for (std::uint64_t bound : {1ULL, 2ULL, 6ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(r.nextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng r(4);
  EXPECT_EQ(r.nextBelow(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng r(5);
  constexpr int kBuckets = 6;
  constexpr int kDraws = 60000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.nextBelow(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.nextBernoulli(0.0));
    EXPECT_TRUE(r.nextBernoulli(1.0));
    EXPECT_FALSE(r.nextBernoulli(-3.0));
    EXPECT_TRUE(r.nextBernoulli(2.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(7);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += r.nextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng r(8);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(r.nextGaussian(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(9);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) s.add(r.nextExponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng r(10);
  const double w[] = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {};
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.nextCategorical(w)];
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.3, 0.015);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / double(kDraws), 0.6, 0.015);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng r(12);
  for (int i = 0; i < 100; ++i) {
    const double x = r.nextGaussian();
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(5.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_NEAR(mean(xs), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, GeomeanClampsNonPositive) {
  const std::vector<double> xs{0.0, 1.0};
  EXPECT_GT(geomean(xs), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, MapePercent) {
  const std::vector<double> actual{100.0, 200.0};
  const std::vector<double> pred{110.0, 190.0};
  EXPECT_NEAR(mapePercent(actual, pred), 7.5, 1e-12);
}

TEST(Stats, MapeLengthMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> p{1.0, 2.0};
  EXPECT_THROW(static_cast<void>(mapePercent(a, p)), ContractError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{2, 4, 6};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Standardizer, NormalizesToZeroMeanUnitVar) {
  // Two features over 4 rows.
  std::vector<double> rows{1, 10, 2, 20, 3, 30, 4, 40};
  const auto s = Standardizer::fit(rows, 2);
  RunningStat f0;
  RunningStat f1;
  for (int r = 0; r < 4; ++r) {
    std::vector<double> row{rows[2 * r], rows[2 * r + 1]};
    s.apply(row);
    f0.add(row[0]);
    f1.add(row[1]);
  }
  EXPECT_NEAR(f0.mean(), 0.0, 1e-12);
  EXPECT_NEAR(f1.mean(), 0.0, 1e-12);
  EXPECT_NEAR(f0.stddev(), 1.0, 1e-12);
  EXPECT_NEAR(f1.stddev(), 1.0, 1e-12);
}

TEST(Standardizer, ConstantFeatureSafe) {
  std::vector<double> rows{5, 1, 5, 2, 5, 3};
  const auto s = Standardizer::fit(rows, 2);
  std::vector<double> row{5, 2};
  s.apply(row);
  EXPECT_DOUBLE_EQ(row[0], 0.0);  // (5-5)*1.0
}

TEST(Units, CycleConversionsRoundTrip) {
  EXPECT_EQ(cyclesIn(10'000, 1165.0), 11'650);
  EXPECT_NEAR(nsPerCycle(1000.0), 1.0, 1e-12);
  EXPECT_EQ(nsOf(1165, 1165.0), 1000);
  EXPECT_NEAR(secondsOf(1'000'000'000), 1.0, 1e-12);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t("demo");
  t.header({"name", "value"});
  t.addRow({"a", Table::num(1.5)});
  t.addRow({"b,c", Table::pct(0.1109)});
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("demo"), std::string::npos);
  EXPECT_NE(text.str().find("11.09%"), std::string::npos);
  std::ostringstream csv;
  t.printCsv(csv);
  EXPECT_NE(csv.str().find("\"b,c\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), ContractError);
}

TEST(Table, RowsBeforeHeaderThrow) {
  Table t;
  EXPECT_THROW(t.addRow({"x"}), ContractError);
}

TEST(AsciiChart, RendersBarsScaledToMax) {
  std::ostringstream os;
  renderBarChart(os, "demo", {"a", "bb"}, {1.0, 2.0});
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  // The larger bar has more fill characters than the smaller one.
  const auto count_fill = [&](std::size_t from, std::size_t to) {
    return std::count(out.begin() + static_cast<std::ptrdiff_t>(from),
                      out.begin() + static_cast<std::ptrdiff_t>(to), '#');
  };
  const auto line2 = out.find("\n  bb");
  ASSERT_NE(line2, std::string::npos);
  EXPECT_LT(count_fill(0, line2), count_fill(line2, out.size()));
}

TEST(AsciiChart, ReferenceMarkerShown) {
  std::ostringstream os;
  BarChartOptions opts;
  opts.reference = 1.0;
  renderBarChart(os, "", {"x"}, {0.5}, opts);
  EXPECT_NE(os.str().find('|'), std::string::npos);
  EXPECT_NE(os.str().find("marks"), std::string::npos);
}

TEST(AsciiChart, RejectsBadInput) {
  std::ostringstream os;
  EXPECT_THROW(renderBarChart(os, "", {"a"}, {1.0, 2.0}), ContractError);
  EXPECT_THROW(renderBarChart(os, "", {"a"}, {-1.0}), ContractError);
  EXPECT_THROW(
      renderGroupedBarChart(os, "", {"a"}, {"s1", "s2"}, {{1.0}}),
      ContractError);
}

TEST(AsciiChart, GroupedChartHasLegendAndAllSeries) {
  std::ostringstream os;
  renderGroupedBarChart(os, "t", {"w1", "w2"}, {"alpha", "beta"},
                        {{1.0, 2.0}, {2.0, 1.0}});
  const std::string out = os.str();
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find('='), std::string::npos);  // second series fill
}

TEST(Check, ThrowsWithContext) {
  try {
    SSM_CHECK(false, "extra context");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos);
  }
}

}  // namespace
}  // namespace ssm
