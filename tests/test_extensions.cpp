// Tests for the extension modules: post-training quantization, the kernel
// profile text format and the hysteresis governor decorator.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "gpusim/hysteresis.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "workloads/profile_io.hpp"

namespace ssm {
namespace {

// ---- quantization -----------------------------------------------------------

Matrix randomInputs(std::size_t n, int dim, Rng& rng) {
  Matrix m(n, static_cast<std::size_t>(dim));
  for (double& v : m.flat()) v = rng.nextGaussian();
  return m;
}

/// A trained classifier fixture (blobs), reused across quantization tests.
struct TrainedNet {
  Mlp net{std::vector<int>{4, 12, 3}, Head::kSoftmaxClassifier, Rng(1)};
  Matrix inputs{0, 0};
  std::vector<int> labels;

  TrainedNet() {
    Rng rng(2);
    const int n = 300;
    inputs = Matrix(n, 4);
    labels.resize(n);
    for (int i = 0; i < n; ++i) {
      const int cls = i % 3;
      for (int c = 0; c < 4; ++c)
        inputs(static_cast<std::size_t>(i), static_cast<std::size_t>(c)) =
            rng.nextGaussian(1.5 * cls - 1.5, 0.6);
      labels[static_cast<std::size_t>(i)] = cls;
    }
    TrainConfig cfg;
    cfg.epochs = 60;
    AdamTrainer tr(cfg);
    tr.fitClassifier(net, inputs, labels);
  }
};

TEST(Quantize, Int8KeepsDecisionsClose) {
  const TrainedNet t;
  const QuantizedMlp q(t.net, QuantConfig{}, t.inputs);
  const double drift = quantizationDrift(t.net, q, t.inputs);
  EXPECT_LT(drift, 0.05);  // <5% of argmax decisions change at int8
}

TEST(Quantize, Int16IsTighterThanInt8) {
  const TrainedNet t;
  QuantConfig c8;
  QuantConfig c16;
  c16.weight_bits = QuantBits::kInt16;
  const QuantizedMlp q8(t.net, c8, t.inputs);
  const QuantizedMlp q16(t.net, c16, t.inputs);
  EXPECT_LE(quantizationDrift(t.net, q16, t.inputs),
            quantizationDrift(t.net, q8, t.inputs) + 1e-12);
}

TEST(Quantize, RegressionDriftSmall) {
  Rng rng(3);
  Mlp net({3, 10, 1}, Head::kRegression, Rng(4));
  Matrix x = randomInputs(200, 3, rng);
  std::vector<double> y(200);
  for (std::size_t i = 0; i < 200; ++i)
    y[i] = 5.0 + x(i, 0) - 0.5 * x(i, 1) + 0.25 * x(i, 2);
  TrainConfig cfg;
  cfg.epochs = 120;
  AdamTrainer tr(cfg);
  tr.fitRegression(net, x, y);
  QuantConfig qc;
  qc.weight_bits = QuantBits::kInt16;
  const QuantizedMlp q(net, qc, x);
  EXPECT_LT(quantizationDrift(net, q, x), 0.02);  // MAPE fraction
}

TEST(Quantize, WeightsWithinRange) {
  const TrainedNet t;
  const QuantizedMlp q(t.net, QuantConfig{}, t.inputs);
  for (const auto& layer : q.layers())
    for (std::int32_t w : layer.weights) {
      EXPECT_GE(w, -127);
      EXPECT_LE(w, 127);
    }
}

TEST(Quantize, ModelBytesShrinkWithBitsAndSparsity) {
  const TrainedNet t;
  QuantConfig c8;
  QuantConfig c16;
  c16.weight_bits = QuantBits::kInt16;
  const QuantizedMlp q8(t.net, c8, t.inputs);
  const QuantizedMlp q16(t.net, c16, t.inputs);
  EXPECT_LT(q8.modelBytes(), q16.modelBytes());

  Mlp pruned = t.net;
  pruned.layer(0).mask().fill(0.0);
  pruned.applyMasks();
  const QuantizedMlp qp(pruned, c8, t.inputs);
  EXPECT_LT(qp.modelBytes(), q8.modelBytes());
}

TEST(Quantize, EmptyCalibrationSkipsActivationQuant) {
  const TrainedNet t;
  const QuantizedMlp q(t.net, QuantConfig{}, Matrix(0, 0));
  // Still usable; decisions close to float.
  EXPECT_LT(quantizationDrift(t.net, q, t.inputs), 0.05);
}

// ---- profile text format ------------------------------------------------------

constexpr const char* kGoodProfile = R"(# demo file
kernel demo custom
warps_per_cluster 16
phase_loops 3
phase ialu=0.30 falu=0.30 sfu=0.00 load=0.20 store=0.05 shared=0.10 branch=0.05 l1=0.80 l2=0.50 ilp=4 div=0.10 dep=0.25 insts=2000
end
)";

TEST(ProfileIo, ParsesValidKernel) {
  std::istringstream is(kGoodProfile);
  const auto kernels = parseProfiles(is);
  ASSERT_EQ(kernels.size(), 1u);
  const auto& k = kernels.front();
  EXPECT_EQ(k.name, "demo");
  EXPECT_EQ(k.suite, "custom");
  EXPECT_EQ(k.warps_per_cluster, 16);
  EXPECT_EQ(k.phase_loops, 3);
  ASSERT_EQ(k.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(k.phases[0].mix.load, 0.20);
  EXPECT_EQ(k.phases[0].insts_per_warp, 2000);
}

TEST(ProfileIo, RoundTripsRegistry) {
  std::ostringstream os;
  writeProfiles(allWorkloads(), os);
  std::istringstream is(os.str());
  const auto back = parseProfiles(is);
  ASSERT_EQ(back.size(), allWorkloads().size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].name, allWorkloads()[i].name);
    EXPECT_EQ(back[i].phases.size(), allWorkloads()[i].phases.size());
    EXPECT_DOUBLE_EQ(back[i].phases[0].l1_hit_rate,
                     allWorkloads()[i].phases[0].l1_hit_rate);
    EXPECT_EQ(back[i].totalInstsPerWarp(),
              allWorkloads()[i].totalInstsPerWarp());
  }
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = "ssm_test_profiles.txt";
  saveProfilesToFile({workloadByName("sgemm")}, path);
  const auto back = loadProfilesFromFile(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.front().name, "sgemm");
  EXPECT_THROW(static_cast<void>(loadProfilesFromFile("no/such.prof")),
               DataError);
}

TEST(ProfileIo, RejectsMalformedInput) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(static_cast<void>(parseProfiles(is)), DataError) << text;
  };
  expect_fail("warps_per_cluster 4\n");              // outside kernel
  expect_fail("kernel a\nkernel b\nend\n");          // unclosed kernel
  expect_fail("kernel a\nphase ialu=1\nend\n");      // missing keys
  expect_fail("kernel a\nbogus 3\nend\n");           // unknown keyword
  expect_fail("kernel a\nphase ialu=x\nend\n");      // bad number
  expect_fail("kernel a\n");                          // EOF inside kernel
  // Valid syntax but invalid semantics (mix does not sum to 1).
  expect_fail(
      "kernel a custom\n"
      "phase ialu=0.9 falu=0.9 sfu=0 load=0 store=0 shared=0 branch=0 "
      "l1=0.5 l2=0.5 ilp=2 div=0.1 dep=0.2 insts=100\nend\n");
}

// ---- hysteresis decorator -----------------------------------------------------

/// Inner governor that flaps between two levels every epoch.
class FlappingGovernor final : public DvfsGovernor {
 public:
  VfLevel decide(const EpochObservation&) override {
    flip_ = !flip_;
    return flip_ ? 1 : 5;
  }

 private:
  bool flip_ = false;
};

EpochObservation levelObs(int level) {
  EpochObservation obs;
  obs.level = level;
  return obs;
}

TEST(Hysteresis, ValidatesConfig) {
  HysteresisConfig bad;
  bad.min_dwell_epochs = 0;
  EXPECT_THROW(HysteresisGovernor(std::make_unique<FlappingGovernor>(), bad),
               ContractError);
  EXPECT_THROW(HysteresisGovernor(nullptr, HysteresisConfig{}),
               ContractError);
}

TEST(Hysteresis, EnforcesMinimumDwell) {
  HysteresisConfig cfg;
  cfg.min_dwell_epochs = 3;
  HysteresisGovernor gov(std::make_unique<FlappingGovernor>(), cfg);
  int switches = 0;
  int prev = 5;
  for (int e = 0; e < 30; ++e) {
    const int level = gov.decide(levelObs(prev));
    switches += level != prev;
    prev = level;
  }
  // The flapping inner governor would switch ~30 times; dwell 3 caps it.
  EXPECT_LE(switches, 11);
  EXPECT_GT(switches, 0);
}

TEST(Hysteresis, PassesThroughStableDecisions) {
  class ConstantGovernor final : public DvfsGovernor {
   public:
    VfLevel decide(const EpochObservation&) override { return 2; }
  };
  HysteresisGovernor gov(std::make_unique<ConstantGovernor>(),
                         HysteresisConfig{});
  int level = 5;
  for (int e = 0; e < 10; ++e) level = gov.decide(levelObs(level));
  EXPECT_EQ(level, 2);
}

TEST(Hysteresis, ConfirmSwitchNeedsTwoRequests) {
  // Inner asks 5,2,2,...: with confirm_switch the first '2' is ignored.
  class OneShotGovernor final : public DvfsGovernor {
   public:
    VfLevel decide(const EpochObservation&) override {
      return ++calls_ >= 2 ? 2 : 5;
    }

   private:
    int calls_ = 0;
  };
  HysteresisConfig cfg;
  cfg.min_dwell_epochs = 1;
  cfg.confirm_switch = true;
  HysteresisGovernor gov(std::make_unique<OneShotGovernor>(), cfg);
  EXPECT_EQ(gov.decide(levelObs(5)), 5);  // inner says 5
  EXPECT_EQ(gov.decide(levelObs(5)), 5);  // inner says 2: pending
  EXPECT_EQ(gov.decide(levelObs(5)), 2);  // confirmed
}

TEST(Hysteresis, FullRunReducesTransitions) {
  GpuConfig gpu;
  gpu.num_clusters = 2;
  Gpu g(gpu, VfTable::titanX(), workloadByName("hotspot"), 9,
        ChipPowerModel(2));

  // An intentionally twitchy inner policy: ondemand-like thresholds that
  // react to epoch noise.
  class TwitchyFactory final : public GovernorFactory {
   public:
    std::unique_ptr<DvfsGovernor> create(int) const override {
      class Twitchy final : public DvfsGovernor {
       public:
        VfLevel decide(const EpochObservation& obs) override {
          const double ipc = obs.counters.get(CounterId::kIpc);
          return ipc > 1.4 ? 5 : (ipc > 0.9 ? 3 : 1);
        }
      };
      return std::make_unique<Twitchy>();
    }
  };
  const TwitchyFactory raw;
  HysteresisConfig hcfg;
  hcfg.min_dwell_epochs = 4;
  const HysteresisFactory damped(raw, hcfg);

  EpochTraceRecorder t_raw;
  EpochTraceRecorder t_damped;
  (void)runWithGovernor(g, raw, "raw", 5 * kNsPerMs, &t_raw);
  (void)runWithGovernor(g, damped, "damped", 5 * kNsPerMs, &t_damped);
  EXPECT_LT(t_damped.totalTransitions(), t_raw.totalTransitions());
}

}  // namespace
}  // namespace ssm
