// Experiment E6 — §V.D hardware implementation cost of the SSMDVFS module.
//
// Paper (65 nm synthesis scaled to 28 nm with DeepScaleTool, FP32):
//   192 cycles/inference = 0.16 µs at 1165 MHz (1.65 % of a 10 µs epoch),
//   0.0080 mm^2, 0.0025 W.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "hw/asic_model.hpp"

using namespace ssm;
using namespace ssm::bench;

int main() {
  std::cout << "=== E6: §V.D — ASIC inference-module cost ===\n\n";
  const FullSystem sys = buildSharedSystem();

  const AsicReport r = estimateAsic(sys.compressed->decisionNet(),
                                    sys.compressed->calibratorNet());

  Table d("Cost-model inputs (compressed + pruned model)");
  d.header({"quantity", "value"});
  d.addRow({"live MACs", std::to_string(r.macs)});
  d.addRow({"stored words (weights+biases)", std::to_string(r.weight_words)});
  d.addRow({"model FLOPs", std::to_string(sys.compressed->flops())});
  d.print(std::cout);
  std::cout << '\n';

  Table t("§V.D comparison");
  t.header({"metric", "paper", "measured"});
  t.addRow({"cycles per inference", "192",
            std::to_string(r.cycles_per_inference)});
  t.addRow({"inference time @1165 MHz", "0.16 us",
            Table::num(r.time_us, 3) + " us"});
  t.addRow({"share of one 10 us epoch", "1.65%",
            Table::pct(r.dvfs_period_fraction)});
  t.addRow({"area @28 nm", "0.0080 mm^2",
            Table::num(r.area_mm2_28, 4) + " mm^2"});
  t.addRow({"power @28 nm", "0.0025 W", Table::num(r.power_w_28, 4) + " W"});
  t.addRow({"energy per inference", "-",
            Table::num(r.energy_per_inference_nj_28, 3) + " nJ"});
  t.print(std::cout);

  std::cout << "\ncontext: GTX Titan X die is ~601 mm^2 and 250 W TDP; the "
               "module is negligible on both axes, as in the paper.\n";
  return 0;
}
