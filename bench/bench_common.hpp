// Shared infrastructure for the experiment harnesses (bench/ binaries).
//
// Every §V experiment consumes the same artifacts: the generated training
// corpus (cached as CSV) and the trained uncompressed/compressed models
// (cached as text dumps). buildSharedSystem() materialises them once in
// ./ssm_artifacts; whichever bench runs first pays the build cost.
#pragma once

#include <string>
#include <vector>

#include "baselines/flemma.hpp"
#include "baselines/pcstall.hpp"
#include "compress/pipeline.hpp"
#include "core/ssm_governor.hpp"
#include "gpusim/runner.hpp"

namespace ssm {
class ThreadPool;
}

namespace ssm::bench {

/// Loads (or generates + trains) the shared full system.
[[nodiscard]] FullSystem buildSharedSystem();

/// The §V.C mechanism line-up, in presentation order.
[[nodiscard]] const std::vector<std::string>& mechanismNames();

/// One evaluation row of Fig. 4: EDP and latency normalized to the
/// default-V/f baseline, per mechanism (order = mechanismNames()).
struct Fig4Row {
  std::string workload;
  double base_edp = 0.0;        ///< joule-seconds, absolute
  double base_time_us = 0.0;
  std::vector<double> edp;      ///< normalized
  std::vector<double> lat;      ///< normalized
};

/// Runs the full §V.C comparison on the evaluation split at one preset.
/// With a pool, each workload row runs as an independent job; rows are
/// collected in workload order, so the output is identical to serial.
[[nodiscard]] std::vector<Fig4Row> runFig4(const FullSystem& sys,
                                           double preset,
                                           std::uint64_t seed = 777,
                                           ThreadPool* pool = nullptr);

/// Column-wise arithmetic mean over rows.
[[nodiscard]] Fig4Row meanRow(const std::vector<Fig4Row>& rows);

}  // namespace ssm::bench
