// Datacenter-rack benchmark (google-benchmark): how fast src/dc pushes a
// rack of governed GPUs through deadline-tagged traffic, plus the
// machine-readable BENCH_dc.json regression report.
//
// The report pins the dc layer down from two sides. The simulation outcome
// (jobs generated, deadline-miss rate, energy per job, cap compliance) is
// deterministic for a fixed spec and seed — drift there means the traffic
// generator, dispatcher, coordinator or node loop changed behaviour. The
// throughput figure (dc_gpu_epochs_per_sec) rides tools/bench_check's
// multiplicative tolerance band like every other timing. Override the
// output path with SSM_BENCH_DC_OUT; pass --benchmark_filter=__none__ to
// skip the interactive suite and emit only the report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "dc/rack.hpp"
#include "dc/traffic.hpp"

namespace ssm {
namespace {

/// Synthetic kernels keep one rack run in benchmark time on a single core
/// (the registry workloads are ~100x longer).
KernelProfile tinyKernel(const char* name, std::int64_t insts_per_warp,
                         double load_frac) {
  KernelProfile k;
  k.name = name;
  k.suite = "synthetic";
  PhaseProfile p;
  p.mix.ialu = 0.95 - load_frac;
  p.mix.load = load_frac;
  p.mix.branch = 0.05;
  p.insts_per_warp = insts_per_warp;
  k.phases = {p};
  k.warps_per_cluster = 8;
  k.validate();
  return k;
}

/// The benchmark rack: 8 four-cluster GPUs under a deliberately binding
/// cap (15 W per chip against a ~21 W peak draw), bursty deadline-tagged
/// traffic, ondemand chips. Every field is pinned so the report's outcome
/// columns stay comparable across runs.
dc::RackSpec benchRackSpec() {
  dc::RackSpec spec;
  spec.gpus = 8;
  spec.gpu.num_clusters = 4;
  spec.mix = {tinyKernel("tiny-compute", 8800, 0.05),
              tinyKernel("tiny-memory", 6600, 0.30)};
  spec.traffic =
      dc::TrafficSpec::parse("shape=bursty;jobs=48;rate=4;burst=6");
  spec.policy = dc::DispatchPolicy::kDeadlineAware;
  spec.idle_power_w = 5.0;
  spec.power.idle_floor_w = 6.0;
  spec.power.rack_cap_w = 15.0 * spec.gpus;
  spec.max_rounds = 4000;
  return spec;
}

void BM_DcRack(benchmark::State& state) {
  const dc::RackSpec spec = benchRackSpec();
  std::int64_t epochs = 0;
  for (auto _ : state) {
    const dc::RackResult result = runRack(spec);
    epochs += result.busy_gpu_epochs;
    // rvalue on purpose: this benchmark lib's DoNotOptimize clobbers
    // non-const lvalues.
    benchmark::DoNotOptimize(result.deadline_miss_rate + 0.0);
  }
  state.SetItemsProcessed(epochs);  // items/s == busy GPU-epochs per second
}
BENCHMARK(BM_DcRack)->Unit(benchmark::kMillisecond);

/// Best (minimum) of `repeats` wall-clock samples of one full rack run, in
/// ns — the same robust-minimum estimate bench_micro_perf uses, since
/// preemption on a shared core only ever inflates a sample.
double bestRackNs(const dc::RackSpec& spec, int repeats,
                  dc::RackResult& out) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    dc::RackResult result = runRack(spec);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.deadline_miss_rate + 0.0);
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count());
    out = std::move(result);
  }
  return best;
}

}  // namespace

/// Runs the pinned benchmark rack and writes one flat JSON object. Keys
/// are stable: tools/bench_check and CI parse them.
void writeDcReport(const std::string& path) {
  const dc::RackSpec spec = benchRackSpec();
  dc::RackResult rack;
  const double ns_per_run = bestRackNs(spec, 5, rack);
  const double gpu_epochs_per_sec =
      static_cast<double>(rack.busy_gpu_epochs) * 1e9 / ns_per_run;

  std::ofstream os(path);
  SSM_CHECK(os.good(), "cannot open BENCH_dc.json output path");
  os << "{\n"
     << "  \"rack\": \"8x4cluster_tiny_bursty_deadline-aware\",\n"
     << "  \"traffic\": \"" << spec.traffic.print() << "\",\n"
     << "  \"mechanism\": \"" << spec.mechanism << "\",\n"
     << "  \"gpus\": " << rack.gpus << ",\n"
     << "  \"rack_cap_w\": " << spec.power.rack_cap_w << ",\n"
     << "  \"jobs_total\": " << rack.jobs.size() << ",\n"
     << "  \"completed\": " << rack.completed << ",\n"
     << "  \"unfinished\": " << rack.unfinished << ",\n"
     << "  \"rounds\": " << rack.rounds << ",\n"
     << "  \"busy_gpu_epochs\": " << rack.busy_gpu_epochs << ",\n"
     << "  \"deadline_miss_rate\": " << rack.deadline_miss_rate << ",\n"
     << "  \"energy_per_job_mj\": " << rack.energy_per_job_j * 1e3 << ",\n"
     << "  \"mean_rack_power_w\": " << rack.mean_rack_power_w << ",\n"
     << "  \"max_rack_power_w\": " << rack.max_rack_power_w << ",\n"
     << "  \"cap_violation_frac\": " << rack.cap_violation_frac << ",\n"
     << "  \"steady_violation_frac\": " << rack.steady_violation_frac
     << ",\n"
     << "  \"dc_gpu_epochs_per_sec\": " << gpu_epochs_per_sec << "\n"
     << "}\n";
  std::cout << "wrote " << path << " (miss rate " << rack.deadline_miss_rate
            << ", energy/job " << rack.energy_per_job_j * 1e3 << " mJ, "
            << gpu_epochs_per_sec << " GPU-epochs/s)\n";
}

}  // namespace ssm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out = std::getenv("SSM_BENCH_DC_OUT");
  ssm::writeDcReport(out != nullptr ? out : "BENCH_dc.json");
  return 0;
}
