// Micro-benchmarks (google-benchmark): simulator throughput, model
// inference latency and governor decision cost. These back the §V.D claim
// that one SSMDVFS decision is cheap relative to a 10 µs epoch, and
// document the simulator's own performance envelope.
#include <benchmark/benchmark.h>

#include "compress/pruning.hpp"
#include "core/ssm_governor.hpp"
#include "datagen/generator.hpp"
#include "gpusim/gpu.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

void BM_SimulatorEpoch(benchmark::State& state,
                       const std::string& workload) {
  GpuConfig cfg;
  Gpu gpu(cfg, VfTable::titanX(), workloadByName(workload), 1,
          ChipPowerModel(cfg.num_clusters));
  Gpu fresh = gpu;
  for (auto _ : state) {
    if (fresh.allDone()) {
      state.PauseTiming();
      fresh = gpu;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(fresh.runEpochUniform(5));
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_clusters);
}
BENCHMARK_CAPTURE(BM_SimulatorEpoch, sgemm, std::string("sgemm"));
BENCHMARK_CAPTURE(BM_SimulatorEpoch, spmv, std::string("spmv"));
BENCHMARK_CAPTURE(BM_SimulatorEpoch, hotspot, std::string("hotspot"));

void BM_GpuSnapshot(benchmark::State& state) {
  GpuConfig cfg;
  Gpu gpu(cfg, VfTable::titanX(), workloadByName("hotspot"), 1,
          ChipPowerModel(cfg.num_clusters));
  gpu.runEpochUniform(5);
  for (auto _ : state) {
    Gpu copy = gpu;  // the snapshot operation used by data generation
    benchmark::DoNotOptimize(copy.nowNs());
  }
}
BENCHMARK(BM_GpuSnapshot);

Mlp makeNet(bool compressed, bool pruned) {
  const auto dims = compressed ? std::vector<int>{6, 12, 12, 6}
                               : std::vector<int>{6, 20, 20, 20, 20, 20, 6};
  Mlp net(dims, Head::kSoftmaxClassifier, Rng(1));
  if (pruned) {
    magnitudePruneTo(net, 0.6);
    neuronPrune(net, 0.9);
  }
  return net;
}

void BM_ModelInference(benchmark::State& state, bool compressed,
                       bool pruned) {
  const Mlp net = makeNet(compressed, pruned);
  const std::vector<double> input{1.2, 0.4, -0.3, 0.9, 0.1, 0.1};
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(input));
  state.counters["flops"] = static_cast<double>(net.flops());
}
BENCHMARK_CAPTURE(BM_ModelInference, uncompressed, false, false);
BENCHMARK_CAPTURE(BM_ModelInference, compressed, true, false);
BENCHMARK_CAPTURE(BM_ModelInference, compressed_pruned, true, true);

void BM_DatagenBreakpoint(benchmark::State& state) {
  GpuConfig cfg;
  cfg.num_clusters = 4;
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 4;
  const DataGenerator dg(cfg, VfTable::titanX(), gen);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dg.generateForWorkload(workloadByName("stencil"), seed++));
}
BENCHMARK(BM_DatagenBreakpoint)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssm

BENCHMARK_MAIN();
