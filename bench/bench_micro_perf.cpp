// Micro-benchmarks (google-benchmark): simulator throughput, model
// inference latency and governor decision cost. These back the §V.D claim
// that one SSMDVFS decision is cheap relative to a 10 µs epoch, and
// document the simulator's own performance envelope.
//
// Beyond the interactive google-benchmark output, the binary always ends by
// measuring the packed-vs-reference inference contrast directly and writing
// the machine-readable BENCH_inference.json (override the path with
// SSM_BENCH_INFERENCE_OUT). tools/bench_check compares that file against
// the committed baseline in bench/baselines/. Pass
// --benchmark_filter=__none__ to skip the interactive suite and emit only
// the JSON report.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "compress/pruning.hpp"
#include "core/ssm_governor.hpp"
#include "datagen/generator.hpp"
#include "engine/replay_backend.hpp"
#include "engine/trace_io.hpp"
#include "gpusim/gpu.hpp"
#include "gpusim/runner.hpp"
#include "gpusim/trace.hpp"
#include "nn/packed_int8.hpp"
#include "nn/packed_mlp.hpp"
#include "nn/quantize.hpp"
#include "nn/simd.hpp"
#include "workloads/kernel_profile.hpp"

namespace ssm {
namespace {

void BM_SimulatorEpoch(benchmark::State& state,
                       const std::string& workload) {
  GpuConfig cfg;
  Gpu gpu(cfg, VfTable::titanX(), workloadByName(workload), 1,
          ChipPowerModel(cfg.num_clusters));
  Gpu fresh = gpu;
  for (auto _ : state) {
    if (fresh.allDone()) {
      state.PauseTiming();
      fresh = gpu;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(fresh.runEpochUniform(5));
  }
  state.SetItemsProcessed(state.iterations() * cfg.num_clusters);
}
BENCHMARK_CAPTURE(BM_SimulatorEpoch, sgemm, std::string("sgemm"));
BENCHMARK_CAPTURE(BM_SimulatorEpoch, spmv, std::string("spmv"));
BENCHMARK_CAPTURE(BM_SimulatorEpoch, hotspot, std::string("hotspot"));

void BM_GpuSnapshot(benchmark::State& state) {
  GpuConfig cfg;
  Gpu gpu(cfg, VfTable::titanX(), workloadByName("hotspot"), 1,
          ChipPowerModel(cfg.num_clusters));
  gpu.runEpochUniform(5);
  for (auto _ : state) {
    Gpu copy = gpu;  // the snapshot operation used by data generation
    benchmark::DoNotOptimize(copy.nowNs());
  }
}
BENCHMARK(BM_GpuSnapshot);

Mlp makeNet(bool compressed, bool pruned) {
  const auto dims = compressed ? std::vector<int>{6, 12, 12, 6}
                               : std::vector<int>{6, 20, 20, 20, 20, 20, 6};
  Mlp net(dims, Head::kSoftmaxClassifier, Rng(1));
  if (pruned) {
    magnitudePruneTo(net, 0.6);
    neuronPrune(net, 0.9);
  }
  return net;
}

const std::vector<double>& probeInput() {
  static const std::vector<double> input{1.2, 0.4, -0.3, 0.9, 0.1, 0.1};
  return input;
}

void BM_ModelInference(benchmark::State& state, bool compressed,
                       bool pruned) {
  const Mlp net = makeNet(compressed, pruned);
  const std::vector<double>& input = probeInput();
  for (auto _ : state) benchmark::DoNotOptimize(net.forward(input));
  state.counters["flops"] = static_cast<double>(net.flops());
  state.counters["flops_dense"] = static_cast<double>(net.denseFlops());
}
BENCHMARK_CAPTURE(BM_ModelInference, uncompressed, false, false);
BENCHMARK_CAPTURE(BM_ModelInference, compressed, true, false);
BENCHMARK_CAPTURE(BM_ModelInference, compressed_pruned, true, true);

void BM_PackedInference(benchmark::State& state, bool compressed,
                        bool pruned) {
  const Mlp net = makeNet(compressed, pruned);
  const PackedMlp packed(net);
  PackedMlp::Scratch scratch = packed.makeScratch();
  std::vector<double> out(static_cast<std::size_t>(packed.outputDim()));
  const std::vector<double>& input = probeInput();
  for (auto _ : state) {
    packed.forward(input, scratch, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.counters["flops_executed"] =
      static_cast<double>(packed.flopsExecuted());
  state.counters["sparse_layers"] =
      static_cast<double>(packed.sparseLayerCount());
}
BENCHMARK_CAPTURE(BM_PackedInference, uncompressed, false, false);
BENCHMARK_CAPTURE(BM_PackedInference, compressed, true, false);
BENCHMARK_CAPTURE(BM_PackedInference, compressed_pruned, true, true);

/// The deployed pruned model compiled onto the §V.D int8 ASIC datapath:
/// int8 weight codes, integer MAC accumulation, one requantize per layer.
PackedInt8Mlp makeInt8(const Mlp& net, std::size_t calibration_rows) {
  const QuantConfig qcfg{.weight_bits = QuantBits::kInt8,
                         .quantize_activations = true};
  Matrix calib(calibration_rows, static_cast<std::size_t>(net.inputDim()));
  for (std::size_t r = 0; r < calib.rows(); ++r)
    for (std::size_t c = 0; c < calib.cols(); ++c)
      calib(r, c) = 1.5 - 0.05 * static_cast<double>(r) +
                    0.2 * static_cast<double>(c);
  return PackedInt8Mlp(QuantizedMlp(net, qcfg, calib));
}

void BM_PackedInt8Inference(benchmark::State& state) {
  const Mlp net = makeNet(true, true);
  const PackedInt8Mlp int8 = makeInt8(net, 64);
  PackedInt8Mlp::Scratch scratch = int8.makeScratch();
  const std::vector<double>& input = probeInput();
  for (auto _ : state)
    benchmark::DoNotOptimize(int8.predictClass(input, scratch));
  state.counters["asic_cycles"] =
      static_cast<double>(int8.asicCyclesPerInference());
  state.counters["model_bytes"] = static_cast<double>(int8.modelBytes());
}
BENCHMARK(BM_PackedInt8Inference);

/// Fills an R x 6 feature batch with deterministic per-row perturbations of
/// the probe input (one row per cluster in the batched-decision use case).
Matrix makeBatch(std::size_t rows) {
  Matrix batch(rows, probeInput().size());
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < batch.cols(); ++c)
      batch(r, c) = probeInput()[c] + 0.01 * static_cast<double>(r);
  return batch;
}

void BM_PackedInferenceBatch(benchmark::State& state) {
  const Mlp net = makeNet(true, true);
  const PackedMlp packed(net);
  const GpuConfig cfg;  // one row per cluster, the Decision-maker batch
  const auto rows = static_cast<std::size_t>(cfg.num_clusters);
  const Matrix batch = makeBatch(rows);
  Matrix out(rows, static_cast<std::size_t>(packed.outputDim()));
  PackedMlp::Scratch scratch = packed.makeScratch();
  packed.reserveBatchScratch(scratch, rows);
  for (auto _ : state) {
    packed.forwardBatch(batch, scratch, out);
    benchmark::DoNotOptimize(out(0, 0));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_PackedInferenceBatch);

const FullSystem& sharedSystem() {
  static const FullSystem sys = bench::buildSharedSystem();
  return sys;
}

/// One representative mid-run cluster observation for the decision path.
EpochObservation sampleObservation() {
  GpuConfig cfg;
  Gpu gpu(cfg, VfTable::titanX(), workloadByName("sgemm"), 1,
          ChipPowerModel(cfg.num_clusters));
  GpuEpochReport report = gpu.runEpochUniform(5);
  for (int e = 0; e < 4; ++e) report = gpu.runEpochUniform(5);
  return report.clusters.front();
}

void BM_GovernorDecide(benchmark::State& state, bool compressed) {
  const FullSystem& sys = sharedSystem();
  SsmdvfsGovernor gov(compressed ? sys.compressed : sys.uncompressed,
                      SsmGovernorConfig{});
  const EpochObservation obs = sampleObservation();
  for (auto _ : state) benchmark::DoNotOptimize(gov.decide(obs));
}
BENCHMARK_CAPTURE(BM_GovernorDecide, uncompressed, false);
BENCHMARK_CAPTURE(BM_GovernorDecide, compressed, true);

void BM_SweepThroughput(benchmark::State& state) {
  const FullSystem& sys = sharedSystem();
  const SsmGovernorFactory factory(sys.compressed, SsmGovernorConfig{});
  const std::vector<KernelProfile> programs = {workloadByName("sgemm")};
  const SequenceConfig seq;
  std::int64_t epochs = 0;
  for (auto _ : state) {
    const std::vector<RunResult> results =
        runSequence(programs, factory, "ssmdvfs-comp", seq);
    epochs += results.front().epochs;
    benchmark::DoNotOptimize(results.front().edp);
  }
  state.SetItemsProcessed(epochs);  // items/s == governed epochs per second
}
BENCHMARK(BM_SweepThroughput)->Unit(benchmark::kMillisecond);

/// Records the BM_SweepThroughput configuration (sgemm under the shared
/// compressed governor, seed 777) into an in-memory trace: the input for
/// the replay-vs-simulation throughput contrast.
engine::EpochTrace recordedSgemmTrace() {
  const FullSystem& sys = sharedSystem();
  const SsmGovernorFactory factory(sys.compressed, SsmGovernorConfig{});
  const GpuConfig cfg;
  const VfTable vf = VfTable::titanX();
  EpochTraceRecorder rec;
  rec.enableReplayCapture();
  Gpu gpu(cfg, vf, workloadByName("sgemm"), 777,
          ChipPowerModel(cfg.num_clusters));
  const RunResult recorded =
      runWithGovernor(std::move(gpu), factory, "ssmdvfs-comp", 5 * kNsPerMs,
                      &rec);
  return engine::traceFromRecorder(rec, "sgemm", "ssmdvfs-comp", 777, vf,
                                   recorded);
}

void BM_ReplayThroughput(benchmark::State& state) {
  const FullSystem& sys = sharedSystem();
  const SsmGovernorFactory factory(sys.compressed, SsmGovernorConfig{});
  const engine::EpochTrace trace = recordedSgemmTrace();
  std::int64_t epochs = 0;
  for (auto _ : state) {
    const engine::ReplayReport rep =
        engine::replayTrace(trace, factory, "ssmdvfs-comp");
    epochs += rep.result.epochs;
    benchmark::DoNotOptimize(rep.agreement);
  }
  state.SetItemsProcessed(epochs);  // items/s == replayed epochs per second
}
BENCHMARK(BM_ReplayThroughput)->Unit(benchmark::kMicrosecond);

void BM_DatagenBreakpoint(benchmark::State& state) {
  GpuConfig cfg;
  cfg.num_clusters = 4;
  GenConfig gen;
  gen.runs_per_workload = 1;
  gen.clusters_sampled = 4;
  const DataGenerator dg(cfg, VfTable::titanX(), gen);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dg.generateForWorkload(workloadByName("stencil"), seed++));
}
BENCHMARK(BM_DatagenBreakpoint)->Unit(benchmark::kMillisecond);

// --- machine-readable packed-inference report (BENCH_inference.json) ------

/// Best (minimum) of `repeats` timing samples of `ops` calls each, in
/// ns/op. On a shared core the minimum is the robust latency estimate —
/// preemption only ever inflates a sample — which keeps the committed
/// baseline comparable across runs for tools/bench_check.
template <typename F>
double bestNsPerOp(F&& fn, int ops, int repeats) {
  for (int i = 0; i < ops / 4; ++i) fn();  // warm caches and branch state
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::nano>(t1 - t0).count() / ops);
  }
  return best;
}

}  // namespace

/// Times the deployment configuration (the (0.6, 0.9)-pruned 6-12-12-6
/// Decision-maker) through both engines plus the surrounding decision
/// machinery and writes one flat JSON object. Keys are stable: bench_check
/// and CI parse them.
void writeInferenceReport(const std::string& path) {
  const Mlp dense_net = makeNet(false, false);  // the 9x20-class reference
  const Mlp net = makeNet(true, true);          // the deployed pruned model
  const PackedMlp packed(net);
  PackedMlp::Scratch scratch = packed.makeScratch();
  std::vector<double> out(static_cast<std::size_t>(packed.outputDim()));
  const std::vector<double>& input = probeInput();

  constexpr int kOps = 20000;
  constexpr int kRepeats = 9;
  // The headline single-decision contrast mirrors the paper's deployment
  // story (§IV, Table II: ~366 useful FLOPs instead of the dense 6960):
  // the reference decision runs the uncompressed network through
  // Mlp::forward — dense matvecs through every stored weight, one heap
  // allocation per layer, softmax — plus argmax, while the deployed
  // decision runs the (0.6, 0.9)-pruned model through
  // PackedMlp::predictClass, which walks only stored non-zeros, never
  // allocates, and skips the softmax (argmax over logits equals argmax
  // over probabilities). Same-engine/same-model contrasts are reported
  // alongside so each factor is visible on its own.
  const double reference_dense_decide_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(dense_net.predictClass(input)); }, kOps,
      kRepeats);
  const double reference_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(net.forward(input)); }, kOps, kRepeats);
  const double packed_ns = bestNsPerOp(
      [&] {
        packed.forward(input, scratch, out);
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
      },
      kOps, kRepeats);
  const double reference_decide_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(net.predictClass(input)); }, kOps,
      kRepeats);
  const double packed_decide_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(packed.predictClass(input, scratch)); },
      kOps, kRepeats);

  // The same pruned model compiled onto the int8 ASIC datapath (§V.D).
  // The cycle count and byte footprint are structural (the compiled
  // configuration, not a timing); the decide latency rides the band.
  const PackedInt8Mlp int8 = makeInt8(net, 64);
  PackedInt8Mlp::Scratch int8_scratch = int8.makeScratch();
  const double int8_decide_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(int8.predictClass(input, int8_scratch)); },
      kOps, kRepeats);

  const GpuConfig gpu_cfg;
  const auto rows = static_cast<std::size_t>(gpu_cfg.num_clusters);
  const Matrix batch = makeBatch(rows);
  Matrix batch_out(rows, static_cast<std::size_t>(packed.outputDim()));
  packed.reserveBatchScratch(scratch, rows);
  const double batch_row_ns =
      bestNsPerOp(
          [&] {
            packed.forwardBatch(batch, scratch, batch_out);
            benchmark::DoNotOptimize(batch_out(0, 0));
            benchmark::ClobberMemory();
          },
          kOps / static_cast<int>(rows), kRepeats) /
      static_cast<double>(rows);

  const FullSystem& sys = sharedSystem();
  SsmdvfsGovernor gov(sys.compressed, SsmGovernorConfig{});
  const EpochObservation obs = sampleObservation();
  const double decide_ns = bestNsPerOp(
      [&] { benchmark::DoNotOptimize(gov.decide(obs)); }, kOps, kRepeats);

  const SsmGovernorFactory factory(sys.compressed, SsmGovernorConfig{});
  const std::vector<KernelProfile> programs = {workloadByName("sgemm")};
  const SequenceConfig seq;
  std::int64_t sweep_epochs = 0;
  const double sweep_ns_per_run = bestNsPerOp(
      [&] {
        const std::vector<RunResult> results =
            runSequence(programs, factory, "ssmdvfs-comp", seq);
        sweep_epochs = results.front().epochs;
        benchmark::DoNotOptimize(results.front().edp);
      },
      4, 5);
  const double sweep_epochs_per_sec =
      static_cast<double>(sweep_epochs) * 1e9 / sweep_ns_per_run;

  // Replay contrast: the same governor streamed open-loop over a recorded
  // trace of the same run, no cycle-level simulation. The ratio against the
  // live sweep is the engine layer's >=100x replay acceptance floor
  // (bench_check --min-replay-speedup). Agreement is exactly 1 because the
  // deterministic governor sees the very observations it produced when the
  // trace was recorded.
  const engine::EpochTrace trace = recordedSgemmTrace();
  std::int64_t replay_epochs = 0;
  double replay_agreement = 0.0;
  const double replay_ns_per_run = bestNsPerOp(
      [&] {
        const engine::ReplayReport rep =
            engine::replayTrace(trace, factory, "ssmdvfs-comp");
        replay_epochs = rep.result.epochs;
        replay_agreement = rep.agreement;
        benchmark::DoNotOptimize(rep.agreement);
      },
      50, 7);
  const double replay_epochs_per_sec =
      static_cast<double>(replay_epochs) * 1e9 / replay_ns_per_run;

  std::ofstream os(path);
  SSM_CHECK(os.good(), "cannot open BENCH_inference.json output path");
  os << "{\n"
     << "  \"model\": \"decision_6-12-12-6_pruned_0.6_0.9\",\n"
     << "  \"reference_model\": \"decision_6-20x5-6_dense\",\n"
     << "  \"simd_tier\": \"" << simdTierName(activeSimdTier()) << "\",\n"
     << "  \"reference_dense_decide_ns\": " << reference_dense_decide_ns
     << ",\n"
     << "  \"packed_decide_ns\": " << packed_decide_ns << ",\n"
     << "  \"speedup_packed_vs_reference\": "
     << reference_dense_decide_ns / packed_decide_ns << ",\n"
     << "  \"reference_forward_ns\": " << reference_ns << ",\n"
     << "  \"packed_forward_ns\": " << packed_ns << ",\n"
     << "  \"speedup_same_model_forward\": " << reference_ns / packed_ns
     << ",\n"
     << "  \"reference_decide_ns\": " << reference_decide_ns << ",\n"
     << "  \"speedup_same_model_decide\": "
     << reference_decide_ns / packed_decide_ns << ",\n"
     << "  \"packed_batch_row_ns\": " << batch_row_ns << ",\n"
     << "  \"batch_rows\": " << rows << ",\n"
     << "  \"packed_int8_decide_ns\": " << int8_decide_ns << ",\n"
     << "  \"asic_cycles_per_inference\": " << int8.asicCyclesPerInference()
     << ",\n"
     << "  \"int8_model_bytes\": " << int8.modelBytes() << ",\n"
     << "  \"governor_decide_ns\": " << decide_ns << ",\n"
     << "  \"sweep_epochs_per_sec\": " << sweep_epochs_per_sec << ",\n"
     << "  \"replay_epochs_per_sec\": " << replay_epochs_per_sec << ",\n"
     << "  \"speedup_replay_vs_sim\": "
     << replay_epochs_per_sec / sweep_epochs_per_sec << ",\n"
     << "  \"replay_agreement\": " << replay_agreement << ",\n"
     << "  \"flops_dense_reference\": " << dense_net.denseFlops() << ",\n"
     << "  \"flops_dense\": " << net.denseFlops() << ",\n"
     << "  \"flops_masked\": " << net.flops() << ",\n"
     << "  \"flops_executed\": " << packed.flopsExecuted() << ",\n"
     << "  \"sparse_layers\": " << packed.sparseLayerCount() << ",\n"
     << "  \"layers\": " << packed.layerCount() << "\n"
     << "}\n";
  std::cout << "wrote " << path << " (single-decision speedup, packed "
            << "pruned model vs dense reference: "
            << reference_dense_decide_ns / packed_decide_ns << "x; same "
            << "model: " << reference_decide_ns / packed_decide_ns
            << "x)\n";
}

}  // namespace ssm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out = std::getenv("SSM_BENCH_INFERENCE_OUT");
  ssm::writeInferenceReport(out != nullptr ? out : "BENCH_inference.json");
  return 0;
}
